// Package repro is a from-scratch Go reproduction of "BigDataBench: a Big
// Data Benchmark Suite from Internet Services" (HPCA 2014): the nineteen
// workloads, the BDGS data generators, the software-stack substrates they
// run on, the traditional-benchmark comparators, and the
// workload-characterization methodology behind the paper's evaluation.
//
// The top-level package carries the benchmark harness (bench_test.go),
// which regenerates every table and figure series; the implementation
// lives under internal/ (see README.md and DESIGN.md).
package repro
