// E-commerce scenario: the paper's e-commerce application domain — the
// Table 3 transaction schema queried with the three relational workloads,
// a Rubis-style auction service handling bid traffic, and the domain's two
// offline analytics (Collaborative Filtering and Naive Bayes) over the
// Amazon-review model.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sqlengine"
	"repro/internal/webserve"
	"repro/internal/workloads"
)

func main() {
	// 1. Relational queries on the ORDER/ORDER_ITEM schema (Table 3).
	in := core.Input{Scale: 1, ScaleUnit: 256 << 10, Seed: 3, Workers: 4}
	for _, w := range []core.Workload{
		workloads.NewSelectQuery(),
		workloads.NewAggregateQuery(),
		workloads.NewJoinQuery(),
	} {
		res, err := core.Measure(w, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %8.1f MB/s  %v\n", res.Workload, res.Value/1e6, res.Extra)
	}

	// 2. Ad-hoc analytics through the engine API directly: revenue of the
	// top buyer segment.
	tbl := sqlengine.NewTable("ORDERS", []sqlengine.ColDef{
		{Name: "BUYER", Type: sqlengine.Int64},
		{Name: "AMOUNT", Type: sqlengine.Float64},
	}, nil)
	for i := int64(0); i < 5000; i++ {
		if err := tbl.AppendRow(i%97, float64(i%31)+0.5); err != nil {
			log.Fatal(err)
		}
	}
	tbl.Seal()
	engine := sqlengine.NewEngine(nil)
	rows, err := engine.Aggregate(tbl, nil, "BUYER", "AMOUNT", sqlengine.Sum)
	if err != nil {
		log.Fatal(err)
	}
	best := rows[0]
	for _, r := range rows {
		if r.Value > best.Value {
			best = r
		}
	}
	fmt.Printf("top buyer %d spent %.2f across %d orders\n", best.Group, best.Value, best.Count)

	// 3. Auction service: list, bid, buy.
	auction := webserve.NewAuctionService(10, nil)
	id, err := auction.List(1, 3, "xeon e5645 (vintage)", 25, 120)
	if err != nil {
		log.Fatal(err)
	}
	for bid, amount := range map[int32]float64{7: 30, 8: 45, 9: 38} {
		_ = auction.PlaceBid(id, bid, amount) // losing bids fail by design
	}
	item, bids, err := auction.View(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction %q: %d accepted bids, price now %.2f\n", item.Title, len(bids), item.Price)

	// 4. Offline analytics of the domain.
	cf, err := core.Measure(workloads.NewCF(), core.Input{Scale: 1, VertexUnit: 1 << 12, Seed: 3, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collaborative filtering: %.0f item pairs from %.0f reviews (%v)\n",
		cf.Extra["itemPairs"], cf.Extra["reviews"], cf.Elapsed)

	nb, err := core.Measure(workloads.NewBayes(), core.Input{Scale: 1, ScaleUnit: 128 << 10, Seed: 3, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive bayes sentiment: %.1f%% accuracy over %.0f-word vocabulary (%v)\n",
		nb.Extra["accuracy"]*100, nb.Extra["vocab"], nb.Elapsed)
}
