// Quickstart: run one BigDataBench workload end to end — generate the
// scaled input, execute it on its software-stack substrate, and print both
// the user-perceivable metric and the architectural characterization on
// the simulated Xeon E5645.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	// Pick a workload from the suite (Table 4 names).
	w := workloads.ByName("WordCount")

	// Scale the input: 4× the Table 6 baseline, with 1 paper-GB mapped to
	// 256 KiB so the example runs in seconds (DESIGN.md §1 explains the
	// unit substitution).
	in := core.Input{
		Scale:     4,
		ScaleUnit: 256 << 10,
		Seed:      7,
		Workers:   4,
	}

	// 1. Wall-clock run: the user-perceivable metric (DPS here).
	res, err := core.Measure(w, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s processed %.1f MiB in %v → %.1f MB/s (%s)\n",
		res.Workload, float64(res.Units)/(1<<20), res.Elapsed,
		res.Value/1e6, res.Metric)
	fmt.Printf("distinct words: %.0f\n", res.Extra["distinctWords"])

	// 2. Characterized run: the same workload on the simulated processor.
	char, err := core.Characterize(w, in, sim.XeonE5645())
	if err != nil {
		log.Fatal(err)
	}
	k := char.Counts
	fmt.Printf("on the Xeon E5645 model: %d instructions, L1I MPKI %.1f, "+
		"L2 MPKI %.1f, L3 MPKI %.2f, int/FP ratio %.0f\n",
		k.Instructions(), k.L1IMPKI(), k.L2MPKI(), k.L3MPKI(), k.IntToFPRatio())
}
