// Search-engine scenario: the paper's search-engine application domain in
// one program — build a crawl corpus with the BDGS text generator, index
// it offline (the Index workload's pipeline), rank pages with PageRank,
// then bring up the Nutch-style HTTP search server and query it.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/workloads"
)

func main() {
	// 1. Crawl corpus from the Wikipedia-seeded text model.
	tm := bdgs.NewTextModel(30000)
	pages := tm.Pages(11, 1200, 180)
	docs := make([]search.Document, len(pages))
	for i, p := range pages {
		docs[i] = search.Document{ID: p.ID, Title: p.Title, Body: p.Body}
	}

	// 2. Offline indexing (direct API; the Index workload runs the same
	// pipeline on the MapReduce substrate).
	ix := search.Build(docs, nil)
	fmt.Printf("indexed %d pages, %d distinct terms\n", ix.Docs(), ix.Terms())

	// 3. Offline link analysis: PageRank over the web-graph model.
	pr, err := core.Measure(workloads.NewPageRank(), core.Input{
		Scale: 1, PagesPerMPage: len(pages), Seed: 11, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank over %d pages converged mass %.3f in %v\n",
		pr.Units, pr.Extra["rankMass"], pr.Elapsed)

	// 4. Online serving: the Nutch-style HTTP front end.
	srv := httptest.NewServer(search.NewServer(ix))
	defer srv.Close()
	for _, q := range []string{"the school world", "university war", "tationer"} {
		resp, err := http.Get(srv.URL + "/search?k=3&q=" + url.QueryEscape(q))
		if err != nil {
			log.Fatal(err)
		}
		var r search.Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("query %-22q → %d hits", q, r.Total)
		if len(r.Hits) > 0 {
			sort.Slice(r.Hits, func(i, j int) bool { return r.Hits[i].Score > r.Hits[j].Score })
			fmt.Printf(", top: %s (%.3f)", r.Hits[0].DocID, r.Hits[0].Score)
		}
		fmt.Println()
	}

	// 5. The packaged workload measures RPS the same way.
	nutch, err := core.Measure(workloads.NewNutchServer(), core.Input{
		Scale: 1, ReqsPerUnit: 300, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Nutch Server workload: %.0f requests/s (%.2f hits/query)\n",
		nutch.Value, nutch.Extra["hitsPerQuery"])
}
