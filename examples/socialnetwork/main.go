// Social-network scenario: the paper's social-network application domain —
// generate a Facebook-like friendship graph with BDGS, serve Olio-style
// home-timeline traffic over HTTP, and run the two offline analytics of
// the domain (Connected Components and K-means) on the dataflow engine.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/webserve"
	"repro/internal/workloads"
)

func main() {
	// 1. Friendship graph (power-law, undirected).
	g := bdgs.GenGraph(5, 12, 11, bdgs.SocialGraphParams(), false)
	fmt.Printf("social graph: %d users, %d friendships\n", g.N, g.Edges())

	// 2. Online service: post events and read home timelines over HTTP.
	svc := webserve.NewSocialService(g.Adj, nil)
	ts := httptest.NewServer(svc)
	defer ts.Close()
	for u := 0; u < 200; u++ {
		resp, err := http.Post(fmt.Sprintf("%s/event?u=%d&text=hello", ts.URL, u), "", nil)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/home?u=0&k=10")
	if err != nil {
		log.Fatal(err)
	}
	var events []webserve.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("user 0 home timeline: %d events from friends\n", len(events))

	// 3. Offline analytics on the same domain's data.
	cc, err := core.Measure(workloads.NewCC(), core.Input{
		Scale: 1, VertexUnit: 1 << 12, Seed: 5, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected components: %.0f components over %d vertices in %v\n",
		cc.Extra["components"], cc.Units, cc.Elapsed)

	km, err := core.Measure(workloads.NewKMeans(), core.Input{
		Scale: 1, ScaleUnit: 64 << 10, Seed: 5, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means: %.0f vectors clustered in %.0f iterations (%v)\n",
		km.Extra["vectors"], km.Extra["iterations"], km.Elapsed)

	// 4. The packaged Olio Server workload reports RPS.
	olio, err := core.Measure(workloads.NewOlioServer(), core.Input{
		Scale: 1, ReqsPerUnit: 500, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Olio Server workload: %.0f requests/s over %.0f users\n",
		olio.Value, olio.Extra["users"])
}
