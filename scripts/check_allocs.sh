#!/bin/sh
# check_allocs.sh — allocation budget gate for the transport hot path.
#
# Runs the depth-8 pipelined transport benchmark with -benchmem and
# fails when allocs/op exceeds the committed budget. This complements
# the testing.AllocsPerRun guards in internal/transport/alloc_test.go:
# those pin individual codecs and single round trips; this gate watches
# the full benchmark mix (reads, writes, batches, scans) under
# pipelining, where a regression in any one path shows up in the
# aggregate.
#
# Usage: sh scripts/check_allocs.sh [budget]
#
# Budget history: the pre-§12 hot path measured 218 allocs/op here;
# pooled frames + zero-copy responses brought it to ~19. The budget is
# 30 — the ISSUE 7 target — leaving headroom for GC-timing noise in
# pool hit rates while still catching any per-frame make([]byte) that
# sneaks back in.
set -eu

BUDGET="${1:-30}"
BENCH='BenchmarkTransport/net/conns=1/depth=8'
cd "$(dirname "$0")/.."

# benchtime must be long enough to amortize first-touch growth (pool
# fills, engine memtable ramp): at 500x the same build reads ~30% higher
# than its steady state.
OUT="$(go test -run '^$' -bench "$BENCH" -benchtime 3000x -benchmem . 2>&1)" || {
    echo "$OUT" >&2
    echo "check_allocs: benchmark failed to run" >&2
    exit 1
}
echo "$OUT"

ALLOCS="$(echo "$OUT" | awk '/allocs\/op/ { print $(NF-1); exit }')"
if [ -z "$ALLOCS" ]; then
    echo "check_allocs: no allocs/op figure in benchmark output" >&2
    exit 1
fi
if [ "$ALLOCS" -gt "$BUDGET" ]; then
    echo "check_allocs: FAIL — $ALLOCS allocs/op exceeds budget of $BUDGET" >&2
    exit 1
fi
echo "check_allocs: OK — $ALLOCS allocs/op within budget of $BUDGET"
