#!/bin/sh
# Record one point on the repo's perf trajectory (ROADMAP: BENCH_N.json
# per PR). Runs bdbench in its three modes and assembles one JSON
# object:
#
#   workload  — in-process paper workloads (Read / WordCount, scale 1)
#   net       — Zipf 95/5 OLTP over real sockets against two
#               self-hosted shard servers (bdbench -listen), with a
#               wire trace id stamped on every 8th batch, the
#               before/after /metrics delta embedded per run, a 5ms
#               99.9% SLO evaluated over the run, and one assembled
#               cross-process trace (-trace) as the PR 8 marker
#   analytics — distributed wordcount across two self-hosted executor
#               servers (task submits + shuffle fetches over the wire)
#   resize    — elastic resize under load (bdbench -net -resize): a
#               member joins and another gracefully leaves mid-run,
#               with per-window throughput/latency, migration counters
#               and the convergence verdict as the PR 9 marker
#   federation — one bdtop poll of the net-phase servers (-once -json):
#               every member's exact registry snapshot fetched over the
#               wire and merged, embedded whole as the PR 10 marker
#
# Usage: sh scripts/record_bench.sh [out.json] [pr] [prev.json]
#   out.json  — artifact path (default BENCH_10.json)
#   pr        — PR number stamped into the artifact (default 10)
#   prev.json — previous trajectory point; when it exists, a vsPrev
#               section with throughput deltas is embedded
# Run from the repo root. CI uploads the result as an artifact so every
# future PR extends the curve; the committed BENCH_N.json files are the
# durable history.
set -e

OUT="${1:-BENCH_10.json}"
PR="${2:-10}"
PREV="${3:-BENCH_9.json}"
BIN="$(mktemp -d)"
P1=""
P2=""
cleanup() {
    [ -z "$P1" ] || kill "$P1" 2>/dev/null || true
    [ -z "$P2" ] || kill "$P2" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

command -v jq >/dev/null 2>&1 || {
    echo "record_bench: jq is required to assemble the artifact" >&2
    exit 1
}
go build -o "$BIN/bdbench" ./cmd/bdbench
go build -o "$BIN/bdtop" ./cmd/bdtop

# ---- workload mode ------------------------------------------------------
"$BIN/bdbench" -workload Read -json "$BIN/w_read.json" >/dev/null
"$BIN/bdbench" -workload WordCount -json "$BIN/w_wc.json" >/dev/null

# ---- net mode (self-hosted shard servers) -------------------------------
A1=127.0.0.1:7493
A2=127.0.0.1:7494
"$BIN/bdbench" -listen "$A1" >/dev/null 2>&1 &
P1=$!
"$BIN/bdbench" -listen "$A2" >/dev/null 2>&1 &
P2=$!
# bdbench's dial retries cover server startup; no sleep needed.
"$BIN/bdbench" -net -addr "$A1,$A2" -ops 20000 -rows 2000 -clients 4 \
    -traceevery 8 -slo 5ms:0.999 -trace -json "$BIN/net.json" >/dev/null
# One federation poll while both servers are still up: bdtop pulls each
# member's exact registry snapshot over the wire (OpMetricsFetch) and
# merges them; the whole document rides the artifact.
"$BIN/bdtop" -addr "$A1,$A2" -once -json >"$BIN/federation.json"
kill "$P1" "$P2" 2>/dev/null || true
wait "$P1" 2>/dev/null || true
wait "$P2" 2>/dev/null || true
P1=""
P2=""

# ---- resize mode (self-hosted elastic cluster) --------------------------
"$BIN/bdbench" -net -resize -dur 4s -rows 2000 -clients 4 \
    -json "$BIN/resize.json" >/dev/null

# ---- analytics mode (self-hosted executor servers) ----------------------
"$BIN/bdbench" -analytics wordcount -nodes 2 -lines 8000 \
    -json "$BIN/analytics.json" >/dev/null

# ---- assemble + validate ------------------------------------------------
GO_VERSION="$(go env GOVERSION)" jq -n \
    --slurpfile workload_read "$BIN/w_read.json" \
    --slurpfile workload_wordcount "$BIN/w_wc.json" \
    --slurpfile net "$BIN/net.json" \
    --slurpfile analytics "$BIN/analytics.json" \
    --slurpfile resize "$BIN/resize.json" \
    --slurpfile federation "$BIN/federation.json" \
    --argjson pr "$PR" \
    '{
        schema: "bdbench-trajectory/1",
        pr: $pr,
        go: $ENV.GO_VERSION,
        workload: ($workload_read[0] + $workload_wordcount[0]),
        net: $net[0],
        analytics: $analytics[0],
        resize: $resize[0],
        federation: $federation[0]
    }' >"$OUT"

# Fold in throughput deltas against the previous trajectory point, so
# each BENCH_N.json carries its own before/after story.
if [ -f "$PREV" ]; then
    jq --slurpfile prev "$PREV" '
        def pct(cur; old): if (old // 0) > 0 then ((cur / old - 1) * 100 * 10 | round) / 10 else null end;
        . + {vsPrev: {
            pr: $prev[0].pr,
            netOpsPerSecPct: pct(.net.opsPerSec; $prev[0].net.opsPerSec),
            netLatP99UsPct: pct(.net.latP99Us; $prev[0].net.latP99Us),
            analyticsItemsPerSecPct: pct(.analytics.itemsPerSec; $prev[0].analytics.itemsPerSec),
            workloadPct: [.workload[] as $w | {
                workload: $w.workload,
                valuePct: pct($w.value; ($prev[0].workload[] | select(.workload == $w.workload) | .value))
            }]
        }}' "$OUT" >"$OUT.tmp" && mv "$OUT.tmp" "$OUT"
fi
jq -e \
    '.net.opsPerSec > 0 and
     (.net.metrics["bd_transport_client_requests_total"] // .net.ops) > 0 and
     .net.slo[0].total > 0 and
     .net.trace.missingHops == 0 and
     (.net.trace.criticalPath | length) >= 2 and
     .analytics.itemsPerSec > 0 and
     .analytics.metrics["bd_analytics_jobs_total"] == 1 and
     .resize.converged and
     .resize.lostKeys == 0 and
     .resize.migratedBytes > 0 and
     (.resize.windows | length) == 4 and
     ([.resize.windows[].opsPerSec] | min) > 0 and
     (.federation.nodes | length) == 2 and
     (.federation.errors // {} | length) == 0 and
     ([.federation.merged.families[] | select(.name == "bd_transport_requests_total") | .series[].value] | add) > 0 and
     (.workload | length) == 2' \
    "$OUT" >/dev/null || {
    echo "record_bench: $OUT failed validation" >&2
    exit 1
}
echo "record_bench: wrote $OUT"
jq -r '"  net: \(.net.opsPerSec | floor) ops/s  analytics: \(.analytics.itemsPerSec | floor) rec/s  resize: \([.resize.windows[].opsPerSec] | min | floor)+ ops/s through epoch \(.resize.epoch)  federation: \(.federation.nodes | length) nodes  workloads: \(.workload | length)"' "$OUT"
