#!/bin/sh
# Transport smoke test, seven phases.
#
# Phase 1 — serve + drain: two bdserve shard servers in separate
# processes, 1k OLTP ops driven over real sockets by bdbench -net, then
# a SIGTERM graceful drain that must exit 0 on both servers.
#
# Phase 2 — failover: two bdserve processes joined with replication 2,
# bdbench -net -chaos driving load for a fixed duration while one server
# is SIGKILLed mid-run and restarted. The client must keep serving from
# the surviving replica (exit 0), and the restarted server must rejoin
# and drain cleanly.
#
# Phase 3 — distributed analytics: a wordcount job planned across the
# two bdserve processes' task executors, its result digest diffed
# against the in-process MapReduce reference (bdbench -analytics -local)
# — the distributed-equals-local contract, checked across real process
# boundaries.
#
# Phase 4 — observability: two bdserve processes with -livez HTTP muxes,
# traced bdbench -net load, then GET /metrics scraped from both servers
# mid-run. Asserts the per-opcode transport counters moved, traced
# requests were seen on the wire, and after a SIGKILL + restart the
# bd_cluster_members_down gauge on the survivor returns to 0.
#
# Phase 5 — distributed tracing: a traced replicated Put across two
# bdserve processes, every hop's spans fetched back over the wire
# (OpTraceFetch) and assembled by bdbench -trace. Asserts the printed
# tree carries the client, both server processes and the coordinator's
# replication fan-out, that every layer's phase annotations (queue,
# exec, replicate) are present, and that the -json record's critical
# path is a parent-linked chain down to a server hop.
#
# Phase 6 — elastic resize: two bdserve processes form an elastic
# cluster (epoch-versioned view, R=2), bdbench -net -elastic drives load
# while a third bdserve live-joins and one of the originals is SIGKILLed
# mid-run. Asserts the client kept serving across both membership
# changes (exit 0), the survivors converge on one epoch with migration
# settled and the dead member declared out of the ring, online migration
# actually moved bytes, and both survivors then drain out gracefully.
#
# Phase 7 — cluster observability plane: two elastic bdserve processes
# take bdbench load, quiesce, and then one member's /clusterz (the
# federated view, DESIGN.md §15) must report per-opcode request totals
# exactly equal to the sum of both members' own /metrics — the
# federation merges exact counters, not scraped approximations. A third
# member then live-joins and /eventz must show the join's epoch advance
# on the merged cross-node event timeline.
#
# Run from the repo root (CI runs it after go test).
set -e

BIN="$(mktemp -d)"
P1=""
P2=""
P3=""
PB=""
cleanup() {
    # Kill anything still running (e.g. bdbench failed before the
    # orderly TERM below) so CI ports are never left occupied. `|| true`
    # keeps an already-dead pid from tripping set -e inside the trap.
    [ -z "$P1" ] || kill "$P1" 2>/dev/null || true
    [ -z "$P2" ] || kill "$P2" 2>/dev/null || true
    [ -z "$P3" ] || kill "$P3" 2>/dev/null || true
    [ -z "$PB" ] || kill "$PB" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT
go build -o "$BIN/bdserve" ./cmd/bdserve
go build -o "$BIN/bdbench" ./cmd/bdbench

# ---- Phase 1: serve + graceful drain ------------------------------------

A1=127.0.0.1:7471
A2=127.0.0.1:7472
"$BIN/bdserve" -addr "$A1" &
P1=$!
"$BIN/bdserve" -addr "$A2" -shards 2 &
P2=$!

# bdbench's dial retries cover server startup; no sleep needed.
"$BIN/bdbench" -net -addr "$A1,$A2" -ops 1000 -rows 500 -clients 4

kill -TERM "$P1" "$P2"
# `|| Ex=$?` keeps a non-zero wait from tripping set -e before the check.
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: servers exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (graceful drain on both servers)"

# ---- Phase 2: kill one replica mid-run, keep serving, rejoin ------------

A3=127.0.0.1:7473
A4=127.0.0.1:7474
"$BIN/bdserve" -addr "$A3" -quiet &
P1=$!
"$BIN/bdserve" -addr "$A4" -quiet &
P2=$!

# Replication 2 across the two servers; -chaos makes the client tolerate
# (and count) the batches that die with the member while the coordinator
# fails over. The kill below is the real thing: SIGKILL, no drain.
"$BIN/bdbench" -net -chaos -addr "$A3,$A4" -replication 2 -dur 4s -rows 500 -clients 4 &
PB=$!

sleep 1
kill -KILL "$P1"
echo "transport smoke: SIGKILLed server $A3 mid-run"
sleep 1
# Restart on the same address: the coordinator's prober must see it
# rejoin and replay the writes it missed (hinted handoff).
"$BIN/bdserve" -addr "$A3" -quiet &
P1=$!

EB=0
wait "$PB" || EB=$?
PB=""
if [ "$EB" -ne 0 ]; then
    echo "transport smoke: chaos client exited $EB, want 0 (serving did not survive the kill)" >&2
    exit 1
fi

kill -TERM "$P1" "$P2"
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: post-chaos drain exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (served through SIGKILL + rejoin)"

# ---- Phase 3: distributed wordcount vs the in-process reference ---------

A5=127.0.0.1:7475
A6=127.0.0.1:7476
"$BIN/bdserve" -addr "$A5" -quiet &
P1=$!
"$BIN/bdserve" -addr "$A6" -quiet &
P2=$!

REF=$("$BIN/bdbench" -analytics wordcount -local -lines 4000 | grep 'digest:')
# The coordinator's dial retries cover server startup; no sleep needed.
DIST=$("$BIN/bdbench" -analytics wordcount -addr "$A5,$A6" -lines 4000 | grep 'digest:')
if [ -z "$REF" ] || [ "$REF" != "$DIST" ]; then
    echo "transport smoke: distributed wordcount diverged from the in-process reference" >&2
    echo "  local:       $REF" >&2
    echo "  distributed: $DIST" >&2
    exit 1
fi

kill -TERM "$P1" "$P2"
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: analytics servers exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (distributed wordcount == in-process reference, $DIST)"

# ---- Phase 4: /metrics scrape mid-run + down-member gauge recovery ------

A7=127.0.0.1:7477
A8=127.0.0.1:7478
L7=127.0.0.1:7487
L8=127.0.0.1:7488

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    else
        wget -qO- "$1"
    fi
}

"$BIN/bdserve" -addr "$A7" -livez "$L7" -quiet &
P1=$!
"$BIN/bdserve" -addr "$A8" -livez "$L8" -quiet &
P2=$!

# Same crash/recovery cycle as phase 2, now with a wire trace id on
# every 64th batch and the client's metrics delta captured as JSON.
"$BIN/bdbench" -net -chaos -addr "$A7,$A8" -replication 2 -dur 4s \
    -rows 500 -clients 4 -traceevery 64 -json "$BIN/phase4.json" &
PB=$!

sleep 1
kill -KILL "$P1"
echo "transport smoke: SIGKILLed server $A7 mid-run"
sleep 1
"$BIN/bdserve" -addr "$A7" -livez "$L7" -quiet &
P1=$!

# Mid-run scrape, load still flowing: both servers must expose the four
# metric families and nonzero per-opcode request counters, and the
# survivor must have seen traced frames.
sleep 1
M2=$(fetch "http://$L8/metrics")
for family in bd_transport_requests_total bd_cluster_members bd_engine_puts_total bd_analytics_tasks_held; do
    if ! printf '%s\n' "$M2" | grep -q "^# TYPE $family"; then
        echo "transport smoke: survivor /metrics missing family $family" >&2
        exit 1
    fi
done
if ! printf '%s\n' "$M2" | grep -Eq 'bd_transport_requests_total\{op="[a-z]+"\} [1-9]'; then
    echo "transport smoke: survivor shows no per-opcode requests" >&2
    exit 1
fi
if ! printf '%s\n' "$M2" | grep -Eq 'bd_transport_traced_requests_total [1-9]'; then
    echo "transport smoke: survivor saw no traced frames (-traceevery 64)" >&2
    exit 1
fi
M1=$(fetch "http://$L7/metrics")
if ! printf '%s\n' "$M1" | grep -Eq 'bd_transport_requests_total\{op="[a-z]+"\} [1-9]'; then
    echo "transport smoke: restarted server shows no per-opcode requests" >&2
    exit 1
fi
echo "transport smoke: scraped /metrics from both servers mid-run"

EB=0
wait "$PB" || EB=$?
PB=""
if [ "$EB" -ne 0 ]; then
    echo "transport smoke: traced chaos client exited $EB, want 0" >&2
    exit 1
fi
# The coordinator's gauge after-values ride the JSON metrics delta: the
# killed member must be back up (down-member gauge returned to 0) and
# the hinted writes it missed must have been replayed onto it.
if ! grep -q '"bd_cluster_members_down": 0' "$BIN/phase4.json"; then
    echo "transport smoke: members_down did not return to 0 after restart" >&2
    grep 'members_down' "$BIN/phase4.json" >&2 || true
    exit 1
fi
if ! grep -Eq '"bd_cluster_hints_replayed_total": [1-9]' "$BIN/phase4.json"; then
    echo "transport smoke: no hinted writes replayed across the restart" >&2
    exit 1
fi

kill -TERM "$P1" "$P2"
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: observability servers exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (metrics + trace + down-member recovery observed)"

# ---- Phase 5: traced replicated Put, assembled across processes ---------

A9=127.0.0.1:7479
A10=127.0.0.1:7480
"$BIN/bdserve" -addr "$A9" -quiet &
P1=$!
"$BIN/bdserve" -addr "$A10" -quiet &
P2=$!

# Replication 2 across the two servers: the coordinator's write fan-out
# is part of the trace. After the (tiny) measured run, -trace drives one
# traced probe, pulls each process's span ring over the wire and prints
# the assembled tree; -json records the critical path machine-readably.
OUT=$("$BIN/bdbench" -net -addr "$A9,$A10" -replication 2 -ops 200 -rows 500 \
    -clients 2 -trace -json "$BIN/phase5.json")

# The tree must span all three processes: the bench's own hops, server
# spans from BOTH bdserve processes (the replica is reached only through
# the coordinator's mirror leg), and the replication fan-out hop.
for frag in 'bench/probe @bench' 'cluster/write' "@$A9" "@$A10"; do
    if ! printf '%s\n' "$OUT" | grep -qF "$frag"; then
        echo "transport smoke: assembled trace missing \"$frag\":" >&2
        printf '%s\n' "$OUT" >&2
        exit 1
    fi
done
# Every layer's phase annotations made it into the assembly: queue/exec
# from the servers, replicate from the write fan-out.
for phase in 'queue ' 'exec ' 'replicate '; do
    if ! printf '%s\n' "$OUT" | grep -q "$phase"; then
        echo "transport smoke: assembled trace lost the \"$phase\" phase" >&2
        printf '%s\n' "$OUT" >&2
        exit 1
    fi
done
if ! printf '%s\n' "$OUT" | grep -q 'critical path ('; then
    echo "transport smoke: no critical path in the trace report" >&2
    exit 1
fi
# Machine record: the probe assembled with no holes (every referenced
# parent was collected — the parentage chain is intact) and its critical
# path descends into a server-side hop.
if ! grep -q '"missingHops": 0' "$BIN/phase5.json"; then
    echo "transport smoke: trace assembled with missing hops" >&2
    grep -o '"trace": {[^}]*' "$BIN/phase5.json" >&2 || true
    exit 1
fi
if ! grep -q '"server/' "$BIN/phase5.json"; then
    echo "transport smoke: critical path never reached a server hop" >&2
    exit 1
fi

kill -TERM "$P1" "$P2"
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: tracing servers exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (cross-process trace assembled with phase breakdown)"

# ---- Phase 6: elastic resize under load — join, SIGKILL, converge -------

A11=127.0.0.1:7481
A12=127.0.0.1:7482
A13=127.0.0.1:7483
L12=127.0.0.1:7492
L13=127.0.0.1:7493

# Short probe rounds keep declare-dead and view dissemination well
# inside the run; -leavetimeout bounds the final graceful drains.
"$BIN/bdserve" -addr "$A11" -elastic -replication 2 -probe 50ms \
    -leavetimeout 10s -quiet &
P1=$!
"$BIN/bdserve" -addr "$A12" -join "$A11" -replication 2 -probe 50ms \
    -leavetimeout 10s -livez "$L12" -quiet &
P2=$!

# The elastic coordinator joins via the seeds and discovers every later
# membership change by gossip; -chaos makes the SIGKILL window degraded
# batches instead of a fatal error. Traffic spans the whole resize.
"$BIN/bdbench" -net -elastic -chaos -addr "$A11,$A12" -replication 2 \
    -dur 6s -rows 500 -clients 4 -json "$BIN/phase6.json" &
PB=$!

sleep 1
"$BIN/bdserve" -addr "$A13" -join "$A11,$A12" -replication 2 -probe 50ms \
    -leavetimeout 10s -livez "$L13" -quiet &
P3=$!
echo "transport smoke: third member joining at $A13 mid-run"

sleep 2
kill -KILL "$P1"
wait "$P1" 2>/dev/null || true
P1=""
echo "transport smoke: SIGKILLed original member $A11 mid-run"

EB=0
wait "$PB" || EB=$?
PB=""
if [ "$EB" -ne 0 ]; then
    echo "transport smoke: elastic client exited $EB, want 0 (serving did not survive the resize)" >&2
    exit 1
fi

# Convergence: both survivors must agree on one epoch, with migration
# settled and the killed member declared out of the ring (2 on-ring
# members). Detection + heal is bounded by probe rounds; 15s is a wide
# CI margin over the 50ms sweep.
tries=0
while :; do
    M2=$(fetch "http://$L12/metrics") || M2=""
    M3=$(fetch "http://$L13/metrics") || M3=""
    E2=$(printf '%s\n' "$M2" | awk '$1 == "bd_cluster_epoch" {print $2}')
    E3=$(printf '%s\n' "$M3" | awk '$1 == "bd_cluster_epoch" {print $2}')
    S2=$(printf '%s\n' "$M2" | awk '$1 == "bd_cluster_settled" {print $2}')
    S3=$(printf '%s\n' "$M3" | awk '$1 == "bd_cluster_settled" {print $2}')
    N2=$(printf '%s\n' "$M2" | awk '$1 == "bd_cluster_ring_members" {print $2}')
    N3=$(printf '%s\n' "$M3" | awk '$1 == "bd_cluster_ring_members" {print $2}')
    if [ -n "$E2" ] && [ "$E2" = "$E3" ] && [ "$S2" = "1" ] && [ "$S3" = "1" ] \
        && [ "$N2" = "2" ] && [ "$N3" = "2" ]; then
        break
    fi
    if [ "$tries" -ge 15 ]; then
        echo "transport smoke: survivors never converged after the resize" >&2
        echo "  $A12: epoch=$E2 settled=$S2 ring_members=$N2" >&2
        echo "  $A13: epoch=$E3 settled=$S3 ring_members=$N3" >&2
        exit 1
    fi
    tries=$((tries + 1))
    sleep 1
done
echo "transport smoke: survivors converged (epoch $E2, 2 on-ring members, settled)"

# The join and the kill both trigger throttled online migration; the
# counters must show real bytes moved somewhere in the cluster.
if ! { printf '%s\n%s\n' "$M2" "$M3" \
    | awk '$1 == "bd_cluster_migration_bytes_total" {b += $2} END {exit !(b > 0)}'; }; then
    echo "transport smoke: no migration bytes moved across the resize" >&2
    exit 1
fi

# Graceful exit in sequence: the joiner drains its keyranges back to the
# survivor, then the survivor (alone, nobody to push to) leaves cleanly.
kill -TERM "$P3"
E3=0
wait "$P3" || E3=$?
P3=""
kill -TERM "$P2"
E2=0
wait "$P2" || E2=$?
P2=""
if [ "$E2" -ne 0 ] || [ "$E3" -ne 0 ]; then
    echo "transport smoke: elastic drain exited $E2/$E3, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (elastic resize: live join + SIGKILL healed under load, migration observed)"

# ---- Phase 7: federated /clusterz totals + /eventz epoch advance --------

A14=127.0.0.1:7484
A15=127.0.0.1:7485
A16=127.0.0.1:7486
L14=127.0.0.1:7494
L15=127.0.0.1:7495

"$BIN/bdserve" -addr "$A14" -elastic -replication 2 -probe 50ms \
    -leavetimeout 10s -livez "$L14" -quiet &
P1=$!
"$BIN/bdserve" -addr "$A15" -join "$A14" -replication 2 -probe 50ms \
    -leavetimeout 10s -livez "$L15" -quiet &
P2=$!

# Finite load, then quiesce: with the clients gone and migration
# settled, the data-plane opcodes (get/put/batch/scan) are frozen, so
# the federation's merge can be compared against the per-node scrapes
# exactly. Gossip and the fetch opcodes themselves keep moving — they
# are excluded from the equality.
"$BIN/bdbench" -net -elastic -addr "$A14,$A15" -replication 2 \
    -ops 5000 -rows 500 -clients 4

tries=0
while :; do
    M14=$(fetch "http://$L14/metrics") || M14=""
    M15=$(fetch "http://$L15/metrics") || M15=""
    E14=$(printf '%s\n' "$M14" | awk '$1 == "bd_cluster_epoch" {print $2}')
    E15=$(printf '%s\n' "$M15" | awk '$1 == "bd_cluster_epoch" {print $2}')
    S14=$(printf '%s\n' "$M14" | awk '$1 == "bd_cluster_settled" {print $2}')
    S15=$(printf '%s\n' "$M15" | awk '$1 == "bd_cluster_settled" {print $2}')
    if [ -n "$E14" ] && [ "$E14" = "$E15" ] && [ "$S14" = "1" ] && [ "$S15" = "1" ]; then
        break
    fi
    if [ "$tries" -ge 15 ]; then
        echo "transport smoke: pair never settled before the federation check" >&2
        exit 1
    fi
    tries=$((tries + 1))
    sleep 1
done

CZ=$(fetch "http://$L14/clusterz")
if ! printf '%s\n' "$CZ" | grep -q '^# Federated from 2 nodes'; then
    echo "transport smoke: /clusterz did not federate both members:" >&2
    printf '%s\n' "$CZ" | head -5 >&2
    exit 1
fi
if printf '%s\n' "$CZ" | grep -q '^# UNREACHABLE'; then
    echo "transport smoke: /clusterz reports an unreachable member with both up" >&2
    printf '%s\n' "$CZ" | grep '^# UNREACHABLE' >&2
    exit 1
fi

# opcount <metrics-text> <op>: one opcode's request total (0 if absent).
opcount() {
    printf '%s\n' "$1" | awk -v op="$2" \
        '$1 == "bd_transport_requests_total{op=\"" op "\"}" {print $2; f = 1}
         END {if (!f) print 0}'
}
MOVED=0
for op in get put batch scan; do
    F=$(opcount "$CZ" "$op")
    N14=$(opcount "$M14" "$op")
    N15=$(opcount "$M15" "$op")
    if [ "$F" -ne $((N14 + N15)) ]; then
        echo "transport smoke: federated $op total $F != $N14 + $N15 from /metrics" >&2
        exit 1
    fi
    [ "$F" -gt 0 ] && MOVED=1
done
if [ "$MOVED" -ne 1 ]; then
    echo "transport smoke: no data-plane opcode counted anything — equality was vacuous" >&2
    exit 1
fi
echo "transport smoke: /clusterz per-opcode totals == sum of member /metrics"

# A third member joins live: the federation must widen to 3 nodes and
# the merged /eventz timeline must carry the join's view commit.
"$BIN/bdserve" -addr "$A16" -join "$A14,$A15" -replication 2 -probe 50ms \
    -leavetimeout 10s -quiet &
P3=$!
tries=0
while :; do
    CZ=$(fetch "http://$L14/clusterz") || CZ=""
    if printf '%s\n' "$CZ" | grep -q '^# Federated from 3 nodes'; then
        break
    fi
    if [ "$tries" -ge 15 ]; then
        echo "transport smoke: federation never widened to the joiner" >&2
        printf '%s\n' "$CZ" | head -5 >&2
        exit 1
    fi
    tries=$((tries + 1))
    sleep 1
done
EV=$(fetch "http://$L14/eventz")
if ! printf '%s\n' "$EV" | grep -q '"view-commit"'; then
    echo "transport smoke: /eventz carries no view-commit events" >&2
    exit 1
fi
if ! printf '%s\n' "$EV" | grep -q 'view committed: 3 members'; then
    echo "transport smoke: /eventz missing the 3-member view commit for the join" >&2
    printf '%s\n' "$EV" | tail -5 >&2
    exit 1
fi
echo "transport smoke: /eventz shows the join's epoch advance"

# Drain out in join order reverse: each leaver pushes its ranges to the
# remaining members.
kill -TERM "$P3"
E3=0
wait "$P3" || E3=$?
P3=""
kill -TERM "$P2"
E2=0
wait "$P2" || E2=$?
P2=""
kill -TERM "$P1"
E1=0
wait "$P1" || E1=$?
P1=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ] || [ "$E3" -ne 0 ]; then
    echo "transport smoke: observability-plane drain exited $E1/$E2/$E3, want 0/0/0" >&2
    exit 1
fi
echo "transport smoke: OK (federated totals exact, event timeline carried the join)"
