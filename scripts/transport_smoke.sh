#!/bin/sh
# Transport smoke test: two bdserve shard servers in separate processes,
# 1k OLTP ops driven over real sockets by bdbench -net, then a SIGTERM
# graceful drain that must exit 0 on both servers. Run from the repo
# root (CI runs it after go test).
set -e

BIN="$(mktemp -d)"
P1=""
P2=""
cleanup() {
    # Kill any server still running (e.g. bdbench failed before the
    # orderly TERM below) so CI ports are never left occupied. `|| true`
    # keeps an already-dead pid from tripping set -e inside the trap.
    [ -z "$P1" ] || kill "$P1" 2>/dev/null || true
    [ -z "$P2" ] || kill "$P2" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT
go build -o "$BIN/bdserve" ./cmd/bdserve
go build -o "$BIN/bdbench" ./cmd/bdbench

A1=127.0.0.1:7471
A2=127.0.0.1:7472
"$BIN/bdserve" -addr "$A1" &
P1=$!
"$BIN/bdserve" -addr "$A2" -shards 2 &
P2=$!

# bdbench's dial retries cover server startup; no sleep needed.
"$BIN/bdbench" -net -addr "$A1,$A2" -ops 1000 -rows 500 -clients 4

kill -TERM "$P1" "$P2"
# `|| Ex=$?` keeps a non-zero wait from tripping set -e before the check.
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: servers exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (graceful drain on both servers)"
