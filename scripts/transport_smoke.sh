#!/bin/sh
# Transport smoke test, three phases.
#
# Phase 1 — serve + drain: two bdserve shard servers in separate
# processes, 1k OLTP ops driven over real sockets by bdbench -net, then
# a SIGTERM graceful drain that must exit 0 on both servers.
#
# Phase 2 — failover: two bdserve processes joined with replication 2,
# bdbench -net -chaos driving load for a fixed duration while one server
# is SIGKILLed mid-run and restarted. The client must keep serving from
# the surviving replica (exit 0), and the restarted server must rejoin
# and drain cleanly.
#
# Phase 3 — distributed analytics: a wordcount job planned across the
# two bdserve processes' task executors, its result digest diffed
# against the in-process MapReduce reference (bdbench -analytics -local)
# — the distributed-equals-local contract, checked across real process
# boundaries.
#
# Run from the repo root (CI runs it after go test).
set -e

BIN="$(mktemp -d)"
P1=""
P2=""
PB=""
cleanup() {
    # Kill anything still running (e.g. bdbench failed before the
    # orderly TERM below) so CI ports are never left occupied. `|| true`
    # keeps an already-dead pid from tripping set -e inside the trap.
    [ -z "$P1" ] || kill "$P1" 2>/dev/null || true
    [ -z "$P2" ] || kill "$P2" 2>/dev/null || true
    [ -z "$PB" ] || kill "$PB" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT
go build -o "$BIN/bdserve" ./cmd/bdserve
go build -o "$BIN/bdbench" ./cmd/bdbench

# ---- Phase 1: serve + graceful drain ------------------------------------

A1=127.0.0.1:7471
A2=127.0.0.1:7472
"$BIN/bdserve" -addr "$A1" &
P1=$!
"$BIN/bdserve" -addr "$A2" -shards 2 &
P2=$!

# bdbench's dial retries cover server startup; no sleep needed.
"$BIN/bdbench" -net -addr "$A1,$A2" -ops 1000 -rows 500 -clients 4

kill -TERM "$P1" "$P2"
# `|| Ex=$?` keeps a non-zero wait from tripping set -e before the check.
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: servers exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (graceful drain on both servers)"

# ---- Phase 2: kill one replica mid-run, keep serving, rejoin ------------

A3=127.0.0.1:7473
A4=127.0.0.1:7474
"$BIN/bdserve" -addr "$A3" -quiet &
P1=$!
"$BIN/bdserve" -addr "$A4" -quiet &
P2=$!

# Replication 2 across the two servers; -chaos makes the client tolerate
# (and count) the batches that die with the member while the coordinator
# fails over. The kill below is the real thing: SIGKILL, no drain.
"$BIN/bdbench" -net -chaos -addr "$A3,$A4" -replication 2 -dur 4s -rows 500 -clients 4 &
PB=$!

sleep 1
kill -KILL "$P1"
echo "transport smoke: SIGKILLed server $A3 mid-run"
sleep 1
# Restart on the same address: the coordinator's prober must see it
# rejoin and replay the writes it missed (hinted handoff).
"$BIN/bdserve" -addr "$A3" -quiet &
P1=$!

EB=0
wait "$PB" || EB=$?
PB=""
if [ "$EB" -ne 0 ]; then
    echo "transport smoke: chaos client exited $EB, want 0 (serving did not survive the kill)" >&2
    exit 1
fi

kill -TERM "$P1" "$P2"
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: post-chaos drain exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (served through SIGKILL + rejoin)"

# ---- Phase 3: distributed wordcount vs the in-process reference ---------

A5=127.0.0.1:7475
A6=127.0.0.1:7476
"$BIN/bdserve" -addr "$A5" -quiet &
P1=$!
"$BIN/bdserve" -addr "$A6" -quiet &
P2=$!

REF=$("$BIN/bdbench" -analytics wordcount -local -lines 4000 | grep 'digest:')
# The coordinator's dial retries cover server startup; no sleep needed.
DIST=$("$BIN/bdbench" -analytics wordcount -addr "$A5,$A6" -lines 4000 | grep 'digest:')
if [ -z "$REF" ] || [ "$REF" != "$DIST" ]; then
    echo "transport smoke: distributed wordcount diverged from the in-process reference" >&2
    echo "  local:       $REF" >&2
    echo "  distributed: $DIST" >&2
    exit 1
fi

kill -TERM "$P1" "$P2"
E1=0
E2=0
wait "$P1" || E1=$?
wait "$P2" || E2=$?
P1=""
P2=""
if [ "$E1" -ne 0 ] || [ "$E2" -ne 0 ]; then
    echo "transport smoke: analytics servers exited $E1/$E2, want 0/0" >&2
    exit 1
fi
echo "transport smoke: OK (distributed wordcount == in-process reference, $DIST)"
