// Package figures regenerates every table and figure of the paper's
// evaluation (Section 6) from the reimplemented suite: Tables 2-7 from the
// suite's catalogs and machine models, and Figures 2-6 by running the
// nineteen workloads (and the traditional-suite comparators) against the
// simulated processors. cmd/figures renders them to text files;
// bench_test.go re-derives the measured series as Go benchmarks.
package figures

import (
	"fmt"

	"repro/internal/comparators"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Config controls figure generation.
type Config struct {
	// Base is the input configuration applied at every scale (Scale is
	// overridden per data point).
	Base core.Input
	// CharScale is the scale used for the single-point characterizations
	// (Figures 4, 5 and 6). The paper characterizes sizable inputs; 8 is
	// the sweet spot between fidelity and runtime.
	CharScale int
	// LargeScale is Figure 2's "large input" (the best-performing
	// configuration; 32 here).
	LargeScale int
	// Verbose callback, invoked per completed data point (may be nil).
	Progress func(msg string)
}

// Quick returns the fast preset used by tests and benches: inputs scaled
// so that the baseline working set sits below the 12 MiB L3 and the
// largest input is comfortably above it, preserving every crossover the
// figures depend on (DESIGN.md §1).
func Quick() Config {
	return Config{
		Base: core.Input{
			ScaleUnit:     1 << 15, // 32 KiB per paper-GB: baseline 1 MiB, 32× = 32 MiB
			PagesPerMPage: 100,
			ReqsPerUnit:   50,
			VertexUnit:    1 << 11,
			Seed:          42,
			Workers:       4,
		},
		CharScale:  8,
		LargeScale: 32,
	}
}

// Full returns the higher-fidelity preset used by cmd/figures by default
// (≈4× the Quick data volumes).
func Full() Config {
	c := Quick()
	c.Base.ScaleUnit = 1 << 17
	c.Base.PagesPerMPage = 300
	c.Base.ReqsPerUnit = 200
	c.Base.VertexUnit = 1 << 12
	return c
}

func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// suite returns the workload list (package-level for test injection).
func suite() []core.Workload { return workloads.All() }

// charAt characterizes one workload at one scale on one machine.
func (c Config) charAt(w core.Workload, scale int, cfg sim.MachineConfig) (core.Result, error) {
	in := c.Base
	in.Scale = scale
	return core.Characterize(w, in, cfg)
}

// Fig2 reproduces Figure 2: L3 cache MPKI of the small (baseline) and
// large input configurations for each workload, plus the suite average.
func (c Config) Fig2() (*core.Table, error) {
	t := &core.Table{
		Title:   "Figure 2: L3 cache MPKI, large vs small input (Xeon E5645)",
		Headers: []string{"Workload", "LargeInput", "SmallInput"},
	}
	cfg := sim.XeonE5645()
	var sumL, sumS float64
	n := 0
	for _, w := range suite() {
		small, err := c.charAt(w, 1, cfg)
		if err != nil {
			return nil, err
		}
		large, err := c.charAt(w, c.LargeScale, cfg)
		if err != nil {
			return nil, err
		}
		l, s := large.Counts.L3MPKI(), small.Counts.L3MPKI()
		t.AddRow(w.Name(), core.CellF(l), core.CellF(s))
		sumL += l
		sumS += s
		n++
		c.progress("fig2 %s done (large %.2f / small %.2f)", w.Name(), l, s)
	}
	t.AddRow("Avg_BigData", core.CellF(sumL/float64(n)), core.CellF(sumS/float64(n)))
	return t, nil
}

// Fig3MIPS reproduces Figure 3-1: MIPS per workload across the data-volume
// sweep on the E5645 model.
func (c Config) Fig3MIPS() (*core.Table, error) {
	t := &core.Table{
		Title:   "Figure 3-1: MIPS of different workloads with different data scale",
		Headers: []string{"Workload", "Baseline", "4X", "8X", "16X", "32X"},
	}
	cfg := sim.XeonE5645()
	for _, w := range suite() {
		row := []string{w.Name()}
		for _, s := range core.Scales() {
			res, err := c.charAt(w, s, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, core.CellF(res.Counts.MIPS(cfg.Timing)))
		}
		t.AddRow(row...)
		c.progress("fig3-1 %s done", w.Name())
	}
	return t, nil
}

// Fig3Speedup reproduces Figure 3-2: the user-perceivable performance of
// each workload across the sweep, normalized to the baseline input.
func (c Config) Fig3Speedup() (*core.Table, error) {
	t := &core.Table{
		Title:   "Figure 3-2: Speedup of different workloads with different data scale",
		Headers: []string{"Workload", "Baseline", "4X", "8X", "16X", "32X"},
	}
	for _, w := range suite() {
		sp, _, err := core.SpeedupSweep(w, c.Base)
		if err != nil {
			return nil, err
		}
		row := []string{w.Name()}
		for _, v := range sp {
			row = append(row, core.CellF(v))
		}
		t.AddRow(row...)
		c.progress("fig3-2 %s done", w.Name())
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the instruction breakdown (load, store,
// branch, integer, FP) of every workload plus the comparator suites.
func (c Config) Fig4() (*core.Table, error) {
	t := &core.Table{
		Title:   "Figure 4: Instruction Breakdown (fractions)",
		Headers: []string{"Workload", "Load", "Store", "Branch", "Integer", "FP", "Int/FP"},
	}
	cfg := sim.XeonE5645()
	var avg sim.InstrMix
	n := 0
	addMix := func(name string, k sim.Counts) {
		m := k.Mix()
		t.AddRow(name, core.CellF(m.Load), core.CellF(m.Store), core.CellF(m.Branch),
			core.CellF(m.Integer), core.CellF(m.FP), core.CellF(k.IntToFPRatio()))
	}
	for _, w := range suite() {
		res, err := c.charAt(w, c.CharScale, cfg)
		if err != nil {
			return nil, err
		}
		addMix(w.Name(), res.Counts)
		m := res.Counts.Mix()
		avg.Load += m.Load
		avg.Store += m.Store
		avg.Branch += m.Branch
		avg.Integer += m.Integer
		avg.FP += m.FP
		n++
		c.progress("fig4 %s done", w.Name())
	}
	t.AddRow("Avg_BigData",
		core.CellF(avg.Load/float64(n)), core.CellF(avg.Store/float64(n)),
		core.CellF(avg.Branch/float64(n)), core.CellF(avg.Integer/float64(n)),
		core.CellF(avg.FP/float64(n)), "")
	for _, s := range comparators.Suites() {
		addMix("Avg_"+s, comparators.SuiteCounts(s, cfg))
		c.progress("fig4 %s done", s)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: floating-point (kind="fp") or integer
// (kind="int") operation intensity on both machine models.
func (c Config) Fig5(kind string) (*core.Table, error) {
	title := "Figure 5-1: Floating Point Operation Intensity"
	if kind == "int" {
		title = "Figure 5-2: Integer Operation Intensity"
	}
	t := &core.Table{Title: title, Headers: []string{"Workload", "E5310", "E5645"}}
	intensity := func(k sim.Counts) float64 {
		if kind == "int" {
			return k.IntIntensity()
		}
		return k.FPIntensity()
	}
	cfg5645, cfg5310 := sim.XeonE5645(), sim.XeonE5310()
	var sum45, sum10 float64
	n := 0
	for _, w := range suite() {
		r45, err := c.charAt(w, c.CharScale, cfg5645)
		if err != nil {
			return nil, err
		}
		r10, err := c.charAt(w, c.CharScale, cfg5310)
		if err != nil {
			return nil, err
		}
		i45, i10 := intensity(r45.Counts), intensity(r10.Counts)
		t.AddRow(w.Name(), fmt.Sprintf("%.4f", i10), fmt.Sprintf("%.4f", i45))
		sum45 += i45
		sum10 += i10
		n++
		c.progress("fig5(%s) %s done", kind, w.Name())
	}
	t.AddRow("Avg_BigData", fmt.Sprintf("%.4f", sum10/float64(n)),
		fmt.Sprintf("%.4f", sum45/float64(n)))
	for _, s := range comparators.Suites() {
		k45 := comparators.SuiteCounts(s, cfg5645)
		k10 := comparators.SuiteCounts(s, cfg5310)
		t.AddRow("Avg_"+s, fmt.Sprintf("%.4f", intensity(k10)),
			fmt.Sprintf("%.4f", intensity(k45)))
	}
	return t, nil
}

// Fig6Cache reproduces Figure 6-1: L1I / L2 / L3 MPKI per workload and
// comparator suite.
func (c Config) Fig6Cache() (*core.Table, error) {
	t := &core.Table{
		Title:   "Figure 6-1: Cache behaviors among different workloads (MPKI)",
		Headers: []string{"Workload", "L1I", "L2", "L3"},
	}
	cfg := sim.XeonE5645()
	var s1, s2, s3 float64
	n := 0
	for _, w := range suite() {
		res, err := c.charAt(w, c.CharScale, cfg)
		if err != nil {
			return nil, err
		}
		k := res.Counts
		t.AddRow(w.Name(), core.CellF(k.L1IMPKI()), core.CellF(k.L2MPKI()), core.CellF(k.L3MPKI()))
		s1 += k.L1IMPKI()
		s2 += k.L2MPKI()
		s3 += k.L3MPKI()
		n++
		c.progress("fig6-1 %s done", w.Name())
	}
	t.AddRow("Avg_BigData", core.CellF(s1/float64(n)), core.CellF(s2/float64(n)), core.CellF(s3/float64(n)))
	for _, s := range comparators.Suites() {
		k := comparators.SuiteCounts(s, cfg)
		t.AddRow("Avg_"+s, core.CellF(k.L1IMPKI()), core.CellF(k.L2MPKI()), core.CellF(k.L3MPKI()))
	}
	return t, nil
}

// Fig6TLB reproduces Figure 6-2: DTLB and ITLB MPKI.
func (c Config) Fig6TLB() (*core.Table, error) {
	t := &core.Table{
		Title:   "Figure 6-2: TLB behaviors among different workloads (MPKI)",
		Headers: []string{"Workload", "DTLB", "ITLB"},
	}
	cfg := sim.XeonE5645()
	var sd, si float64
	n := 0
	for _, w := range suite() {
		res, err := c.charAt(w, c.CharScale, cfg)
		if err != nil {
			return nil, err
		}
		k := res.Counts
		t.AddRow(w.Name(), core.CellF(k.DTLBMPKI()), core.CellF(k.ITLBMPKI()))
		sd += k.DTLBMPKI()
		si += k.ITLBMPKI()
		n++
		c.progress("fig6-2 %s done", w.Name())
	}
	t.AddRow("Avg_BigData", core.CellF(sd/float64(n)), core.CellF(si/float64(n)))
	for _, s := range comparators.Suites() {
		k := comparators.SuiteCounts(s, cfg)
		t.AddRow("Avg_"+s, core.CellF(k.DTLBMPKI()), core.CellF(k.ITLBMPKI()))
	}
	return t, nil
}
