package figures

import (
	"fmt"
	"strings"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sqlengine"
	"repro/internal/workloads"
)

// Table2 reproduces the paper's Table 2: the real-world seed data sets.
func Table2() *core.Table {
	t := &core.Table{
		Title:   "Table 2: The summary of real-world data sets",
		Headers: []string{"No.", "Data sets", "Type", "Source", "Size", "Generator"},
	}
	for _, d := range bdgs.DataSets() {
		t.AddRow(fmt.Sprintf("%d", d.No), d.Name, d.DataType, d.Source, d.Size, d.Generator)
	}
	return t
}

// Table3 reproduces the paper's Table 3: the e-commerce schema.
func Table3() *core.Table {
	t := &core.Table{
		Title:   "Table 3: Schema of E-commerce Transaction Data",
		Headers: []string{"Table", "Column", "Type"},
	}
	for _, col := range workloads.OrderSchema {
		t.AddRow("ORDER", col.Name, colType(col.Type))
	}
	for _, col := range workloads.ItemSchema {
		t.AddRow("ORDER_ITEM", col.Name, colType(col.Type))
	}
	return t
}

func colType(t sqlengine.ColType) string { return [...]string{"INT", "NUMBER"}[t] }

// Table4 reproduces the paper's Table 4: the suite summary.
func Table4() *core.Table {
	t := &core.Table{
		Title: "Table 4: The Summary of BigDataBench",
		Headers: []string{"Workload", "Application Type", "Data Type",
			"Data Source", "Software Stack", "Metric"},
	}
	for _, w := range workloads.All() {
		t.AddRow(w.Name(), w.Class().String(), w.DataType(), w.DataSource(),
			w.Stack(), w.Metric().String())
	}
	return t
}

// Table5 and Table7 reproduce the machine-configuration tables.
func Table5() *core.Table { return machineTable("Table 5", sim.XeonE5645()) }

// Table7 is the two-level E5310 configuration.
func Table7() *core.Table { return machineTable("Table 7", sim.XeonE5310()) }

func machineTable(title string, cfg sim.MachineConfig) *core.Table {
	t := &core.Table{
		Title:   fmt.Sprintf("%s: Configuration details of %s", title, cfg.CPU),
		Headers: []string{"Component", "Configuration"},
	}
	t.AddRow("CPU Type", cfg.CPU)
	t.AddRow("Cores", fmt.Sprintf("%d cores@%.2fG", cfg.Cores, cfg.Timing.FreqHz/1e9))
	t.AddRow("L1 ICache", cacheDesc(cfg.L1I))
	t.AddRow("L1 DCache", cacheDesc(cfg.L1D))
	t.AddRow("L2 Cache", cacheDesc(cfg.L2))
	if cfg.L3 != nil {
		t.AddRow("L3 Cache", cacheDesc(*cfg.L3))
	} else {
		t.AddRow("L3 Cache", "None")
	}
	t.AddRow("ITLB", fmt.Sprintf("%d entries, %d-way", cfg.ITLB.Entries, cfg.ITLB.Assoc))
	t.AddRow("DTLB", fmt.Sprintf("%d entries, %d-way", cfg.DTLB.Entries, cfg.DTLB.Assoc))
	return t
}

func cacheDesc(c sim.CacheConfig) string {
	size := fmt.Sprintf("%d KB", c.Size>>10)
	if c.Size >= 1<<20 {
		size = fmt.Sprintf("%d MB", c.Size>>20)
	}
	return fmt.Sprintf("%s, %d-way, %d B lines", size, c.Assoc, c.LineSize)
}

// Table6 reproduces the paper's Table 6: workloads in experiments.
func Table6() *core.Table {
	t := &core.Table{
		Title:   "Table 6: Workloads in experiments",
		Headers: []string{"ID", "Workloads", "Software Stack", "Input size"},
	}
	for _, e := range core.Experiments() {
		t.AddRow(fmt.Sprintf("%d", e.ID), e.Workload, e.Stack, e.InputRule)
	}
	return t
}

// Table1 reproduces the paper's Table 1: the comparison of big data
// benchmarking efforts (verbatim from the paper; documentation, not
// measurement).
func Table1() *core.Table {
	t := &core.Table{
		Title:   "Table 1: Comparison of Big Data Benchmarking Efforts",
		Headers: []string{"Effort", "Real data sets", "Scalability", "Workload variety", "Objects to Test", "Status"},
	}
	rows := [][]string{
		{"HiBench", "text (1)", "Partial", "Offline/Realtime", "Hadoop and Hive", "Open Source"},
		{"BigBench", "None", "N/A", "Offline Analytics", "DBMS and Hadoop", "Proposal"},
		{"AMP Benchmarks", "None", "N/A", "Realtime Analytics", "Realtime systems", "Open Source"},
		{"YCSB", "None", "N/A", "Online Services", "NoSQL systems", "Open Source"},
		{"LinkBench", "graph (1)", "Partial", "Online Services", "Graph database", "Open Source"},
		{"CloudSuite", "text (1)", "Partial", "Online/Offline", "Architectures", "Open Source"},
		{"BigDataBench", "text(2) graph(2) table(2)", "Total", "Online/Offline/Realtime",
			"Systems and architecture", "Open Source"},
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// AllTables returns every table emitter keyed by its artifact name.
func AllTables() map[string]func() *core.Table {
	return map[string]func() *core.Table{
		"table1": Table1,
		"table2": Table2,
		"table3": Table3,
		"table4": Table4,
		"table5": Table5,
		"table6": Table6,
		"table7": Table7,
	}
}

// artifactOrder is the render order for cmd/figures.
func ArtifactOrder() []string {
	return []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig2", "fig3_1", "fig3_2", "fig4", "fig5_1", "fig5_2", "fig6_1", "fig6_2"}
}

// normalize lowercases and strips separators for -only matching.
func NormalizeArtifact(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, "-", "_")
	s = strings.ReplaceAll(s, ".", "_")
	return s
}
