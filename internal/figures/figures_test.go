package figures

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestStaticTables(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *core.Table
		rows int
	}{
		{"table1", Table1, 7},
		{"table2", Table2, 6},
		{"table3", Table3, 9},
		{"table4", Table4, 19},
		{"table5", Table5, 8},
		{"table6", Table6, 19},
		{"table7", Table7, 8},
	}
	for _, c := range cases {
		tab := c.gen()
		if len(tab.Rows) != c.rows {
			t.Errorf("%s: %d rows, want %d", c.name, len(tab.Rows), c.rows)
		}
		if tab.Title == "" {
			t.Errorf("%s: missing title", c.name)
		}
		out := tab.Render()
		if !strings.Contains(out, tab.Headers[0]) {
			t.Errorf("%s: render missing header", c.name)
		}
	}
}

func TestTable5MentionsE5645Geometry(t *testing.T) {
	out := Table5().Render()
	for _, want := range []string{"Intel Xeon E5645", "32 KB", "12 MB", "2.40G"} {
		if !strings.Contains(out, want) {
			t.Errorf("table5 missing %q:\n%s", want, out)
		}
	}
	out7 := Table7().Render()
	for _, want := range []string{"Intel Xeon E5310", "None", "1.60G"} {
		if !strings.Contains(out7, want) {
			t.Errorf("table7 missing %q", want)
		}
	}
}

func TestTable3MatchesSchema(t *testing.T) {
	out := Table3().Render()
	for _, col := range []string{"ORDER_ID", "BUYER_ID", "CREATE_DATE",
		"ITEM_ID", "GOODS_ID", "GOODS_NUMBER", "GOODS_PRICE", "GOODS_AMOUNT"} {
		if !strings.Contains(out, col) {
			t.Errorf("table3 missing column %s", col)
		}
	}
}

func TestArtifactPlumbing(t *testing.T) {
	order := ArtifactOrder()
	if len(order) != 15 {
		t.Fatalf("artifact order has %d entries", len(order))
	}
	tables := AllTables()
	for name := range tables {
		found := false
		for _, o := range order {
			if o == name {
				found = true
			}
		}
		if !found {
			t.Errorf("table %s not in artifact order", name)
		}
	}
	if NormalizeArtifact(" Fig6-1 ") != "fig6_1" {
		t.Error("NormalizeArtifact broken")
	}
}

// tinyCfg is a minimal-cost figure config for plumbing tests.
func tinyCfg() Config {
	return Config{
		Base: core.Input{
			ScaleUnit:     1 << 12,
			PagesPerMPage: 20,
			ReqsPerUnit:   20,
			VertexUnit:    1 << 9,
			Seed:          3,
			Workers:       2,
		},
		CharScale:  1,
		LargeScale: 4,
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float cell %q", s)
	}
	return v
}

func TestFig2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	tab, err := tinyCfg().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 { // 19 workloads + Avg
		t.Fatalf("fig2 rows = %d", len(tab.Rows))
	}
	if tab.Rows[19][0] != "Avg_BigData" {
		t.Fatal("fig2 missing Avg row")
	}
	for _, row := range tab.Rows {
		parseF(t, row[1])
		parseF(t, row[2])
	}
}

func TestFig3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	cfg := tinyCfg()
	mips, err := cfg.Fig3MIPS()
	if err != nil {
		t.Fatal(err)
	}
	if len(mips.Rows) != 19 || len(mips.Rows[0]) != 6 {
		t.Fatalf("fig3-1 shape %dx%d", len(mips.Rows), len(mips.Rows[0]))
	}
	sp, err := cfg.Fig3Speedup()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range sp.Rows {
		if base := parseF(t, row[1]); base != 1 {
			t.Errorf("%s: baseline speedup %f, want 1", row[0], base)
		}
	}
}

func TestFig4AndFig6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	cfg := tinyCfg()
	f4, err := cfg.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// 19 workloads + Avg_BigData + 4 comparator suites.
	if len(f4.Rows) != 24 {
		t.Fatalf("fig4 rows = %d", len(f4.Rows))
	}
	for _, row := range f4.Rows {
		sum := 0.0
		for _, cell := range row[1:6] {
			sum += parseF(t, cell)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: mix fractions sum to %f", row[0], sum)
		}
	}
	f6, err := cfg.Fig6Cache()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 24 {
		t.Fatalf("fig6-1 rows = %d", len(f6.Rows))
	}
	f6t, err := cfg.Fig6TLB()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6t.Rows) != 24 {
		t.Fatalf("fig6-2 rows = %d", len(f6t.Rows))
	}
}

func TestFig5Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	tab, err := tinyCfg().Fig5("fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 24 {
		t.Fatalf("fig5 rows = %d", len(tab.Rows))
	}
	if tab.Headers[1] != "E5310" || tab.Headers[2] != "E5645" {
		t.Fatal("fig5 must report both machine models")
	}
}
