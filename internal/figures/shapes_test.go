package figures

import (
	"testing"

	"repro/internal/comparators"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestHeadlineShapes is the repository's reproduction gate: it verifies
// the qualitative results of the paper's Section 6 (DESIGN.md §4 lists
// them) on a reduced but representative input. It runs the full suite
// once, so it is skipped under -short.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite")
	}
	cfg := Quick()
	cfg.CharScale = 4
	m5645 := sim.XeonE5645()
	m5310 := sim.XeonE5310()

	type row struct {
		name  string
		k5645 sim.Counts
		k5310 sim.Counts
	}
	var rows []row
	for _, w := range workloads.All() {
		in := cfg.Base
		in.Scale = cfg.CharScale
		a, err := core.Characterize(w, in, m5645)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Characterize(w, in, m5310)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row{w.Name(), a.Counts, b.Counts})
	}
	avg := func(f func(sim.Counts) float64, on5310 bool) float64 {
		s := 0.0
		for _, r := range rows {
			k := r.k5645
			if on5310 {
				k = r.k5310
			}
			s += f(k)
		}
		return s / float64(len(rows))
	}
	suites := map[string]sim.Counts{}
	for _, s := range comparators.Suites() {
		suites[s] = comparators.SuiteCounts(s, m5645)
	}

	// Shape 1: FP operation intensity of big data is far below the
	// FP-oriented traditional suites (paper: two orders of magnitude).
	bdFP := avg(sim.Counts.FPIntensity, false)
	for _, s := range []string{"HPCC", "PARSEC", "SPECFP"} {
		if suites[s].FPIntensity() < 8*bdFP {
			t.Errorf("shape1: %s FP intensity %.3f not ≫ big-data %.3f",
				s, suites[s].FPIntensity(), bdFP)
		}
	}

	// Shape 1b: integer intensity stays in the same order of magnitude.
	bdInt := avg(sim.Counts.IntIntensity, false)
	if bdInt < 0.1 || bdInt > 30 {
		t.Errorf("shape1b: big-data integer intensity %.3f out of range", bdInt)
	}

	// Shape 2: the average integer:FP ratio of big data is O(100), far
	// above HPCC/PARSEC/SPECFP and far below none of them.
	bdRatio := avg(sim.Counts.IntToFPRatio, false)
	if bdRatio < 20 || bdRatio > 400 {
		t.Errorf("shape2: big-data int/FP ratio %.1f, want O(75)", bdRatio)
	}
	for _, s := range []string{"HPCC", "PARSEC", "SPECFP"} {
		if r := suites[s].IntToFPRatio(); r > 5 {
			t.Errorf("shape2: %s int/FP ratio %.2f, want ≈1", s, r)
		}
	}
	if r := suites["SPECINT"].IntToFPRatio(); r < 50 {
		t.Errorf("shape2: SPECINT int/FP ratio %.1f, want very high", r)
	}

	// Shape 3: big-data L1I MPKI ≥ 4× every traditional suite.
	bdL1I := avg(sim.Counts.L1IMPKI, false)
	for s, k := range suites {
		if bdL1I < 4*k.L1IMPKI() {
			t.Errorf("shape3: big-data L1I %.2f not ≥4× %s %.2f", bdL1I, s, k.L1IMPKI())
		}
	}
	if bdL1I < 5 {
		t.Errorf("shape3: big-data average L1I MPKI %.2f too low (paper: 23)", bdL1I)
	}

	// Shape 4: BFS is the analytics L2 outlier; Nutch is the low-L2
	// service.
	byName := map[string]sim.Counts{}
	for _, r := range rows {
		byName[r.name] = r.k5645
	}
	if bfs := byName["BFS"].L2MPKI(); bfs < 1.5*avg(sim.Counts.L2MPKI, false) {
		t.Errorf("shape4: BFS L2 MPKI %.1f should stand far above the average", bfs)
	}
	nutch := byName["Nutch Server"].L2MPKI()
	for _, svc := range []string{"Olio Server", "Rubis Server"} {
		if nutch >= byName[svc].L2MPKI() {
			t.Errorf("shape4: Nutch L2 %.1f should undercut %s %.1f",
				nutch, svc, byName[svc].L2MPKI())
		}
	}

	// Shape 5: the L3 is effective — big-data LLC MPKI is small (same
	// magnitude as the traditional suites, not ×10 like L1I/L2).
	bdL3 := avg(sim.Counts.L3MPKI, false)
	if bdL3 > 8 {
		t.Errorf("shape5: big-data average L3 MPKI %.2f too high (paper: 1.5)", bdL3)
	}
	// ...and L3 filtering explains why FP intensity is higher on the
	// three-level E5645 than the two-level E5310 (Section 6.3.1).
	bdFP5310 := avg(sim.Counts.FPIntensity, true)
	if bdFP <= bdFP5310 {
		t.Errorf("shape5b: FP intensity E5645 %.4f should exceed E5310 %.4f",
			bdFP, bdFP5310)
	}

	// Shape 6: diversity — DTLB MPKI spans more than an order of
	// magnitude across workloads (paper: 0.2 Nutch to 14 BFS).
	minD, maxD := 1e18, 0.0
	for _, r := range rows {
		d := r.k5645.DTLBMPKI()
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 10*minD {
		t.Errorf("shape6: DTLB diversity too narrow: %.3f .. %.3f", minD, maxD)
	}
	if byName["BFS"].DTLBMPKI() < byName["Nutch Server"].DTLBMPKI() {
		t.Error("shape6: BFS should out-miss Nutch in the DTLB")
	}

	// Shape 7: ITLB MPKI of big data well above the traditional suites.
	bdITLB := avg(sim.Counts.ITLBMPKI, false)
	for s, k := range suites {
		if k.ITLBMPKI() > bdITLB {
			t.Errorf("shape7: %s ITLB %.3f exceeds big-data %.3f", s, k.ITLBMPKI(), bdITLB)
		}
	}
}

// TestDataVolumeShapes verifies the Section 6.2 findings: metrics move
// with input volume (Grep MIPS gap; K-means L3 gap).
func TestDataVolumeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs scale sweeps")
	}
	cfg := Quick()
	m := sim.XeonE5645()
	runAt := func(w core.Workload, scale int) sim.Counts {
		in := cfg.Base
		in.Scale = scale
		res, err := core.Characterize(w, in, m)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counts
	}
	// Grep MIPS: baseline well below 32× (paper: 2.9× gap).
	g1 := runAt(workloads.NewGrep(), 1)
	g32 := runAt(workloads.NewGrep(), 32)
	gap := g32.MIPS(m.Timing) / g1.MIPS(m.Timing)
	if gap < 1.5 {
		t.Errorf("grep MIPS 32×/baseline = %.2f, want a pronounced rise (paper 2.9)", gap)
	}
	// K-means L3 MPKI: larger input misses more (paper: 0.8 → 2.0).
	k1 := runAt(workloads.NewKMeans(), 1)
	k32 := runAt(workloads.NewKMeans(), 32)
	if k32.L3MPKI() < 1.3*k1.L3MPKI() {
		t.Errorf("kmeans L3 MPKI 32×/baseline = %.2f/%.2f, want ≥1.3× rise",
			k32.L3MPKI(), k1.L3MPKI())
	}
}
