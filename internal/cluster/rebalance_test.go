package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/engine"
)

func fillCluster(c *Cluster, n int) map[string]string {
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("reb-%05d", i)
		v := fmt.Sprintf("val-%d", i)
		c.Put([]byte(k), []byte(v))
		want[k] = v
	}
	return want
}

func checkAll(t *testing.T, c *Cluster, want map[string]string) {
	t.Helper()
	for k, v := range want {
		got, ok := c.Get([]byte(k))
		if !ok || !bytes.Equal(got, []byte(v)) {
			t.Fatalf("key %q = %q, %v after rebalance; want %q", k, got, ok, v)
		}
	}
}

// TestRebalanceAddNodeDeterministic grows a 4-shard cluster to 5 and
// checks the migration against the ring's own prediction: exactly the
// keys whose primary arc moved land on the new node, every key stays
// readable, and a second identical run reproduces the same report.
func TestRebalanceAddNodeDeterministic(t *testing.T) {
	const n = 3000
	run := func() (MoveReport, *Cluster) {
		c := testCluster(4, 1)
		want := fillCluster(c, n)

		// Predict the move set from ring geometry alone.
		c.mu.RLock()
		old := c.ring.Clone()
		next := c.ring.Clone()
		c.mu.RUnlock()
		next.Add(4) // New assigns ids sequentially, so the next id is 4
		predicted := 0
		for k := range want {
			if old.Primary([]byte(k)) != next.Primary([]byte(k)) {
				predicted++
			}
		}

		id, report, err := c.AddNode()
		if err != nil {
			t.Fatal(err)
		}
		if id != 4 {
			t.Fatalf("new node id = %d, want 4", id)
		}
		if report.Scanned != n {
			t.Fatalf("scanned %d keys, want %d", report.Scanned, n)
		}
		if report.Copied != predicted || report.Dropped != predicted {
			t.Fatalf("copied/dropped = %d/%d, want %d (ring prediction)",
				report.Copied, report.Dropped, predicted)
		}
		if report.In[4] != predicted {
			t.Fatalf("new node received %d copies, want %d", report.In[4], predicted)
		}
		if predicted == 0 {
			t.Fatal("degenerate test: no keys predicted to move")
		}
		checkAll(t, c, want)
		return report, c
	}
	r1, c1 := run()
	r2, c2 := run()
	defer c1.Close()
	defer c2.Close()
	if r1.Copied != r2.Copied || r1.Scanned != r2.Scanned || r1.Dropped != r2.Dropped {
		t.Fatalf("rebalance not deterministic: %v vs %v", r1, r2)
	}
}

// TestRebalanceRemoveNode drains a shard and verifies its keys survive on
// the remaining members.
func TestRebalanceRemoveNode(t *testing.T) {
	c := testCluster(4, 1)
	defer c.Close()
	want := fillCluster(c, 2000)
	report, err := c.RemoveNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 3 {
		t.Fatalf("nodes = %d, want 3", c.Nodes())
	}
	if report.Copied == 0 {
		t.Fatal("removing a populated shard must move its keys")
	}
	checkAll(t, c, want)
	if _, err := c.RemoveNode(2); err == nil {
		t.Fatal("removing a removed node must fail")
	}
}

// TestRebalanceReplicatedRoundTrip checks migration under R=2 and that an
// add followed by a remove restores the original placement with every
// copy intact.
func TestRebalanceReplicatedRoundTrip(t *testing.T) {
	c := testCluster(3, 2)
	defer c.Close()
	want := fillCluster(c, 1500)

	countCopies := func(k string) int {
		c.mu.RLock()
		defer c.mu.RUnlock()
		copies := 0
		for _, node := range c.nodes {
			if _, ok, _ := node.directGet([]byte(k)); ok {
				copies++
			}
		}
		return copies
	}

	id, _, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	checkAll(t, c, want)
	for k := range want {
		if got := countCopies(k); got != 2 {
			t.Fatalf("key %q has %d copies after add, want 2", k, got)
		}
	}
	if _, err := c.RemoveNode(id); err != nil {
		t.Fatal(err)
	}
	checkAll(t, c, want)
	for k := range want {
		if got := countCopies(k); got != 2 {
			t.Fatalf("key %q has %d copies after remove, want 2", k, got)
		}
	}
	// Scans still see exactly one copy of each key.
	got, err := c.Scan(nil, len(want)+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan sees %d keys, want %d", len(got), len(want))
	}
}

// TestRebalanceGrowsIntoReplication verifies that a cluster built with
// fewer members than the requested R reaches full replication once
// AddNode supplies enough nodes — both for pre-existing keys (via
// migration) and for new writes.
func TestRebalanceGrowsIntoReplication(t *testing.T) {
	c := New(Config{Shards: 1, Replication: 2, Engine: engine.Options{MemtableBytes: 32 << 10}})
	defer c.Close()
	want := fillCluster(c, 800)
	if _, _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	checkAll(t, c, want)
	c.Put([]byte("post-grow"), []byte("v"))
	c.mu.RLock()
	defer c.mu.RUnlock()
	for k := range want {
		copies := 0
		for _, node := range c.nodes {
			if _, ok, _ := node.directGet([]byte(k)); ok {
				copies++
			}
		}
		if copies != 2 {
			t.Fatalf("pre-existing key %q has %d copies after growth, want 2", k, copies)
		}
	}
	copies := 0
	for _, node := range c.nodes {
		if _, ok, _ := node.directGet([]byte("post-grow")); ok {
			copies++
		}
	}
	if copies != 2 {
		t.Fatalf("new write has %d copies, want 2", copies)
	}
}

// TestRebalanceLastNodeGuard pins the cannot-empty-the-cluster invariant.
func TestRebalanceLastNodeGuard(t *testing.T) {
	c := New(Config{Shards: 1, Engine: engine.Options{}})
	defer c.Close()
	if _, err := c.RemoveNode(0); err == nil {
		t.Fatal("removing the last node must fail")
	}
}
