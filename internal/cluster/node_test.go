package cluster

import (
	"sync"
	"testing"

	"repro/internal/engine"
)

// TestNodeAdmissionControl fills a stopped node's bounded queue and
// verifies the overflow is shed, then starts the workers and verifies the
// accepted requests drain.
func TestNodeAdmissionControl(t *testing.T) {
	eng, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := newNode(0, eng, 2, 1, 8)

	var done sync.WaitGroup
	results := make([]OpResult, 3)
	mk := func(i int) *request {
		return &request{
			ops:      []Op{{Kind: OpPut, Key: []byte{byte('a' + i)}, Value: []byte("v")}},
			replicas: [][]mirror{nil},
			results:  results,
			idx:      []int{i},
			done:     &done,
		}
	}
	done.Add(2)
	if err := n.trySubmit(mk(0)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if err := n.trySubmit(mk(1)); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if err := n.trySubmit(mk(2)); err != ErrOverload {
		t.Fatalf("third submit = %v, want ErrOverload", err)
	}
	st := n.stats()
	if st.Accepted != 2 || st.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 2/1", st.Accepted, st.Rejected)
	}

	n.start()
	done.Wait()
	if v, ok := n.eng.Get([]byte("a")); !ok || string(v) != "v" {
		t.Fatal("accepted request not applied")
	}
	n.close()
	if err := n.trySubmit(mk(2)); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}

// TestNodeBatchCoalescing verifies a worker drains queued requests in
// coalesced groups bounded by MaxBatch.
func TestNodeBatchCoalescing(t *testing.T) {
	eng, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := newNode(0, eng, 64, 1, 16)
	var done sync.WaitGroup
	const reqs = 32
	for i := 0; i < reqs; i++ {
		done.Add(1)
		req := &request{
			ops:      []Op{{Kind: OpPut, Key: []byte{byte(i)}, Value: []byte{byte(i)}}},
			replicas: [][]mirror{nil},
			done:     &done,
		}
		if err := n.submit(req); err != nil {
			t.Fatal(err)
		}
	}
	n.start()
	done.Wait()
	n.close()
	st := n.stats()
	if st.Ops != reqs {
		t.Fatalf("ops = %d, want %d", st.Ops, reqs)
	}
	// All 32 single-op requests were queued before the worker started, so
	// they drain in at most ceil(32/16) + slack wakeups, well under 32.
	if st.Batches >= reqs/2 {
		t.Fatalf("batches = %d, want coalescing well under %d", st.Batches, reqs)
	}
}
