package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
)

// loopRemote adapts a second in-process Cluster to the Remote interface —
// the transport-free stand-in for a shard server in another process.
type loopRemote struct {
	c *Cluster
	// overload forces TryApply to shed, for ErrOverload propagation tests.
	overload bool
}

func (r *loopRemote) Ping() error { return nil }

func (r *loopRemote) Get(key []byte) ([]byte, bool, error) {
	v, ok := r.c.Get(key)
	return v, ok, nil
}
func (r *loopRemote) Put(key, value []byte) error        { r.c.Put(key, value); return nil }
func (r *loopRemote) Delete(key []byte) error            { r.c.Delete(key); return nil }
func (r *loopRemote) Apply(ops []Op) ([]OpResult, error) { return r.c.Apply(ops) }
func (r *loopRemote) TryApply(ops []Op) ([]OpResult, error) {
	if r.overload {
		return nil, ErrOverload
	}
	return r.c.TryApply(ops)
}
func (r *loopRemote) Scan(start []byte, limit int) ([]engine.Entry, error) {
	return r.c.Scan(start, limit)
}
func (r *loopRemote) Stats() (Stats, error) { return r.c.Stats(), nil }
func (r *loopRemote) Close() error          { r.c.Close(); return nil }

func newLoopRemote() *loopRemote {
	return &loopRemote{c: New(Config{Shards: 1, Engine: engine.Options{MemtableBytes: 32 << 10}})}
}

// TestAddRemoteMixedMembership joins two remote shards next to a local
// one and runs the conformance behaviors through the mixed ring:
// read-your-writes point ops, positional batches, and scatter-gather
// scans that merge local and remote partials.
func TestAddRemoteMixedMembership(t *testing.T) {
	c := testCluster(1, 1)
	defer c.Close()
	r1, r2 := newLoopRemote(), newLoopRemote()
	if _, _, err := c.AddRemote(r1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddRemote(r2); err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 3 {
		t.Fatalf("members = %d, want 3", c.Nodes())
	}

	ref, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("mix-%05d", i))
		val := []byte(fmt.Sprintf("v%d", i))
		c.Put(key, val)
		ref.Put(key, val)
		if got, ok := c.Get(key); !ok || !bytes.Equal(got, val) {
			t.Fatalf("read-your-writes violated for %q: %q, %v", key, got, ok)
		}
	}
	// Every member received a share of the keyspace.
	for _, ns := range c.Stats().Nodes {
		if ns.Store.Puts == 0 {
			t.Fatalf("member %d received no writes", ns.ID)
		}
	}
	// Batched reads through the queues resolve across the mixed ring.
	reads := make([]Op, 0, 256)
	for i := 0; i < 256; i++ {
		reads = append(reads, Op{Kind: OpGet, Key: []byte(fmt.Sprintf("mix-%05d", i))})
	}
	res, err := c.Apply(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Found || !bytes.Equal(r.Value, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("batched read %d = %+v", i, r)
		}
	}
	// Scatter-gather scans merge remote and local partials in key order.
	for _, start := range []string{"", "mix-00500", "zzz"} {
		got, err := c.Scan([]byte(start), 64)
		if err != nil {
			t.Fatalf("scan(%q): %v", start, err)
		}
		want := ref.Scan([]byte(start), 64)
		if len(got) != len(want) {
			t.Fatalf("scan(%q) len = %d, want %d", start, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("scan(%q)[%d] = %q, want %q", start, i, got[i].Key, want[i].Key)
			}
		}
	}
}

// TestAddRemoteReplication verifies R=2 across a local/remote pair:
// every key lands on exactly two members and survives the loss of
// either copy's routing.
func TestAddRemoteReplication(t *testing.T) {
	c := New(Config{Shards: 1, Replication: 2, Engine: engine.Options{MemtableBytes: 32 << 10}})
	defer c.Close()
	rem := newLoopRemote()
	if _, _, err := c.AddRemote(rem); err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("rep-%04d", i))
		c.Put(key, key)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("rep-%04d", i))
		copies := 0
		for _, m := range c.nodes {
			if _, ok, _ := m.directGet(key); ok {
				copies++
			}
		}
		if copies != 2 {
			t.Fatalf("key %q has %d copies, want 2", key, copies)
		}
	}
}

// TestAddRemoteOverloadPropagation pins that a remote's shed TryApply
// surfaces as ErrOverload at the coordinator even though remote
// sub-batches complete asynchronously.
func TestAddRemoteOverloadPropagation(t *testing.T) {
	c := NewEmpty(Config{})
	defer c.Close()
	rem := newLoopRemote()
	rem.overload = true
	if _, _, err := c.AddRemote(rem); err != nil {
		t.Fatal(err)
	}
	ops := []Op{{Kind: OpPut, Key: []byte("k"), Value: []byte("v")}}
	if _, err := c.TryApply(ops); err != ErrOverload {
		t.Fatalf("TryApply = %v, want ErrOverload", err)
	}
	rem.overload = false
	if _, err := c.TryApply(ops); err != nil {
		t.Fatalf("TryApply after overload cleared: %v", err)
	}
}

// TestAddRemoteRebalance checks that membership changes migrate data
// onto and off a remote member like any local shard.
func TestAddRemoteRebalance(t *testing.T) {
	c := testCluster(2, 1)
	defer c.Close()
	want := fillCluster(c, 1000)
	rem := newLoopRemote()
	id, report, err := c.AddRemote(rem)
	if err != nil {
		t.Fatal(err)
	}
	if report.In[id] == 0 {
		t.Fatal("no keys migrated onto the remote member")
	}
	checkAll(t, c, want)
	if _, err := c.RemoveNode(id); err != nil {
		t.Fatal(err)
	}
	checkAll(t, c, want)
}

// TestRemotePrimaryShedKeepsReplicasConsistent pins the R-copy
// invariant under admission control: when a remote primary sheds a
// replicated write, the replica must not receive it either (applied
// nowhere), and once accepted it must reach both copies.
func TestRemotePrimaryShedKeepsReplicasConsistent(t *testing.T) {
	c := New(Config{Shards: 1, Replication: 2, Engine: engine.Options{MemtableBytes: 32 << 10}})
	defer c.Close()
	rem := newLoopRemote()
	remID, _, err := c.AddRemote(rem)
	if err != nil {
		t.Fatal(err)
	}
	// Find a key whose primary is the remote member.
	var key []byte
	c.mu.RLock()
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("shedrep-%04d", i))
		if owners := c.ring.Owners(k, 2); owners[0] == remID {
			key = k
			break
		}
	}
	c.mu.RUnlock()
	if key == nil {
		t.Fatal("no key with a remote primary found")
	}

	rem.overload = true
	ops := []Op{{Kind: OpPut, Key: key, Value: []byte("v")}}
	if _, err := c.TryApply(ops); err != ErrOverload {
		t.Fatalf("TryApply = %v, want ErrOverload", err)
	}
	if _, ok := rem.c.Get(key); ok {
		t.Fatal("shed write reached the remote primary")
	}
	c.mu.RLock()
	_, onLocal, _ := c.nodes[0].directGet(key)
	c.mu.RUnlock()
	if onLocal {
		t.Fatal("shed write was mirrored to the replica — copies diverged")
	}

	rem.overload = false
	if _, err := c.TryApply(ops); err != nil {
		t.Fatalf("TryApply after overload: %v", err)
	}
	if _, ok := rem.c.Get(key); !ok {
		t.Fatal("accepted write missing on the remote primary")
	}
	c.mu.RLock()
	_, onLocal, _ = c.nodes[0].directGet(key)
	c.mu.RUnlock()
	if !onLocal {
		t.Fatal("accepted write not mirrored to the replica")
	}
}

// failingRemote errors every RPC — a shard behind a dead transport.
type failingRemote struct{ loopRemote }

var errNetDown = errors.New("transport down")

func (r *failingRemote) Scan(start []byte, limit int) ([]engine.Entry, error) {
	return nil, errNetDown
}
func (r *failingRemote) Put(key, value []byte) error { return errNetDown }

// TestMigrationSurfacesRemoteFailure pins that a membership change
// whose data movement hits a dead transport reports the failure instead
// of silently returning a clean MoveReport with keys left behind.
func TestMigrationSurfacesRemoteFailure(t *testing.T) {
	c := testCluster(2, 1)
	defer c.Close()
	fillCluster(c, 500)
	dead := &failingRemote{}
	dead.c = New(Config{Shards: 1, Engine: engine.Options{}})
	if _, _, err := c.AddRemote(dead); !errors.Is(err, errNetDown) {
		t.Fatalf("AddRemote with dead transport = %v, want errNetDown", err)
	}
	// The failure is audited on the member.
	st := c.Stats()
	var transportErrs uint64
	for _, ns := range st.Nodes {
		transportErrs += ns.TransportErrs
	}
	if transportErrs == 0 {
		t.Fatal("transport failures not surfaced in NodeStats.TransportErrs")
	}
}

// TestNewEmpty pins the no-members behavior.
func TestNewEmpty(t *testing.T) {
	c := NewEmpty(Config{})
	defer c.Close()
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("read on empty coordinator found a key")
	}
	if _, err := c.Apply([]Op{{Kind: OpGet, Key: []byte("k")}}); err != ErrNoNodes {
		t.Fatalf("Apply on empty coordinator = %v, want ErrNoNodes", err)
	}
}
