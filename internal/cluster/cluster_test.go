package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
)

func testCluster(shards, replication int) *Cluster {
	return New(Config{
		Shards:      shards,
		Replication: replication,
		Engine:      engine.Options{MemtableBytes: 32 << 10},
	})
}

func TestClusterPointOps(t *testing.T) {
	c := testCluster(4, 1)
	defer c.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		c.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	for i := 0; i < n; i++ {
		v, ok := c.Get([]byte(fmt.Sprintf("key-%05d", i)))
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get key-%05d = %q, %v", i, v, ok)
		}
	}
	if _, ok := c.Get([]byte("absent")); ok {
		t.Fatal("absent key found")
	}
	c.Delete([]byte("key-00000"))
	if _, ok := c.Get([]byte("key-00000")); ok {
		t.Fatal("deleted key still readable")
	}
	// The corpus is spread across every shard.
	for _, ns := range c.Stats().Nodes {
		if ns.Store.Puts == 0 {
			t.Fatalf("node %d received no writes", ns.ID)
		}
	}
}

func TestClusterReadYourWritesUnderReplication(t *testing.T) {
	c := testCluster(5, 3)
	defer c.Close()
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("ryw-%04d", i))
		val := []byte(fmt.Sprintf("v%d", i))
		c.Put(key, val)
		if got, ok := c.Get(key); !ok || !bytes.Equal(got, val) {
			t.Fatalf("read-your-writes violated for %q: %q, %v", key, got, ok)
		}
	}
	// Every key is stored on exactly R nodes.
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("ryw-%04d", i))
		copies := 0
		for _, n := range c.nodes {
			if _, ok, _ := n.directGet(key); ok {
				copies++
			}
		}
		if copies != 3 {
			t.Fatalf("key %q has %d copies, want 3", key, copies)
		}
	}
}

func TestClusterApplyMatchesDirect(t *testing.T) {
	c := testCluster(3, 2)
	defer c.Close()
	var ops []Op
	for i := 0; i < 300; i++ {
		ops = append(ops, Op{Kind: OpPut, Key: []byte(fmt.Sprintf("b-%04d", i)), Value: []byte{byte(i)}})
	}
	if _, err := c.Apply(ops); err != nil {
		t.Fatal(err)
	}
	reads := make([]Op, 300)
	for i := range reads {
		reads[i] = Op{Kind: OpGet, Key: []byte(fmt.Sprintf("b-%04d", i))}
	}
	res, err := c.Apply(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Found || !bytes.Equal(r.Value, []byte{byte(i)}) {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	// Results stay positionally aligned for a shuffled read/delete mix.
	mixed := []Op{
		{Kind: OpGet, Key: []byte("b-0007")},
		{Kind: OpDelete, Key: []byte("b-0008")},
		{Kind: OpGet, Key: []byte("b-0008")},
		{Kind: OpGet, Key: []byte("nope")},
	}
	res, err = c.Apply(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Found || res[2].Found || res[3].Found {
		t.Fatalf("mixed results = %+v", res)
	}
}

func TestClusterScanScatterGather(t *testing.T) {
	c := testCluster(4, 2)
	defer c.Close()
	ref, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("s-%05d", i))
		val := []byte(fmt.Sprintf("v%d", i))
		c.Put(key, val)
		ref.Put(key, val)
	}
	for _, start := range []string{"", "s-00000", "s-00777", "s-01499", "zzz"} {
		got, err := c.Scan([]byte(start), 100)
		if err != nil {
			t.Fatalf("scan(%q): %v", start, err)
		}
		want := ref.Scan([]byte(start), 100)
		if len(got) != len(want) {
			t.Fatalf("scan(%q) len = %d, want %d", start, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("scan(%q)[%d] = %q=%q, want %q=%q", start, i,
					got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	c := New(Config{
		Shards:      4,
		Replication: 2,
		QueueDepth:  256,
		Engine:      engine.Options{MemtableBytes: 16 << 10},
	})
	defer c.Close()
	const clients, perClient = 8, 400
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i += 4 {
				batch := make([]Op, 0, 4)
				for j := 0; j < 4; j++ {
					key := []byte(fmt.Sprintf("c%d-%04d", cl, i+j))
					batch = append(batch,
						Op{Kind: OpPut, Key: key, Value: key})
				}
				if _, err := c.Apply(batch); err != nil {
					errs <- err
					return
				}
			}
			// Each client reads back its own writes.
			for i := 0; i < perClient; i++ {
				key := []byte(fmt.Sprintf("c%d-%04d", cl, i))
				if v, ok := c.Get(key); !ok || !bytes.Equal(v, key) {
					errs <- fmt.Errorf("client %d lost key %q", cl, key)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Ops < clients*perClient {
		t.Fatalf("ops = %d, want >= %d", st.Ops, clients*perClient)
	}
}

func TestClusterTryApplyOverload(t *testing.T) {
	// One node, tiny queue, workers not yet started: build the node
	// directly so intake can be saturated deterministically.
	c := testCluster(1, 1)
	defer c.Close()
	eng, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	stopped := newNode(99, eng, 1, 1, 4)
	c.nodes[99] = newMemberState(stopped, 3, 64)
	c.ring = NewRing(8)
	c.ring.Add(99)
	c.mu.Unlock()

	// Fill the depth-1 queue directly (no waiter), then watch TryApply shed.
	var fill sync.WaitGroup
	fill.Add(1)
	one := []Op{{Kind: OpPut, Key: []byte("k"), Value: []byte("v")}}
	if err := stopped.trySubmit(&request{
		ops: one, replicas: [][]mirror{nil}, done: &fill,
	}); err != nil {
		t.Fatalf("fill submit: %v", err)
	}
	if _, err := c.TryApply(one); err != ErrOverload {
		t.Fatalf("TryApply on full queue = %v, want ErrOverload", err)
	}
	stopped.start()
	defer stopped.close()
	fill.Wait()
	if _, err := c.Apply(one); err != nil {
		t.Fatalf("Apply after start: %v", err)
	}
	if st := c.Stats(); st.Rejected == 0 {
		t.Fatal("rejected count not surfaced in stats")
	}
}

func TestClusterClose(t *testing.T) {
	c := testCluster(2, 1)
	c.Put([]byte("k"), []byte("v"))
	c.Close()
	c.Close() // idempotent
	if _, err := c.Apply([]Op{{Kind: OpGet, Key: []byte("k")}}); err != ErrClosed {
		t.Fatalf("Apply after close = %v, want ErrClosed", err)
	}
}
