package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// memberState wraps a member with the coordinator's failure-detection
// and hinted-handoff state. Every entry in Cluster.nodes is a
// *memberState, so all routing, replication, scan and rebalance traffic
// flows through these wrappers: transport failures feed the detector
// passively, probe results feed it periodically, and replica writes a
// down member would have lost are buffered here until it recovers.
type memberState struct {
	member

	// consecFails counts consecutive failed probes or transport-level
	// op failures; threshold consecutive failures mark the member down.
	consecFails atomic.Int32
	down        atomic.Bool
	// everDown latches once the member has been marked down. It gates
	// the miss-at-primary read fallback: only a member that may have
	// rejoined with missing data makes a primary miss ambiguous, so a
	// never-failed cluster pays nothing for the safety net.
	everDown  atomic.Bool
	threshold int32

	// smu guards lastStats, the last successful stats snapshot — what
	// Stats reports while the member is down instead of zeroing its
	// counters (which would make aggregate rates go negative mid-outage).
	smu       sync.Mutex
	lastStats NodeStats

	// hmu guards the hinted-handoff buffer. Appends happen under the
	// write primary's wmu (via mirrorWrite), so the buffer preserves
	// per-key write order; replay drains in order and only clears the
	// down flag once the buffer is empty, so a replayed write is never
	// overtaken by a younger direct one.
	hmu      sync.Mutex
	hints    []Op
	hintCap  int
	replayed atomic.Uint64
	dropped  atomic.Uint64

	// spans, when non-nil, receives a "cluster/hint" annotation span
	// whenever a traced replica write defers to the handoff buffer, so
	// an assembled trace shows which copy was hinted rather than applied.
	spans *obs.SpanLog
	// events receives lifecycle events (nil-safe). failoverEvented and
	// dropEvented throttle the per-request emit sites to one event per
	// down episode — failovers and hint drops happen per op, and an
	// outage would otherwise flood the bounded ring with duplicates,
	// evicting the transitions that explain it. Both reset when the
	// member recovers.
	events          *obs.EventLog
	failoverEvented atomic.Bool
	dropEvented     atomic.Bool

	// addr is the member's advertised address on elastic clusters (empty
	// for legacy members); it keys the member's view row.
	addr string
	// downSweeps counts consecutive probe sweeps the member has spent
	// down — the declare-dead clock (Config.DeclareDeadAfter). Only the
	// prober goroutine touches it.
	downSweeps int
}

func newMemberState(m member, threshold, hintCap int) *memberState {
	return &memberState{member: m, threshold: int32(threshold), hintCap: hintCap}
}

// isDown reports the detector's current verdict.
func (s *memberState) isDown() bool { return s.down.Load() }

// noteFailure records one failed probe or transport-level op; threshold
// consecutive failures flip the member down.
func (s *memberState) noteFailure() {
	if s.consecFails.Add(1) >= s.threshold {
		s.down.Store(true)
		s.everDown.Store(true)
	}
}

// noteSuccess resets the consecutive-failure count. It does NOT clear
// the down flag — recovery goes through drainHints so the member only
// rejoins once its missed writes have been replayed.
func (s *memberState) noteSuccess() { s.consecFails.Store(0) }

// failing reports a member that has missed at least one recent probe or
// op without having crossed the down threshold yet — the view's Suspect
// verdict.
func (s *memberState) failing() bool { return s.consecFails.Load() > 0 }

// bufferHint queues one missed replica write for replay, copying the
// key and value (ops may alias wire buffers that die with the request).
// A full buffer drops the oldest hint — the audit counter records that
// convergence now needs a rebalance or repair pass.
func (s *memberState) bufferHint(op Op) {
	h := Op{Kind: op.Kind, Key: append([]byte(nil), op.Key...)}
	if op.Value != nil {
		h.Value = append([]byte(nil), op.Value...)
	}
	s.hmu.Lock()
	dropping := len(s.hints) >= s.hintCap
	if dropping {
		s.hints = s.hints[1:]
		s.dropped.Add(1)
	}
	s.hints = append(s.hints, h)
	s.hmu.Unlock()
	if dropping && !s.dropEvented.Swap(true) {
		s.events.Record(obs.Event{
			Kind: obs.EventHintDrop, Member: s.label(),
			Detail: fmt.Sprintf("hint buffer full at %d ops; oldest dropped — convergence needs rebalance", s.hintCap),
		})
	}
}

// label names the member for event timelines: its advertised address on
// elastic clusters, a synthetic id otherwise.
func (s *memberState) label() string {
	if s.addr != "" {
		return s.addr
	}
	return fmt.Sprintf("member-%d", s.memberID())
}

// hintsPending returns the current replay backlog.
func (s *memberState) hintsPending() int {
	s.hmu.Lock()
	defer s.hmu.Unlock()
	return len(s.hints)
}

// drainHints replays the buffered writes onto the recovered member in
// order and, once the buffer is empty, clears the down flag in the same
// critical section — writes hinted while replay ran are drained by the
// next loop pass, so the member never serves as a replica target with
// undelivered hints ahead of it. A replay failure re-buffers the
// unapplied tail and leaves the member down.
func (s *memberState) drainHints() error {
	var drained uint64
	for {
		s.hmu.Lock()
		if len(s.hints) == 0 {
			s.down.Store(false)
			s.consecFails.Store(0)
			s.hmu.Unlock()
			// The down episode is over: re-arm the per-episode event
			// throttles and log the replay that healed it.
			s.failoverEvented.Store(false)
			s.dropEvented.Store(false)
			if drained > 0 {
				s.events.Record(obs.Event{
					Kind: obs.EventHintReplay, Member: s.label(),
					Detail: fmt.Sprintf("replayed %d buffered writes", drained),
				})
			}
			return nil
		}
		batch := s.hints
		s.hints = nil
		s.hmu.Unlock()
		for i, op := range batch {
			var err error
			switch op.Kind {
			case OpPut:
				err = s.member.directPut(op.Key, op.Value)
			case OpDelete:
				err = s.member.directDelete(op.Key)
			}
			if err != nil {
				s.hmu.Lock()
				s.hints = append(batch[i:], s.hints...)
				s.hmu.Unlock()
				return err
			}
			s.replayed.Add(1)
			drained++
		}
	}
}

// ---- member interception -------------------------------------------------
//
// The overrides below feed every transport outcome into the detector and
// redirect replica writes for down (or hint-backlogged) members into the
// handoff buffer. Methods not overridden pass straight through to the
// wrapped member.

// note classifies one op outcome for the detector.
func (s *memberState) note(err error) {
	if err == nil {
		s.noteSuccess()
		return
	}
	if isTransportErr(err) {
		s.noteFailure()
	}
}

func (s *memberState) ping() error {
	err := s.member.ping()
	if err != nil {
		s.noteFailure()
	} else {
		s.noteSuccess()
	}
	return err
}

// canGossip reports whether the wrapped member speaks the anti-entropy
// view exchange (remote peers dialed over a gossip-capable transport).
func (s *memberState) canGossip() bool {
	rm, ok := s.member.(*remoteMember)
	return ok && rm.gr != nil
}

// gossip runs one anti-entropy exchange against the member, feeding the
// outcome to the failure detector exactly like a ping.
func (s *memberState) gossip(view []byte) ([]byte, error) {
	rm, ok := s.member.(*remoteMember)
	if !ok || rm.gr == nil {
		return nil, errNotElastic
	}
	reply, err := rm.gr.Gossip(view)
	if err != nil {
		s.noteFailure()
	} else {
		s.noteSuccess()
	}
	return reply, err
}

// applyLocal lands a write on the member's own store without replica
// fan-out — migration copies and elastic mirror legs, where the sender
// already owns the fan-out. epoch rides on migration copies so the
// receiver can reject ones planned under a view it does not hold.
// Outcomes feed the failure detector.
func (s *memberState) applyLocal(op Op, migration bool, epoch uint64) error {
	var err error
	switch m := s.member.(type) {
	case *Node:
		err = m.applyLocal(op, migration)
	case *remoteMember:
		err = m.applyLocal(op, migration, epoch)
	default:
		err = errNotElastic
	}
	s.note(err)
	return err
}

func (s *memberState) directGet(key []byte) ([]byte, bool, error) {
	v, ok, err := s.member.directGet(key)
	s.note(err)
	return v, ok, err
}

func (s *memberState) directPut(key, value []byte) error {
	err := s.member.directPut(key, value)
	s.note(err)
	return err
}

func (s *memberState) directDelete(key []byte) error {
	err := s.member.directDelete(key)
	s.note(err)
	return err
}

func (s *memberState) directWrite(op Op, replicas []mirror) (OpResult, error) {
	res, err := s.member.directWrite(op, replicas)
	s.note(err)
	return res, err
}

func (s *memberState) snapshotScan(dst []engine.Entry, start []byte, limit int) ([]engine.Entry, error) {
	entries, err := s.member.snapshotScan(dst, start, limit)
	s.note(err)
	return entries, err
}

// mirrorWrite is the replica leg of a replicated write. A down member —
// or one with an undrained hint backlog, which must stay strictly ahead
// of younger writes — buffers the op for replay. A live member whose
// mirror fails at the transport gets the same treatment: the write is
// hinted rather than dropped, so the R-copy invariant degrades to
// "eventually R copies" instead of silently shedding one.
func (s *memberState) mirrorWrite(op Op) error {
	s.hmu.Lock()
	deferToHints := s.down.Load() || len(s.hints) > 0
	s.hmu.Unlock()
	if deferToHints {
		s.hintSpan(op, s.bufferHint)
		return nil
	}
	err := s.member.mirrorWrite(op)
	if err != nil && isTransportErr(err) {
		s.noteFailure()
		s.hintSpan(op, s.bufferHint)
		return nil
	}
	return err
}

// hintSpan runs buffer (always) and, when the op is traced and a span
// log is attached, records a "cluster/hint" annotation around it: the
// replica leg was deferred to hinted handoff, not applied. The span's
// single hinted-handoff phase carries the buffering cost; the replica
// hop that would normally appear under this parent is absent, which is
// exactly what the assembled trace should show.
func (s *memberState) hintSpan(op Op, buffer func(Op)) {
	if op.Trace == 0 || s.spans == nil {
		buffer(op)
		return
	}
	start := time.Now()
	buffer(op)
	dur := time.Since(start)
	s.spans.Record(obs.Span{
		Trace: op.Trace, ID: obs.NewSpanID(), Parent: op.Parent,
		Name: "cluster/hint", Start: start, Dur: dur,
		Bytes:  len(op.Key) + len(op.Value),
		Err:    fmt.Sprintf("member %d unreachable, write buffered for replay", s.memberID()),
		Phases: []obs.Phase{{Name: "hinted-handoff", Dur: dur}},
	})
}

func (s *memberState) stats() NodeStats {
	var ns NodeStats
	if s.isDown() {
		// Don't pay (and fail) an RPC against a member the detector has
		// already written off; report its last known counters so the
		// cluster aggregates don't regress mid-outage.
		s.smu.Lock()
		ns = s.lastStats
		s.smu.Unlock()
		ns.ID = s.memberID()
	} else {
		ns = s.member.stats()
		s.smu.Lock()
		s.lastStats = ns
		s.smu.Unlock()
	}
	ns.Down = s.isDown()
	ns.HintsPending = uint64(s.hintsPending())
	ns.HintsReplayed = s.replayed.Load()
	ns.HintsDropped = s.dropped.Load()
	return ns
}

// ---- prober ---------------------------------------------------------------

// Probe runs one synchronous health sweep: ping every member, feed the
// detector, and replay hinted writes onto members that answer while
// marked down (or that carry a backlog from a dropped mirror). The
// background prober calls this on its ticker; tests and chaos tools may
// call it directly for deterministic detection.
//
// On elastic clusters the sweep is also the gossip round: each probe is
// an anti-entropy view exchange instead of a bare ping (the exchange
// proves liveness just as well), and the sweep ends by publishing the
// detector's verdicts into the view and dialing newly learned members.
func (c *Cluster) Probe() {
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return
	}
	elastic := c.elastic() && c.view != nil
	members := make([]*memberState, 0, len(c.nodes))
	for _, m := range c.nodes {
		members = append(members, m)
	}
	c.mu.RUnlock()
	// Probe members concurrently: a dead member's exchange fails only
	// after its transport timeout, and paying that serially would stretch
	// every sweep to (dead members × timeout) — the declare-dead clock
	// counts sweeps, so detection latency would scale with the outage it
	// is trying to measure. Concurrent probes keep a sweep bounded by the
	// single slowest member.
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *memberState) {
			defer wg.Done()
			if elastic && m.canGossip() {
				reply, err := m.gossip(c.EncodedView())
				if err != nil {
					return
				}
				if len(reply) > 0 {
					if pv, derr := DecodeView(reply); derr == nil {
						c.adopt(pv)
					}
				}
			} else if m.ping() != nil {
				return
			}
			if m.isDown() || m.hintsPending() > 0 {
				// Replay failures leave the member down; the next sweep
				// retries.
				_ = m.drainHints()
			}
		}(m)
	}
	wg.Wait()
	if elastic {
		c.gossipRounds.Add(1)
		c.publishHealth(members)
		c.ensureMembers()
	}
}

// startProberLocked launches the background health prober once. Caller
// holds mu. Local nodes cannot fail, so the prober starts lazily with
// the first remote member; a negative ProbeInterval disables it (tests
// drive detection through Probe instead).
func (c *Cluster) startProberLocked() {
	if c.cfg.ProbeInterval < 0 || c.proberStop != nil {
		return
	}
	c.proberStop = make(chan struct{})
	go func(stop chan struct{}) {
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Probe()
			}
		}
	}(c.proberStop)
}

// MemberAddrs returns the advertised address of every member the
// current view still counts (everything but Left tombstones), sorted —
// the federation's discovery list. Down members are included on
// purpose: the federator attempts them and names them in its partial-
// failure report instead of silently narrowing the cluster.
func (c *Cluster) MemberAddrs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.view == nil {
		return nil
	}
	out := make([]string, 0, len(c.view.Members))
	for _, m := range c.view.Members {
		if m.Addr == "" || m.Status == StatusLeft {
			continue
		}
		out = append(out, m.Addr)
	}
	sort.Strings(out)
	return out
}

// noteFailoverEvent logs one failover event per member per down
// episode (kind is "read" or "write"). Failovers are per-request, so
// the throttle keeps a sustained outage from flooding the event ring
// with one entry per op; the failover *counters* still count every op.
func (c *Cluster) noteFailoverEvent(kind string, m *memberState) {
	if c.events == nil || m == nil || m.failoverEvented.Swap(true) {
		return
	}
	c.events.Record(obs.Event{
		Kind: obs.EventFailover, Member: m.label(), Epoch: c.epoch.Load(),
		Detail: kind + " routed around down primary",
	})
}

// MemberDown reports whether the failure detector currently considers
// the member down. Unknown ids report false.
func (c *Cluster) MemberDown(id int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.nodes[id]
	return ok && m.isDown()
}

// DownMembers returns the ids the failure detector currently considers
// down, in ascending order.
func (c *Cluster) DownMembers() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for _, id := range c.ring.Members() {
		if m := c.nodes[id]; m == nil || m.isDown() {
			out = append(out, id)
		}
	}
	return out
}
