package cluster

import (
	"errors"
	"fmt"
)

// MoveReport accounts for one membership change's data movement. With a
// consistent ring, Copied stays near Scanned·changed/N instead of the
// full reshuffle a modulo-hash layout would force.
type MoveReport struct {
	// Scanned is the number of distinct live keys examined.
	Scanned int
	// Copied is the number of key copies written to new owners.
	Copied int
	// Dropped is the number of key copies deleted from former owners.
	Dropped int
	// In and Out are per-node copy counts (received / relinquished).
	In, Out map[int]int
}

func (m MoveReport) String() string {
	return fmt.Sprintf("scanned %d keys, copied %d, dropped %d", m.Scanned, m.Copied, m.Dropped)
}

// AddNode grows the cluster by one shard, migrating exactly the entries
// whose owner set changed. It returns the new node's id. The topology
// lock quiesces in-flight traffic for the duration.
func (c *Cluster) AddNode() (int, MoveReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return -1, MoveReport{}, ErrClosed
	}
	old := c.ring.Clone()
	n := c.addNodeLocked()
	return n.id, c.migrateLocked(old), nil
}

// RemoveNode drains a shard's ownership onto the surviving members and
// shuts the node down. The last node cannot be removed.
func (c *Cluster) RemoveNode(id int) (MoveReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return MoveReport{}, ErrClosed
	}
	if _, ok := c.nodes[id]; !ok {
		return MoveReport{}, errors.New("cluster: no such node")
	}
	if len(c.nodes) == 1 {
		return MoveReport{}, errors.New("cluster: cannot remove the last node")
	}
	old := c.ring.Clone()
	c.ring.Remove(id)
	// The departing node stays readable during migration — it is the
	// authoritative source for the keys it was primary for.
	report := c.migrateLocked(old)
	n := c.nodes[id]
	delete(c.nodes, id)
	n.close()
	return report, nil
}

// migrateLocked reconciles every live entry from the old ring's layout to
// the current one. Each key is processed exactly once, at its old
// primary; copies land on owners that gained the key and are deleted from
// owners that lost it. Caller holds mu, which guarantees the queues are
// drained and no op is in flight.
func (c *Cluster) migrateLocked(old *Ring) MoveReport {
	report := MoveReport{In: map[int]int{}, Out: map[int]int{}}
	for _, id := range old.Members() {
		node := c.nodes[id]
		start := []byte(nil)
		for {
			entries := node.eng.Scan(start, 512)
			if len(entries) == 0 {
				break
			}
			for _, e := range entries {
				oldOwners := old.Owners(e.Key, c.cfg.Replication)
				if oldOwners[0] != id {
					continue // processed while scanning its old primary
				}
				report.Scanned++
				newOwners := c.ring.Owners(e.Key, c.cfg.Replication)
				in := map[int]bool{}
				for _, o := range oldOwners {
					in[o] = true
				}
				keep := map[int]bool{}
				for _, o := range newOwners {
					keep[o] = true
					if !in[o] {
						c.nodes[o].eng.Put(e.Key, e.Value)
						report.Copied++
						report.In[o]++
					}
				}
				for _, o := range oldOwners {
					if !keep[o] {
						c.nodes[o].eng.Delete(e.Key)
						report.Dropped++
						report.Out[o]++
					}
				}
			}
			last := entries[len(entries)-1].Key
			start = append(append([]byte(nil), last...), 0)
		}
	}
	return report
}
