package cluster

import (
	"errors"
	"fmt"
)

// MoveReport accounts for one membership change's data movement. With a
// consistent ring, Copied stays near Scanned·changed/N instead of the
// full reshuffle a modulo-hash layout would force.
type MoveReport struct {
	// Scanned is the number of distinct live keys examined.
	Scanned int
	// Copied is the number of key copies written to new owners.
	Copied int
	// Dropped is the number of key copies deleted from former owners.
	Dropped int
	// In and Out are per-node copy counts (received / relinquished).
	In, Out map[int]int
}

func (m MoveReport) String() string {
	return fmt.Sprintf("scanned %d keys, copied %d, dropped %d", m.Scanned, m.Copied, m.Dropped)
}

// AddNode grows the cluster by one shard, migrating exactly the entries
// whose owner set changed. It returns the new node's id. The topology
// lock quiesces in-flight traffic for the duration. A non-nil error
// with a valid id reports an incomplete migration (only possible with
// remote members — see migrateLocked).
func (c *Cluster) AddNode() (int, MoveReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return -1, MoveReport{}, ErrClosed
	}
	if c.elastic() {
		return -1, MoveReport{}, errNotStatic
	}
	old := c.ring.Clone()
	n := c.addNodeLocked()
	c.rebuildStaticViewLocked()
	report, err := c.migrateLocked(old)
	return n.id, report, err
}

// RemoveNode drains a shard's ownership onto the surviving members and
// shuts the node down. The last node cannot be removed.
func (c *Cluster) RemoveNode(id int) (MoveReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return MoveReport{}, ErrClosed
	}
	if c.elastic() {
		return MoveReport{}, errNotStatic
	}
	if _, ok := c.nodes[id]; !ok {
		return MoveReport{}, errors.New("cluster: no such node")
	}
	if len(c.nodes) == 1 {
		return MoveReport{}, errors.New("cluster: cannot remove the last node")
	}
	// old must describe the layout the departing member's data was
	// placed under. On a retry after a failed drain the member is
	// already off the live ring, so reconstruct its arcs (vnode
	// placement is deterministic in the id) rather than cloning a ring
	// that no longer routes to it — otherwise the retry would never
	// scan the departing shard and close() would discard its keys.
	old := c.ring.Clone()
	if !old.Contains(id) {
		old.Add(id)
	}
	c.ring.Remove(id)
	c.rebuildStaticViewLocked()
	// The departing node stays readable during migration — it is the
	// authoritative source for the keys it was primary for.
	report, err := c.migrateLocked(old)
	if err != nil {
		// Incomplete drain: keep the departing member alive (it still
		// holds the unmigrated keys) and report the failure; the caller
		// may retry RemoveNode once the transport recovers. The node is
		// already off the ring, so new traffic no longer routes to it.
		return report, err
	}
	n := c.nodes[id]
	delete(c.nodes, id)
	n.close()
	return report, nil
}

// migrateLocked reconciles every live entry from the old ring's layout to
// the current one. Each key is processed exactly once, at its old
// primary; copies land on owners that gained the key and are deleted from
// owners that lost it. Caller holds mu, which guarantees the queues are
// drained and no op is in flight.
//
// With remote members a scan or copy RPC can fail; the first failure
// aborts the migration and is returned with the partial report. The new
// topology stays in place — rolling the ring back after per-key drops
// have run would lose data — so the caller must treat a non-nil error
// as "movement incomplete" and retry or investigate. Local-only
// clusters never return an error.
func (c *Cluster) migrateLocked(old *Ring) (MoveReport, error) {
	report := MoveReport{In: map[int]int{}, Out: map[int]int{}}
	for _, id := range old.Members() {
		node := c.nodes[id]
		start := []byte(nil)
		for {
			entries, err := node.snapshotScan(nil, start, 512)
			if err != nil {
				return report, fmt.Errorf("cluster: migration scan of member %d: %w", id, err)
			}
			if len(entries) == 0 {
				break
			}
			for _, e := range entries {
				oldOwners := old.Owners(e.Key, c.cfg.Replication)
				if oldOwners[0] != id {
					continue // processed while scanning its old primary
				}
				report.Scanned++
				newOwners := c.ring.Owners(e.Key, c.cfg.Replication)
				in := map[int]bool{}
				for _, o := range oldOwners {
					in[o] = true
				}
				keep := map[int]bool{}
				for _, o := range newOwners {
					keep[o] = true
					if !in[o] {
						if err := c.nodes[o].directPut(e.Key, e.Value); err != nil {
							return report, fmt.Errorf("cluster: migration copy to member %d: %w", o, err)
						}
						report.Copied++
						report.In[o]++
					}
				}
				for _, o := range oldOwners {
					if !keep[o] {
						if err := c.nodes[o].directDelete(e.Key); err != nil {
							return report, fmt.Errorf("cluster: migration drop from member %d: %w", o, err)
						}
						report.Dropped++
						report.Out[o]++
					}
				}
			}
			last := entries[len(entries)-1].Key
			start = append(append([]byte(nil), last...), 0)
		}
	}
	return report, nil
}
