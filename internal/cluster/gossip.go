package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// This file is the dissemination half of the elastic membership layer:
// how epoch-versioned views (view.go) travel between members and how
// each process folds what it hears into what it knows. The protocol is
// anti-entropy state exchange piggybacked on the health prober — every
// probe sweep a member pushes its encoded view to each peer instead of a
// bare ping, the peer merges it (MergeViews) and answers with its merged
// view when the digests disagree, and the sender merges the reply. Two
// exchanges per sweep move both sides to the same view, so an N-member
// cluster converges in O(diameter) sweeps — with every member probing
// every peer, one to two.
//
// Liveness flows through the same channel: the PR 4 failure detector's
// verdicts (consecutive probe failures → down) are published into the
// view as Suspect/Down rows each sweep, a member that stays down for
// DeclareDeadAfter sweeps is declared Left by the lowest-id live member,
// and a falsely accused member refutes with a higher incarnation on its
// next merge (assertSelfLocked). Epochs bump exactly when the on-ring
// member set changes, which is what arms the migrator (migrate.go).

var (
	errNotElastic = errors.New("cluster: not an elastic member")
	// errNotStatic rejects the legacy quiesced topology mutations on
	// elastic clusters — membership changes go through Join/Leave there.
	errNotStatic = errors.New("cluster: elastic membership, use Join/Leave")
)

// View returns the current membership view (nil only before New).
func (c *Cluster) View() *ClusterView {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.view
}

// ViewEpoch returns the current view epoch without taking the topology
// lock — the transport server consults it on every epoch-stamped request
// before admission.
func (c *Cluster) ViewEpoch() uint64 { return c.epoch.Load() }

// EncodedView returns the wire encoding of the current view, for
// RespView replies to stale-epoch requests and the prober's gossip
// rounds. Lock-free — it reads the encoding commitViewLocked cached —
// because the transport read loop calls it while bouncing, and blocking
// there behind a pending view-adopt writer would stall every response
// on the connection (see Cluster.encView). Callers must treat the
// returned bytes as read-only: every caller of this epoch shares them.
func (c *Cluster) EncodedView() []byte {
	if enc := c.encView.Load(); enc != nil {
		return *enc
	}
	return nil
}

// Settled reports whether every live member has finished migrating for
// the current epoch.
func (c *Cluster) Settled() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.view == nil || c.view.AllSettled()
}

// HandleGossip is the server half of one anti-entropy exchange: merge
// the peer's encoded view into ours and answer with our (post-merge)
// encoding, or nil when the digests already agree — the "in sync" fast
// path that keeps steady-state gossip cheap.
func (c *Cluster) HandleGossip(payload []byte) ([]byte, error) {
	if !c.elastic() {
		return nil, errNotElastic
	}
	pv, err := DecodeView(payload)
	if err != nil {
		return nil, err
	}
	final := c.adopt(pv)
	if final == nil {
		return nil, ErrClosed
	}
	c.gossipRounds.Add(1)
	if final.Digest() == pv.Digest() {
		return nil, nil
	}
	return final.Encode(), nil
}

// AdoptEncodedView merges a wire-encoded view pushed from outside the
// gossip path — the RespView a server attaches to a stale-epoch error,
// handed over by the transport client's OnView hook.
func (c *Cluster) AdoptEncodedView(payload []byte) error {
	if !c.elastic() {
		return errNotElastic
	}
	pv, err := DecodeView(payload)
	if err != nil {
		return err
	}
	c.adopt(pv)
	return nil
}

// ApplyLocal lands one write on this member's own shard without replica
// fan-out — the server half of OpMirror. Replica mirrors from elastic
// peers (migration=false) always apply; migration copies must carry the
// epoch they were planned under, and are refused with ErrWrongEpoch
// unless this member holds exactly that view — an unadopted epoch means
// our dirty-guard is not armed yet and the copy could bury a racing
// live write (or be dropped on the floor); a stale epoch means the copy
// is a leftover retry.
func (c *Cluster) ApplyLocal(op Op, migration bool, epoch uint64) error {
	c.mu.RLock()
	n := c.localNodeLocked()
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if n == nil {
		return errNotElastic
	}
	if migration && epoch != c.epoch.Load() {
		return ErrWrongEpoch
	}
	return n.applyLocal(op, migration)
}

// GetLocal serves a point read from this member's own shard with no
// ring routing — the server half of OpGetLocal, and the read twin of
// ApplyLocal. A peer consulting us already resolved ownership under its
// own view; re-resolving here against ours (which may disagree during a
// membership change — most acutely while we are Leaving and own nothing)
// would forward the read back out, and two members deferring to each
// other's ring is an unbounded cycle. The answer is whatever our store
// holds: a fallback read wants the bytes wherever they physically are,
// epoch notwithstanding.
func (c *Cluster) GetLocal(key []byte) ([]byte, bool, error) {
	c.mu.RLock()
	n := c.localNodeLocked()
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return nil, false, ErrClosed
	}
	if n == nil {
		return nil, false, errNotElastic
	}
	return n.directGet(key)
}

// adopt merges pv into the current view, re-asserts our own liveness
// against whatever the merge says about us, and commits the result if it
// changed anything. Returns the post-merge view (nil if closed). Side
// effects — dialing newly learned members, the OnViewChange callback —
// run outside the lock.
func (c *Cluster) adopt(pv *ClusterView) *ClusterView {
	c.mu.Lock()
	if c.closed || c.view == nil {
		c.mu.Unlock()
		return nil
	}
	merged := MergeViews(c.view, pv)
	merged = c.assertSelfLocked(merged)
	changed := merged.Digest() != c.view.Digest()
	if changed {
		c.commitViewLocked(merged)
	}
	final := c.view
	cb := c.cfg.OnViewChange
	c.mu.Unlock()
	if changed {
		c.ensureMembers()
		if cb != nil {
			cb(final)
		}
	}
	return final
}

// assertSelfLocked guards our own row through a merge: peers may have
// marked us Suspect/Down (a partition, a slow sweep) or even Left (we
// were declared dead and are now rejoining). We are the one member that
// knows we are alive, so we refute with a higher incarnation — or keep
// publishing Leaving while a graceful departure drains. Caller holds mu.
func (c *Cluster) assertSelfLocked(v *ClusterView) *ClusterView {
	if c.selfID < 0 {
		return v
	}
	want := StatusAlive
	if c.leaving.Load() {
		want = StatusLeaving
	}
	row, ok := v.Member(c.selfID)
	if ok {
		if row.Incarnation > c.selfInc {
			c.selfInc = row.Incarnation
		}
		if row.Status == want || (want == StatusLeaving && row.Status == StatusLeft) {
			return v
		}
	} else {
		row = MemberInfo{ID: c.selfID, Settled: 0}
	}
	c.selfInc++
	row.Addr = c.cfg.SelfAddr
	row.Status = want
	row.Incarnation = c.selfInc
	return v.withRow(row)
}

// commitViewLocked installs v as the current view: the ring swaps with
// it (one atomic ownership map per epoch), replication parameters follow
// the winning view, and the migrator is armed or disarmed depending on
// whether the epoch still has data movement in flight. Caller holds mu.
func (c *Cluster) commitViewLocked(v *ClusterView) {
	prev := c.view
	c.view = v
	c.ring = v.Ring()
	c.epoch.Store(v.Epoch)
	enc := v.Encode()
	c.encView.Store(&enc)
	// Restamp every connected elastic peer with the new epoch so routed
	// member-to-member traffic stays fenced. Writes planned under the old
	// ring that are already on the wire bounce at the peer (ErrWrongEpoch)
	// rather than being re-forwarded by a ring that disagrees with ours —
	// unfenced forwards cycle between members mid-transition until both
	// sides' admission tokens drain. SetEpoch is one atomic store, safe
	// under c.mu.
	for _, ms := range c.nodes {
		if rm, ok := ms.member.(*remoteMember); ok && rm.localMirror {
			rm.setEpoch(v.Epoch)
		}
	}
	if v.R > 0 {
		c.cfg.Replication = v.R
	}
	if prev == nil || v.Epoch != prev.Epoch {
		c.viewChanges.Add(1)
		// Record is lock-cheap and never calls out, so it is safe here
		// under c.mu.
		c.events.Record(obs.Event{
			Kind: obs.EventViewCommit, Epoch: v.Epoch,
			Detail: fmt.Sprintf("view committed: %d members, settled=%v", len(v.Members), v.AllSettled()),
		})
	}
	if v.AllSettled() {
		c.lastSettled = v
		if n := c.localNodeLocked(); n != nil {
			// Migration for this epoch is complete cluster-wide: live
			// writes no longer race copies, so the dirty-guard comes off
			// the write path.
			n.guard.Store(nil)
		}
		return
	}
	if n := c.localNodeLocked(); n != nil {
		// An epoch with data movement in flight: arm a fresh dirty-guard
		// so live writes shadow stale migration copies (a copy never
		// overwrites a key written after the epoch began — the write
		// already routed under the new ownership map). Each epoch gets
		// its own guard; marks from an older epoch must not suppress this
		// epoch's copies.
		if g := n.guard.Load(); g == nil || g.epoch != v.Epoch {
			n.guard.Store(newMigrationGuard(v.Epoch))
		}
		c.startMigratorLocked()
		select {
		case c.migKick <- struct{}{}:
		default:
		}
	}
}

// ensureMembers dials view members this process has not connected yet.
// Dials run outside all locks (a slow peer must not stall gossip); a
// failed dial retries on the next probe sweep. Each member is dialed by
// at most one sweep at a time: concurrent sweeps (the probe ticker
// racing an adopt) would otherwise both connect, and the discarded
// duplicate confuses Dial-side trackers that treat the latest dial for
// an address as the canonical connection.
func (c *Cluster) ensureMembers() {
	if c.cfg.Dial == nil {
		return
	}
	c.mu.Lock()
	var want []MemberInfo
	if c.view != nil && !c.closed {
		if c.dialing == nil {
			c.dialing = make(map[int]struct{})
		}
		for _, m := range c.view.Members {
			if m.ID == c.selfID || m.Addr == "" || m.Status == StatusLeft {
				continue
			}
			if _, busy := c.dialing[m.ID]; busy || c.nodes[m.ID] != nil {
				continue
			}
			c.dialing[m.ID] = struct{}{}
			want = append(want, m)
		}
	}
	c.mu.Unlock()
	for _, m := range want {
		r, err := c.cfg.Dial(m.Addr)
		if err == nil {
			c.addViewMember(m, r)
		}
		c.mu.Lock()
		delete(c.dialing, m.ID)
		c.mu.Unlock()
	}
}

// addViewMember registers a freshly dialed peer under its view id. The
// ring already contains the id (it came from the view), so this only
// fills the member map.
func (c *Cluster) addViewMember(m MemberInfo, r Remote) {
	rm := &remoteMember{id: m.ID, r: r, spans: c.spans, localMirror: true}
	rm.tr, _ = r.(tracedRemote)
	rm.gr, _ = r.(gossipRemote)
	rm.lr, _ = r.(localRemote)
	rm.es, _ = r.(epochStamper)
	// Fence this connection from the first call: routed requests to an
	// elastic peer carry our epoch, so a ring disagreement bounces at the
	// peer's admission instead of being re-forwarded by its ring.
	rm.setEpoch(c.epoch.Load())
	ms := newMemberState(rm, c.cfg.ProbeFailures, c.cfg.HintLimit)
	ms.spans = c.spans
	ms.events = c.events
	ms.addr = m.Addr
	c.mu.Lock()
	if c.closed || c.nodes[m.ID] != nil {
		c.mu.Unlock()
		r.Close()
		return
	}
	c.nodes[m.ID] = ms
	c.mu.Unlock()
}

// Join performs the initial anti-entropy exchange against each seed: the
// seed learns our row (bumping the epoch — we are a new on-ring member),
// we adopt the merged cluster view it answers with, and ensureMembers
// dials everyone it revealed. Migration of our newly owned keyranges
// then proceeds in the background; until our copy lands, reads fall back
// to the last settled owners. Returns nil once any seed exchanged views.
func (c *Cluster) Join(seeds ...string) error {
	if !c.elastic() {
		return errNotElastic
	}
	if c.cfg.Dial == nil {
		return errors.New("cluster: Join requires Config.Dial")
	}
	var lastErr error
	joined := false
	for _, addr := range seeds {
		if addr == "" || addr == c.cfg.SelfAddr {
			continue
		}
		// A seed an earlier exchange already revealed (and ensureMembers
		// dialed) gossips over its member connection — dialing a second,
		// throwaway connection to the same address would strand Dial-side
		// trackers on whichever one they saw last.
		c.mu.RLock()
		ms := c.nodes[MemberIDForAddr(addr)]
		c.mu.RUnlock()
		if ms != nil && ms.canGossip() {
			reply, err := ms.gossip(c.EncodedView())
			if err != nil {
				lastErr = err
				continue
			}
			if len(reply) > 0 {
				if pv, derr := DecodeView(reply); derr == nil {
					c.adopt(pv)
				} else {
					lastErr = derr
					continue
				}
			}
			joined = true
			continue
		}
		r, err := c.cfg.Dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		gr, ok := r.(gossipRemote)
		if !ok {
			r.Close()
			lastErr = errors.New("cluster: seed transport does not gossip")
			continue
		}
		reply, err := gr.Gossip(c.EncodedView())
		if err != nil {
			r.Close()
			lastErr = err
			continue
		}
		if len(reply) > 0 {
			if pv, derr := DecodeView(reply); derr == nil {
				c.adopt(pv)
			} else {
				lastErr = derr
			}
		}
		r.Close() // ensureMembers dials the canonical per-member connection
		joined = true
	}
	c.ensureMembers()
	if joined {
		return nil
	}
	return lastErr
}

// Leave departs gracefully: publish Leaving (off the ring, but still in
// the settle barrier — our data must finish pushing before the epoch
// settles), wait for our own migration to drain, publish Left, and
// gossip the farewell so the cluster does not wait out a suspicion
// timeout. Best-effort: the deadline bounds the drain wait, and a
// crashed leaver is healed by the declare-dead path anyway.
func (c *Cluster) Leave(timeout time.Duration) error {
	if c.selfID < 0 {
		return errNotElastic
	}
	c.leaving.Store(true)
	c.publishSelf(StatusLeaving)
	c.gossipNow()
	deadline := time.Now().Add(timeout)
	for {
		c.mu.RLock()
		row, ok := c.view.Member(c.selfID)
		epoch := c.view.Epoch
		alone := c.ring.Size() == 0 // nobody left to push to
		c.mu.RUnlock()
		if !ok || row.Settled >= epoch || row.Status == StatusLeft || alone {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		select {
		case c.migKick <- struct{}{}:
		default:
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.publishSelf(StatusLeft)
	c.gossipNow()
	return nil
}

// publishSelf commits a new row for this member at the next incarnation
// and fires the view-change side effects.
func (c *Cluster) publishSelf(status MemberStatus) {
	c.mu.Lock()
	if c.closed || c.view == nil {
		c.mu.Unlock()
		return
	}
	row, ok := c.view.Member(c.selfID)
	if !ok {
		row = MemberInfo{ID: c.selfID}
	}
	if row.Incarnation > c.selfInc {
		c.selfInc = row.Incarnation
	}
	c.selfInc++
	row.Addr = c.cfg.SelfAddr
	row.Status = status
	row.Incarnation = c.selfInc
	c.commitViewLocked(c.view.withRow(row))
	v := c.view
	cb := c.cfg.OnViewChange
	c.mu.Unlock()
	if cb != nil {
		cb(v)
	}
}

// gossipNow pushes the current view to every connected peer immediately
// (join, leave, and settle transitions should not wait for the next
// probe sweep) and folds in whatever they answer.
func (c *Cluster) gossipNow() {
	c.mu.RLock()
	peers := make([]*memberState, 0, len(c.nodes))
	for id, m := range c.nodes {
		if id != c.selfID {
			peers = append(peers, m)
		}
	}
	c.mu.RUnlock()
	for _, m := range peers {
		reply, err := m.gossip(c.EncodedView())
		if err != nil || len(reply) == 0 {
			continue
		}
		if pv, derr := DecodeView(reply); derr == nil {
			c.adopt(pv)
		}
	}
}

// publishHealth folds the failure detector's verdicts into the view
// after a probe sweep: reachable members are (re)published Alive,
// failing ones Suspect, down ones Down — and a member down (or a leaver
// silent) for DeclareDeadAfter consecutive sweeps is declared Left by
// the lowest-id live member, healing the ring around the loss. members
// is the sweep's snapshot.
func (c *Cluster) publishHealth(members []*memberState) {
	c.mu.Lock()
	if c.closed || c.view == nil {
		c.mu.Unlock()
		return
	}
	v := c.view
	nv := v
	for _, m := range members {
		id := m.memberID()
		if id == c.selfID {
			continue
		}
		row, ok := nv.Member(id)
		if !ok || row.Status == StatusLeft {
			continue
		}
		if m.isDown() {
			m.downSweeps++
		} else {
			m.downSweeps = 0
		}
		if m.downSweeps >= c.cfg.DeclareDeadAfter && c.lowestLiveLocked(nv) == c.selfID {
			row.Status = StatusLeft
			row.Incarnation++
			nv = nv.withRow(row)
			c.events.Record(obs.Event{
				Kind: obs.EventMemberDead, Member: row.Addr, Epoch: nv.Epoch,
				Detail: fmt.Sprintf("declared dead after %d down sweeps; ring heals around the loss", m.downSweeps),
			})
			continue
		}
		if row.Status == StatusLeaving {
			continue // the leaver owns its own lifecycle until declared dead
		}
		want := StatusAlive
		if m.isDown() {
			want = StatusDown
		} else if m.failing() {
			want = StatusSuspect
		}
		if want != row.Status {
			kind := obs.EventMemberAlive
			switch want {
			case StatusDown:
				kind = obs.EventMemberDown
			case StatusSuspect:
				kind = obs.EventMemberSuspect
			}
			c.events.Record(obs.Event{Kind: kind, Member: row.Addr, Epoch: nv.Epoch})
			row.Status = want
			row.Incarnation++
			nv = nv.withRow(row)
		}
	}
	changed := nv.Digest() != v.Digest()
	if changed {
		c.commitViewLocked(nv)
	}
	final := c.view
	cb := c.cfg.OnViewChange
	c.mu.Unlock()
	if changed {
		c.ensureMembers()
		if cb != nil {
			cb(final)
		}
	}
}

// lowestLiveLocked returns the lowest member id whose row is Alive —
// the deterministic tie-break for who declares a dead member Left, so a
// heal is published once instead of N times. Caller holds mu.
func (c *Cluster) lowestLiveLocked(v *ClusterView) int {
	low := -1
	for _, m := range v.Members {
		if m.Status != StatusAlive {
			continue
		}
		if low == -1 || m.ID < low {
			low = m.ID
		}
	}
	return low
}
