package cluster

import (
	"strconv"

	"repro/internal/engine"
	"repro/internal/obs"
)

// metricLevels is how many LSM levels RegisterMetrics exports gauges
// for. Level counts grow by the engine's size budget factor per level,
// so eight covers many orders of magnitude of data before a deeper
// level would go unreported.
const metricLevels = 8

// Failovers returns how many reads and writes the coordinator has
// served around a failed primary.
func (c *Cluster) Failovers() (reads, writes uint64) {
	return c.readFailovers.Load(), c.writeFailovers.Load()
}

// healthCounters sums the coordinator-side health state across members
// without paying any RPC — hint buffers and detector verdicts live in
// the memberState wrappers, so a metrics scrape never touches the wire.
func (c *Cluster) healthCounters() (pending, replayed, dropped uint64, down int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, m := range c.nodes {
		pending += uint64(m.hintsPending())
		replayed += m.replayed.Load()
		dropped += m.dropped.Load()
		if m.isDown() {
			down++
		}
	}
	return pending, replayed, dropped, down
}

// localCounters sums the queue/op counters of in-process members only.
// Remote members are excluded deliberately: their counters live on
// their own server's scrape surface, and folding them in here would
// cost a Stats RPC per member per scrape.
func (c *Cluster) localCounters() (accepted, rejected, batches, ops uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, m := range c.nodes {
		if n, ok := m.member.(*Node); ok {
			accepted += n.accepted.Load()
			rejected += n.rejected.Load()
			batches += n.batches.Load()
			ops += n.ops.Load()
		}
	}
	return accepted, rejected, batches, ops
}

// LocalEngineStats sums the storage-engine counters of in-process
// members (cheap atomic loads; remote members report through their own
// node's metrics endpoint).
func (c *Cluster) LocalEngineStats() engine.Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var st engine.Stats
	for _, m := range c.nodes {
		if n, ok := m.member.(*Node); ok {
			addEngineStats(&st, n.eng.Stats())
		}
	}
	return st
}

// LocalLevelBytes sums per-LSM-level logical bytes across in-process
// members whose engine reports them (engine.LevelSizer), padded or
// truncated to levels entries.
func (c *Cluster) LocalLevelBytes(levels int) []uint64 {
	out := make([]uint64, levels)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, m := range c.nodes {
		n, ok := m.member.(*Node)
		if !ok {
			continue
		}
		sizer, ok := n.eng.(engine.LevelSizer)
		if !ok {
			continue
		}
		for i, b := range sizer.LevelBytes() {
			if i < levels {
				out[i] += b
			}
		}
	}
	return out
}

// MigrationStats reports the online-migration counters: key copies
// pushed, bytes pushed, and keys deleted by post-settle drop passes.
// Benchmarks and tests read it directly; dashboards get the same values
// via the bd_cluster_migration_* series.
func (c *Cluster) MigrationStats() (keys, bytes, dropped uint64) {
	return c.migKeys.Load(), c.migBytes.Load(), c.migDropped.Load()
}

// RegisterMetrics exports the coordinator's health, routing and engine
// counters into r under the bd_cluster_* and bd_engine_* families
// (DESIGN.md §11). Everything is collected at scrape time from state
// the coordinator already holds — no RPCs, no new hot-path work.
func (c *Cluster) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("bd_cluster_members", "Known members, including departed tombstones.", nil,
		func() float64 { return float64(c.Nodes()) })
	r.GaugeFunc("bd_cluster_ring_members", "Members currently owning keyranges on the ring.", nil,
		func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(c.ring.Size())
		})
	r.GaugeFunc("bd_cluster_members_down", "Members the failure detector considers down.", nil,
		func() float64 { _, _, _, down := c.healthCounters(); return float64(down) })
	r.GaugeFunc("bd_cluster_hints_pending", "Hinted-handoff writes buffered for down members.", nil,
		func() float64 { p, _, _, _ := c.healthCounters(); return float64(p) })
	r.CounterFunc("bd_cluster_hints_replayed_total", "Hinted writes replayed onto recovered members.", nil,
		func() uint64 { _, rep, _, _ := c.healthCounters(); return rep })
	r.CounterFunc("bd_cluster_hints_dropped_total", "Hinted writes dropped past the buffer bound.", nil,
		func() uint64 { _, _, d, _ := c.healthCounters(); return d })
	r.CounterFunc("bd_cluster_failovers_total", "Requests served around a failed primary, by kind.",
		obs.Labels{"kind": "read"}, c.readFailovers.Load)
	r.CounterFunc("bd_cluster_failovers_total", "Requests served around a failed primary, by kind.",
		obs.Labels{"kind": "write"}, c.writeFailovers.Load)
	r.CounterFunc("bd_cluster_accepted_total", "Sub-batches enqueued on local members.", nil,
		func() uint64 { a, _, _, _ := c.localCounters(); return a })
	r.CounterFunc("bd_cluster_rejected_total", "Sub-batches shed by local admission control.", nil,
		func() uint64 { _, rej, _, _ := c.localCounters(); return rej })
	r.CounterFunc("bd_cluster_batches_total", "Worker drain cycles on local members.", nil,
		func() uint64 { _, _, b, _ := c.localCounters(); return b })
	r.CounterFunc("bd_cluster_ops_total", "Point ops executed on local members.", nil,
		func() uint64 { _, _, _, o := c.localCounters(); return o })

	// Elastic membership: view agreement and migration progress. Static
	// clusters report their synthetic view (epoch bumps on AddNode and
	// friends, settled always 1), so dashboards need no mode switch.
	r.GaugeFunc("bd_cluster_epoch", "Current membership view epoch.", nil,
		func() float64 { return float64(c.epoch.Load()) })
	r.GaugeFunc("bd_cluster_settled", "1 when every live member settled the current epoch, 0 while migration is in flight.", nil,
		func() float64 {
			if c.Settled() {
				return 1
			}
			return 0
		})
	r.CounterFunc("bd_cluster_view_changes_total", "Membership view commits that changed the epoch.", nil,
		c.viewChanges.Load)
	r.CounterFunc("bd_cluster_gossip_rounds_total", "Anti-entropy view exchanges served or swept.", nil,
		c.gossipRounds.Load)
	r.CounterFunc("bd_cluster_migration_bytes_total", "Bytes pushed by online migration (throttled copy passes and redrives).", nil,
		c.migBytes.Load)
	r.CounterFunc("bd_cluster_migration_keys_total", "Key copies pushed by online migration.", nil,
		c.migKeys.Load)
	r.CounterFunc("bd_cluster_migration_dropped_total", "Keys deleted by post-settle drop passes (no longer owned here).", nil,
		c.migDropped.Load)
	r.CounterFunc("bd_cluster_migration_skipped_total", "Migration copies shadowed by newer live writes (dirty-guard hits).", nil,
		func() uint64 {
			c.mu.RLock()
			n := c.localNodeLocked()
			c.mu.RUnlock()
			if n == nil {
				return 0
			}
			return n.guardSkips.Load()
		})

	type engineCounter struct {
		name, help string
		get        func(engine.Stats) uint64
	}
	for _, ec := range []engineCounter{
		{"bd_engine_puts_total", "Engine point writes.", func(s engine.Stats) uint64 { return s.Puts }},
		{"bd_engine_gets_total", "Engine point reads.", func(s engine.Stats) uint64 { return s.Gets }},
		{"bd_engine_deletes_total", "Engine deletes.", func(s engine.Stats) uint64 { return s.Deletes }},
		{"bd_engine_scans_total", "Engine range scans.", func(s engine.Stats) uint64 { return s.Scans }},
		{"bd_engine_scanned_entries_total", "Entries returned by scans.", func(s engine.Stats) uint64 { return s.ScannedEntries }},
		{"bd_engine_flushes_total", "Memtable flushes.", func(s engine.Stats) uint64 { return s.Flushes }},
		{"bd_engine_compactions_total", "Compaction passes.", func(s engine.Stats) uint64 { return s.Compactions }},
		{"bd_engine_bloom_negative_total", "Reads skipped by bloom filters.", func(s engine.Stats) uint64 { return s.BloomNegative }},
		{"bd_engine_runs_probed_total", "Immutable runs probed by reads.", func(s engine.Stats) uint64 { return s.RunsProbed }},
		{"bd_engine_wal_bytes_total", "Bytes appended to write-ahead logs.", func(s engine.Stats) uint64 { return s.WALBytes }},
		{"bd_engine_block_cache_hits_total", "Block cache hits.", func(s engine.Stats) uint64 { return s.BlockCacheHits }},
		{"bd_engine_block_cache_misses_total", "Block cache misses.", func(s engine.Stats) uint64 { return s.BlockCacheMisses }},
	} {
		get := ec.get
		r.CounterFunc(ec.name, ec.help, nil, func() uint64 { return get(c.LocalEngineStats()) })
	}
	for lvl := 0; lvl < metricLevels; lvl++ {
		lvl := lvl
		r.GaugeFunc("bd_engine_level_bytes", "Logical bytes per LSM level across local shards.",
			obs.Labels{"level": strconv.Itoa(lvl)},
			func() float64 { return float64(c.LocalLevelBytes(metricLevels)[lvl]) })
	}
}
