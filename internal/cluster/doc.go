// Package cluster is a sharded multi-node runtime for the Cloud OLTP and
// search-serving workloads: the scale-out layer the paper's testbed gets
// from its 14-node HBase/Nutch deployment and this repository previously
// lacked (every substrate ran single-node, single-shard).
//
// The pieces, bottom-up:
//
//   - Ring (ring.go): a consistent-hash ring with virtual nodes. Keys and
//     node replicas hash onto a 64-bit circle; a key's owners are the
//     first R distinct nodes clockwise from its hash. Virtual nodes keep
//     the per-node key share balanced, and consistent hashing bounds the
//     data movement when membership changes to the keys whose arc moved.
//
//   - Node (node.go): one in-process shard server owning an independent
//     storage engine (internal/engine; the LSM backend by default), a
//     bounded request queue, and a small
//     worker pool that drains the queue in coalesced batches. A full
//     queue sheds load (ErrOverload) instead of growing without bound —
//     the admission-control behaviour of a production region server.
//
//   - Cluster (cluster.go): the coordinator. Point ops route to the key's
//     primary; multi-op batches are split by owner and scattered
//     (batch.go); scans scatter to every node and k-way merge; writes are
//     applied synchronously to all R owners so a subsequent read of the
//     primary always observes them (read-your-writes on the primary).
//
//   - Rebalance (rebalance.go): AddNode/RemoveNode recompute the ring and
//     migrate exactly the entries whose owner set changed, quiescing
//     in-flight traffic via the topology lock.
//
//   - Health (health.go): every member is wrapped in a failure detector
//     with a hinted-handoff buffer. A background prober pings members
//     (remote ones pay a wire round trip); consecutive probe or
//     transport failures mark a member down. Reads and batch routing
//     fail over to the next live owner, writes to down replicas buffer
//     as hints and replay on recovery, scans report lost keyrange
//     coverage (ErrScanIncomplete) instead of silently shrinking, and
//     an op whose whole owner set is down fails with ErrAllOwnersDown.
//
// Sharding pays even on one core: each shard's memtable, runs and Bloom
// filters cover 1/N of the keyspace, so point lookups walk shorter
// skiplists and smaller binary-search windows, and — the dominant term —
// a size-tiered full compaction rewrites an N×-smaller store, cutting
// total compaction work by roughly N for the same write volume.
package cluster
