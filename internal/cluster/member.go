package cluster

import "repro/internal/engine"

// mirror is a replica-write target: the secondary owners a replicated
// write must reach after the primary applied it. Local nodes mirror
// straight into their engine; remote members mirror over the wire. A
// non-nil error reports a mirror the transport dropped — the caller
// (the health layer) turns it into a hinted-handoff entry instead of
// losing the copy.
type mirror interface {
	mirrorWrite(op Op) error
}

// member is the coordinator's view of one shard. The in-process *Node
// and the remoteMember proxy (see Remote) both satisfy it, so the ring
// can mix local and remote shards transparently: routing, replication,
// scatter-gather scans, rebalance and stats all program against this
// interface and never ask where the shard lives. The coordinator wraps
// every member in a memberState (health.go), which layers failure
// detection and hinted handoff over these calls.
type member interface {
	mirror
	// memberID is the ring id the coordinator assigned.
	memberID() int
	// ping is the liveness probe: nil means the member answered. Local
	// nodes answer from memory; remote members pay a health round trip
	// (transport.Client.Ping) bounded by the probe timeout.
	ping() error
	// directGet serves a point read outside the batch queues (the
	// coordinator's read-your-writes hot path). The error separates a
	// transport failure from a genuine miss, so failover reads never
	// mistake a dead member for an absent key.
	directGet(key []byte) ([]byte, bool, error)
	// directPut and directDelete apply unqueued writes; the rebalancer
	// uses them to move copies during membership changes and must learn
	// about transport failures, so they return an error (always nil for
	// local nodes).
	directPut(key, value []byte) error
	directDelete(key []byte) error
	// directWrite applies one write and fans it out to the replica set
	// as a unit serialized against other writers of the same primary.
	// The error reports a primary-side transport failure; mirror
	// failures are the replicas' own to hint or count.
	directWrite(op Op, replicas []mirror) (OpResult, error)
	// snapshotScan returns up to limit entries with key >= start from a
	// consistent point-in-time view of the shard, appending to dst
	// (which may be nil) so scatter-gather callers can reuse partial
	// buffers. The error is always nil for local nodes; remote members
	// surface transport failures so migration never mistakes a lost
	// shard for an empty one.
	snapshotScan(dst []engine.Entry, start []byte, limit int) ([]engine.Entry, error)
	// submit enqueues a sub-batch with backpressure; trySubmit sheds
	// with ErrOverload instead of blocking (admission control). Both may
	// complete the request asynchronously.
	submit(req *request) error
	trySubmit(req *request) error
	// stats snapshots the shard's activity counters.
	stats() NodeStats
	// close releases the member (local: drain and stop workers; remote:
	// drop the proxy's connections — the remote server keeps running).
	close()
}
