package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// chaosRemote is a loopRemote with a kill switch: while down, every RPC
// fails with errNetDown — the transport-free model of a crashed or
// partitioned bdserve process. Reviving it restores the backing store
// untouched (the durable-storage restart model).
type chaosRemote struct {
	c    *Cluster
	down atomic.Bool
}

func newChaosRemote() *chaosRemote {
	return &chaosRemote{c: New(Config{Shards: 1, Engine: engine.Options{MemtableBytes: 32 << 10}})}
}

func (r *chaosRemote) rpc() error {
	if r.down.Load() {
		return errNetDown
	}
	return nil
}

func (r *chaosRemote) Ping() error { return r.rpc() }

func (r *chaosRemote) Get(key []byte) ([]byte, bool, error) {
	if err := r.rpc(); err != nil {
		return nil, false, err
	}
	v, ok := r.c.Get(key)
	return v, ok, nil
}

func (r *chaosRemote) Put(key, value []byte) error {
	if err := r.rpc(); err != nil {
		return err
	}
	return r.c.Put(key, value)
}

func (r *chaosRemote) Delete(key []byte) error {
	if err := r.rpc(); err != nil {
		return err
	}
	return r.c.Delete(key)
}

func (r *chaosRemote) Scan(start []byte, limit int) ([]engine.Entry, error) {
	if err := r.rpc(); err != nil {
		return nil, err
	}
	return r.c.Scan(start, limit)
}

func (r *chaosRemote) Apply(ops []Op) ([]OpResult, error) {
	if err := r.rpc(); err != nil {
		return nil, err
	}
	return r.c.Apply(ops)
}

func (r *chaosRemote) TryApply(ops []Op) ([]OpResult, error) {
	if err := r.rpc(); err != nil {
		return nil, err
	}
	return r.c.TryApply(ops)
}

func (r *chaosRemote) Stats() (Stats, error) {
	if err := r.rpc(); err != nil {
		return Stats{}, err
	}
	return r.c.Stats(), nil
}

func (r *chaosRemote) Close() error { r.c.Close(); return nil }

// failoverCluster builds a manual-probe coordinator (ProbeInterval < 0)
// with one local node and one chaosRemote, returning the remote's ring
// id. threshold is ProbeFailures.
func failoverCluster(t *testing.T, replication, threshold int) (*Cluster, *chaosRemote, int) {
	t.Helper()
	c := New(Config{
		Shards:        1,
		Replication:   replication,
		ProbeInterval: -1,
		ProbeFailures: threshold,
		Engine:        engine.Options{MemtableBytes: 32 << 10},
	})
	rem := newChaosRemote()
	id, _, err := c.AddRemote(rem)
	if err != nil {
		t.Fatal(err)
	}
	return c, rem, id
}

// markDown drives the manual prober until the detector flips the member.
func markDown(t *testing.T, c *Cluster, id, threshold int) {
	t.Helper()
	for i := 0; i < threshold; i++ {
		c.Probe()
	}
	if !c.MemberDown(id) {
		t.Fatalf("member %d not marked down after %d failed probes", id, threshold)
	}
}

// remoteKeys returns n keys whose primary is the given member.
func remoteKeys(c *Cluster, id, n int) [][]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var keys [][]byte
	for i := 0; len(keys) < n && i < 100000; i++ {
		k := []byte(fmt.Sprintf("fo-%05d", i))
		if c.ring.Owners(k, c.cfg.Replication)[0] == id {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestScanSurfacesLostCoverage pins the silent-truncation bugfix: with
// R=1 a dead member's keyrange has no surviving copy, so Scan must
// return ErrScanIncomplete — both before the detector flips (failed
// RPC) and after (member marked down) — instead of a silently shorter
// result.
func TestScanSurfacesLostCoverage(t *testing.T) {
	c, rem, id := failoverCluster(t, 1, 2)
	defer c.Close()
	for i := 0; i < 600; i++ {
		k := []byte(fmt.Sprintf("fo-%05d", i))
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	full, err := c.Scan(nil, 1000)
	if err != nil || len(full) != 600 {
		t.Fatalf("healthy scan = %d entries, %v", len(full), err)
	}

	rem.down.Store(true)
	// Phase 1: the member is dying but not yet marked down — the scan
	// RPC fails and the loss must surface immediately.
	got, err := c.Scan(nil, 1000)
	if !errors.Is(err, ErrScanIncomplete) {
		t.Fatalf("scan with failing member = %v, want ErrScanIncomplete", err)
	}
	if len(got) >= 600 {
		t.Fatalf("partial scan returned %d entries, expected fewer than 600", len(got))
	}
	// Phase 2: after detection the member is skipped, and the verdict is
	// the same explicit error, not a quietly shrunken range.
	markDown(t, c, id, 2)
	if _, err := c.Scan(nil, 1000); !errors.Is(err, ErrScanIncomplete) {
		t.Fatalf("scan with down member = %v, want ErrScanIncomplete", err)
	}

	// Recovery restores clean full scans.
	rem.down.Store(false)
	c.Probe()
	if c.MemberDown(id) {
		t.Fatal("member still down after successful probe")
	}
	got, err = c.Scan(nil, 1000)
	if err != nil || len(got) != 600 {
		t.Fatalf("post-recovery scan = %d entries, %v", len(got), err)
	}
}

// TestScanCompleteUnderReplicaCoverage pins the degraded-read guarantee:
// with R=2, one dead member leaves every keyrange covered by a survivor,
// so Scan stays complete and error-free.
func TestScanCompleteUnderReplicaCoverage(t *testing.T) {
	c, rem, id := failoverCluster(t, 2, 2)
	defer c.Close()
	ref, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("fo-%05d", i))
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
		ref.Put(k, k)
	}
	rem.down.Store(true)
	markDown(t, c, id, 2)
	for _, start := range []string{"", "fo-00250"} {
		got, err := c.Scan([]byte(start), 100)
		if err != nil {
			t.Fatalf("covered scan(%q) = %v, want nil error", start, err)
		}
		want := ref.Scan([]byte(start), 100)
		if len(got) != len(want) {
			t.Fatalf("covered scan(%q) len = %d, want %d", start, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, want[i].Key) {
				t.Fatalf("covered scan(%q)[%d] = %q, want %q", start, i, got[i].Key, want[i].Key)
			}
		}
	}
}

// TestReadFailoverToReplica pins degraded point reads: a key whose
// primary is dead keeps serving from the surviving replica, both before
// and after detection.
func TestReadFailoverToReplica(t *testing.T) {
	c, rem, id := failoverCluster(t, 2, 2)
	defer c.Close()
	keys := remoteKeys(c, id, 50)
	if len(keys) < 50 {
		t.Fatal("no keys with a remote primary found")
	}
	for _, k := range keys {
		if err := c.Put(k, append([]byte("v-"), k...)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(phase string) {
		t.Helper()
		for _, k := range keys {
			v, ok := c.Get(k)
			if !ok || !bytes.Equal(v, append([]byte("v-"), k...)) {
				t.Fatalf("%s: Get(%q) = %q, %v", phase, k, v, ok)
			}
		}
	}
	rem.down.Store(true)
	check("pre-detection")
	markDown(t, c, id, 2)
	check("post-detection")
}

// TestWriteFailoverAndHintedHandoff is the heart of the tentpole: writes
// to a down primary promote to the surviving replica and buffer hints;
// recovery replays them so the member converges, after which it is live
// again.
func TestWriteFailoverAndHintedHandoff(t *testing.T) {
	c, rem, id := failoverCluster(t, 2, 2)
	defer c.Close()
	keys := remoteKeys(c, id, 40)
	if len(keys) < 40 {
		t.Fatal("no keys with a remote primary found")
	}
	rem.down.Store(true)
	markDown(t, c, id, 2)

	// Writes through the dead primary must succeed (promoted to the
	// survivor) and stay readable; the same key overwritten twice must
	// replay to its final value.
	for _, k := range keys {
		if err := c.Put(k, []byte("stale")); err != nil {
			t.Fatalf("Put(%q) with down primary: %v", k, err)
		}
		if err := c.Put(k, append([]byte("final-"), k...)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if v, ok := c.Get(k); !ok || !bytes.Equal(v, append([]byte("final-"), k...)) {
			t.Fatalf("degraded read of %q = %q, %v", k, v, ok)
		}
	}
	st := c.Stats()
	var pending uint64
	for _, ns := range st.Nodes {
		pending += ns.HintsPending
	}
	if pending == 0 {
		t.Fatal("no hints buffered for the down member")
	}
	if st.Down != 1 {
		t.Fatalf("Stats.Down = %d, want 1", st.Down)
	}

	// Recovery: probe sees the member, replays the hints, marks it up.
	rem.down.Store(false)
	c.Probe()
	if c.MemberDown(id) {
		t.Fatal("member still down after recovery probe")
	}
	for _, k := range keys {
		v, ok := rem.c.Get(k)
		if !ok || !bytes.Equal(v, append([]byte("final-"), k...)) {
			t.Fatalf("hinted handoff did not converge %q on the recovered member: %q, %v", k, v, ok)
		}
	}
	st = c.Stats()
	var replayed, stillPending uint64
	for _, ns := range st.Nodes {
		replayed += ns.HintsReplayed
		stillPending += ns.HintsPending
	}
	if replayed == 0 || stillPending != 0 {
		t.Fatalf("hint replay accounting: replayed=%d pending=%d", replayed, stillPending)
	}
}

// TestHintBufferBound pins the handoff buffer's drop-oldest bound and
// its audit counter.
func TestHintBufferBound(t *testing.T) {
	c := New(Config{
		Shards:        1,
		Replication:   2,
		ProbeInterval: -1,
		ProbeFailures: 1,
		HintLimit:     8,
		Engine:        engine.Options{MemtableBytes: 32 << 10},
	})
	defer c.Close()
	rem := newChaosRemote()
	id, _, err := c.AddRemote(rem)
	if err != nil {
		t.Fatal(err)
	}
	rem.down.Store(true)
	markDown(t, c, id, 1)
	for i := 0; i < 50; i++ {
		if err := c.Put([]byte(fmt.Sprintf("hb-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var pending, dropped uint64
	for _, ns := range c.Stats().Nodes {
		pending += ns.HintsPending
		dropped += ns.HintsDropped
	}
	if pending > 8 {
		t.Fatalf("hint buffer grew to %d, bound is 8", pending)
	}
	if dropped == 0 {
		t.Fatal("overflowed hints not counted in HintsDropped")
	}
}

// TestApplyMidFailureSurfacesError pins the mid-batch failure paths:
// a member dying mid-Apply surfaces the transport error (errors.Is
// reaches the cause), passive detection flips the member down, and from
// then on an R=1 keyrange fails explicitly with ErrAllOwnersDown rather
// than losing writes.
func TestApplyMidFailureSurfacesError(t *testing.T) {
	c, rem, id := failoverCluster(t, 1, 3)
	defer c.Close()
	keys := remoteKeys(c, id, 1)
	if len(keys) == 0 {
		t.Fatal("no key with a remote primary found")
	}
	ops := []Op{{Kind: OpPut, Key: keys[0], Value: []byte("v")}}
	rem.down.Store(true)
	// The detector needs ProbeFailures consecutive transport errors; each
	// failed Apply feeds it one.
	sawTransportErr := false
	for i := 0; i < 3; i++ {
		_, err := c.Apply(ops)
		if err == nil {
			t.Fatalf("Apply %d against dead member succeeded", i)
		}
		if errors.Is(err, errNetDown) {
			sawTransportErr = true
		}
	}
	if !sawTransportErr {
		t.Fatal("mid-Apply transport failure did not surface via errors.Is")
	}
	if !c.MemberDown(id) {
		t.Fatal("repeated Apply failures did not mark the member down (passive detection)")
	}
	if _, err := c.Apply(ops); !errors.Is(err, ErrAllOwnersDown) {
		t.Fatalf("Apply with every owner down = %v, want ErrAllOwnersDown", err)
	}
	if err := c.Put(keys[0], []byte("v")); !errors.Is(err, ErrAllOwnersDown) {
		t.Fatalf("Put with every owner down = %v, want ErrAllOwnersDown", err)
	}
}

// TestApplyRoutesAroundDownMember pins degraded batches under R=2: the
// whole mix keeps succeeding with one member down, reads return the
// written values, and nothing reports stale results.
func TestApplyRoutesAroundDownMember(t *testing.T) {
	c, rem, id := failoverCluster(t, 2, 2)
	defer c.Close()
	var writes []Op
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("ar-%04d", i))
		writes = append(writes, Op{Kind: OpPut, Key: k, Value: append([]byte("w-"), k...)})
	}
	if _, err := c.Apply(writes); err != nil {
		t.Fatal(err)
	}
	rem.down.Store(true)
	markDown(t, c, id, 2)
	// Overwrite half the keys and read everything back, all batched.
	var mixed []Op
	for i := 0; i < 200; i += 2 {
		k := []byte(fmt.Sprintf("ar-%04d", i))
		mixed = append(mixed, Op{Kind: OpPut, Key: k, Value: append([]byte("w2-"), k...)})
	}
	if _, err := c.Apply(mixed); err != nil {
		t.Fatalf("degraded write batch: %v", err)
	}
	var reads []Op
	for i := 0; i < 200; i++ {
		reads = append(reads, Op{Kind: OpGet, Key: []byte(fmt.Sprintf("ar-%04d", i))})
	}
	res, err := c.Apply(reads)
	if err != nil {
		t.Fatalf("degraded read batch: %v", err)
	}
	for i, r := range res {
		k := fmt.Sprintf("ar-%04d", i)
		want := "w-" + k
		if i%2 == 0 {
			want = "w2-" + k
		}
		if !r.Found || string(r.Value) != want {
			t.Fatalf("degraded batched read %d = %+v, want %q", i, r, want)
		}
	}
}

// TestRebalanceMidFailureSurfacesError pins the mid-rebalance failure
// path: membership changes that hit a dead member's transport report an
// errors.Is-compatible error instead of a clean MoveReport with keys
// left behind.
func TestRebalanceMidFailureSurfacesError(t *testing.T) {
	c, rem, id := failoverCluster(t, 1, 2)
	defer c.Close()
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("rb-%04d", i))
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	rem.down.Store(true)
	if _, _, err := c.AddNode(); !errors.Is(err, errNetDown) {
		t.Fatalf("AddNode with dead member = %v, want errNetDown", err)
	}
	if _, err := c.RemoveNode(id); !errors.Is(err, errNetDown) {
		t.Fatalf("RemoveNode of dead member = %v, want errNetDown", err)
	}
}

// TestProbeRecoveryIsLive pins the background prober wiring end to end
// with an aggressive interval: detection and recovery happen without
// any manual Probe calls.
func TestProbeRecoveryIsLive(t *testing.T) {
	c := New(Config{
		Shards:        1,
		Replication:   2,
		ProbeInterval: time.Millisecond,
		ProbeFailures: 2,
		Engine:        engine.Options{MemtableBytes: 32 << 10},
	})
	defer c.Close()
	rem := newChaosRemote()
	id, _, err := c.AddRemote(rem)
	if err != nil {
		t.Fatal(err)
	}
	rem.down.Store(true)
	waitFor(t, "member marked down", func() bool { return c.MemberDown(id) })
	rem.down.Store(false)
	waitFor(t, "member recovered", func() bool { return !c.MemberDown(id) })
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
