package cluster

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestClusterMetricsFamilies drives the failover machinery with the
// registry attached and asserts the bd_cluster_* / bd_engine_* series
// track it: down members, pending and replayed hints, read and write
// failovers, engine counters — all collected without any scrape RPC.
func TestClusterMetricsFamilies(t *testing.T) {
	c, rem, id := failoverCluster(t, 2, 2)
	defer c.Close()
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)

	keys := remoteKeys(c, id, 20)
	if len(keys) < 20 {
		t.Fatal("no keys with a remote primary found")
	}
	for _, k := range keys {
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap["bd_cluster_members"].Float() != 2 || snap["bd_cluster_members_down"].Float() != 0 {
		t.Fatalf("healthy membership gauges: members=%v down=%v",
			snap["bd_cluster_members"], snap["bd_cluster_members_down"])
	}
	if snap["bd_engine_puts_total"].Float() == 0 {
		t.Fatal("local engine puts not visible in bd_engine_puts_total")
	}
	if snap[`bd_cluster_failovers_total{kind="write"}`].Float() != 0 {
		t.Fatal("write failovers counted on a healthy cluster")
	}

	rem.down.Store(true)
	markDown(t, c, id, 2)
	for _, k := range keys {
		if err := c.Put(k, append([]byte("f-"), k...)); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); !ok {
			t.Fatalf("degraded read of %q missed", k)
		}
	}
	snap = reg.Snapshot()
	if snap["bd_cluster_members_down"].Float() != 1 {
		t.Fatalf("members_down = %v, want 1", snap["bd_cluster_members_down"])
	}
	if snap["bd_cluster_hints_pending"].Float() == 0 {
		t.Fatal("no pending hints visible while the primary is down")
	}
	if snap[`bd_cluster_failovers_total{kind="write"}`].Float() == 0 {
		t.Fatal("write failovers not counted")
	}
	if snap[`bd_cluster_failovers_total{kind="read"}`].Float() == 0 {
		t.Fatal("read failovers not counted")
	}

	rem.down.Store(false)
	c.Probe()
	snap = reg.Snapshot()
	if snap["bd_cluster_members_down"].Float() != 0 {
		t.Fatalf("members_down after recovery = %v, want 0", snap["bd_cluster_members_down"])
	}
	if snap["bd_cluster_hints_pending"].Float() != 0 {
		t.Fatalf("hints still pending after replay: %v", snap["bd_cluster_hints_pending"])
	}
	if snap["bd_cluster_hints_replayed_total"].Float() == 0 {
		t.Fatal("replayed hints not counted")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`bd_engine_level_bytes{level="0"}`,
		"# TYPE bd_cluster_failovers_total counter",
		"# TYPE bd_cluster_hints_pending gauge",
	} {
		if !strings.Contains(b.String(), frag) {
			t.Errorf("exposition missing %q", frag)
		}
	}
}
