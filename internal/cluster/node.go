package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Node is one in-process shard server: an independent storage engine
// fronted by a bounded request queue and a small worker pool. It models
// a region server — the unit the coordinator routes to, replicates
// across, and rebalances between. The node is engine-agnostic: it
// programs against engine.Engine, so any registered backend serves.
type Node struct {
	id  int
	eng engine.Engine

	// wmu serializes the primary+replica application of each write this
	// node owns. Every write for a key flows through its primary node
	// (queued or direct), so holding the primary's wmu makes the
	// multi-store update atomic with respect to other writers and keeps
	// replicas byte-identical to the primary.
	wmu sync.Mutex

	queue    chan *request
	workers  int
	maxBatch int
	wg       sync.WaitGroup

	// spans, when non-nil, receives a "cluster/write" span for every
	// traced write this node leads (exec + replicate phases); mirror
	// legs are re-parented onto it so replica hops hang off this one.
	// Untraced ops never touch it.
	spans *obs.SpanLog

	closeOnce sync.Once
	closed    atomic.Bool

	// guard, when non-nil, is the armed dirty-guard for an epoch whose
	// migration is in flight (migrate.go): every local write marks its
	// key so a racing migration copy can never bury it. Settled epochs
	// run with a nil guard — one atomic load on the write path.
	guard      atomic.Pointer[migrationGuard]
	guardSkips atomic.Uint64 // migration copies shadowed by newer live writes

	accepted atomic.Uint64 // requests enqueued
	rejected atomic.Uint64 // requests shed by admission control
	batches  atomic.Uint64 // worker drain cycles (coalesced groups)
	ops      atomic.Uint64 // point ops executed (queued + direct)
}

// NodeStats is a snapshot of one node's activity.
type NodeStats struct {
	ID                 int
	Accepted, Rejected uint64
	Batches, Ops       uint64
	// TransportErrs counts RPC failures a remote member's proxy observed
	// (always 0 for local nodes) — the audit trail for writes or scans
	// the void paths had to drop.
	TransportErrs uint64
	// Down reports the coordinator's failure-detector verdict for this
	// member at snapshot time; the hint counters account for its hinted
	// handoff (writes buffered while unreachable, replayed on recovery,
	// or dropped past the buffer bound).
	Down                        bool
	HintsPending, HintsReplayed uint64
	HintsDropped                uint64
	Store                       engine.Stats
}

// newNode builds a stopped node; start launches its workers.
func newNode(id int, eng engine.Engine, queueDepth, workers, maxBatch int) *Node {
	return &Node{
		id:       id,
		eng:      eng,
		queue:    make(chan *request, queueDepth),
		workers:  workers,
		maxBatch: maxBatch,
	}
}

func (n *Node) start() {
	for i := 0; i < n.workers; i++ {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.run()
		}()
	}
}

// run drains the queue, opportunistically coalescing queued requests into
// one wakeup (group commit) up to the batch cap.
func (n *Node) run() {
	for req := range n.queue {
		n.batches.Add(1)
		// Size bookkeeping must happen before exec: exec's final act is
		// done.Done(), after which the pooled request may be recycled by
		// the next Apply — reading req past that point is a use-after-
		// release race.
		budget := n.maxBatch - len(req.ops)
		n.exec(req)
		for budget > 0 {
			select {
			case more, ok := <-n.queue:
				if !ok {
					return
				}
				budget -= len(more.ops)
				n.exec(more)
			default:
				budget = 0
			}
		}
	}
}

// memberID, ping, directGet, directPut, directDelete, mirrorWrite and
// snapshotScan are the in-process half of the member interface: engine
// calls with no queue or wire in between.
func (n *Node) memberID() int { return n.id }

// ping answers liveness from memory: an in-process node is reachable
// for exactly as long as it has not been closed.
func (n *Node) ping() error {
	if n.closed.Load() {
		return ErrClosed
	}
	return nil
}

func (n *Node) directGet(key []byte) ([]byte, bool, error) {
	v, ok := n.eng.Get(key)
	return v, ok, nil
}

func (n *Node) directPut(key, value []byte) error {
	n.markDirty(key)
	n.eng.Put(key, value)
	return nil
}

func (n *Node) directDelete(key []byte) error {
	n.markDirty(key)
	n.eng.Delete(key)
	return nil
}

func (n *Node) mirrorWrite(op Op) error { return n.applyLocal(op, false) }

// markDirty records a live write with the armed migration guard, if any.
func (n *Node) markDirty(key []byte) {
	if g := n.guard.Load(); g != nil {
		g.mark(key)
	}
}

// applyLocal lands one write on this node's engine without replica
// fan-out. Live writes (migration=false) mark the dirty-guard first;
// migration copies (migration=true) are dropped when the key was written
// after the epoch began — check and apply happen under the guard lock,
// so every interleaving leaves the live write's value on top. A nil
// guard means the epoch has settled: late migration copies are dropped
// outright (the sender settles only after its pushes completed, so a
// copy arriving now is a stale retry).
func (n *Node) applyLocal(op Op, migration bool) error {
	if n.closed.Load() {
		return ErrClosed
	}
	if !migration {
		n.markDirty(op.Key)
		applyWrite(n.eng, op)
		return nil
	}
	g := n.guard.Load()
	if g == nil {
		n.guardSkips.Add(1)
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dirty := g.dirty[string(op.Key)]; dirty {
		n.guardSkips.Add(1)
		return nil
	}
	applyWrite(n.eng, op)
	return nil
}

func (n *Node) snapshotScan(dst []engine.Entry, start []byte, limit int) ([]engine.Entry, error) {
	sn := n.eng.Snapshot()
	defer sn.Release()
	return sn.AppendScan(dst, start, limit), nil
}

// exec applies one sub-batch against the engine, fanning writes out to
// the replica targets resolved at planning time, then releases the
// waiter. Runs of consecutive replica-free writes coalesce into one
// engine WriteBatch — one writer-lock acquisition and atomic visibility
// for the whole run (group commit); interleaved reads and replicated
// writes execute in order around them.
func (n *Node) exec(req *request) {
	i := 0
	for i < len(req.ops) {
		op := req.ops[i]
		if op.Kind == OpGet || len(req.replicas[i]) > 0 || n.traced(op) {
			var res OpResult
			if op.Kind == OpGet {
				res = n.do(op)
			} else {
				res, _ = n.directWrite(op, req.replicas[i])
			}
			if req.results != nil {
				req.results[req.idx[i]] = res
			}
			i++
			continue
		}
		j := i + 1
		for j < len(req.ops) && req.ops[j].Kind != OpGet && len(req.replicas[j]) == 0 && !n.traced(req.ops[j]) {
			j++
		}
		if j-i == 1 {
			res, _ := n.directWrite(op, nil)
			if req.results != nil {
				req.results[req.idx[i]] = res
			}
			i = j
			continue
		}
		batch := make([]engine.BatchOp, j-i)
		for k := i; k < j; k++ {
			n.markDirty(req.ops[k].Key)
			batch[k-i] = engine.BatchOp{
				Key:    req.ops[k].Key,
				Value:  req.ops[k].Value,
				Delete: req.ops[k].Kind == OpDelete,
			}
		}
		n.wmu.Lock()
		n.eng.WriteBatch(batch)
		n.wmu.Unlock()
		n.ops.Add(uint64(j - i))
		if req.results != nil {
			for k := i; k < j; k++ {
				req.results[req.idx[k]] = OpResult{}
			}
		}
		i = j
	}
	if req.done != nil {
		req.done.Done()
	}
}

// traced reports whether op should record a cluster-layer span here.
// Traced writes break out of coalesced WriteBatch runs (exec) so every
// one goes through directWrite and leaves its hop in the span log.
func (n *Node) traced(op Op) bool { return op.Trace != 0 && n.spans != nil }

// directWrite applies one write to this node's engine and its replicas
// as an atomic unit under the primary's write lock. The local apply
// cannot fail; a replica whose mirror fails hints or counts the miss
// itself (memberState.mirrorWrite), so the error is always nil.
//
// A traced write records a "cluster/write" span splitting the hop into
// its local-apply (exec) and mirror fan-out (replicate) phases, and
// re-parents the mirror legs onto that span — a remote replica's own
// server span then reports this hop as its parent via the wire frame.
func (n *Node) directWrite(op Op, replicas []mirror) (OpResult, error) {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	if !n.traced(op) {
		res := n.do(op)
		for _, re := range replicas {
			_ = re.mirrorWrite(op)
		}
		return res, nil
	}
	span := obs.Span{
		Trace: op.Trace, ID: obs.NewSpanID(), Parent: op.Parent,
		Name: "cluster/write", Start: time.Now(),
		Bytes: len(op.Key) + len(op.Value),
	}
	res := n.do(op)
	execDone := time.Now()
	op.Parent = span.ID
	for _, re := range replicas {
		_ = re.mirrorWrite(op)
	}
	span.Dur = time.Since(span.Start)
	exec := execDone.Sub(span.Start)
	span.Phases = []obs.Phase{
		{Name: "exec", Dur: exec},
		{Name: "replicate", Dur: span.Dur - exec},
	}
	n.spans.Record(span)
	return res, nil
}

// do executes one op on this node's own engine.
func (n *Node) do(op Op) OpResult {
	n.ops.Add(1)
	switch op.Kind {
	case OpPut:
		n.markDirty(op.Key)
		n.eng.Put(op.Key, op.Value)
		return OpResult{}
	case OpDelete:
		n.markDirty(op.Key)
		n.eng.Delete(op.Key)
		return OpResult{}
	default:
		v, ok := n.eng.Get(op.Key)
		return OpResult{Value: v, Found: ok}
	}
}

// applyWrite mirrors a write op onto a replica engine.
func applyWrite(e engine.Engine, op Op) {
	switch op.Kind {
	case OpPut:
		e.Put(op.Key, op.Value)
	case OpDelete:
		e.Delete(op.Key)
	}
}

// trySubmit enqueues without blocking; a full queue sheds the request.
func (n *Node) trySubmit(req *request) error {
	if n.closed.Load() {
		return ErrClosed
	}
	select {
	case n.queue <- req:
		n.accepted.Add(1)
		return nil
	default:
		n.rejected.Add(1)
		return ErrOverload
	}
}

// submit enqueues with backpressure: a full queue blocks the caller until
// a worker drains space.
func (n *Node) submit(req *request) error {
	if n.closed.Load() {
		return ErrClosed
	}
	n.queue <- req
	n.accepted.Add(1)
	return nil
}

// close stops intake and waits for the workers to drain the queue.
func (n *Node) close() {
	n.closeOnce.Do(func() {
		n.closed.Store(true)
		close(n.queue)
		n.wg.Wait()
	})
}

// stats snapshots the node counters.
func (n *Node) stats() NodeStats {
	return NodeStats{
		ID:       n.id,
		Accepted: n.accepted.Load(),
		Rejected: n.rejected.Load(),
		Batches:  n.batches.Load(),
		Ops:      n.ops.Load(),
		Store:    n.eng.Stats(),
	}
}
