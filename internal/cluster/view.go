package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file is the membership value layer: an epoch-versioned,
// immutable ClusterView that the coordinator swaps atomically (the same
// discipline the kvstore applies to its immutable versions). Everything
// mutable about membership — who is in the cluster, how healthy each
// member looks, how far migration has progressed — is expressed as a
// new view value; readers capture one pointer and route against a
// consistent snapshot with no locks on the hot path.
//
// Epoch rules:
//   - The epoch versions the OWNERSHIP map: it changes exactly when the
//     set of ring members (rows whose status is not Left) changes.
//     Joins, leaves and crash declarations bump it; health flaps and
//     migration progress do not.
//   - Per-member rows version independently through Incarnation
//     (SWIM-style): the higher incarnation wins a merge, and a tie
//     resolves to the worse status so a death notice is never lost to
//     reordering. Only the member itself refutes a bad verdict, by
//     republishing its row at a higher incarnation.
//   - Settled is the member's own high-water mark: "my outbound
//     migration for every epoch <= Settled is complete". It merges by
//     max independently of incarnation. When every live row's Settled
//     reaches the view epoch the ownership change has converged: every
//     copy is where the new ring says it lives.

// MemberStatus is one member's health verdict inside a ClusterView.
// Order matters: higher values are strictly worse, and an incarnation
// tie between two verdicts resolves to the larger one.
type MemberStatus uint8

const (
	// StatusAlive means the member is serving.
	StatusAlive MemberStatus = iota
	// StatusSuspect means probes have started failing but the detector
	// has not yet reached its threshold. Suspect members stay on the
	// ring; routing treats them like alive ones.
	StatusSuspect
	// StatusDown means the failure detector's threshold was reached.
	// Down members stay on the ring (ownership is unchanged; routing
	// fails over around them) until a peer declares them Left.
	StatusDown
	// StatusLeaving means the member announced a graceful departure: it
	// is off the ring (the epoch bumped, successors are taking over its
	// ranges) but still counted in the settle barrier, because it holds
	// data it must finish pushing before anyone drops relocated copies.
	// The member itself transitions Leaving -> Left once its outbound
	// migration settles; a Leaving member that crashes is declared Left
	// by the lowest-id live peer like any dead member.
	StatusLeaving
	// StatusLeft means the member has departed — gracefully via Leave,
	// or declared dead by the lowest-id live member after a sustained
	// outage. Left rows stay in the view as tombstones (so the verdict
	// survives merges) but are off the ring and out of the barrier.
	StatusLeft
)

// onRing reports whether a row with this status owns ring arcs.
func (s MemberStatus) onRing() bool { return s <= StatusDown }

func (s MemberStatus) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDown:
		return "down"
	case StatusLeaving:
		return "leaving"
	case StatusLeft:
		return "left"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// MemberInfo is one member's row in a ClusterView.
type MemberInfo struct {
	// ID is the ring id. Networked members derive it from their
	// advertised address (MemberIDForAddr), so every process computes
	// the identical ring from the same view without coordination.
	ID int
	// Addr is the member's advertised transport address; empty for
	// in-process members of a non-elastic cluster.
	Addr string
	// Status is the current health verdict; see MemberStatus.
	Status MemberStatus
	// Incarnation versions this row; see the epoch rules above.
	Incarnation uint64
	// Settled is the highest epoch this member has fully migrated for.
	Settled uint64
}

// ClusterView is one immutable membership snapshot. Fields are exported
// for inspection but must never be mutated — derive a new view instead.
type ClusterView struct {
	Epoch  uint64
	R      int // replication factor agreed cluster-wide
	VNodes int // virtual nodes per member, agreed cluster-wide
	// Members is sorted by ID and includes Left tombstones.
	Members []MemberInfo

	ring    *Ring
	digest  uint64
	settled bool
}

// MemberIDForAddr derives the deterministic ring id for a networked
// member from its advertised address. Every process that learns the
// address computes the same id, so rings built from the same view are
// identical everywhere without an id-assignment authority.
func MemberIDForAddr(addr string) int {
	return int(hashKey([]byte(addr)) >> 1) // keep it positive
}

// newView builds a finalized view: rows sorted by id, the ring derived
// over non-Left members, digest and settledness precomputed. It takes
// ownership of members.
func newView(epoch uint64, r, vnodes int, members []MemberInfo) *ClusterView {
	if r <= 0 {
		r = 1
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	v := &ClusterView{Epoch: epoch, R: r, VNodes: vnodes, Members: members}
	v.ring = NewRing(vnodes)
	v.settled = true
	for _, m := range members {
		if m.Status.onRing() {
			v.ring.Add(m.ID)
		}
		if m.Status != StatusDown && m.Status != StatusLeft && m.Settled < epoch {
			// Alive, Suspect and Leaving rows all gate convergence: each
			// may hold copies it must finish pushing. Down members are
			// excluded — they cannot migrate, and their departure is what
			// the Left declaration exists to resolve.
			v.settled = false
		}
	}
	v.digest = v.computeDigest()
	return v
}

// Digest is a cheap fingerprint of the entire view — epoch, parameters
// and every row. Two views with equal digests are treated as identical
// by the anti-entropy exchange.
func (v *ClusterView) Digest() uint64 { return v.digest }

// AllSettled reports whether every live member's Settled has reached
// the view epoch — the convergence condition after an ownership change.
func (v *ClusterView) AllSettled() bool { return v.settled }

// Ring returns the ownership ring derived from the view. Callers must
// treat it as read-only.
func (v *ClusterView) Ring() *Ring { return v.ring }

// Member returns the row for id.
func (v *ClusterView) Member(id int) (MemberInfo, bool) {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i].ID >= id })
	if i < len(v.Members) && v.Members[i].ID == id {
		return v.Members[i], true
	}
	return MemberInfo{}, false
}

// withRow derives a new view with m inserted or replacing its row. When
// the change alters ring membership (a join, a leave, a declaration or
// a resurrection) the epoch advances; otherwise it is a row-level
// update (health verdicts, settle watermarks) at the same epoch.
func (v *ClusterView) withRow(m MemberInfo) *ClusterView {
	rows := make([]MemberInfo, 0, len(v.Members)+1)
	replaced := false
	ringChanged := m.Status.onRing() // a pure insert adds a ring member
	for _, r := range v.Members {
		if r.ID == m.ID {
			ringChanged = r.Status.onRing() != m.Status.onRing()
			rows = append(rows, m)
			replaced = true
			continue
		}
		rows = append(rows, r)
	}
	if !replaced {
		rows = append(rows, m)
	}
	epoch := v.Epoch
	if ringChanged {
		epoch++
	}
	return newView(epoch, v.R, v.VNodes, rows)
}

func (v *ClusterView) computeDigest() uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(v.Epoch)
	mix(uint64(v.R)<<32 | uint64(v.VNodes))
	for _, m := range v.Members {
		mix(uint64(int64(m.ID)))
		mix(m.Incarnation)
		mix(m.Settled)
		mix(uint64(m.Status))
		mix(hashKey([]byte(m.Addr)))
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// sameRingMembers reports whether two sorted row sets imply the same
// ring membership (the same on-ring ids).
func sameRingMembers(a, b []MemberInfo) bool {
	i, j := 0, 0
	for {
		for i < len(a) && !a[i].Status.onRing() {
			i++
		}
		for j < len(b) && !b[j].Status.onRing() {
			j++
		}
		if i >= len(a) || j >= len(b) {
			return i >= len(a) && j >= len(b)
		}
		if a[i].ID != b[j].ID {
			return false
		}
		i++
		j++
	}
}

// MergeViews merges two membership views into the one both sides
// converge on. The merge is deterministic and symmetric: any set of
// nodes pairwise exchanging views reaches the same digest regardless of
// order, which is what makes the anti-entropy loop an agreement
// protocol rather than a broadcast.
//
// Rules: rows merge per member by incarnation (higher wins; an
// incarnation tie resolves to the worse status; Settled merges by max
// independently). The higher-epoch input contributes the cluster
// parameters, with the digest as a deterministic tie-break. The merged
// epoch is the max of the two — advanced by one when the merge itself
// changed ring membership relative to the winner, which is how two view
// islands that diverged at the same epoch (a healed partition) agree on
// a fresh, strictly larger epoch for the united ring.
func MergeViews(a, b *ClusterView) *ClusterView {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Digest() == b.Digest() {
		return a
	}
	winner := a
	if b.Epoch > a.Epoch || (b.Epoch == a.Epoch && b.Digest() > a.Digest()) {
		winner = b
	}
	rows := make([]MemberInfo, 0, len(a.Members)+len(b.Members))
	i, j := 0, 0
	for i < len(a.Members) || j < len(b.Members) {
		switch {
		case j >= len(b.Members) || (i < len(a.Members) && a.Members[i].ID < b.Members[j].ID):
			rows = append(rows, a.Members[i])
			i++
		case i >= len(a.Members) || b.Members[j].ID < a.Members[i].ID:
			rows = append(rows, b.Members[j])
			j++
		default:
			rows = append(rows, mergeRow(a.Members[i], b.Members[j]))
			i++
			j++
		}
	}
	epoch := winner.Epoch
	if !sameRingMembers(rows, winner.Members) {
		epoch++
	}
	return newView(epoch, winner.R, winner.VNodes, rows)
}

// mergeRow resolves one member's row between two views.
func mergeRow(x, y MemberInfo) MemberInfo {
	out := x
	if y.Incarnation > x.Incarnation || (y.Incarnation == x.Incarnation && y.Status > x.Status) {
		out = y
	}
	if x.Settled > out.Settled {
		out.Settled = x.Settled
	}
	if y.Settled > out.Settled {
		out.Settled = y.Settled
	}
	return out
}

// ---- wire form ------------------------------------------------------------
//
// The view codec lives here, not in the transport: OpGossip frames carry
// the encoded view as an opaque payload, so the wire layer needs no
// knowledge of membership and alternative transports inherit the format.

const viewWireVersion = 1

// Encode serializes the view.
func (v *ClusterView) Encode() []byte {
	n := 1 + 8 + 2 + 2 + 2
	for _, m := range v.Members {
		n += 8 + 8 + 8 + 1 + 2 + len(m.Addr)
	}
	b := make([]byte, 0, n)
	b = append(b, viewWireVersion)
	b = binary.BigEndian.AppendUint64(b, v.Epoch)
	b = binary.BigEndian.AppendUint16(b, uint16(v.R))
	b = binary.BigEndian.AppendUint16(b, uint16(v.VNodes))
	b = binary.BigEndian.AppendUint16(b, uint16(len(v.Members)))
	for _, m := range v.Members {
		b = binary.BigEndian.AppendUint64(b, uint64(int64(m.ID)))
		b = binary.BigEndian.AppendUint64(b, m.Incarnation)
		b = binary.BigEndian.AppendUint64(b, m.Settled)
		b = append(b, byte(m.Status))
		b = binary.BigEndian.AppendUint16(b, uint16(len(m.Addr)))
		b = append(b, m.Addr...)
	}
	return b
}

// DecodeView parses an encoded view.
func DecodeView(b []byte) (*ClusterView, error) {
	if len(b) < 15 {
		return nil, fmt.Errorf("cluster: view truncated (%d bytes)", len(b))
	}
	if b[0] != viewWireVersion {
		return nil, fmt.Errorf("cluster: unknown view version %d", b[0])
	}
	epoch := binary.BigEndian.Uint64(b[1:])
	r := int(binary.BigEndian.Uint16(b[9:]))
	vnodes := int(binary.BigEndian.Uint16(b[11:]))
	count := int(binary.BigEndian.Uint16(b[13:]))
	b = b[15:]
	rows := make([]MemberInfo, 0, count)
	for k := 0; k < count; k++ {
		if len(b) < 27 {
			return nil, fmt.Errorf("cluster: view row %d truncated", k)
		}
		m := MemberInfo{
			ID:          int(int64(binary.BigEndian.Uint64(b))),
			Incarnation: binary.BigEndian.Uint64(b[8:]),
			Settled:     binary.BigEndian.Uint64(b[16:]),
			Status:      MemberStatus(b[24]),
		}
		alen := int(binary.BigEndian.Uint16(b[25:]))
		if len(b) < 27+alen {
			return nil, fmt.Errorf("cluster: view row %d address truncated", k)
		}
		m.Addr = string(b[27 : 27+alen])
		b = b[27+alen:]
		rows = append(rows, m)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after view", len(b))
	}
	return newView(epoch, r, vnodes, rows), nil
}
