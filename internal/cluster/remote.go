package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Remote is the coordinator-side contract for a shard that lives in
// another process, reached over some transport (internal/transport's
// pipelined TCP client implements it). The methods mirror the member
// operations; where the in-process path touches the engine directly,
// a Remote pays a network round trip instead. Implementations must be
// safe for concurrent use — the coordinator pipelines sub-batches from
// many clients onto one Remote.
type Remote interface {
	// Ping is the liveness probe: nil means the remote answered the
	// health opcode. Implementations should fail fast (bounded by a
	// probe timeout well under the data-path timeout) so a prober
	// sweeping dead members does not stall.
	Ping() error
	// Get serves a point read from the remote shard.
	Get(key []byte) ([]byte, bool, error)
	// Put and Delete apply single unqueued writes (replica mirroring and
	// rebalance traffic).
	Put(key, value []byte) error
	Delete(key []byte) error
	// Scan returns up to limit entries with key >= start from a
	// consistent snapshot of the remote shard.
	Scan(start []byte, limit int) ([]engine.Entry, error)
	// Apply executes a batch with backpressure; TryApply under admission
	// control — a shed batch surfaces ErrOverload, possibly alongside
	// the results of the accepted portion.
	Apply(ops []Op) ([]OpResult, error)
	TryApply(ops []Op) ([]OpResult, error)
	// Stats snapshots the remote server's cluster-wide counters.
	Stats() (Stats, error)
	// Close releases the proxy's resources (the remote server survives).
	Close() error
}

// tracedRemote is the optional trace-propagating extension of Remote.
// A transport that can carry a trace id in its frames (transport.Client
// does) implements it; the coordinator type-asserts once per member and
// uses the traced calls for any op with a nonzero Op.Trace. Keeping it
// a capability rather than widening Remote means existing Remote fakes
// and alternative transports stay valid — they just don't propagate
// traces.
type tracedRemote interface {
	GetTraced(trace, parent uint64, key []byte) ([]byte, bool, error)
	PutTraced(trace, parent uint64, key, value []byte) error
	DeleteTraced(trace, parent uint64, key []byte) error
	ApplyTraced(trace, parent uint64, ops []Op) ([]OpResult, error)
	TryApplyTraced(trace, parent uint64, ops []Op) ([]OpResult, error)
}

// gossipRemote is the optional membership extension of Remote: one
// anti-entropy exchange — send our encoded view, receive the peer's
// merged view (nil when already in sync). transport.Client implements it
// with OpGossip frames.
type gossipRemote interface {
	Gossip(view []byte) ([]byte, error)
}

// epochStamper is the optional epoch-fencing extension of Remote: stamp
// every subsequent routed data-plane request with the given view epoch
// so the peer's server can bounce calls planned under a disagreeing
// ring (RespView + ErrWrongEpoch) before admitting them. Member-to-
// member forwards MUST be stamped: during an epoch transition two
// members briefly hold different rings, and an unfenced routed write
// re-forwarded by each side's own ring ping-pongs between them — every
// hop pinning an admission token and a topology read lock until both
// token pools drain and the read loops park. transport.Client
// implements it (SetEpoch).
type epochStamper interface {
	SetEpoch(epoch uint64)
}

// localRemote is the optional store-only extension of Remote: operate on
// the peer's own shard with no ring routing or replica fan-out on the
// far side. ApplyLocal carries replica mirrors between elastic members
// (a routed Put would re-replicate server-side, amplifying every mirror
// into a storm) and migration copies (epoch carries the view they were
// planned under; the receiver refuses mismatches with ErrWrongEpoch).
// GetLocal is the read twin: a fallback read has already resolved
// ownership on this side, and letting the peer re-route by its own —
// possibly disagreeing — ring builds forwarding cycles during membership
// changes. transport.Client implements both with OpMirror / OpGetLocal
// frames.
type localRemote interface {
	ApplyLocal(op Op, migration bool, epoch uint64) error
	GetLocal(key []byte) ([]byte, bool, error)
}

// AddRemote joins a remote shard to the ring and migrates exactly the
// entries whose owner set changed, like AddNode does for a local shard.
// It returns the ring id the coordinator assigned. The remote server is
// treated as one member regardless of how many cluster nodes it hosts
// internally. A non-nil error with a valid id reports an incomplete
// migration (see migrateLocked).
func (c *Cluster) AddRemote(r Remote) (int, MoveReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return -1, MoveReport{}, ErrClosed
	}
	if c.elastic() {
		return -1, MoveReport{}, errNotStatic
	}
	id := c.nextID
	c.nextID++
	old := c.ring.Clone()
	rm := &remoteMember{id: id, r: r, spans: c.spans}
	rm.tr, _ = r.(tracedRemote)
	rm.gr, _ = r.(gossipRemote)
	rm.lr, _ = r.(localRemote)
	ms := newMemberState(rm, c.cfg.ProbeFailures, c.cfg.HintLimit)
	ms.spans = c.spans
	ms.events = c.events
	c.nodes[id] = ms
	c.ring.Add(id)
	c.rebuildStaticViewLocked()
	// The first remote member starts the background health prober:
	// local nodes cannot fail, remote ones now can.
	c.startProberLocked()
	report, err := c.migrateLocked(old)
	return id, report, err
}

// remoteMember adapts a Remote to the member interface. Sub-batches
// complete asynchronously: submit launches the RPC in its own goroutine
// so batches bound for distinct members pipeline instead of serializing
// on round trips, and the enqueue path never blocks on the network.
type remoteMember struct {
	id int
	r  Remote
	tr tracedRemote // non-nil when r can carry trace ids
	gr gossipRemote // non-nil when r can exchange membership views
	lr localRemote  // non-nil when r can apply store-only writes
	es epochStamper // non-nil when r can stamp requests with a view epoch
	// localMirror marks members dialed through the elastic view: their
	// replica mirrors and hint replays travel as store-only applies
	// (ApplyLocal) instead of routed writes, because the peer is itself a
	// replicating coordinator and a routed write would fan out again.
	localMirror bool
	// spans, when non-nil, receives a "cluster/write" span for every
	// traced replicated write this proxy leads, splitting the hop into
	// exec (primary RPC) and replicate (mirror fan-out) phases.
	spans *obs.SpanLog

	// wmu serializes replicated writes through this proxy, mirroring
	// Node.wmu: every write for a key flows through its primary's proxy,
	// so holding wmu across the primary RPC and the replica mirroring
	// keeps replicas byte-identical to the primary.
	wmu sync.Mutex

	// transportErrs counts every RPC failure this proxy observed. The
	// void paths (directGet misses, dropped mirrors) have nothing else
	// to report through; the counter surfaces in the member's
	// NodeStats.TransportErrs so silent misses are at least visible.
	transportErrs atomic.Uint64
}

func (m *remoteMember) memberID() int { return m.id }

// setEpoch restamps the peer connection with a newly committed view
// epoch (no-op for transports without the capability).
func (m *remoteMember) setEpoch(epoch uint64) {
	if m.es != nil {
		m.es.SetEpoch(epoch)
	}
}

func (m *remoteMember) ping() error { return m.r.Ping() }

func (m *remoteMember) directGet(key []byte) ([]byte, bool, error) {
	var (
		v   []byte
		ok  bool
		err error
	)
	if m.localMirror && m.lr != nil {
		// Elastic peers answer from their own store: this side already
		// resolved ownership, and a routed Get would re-resolve at the
		// peer — whose ring can disagree mid-membership-change, bouncing
		// the read back here in a cycle.
		v, ok, err = m.lr.GetLocal(key)
	} else {
		v, ok, err = m.r.Get(key)
	}
	if err != nil {
		if isTransportErr(err) {
			m.transportErrs.Add(1)
		}
		return nil, false, err
	}
	return v, ok, nil
}

func (m *remoteMember) directPut(key, value []byte) error {
	if m.localMirror && m.lr != nil {
		// Hint replays and rebalance copies to an elastic peer must not
		// re-replicate there; land them store-only.
		return m.applyLocal(Op{Kind: OpPut, Key: key, Value: value}, false, 0)
	}
	err := m.r.Put(key, value)
	if isTransportErr(err) {
		m.transportErrs.Add(1)
	}
	return err
}

func (m *remoteMember) directDelete(key []byte) error {
	if m.localMirror && m.lr != nil {
		return m.applyLocal(Op{Kind: OpDelete, Key: key}, false, 0)
	}
	err := m.r.Delete(key)
	if isTransportErr(err) {
		m.transportErrs.Add(1)
	}
	return err
}

// applyLocal sends one store-only write (see localRemote).
func (m *remoteMember) applyLocal(op Op, migration bool, epoch uint64) error {
	if m.lr == nil {
		// Non-elastic transports fall back to routed single writes — the
		// legacy coordinator owns the only ring, so no re-replication.
		switch op.Kind {
		case OpPut:
			return m.directPut(op.Key, op.Value)
		case OpDelete:
			return m.directDelete(op.Key)
		}
		return nil
	}
	err := m.lr.ApplyLocal(op, migration, epoch)
	if isTransportErr(err) {
		m.transportErrs.Add(1)
	}
	return err
}

// mirrorWrite reports a failed replica write (also counted in
// TransportErrs) so the coordinator's health layer can buffer it as
// hinted handoff instead of losing the copy. An op carrying a trace id
// rides a traced frame when the transport supports it, so the replica
// hop shows up in the remote's span log under the same trace.
func (m *remoteMember) mirrorWrite(op Op) error {
	if m.localMirror && m.lr != nil {
		return m.applyLocal(op, false, 0)
	}
	if op.Trace != 0 && m.tr != nil {
		var err error
		switch op.Kind {
		case OpPut:
			err = m.tr.PutTraced(op.Trace, op.Parent, op.Key, op.Value)
		case OpDelete:
			err = m.tr.DeleteTraced(op.Trace, op.Parent, op.Key)
		default:
			return nil
		}
		if isTransportErr(err) {
			m.transportErrs.Add(1)
		}
		return err
	}
	switch op.Kind {
	case OpPut:
		return m.directPut(op.Key, op.Value)
	case OpDelete:
		return m.directDelete(op.Key)
	}
	return nil
}

func (m *remoteMember) directWrite(op Op, replicas []mirror) (OpResult, error) {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	span, traced := m.beginWriteSpan(&op)
	if err := m.mirrorWrite(op); err != nil {
		// The primary apply itself failed: report it rather than mirror
		// a write that landed nowhere.
		if traced {
			span.Dur = time.Since(span.Start)
			span.Err = err.Error()
			m.spans.Record(span)
		}
		return OpResult{}, err
	}
	var primaryDone time.Time
	if traced {
		primaryDone = time.Now()
	}
	for _, rep := range replicas {
		_ = rep.mirrorWrite(op)
	}
	if traced {
		m.endWriteSpan(span, primaryDone)
	}
	return OpResult{}, nil
}

// beginWriteSpan opens the cluster-layer span for one traced replicated
// write and re-parents op in place, so the primary RPC and every mirror
// leg (and through the wire frames, the spans the remote servers record)
// hang off this hop rather than its caller.
func (m *remoteMember) beginWriteSpan(op *Op) (obs.Span, bool) {
	if op.Trace == 0 || m.spans == nil {
		return obs.Span{}, false
	}
	span := obs.Span{
		Trace: op.Trace, ID: obs.NewSpanID(), Parent: op.Parent,
		Name: "cluster/write", Start: time.Now(),
		Bytes: len(op.Key) + len(op.Value),
	}
	op.Parent = span.ID
	return span, true
}

// endWriteSpan closes a beginWriteSpan span, splitting its duration into
// the primary-apply (exec) and mirror fan-out (replicate) phases.
func (m *remoteMember) endWriteSpan(span obs.Span, primaryDone time.Time) {
	span.Dur = time.Since(span.Start)
	exec := primaryDone.Sub(span.Start)
	span.Phases = []obs.Phase{
		{Name: "exec", Dur: exec},
		{Name: "replicate", Dur: span.Dur - exec},
	}
	m.spans.Record(span)
}

func (m *remoteMember) snapshotScan(dst []engine.Entry, start []byte, limit int) ([]engine.Entry, error) {
	entries, err := m.r.Scan(start, limit)
	if err != nil {
		if isTransportErr(err) {
			m.transportErrs.Add(1)
		}
		return nil, err
	}
	if dst == nil {
		return entries, nil
	}
	return append(dst, entries...), nil
}

func (m *remoteMember) submit(req *request) error {
	return m.dispatch(req, false)
}

func (m *remoteMember) trySubmit(req *request) error {
	return m.dispatch(req, true)
}

// applyRPC runs one sub-batch RPC, using the traced call when the run
// carries a trace id and the transport can forward it. The first
// nonzero trace in the run wins — the planner never mixes traces within
// one caller's batch, so in practice a run is all one trace or none.
func (m *remoteMember) applyRPC(ops []Op, try bool) ([]OpResult, error) {
	if m.tr != nil {
		if t, p := opsTrace(ops); t != 0 {
			if try {
				return m.tr.TryApplyTraced(t, p, ops)
			}
			return m.tr.ApplyTraced(t, p, ops)
		}
	}
	if try {
		return m.r.TryApply(ops)
	}
	return m.r.Apply(ops)
}

// opsTrace returns the first nonzero trace id in ops and the parent
// span it descends from (both zero when the run is untraced).
func opsTrace(ops []Op) (trace, parent uint64) {
	for i := range ops {
		if ops[i].Trace != 0 {
			return ops[i].Trace, ops[i].Parent
		}
	}
	return 0, 0
}

// isTransportErr reports whether err is a transport-level failure, as
// opposed to the remote executing fine and answering with one of the
// cluster's own sentinels (a shed TryApply is admission control working,
// a refused stale-epoch request is the membership protocol working —
// neither is a broken wire).
func isTransportErr(err error) bool {
	return err != nil && !errors.Is(err, ErrOverload) && !errors.Is(err, ErrClosed) &&
		!errors.Is(err, ErrWrongEpoch)
}

// dispatch completes one sub-batch against the remote: RPC, positional
// result fill, then replica mirroring. Replica-free batches travel as
// one RPC. Ops carrying replicas go one RPC each, because mirroring
// must track exactly what the primary applied: a batch that partially
// fails (a shed TryApply, a broken wire) gives the proxy no per-op
// outcome, and mirroring on guesswork diverges the replica set either
// way. Per-op RPCs make success explicit — applied ops mirror, failed
// ops don't, and the R-copy invariant holds under routine overload.
func (m *remoteMember) dispatch(req *request, try bool) error {
	// A method-valued goroutine start copies its arguments to the new
	// stack without a closure allocation — this path runs per sub-batch.
	go m.run(req, try)
	return nil
}

// run completes one dispatched sub-batch; see dispatch. The deferred
// Done is the last touch on req — it may be recycled the instant the
// coordinator's Wait unblocks.
func (m *remoteMember) run(req *request, try bool) {
	defer req.done.Done()
	hasReplicas := false
	for _, reps := range req.replicas {
		if len(reps) > 0 {
			hasReplicas = true
			break
		}
	}
	if !hasReplicas {
		res, err := m.applyRPC(req.ops, try)
		m.fill(req, 0, len(req.ops), res, err)
		return
	}
	m.wmu.Lock()
	defer m.wmu.Unlock()
	i := 0
	for i < len(req.ops) {
		if len(req.replicas[i]) == 0 {
			// Coalesce the replica-free run into one RPC.
			j := i + 1
			for j < len(req.ops) && len(req.replicas[j]) == 0 {
				j++
			}
			res, err := m.applyRPC(req.ops[i:j], try)
			m.fill(req, i, j, res, err)
			i = j
			continue
		}
		span, traced := m.beginWriteSpan(&req.ops[i])
		res, err := m.applyRPC(req.ops[i:i+1], try)
		m.fill(req, i, i+1, res, err)
		var primaryDone time.Time
		if traced {
			primaryDone = time.Now()
		}
		if err == nil {
			for _, rep := range req.replicas[i] {
				_ = rep.mirrorWrite(req.ops[i])
			}
		}
		if traced {
			if err != nil {
				span.Err = err.Error()
			}
			m.endWriteSpan(span, primaryDone)
		}
		i++
	}
}

// fill lands one RPC's outcome: positional results plus any failure.
func (m *remoteMember) fill(req *request, lo, hi int, res []OpResult, err error) {
	if err != nil {
		if isTransportErr(err) {
			m.transportErrs.Add(1)
		}
		req.fail(err)
	}
	if req.results != nil {
		// A shed batch may return fewer results than ops; a buggy
		// remote could return more. Fill only the overlap.
		for i := 0; i < len(res) && lo+i < hi; i++ {
			req.results[req.idx[lo+i]] = res[i]
		}
	}
}

// stats folds the remote server's per-node counters into one member
// snapshot: from the coordinator's seat a remote server is one shard,
// however many nodes it hosts.
func (m *remoteMember) stats() NodeStats {
	st, err := m.r.Stats()
	if err != nil {
		if isTransportErr(err) {
			m.transportErrs.Add(1)
		}
		return NodeStats{ID: m.id, TransportErrs: m.transportErrs.Load()}
	}
	ns := NodeStats{
		ID:            m.id,
		Accepted:      st.Accepted,
		Rejected:      st.Rejected,
		Batches:       st.Batches,
		Ops:           st.Ops,
		TransportErrs: m.transportErrs.Load(),
	}
	for _, sub := range st.Nodes {
		addEngineStats(&ns.Store, sub.Store)
		ns.TransportErrs += sub.TransportErrs
	}
	return ns
}

// addEngineStats accumulates src's counters into dst.
func addEngineStats(dst *engine.Stats, src engine.Stats) {
	dst.Puts += src.Puts
	dst.Gets += src.Gets
	dst.Deletes += src.Deletes
	dst.Scans += src.Scans
	dst.ScannedEntries += src.ScannedEntries
	dst.Flushes += src.Flushes
	dst.Compactions += src.Compactions
	dst.BloomNegative += src.BloomNegative
	dst.RunsProbed += src.RunsProbed
	dst.WALBytes += src.WALBytes
	dst.BlockCacheHits += src.BlockCacheHits
	dst.BlockCacheMisses += src.BlockCacheMisses
}

func (m *remoteMember) close() {
	_ = m.r.Close()
}
