package cluster

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
)

func eventKinds(log *obs.EventLog) map[obs.EventKind]int {
	out := map[obs.EventKind]int{}
	for _, e := range log.Events() {
		out[e.Kind]++
	}
	return out
}

// TestClusterLifecycleEvents drives a full outage cycle — failovers,
// hint buffering past the bound, recovery with replay — and asserts the
// event log tells that story without flooding: per-request emit sites
// (failover, hint drop) log once per down episode, and the replay event
// carries the drained count.
func TestClusterLifecycleEvents(t *testing.T) {
	log := obs.NewEventLog(64)
	c := New(Config{
		Shards:        1,
		Replication:   2,
		ProbeInterval: -1,
		ProbeFailures: 2,
		HintLimit:     4,
		Events:        log,
		Engine:        engine.Options{MemtableBytes: 32 << 10},
	})
	defer c.Close()
	rem := newChaosRemote()
	id, _, err := c.AddRemote(rem)
	if err != nil {
		t.Fatal(err)
	}
	keys := remoteKeys(c, id, 10)
	if len(keys) < 10 {
		t.Fatal("no keys with a remote primary found")
	}
	for _, k := range keys {
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if n := log.Total(); n != 0 {
		t.Fatalf("healthy cluster recorded %d events, want none", n)
	}

	rem.down.Store(true)
	markDown(t, c, id, 2)
	for _, k := range keys {
		if err := c.Put(k, append([]byte("f-"), k...)); err != nil {
			t.Fatal(err)
		}
	}
	kinds := eventKinds(log)
	// Ten failed-over writes and six over-bound hints, but one event
	// each: the per-episode throttle keeps the ring for transitions.
	if kinds[obs.EventFailover] != 1 {
		t.Fatalf("failover events = %d, want exactly 1 for the episode", kinds[obs.EventFailover])
	}
	if kinds[obs.EventHintDrop] != 1 {
		t.Fatalf("hint-drop events = %d, want exactly 1 for the episode", kinds[obs.EventHintDrop])
	}

	rem.down.Store(false)
	c.Probe()
	if c.MemberDown(id) {
		t.Fatal("member still down after recovery probe")
	}
	kinds = eventKinds(log)
	if kinds[obs.EventHintReplay] != 1 {
		t.Fatalf("hint-replay events = %d, want 1", kinds[obs.EventHintReplay])
	}
	var replay obs.Event
	for _, e := range log.Events() {
		if e.Kind == obs.EventHintReplay {
			replay = e
		}
	}
	if !strings.Contains(replay.Detail, "replayed 4") {
		t.Fatalf("replay detail = %q, want the drained count (HintLimit=4)", replay.Detail)
	}

	// A second outage is a new episode: the throttles re-armed.
	rem.down.Store(true)
	markDown(t, c, id, 2)
	if err := c.Put(keys[0], []byte("again")); err != nil {
		t.Fatal(err)
	}
	if kinds = eventKinds(log); kinds[obs.EventFailover] != 2 {
		t.Fatalf("failover events after second outage = %d, want 2", kinds[obs.EventFailover])
	}
}
