package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file moves data when ownership moves. Every epoch bump (a member
// joined, left, or was declared dead) changes which members own which
// keyranges; the migrator is the background loop that makes storage
// catch up with the view, throttled so live traffic keeps its latency.
//
// The protocol, per member, per unsettled epoch:
//
//  1. Copy pass. Snapshot-scan the local engine (so the source is
//     internally consistent even under live writes) and, for every key
//     this member is the responsible pusher for — the first old owner
//     under the last settled view that is still eligible — push a copy
//     to each owner the key gained under the current view, paced to
//     Config.MigrateRate bytes/s. Copies travel as OpMirror(migration)
//     frames and land with store-only semantics: no replica fan-out, and
//     never over a key the destination wrote after the epoch began (the
//     dirty-guard below).
//  2. Redrive. Keys written live while the pass ran are re-pushed from
//     their current engine value — a write that raced the snapshot may
//     have been coordinated by a member still routing under the old
//     view, so its mirrors missed the new owner.
//  3. Settle. Publish our row's Settled = epoch watermark and gossip it.
//     When every live row settles, the epoch is done cluster-wide:
//     lastSettled advances, read fallbacks stop, guards come off.
//  4. Drop pass. Only after the cluster settles, delete keyranges this
//     member no longer owns. Dropping earlier would destroy the copies
//     the read fallback still depends on.
//
// Writes racing a moving keyrange are protected by the dirty-guard: an
// armed guard marks every locally written key, and a migration copy for
// a marked key is skipped while holding the guard lock — so "copy then
// newer write" and "newer write then copy" both leave the newer value.

// migrationGuard shadows migration copies with live writes for one
// epoch. mark and the copy-side check serialize on mu: a live write
// marks its key before applying, a migration copy applies while holding
// mu only if the key is unmarked — every interleaving leaves the live
// write's value on top.
type migrationGuard struct {
	epoch uint64
	mu    sync.Mutex
	dirty map[string]struct{}
	// pending queues marked keys for the redrive step (dirty stays
	// intact afterwards — it must keep shadowing stale copies).
	pending []string
}

func newMigrationGuard(epoch uint64) *migrationGuard {
	return &migrationGuard{epoch: epoch, dirty: map[string]struct{}{}}
}

// mark records a live write. Called on every local write while the
// guard is armed.
func (g *migrationGuard) mark(key []byte) {
	g.mu.Lock()
	k := string(key)
	g.dirty[k] = struct{}{}
	g.pending = append(g.pending, k)
	g.mu.Unlock()
}

// takePending swaps out the redrive queue.
func (g *migrationGuard) takePending() []string {
	g.mu.Lock()
	p := g.pending
	g.pending = nil
	g.mu.Unlock()
	return p
}

// startMigratorLocked launches the background migration loop once.
// Caller holds mu.
func (c *Cluster) startMigratorLocked() {
	if c.migStop != nil || c.selfID < 0 {
		return
	}
	c.migStop = make(chan struct{})
	c.migKick = make(chan struct{}, 1)
	c.migDone = make(chan struct{})
	go c.migratorLoop(c.migStop, c.migKick, c.migDone)
}

func (c *Cluster) migratorLoop(stop, kick <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-kick:
		case <-t.C:
		}
		c.migrateStep()
	}
}

// migrateStep advances this member's migration state machine one move:
// run the copy pass if our watermark trails the epoch, redrive raced
// writes while the epoch is still settling elsewhere, or run the drop
// pass once the whole cluster has settled.
func (c *Cluster) migrateStep() {
	c.mu.RLock()
	if c.closed || c.view == nil {
		c.mu.RUnlock()
		return
	}
	v, base := c.view, c.lastSettled
	drops := c.dropsDone
	c.mu.RUnlock()
	row, ok := v.Member(c.selfID)
	node := c.localNode()
	if !ok || node == nil {
		return
	}
	switch {
	case row.Settled < v.Epoch:
		if c.migStartEpoch.Load() < v.Epoch {
			// Once per epoch, not per retry: an aborted pass re-enters
			// here on the next tick.
			c.migStartEpoch.Store(v.Epoch)
			c.events.Record(obs.Event{
				Kind: obs.EventMigrationStart, Epoch: v.Epoch,
				Detail: fmt.Sprintf("copy pass toward epoch %d began", v.Epoch),
			})
		}
		if !c.copyPass(v, base, node) {
			return // aborted (epoch moved, peer unreachable): retry next tick
		}
		c.redrive(v, node)
		c.settleSelf(v.Epoch)
		c.gossipNow() // move the watermark without waiting a sweep
	case !v.AllSettled():
		// Our pass is done but peers are still settling: keep redriving
		// writes coordinated by members that still route on the old view.
		c.redrive(v, node)
	case drops < v.Epoch && row.Status != StatusLeaving && row.Status != StatusLeft:
		c.dropPass(v, node)
	}
}

// localNode is localNodeLocked behind the read lock.
func (c *Cluster) localNode() *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.localNodeLocked()
}

// memberFor resolves a view member id to its dialed wrapper (nil while
// undialed).
func (c *Cluster) memberFor(id int) *memberState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[id]
}

func (c *Cluster) isClosed() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.closed
}

// responsiblePusher reports whether this member must push the key: it is
// the first owner under the old (base) ownership that is still eligible
// to push — self, or any peer the current view does not rule out
// (Down and Left members cannot push; their share falls to the next old
// owner). Deterministic, so each key is pushed by exactly one live
// member.
func (c *Cluster) responsiblePusher(v *ClusterView, oldOwners []int) bool {
	for _, id := range oldOwners {
		if id == c.selfID {
			return true
		}
		if row, ok := v.Member(id); ok && (row.Status <= StatusSuspect || row.Status == StatusLeaving) {
			return false // a live earlier owner pushes instead
		}
	}
	return false
}

// copyPass pushes every key this member is responsible for to the owners
// it gained under v, paced to Config.MigrateRate. Returns false when the
// pass aborted — the epoch moved under it, a destination is not dialed
// yet, or a push failed — in which case the next tick retries from the
// top (pushes are idempotent PUT copies, so re-covering ground is safe).
func (c *Cluster) copyPass(v, base *ClusterView, node *Node) bool {
	r := v.R
	if r <= 0 {
		r = 1
	}
	oldRing := base.Ring()
	newRing := v.Ring()
	rate := c.cfg.MigrateRate
	var sent int
	start := time.Now()
	var cursor []byte
	for {
		if c.isClosed() || c.epoch.Load() != v.Epoch {
			return false
		}
		entries, err := node.snapshotScan(nil, cursor, 256)
		if err != nil || len(entries) == 0 {
			return err == nil
		}
		for i := range entries {
			e := &entries[i]
			oldOwners := oldRing.Owners(e.Key, r)
			if !c.responsiblePusher(v, oldOwners) {
				continue
			}
			for _, id := range newRing.Owners(e.Key, r) {
				if id == c.selfID || containsID(oldOwners, id) {
					continue // the destination already holds a settled copy
				}
				tgt := c.memberFor(id)
				if tgt == nil {
					return false // not dialed yet: retry after ensureMembers
				}
				if err := tgt.applyLocal(Op{Kind: OpPut, Key: e.Key, Value: e.Value}, true, v.Epoch); err != nil {
					return false
				}
				c.migKeys.Add(1)
				n := len(e.Key) + len(e.Value)
				c.migBytes.Add(uint64(n))
				sent += n
			}
			if rate > 0 && sent > 0 {
				// Throttle: sleep off any debt against the byte budget so
				// migration never outruns MigrateRate for long.
				if ahead := time.Duration(sent)*time.Second/time.Duration(rate) - time.Since(start); ahead > 0 {
					time.Sleep(ahead)
				}
			}
		}
		cursor = append(cursor[:0], entries[len(entries)-1].Key...)
		cursor = append(cursor, 0) // strictly after the last scanned key
	}
}

// redrive re-pushes keys written live since the copy pass's snapshot:
// their writes may have been coordinated under a stale view whose mirror
// set missed the key's new owners. The current engine value (or its
// absence, for deletes) is pushed to every current owner; destinations
// that saw a newer write skip it via their own guard.
func (c *Cluster) redrive(v *ClusterView, node *Node) {
	g := node.guard.Load()
	if g == nil || g.epoch != v.Epoch {
		return
	}
	keys := g.takePending()
	if len(keys) == 0 {
		return
	}
	r := v.R
	if r <= 0 {
		r = 1
	}
	ring := v.Ring()
	var requeue []string
	for _, k := range keys {
		key := []byte(k)
		op := Op{Kind: OpDelete, Key: key}
		if val, ok, err := node.directGet(key); err != nil {
			continue
		} else if ok {
			op = Op{Kind: OpPut, Key: key, Value: val}
		}
		for _, id := range ring.Owners(key, r) {
			if id == c.selfID {
				continue
			}
			tgt := c.memberFor(id)
			if tgt == nil {
				requeue = append(requeue, k)
				break
			}
			if err := tgt.applyLocal(op, true, v.Epoch); err != nil {
				requeue = append(requeue, k)
				break
			}
			c.migKeys.Add(1)
			c.migBytes.Add(uint64(len(op.Key) + len(op.Value)))
		}
	}
	if len(requeue) > 0 {
		g.mu.Lock()
		g.pending = append(g.pending, requeue...)
		g.mu.Unlock()
	}
}

// settleSelf publishes our Settled watermark for the epoch. If the view
// moved on while the pass ran, the commit guard in migrateStep already
// re-ran us; publishing a stale watermark is harmless (max-merge).
func (c *Cluster) settleSelf(epoch uint64) {
	c.mu.Lock()
	if c.closed || c.view == nil || c.view.Epoch != epoch {
		c.mu.Unlock()
		return
	}
	row, ok := c.view.Member(c.selfID)
	if !ok || row.Settled >= epoch {
		c.mu.Unlock()
		return
	}
	row.Settled = epoch
	c.events.Record(obs.Event{
		Kind: obs.EventMigrationEnd, Epoch: epoch,
		Detail: fmt.Sprintf("epoch %d settled locally: migrated copies durable", epoch),
	})
	c.commitViewLocked(c.view.withRow(row))
	v := c.view
	cb := c.cfg.OnViewChange
	c.mu.Unlock()
	if cb != nil {
		cb(v)
	}
}

// dropPass deletes keys this member no longer owns under v. It runs only
// after the whole cluster settled the epoch — every gained owner holds
// its copy, so the local one is surplus.
func (c *Cluster) dropPass(v *ClusterView, node *Node) {
	r := v.R
	if r <= 0 {
		r = 1
	}
	ring := v.Ring()
	var cursor []byte
	for {
		if c.isClosed() || c.epoch.Load() != v.Epoch {
			return
		}
		entries, err := node.snapshotScan(nil, cursor, 256)
		if err != nil {
			return
		}
		if len(entries) == 0 {
			break
		}
		for i := range entries {
			e := &entries[i]
			if !containsID(ring.Owners(e.Key, r), c.selfID) {
				if err := node.directDelete(e.Key); err == nil {
					c.migDropped.Add(1)
				}
			}
		}
		cursor = append(cursor[:0], entries[len(entries)-1].Key...)
		cursor = append(cursor, 0)
	}
	c.mu.Lock()
	if c.view != nil && c.view.Epoch == v.Epoch && c.dropsDone < v.Epoch {
		c.dropsDone = v.Epoch
	}
	c.mu.Unlock()
}

func containsID(ids []int, id int) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
