// Elastic-membership integration tests: real transport servers on
// loopback TCP, real gossip, real migration. They live in package
// cluster_test so they can drive the stack through internal/transport
// (which imports cluster) exactly the way bdserve and bdbench do.
package cluster_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// probeInterval is deliberately short: convergence bounds below are
// expressed in probe rounds, and short rounds keep the wall-clock bound
// tight enough for CI.
const probeInterval = 10 * time.Millisecond

// elasticMember is one in-process "bdserve": an elastic cluster node
// plus the transport server exposing it.
type elasticMember struct {
	addr string
	cl   *cluster.Cluster
	srv  *transport.Server
}

func startElasticMember(t *testing.T, repl int, seeds ...string) *elasticMember {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var cl *cluster.Cluster
	cl = cluster.New(cluster.Config{
		Shards: 1, Replication: repl,
		SelfAddr:         ln.Addr().String(),
		ProbeInterval:    probeInterval,
		ProbeFailures:    2,
		DeclareDeadAfter: 5,
		MigrateRate:      64 << 20,
		Dial: func(addr string) (cluster.Remote, error) {
			return transport.Connect(addr, transport.ClientOptions{
				Timeout:     2 * time.Second,
				DialTimeout: 250 * time.Millisecond,
				PingTimeout: 250 * time.Millisecond,
				OnView: func(view []byte) {
					if cl != nil {
						_ = cl.AdoptEncodedView(view)
					}
				},
			})
		},
	})
	srv := transport.Serve(ln, cl, transport.ServerOptions{})
	m := &elasticMember{addr: ln.Addr().String(), cl: cl, srv: srv}
	if len(seeds) > 0 {
		if err := cl.Join(seeds...); err != nil {
			srv.Close()
			cl.Close()
			t.Fatalf("join %v: %v", seeds, err)
		}
	}
	return m
}

// stop tears the member down gracefully (leave first) or abruptly
// (SIGKILL analog: the server vanishes mid-conversation, peers find out
// from the failure detector).
func (m *elasticMember) stop(graceful bool) {
	if graceful {
		_ = m.cl.Leave(5 * time.Second)
	}
	m.srv.Close()
	m.cl.Close()
}

// waitConverged polls until every member reports the same epoch with
// migration settled everywhere, or the probe-round budget runs out.
func waitConverged(t *testing.T, rounds int, members []*elasticMember) uint64 {
	t.Helper()
	deadline := time.Now().Add(time.Duration(rounds) * probeInterval)
	for {
		epoch, digest := members[0].cl.ViewEpoch(), members[0].cl.View().Digest()
		agreed := members[0].cl.Settled()
		for _, m := range members[1:] {
			if m.cl.ViewEpoch() != epoch || m.cl.View().Digest() != digest || !m.cl.Settled() {
				agreed = false
				break
			}
		}
		if agreed {
			return epoch
		}
		if time.Now().After(deadline) {
			for i, m := range members {
				t.Logf("member %d (%s): epoch %d digest %x settled %v",
					i, m.addr, m.cl.ViewEpoch(), m.cl.View().Digest(), m.cl.Settled())
			}
			t.Fatalf("no convergence within %d probe rounds", rounds)
		}
		time.Sleep(probeInterval / 2)
	}
}

// TestGossipConvergenceProperty drives a random join/leave/crash
// schedule over a growing-and-shrinking membership and asserts the
// convergence property the design owes: after the last change, every
// live member reports the same epoch, the same view digest (hence the
// same ownership map), and settled migration within a bounded number of
// probe rounds.
func TestGossipConvergenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process-style convergence schedule")
	}
	rng := rand.New(rand.NewSource(1))
	seed := startElasticMember(t, 2)
	live := []*elasticMember{seed, startElasticMember(t, 2, seed.addr)}
	t.Cleanup(func() {
		for _, m := range live {
			m.stop(false)
		}
	})

	const events = 6
	for i := 0; i < events; i++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(live) <= 2:
			// Join through a random live seed.
			s := live[rng.Intn(len(live))]
			live = append(live, startElasticMember(t, 2, s.addr))
		case op == 1:
			// Graceful leave: drain, announce Left, shut down.
			i := rng.Intn(len(live))
			m := live[i]
			live = append(live[:i], live[i+1:]...)
			m.stop(true)
		default:
			// Crash: the process vanishes; the survivors' failure
			// detector must agree on Down, declare it Left, and heal.
			i := rng.Intn(len(live))
			m := live[i]
			live = append(live[:i], live[i+1:]...)
			m.stop(false)
		}
		time.Sleep(time.Duration(20+rng.Intn(40)) * time.Millisecond)
	}

	// Detection needs ProbeFailures sweeps to call a crashed member
	// down plus DeclareDeadAfter sweeps to declare it Left, then a few
	// rounds for dissemination and migration. 300 rounds (3s) bounds
	// the whole schedule's cleanup with a wide CI margin.
	epoch := waitConverged(t, 300, live)
	if epoch == 0 {
		t.Fatal("converged to epoch 0: no membership change was ever agreed")
	}
	if len(live) < 2 {
		t.Fatalf("schedule left %d members; want >= 2", len(live))
	}
}

// TestPartitionHeal builds two independent view islands (disjoint
// clusters that have never heard of each other), then bridges them with
// one gossip exchange and asserts both sides converge to a single view
// whose epoch is at least the max of the islands' — the anti-entropy
// merge can only move epochs forward.
func TestPartitionHeal(t *testing.T) {
	a1 := startElasticMember(t, 2)
	a2 := startElasticMember(t, 2, a1.addr)
	b1 := startElasticMember(t, 2)
	b2 := startElasticMember(t, 2, b1.addr)
	all := []*elasticMember{a1, a2, b1, b2}
	t.Cleanup(func() {
		for _, m := range all {
			m.stop(false)
		}
	})

	waitConverged(t, 200, []*elasticMember{a1, a2})
	waitConverged(t, 200, []*elasticMember{b1, b2})
	epochA, epochB := a1.cl.ViewEpoch(), b1.cl.ViewEpoch()

	// Heal the partition: one exchange across the gap is enough, the
	// probers disseminate the merged view from there.
	if err := a2.cl.Join(b1.addr); err != nil {
		t.Fatalf("bridge join: %v", err)
	}
	epoch := waitConverged(t, 300, all)
	if min := max(epochA, epochB); epoch < min {
		t.Fatalf("merged epoch %d went backwards (islands were at %d and %d)", epoch, epochA, epochB)
	}
	for _, m := range all {
		if len(m.cl.View().Members) != 4 {
			t.Fatalf("member %s: merged view has %d rows; want all 4", m.addr, len(m.cl.View().Members))
		}
	}
}

// TestScanAgreesWithConcurrentJoin is the regression test for the
// scan/migration epoch-agreement bug: a scatter-gather scan racing a
// join must retry on the new view rather than merge partials from two
// ownership maps into duplicates or gaps. Every scan that returns nil
// error must see exactly the preloaded key set, no matter how the
// membership moves underneath it.
func TestScanAgreesWithConcurrentJoin(t *testing.T) {
	m1 := startElasticMember(t, 2)
	m2 := startElasticMember(t, 2, m1.addr)
	members := []*elasticMember{m1, m2}
	t.Cleanup(func() {
		for _, m := range members {
			m.stop(false)
		}
	})
	waitConverged(t, 200, members)

	var coord *cluster.Cluster
	coord = cluster.New(cluster.Config{
		RouteOnly:     true,
		Replication:   2,
		ProbeInterval: probeInterval,
		ProbeFailures: 2,
		Dial: func(addr string) (cluster.Remote, error) {
			return transport.Connect(addr, transport.ClientOptions{
				Timeout:     2 * time.Second,
				DialTimeout: 250 * time.Millisecond,
				PingTimeout: 250 * time.Millisecond,
				OnView: func(view []byte) {
					if coord != nil {
						_ = coord.AdoptEncodedView(view)
					}
				},
			})
		},
	})
	t.Cleanup(coord.Close)
	if err := coord.Join(m1.addr); err != nil {
		t.Fatalf("coordinator join: %v", err)
	}

	const rows = 300
	ops := make([]cluster.Op, 0, 64)
	for lo := 0; lo < rows; lo += 64 {
		ops = ops[:0]
		for i := lo; i < lo+64 && i < rows; i++ {
			key := fmt.Sprintf("scan%04d", i)
			ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: []byte(key), Value: []byte("v-" + key)})
		}
		if _, err := coord.Apply(ops); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}

	// Join a third member mid-scan-loop: its arrival bumps the epoch
	// and starts moving keyranges the scans span.
	joined := make(chan *elasticMember, 1)
	go func() {
		time.Sleep(25 * time.Millisecond)
		joined <- startElasticMember(t, 2, m1.addr)
	}()

	deadline := time.Now().Add(5 * time.Second)
	scans, raced := 0, 0
	for {
		entries, err := coord.Scan(nil, rows*2)
		if err != nil {
			// The one error a racing membership change may surface is the
			// explicit retry-budget failure — never silent corruption.
			if errors.Is(err, cluster.ErrWrongEpoch) {
				raced++
				continue
			}
			t.Fatalf("scan %d: %v", scans, err)
		}
		if len(entries) != rows {
			t.Fatalf("scan %d: %d entries, want %d (duplicates or gaps mid-join)", scans, len(entries), rows)
		}
		for i, e := range entries {
			want := fmt.Sprintf("scan%04d", i)
			if string(e.Key) != want {
				t.Fatalf("scan %d entry %d: key %q, want %q", scans, i, e.Key, want)
			}
		}
		scans++
		select {
		case m := <-joined:
			members = append(members, m)
		default:
		}
		if len(members) == 3 && scans > 20 && allSettled(members) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("join never settled (scans %d, raced %d)", scans, raced)
		}
	}
	t.Logf("%d clean scans, %d raced retries exhausted", scans, raced)
}

func allSettled(members []*elasticMember) bool {
	for _, m := range members {
		if !m.cl.Settled() {
			return false
		}
	}
	return true
}
