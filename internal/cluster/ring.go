package cluster

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. The zero value is not
// usable; construct with NewRing. Ring itself is not synchronized — the
// Cluster guards it with the topology lock and hands out copies for
// planning.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	member map[int]bool
}

// ringPoint is one virtual node on the circle.
type ringPoint struct {
	hash uint64
	node int
}

// NewRing creates an empty ring placing vnodes virtual nodes per member
// (default 64 when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, member: map[int]bool{}}
}

// hashKey is FNV-1a 64, matching the store's Bloom hash family but kept
// separate so ring placement and filter bits stay uncorrelated.
func hashKey(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	// Final avalanche so short sequential keys spread over the circle.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Add places a member's virtual nodes on the circle. Adding an existing
// member is a no-op.
func (r *Ring) Add(node int) {
	if r.member[node] {
		return
	}
	r.member[node] = true
	for v := 0; v < r.vnodes; v++ {
		label := "node-" + strconv.Itoa(node) + "#" + strconv.Itoa(v)
		r.points = append(r.points, ringPoint{hash: hashKey([]byte(label)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a member's virtual nodes.
func (r *Ring) Remove(node int) {
	if !r.member[node] {
		return
	}
	delete(r.member, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.member) }

// Contains reports whether node is on the ring.
func (r *Ring) Contains(node int) bool { return r.member[node] }

// Members returns the member ids in ascending order.
func (r *Ring) Members() []int {
	out := make([]int, 0, len(r.member))
	for id := range r.member {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Primary returns the key's first owner, or -1 on an empty ring. It is
// allocation-free — the point-read hot path resolves routing with it.
func (r *Ring) Primary(key []byte) int {
	if len(r.points) == 0 {
		return -1
	}
	start := r.search(key)
	return r.points[start%len(r.points)].node
}

// search returns the index of the first ring point at or after the key's
// hash (may equal len(points), i.e. wrap).
func (r *Ring) search(key []byte) int {
	h := hashKey(key)
	return sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
}

// Owners returns the first n distinct members clockwise from the key's
// hash: the primary followed by its replica successors. Fewer than n are
// returned when the ring has fewer members. The result is freshly
// allocated, but dedup is a linear probe of the small result — R is a
// handful — so the per-op routing cost stays flat in vnode count.
func (r *Ring) Owners(key []byte, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	start := r.search(key)
	out := make([]int, 0, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		dup := false
		for _, o := range out {
			if o == p.node {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p.node)
		}
	}
	return out
}

// Clone returns an independent copy, used to plan membership changes
// before committing them.
func (r *Ring) Clone() *Ring {
	c := &Ring{vnodes: r.vnodes, member: make(map[int]bool, len(r.member))}
	c.points = append([]ringPoint(nil), r.points...)
	for id := range r.member {
		c.member[id] = true
	}
	return c
}
