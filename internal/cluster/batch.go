package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the request paths.
var (
	// ErrOverload reports that a node's bounded queue was full and the
	// batch was shed rather than enqueued (admission control).
	ErrOverload = errors.New("cluster: node queue full, request shed")
	// ErrClosed reports an operation against a closed cluster or node.
	ErrClosed = errors.New("cluster: closed")
	// ErrNoNodes reports an operation against an empty ring.
	ErrNoNodes = errors.New("cluster: no nodes")
	// ErrAllOwnersDown reports an operation on a key whose entire
	// replica set is marked down by the failure detector — there is no
	// live member to serve it, so the op fails explicitly instead of
	// silently dropping (writes) or missing (reads).
	ErrAllOwnersDown = errors.New("cluster: every owner of the key is down")
	// ErrScanIncomplete reports a scatter-gather scan that lost keyrange
	// coverage: at least R members were unreachable, so the merged
	// result may be missing entries and a short result no longer means
	// an exhausted range. The partial merge is returned alongside it.
	ErrScanIncomplete = errors.New("cluster: scan incomplete, keyrange coverage lost")
)

// OpKind selects the operation a batched Op performs.
type OpKind uint8

// Batched operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
)

// Op is one point operation inside a batch.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte // OpPut only
	// Trace, when nonzero, is the distributed trace id this op belongs
	// to. It never changes what the op does: the engine ignores it, and
	// the transport forwards it in the frame header of any RPC the op
	// rides (see internal/obs and DESIGN.md §11), so one id follows a
	// request from the client through primary and replica hops.
	Trace uint64
}

// OpResult is the outcome of one Op. Found is meaningful for OpGet.
type OpResult struct {
	Value []byte
	Found bool
}

// request is one per-node sub-batch flowing through a node's queue. The
// coordinator allocates the result backing array once per Apply; each
// sub-batch writes results through idx so no merge pass is needed.
type request struct {
	ops []Op
	// replicas[i] holds the extra replica targets (beyond the owning
	// member's own store) that write op i must reach; nil for reads and
	// for R=1.
	replicas [][]mirror
	results  []OpResult // shared backing array for the whole Apply
	idx      []int      // results[idx[i]] receives ops[i]'s outcome
	done     *sync.WaitGroup
	// errs collects failures from sub-batches that complete off the
	// submit path (remote members finish their RPC in a goroutine, so a
	// shed or failed batch cannot surface through the enqueue return).
	// May be nil when the caller has no asynchronous completions.
	errs *asyncErr
	// owner is the memberState the sub-batch was routed to; fail feeds
	// its transport failures into the failure detector so a member dying
	// mid-Apply starts counting toward down without waiting for a probe.
	owner *memberState
}

// fail records an asynchronous completion failure, if a collector is
// attached, and feeds transport-level failures to the owning member's
// detector.
func (r *request) fail(err error) {
	if r.owner != nil && isTransportErr(err) {
		r.owner.noteFailure()
	}
	if r.errs != nil {
		r.errs.set(err)
	}
}

// asyncErr is a first-error collector shared by the sub-batches of one
// Apply call.
type asyncErr struct {
	mu  sync.Mutex
	err error
}

func (a *asyncErr) set(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

func (a *asyncErr) first() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// planned is the per-member split of one Apply call.
type planned struct {
	member member
	req    *request
}

// plan splits ops by owner under the current ring, resolving each
// write's replica targets up front so node workers never touch topology
// state. Ops route to the first live owner of their key — the primary
// when it is up, the next replica in ring order when it is not — so a
// down member degrades its keyranges onto survivors instead of failing
// them. Down owners of a write still appear as replica targets; their
// memberState buffers the op as hinted handoff. A key whose entire
// owner set is down fails the batch with ErrAllOwnersDown. Caller holds
// the cluster's topology read lock.
func (c *Cluster) plan(ops []Op, results []OpResult, done *sync.WaitGroup, errs *asyncErr) ([]planned, error) {
	if c.ring.Size() == 0 {
		return nil, ErrNoNodes
	}
	byNode := map[int]*request{}
	order := make([]int, 0, len(c.nodes))
	for i, op := range ops {
		// Routing resolves on the allocation-free Primary when it is
		// live and the op needs no replica set — on a read-heavy healthy
		// cluster that is most of the hot path. Writes under R>1 and any
		// op whose primary is down pay the full owner lookup.
		var lead int
		var reps []mirror
		needOwners := op.Kind != OpGet && c.cfg.Replication > 1
		if primary := c.ring.Primary(op.Key); !needOwners && !c.nodes[primary].isDown() {
			lead = primary
		} else {
			owners := c.ring.Owners(op.Key, c.cfg.Replication)
			lead = -1
			for _, id := range owners {
				if !c.nodes[id].isDown() {
					lead = id
					break
				}
			}
			if lead == -1 {
				return nil, fmt.Errorf("cluster: op %d on key %q: %w", i, op.Key, ErrAllOwnersDown)
			}
			if op.Kind != OpGet {
				for _, id := range owners {
					if id != lead {
						reps = append(reps, c.nodes[id])
					}
				}
			}
		}
		req := byNode[lead]
		if req == nil {
			req = &request{results: results, done: done, errs: errs, owner: c.nodes[lead]}
			byNode[lead] = req
			order = append(order, lead)
		}
		req.ops = append(req.ops, op)
		req.idx = append(req.idx, i)
		req.replicas = append(req.replicas, reps)
	}
	out := make([]planned, 0, len(order))
	for _, id := range order {
		// Split oversized sub-batches so one hot owner cannot exceed the
		// configured batch granularity.
		req := byNode[id]
		for len(req.ops) > c.cfg.MaxBatch {
			head := &request{
				ops:      req.ops[:c.cfg.MaxBatch],
				replicas: req.replicas[:c.cfg.MaxBatch],
				results:  results,
				idx:      req.idx[:c.cfg.MaxBatch],
				done:     done,
				errs:     errs,
				owner:    req.owner,
			}
			out = append(out, planned{member: c.nodes[id], req: head})
			req = &request{
				ops:      req.ops[c.cfg.MaxBatch:],
				replicas: req.replicas[c.cfg.MaxBatch:],
				results:  results,
				idx:      req.idx[c.cfg.MaxBatch:],
				done:     done,
				errs:     errs,
				owner:    req.owner,
			}
		}
		out = append(out, planned{member: c.nodes[id], req: req})
	}
	return out, nil
}
