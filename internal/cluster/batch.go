package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Errors returned by the request paths.
var (
	// ErrOverload reports that a node's bounded queue was full and the
	// batch was shed rather than enqueued (admission control).
	ErrOverload = errors.New("cluster: node queue full, request shed")
	// ErrClosed reports an operation against a closed cluster or node.
	ErrClosed = errors.New("cluster: closed")
	// ErrNoNodes reports an operation against an empty ring.
	ErrNoNodes = errors.New("cluster: no nodes")
	// ErrAllOwnersDown reports an operation on a key whose entire
	// replica set is marked down by the failure detector — there is no
	// live member to serve it, so the op fails explicitly instead of
	// silently dropping (writes) or missing (reads).
	ErrAllOwnersDown = errors.New("cluster: every owner of the key is down")
	// ErrScanIncomplete reports a scatter-gather scan that lost keyrange
	// coverage: at least R members were unreachable, so the merged
	// result may be missing entries and a short result no longer means
	// an exhausted range. The partial merge is returned alongside it.
	ErrScanIncomplete = errors.New("cluster: scan incomplete, keyrange coverage lost")
	// ErrWrongEpoch reports a request routed under a stale membership
	// view: the receiving member's epoch disagrees with the one stamped
	// on the request. The fresh view travels back alongside it (the
	// transport client delivers it to its OnView hook), so the caller
	// re-routes and retries instead of reading or writing through an
	// ownership map that no longer holds.
	ErrWrongEpoch = errors.New("cluster: request carried a stale view epoch")
)

// OpKind selects the operation a batched Op performs.
type OpKind uint8

// Batched operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
)

// Op is one point operation inside a batch.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte // OpPut only
	// Trace, when nonzero, is the distributed trace id this op belongs
	// to. It never changes what the op does: the engine ignores it, and
	// the transport forwards it in the frame header of any RPC the op
	// rides (see internal/obs and DESIGN.md §11), so one id follows a
	// request from the client through primary and replica hops.
	Trace uint64
	// Parent is the span id of the hop that handed this op down — what
	// any span recorded for the op (and the frame header of any RPC it
	// rides) reports as its parent, stitching per-node span logs into
	// one tree. Layers that mint their own span re-stamp Parent before
	// fanning out, so each mirror leg hangs off the hop that issued it.
	// Zero (or Trace zero) means no parentage is recorded.
	Parent uint64
}

// OpResult is the outcome of one Op. Found is meaningful for OpGet.
type OpResult struct {
	Value []byte
	Found bool
}

// request is one per-node sub-batch flowing through a node's queue. The
// coordinator allocates the result backing array once per Apply; each
// sub-batch writes results through idx so no merge pass is needed.
// Requests live in a pooled applyState arena: once done.Done() has been
// called for a request, nobody may touch it again — the applyState (and
// every request in it) returns to the pool the moment done.Wait()
// unblocks the coordinator.
type request struct {
	lead int // owning member's ring id (planInto's open-batch lookup)
	ops  []Op
	// replicas[i] holds the extra replica targets (beyond the owning
	// member's own store) that write op i must reach; nil for reads and
	// for R=1.
	replicas [][]mirror
	results  []OpResult // shared backing array for the whole Apply
	idx      []int      // results[idx[i]] receives ops[i]'s outcome
	done     *sync.WaitGroup
	// errs collects failures from sub-batches that complete off the
	// submit path (remote members finish their RPC in a goroutine, so a
	// shed or failed batch cannot surface through the enqueue return).
	// May be nil when the caller has no asynchronous completions.
	errs *asyncErr
	// owner is the memberState the sub-batch was routed to; fail feeds
	// its transport failures into the failure detector so a member dying
	// mid-Apply starts counting toward down without waiting for a probe.
	owner *memberState
}

// fail records an asynchronous completion failure, if a collector is
// attached, and feeds transport-level failures to the owning member's
// detector.
func (r *request) fail(err error) {
	if r.owner != nil && isTransportErr(err) {
		r.owner.noteFailure()
	}
	if r.errs != nil {
		r.errs.set(err)
	}
}

// asyncErr is a first-error collector shared by the sub-batches of one
// Apply call.
type asyncErr struct {
	mu  sync.Mutex
	err error
}

func (a *asyncErr) set(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

func (a *asyncErr) first() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// applyState is the pooled per-Apply scratch: the sub-batch arena, the
// replica-target arena, and the completion plumbing every sub-batch
// shares. Pooling it makes the coordinator's routing layer
// allocation-free in steady state — the request structs, their
// ops/idx/replicas slices, and the WaitGroup all come back on the next
// Apply with their capacity intact.
//
// Reuse is safe because done.Wait() is the last event of an Apply and
// done.Done() is the last touch any worker makes on a request: node
// workers read nothing after exec returns, and remote completions
// Done() via defer after their final result fill.
type applyState struct {
	reqs    []request // sub-batch arena; parts point into it
	mirrors []mirror  // replica-target arena; replicas slices point into it
	done    sync.WaitGroup
	errs    asyncErr
}

var applyPool = sync.Pool{New: func() any { return new(applyState) }}

// newReq extends the sub-batch arena by one, reusing a recycled
// request's slice capacity when the arena has been this deep before.
func (st *applyState) newReq(lead int, owner *memberState, results []OpResult) *request {
	if len(st.reqs) < cap(st.reqs) {
		st.reqs = st.reqs[:len(st.reqs)+1]
	} else {
		st.reqs = append(st.reqs, request{})
	}
	r := &st.reqs[len(st.reqs)-1]
	r.lead = lead
	r.ops = r.ops[:0]
	r.replicas = r.replicas[:0]
	r.idx = r.idx[:0]
	r.results = results
	r.done = &st.done
	r.errs = &st.errs
	r.owner = owner
	return r
}

// release resets the state and returns it to the pool. Stale Op and
// mirror values stay in the recycled slices' capacity but are never
// read again — every reuse truncates to length zero first.
func (st *applyState) release() {
	st.reqs = st.reqs[:0]
	st.mirrors = st.mirrors[:0]
	st.errs.err = nil
	applyPool.Put(st)
}

// planInto splits ops by owner under the current ring into st's pooled
// sub-batches, resolving each write's replica targets up front so node
// workers never touch topology state. Ops route to the first live owner
// of their key — the primary when it is up, the next replica in ring
// order when it is not — so a down member degrades its keyranges onto
// survivors instead of failing them. Down owners of a write still
// appear as replica targets; their memberState buffers the op as hinted
// handoff. A key whose entire owner set is down fails the batch with
// ErrAllOwnersDown. Caller holds the cluster's topology read lock.
func (c *Cluster) planInto(st *applyState, ops []Op, results []OpResult) error {
	if c.ring.Size() == 0 {
		return ErrNoNodes
	}
	for i, op := range ops {
		// Routing resolves on the allocation-free Primary when it is
		// live and the op needs no replica set — on a read-heavy healthy
		// cluster that is most of the hot path. Writes under R>1 and any
		// op whose primary is down pay the full owner lookup.
		var lead int
		var reps []mirror
		needOwners := op.Kind != OpGet && c.cfg.Replication > 1 && !c.cfg.RouteOnly
		if primary := c.ring.Primary(op.Key); !needOwners && c.nodes[primary] != nil && !c.nodes[primary].isDown() {
			lead = primary
		} else {
			owners := c.ring.Owners(op.Key, c.cfg.Replication)
			lead = -1
			for _, id := range owners {
				if m := c.nodes[id]; m != nil && !m.isDown() {
					lead = id
					break
				}
			}
			if lead == -1 {
				return fmt.Errorf("cluster: op %d on key %q: %w", i, op.Key, ErrAllOwnersDown)
			}
			if lead != owners[0] && op.Trace != 0 && c.spans != nil {
				// A traced op routed around its down primary: leave a
				// zero-duration annotation so the assembled trace shows
				// the reroute, not just an unexplained slow hop.
				c.spans.Record(obs.Span{
					Trace: op.Trace, ID: obs.NewSpanID(), Parent: op.Parent,
					Name: "cluster/failover", Start: time.Now(),
					Err: fmt.Sprintf("primary %d down, write led by member %d", owners[0], lead),
				})
			}
			// Route-only coordinators never mirror — the lead member
			// replicates server-side under its own (authoritative) view.
			if op.Kind != OpGet && !c.cfg.RouteOnly {
				start := len(st.mirrors)
				for _, id := range owners {
					if id != lead && c.nodes[id] != nil {
						st.mirrors = append(st.mirrors, c.nodes[id])
					}
				}
				if end := len(st.mirrors); end > start {
					reps = st.mirrors[start:end:end]
				}
			}
		}
		// Find lead's open sub-batch: only the most recent one for a
		// member can have room (they fill in order), so scan backwards
		// and stop at the first match. Map-free — sub-batch counts stay
		// small (live members plus MaxBatch splits).
		var req *request
		for j := len(st.reqs) - 1; j >= 0; j-- {
			if st.reqs[j].lead == lead {
				if len(st.reqs[j].ops) < c.cfg.MaxBatch {
					req = &st.reqs[j]
				}
				break
			}
		}
		if req == nil {
			req = st.newReq(lead, c.nodes[lead], results)
		}
		req.ops = append(req.ops, op)
		req.idx = append(req.idx, i)
		req.replicas = append(req.replicas, reps)
	}
	return nil
}
