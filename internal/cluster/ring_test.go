package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", i))
	}
	return keys
}

func TestRingDeterministicAndComplete(t *testing.T) {
	a, b := NewRing(64), NewRing(64)
	for id := 0; id < 4; id++ {
		a.Add(id)
		b.Add(id)
	}
	for _, k := range ringKeys(500) {
		if a.Primary(k) != b.Primary(k) {
			t.Fatalf("rings disagree on %q", k)
		}
		if p := a.Primary(k); p < 0 || p > 3 {
			t.Fatalf("primary(%q) = %d", k, p)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	const nodes = 8
	for id := 0; id < nodes; id++ {
		r.Add(id)
	}
	counts := map[int]int{}
	keys := ringKeys(20000)
	for _, k := range keys {
		counts[r.Primary(k)]++
	}
	want := len(keys) / nodes
	for id := 0; id < nodes; id++ {
		if counts[id] < want/2 || counts[id] > want*2 {
			t.Fatalf("node %d owns %d keys, want within [%d, %d]", id, counts[id], want/2, want*2)
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(32)
	for id := 0; id < 5; id++ {
		r.Add(id)
	}
	for _, k := range ringKeys(300) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("owners(%q) = %v", k, owners)
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner in %v for %q", owners, k)
			}
			seen[o] = true
		}
	}
	// Requesting more owners than members clamps.
	if got := len(r.Owners([]byte("x"), 10)); got != 5 {
		t.Fatalf("clamped owners = %d, want 5", got)
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	for id := 0; id < 4; id++ {
		r.Add(id)
	}
	keys := ringKeys(10000)
	before := make([]int, len(keys))
	for i, k := range keys {
		before[i] = r.Primary(k)
	}
	r.Add(4)
	moved := 0
	for i, k := range keys {
		after := r.Primary(k)
		if after != before[i] {
			if after != 4 {
				t.Fatalf("key %q moved %d→%d, not to the new node", k, before[i], after)
			}
			moved++
		}
	}
	// Consistent hashing moves ≈ K/N keys; allow a generous band.
	if moved < len(keys)/10 || moved > len(keys)/2 {
		t.Fatalf("moved %d of %d keys on add, want ≈ %d", moved, len(keys), len(keys)/5)
	}
	// Removing the node restores the exact prior assignment.
	r.Remove(4)
	for i, k := range keys {
		if r.Primary(k) != before[i] {
			t.Fatalf("key %q did not return to node %d after remove", k, before[i])
		}
	}
}

func TestRingEmptyAndClone(t *testing.T) {
	r := NewRing(16)
	if r.Primary([]byte("k")) != -1 {
		t.Fatal("empty ring must return -1")
	}
	if r.Owners([]byte("k"), 2) != nil {
		t.Fatal("empty ring must return no owners")
	}
	r.Add(7)
	c := r.Clone()
	c.Remove(7)
	if r.Size() != 1 || c.Size() != 0 {
		t.Fatalf("clone not independent: r=%d c=%d", r.Size(), c.Size())
	}
}
