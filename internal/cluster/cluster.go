package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Config sizes a Cluster.
type Config struct {
	// Shards is the initial node count (default 1).
	Shards int
	// Replication is R, the number of nodes holding each key (default 1;
	// clamped to the node count). Writes reach all R owners synchronously;
	// reads are served by the primary, so the primary always observes its
	// own writes.
	Replication int
	// VirtualNodes per member on the hash ring (default 64).
	VirtualNodes int
	// QueueDepth bounds each node's request queue (default 128). A full
	// queue sheds TryApply traffic with ErrOverload.
	QueueDepth int
	// MaxBatch caps ops per sub-batch and per worker drain cycle
	// (default 32).
	MaxBatch int
	// WorkersPerNode sizes each node's worker pool (default 2).
	WorkersPerNode int
	// ProbeInterval is the background health prober's period (default
	// 200ms; negative disables the prober — tests drive detection with
	// Probe). The prober starts lazily with the first remote member;
	// local nodes cannot fail.
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive probe or transport failures
	// mark a member down (default 3).
	ProbeFailures int
	// HintLimit bounds the hinted-handoff buffer per down member, in ops
	// (default 4096). A full buffer drops the oldest hint and counts it
	// in NodeStats.HintsDropped — convergence then needs a rebalance.
	HintLimit int
	// Engine is the per-shard storage-engine configuration (the CPU, if
	// any, is shared by every shard — the paper characterizes the whole
	// node). Validate it with engine.Validate before New if the backend
	// or compaction name comes from user input.
	Engine engine.Options
	// Spans, when non-nil, receives the coordinator-layer spans of every
	// traced op: "cluster/write" around each replicated write (exec +
	// replicate phases), "cluster/hint" when a replica leg defers to
	// hinted handoff, "cluster/failover" when a write routes around its
	// down primary. Share one SpanLog between the transport server and
	// its cluster (transport.ServerOptions.Spans) so OpTraceFetch serves
	// every hop the process recorded. Nil disables cluster-layer spans;
	// untraced ops never touch the log either way.
	Spans *obs.SpanLog
}

func (c *Config) normalize() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	// Replication is NOT clamped to the initial shard count: Owners
	// clamps per call to the live membership, so a cluster built small
	// and grown via AddNode reaches the requested R once enough members
	// exist.
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = 2
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 200 * time.Millisecond
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 3
	}
	if c.HintLimit <= 0 {
		c.HintLimit = 4096
	}
}

// Cluster is the coordinator: it owns the ring and the shard members,
// routes point ops to primaries, scatter-gathers scans, and fans writes
// out to the replica set. Members are local *Nodes (AddNode / Config)
// or proxies for shards in other processes (AddRemote); the coordinator
// never distinguishes the two. Every member is wrapped in a memberState
// (health.go): transport failures and probe misses mark members down,
// reads and writes route around down members onto surviving replicas,
// and missed replica writes buffer as hinted handoff until recovery.
type Cluster struct {
	mu     sync.RWMutex // topology lock: ring + member map
	cfg    Config
	ring   *Ring
	nodes  map[int]*memberState
	nextID int
	closed bool
	// spans is cfg.Spans, cached for the hot paths (nil = no tracing).
	spans *obs.SpanLog

	proberStop chan struct{} // non-nil once the background prober runs

	// Failover counters: requests the coordinator served around a failed
	// or down primary (writes led by a non-primary owner, reads answered
	// from a replica after the primary was down or errored). Surfaced by
	// RegisterMetrics as bd_cluster_failovers_total.
	readFailovers  atomic.Uint64
	writeFailovers atomic.Uint64
}

// New builds and starts a cluster of cfg.Shards local nodes.
func New(cfg Config) *Cluster {
	cfg.normalize()
	c := &Cluster{cfg: cfg, ring: NewRing(cfg.VirtualNodes), nodes: map[int]*memberState{}, spans: cfg.Spans}
	for i := 0; i < cfg.Shards; i++ {
		c.addNodeLocked()
	}
	return c
}

// NewEmpty builds a coordinator with no members — a pure router for
// shards joined later with AddNode or AddRemote (e.g. a client-side
// coordinator whose shards all live behind transport servers). Until the
// first member joins, reads miss and batches return ErrNoNodes.
func NewEmpty(cfg Config) *Cluster {
	cfg.normalize()
	return &Cluster{cfg: cfg, ring: NewRing(cfg.VirtualNodes), nodes: map[int]*memberState{}, spans: cfg.Spans}
}

// addNodeLocked creates, starts and registers one node. Caller holds mu.
// An unconstructible engine configuration is a programmer error and
// panics; pre-validate user-supplied names with engine.Validate.
func (c *Cluster) addNodeLocked() *Node {
	id := c.nextID
	c.nextID++
	eng, err := engine.Open(c.cfg.Engine)
	if err != nil {
		panic(fmt.Sprintf("cluster: bad engine config: %v", err))
	}
	n := newNode(id, eng, c.cfg.QueueDepth,
		c.cfg.WorkersPerNode, c.cfg.MaxBatch)
	n.spans = c.spans
	n.start()
	ms := newMemberState(n, c.cfg.ProbeFailures, c.cfg.HintLimit)
	ms.spans = c.spans
	c.nodes[id] = ms
	c.ring.Add(id)
	return n
}

// Nodes returns the current member count.
func (c *Cluster) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// owners resolves the replica set for key under the topology read lock
// already held by the caller.
func (c *Cluster) ownersLocked(key []byte) []*memberState {
	ids := c.ring.Owners(key, c.cfg.Replication)
	out := make([]*memberState, len(ids))
	for i, id := range ids {
		out[i] = c.nodes[id]
	}
	return out
}

// Get serves a point read from the key's first live owner. Because
// writes reach every live owner synchronously (and are led by the first
// live owner), a Get that follows a completed Put of the same key always
// observes it (read-your-writes), including while the primary is down.
// A miss at a primary that has ever been down falls back to the
// remaining replicas before answering "absent": a member that rejoined
// empty after losing its store (crashed process, wiped disk) then
// serves from a surviving copy instead of shadowing it. A never-failed
// primary's miss is final, so healthy clusters pay no extra reads.
//
// Get keeps the ([]byte, bool) shape, so a keyrange whose every owner
// is down reads as a miss here; callers that must distinguish an outage
// from an absent key use Apply (OpGet), which fails such batches with
// ErrAllOwnersDown.
func (c *Cluster) Get(key []byte) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id := c.ring.Primary(key)
	if id < 0 {
		return nil, false
	}
	// Fast path: a live primary that holds the key — one member touch on
	// the allocation-free Primary lookup.
	if m := c.nodes[id]; !m.isDown() {
		v, ok, err := m.directGet(key)
		if err == nil && ok {
			return v, true
		}
		if err == nil && (c.cfg.Replication == 1 || !m.everDown.Load()) {
			return nil, false // a reliable owner answered: a genuine miss
		}
		if err != nil {
			c.readFailovers.Add(1)
		}
	} else {
		c.readFailovers.Add(1)
	}
	// Degraded path: the primary is down, failed the read, or missed
	// with a post-recovery history that makes its misses ambiguous —
	// consult the rest of the owner set before answering "absent".
	for i, m := range c.ownersLocked(key) {
		if i == 0 || m.isDown() {
			continue // the primary was already consulted (or is down)
		}
		if v, ok, err := m.directGet(key); err == nil && ok {
			return v, true
		}
	}
	return nil, false
}

// Put writes through the first live owner to all R owners; down owners
// receive the write as hinted handoff. With every owner down (or an
// empty ring) the write fails with an explicit error rather than
// vanishing.
func (c *Cluster) Put(key, value []byte) error {
	return c.write(Op{Kind: OpPut, Key: key, Value: value})
}

// Delete removes the key from all R owners, hinting down ones.
func (c *Cluster) Delete(key []byte) error {
	return c.write(Op{Kind: OpDelete, Key: key})
}

func (c *Cluster) write(op Op) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	owners := c.ownersLocked(op.Key)
	if len(owners) == 0 {
		return ErrNoNodes
	}
	lead := -1
	for i, m := range owners {
		if !m.isDown() {
			lead = i
			break
		}
	}
	if lead == -1 {
		return fmt.Errorf("cluster: write %q: %w", op.Key, ErrAllOwnersDown)
	}
	if lead != 0 {
		c.writeFailovers.Add(1) // the primary is down: a surviving owner leads
	}
	// Replica mirrors are not counted in NodeStats.Ops (matching the
	// batched path); they surface in the replica's engine stats instead.
	// Down owners ride along as mirrors too: their memberState buffers
	// the write as a hint instead of paying a doomed RPC.
	replicas := make([]mirror, 0, len(owners)-1)
	for i, m := range owners {
		if i != lead {
			replicas = append(replicas, m)
		}
	}
	_, err := owners[lead].directWrite(op, replicas)
	if err != nil {
		return fmt.Errorf("cluster: write %q via member %d: %w", op.Key, owners[lead].memberID(), err)
	}
	return nil
}

// Apply executes a batch of point ops through the shard queues with
// backpressure: sub-batches block for queue space rather than shed.
// Results are positionally aligned with ops.
func (c *Cluster) Apply(ops []Op) ([]OpResult, error) {
	return c.apply(ops, member.submit)
}

// TryApply is Apply under admission control: any sub-batch that meets a
// full queue is shed and ErrOverload returned after the accepted
// sub-batches complete. Shed ops report zero OpResults.
func (c *Cluster) TryApply(ops []Op) ([]OpResult, error) {
	return c.apply(ops, member.trySubmit)
}

// ApplyInto is Apply writing results into a caller-owned slice (len(res)
// must be >= len(ops)) — the allocation-free form for callers that
// recycle result buffers, like the transport server's dispatch scratch.
// res is zeroed before execution; ops that never execute (a planning
// failure, a shed sub-batch) leave zero OpResults behind.
func (c *Cluster) ApplyInto(ops []Op, res []OpResult) error {
	_, err := c.applyInto(ops, res, member.submit)
	return err
}

// TryApplyInto is TryApply writing results into a caller-owned slice.
func (c *Cluster) TryApplyInto(ops []Op, res []OpResult) error {
	_, err := c.applyInto(ops, res, member.trySubmit)
	return err
}

func (c *Cluster) apply(ops []Op, enqueue func(member, *request) error) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	results := make([]OpResult, len(ops))
	planned, err := c.applyInto(ops, results, enqueue)
	if !planned {
		return nil, err // never started executing: no partial results
	}
	return results, err
}

// applyInto routes and executes ops, writing outcomes into results.
// planned reports whether execution began — a false return means no op
// ran and results holds nothing but zeros.
func (c *Cluster) applyInto(ops []Op, results []OpResult, enqueue func(member, *request) error) (planned bool, err error) {
	if len(ops) == 0 {
		return true, nil
	}
	clear(results[:len(ops)])
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return false, ErrClosed
	}
	st := applyPool.Get().(*applyState)
	if err := c.planInto(st, ops, results); err != nil {
		st.release()
		return false, err
	}
	var firstErr error
	for i := range st.reqs {
		st.done.Add(1)
		if err := enqueue(st.reqs[i].owner, &st.reqs[i]); err != nil {
			st.done.Done()
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	st.done.Wait()
	if firstErr == nil {
		// Remote sub-batches complete asynchronously; their failures
		// (including a remote's shed ErrOverload) surface here.
		firstErr = st.errs.first()
	}
	st.release()
	return true, firstErr
}

// Scan scatter-gathers a bounded ordered scan: every node scans a
// snapshot of its own engine (so each partial is internally consistent
// even mid-flush), and the coordinator k-way merges the partial results,
// deduping the copies replication leaves on successor nodes.
//
// Failed or down members contribute no partial. As long as fewer
// members failed than the replication factor, every keyrange retains at
// least one scanned owner and the merged result is complete — returned
// with a nil error. Once failures reach R, coverage is lost: the merge
// is returned alongside ErrScanIncomplete so a short result can never
// be mistaken for an exhausted range (the guarantee paged transport
// scans already make).
func (c *Cluster) Scan(start []byte, limit int) ([]engine.Entry, error) {
	return c.AppendScan(nil, start, limit)
}

// AppendScan is Scan appending the merged result into dst (reusing its
// capacity) — the allocation-free form for callers recycling scan
// buffers, like the transport server's dispatch scratch.
func (c *Cluster) AppendScan(dst []engine.Entry, start []byte, limit int) ([]engine.Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if limit <= 0 || len(c.nodes) == 0 {
		return dst, nil
	}
	ids := c.ring.Members()
	parts := make([][]engine.Entry, len(ids))
	failed := make([]bool, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		m := c.nodes[id]
		if m.isDown() {
			failed[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, m *memberState) {
			defer wg.Done()
			var err error
			parts[i], err = m.snapshotScan(nil, start, limit)
			if err != nil {
				failed[i] = true
			}
		}(i, m)
	}
	wg.Wait()
	merged := mergeEntries(dst, parts, limit)
	nfailed := 0
	for _, f := range failed {
		if f {
			nfailed++
		}
	}
	if nfailed == 0 {
		return merged, nil
	}
	// Effective R never exceeds the member count (Owners clamps), so a
	// single-member R=3 ring still reports lost coverage when its only
	// member dies.
	effR := c.cfg.Replication
	if effR > len(ids) {
		effR = len(ids)
	}
	if nfailed < effR {
		return merged, nil
	}
	return merged, fmt.Errorf("cluster: %d of %d members unreachable with R=%d: %w",
		nfailed, len(ids), effR, ErrScanIncomplete)
}

// mergeEntries k-way merges sorted partials into the first limit distinct
// keys (replicas carry identical values, so the first copy wins),
// appending to dst.
func mergeEntries(dst []engine.Entry, parts [][]engine.Entry, limit int) []engine.Entry {
	idx := make([]int, len(parts))
	out, base := dst, len(dst)
	for len(out)-base < limit {
		best := -1
		for i := range parts {
			if idx[i] >= len(parts[i]) {
				continue
			}
			if best == -1 || bytes.Compare(parts[i][idx[i]].Key, parts[best][idx[best]].Key) < 0 {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := parts[best][idx[best]]
		for i := range parts {
			for idx[i] < len(parts[i]) && bytes.Equal(parts[i][idx[i]].Key, e.Key) {
				idx[i]++
			}
		}
		out = append(out, e)
	}
	return out
}

// Stats is a cluster-wide activity snapshot.
type Stats struct {
	Nodes    []NodeStats
	Accepted uint64
	Rejected uint64
	Batches  uint64
	Ops      uint64
	// Down counts members the failure detector currently considers down.
	Down int
}

// Stats snapshots every node, ordered by node id.
func (c *Cluster) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var st Stats
	for _, id := range c.ring.Members() {
		ns := c.nodes[id].stats()
		st.Nodes = append(st.Nodes, ns)
		st.Accepted += ns.Accepted
		st.Rejected += ns.Rejected
		st.Batches += ns.Batches
		st.Ops += ns.Ops
		if ns.Down {
			st.Down++
		}
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].ID < st.Nodes[j].ID })
	return st
}

// Close stops every node, draining their queues first, and stops the
// background prober.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	if c.proberStop != nil {
		close(c.proberStop)
		c.proberStop = nil
	}
	for _, n := range c.nodes {
		n.close()
	}
}
