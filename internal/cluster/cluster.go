package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Config sizes a Cluster.
type Config struct {
	// Shards is the initial node count (default 1).
	Shards int
	// Replication is R, the number of nodes holding each key (default 1;
	// clamped to the node count). Writes reach all R owners synchronously;
	// reads are served by the primary, so the primary always observes its
	// own writes.
	Replication int
	// VirtualNodes per member on the hash ring (default 64).
	VirtualNodes int
	// QueueDepth bounds each node's request queue (default 128). A full
	// queue sheds TryApply traffic with ErrOverload.
	QueueDepth int
	// MaxBatch caps ops per sub-batch and per worker drain cycle
	// (default 32).
	MaxBatch int
	// WorkersPerNode sizes each node's worker pool (default 2).
	WorkersPerNode int
	// ProbeInterval is the background health prober's period (default
	// 200ms; negative disables the prober — tests drive detection with
	// Probe). The prober starts lazily with the first remote member;
	// local nodes cannot fail.
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive probe or transport failures
	// mark a member down (default 3).
	ProbeFailures int
	// HintLimit bounds the hinted-handoff buffer per down member, in ops
	// (default 4096). A full buffer drops the oldest hint and counts it
	// in NodeStats.HintsDropped — convergence then needs a rebalance.
	HintLimit int
	// Engine is the per-shard storage-engine configuration (the CPU, if
	// any, is shared by every shard — the paper characterizes the whole
	// node). Validate it with engine.Validate before New if the backend
	// or compaction name comes from user input.
	Engine engine.Options
	// Spans, when non-nil, receives the coordinator-layer spans of every
	// traced op: "cluster/write" around each replicated write (exec +
	// replicate phases), "cluster/hint" when a replica leg defers to
	// hinted handoff, "cluster/failover" when a write routes around its
	// down primary. Share one SpanLog between the transport server and
	// its cluster (transport.ServerOptions.Spans) so OpTraceFetch serves
	// every hop the process recorded. Nil disables cluster-layer spans;
	// untraced ops never touch the log either way.
	Spans *obs.SpanLog

	// SelfAddr, when non-empty, makes this cluster one elastic member: a
	// single local shard whose ring id derives from the advertised
	// address (MemberIDForAddr), participating in the epoch-versioned
	// membership protocol — gossip dissemination, live join/leave, and
	// throttled online migration. Elastic members ignore Shards.
	SelfAddr string
	// RouteOnly makes an elastic cluster a pure view-adopting router: it
	// holds no shard, publishes no membership row, and never mirrors
	// client-side (elastic members replicate server-side from the view's
	// R). Coordinators embedded in benchmark drivers use this.
	RouteOnly bool
	// Dial connects to a peer discovered through the view (by advertised
	// address). Required for elastic clusters; unused otherwise.
	Dial func(addr string) (Remote, error)
	// MigrateRate bounds background migration throughput in bytes/s
	// (default 8 MiB/s; negative disables the throttle).
	MigrateRate int
	// DeclareDeadAfter is how many consecutive probe sweeps a member
	// stays down before the lowest-id live member declares it Left and
	// the cluster heals around the loss (default 10 sweeps).
	DeclareDeadAfter int
	// OnViewChange, when non-nil, is called (outside all cluster locks)
	// each time a new membership view commits. Edge-facing layers use it
	// to restamp client epochs.
	OnViewChange func(*ClusterView)
	// Events, when non-nil, receives typed lifecycle events: view
	// commits that advance the epoch, failure-detector transitions
	// (suspect/down/alive/declared-dead), failovers around a down
	// primary, hint replays and drops, and migration start/settle.
	// Point it at the same log the transport server exposes
	// (transport.ServerOptions.Events) so OpEventsFetch serves the
	// cluster's timeline. Nil disables event recording.
	Events *obs.EventLog
}

func (c *Config) normalize() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	// Replication is NOT clamped to the initial shard count: Owners
	// clamps per call to the live membership, so a cluster built small
	// and grown via AddNode reaches the requested R once enough members
	// exist.
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = 2
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 200 * time.Millisecond
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 3
	}
	if c.HintLimit <= 0 {
		c.HintLimit = 4096
	}
	if c.MigrateRate == 0 {
		c.MigrateRate = 8 << 20
	}
	if c.DeclareDeadAfter <= 0 {
		c.DeclareDeadAfter = 10
	}
}

// Cluster is the coordinator: it owns the ring and the shard members,
// routes point ops to primaries, scatter-gathers scans, and fans writes
// out to the replica set. Members are local *Nodes (AddNode / Config)
// or proxies for shards in other processes (AddRemote); the coordinator
// never distinguishes the two. Every member is wrapped in a memberState
// (health.go): transport failures and probe misses mark members down,
// reads and writes route around down members onto surviving replicas,
// and missed replica writes buffer as hinted handoff until recovery.
type Cluster struct {
	mu     sync.RWMutex // topology lock: ring + member map + view
	cfg    Config
	ring   *Ring
	nodes  map[int]*memberState
	nextID int
	closed bool
	// spans is cfg.Spans, cached for the hot paths (nil = no tracing).
	spans *obs.SpanLog
	// events is cfg.Events (nil = no event recording; EventLog methods
	// are nil-safe, so emit sites carry no guards).
	events *obs.EventLog
	// migStartEpoch is the highest epoch a migration-start event was
	// recorded for, so retried copy passes log the start once.
	migStartEpoch atomic.Uint64

	// view is the current membership view; ring is always view.Ring()
	// (elastic) or an equivalent hand-maintained ring (legacy AddNode /
	// RemoveNode paths, which rebuild the view after each mutation).
	// lastSettled is the most recent view every live member finished
	// migrating for — the ownership map acknowledged writes are guaranteed
	// to have reached, which reads consult while an epoch is in flight.
	view        *ClusterView
	lastSettled *ClusterView
	// epoch mirrors view.Epoch for lock-free per-request checks (the
	// transport server rejects stale-epoch requests before admission).
	epoch atomic.Uint64
	// encView caches view.Encode() at commit, so the transport read loop
	// can bounce a stale-epoch request without touching mu: a pending
	// view-adopt writer would otherwise park the read loop in the fence,
	// and a parked read loop answers nothing — including the bounces
	// other members' in-flight requests are waiting on, which is a
	// cross-member deadlock during the very membership changes the fence
	// exists for. Committed views are immutable, so one encode per commit
	// serves every bounce of that epoch.
	encView atomic.Pointer[[]byte]

	// selfID is this process's member id on the elastic ring, or -1 for
	// legacy clusters and route-only coordinators. selfInc is the
	// incarnation high-water of our own published membership row.
	selfID  int
	selfInc uint64
	leaving atomic.Bool

	// Migrator plumbing (elastic members only): commitViewLocked starts
	// the loop on the first unsettled view and kicks it on every commit.
	migStop chan struct{}
	migKick chan struct{}
	migDone chan struct{}
	// dropsDone is the highest epoch whose post-settle drop pass (deleting
	// keyranges this member no longer owns) has completed. Guarded by mu.
	dropsDone uint64

	proberStop chan struct{} // non-nil once the background prober runs

	// dialing single-flights ensureMembers' outside-the-lock dials: the
	// probe sweep and a concurrent adopt both see an undialed member, and
	// without this guard both would connect — addViewMember discards the
	// loser, stranding anyone (like a bench's peer tracker) who adopted
	// it as the member's canonical connection. Guarded by mu.
	dialing map[int]struct{}

	// Failover counters: requests the coordinator served around a failed
	// or down primary (writes led by a non-primary owner, reads answered
	// from a replica after the primary was down or errored). Surfaced by
	// RegisterMetrics as bd_cluster_failovers_total.
	readFailovers  atomic.Uint64
	writeFailovers atomic.Uint64

	// Membership/migration counters (RegisterMetrics surfaces these).
	viewChanges  atomic.Uint64
	gossipRounds atomic.Uint64
	migBytes     atomic.Uint64
	migKeys      atomic.Uint64
	migDropped   atomic.Uint64
}

// New builds and starts a cluster of cfg.Shards local nodes, or — when
// cfg.SelfAddr or cfg.RouteOnly is set — one elastic membership
// participant (see Config.SelfAddr).
func New(cfg Config) *Cluster {
	cfg.normalize()
	c := &Cluster{cfg: cfg, ring: NewRing(cfg.VirtualNodes), nodes: map[int]*memberState{}, spans: cfg.Spans, events: cfg.Events, selfID: -1}
	if cfg.SelfAddr != "" || cfg.RouteOnly {
		return c.initElastic()
	}
	for i := 0; i < cfg.Shards; i++ {
		c.addNodeLocked()
	}
	c.rebuildStaticViewLocked()
	return c
}

// NewEmpty builds a coordinator with no members — a pure router for
// shards joined later with AddNode or AddRemote (e.g. a client-side
// coordinator whose shards all live behind transport servers). Until the
// first member joins, reads miss and batches return ErrNoNodes.
func NewEmpty(cfg Config) *Cluster {
	cfg.normalize()
	c := &Cluster{cfg: cfg, ring: NewRing(cfg.VirtualNodes), nodes: map[int]*memberState{}, spans: cfg.Spans, events: cfg.Events, selfID: -1}
	c.rebuildStaticViewLocked()
	return c
}

// initElastic finishes constructing an elastic cluster: a single local
// shard keyed by the advertised address (members), or no shard at all
// (route-only coordinators), plus the initial one-row view.
func (c *Cluster) initElastic() *Cluster {
	if c.cfg.Dial == nil {
		panic("cluster: elastic configuration requires Config.Dial")
	}
	var rows []MemberInfo
	epoch := uint64(0) // route-only: adopt whatever the seeds hold
	if !c.cfg.RouteOnly {
		c.selfID = MemberIDForAddr(c.cfg.SelfAddr)
		c.selfInc = 1
		epoch = 1
		eng, err := engine.Open(c.cfg.Engine)
		if err != nil {
			panic(fmt.Sprintf("cluster: bad engine config: %v", err))
		}
		n := newNode(c.selfID, eng, c.cfg.QueueDepth, c.cfg.WorkersPerNode, c.cfg.MaxBatch)
		n.spans = c.spans
		n.start()
		ms := newMemberState(n, c.cfg.ProbeFailures, c.cfg.HintLimit)
		ms.spans = c.spans
		ms.events = c.events
		ms.addr = c.cfg.SelfAddr
		c.nodes[c.selfID] = ms
		rows = append(rows, MemberInfo{
			ID: c.selfID, Addr: c.cfg.SelfAddr,
			Status: StatusAlive, Incarnation: 1, Settled: 1,
		})
	}
	v := newView(epoch, c.cfg.Replication, c.cfg.VirtualNodes, rows)
	c.view, c.lastSettled, c.ring = v, v, v.Ring()
	c.epoch.Store(v.Epoch)
	enc := v.Encode()
	c.encView.Store(&enc)
	c.startProberLocked() // gossip rides the probe sweep
	return c
}

// rebuildStaticViewLocked derives a fully settled view from the current
// hand-maintained ring — the legacy (non-elastic) topology paths call it
// after every mutation so epochs still version ownership changes and
// scans can detect a ring swap mid-scatter. Caller holds mu (or is the
// constructor).
func (c *Cluster) rebuildStaticViewLocked() {
	var epoch uint64
	if c.view != nil {
		epoch = c.view.Epoch
	}
	if c.ring.Size() > 0 || c.view != nil {
		epoch++
	}
	rows := make([]MemberInfo, 0, len(c.nodes))
	for id, m := range c.nodes {
		if !c.ring.Contains(id) {
			continue // mid-removal member kept alive by a failed migration
		}
		rows = append(rows, MemberInfo{
			ID: id, Addr: m.addr,
			Status: StatusAlive, Incarnation: 1, Settled: epoch,
		})
	}
	v := newView(epoch, c.cfg.Replication, c.cfg.VirtualNodes, rows)
	c.view, c.lastSettled = v, v
	c.epoch.Store(v.Epoch)
	enc := v.Encode()
	c.encView.Store(&enc)
	// c.ring keeps its hand-maintained identity (RemoveNode's failure
	// bookkeeping depends on it); membership is identical to v.Ring().
}

// elastic reports whether this cluster participates in epoch-versioned
// membership (as a member or a route-only coordinator).
func (c *Cluster) elastic() bool {
	return c.cfg.SelfAddr != "" || c.cfg.RouteOnly
}

// localNodeLocked returns this member's local shard, or nil for legacy
// clusters and route-only coordinators. Caller holds mu.
func (c *Cluster) localNodeLocked() *Node {
	if c.selfID < 0 {
		return nil
	}
	ms := c.nodes[c.selfID]
	if ms == nil {
		return nil
	}
	n, _ := ms.member.(*Node)
	return n
}

// addNodeLocked creates, starts and registers one node. Caller holds mu.
// An unconstructible engine configuration is a programmer error and
// panics; pre-validate user-supplied names with engine.Validate.
func (c *Cluster) addNodeLocked() *Node {
	id := c.nextID
	c.nextID++
	eng, err := engine.Open(c.cfg.Engine)
	if err != nil {
		panic(fmt.Sprintf("cluster: bad engine config: %v", err))
	}
	n := newNode(id, eng, c.cfg.QueueDepth,
		c.cfg.WorkersPerNode, c.cfg.MaxBatch)
	n.spans = c.spans
	n.start()
	ms := newMemberState(n, c.cfg.ProbeFailures, c.cfg.HintLimit)
	ms.spans = c.spans
	ms.events = c.events
	c.nodes[id] = ms
	c.ring.Add(id)
	return n
}

// Nodes returns the current member count.
func (c *Cluster) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// owners resolves the replica set for key under the topology read lock
// already held by the caller. Entries may be nil on elastic clusters: a
// view member this process has learned of but not yet dialed routes like
// a down member until ensureMembers connects it.
func (c *Cluster) ownersLocked(key []byte) []*memberState {
	ids := c.ring.Owners(key, c.cfg.Replication)
	out := make([]*memberState, len(ids))
	for i, id := range ids {
		out[i] = c.nodes[id]
	}
	return out
}

// Get serves a point read from the key's first live owner. Because
// writes reach every live owner synchronously (and are led by the first
// live owner), a Get that follows a completed Put of the same key always
// observes it (read-your-writes), including while the primary is down.
// A miss at a primary that has ever been down falls back to the
// remaining replicas before answering "absent": a member that rejoined
// empty after losing its store (crashed process, wiped disk) then
// serves from a surviving copy instead of shadowing it. A never-failed
// primary's miss is final, so healthy clusters pay no extra reads.
//
// Get keeps the ([]byte, bool) shape, so a keyrange whose every owner
// is down reads as a miss here; callers that must distinguish an outage
// from an absent key use Apply (OpGet), which fails such batches with
// ErrAllOwnersDown.
// Lock discipline: Get (like every data-path method) never holds the
// topology lock across a remote call. A reader parked mid-RPC queues
// writers (view adoption), and Go's RWMutex then parks every new reader
// behind them — with two members each reading-while-calling the other,
// that welds a cross-process lock cycle only broken by client timeouts.
// Instead each step snapshots what it needs under a short RLock and
// calls with the lock released; memberState pointers stay valid after a
// view change (a departed member's calls just fail and fall through).
func (c *Cluster) Get(key []byte) ([]byte, bool) {
	c.mu.RLock()
	id := c.ring.Primary(key)
	if id < 0 {
		c.mu.RUnlock()
		return nil, false
	}
	// Fast path: a live primary that holds the key — one member touch on
	// the allocation-free Primary lookup.
	settled := c.view == nil || c.view.AllSettled()
	m := c.nodes[id]
	c.mu.RUnlock()
	if m != nil && !m.isDown() {
		v, ok, err := m.directGet(key)
		if err == nil && ok {
			return v, true
		}
		if err == nil && settled && (c.cfg.Replication == 1 || !m.everDown.Load()) {
			return nil, false // a reliable owner answered: a genuine miss
		}
		if err != nil {
			c.readFailovers.Add(1)
			c.noteFailoverEvent("read", m)
		}
	} else {
		c.readFailovers.Add(1)
		c.noteFailoverEvent("read", m)
	}
	// Degraded path: the primary is down, failed the read, or missed
	// with a post-recovery history that makes its misses ambiguous —
	// consult the rest of the owner set before answering "absent".
	c.mu.RLock()
	owners := c.ownersLocked(key)
	// Migration in flight: the key may still live only at its owners
	// under the last fully settled view (the new owner's copy has not
	// landed yet), so consult them too before answering "absent".
	if !settled && c.lastSettled != nil {
		for _, id := range c.lastSettled.Ring().Owners(key, c.cfg.Replication) {
			owners = append(owners, c.nodes[id])
		}
	}
	c.mu.RUnlock()
	for i, m := range owners {
		if i == 0 || m == nil || m.isDown() {
			continue // the primary was already consulted (or is down/undialed)
		}
		if v, ok, err := m.directGet(key); err == nil && ok {
			return v, true
		}
	}
	return nil, false
}

// Put writes through the first live owner to all R owners; down owners
// receive the write as hinted handoff. With every owner down (or an
// empty ring) the write fails with an explicit error rather than
// vanishing.
func (c *Cluster) Put(key, value []byte) error {
	return c.write(Op{Kind: OpPut, Key: key, Value: value})
}

// Delete removes the key from all R owners, hinting down ones.
func (c *Cluster) Delete(key []byte) error {
	return c.write(Op{Kind: OpDelete, Key: key})
}

func (c *Cluster) write(op Op) error {
	c.mu.RLock()
	owners := c.ownersLocked(op.Key)
	c.mu.RUnlock()
	if len(owners) == 0 {
		return ErrNoNodes
	}
	lead := -1
	for i, m := range owners {
		if m != nil && !m.isDown() {
			lead = i
			break
		}
	}
	if lead == -1 {
		return fmt.Errorf("cluster: write %q: %w", op.Key, ErrAllOwnersDown)
	}
	if lead != 0 {
		c.writeFailovers.Add(1) // the primary is down: a surviving owner leads
		c.noteFailoverEvent("write", owners[0])
	}
	// Replica mirrors are not counted in NodeStats.Ops (matching the
	// batched path); they surface in the replica's engine stats instead.
	// Down owners ride along as mirrors too: their memberState buffers
	// the write as a hint instead of paying a doomed RPC. Route-only
	// coordinators never mirror: the lead member replicates server-side
	// under its own (authoritative) view.
	var replicas []mirror
	if !c.cfg.RouteOnly {
		replicas = make([]mirror, 0, len(owners)-1)
		for i, m := range owners {
			if i != lead && m != nil {
				replicas = append(replicas, m)
			}
		}
	}
	_, err := owners[lead].directWrite(op, replicas)
	if err != nil {
		return fmt.Errorf("cluster: write %q via member %d: %w", op.Key, owners[lead].memberID(), err)
	}
	return nil
}

// Apply executes a batch of point ops through the shard queues with
// backpressure: sub-batches block for queue space rather than shed.
// Results are positionally aligned with ops.
func (c *Cluster) Apply(ops []Op) ([]OpResult, error) {
	return c.apply(ops, member.submit)
}

// TryApply is Apply under admission control: any sub-batch that meets a
// full queue is shed and ErrOverload returned after the accepted
// sub-batches complete. Shed ops report zero OpResults.
func (c *Cluster) TryApply(ops []Op) ([]OpResult, error) {
	return c.apply(ops, member.trySubmit)
}

// ApplyInto is Apply writing results into a caller-owned slice (len(res)
// must be >= len(ops)) — the allocation-free form for callers that
// recycle result buffers, like the transport server's dispatch scratch.
// res is zeroed before execution; ops that never execute (a planning
// failure, a shed sub-batch) leave zero OpResults behind.
func (c *Cluster) ApplyInto(ops []Op, res []OpResult) error {
	_, err := c.applyInto(ops, res, member.submit)
	return err
}

// TryApplyInto is TryApply writing results into a caller-owned slice.
func (c *Cluster) TryApplyInto(ops []Op, res []OpResult) error {
	_, err := c.applyInto(ops, res, member.trySubmit)
	return err
}

func (c *Cluster) apply(ops []Op, enqueue func(member, *request) error) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	results := make([]OpResult, len(ops))
	planned, err := c.applyInto(ops, results, enqueue)
	if !planned {
		return nil, err // never started executing: no partial results
	}
	return results, err
}

// applyInto routes and executes ops, writing outcomes into results.
// planned reports whether execution began — a false return means no op
// ran and results holds nothing but zeros.
func (c *Cluster) applyInto(ops []Op, results []OpResult, enqueue func(member, *request) error) (planned bool, err error) {
	if len(ops) == 0 {
		return true, nil
	}
	clear(results[:len(ops)])
	// Plan under a short topology read lock, then execute with it
	// released: sub-batch RPCs and queue waits must not pin the lock (see
	// Get's lock-discipline comment — a reader parked across the network
	// starves view adoption and cycles with peers doing the same).
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return false, ErrClosed
	}
	st := applyPool.Get().(*applyState)
	if err := c.planInto(st, ops, results); err != nil {
		st.release()
		c.mu.RUnlock()
		return false, err
	}
	view := c.view
	c.mu.RUnlock()
	var firstErr error
	for i := range st.reqs {
		st.done.Add(1)
		if err := enqueue(st.reqs[i].owner, &st.reqs[i]); err != nil {
			st.done.Done()
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	st.done.Wait()
	if firstErr == nil {
		// Remote sub-batches complete asynchronously; their failures
		// (including a remote's shed ErrOverload) surface here.
		firstErr = st.errs.first()
	}
	st.release()
	if firstErr == nil && view != nil && !view.AllSettled() {
		// Migration in flight: a read that missed at its new owner may
		// still live only under the last settled ownership map.
		c.fallbackReads(ops, results)
	}
	return true, firstErr
}

// fallbackReads re-serves missed OpGets against the owners of the
// last fully settled view — the replica set acknowledged writes are
// guaranteed to have reached while an epoch's migration is in flight.
// Member lookups take the topology lock briefly per key; the reads
// themselves run unlocked.
func (c *Cluster) fallbackReads(ops []Op, results []OpResult) {
	c.mu.RLock()
	ls := c.lastSettled
	repl := c.cfg.Replication
	c.mu.RUnlock()
	if ls == nil {
		return
	}
	for i, op := range ops {
		if op.Kind != OpGet || results[i].Found {
			continue
		}
		for _, id := range ls.Ring().Owners(op.Key, repl) {
			m := c.memberFor(id)
			if m == nil || m.isDown() {
				continue
			}
			if v, ok, err := m.directGet(op.Key); err == nil && ok {
				results[i] = OpResult{Value: v, Found: true}
				break
			}
		}
	}
}

// Scan scatter-gathers a bounded ordered scan: every node scans a
// snapshot of its own engine (so each partial is internally consistent
// even mid-flush), and the coordinator k-way merges the partial results,
// deduping the copies replication leaves on successor nodes.
//
// Failed or down members contribute no partial. As long as fewer
// members failed than the replication factor, every keyrange retains at
// least one scanned owner and the merged result is complete — returned
// with a nil error. Once failures reach R, coverage is lost: the merge
// is returned alongside ErrScanIncomplete so a short result can never
// be mistaken for an exhausted range (the guarantee paged transport
// scans already make).
func (c *Cluster) Scan(start []byte, limit int) ([]engine.Entry, error) {
	return c.AppendScan(nil, start, limit)
}

// AppendScan is Scan appending the merged result into dst (reusing its
// capacity) — the allocation-free form for callers recycling scan
// buffers, like the transport server's dispatch scratch.
//
// The scatter runs without the topology lock and pins the view epoch it
// planned under: a membership change that commits mid-scatter (a
// concurrent join moving a keyrange the scan spans) invalidates the
// attempt, which retries on the new view instead of merging partials
// from two different ownership maps into duplicates or gaps. An elastic
// member answers from its local shard only — cross-member scans are the
// coordinator's job (scattering from inside a scatter would recurse).
func (c *Cluster) AppendScan(dst []engine.Entry, start []byte, limit int) ([]engine.Entry, error) {
	if limit <= 0 {
		return dst, nil
	}
	c.mu.RLock()
	if c.selfID >= 0 {
		m := c.nodes[c.selfID]
		c.mu.RUnlock()
		if m == nil {
			return dst, nil
		}
		return m.snapshotScan(dst, start, limit)
	}
	c.mu.RUnlock()
	const attempts = 3
	base := len(dst)
	for i := 0; i < attempts; i++ {
		merged, retry, err := c.scanOnce(dst[:base], start, limit)
		if !retry {
			return merged, err
		}
		dst = merged[:base]
	}
	return dst[:base], fmt.Errorf("cluster: scan raced %d membership changes: %w", attempts, ErrWrongEpoch)
}

// scanOnce runs one epoch-pinned scatter-gather attempt. retry reports
// that the view changed mid-scatter and the caller should re-plan.
func (c *Cluster) scanOnce(dst []engine.Entry, start []byte, limit int) (merged []engine.Entry, retry bool, err error) {
	c.mu.RLock()
	if c.closed || len(c.nodes) == 0 {
		c.mu.RUnlock()
		return dst, false, nil
	}
	epoch := uint64(0)
	if c.view != nil {
		epoch = c.view.Epoch
	}
	ids := c.ring.Members()
	// While an epoch's migration is in flight, members of the last
	// settled view may still hold the only copy of a moving keyrange —
	// scan the union of both member sets (the merge dedups).
	if c.view != nil && !c.view.AllSettled() && c.lastSettled != nil {
		have := make(map[int]bool, len(ids))
		for _, id := range ids {
			have[id] = true
		}
		for _, id := range c.lastSettled.Ring().Members() {
			if !have[id] {
				ids = append(ids, id)
			}
		}
	}
	members := make([]*memberState, len(ids))
	for i, id := range ids {
		members[i] = c.nodes[id]
	}
	effR := c.cfg.Replication
	c.mu.RUnlock()

	parts := make([][]engine.Entry, len(members))
	failed := make([]bool, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if m == nil || m.isDown() {
			failed[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, m *memberState) {
			defer wg.Done()
			var err error
			parts[i], err = m.snapshotScan(nil, start, limit)
			if err != nil {
				failed[i] = true
			}
		}(i, m)
	}
	wg.Wait()
	if c.epoch.Load() != epoch {
		return dst, true, nil // ownership moved under the scatter: re-plan
	}
	merged = mergeEntries(dst, parts, limit)
	nfailed := 0
	for _, f := range failed {
		if f {
			nfailed++
		}
	}
	if nfailed == 0 {
		return merged, false, nil
	}
	// Effective R never exceeds the member count (Owners clamps), so a
	// single-member R=3 ring still reports lost coverage when its only
	// member dies.
	if effR > len(ids) {
		effR = len(ids)
	}
	if nfailed < effR {
		return merged, false, nil
	}
	return merged, false, fmt.Errorf("cluster: %d of %d members unreachable with R=%d: %w",
		nfailed, len(ids), effR, ErrScanIncomplete)
}

// mergeEntries k-way merges sorted partials into the first limit distinct
// keys (replicas carry identical values, so the first copy wins),
// appending to dst.
func mergeEntries(dst []engine.Entry, parts [][]engine.Entry, limit int) []engine.Entry {
	idx := make([]int, len(parts))
	out, base := dst, len(dst)
	for len(out)-base < limit {
		best := -1
		for i := range parts {
			if idx[i] >= len(parts[i]) {
				continue
			}
			if best == -1 || bytes.Compare(parts[i][idx[i]].Key, parts[best][idx[best]].Key) < 0 {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := parts[best][idx[best]]
		for i := range parts {
			for idx[i] < len(parts[i]) && bytes.Equal(parts[i][idx[i]].Key, e.Key) {
				idx[i]++
			}
		}
		out = append(out, e)
	}
	return out
}

// Stats is a cluster-wide activity snapshot.
type Stats struct {
	Nodes    []NodeStats
	Accepted uint64
	Rejected uint64
	Batches  uint64
	Ops      uint64
	// Down counts members the failure detector currently considers down.
	Down int
}

// Stats snapshots every node, ordered by node id. An elastic member
// reports its local shard only — a cluster-wide fold would recurse
// through peers folding each other (the coordinator aggregates instead).
func (c *Cluster) Stats() Stats {
	c.mu.RLock()
	ids := c.ring.Members()
	if c.selfID >= 0 {
		ids = []int{c.selfID}
	}
	members := make([]*memberState, len(ids))
	for i, id := range ids {
		members[i] = c.nodes[id]
	}
	c.mu.RUnlock()
	// Remote members answer stats over the wire: keep the topology lock
	// out of those round trips (see Get's lock-discipline comment).
	var st Stats
	for _, m := range members {
		if m == nil {
			st.Down++ // known to the view but not yet dialed
			continue
		}
		ns := m.stats()
		st.Nodes = append(st.Nodes, ns)
		st.Accepted += ns.Accepted
		st.Rejected += ns.Rejected
		st.Batches += ns.Batches
		st.Ops += ns.Ops
		if ns.Down {
			st.Down++
		}
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].ID < st.Nodes[j].ID })
	return st
}

// Close stops every node, draining their queues first, and stops the
// background prober and migrator.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	if c.proberStop != nil {
		close(c.proberStop)
		c.proberStop = nil
	}
	if c.migStop != nil {
		close(c.migStop)
		c.migStop = nil
	}
	migDone := c.migDone
	nodes := make([]*memberState, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	if migDone != nil {
		<-migDone // the migrator takes mu itself; wait unlocked
	}
	for _, n := range nodes {
		n.close()
	}
}
