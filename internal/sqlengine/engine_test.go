package sqlengine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testTables builds small ORDER / ORDER_ITEM tables (paper Table 3 schema).
func testTables(t *testing.T) (*Table, *Table) {
	t.Helper()
	orders := NewTable("ORDER", []ColDef{
		{"ORDER_ID", Int64}, {"BUYER_ID", Int64}, {"CREATE_DATE", Int64},
	}, nil)
	items := NewTable("ITEM", []ColDef{
		{"ITEM_ID", Int64}, {"ORDER_ID", Int64}, {"GOODS_ID", Int64},
		{"GOODS_NUMBER", Float64}, {"GOODS_PRICE", Float64}, {"GOODS_AMOUNT", Float64},
	}, nil)
	for i := int64(1); i <= 100; i++ {
		if err := orders.AppendRow(i, i%10+1, int64(15000)+i%30); err != nil {
			t.Fatal(err)
		}
		for j := int64(0); j < i%4; j++ {
			price := float64(10 * (j + 1))
			num := float64(j + 1)
			if err := items.AppendRow(i*10+j, i, i%7+1, num, price, num*price); err != nil {
				t.Fatal(err)
			}
		}
	}
	orders.Seal()
	items.Seal()
	return orders, items
}

func TestSelectWithPredicates(t *testing.T) {
	orders, _ := testTables(t)
	e := NewEngine(nil)
	res, err := e.Select(orders,
		[]Pred{{Col: "BUYER_ID", Op: EQ, Int: 3}},
		[]string{"ORDER_ID", "CREATE_DATE"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 10 {
		t.Fatalf("rows = %d, want 10 (buyer 3 has orders 2,12,...,92)", res.Rows())
	}
	ids, err := res.IntCol("ORDER_ID")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if (id-2)%10 != 0 {
			t.Fatalf("order %d should not match buyer 3", id)
		}
	}
	if got := len(res.Cols()); got != 2 {
		t.Fatalf("projection width = %d", got)
	}
}

func TestSelectConjunction(t *testing.T) {
	orders, _ := testTables(t)
	e := NewEngine(nil)
	res, err := e.Select(orders, []Pred{
		{Col: "BUYER_ID", Op: EQ, Int: 3},
		{Col: "ORDER_ID", Op: GT, Int: 50},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", res.Rows())
	}
}

func TestSelectUnknownColumn(t *testing.T) {
	orders, _ := testTables(t)
	e := NewEngine(nil)
	if _, err := e.Select(orders, []Pred{{Col: "NOPE", Op: EQ}}, nil); err == nil {
		t.Fatal("want error for unknown column")
	}
}

func TestAggregateSumMatchesReference(t *testing.T) {
	_, items := testTables(t)
	e := NewEngine(nil)
	got, err := e.Aggregate(items, nil, "ORDER_ID", "GOODS_AMOUNT", Sum)
	if err != nil {
		t.Fatal(err)
	}
	amounts, _ := items.FloatCol("GOODS_AMOUNT")
	oids, _ := items.IntCol("ORDER_ID")
	want := map[int64]float64{}
	for i, id := range oids {
		want[id] += amounts[i]
	}
	if len(got) != len(want) {
		t.Fatalf("groups = %d, want %d", len(got), len(want))
	}
	for _, row := range got {
		if math.Abs(row.Value-want[row.Group]) > 1e-9 {
			t.Fatalf("sum[%d] = %f, want %f", row.Group, row.Value, want[row.Group])
		}
	}
}

func TestAggregateKinds(t *testing.T) {
	tab := NewTable("T", []ColDef{{"G", Int64}, {"V", Float64}}, nil)
	vals := map[int64][]float64{1: {2, 4, 6}, 2: {10}}
	for g, vs := range vals {
		for _, v := range vs {
			if err := tab.AppendRow(g, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	tab.Seal()
	e := NewEngine(nil)
	check := func(kind AggKind, want map[int64]float64) {
		rows, err := e.Aggregate(tab, nil, "G", "V", kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if math.Abs(r.Value-want[r.Group]) > 1e-9 {
				t.Errorf("kind %d group %d = %f, want %f", kind, r.Group, r.Value, want[r.Group])
			}
		}
	}
	check(Sum, map[int64]float64{1: 12, 2: 10})
	check(Avg, map[int64]float64{1: 4, 2: 10})
	check(Min, map[int64]float64{1: 2, 2: 10})
	check(Max, map[int64]float64{1: 6, 2: 10})
	check(Count, map[int64]float64{1: 3, 2: 1})
}

func TestJoinMatchesReference(t *testing.T) {
	orders, items := testTables(t)
	e := NewEngine(nil)
	res, err := e.Join(orders, items, "ORDER_ID", "ORDER_ID")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != items.Rows() {
		t.Fatalf("join rows = %d, want %d (every item has one order)",
			res.Rows(), items.Rows())
	}
	lid, err := res.IntCol("ORDER.ORDER_ID")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := res.IntCol("ITEM.ORDER_ID")
	if err != nil {
		t.Fatal(err)
	}
	for i := range lid {
		if lid[i] != rid[i] {
			t.Fatalf("join key mismatch at %d: %d vs %d", i, lid[i], rid[i])
		}
	}
}

func TestJoinWithNonMatchingRows(t *testing.T) {
	a := NewTable("A", []ColDef{{"K", Int64}, {"X", Int64}}, nil)
	b := NewTable("B", []ColDef{{"K", Int64}, {"Y", Int64}}, nil)
	for i := int64(0); i < 10; i++ {
		_ = a.AppendRow(i, i*i)
	}
	for i := int64(5); i < 15; i++ {
		_ = b.AppendRow(i, i+100)
	}
	a.Seal()
	b.Seal()
	e := NewEngine(nil)
	res, err := e.Join(a, b, "K", "K")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 5 {
		t.Fatalf("join rows = %d, want 5 (keys 5..9)", res.Rows())
	}
}

// Property: Select row count equals a direct scan count, for random data
// and thresholds.
func TestSelectCountProperty(t *testing.T) {
	f := func(vals []int16, thr int16) bool {
		tab := NewTable("P", []ColDef{{"V", Int64}}, nil)
		want := 0
		for _, v := range vals {
			_ = tab.AppendRow(int64(v))
			if int64(v) > int64(thr) {
				want++
			}
		}
		tab.Seal()
		e := NewEngine(nil)
		res, err := e.Select(tab, []Pred{{Col: "V", Op: GT, Int: int64(thr)}}, nil)
		return err == nil && res.Rows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Aggregate(Count) totals equal the selected row count.
func TestAggregateCountProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		tab := NewTable("P", []ColDef{{"G", Int64}, {"V", Float64}}, nil)
		for _, k := range keys {
			_ = tab.AppendRow(int64(k%13), 1.0)
		}
		tab.Seal()
		e := NewEngine(nil)
		rows, err := e.Aggregate(tab, nil, "G", "", Count)
		if err != nil {
			return false
		}
		total := int64(0)
		for _, r := range rows {
			total += r.Count
		}
		return total == int64(len(keys))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAppendRowTypeChecks(t *testing.T) {
	tab := NewTable("T", []ColDef{{"A", Int64}, {"B", Float64}}, nil)
	if err := tab.AppendRow(int64(1), 2.0); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(1.0, 2.0); err == nil {
		t.Fatal("want type error for float in Int64 column")
	}
	if err := tab.AppendRow(int64(1)); err == nil {
		t.Fatal("want arity error")
	}
}

func TestInstrumentedQueriesEmitFPForDecimalColumns(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	tab := NewTable("T", []ColDef{{"G", Int64}, {"V", Float64}}, cpu)
	for i := int64(0); i < 2000; i++ {
		_ = tab.AppendRow(i%50, float64(i)*0.5)
	}
	tab.Seal()
	e := NewEngine(cpu)
	if _, err := e.Aggregate(tab, nil, "G", "V", Sum); err != nil {
		t.Fatal(err)
	}
	k := cpu.Counts()
	if k.FPInstrs == 0 {
		t.Fatal("decimal aggregation should emit some FP instructions")
	}
	if k.IntInstrs < k.FPInstrs {
		t.Error("relational queries should remain integer-dominated")
	}
	if k.Instructions() == 0 || k.L1D.Accesses == 0 {
		t.Fatal("no simulated activity")
	}
}
