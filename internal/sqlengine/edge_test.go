package sqlengine

import (
	"testing"
)

func TestEmptyTableQueries(t *testing.T) {
	tab := NewTable("E", []ColDef{{"K", Int64}, {"V", Float64}}, nil)
	tab.Seal()
	e := NewEngine(nil)
	res, err := e.Select(tab, []Pred{{Col: "K", Op: GT, Int: 5}}, nil)
	if err != nil || res.Rows() != 0 {
		t.Fatalf("select on empty: %v rows=%d", err, res.Rows())
	}
	rows, err := e.Aggregate(tab, nil, "K", "V", Sum)
	if err != nil || len(rows) != 0 {
		t.Fatalf("aggregate on empty: %v rows=%d", err, len(rows))
	}
	j, err := e.Join(tab, tab, "K", "K")
	if err != nil || j.Rows() != 0 {
		t.Fatalf("self-join on empty: %v rows=%d", err, j.Rows())
	}
}

func TestAllComparisonOperators(t *testing.T) {
	tab := NewTable("T", []ColDef{{"V", Int64}}, nil)
	for i := int64(0); i < 10; i++ {
		_ = tab.AppendRow(i)
	}
	tab.Seal()
	e := NewEngine(nil)
	cases := map[CmpOp]int{EQ: 1, NE: 9, LT: 5, LE: 6, GT: 4, GE: 5}
	for op, want := range cases {
		res, err := e.Select(tab, []Pred{{Col: "V", Op: op, Int: 5}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows() != want {
			t.Errorf("op %d: %d rows, want %d", op, res.Rows(), want)
		}
	}
}

func TestFloatPredicates(t *testing.T) {
	tab := NewTable("T", []ColDef{{"P", Float64}}, nil)
	for i := 0; i < 100; i++ {
		_ = tab.AppendRow(float64(i) / 10)
	}
	tab.Seal()
	e := NewEngine(nil)
	res, err := e.Select(tab, []Pred{{Col: "P", Op: GE, Float: 5.0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 50 {
		t.Errorf("rows = %d, want 50", res.Rows())
	}
}

func TestAggregateOnIntColumn(t *testing.T) {
	tab := NewTable("T", []ColDef{{"G", Int64}, {"N", Int64}}, nil)
	_ = tab.AppendRow(int64(1), int64(10))
	_ = tab.AppendRow(int64(1), int64(20))
	tab.Seal()
	e := NewEngine(nil)
	rows, err := e.Aggregate(tab, nil, "G", "N", Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Value != 30 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestAggregateErrors(t *testing.T) {
	tab := NewTable("T", []ColDef{{"G", Int64}, {"V", Float64}}, nil)
	_ = tab.AppendRow(int64(1), 1.0)
	tab.Seal()
	e := NewEngine(nil)
	if _, err := e.Aggregate(tab, nil, "V", "G", Sum); err == nil {
		t.Error("grouping by a Float64 column must fail")
	}
	if _, err := e.Aggregate(tab, nil, "G", "NOPE", Sum); err == nil {
		t.Error("unknown aggregate column must fail")
	}
	if _, err := e.Join(tab, tab, "V", "V"); err == nil {
		t.Error("joining on a Float64 column must fail")
	}
}

func TestJoinDuplicateKeysFanOut(t *testing.T) {
	a := NewTable("A", []ColDef{{"K", Int64}}, nil)
	b := NewTable("B", []ColDef{{"K", Int64}}, nil)
	for i := 0; i < 3; i++ {
		_ = a.AppendRow(int64(1))
	}
	for i := 0; i < 2; i++ {
		_ = b.AppendRow(int64(1))
	}
	a.Seal()
	b.Seal()
	e := NewEngine(nil)
	res, err := e.Join(a, b, "K", "K")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 6 {
		t.Fatalf("3×2 duplicate join = %d rows, want 6", res.Rows())
	}
}

func TestSelectAfterSelectComposes(t *testing.T) {
	tab := NewTable("T", []ColDef{{"A", Int64}, {"B", Int64}}, nil)
	for i := int64(0); i < 100; i++ {
		_ = tab.AppendRow(i, i%10)
	}
	tab.Seal()
	e := NewEngine(nil)
	first, err := e.Select(tab, []Pred{{Col: "A", Op: GE, Int: 50}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Select(first, []Pred{{Col: "B", Op: EQ, Int: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Rows() != 5 {
		t.Fatalf("composed selects = %d rows, want 5 (53,63,73,83,93)", second.Rows())
	}
}
