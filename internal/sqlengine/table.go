package sqlengine

import (
	"fmt"

	"repro/internal/sim"
)

// ColType is a column's storage type. The e-commerce schema (paper Table 3)
// needs integers (IDs, dates) and decimals (NUMBER(10,2), NUMBER(14,6)).
type ColType int

// Column types.
const (
	Int64 ColType = iota
	Float64
)

// ColDef declares one column of a table schema.
type ColDef struct {
	Name string
	Type ColType
}

// Column is one typed column vector.
type Column struct {
	Def    ColDef
	Ints   []int64
	Floats []float64
}

func (c *Column) width() int { return 8 }

// Table is a named columnar table. The columnar layout matches the
// realtime-analytics engines the paper tests (Impala, Shark): predicate
// scans stream one column, aggregations and joins touch only the columns
// they need.
type Table struct {
	Name   string
	cols   []*Column
	byName map[string]int
	rows   int

	region sim.DataRegion
	cpu    *sim.CPU
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema []ColDef, cpu *sim.CPU) *Table {
	t := &Table{Name: name, byName: make(map[string]int, len(schema)), cpu: cpu}
	for i, d := range schema {
		t.cols = append(t.cols, &Column{Def: d})
		t.byName[d.Name] = i
	}
	return t
}

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// Cols returns the column definitions in order.
func (t *Table) Cols() []ColDef {
	out := make([]ColDef, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Def
	}
	return out
}

// Bytes returns the modeled storage footprint.
func (t *Table) Bytes() int { return t.rows * 8 * len(t.cols) }

// column returns the named column or an error naming the table.
func (t *Table) column(name string) (*Column, error) {
	i, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("sqlengine: table %s has no column %q", t.Name, name)
	}
	return t.cols[i], nil
}

// AppendRow appends one row; vals must match the schema arity and types
// (int64 for Int64 columns, float64 for Float64 columns).
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("sqlengine: %s expects %d values, got %d", t.Name, len(t.cols), len(vals))
	}
	for i, v := range vals {
		c := t.cols[i]
		switch c.Def.Type {
		case Int64:
			x, ok := v.(int64)
			if !ok {
				return fmt.Errorf("sqlengine: column %s.%s wants int64, got %T", t.Name, c.Def.Name, v)
			}
			c.Ints = append(c.Ints, x)
		case Float64:
			x, ok := v.(float64)
			if !ok {
				return fmt.Errorf("sqlengine: column %s.%s wants float64, got %T", t.Name, c.Def.Name, v)
			}
			c.Floats = append(c.Floats, x)
		}
	}
	t.rows++
	return nil
}

// Seal allocates the table's simulated storage region once loading is done.
// Appends after Seal are allowed but keep the original region size.
func (t *Table) Seal() {
	t.region = t.cpu.Alloc("sql.table."+t.Name, uint64(t.Bytes())+64)
}

// IntCol returns the backing slice of an Int64 column (read-only use).
func (t *Table) IntCol(name string) ([]int64, error) {
	c, err := t.column(name)
	if err != nil {
		return nil, err
	}
	if c.Def.Type != Int64 {
		return nil, fmt.Errorf("sqlengine: column %s.%s is not Int64", t.Name, name)
	}
	return c.Ints, nil
}

// FloatCol returns the backing slice of a Float64 column (read-only use).
func (t *Table) FloatCol(name string) ([]float64, error) {
	c, err := t.column(name)
	if err != nil {
		return nil, err
	}
	if c.Def.Type != Float64 {
		return nil, fmt.Errorf("sqlengine: column %s.%s is not Float64", t.Name, name)
	}
	return c.Floats, nil
}

// colOffset returns the simulated byte offset of row i in column col.
func (t *Table) colOffset(colIdx, i int) uint64 {
	return uint64(colIdx*t.rows*8 + i*8)
}
