// Package sqlengine is a small columnar relational engine — the
// repository's substitute for the paper's Hive / Impala / MySQL stacks
// running the relational-query workloads (DESIGN.md §1). It provides the
// three operators those workloads compile to: filtered projection scans
// (Select Query), hash aggregation (Aggregate Query), and hash equi-join
// (Join Query), over typed column vectors.
package sqlengine

import (
	"fmt"

	"repro/internal/sim"
)

// CmpOp is a predicate comparison operator.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) evalInt(a, b int64) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

func (op CmpOp) evalFloat(a, b float64) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

// Pred is one column-vs-constant predicate.
type Pred struct {
	Col   string
	Op    CmpOp
	Int   int64
	Float float64
}

// AggKind selects the aggregate function.
type AggKind int

// Aggregate functions.
const (
	Count AggKind = iota
	Sum
	Avg
	Min
	Max
)

// Engine executes queries; it carries the characterization handles.
type Engine struct {
	cpu      *sim.CPU
	scanCode *sim.CodeRegion
	aggCode  *sim.CodeRegion
	joinCode *sim.CodeRegion
	planCode *sim.CodeRegion
	rs       uint64
}

// NewEngine builds an engine. cpu may be nil.
func NewEngine(cpu *sim.CPU) *Engine {
	return &Engine{
		cpu:      cpu,
		scanCode: cpu.NewCodeRegion("sql.scan", 192<<10),
		aggCode:  cpu.NewCodeRegion("sql.agg", 176<<10),
		joinCode: cpu.NewCodeRegion("sql.join", 208<<10),
		planCode: cpu.NewCodeRegion("sql.plan", 128<<10),
		rs:       0xb5ad4eceda1ce2a9,
	}
}

func (e *Engine) codeOff(r *sim.CodeRegion) uint64 {
	e.rs ^= e.rs << 13
	e.rs ^= e.rs >> 7
	e.rs ^= e.rs << 17
	return e.rs % r.Size()
}

// plan charges the per-query planning/dispatch overhead.
func (e *Engine) plan() {
	e.cpu.Code(e.planCode, e.codeOff(e.planCode), 896)
	e.cpu.IntOps(600)
	e.cpu.Branches(140)
}

// matchRows evaluates the predicate conjunction and returns selected rows.
func (e *Engine) matchRows(t *Table, preds []Pred) ([]int, error) {
	sel := make([]int, 0, t.rows)
	for i := 0; i < t.rows; i++ {
		sel = append(sel, i)
	}
	for _, p := range preds {
		c, err := t.column(p.Col)
		if err != nil {
			return nil, err
		}
		colIdx := t.byName[p.Col]
		kept := sel[:0]
		n := len(sel)
		// Columnar scan: stream the predicate column. The per-row integer
		// budget models Hive's interpreted expression evaluation and row
		// container bookkeeping (dozens of instructions per row), not a
		// vectorized native scan.
		const batch = 512
		for s := 0; s < n; s += batch {
			b := batch
			if n-s < b {
				b = n - s
			}
			e.cpu.Code(e.scanCode, e.codeOff(e.scanCode), 576)
			e.cpu.LoadR(t.region, t.colOffset(colIdx, s), b*8)
			e.cpu.IntOps(44 * b)
			e.cpu.Branches(10 * b)
		}
		for _, i := range sel {
			var keep bool
			if c.Def.Type == Int64 {
				keep = p.Op.evalInt(c.Ints[i], p.Int)
			} else {
				keep = p.Op.evalFloat(c.Floats[i], p.Float)
				e.cpu.FPOps(1)
			}
			if keep {
				kept = append(kept, i)
			}
		}
		sel = kept
	}
	return sel, nil
}

// Select executes SELECT proj... FROM t WHERE preds (conjunction),
// materializing a result table.
func (e *Engine) Select(t *Table, preds []Pred, proj []string) (*Table, error) {
	e.plan()
	sel, err := e.matchRows(t, preds)
	if err != nil {
		return nil, err
	}
	if len(proj) == 0 {
		for _, c := range t.cols {
			proj = append(proj, c.Def.Name)
		}
	}
	schema := make([]ColDef, len(proj))
	srcCols := make([]*Column, len(proj))
	for j, name := range proj {
		c, err := t.column(name)
		if err != nil {
			return nil, err
		}
		schema[j] = c.Def
		srcCols[j] = c
	}
	out := NewTable(t.Name+"_sel", schema, e.cpu)
	for j, c := range srcCols {
		oc := out.cols[j]
		for _, i := range sel {
			if c.Def.Type == Int64 {
				oc.Ints = append(oc.Ints, c.Ints[i])
			} else {
				oc.Floats = append(oc.Floats, c.Floats[i])
			}
		}
	}
	out.rows = len(sel)
	out.Seal()
	// Materialization stores.
	e.cpu.StoreR(out.region, 0, out.Bytes())
	return out, nil
}

// AggRow is one aggregation result group.
type AggRow struct {
	Group int64
	Value float64
	Count int64
}

// Aggregate executes SELECT groupBy, AGG(aggCol) FROM t WHERE preds GROUP
// BY groupBy. For Count, aggCol may be empty. groupBy must be Int64.
func (e *Engine) Aggregate(t *Table, preds []Pred, groupBy, aggCol string, kind AggKind) ([]AggRow, error) {
	e.plan()
	sel, err := e.matchRows(t, preds)
	if err != nil {
		return nil, err
	}
	gcol, err := t.IntCol(groupBy)
	if err != nil {
		return nil, err
	}
	var ints []int64
	var floats []float64
	if kind != Count {
		c, err := t.column(aggCol)
		if err != nil {
			return nil, err
		}
		if c.Def.Type == Int64 {
			ints = c.Ints
		} else {
			floats = c.Floats
		}
	}
	gIdx := t.byName[groupBy]
	type acc struct {
		sum   float64
		count int64
		min   float64
		max   float64
	}
	groups := make(map[int64]*acc)
	order := []int64{}
	// Hash-aggregation table region: sized by a guess of distinct keys,
	// probed per row (the scattered-access component of Aggregate Query).
	tblRegion := e.cpu.Alloc("sql.agg.table", uint64(t.rows)*4+4096)
	for n, i := range sel {
		if n%64 == 0 {
			e.cpu.Code(e.aggCode, e.codeOff(e.aggCode), 768)
		}
		g := gcol[i]
		e.cpu.LoadR(t.region, t.colOffset(gIdx, i), 8)
		e.cpu.LoadR(tblRegion, uint64(g*2654435761)%maxU64(tblRegion.Size, 1), 16)
		e.cpu.IntOps(62)
		e.cpu.Branches(13)
		a := groups[g]
		if a == nil {
			a = &acc{min: 1e308, max: -1e308}
			groups[g] = a
			order = append(order, g)
		}
		var v float64
		switch {
		case kind == Count:
		case ints != nil:
			v = float64(ints[i])
		default:
			v = floats[i]
		}
		a.sum += v
		a.count++
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
		e.cpu.FPOps(2)
		e.cpu.StoreR(tblRegion, uint64(g*2654435761)%maxU64(tblRegion.Size, 1), 24)
	}
	out := make([]AggRow, 0, len(order))
	for _, g := range order {
		a := groups[g]
		row := AggRow{Group: g, Count: a.count}
		switch kind {
		case Count:
			row.Value = float64(a.count)
		case Sum:
			row.Value = a.sum
		case Avg:
			row.Value = a.sum / float64(a.count)
		case Min:
			row.Value = a.min
		case Max:
			row.Value = a.max
		}
		out = append(out, row)
	}
	return out, nil
}

// Join executes SELECT * FROM left JOIN right ON left.lkey = right.rkey
// via a build-probe hash join (build on the smaller side is the planner's
// job; this engine always builds on left, as the workloads put the smaller
// ORDER table on the left). Output columns are prefixed with the source
// table name (NAME.col).
func (e *Engine) Join(left, right *Table, lkey, rkey string) (*Table, error) {
	e.plan()
	lcol, err := left.IntCol(lkey)
	if err != nil {
		return nil, err
	}
	rcol, err := right.IntCol(rkey)
	if err != nil {
		return nil, err
	}
	// Build.
	build := make(map[int64][]int, len(lcol))
	buildRegion := e.cpu.Alloc("sql.join.build", uint64(left.rows)*16+4096)
	lkIdx := left.byName[lkey]
	for i, k := range lcol {
		build[k] = append(build[k], i)
		if i%64 == 0 {
			e.cpu.Code(e.joinCode, e.codeOff(e.joinCode), 768)
		}
		e.cpu.LoadR(left.region, left.colOffset(lkIdx, i), 8)
		e.cpu.StoreR(buildRegion, uint64(k*2654435761)%maxU64(buildRegion.Size, 1), 16)
		e.cpu.IntOps(48)
		e.cpu.Branches(11)
	}
	// Output schema: left cols then right cols, prefixed.
	var schema []ColDef
	for _, c := range left.cols {
		schema = append(schema, ColDef{Name: left.Name + "." + c.Def.Name, Type: c.Def.Type})
	}
	for _, c := range right.cols {
		schema = append(schema, ColDef{Name: right.Name + "." + c.Def.Name, Type: c.Def.Type})
	}
	out := NewTable(fmt.Sprintf("%s_join_%s", left.Name, right.Name), schema, e.cpu)
	// Probe.
	rkIdx := right.byName[rkey]
	for j, k := range rcol {
		if j%64 == 0 {
			e.cpu.Code(e.joinCode, e.codeOff(e.joinCode), 768)
		}
		e.cpu.LoadR(right.region, right.colOffset(rkIdx, j), 8)
		e.cpu.LoadR(buildRegion, uint64(k*2654435761)%maxU64(buildRegion.Size, 1), 16)
		e.cpu.IntOps(70)
		e.cpu.Branches(16)
		e.cpu.FPOps(1) // decimal column handling on the probe side
		for _, i := range build[k] {
			col := 0
			for _, c := range left.cols {
				oc := out.cols[col]
				if c.Def.Type == Int64 {
					oc.Ints = append(oc.Ints, c.Ints[i])
				} else {
					oc.Floats = append(oc.Floats, c.Floats[i])
				}
				col++
			}
			for _, c := range right.cols {
				oc := out.cols[col]
				if c.Def.Type == Int64 {
					oc.Ints = append(oc.Ints, c.Ints[j])
				} else {
					oc.Floats = append(oc.Floats, c.Floats[j])
				}
				col++
			}
			out.rows++
			e.cpu.IntOps(8 * len(out.cols))
		}
	}
	out.Seal()
	e.cpu.StoreR(out.region, 0, out.Bytes())
	return out, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
