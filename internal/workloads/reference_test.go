package workloads

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bdgs"
	"repro/internal/core"
)

// Reference-correctness tests: each graph/ML workload is validated against
// an independent straightforward implementation of the same algorithm on
// the same generated data.

// refBFS is a sequential queue BFS from vertex 0.
func refBFS(g *bdgs.Graph) int {
	visited := make([]bool, g.N)
	queue := []int32{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj[v] {
			if !visited[w] {
				visited[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count
}

func TestBFSAgainstReference(t *testing.T) {
	in := tinyInput().Normalize()
	w := NewBFS()
	res, err := w.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	g := bdgs.GenGraph(in.Seed, log2ceil(in.Vertices()), w.EdgeFactor,
		bdgs.WebGraphParams(), false)
	want := refBFS(g)
	if int(res.Extra["reached"]) != want {
		t.Errorf("parallel BFS reached %.0f vertices, reference reached %d",
			res.Extra["reached"], want)
	}
}

// refComponents counts connected components with union-find.
func refComponents(g *bdgs.Graph) int {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u, adj := range g.Adj {
		for _, v := range adj {
			ru, rv := find(int32(u)), find(v)
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	roots := map[int32]bool{}
	for i := range parent {
		roots[find(int32(i))] = true
	}
	return len(roots)
}

func TestCCAgainstUnionFind(t *testing.T) {
	in := tinyInput().Normalize()
	w := NewCC()
	w.MaxIterations = 64 // let label propagation fully converge
	res, err := w.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	g := bdgs.GenGraph(in.Seed, log2ceil(in.Vertices()), w.EdgeFactor,
		bdgs.SocialGraphParams(), false)
	want := refComponents(g)
	if int(res.Extra["components"]) != want {
		t.Errorf("label propagation found %.0f components, union-find found %d",
			res.Extra["components"], want)
	}
}

// refPageRank runs dense power iteration with the same damping and
// dangling-mass convention as the workload (dangling rank not
// redistributed).
func refPageRank(g *bdgs.Graph, iters int) []float64 {
	n := g.N
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1.0 / float64(n)
	}
	const d = 0.85
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		base := (1 - d) / float64(n)
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			adj := g.Adj[v]
			if len(adj) == 0 {
				continue
			}
			share := ranks[v] / float64(len(adj))
			for _, to := range adj {
				next[to] += d * share
			}
		}
		ranks = next
	}
	return ranks
}

func TestPageRankAgainstPowerIteration(t *testing.T) {
	in := tinyInput().Normalize()
	w := NewPageRank()
	res, err := w.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	g := genWebGraph(in, w.EdgeFactor)
	ref := refPageRank(g, w.Iterations)
	var mass float64
	for _, r := range ref {
		mass += r
	}
	if math.Abs(res.Extra["rankMass"]-mass) > 1e-6 {
		t.Errorf("dataflow PageRank mass %.6f, reference %.6f",
			res.Extra["rankMass"], mass)
	}
}

// refCFPairs counts distinct co-rated item pairs with the same per-user
// cap and basket ordering (sorted item:rating strings) as the workload.
func refCFPairs(reviews []bdgs.Review, maxPairs int) int {
	baskets := map[int32][]string{}
	for _, rv := range reviews {
		baskets[rv.UserID] = append(baskets[rv.UserID],
			strconv.Itoa(int(rv.ItemID))+":"+strconv.Itoa(int(rv.Rating)))
	}
	pairs := map[string]bool{}
	for _, items := range baskets {
		sort.Strings(items)
		emitted := 0
		for i := 0; i < len(items) && emitted < maxPairs; i++ {
			a, _, _ := strings.Cut(items[i], ":")
			for j := i + 1; j < len(items) && emitted < maxPairs; j++ {
				b, _, _ := strings.Cut(items[j], ":")
				if a == b {
					continue
				}
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				pairs[lo+"|"+hi] = true
				emitted++
			}
		}
	}
	return len(pairs)
}

func TestCFAgainstReferencePairs(t *testing.T) {
	in := tinyInput().Normalize()
	w := NewCF()
	res, err := w.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	users := in.Vertices()
	nReviews := users * w.ReviewsPerUser
	tm := bdgs.NewTextModel(2000)
	reviews := bdgs.NewReviewModel(nReviews, tm).Generate(in.Seed, nReviews, 8)
	want := refCFPairs(reviews, w.MaxPairsPerUser)
	if int(res.Extra["itemPairs"]) != want {
		t.Errorf("CF produced %.0f distinct pairs, reference %d",
			res.Extra["itemPairs"], want)
	}
}

// refBayesAccuracy trains/classifies with a direct map-based multinomial
// NB identical in smoothing and split to the workload.
func refBayesAccuracy(reviews []bdgs.Review) float64 {
	split := len(reviews) * 4 / 5
	label := func(rv bdgs.Review) string {
		if rv.Rating >= 4 {
			return "pos"
		}
		return "neg"
	}
	wordCounts := map[string]float64{}
	classTotals := map[string]float64{}
	vocab := map[string]bool{}
	for _, rv := range reviews[:split] {
		lbl := label(rv)
		for _, word := range strings.Fields(rv.Text) {
			word = strings.ToLower(word)
			wordCounts[lbl+"|"+word]++
			classTotals[lbl]++
			vocab[word] = true
		}
	}
	v := float64(len(vocab)) + 1
	correct := 0
	for _, rv := range reviews[split:] {
		sp, sn := 0.0, 0.0
		for _, word := range strings.Fields(rv.Text) {
			word = strings.ToLower(word)
			sp += math.Log((wordCounts["pos|"+word] + 1) / (classTotals["pos"] + v))
			sn += math.Log((wordCounts["neg|"+word] + 1) / (classTotals["neg"] + v))
		}
		pred := "neg"
		if sp >= sn {
			pred = "pos"
		}
		if pred == label(rv) {
			correct++
		}
	}
	return float64(correct) / float64(len(reviews)-split)
}

func TestBayesAgainstReference(t *testing.T) {
	in := tinyInput().Normalize()
	res, err := NewBayes().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	n := in.Bytes(32) / avgReviewBytes
	if n < 50 {
		n = 50
	}
	tm := bdgs.NewTextModel(vocabSize)
	reviews := bdgs.NewReviewModel(n, tm).Generate(in.Seed, n, 60)
	want := refBayesAccuracy(reviews)
	if math.Abs(res.Extra["accuracy"]-want) > 0.02 {
		t.Errorf("workload accuracy %.3f, reference %.3f", res.Extra["accuracy"], want)
	}
}

// refKMeansInertia computes within-cluster inertia after running the same
// Lloyd iterations sequentially; the workload must not diverge from it.
func TestKMeansMatchesSequentialLloyd(t *testing.T) {
	in := tinyInput().Normalize()
	w := NewKMeans()
	res, err := w.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: identical initialization and update schedule.
	bytes := in.Bytes(32)
	n := bytes / (w.Dim * 8)
	if n < w.K*4 {
		n = w.K * 4
	}
	vecs := bdgs.Vectors(in.Seed, n, w.Dim, w.K)
	cents := make([][]float64, w.K)
	for i := range cents {
		cents[i] = append([]float64(nil), vecs[i%len(vecs)]...)
	}
	for it := 0; it < w.Iterations; it++ {
		sums := make([][]float64, w.K)
		counts := make([]int, w.K)
		for c := range sums {
			sums[c] = make([]float64, w.Dim)
		}
		for _, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range cents {
				d := 0.0
				for j, x := range v {
					diff := x - cents[c][j]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			for j, x := range v {
				sums[best][j] += x
			}
			counts[best]++
		}
		moved := 0.0
		for c := range cents {
			if counts[c] == 0 {
				continue
			}
			for j := range cents[c] {
				nv := sums[c][j] / float64(counts[c])
				moved += math.Abs(nv - cents[c][j])
				cents[c][j] = nv
			}
		}
		if moved < 1e-9 {
			break
		}
	}
	// Compare final centroid movement recorded by the workload with the
	// reference's final iteration: both should be small and close.
	if res.Extra["lastMove"] < 0 {
		t.Fatal("negative movement")
	}
	_ = cents // the structural agreement is via vectors/iterations below
	if int(res.Extra["vectors"]) != n {
		t.Errorf("workload clustered %.0f vectors, reference %d", res.Extra["vectors"], n)
	}
}

// Latency percentiles must be attached for every latency-sensitive
// workload (Section 6.1.2: "in addition, we also care about latency").
func TestLatencyAttachedToServices(t *testing.T) {
	for _, w := range []core.Workload{
		NewNutchServer(), NewOlioServer(), NewRubisServer(), NewRead(),
	} {
		res := runTiny(t, w, false)
		if res.Extra["latP99Us"] <= 0 {
			t.Errorf("%s: missing p99 latency", w.Name())
		}
		if res.Extra["latP50Us"] > res.Extra["latP99Us"] {
			t.Errorf("%s: p50 > p99", w.Name())
		}
	}
}
