package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/webserve"
)

// OlioServerWorkload is Table 4 row "Olio Server": the social-network
// online service (home timelines, event posts, profiles) over a
// Facebook-like friendship graph.
type OlioServerWorkload struct {
	meta
	// GraphBits sizes the user graph at 2^GraphBits users (default 12,
	// matching the 4,039-user Facebook seed's magnitude).
	GraphBits int
}

// NewOlioServer constructs the workload.
func NewOlioServer() *OlioServerWorkload {
	return &OlioServerWorkload{meta: meta{
		name: "Olio Server", class: core.OnlineService, metric: core.RPS,
		stack: "Apache+MySQL", dtype: "unstructured", dsource: "graph",
		baseline: "100 req/s",
	}, GraphBits: 12}
}

// Run implements core.Workload.
func (w *OlioServerWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	g := bdgs.GenGraph(in.Seed, w.GraphBits, 11, bdgs.SocialGraphParams(), false)
	svc := webserve.NewSocialService(g.Adj, in.CPU)
	rng := rand.New(rand.NewSource(in.Seed + 41))
	z := rand.NewZipf(rng, 1.2, 4, uint64(g.N-1))
	// Prepopulate: three events per user (untimed).
	for u := 0; u < g.N; u++ {
		for e := 0; e < 3; e++ {
			if _, err := svc.AddEvent(int32(u), "status update", int64(u*3+e)); err != nil {
				return core.Result{}, err
			}
		}
	}
	n := in.Requests()
	in.CPU.ResetStats() // prepopulation is untimed warmup

	var lat core.LatencyRecorder
	start := time.Now()
	var served int64
	now := int64(1 << 20)
	for i := 0; i < n; i++ {
		u := int32(z.Uint64())
		var err error
		reqStart := time.Now()
		switch x := rng.Float64(); {
		case x < 0.70:
			_, err = svc.Home(u, 20)
		case x < 0.90:
			now++
			_, err = svc.AddEvent(u, "fresh update", now)
		default:
			_, _, err = svc.Profile(u)
		}
		lat.Record(time.Since(reqStart))
		if err != nil {
			return core.Result{}, fmt.Errorf("olio request %d: %w", i, err)
		}
		served++
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: served, UnitName: "reqs",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"users": float64(g.N)},
	}
	lat.Attach(&r)
	r.Finish()
	return r, nil
}

// KMeansWorkload is Table 4 row "Kmeans": Lloyd's algorithm over
// mixture-generated feature vectors on the dataflow (Spark) engine. It is
// the workload whose L3 MPKI moves most with data volume in the paper
// (0.8 small → 2.0 large, a 2.5× gap — Figure 2's callout).
type KMeansWorkload struct {
	meta
	// Dim and K are the vector dimensionality and cluster count.
	Dim, K int
	// Iterations of Lloyd's algorithm (default 5).
	Iterations int
}

// NewKMeans constructs the workload.
func NewKMeans() *KMeansWorkload {
	return &KMeansWorkload{meta: meta{
		name: "Kmeans", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Spark", dtype: "unstructured", dsource: "graph",
		baseline: "32 GB vectors",
	}, Dim: 16, K: 8, Iterations: 5}
}

// centAccum accumulates one cluster's running sum for the update step.
type centAccum struct {
	sum []float64
	n   int64
}

// Run implements core.Workload.
func (w *KMeansWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	bytes := in.Bytes(32)
	n := bytes / (w.Dim * 8)
	if n < w.K*4 {
		n = w.K * 4
	}
	vecs := bdgs.Vectors(in.Seed, n, w.Dim, w.K)
	k := newKernel(in.CPU, "kmeans.kernel", 4<<10, 0x4b3)
	vecRegion := in.CPU.Alloc("kmeans.vectors", uint64(n*w.Dim*8)+64)
	centRegion := in.CPU.Alloc("kmeans.centroids", uint64(w.K*w.Dim*8)+64)

	// Initialize centroids from the first K vectors.
	cents := make([][]float64, w.K)
	for i := range cents {
		cents[i] = append([]float64(nil), vecs[i%len(vecs)]...)
	}
	ctx := dataflow.NewContext(in.Workers, in.CPU)
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	ds := dataflow.Parallelize(ctx, ids, 0, w.Dim*8)

	start := time.Now()
	iters := 0
	var moved float64
	for it := 0; it < w.Iterations; it++ {
		iters++
		assigned := dataflow.Map(ds, 16, func(i int32) dataflow.Pair[int, int32] {
			v := vecs[i]
			k.enter(512)
			k.cpu.LoadR(vecRegion, uint64(i)*uint64(w.Dim*8), w.Dim*8)
			k.cpu.LoadR(centRegion, 0, w.K*w.Dim*8)
			// Per (cluster, dimension): fused distance FP work plus the
			// scalar loop/index/bounds integer overhead of JVM-style code,
			// which keeps even K-means integer-dominated with an int/FP
			// ratio near the suite's low end (paper Figure 4).
			k.cpu.FPOps(w.K * w.Dim)
			k.cpu.IntOps(10 * w.K * w.Dim)
			k.cpu.Branches(w.K * w.Dim)
			best, bestD := 0, math.Inf(1)
			for c := range cents {
				d := 0.0
				for j, x := range v {
					diff := x - cents[c][j]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			return dataflow.Pair[int, int32]{Key: best, Val: i}
		})
		// Update step: accumulate sums per cluster.
		sums := dataflow.ReduceByKey(
			dataflow.Map(assigned, w.Dim*8+16, func(p dataflow.Pair[int, int32]) dataflow.Pair[int, centAccum] {
				acc := centAccum{sum: append([]float64(nil), vecs[p.Val]...), n: 1}
				return dataflow.Pair[int, centAccum]{Key: p.Key, Val: acc}
			}), 0,
			func(a, b centAccum) centAccum {
				out := centAccum{sum: append([]float64(nil), a.sum...), n: a.n + b.n}
				for j, x := range b.sum {
					out.sum[j] += x
				}
				return out
			})
		moved = 0
		for _, kv := range sums.Collect() {
			c := kv.Key
			for j := range cents[c] {
				nv := kv.Val.sum[j] / float64(kv.Val.n)
				moved += math.Abs(nv - cents[c][j])
				cents[c][j] = nv
			}
			k.cpu.FPOps(2 * w.Dim)
			k.cpu.StoreR(centRegion, uint64(c*w.Dim*8), w.Dim*8)
		}
		if moved < 1e-9 {
			break
		}
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(bytes), UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"vectors":    float64(n),
			"iterations": float64(iters),
			"lastMove":   moved,
		},
	}
	r.Finish()
	return r, nil
}

// CCWorkload is Table 4 row "Connected Components": min-label propagation
// over a Facebook-like undirected graph on the dataflow engine.
type CCWorkload struct {
	meta
	// EdgeFactor is edges per vertex (default 8).
	EdgeFactor int
	// MaxIterations bounds label propagation (default 8).
	MaxIterations int
}

// NewCC constructs the workload.
func NewCC() *CCWorkload {
	return &CCWorkload{meta: meta{
		name: "Connected Components", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Spark", dtype: "unstructured", dsource: "graph",
		baseline: "2^15 vertices",
	}, EdgeFactor: 8, MaxIterations: 8}
}

// Run implements core.Workload.
func (w *CCWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := in.Vertices()
	g := bdgs.GenGraph(in.Seed, log2ceil(n), w.EdgeFactor, bdgs.SocialGraphParams(), false)
	k := newKernel(in.CPU, "cc.kernel", 4<<10, 0xcc1)
	labelRegion := in.CPU.Alloc("cc.labels", uint64(n)*4+64)
	adjRegion := in.CPU.Alloc("cc.adj", uint64(g.BytesApprox())+64)

	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	ctx := dataflow.NewContext(in.Workers, in.CPU)
	vertices := make([]int32, n)
	for i := range vertices {
		vertices[i] = int32(i)
	}
	vds := dataflow.Parallelize(ctx, vertices, 0, 4)

	start := time.Now()
	iters := 0
	for it := 0; it < w.MaxIterations; it++ {
		iters++
		proposals := dataflow.FlatMap(vds, 8, func(v int32, emit func(dataflow.Pair[int32, int32])) {
			adj := g.Adj[v]
			if len(adj) == 0 {
				return
			}
			k.enter(448)
			k.cpu.LoadR(labelRegion, uint64(v)*4, 4)
			k.cpu.LoadR(adjRegion, uint64(v)*uint64(w.EdgeFactor)*4, len(adj)*4)
			k.cpu.IntOps(4 * len(adj))
			k.cpu.Branches(2 * len(adj))
			k.cpu.FPOps(2) // convergence-statistics accounting
			lv := labels[v]
			for _, u := range adj {
				emit(dataflow.Pair[int32, int32]{Key: u, Val: lv})
			}
		})
		mins := dataflow.ReduceByKey(proposals, 0, func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		})
		changed := 0
		for _, kv := range mins.Collect() {
			if kv.Val < labels[kv.Key] {
				labels[kv.Key] = kv.Val
				changed++
				k.cpu.StoreR(labelRegion, uint64(kv.Key)*4, 4)
			}
		}
		if changed == 0 {
			break
		}
	}
	comps := map[int32]bool{}
	for _, l := range labels {
		comps[l] = true
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(n), UnitName: "vertices",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"components": float64(len(comps)),
			"iterations": float64(iters),
		},
	}
	r.Finish()
	return r, nil
}
