package workloads

import (
	"math/rand"
	"time"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/kvstore"
)

// avgResumeBytes is the mean encoded resume size used for sizing.
const avgResumeBytes = 160

// newOLTPMeta shares the Table 4 taxonomy of the three Cloud-OLTP
// workloads: a ProfSearch resume corpus stored in the LSM store (the
// paper's HBase).
func newOLTPMeta(name string) meta {
	return meta{
		name: name, class: core.CloudOLTP, metric: core.OPS,
		stack: "HBase", dtype: "semi-structured", dsource: "table",
		baseline: "32 GB resumés",
	}
}

// resumeCount sizes the corpus from the Table 6 byte figure.
func resumeCount(in core.Input) int {
	n := in.Bytes(32) / avgResumeBytes
	if n < 64 {
		n = 64
	}
	return n
}

// loadStore creates a store preloaded with n resumés (untimed phase).
func loadStore(in core.Input, n int) *kvstore.Store {
	s := kvstore.Open(kvstore.Options{CPU: in.CPU, MemtableBytes: 1 << 20})
	var m bdgs.ResumeModel
	for _, re := range m.Generate(in.Seed, n) {
		s.Put([]byte(re.Key), re.Encode())
	}
	return s
}

// ReadWorkload is Table 4 row "Read": Zipf-skewed point lookups.
type ReadWorkload struct{ meta }

// NewRead constructs the workload.
func NewRead() *ReadWorkload { return &ReadWorkload{newOLTPMeta("Read")} }

// Run implements core.Workload.
func (w *ReadWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := resumeCount(in)
	s := loadStore(in, n)
	rng := rand.New(rand.NewSource(in.Seed + 101))
	z := rand.NewZipf(rng, 1.1, 4, uint64(n-1))
	ops := n            // one operation per stored row, as the volume scales
	in.CPU.ResetStats() // the bulk load above is untimed warmup

	var lat core.LatencyRecorder
	start := time.Now()
	hits := 0
	for i := 0; i < ops; i++ {
		opStart := time.Now()
		if _, ok := s.Get([]byte(bdgs.ResumeKey(int(z.Uint64())))); ok {
			hits++
		}
		lat.Record(time.Since(opStart))
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(ops), UnitName: "ops",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"hitRate": float64(hits) / float64(ops)},
	}
	lat.Attach(&r)
	r.Finish()
	return r, nil
}

// WriteWorkload is Table 4 row "Write": bulk inserts through WAL and
// memtable with background flush/compaction.
type WriteWorkload struct{ meta }

// NewWrite constructs the workload.
func NewWrite() *WriteWorkload { return &WriteWorkload{newOLTPMeta("Write")} }

// Run implements core.Workload.
func (w *WriteWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := resumeCount(in)
	var m bdgs.ResumeModel
	resumes := m.Generate(in.Seed, n)
	s := kvstore.Open(kvstore.Options{CPU: in.CPU, MemtableBytes: 1 << 20})

	start := time.Now()
	for _, re := range resumes {
		s.Put([]byte(re.Key), re.Encode())
	}
	st := s.Stats()
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(n), UnitName: "ops",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"flushes":     float64(st.Flushes),
			"compactions": float64(st.Compactions),
		},
	}
	r.Finish()
	return r, nil
}

// ScanWorkload is Table 4 row "Scan": short range scans from random
// start keys.
type ScanWorkload struct {
	meta
	// ScanLength is rows per scan (default 50, the YCSB-style setting).
	ScanLength int
}

// NewScan constructs the workload.
func NewScan() *ScanWorkload {
	return &ScanWorkload{meta: newOLTPMeta("Scan"), ScanLength: 50}
}

// Run implements core.Workload.
func (w *ScanWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := resumeCount(in)
	s := loadStore(in, n)
	rng := rand.New(rand.NewSource(in.Seed + 202))
	scans := n / w.ScanLength
	if scans < 1 {
		scans = 1
	}
	in.CPU.ResetStats() // bulk load is untimed warmup

	start := time.Now()
	var rows int64
	for i := 0; i < scans; i++ {
		from := rng.Intn(n)
		got := s.Scan([]byte(bdgs.ResumeKey(from)), w.ScanLength)
		rows += int64(len(got))
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: rows, UnitName: "ops",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"scans": float64(scans)},
	}
	r.Finish()
	return r, nil
}
