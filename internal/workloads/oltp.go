package workloads

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/bdgs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
)

// avgResumeBytes is the mean encoded resume size used for sizing.
const avgResumeBytes = 160

// newOLTPMeta shares the Table 4 taxonomy of the three Cloud-OLTP
// workloads: a ProfSearch resume corpus stored in the LSM store (the
// paper's HBase).
func newOLTPMeta(name string) meta {
	return meta{
		name: name, class: core.CloudOLTP, metric: core.OPS,
		stack: "HBase", dtype: "semi-structured", dsource: "table",
		baseline: "32 GB resumés",
	}
}

// resumeCount sizes the corpus from the Table 6 byte figure.
func resumeCount(in core.Input) int {
	n := in.Bytes(32) / avgResumeBytes
	if n < 64 {
		n = 64
	}
	return n
}

// EngineChoice selects the storage engine the Cloud-OLTP workloads run
// on: the backend, the compaction policy, and the block-cache size.
// The zero value is the default LSM engine with size-tiered compaction
// and the default cache.
type EngineChoice struct {
	// Engine is the registered backend name ("" = "lsm").
	Engine string
	// Compaction is the policy name: "", "size-tiered" or "leveled".
	Compaction string
	// BlockCacheBytes sizes the block cache (0 default, negative off).
	BlockCacheBytes int
}

// ConfigureEngine installs the choice; it is promoted to every workload
// that embeds EngineChoice, so cmd/bdbench can configure them uniformly.
func (e *EngineChoice) ConfigureEngine(c EngineChoice) { *e = c }

// EngineConfigurable is satisfied by workloads carrying an EngineChoice.
type EngineConfigurable interface {
	ConfigureEngine(EngineChoice)
}

// options maps the choice onto engine options for one store instance.
func (e EngineChoice) options(in core.Input, memtableBytes int) engine.Options {
	return engine.Options{
		Backend:         e.Engine,
		Compaction:      e.Compaction,
		BlockCacheBytes: e.BlockCacheBytes,
		MemtableBytes:   memtableBytes,
		CPU:             in.CPU,
	}
}

// loadEngine opens the chosen engine preloaded with n resumés (untimed
// phase).
func loadEngine(in core.Input, ch EngineChoice, n int) (engine.Engine, error) {
	s, err := engine.Open(ch.options(in, 1<<20))
	if err != nil {
		return nil, err
	}
	var m bdgs.ResumeModel
	for _, re := range m.Generate(in.Seed, n) {
		s.Put([]byte(re.Key), re.Encode())
	}
	return s, nil
}

// cacheExtra adds the block-cache counters to a result's Extra map.
func cacheExtra(extra map[string]float64, st engine.Stats) {
	extra["cacheHits"] = float64(st.BlockCacheHits)
	extra["cacheMisses"] = float64(st.BlockCacheMisses)
	if total := st.BlockCacheHits + st.BlockCacheMisses; total > 0 {
		extra["cacheHitRate"] = float64(st.BlockCacheHits) / float64(total)
	}
}

// ReadWorkload is Table 4 row "Read": Zipf-skewed point lookups.
type ReadWorkload struct {
	meta
	EngineChoice
}

// NewRead constructs the workload.
func NewRead() *ReadWorkload { return &ReadWorkload{meta: newOLTPMeta("Read")} }

// Run implements core.Workload.
func (w *ReadWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := resumeCount(in)
	s, err := loadEngine(in, w.EngineChoice, n)
	if err != nil {
		return core.Result{}, err
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(in.Seed + 101))
	z := rand.NewZipf(rng, 1.1, 4, uint64(n-1))
	ops := n            // one operation per stored row, as the volume scales
	in.CPU.ResetStats() // the bulk load above is untimed warmup

	var lat core.LatencyRecorder
	start := time.Now()
	hits := 0
	for i := 0; i < ops; i++ {
		opStart := time.Now()
		if _, ok := s.Get([]byte(bdgs.ResumeKey(int(z.Uint64())))); ok {
			hits++
		}
		lat.Record(time.Since(opStart))
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(ops), UnitName: "ops",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"hitRate": float64(hits) / float64(ops)},
	}
	cacheExtra(r.Extra, s.Stats())
	lat.Attach(&r)
	r.Finish()
	return r, nil
}

// WriteWorkload is Table 4 row "Write": bulk inserts through WAL and
// memtable with background flush/compaction.
type WriteWorkload struct {
	meta
	EngineChoice
}

// NewWrite constructs the workload.
func NewWrite() *WriteWorkload { return &WriteWorkload{meta: newOLTPMeta("Write")} }

// Run implements core.Workload.
func (w *WriteWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := resumeCount(in)
	var m bdgs.ResumeModel
	resumes := m.Generate(in.Seed, n)
	s, err := engine.Open(w.EngineChoice.options(in, 1<<20))
	if err != nil {
		return core.Result{}, err
	}
	defer s.Close()

	start := time.Now()
	for _, re := range resumes {
		s.Put([]byte(re.Key), re.Encode())
	}
	st := s.Stats()
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(n), UnitName: "ops",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"flushes":     float64(st.Flushes),
			"compactions": float64(st.Compactions),
		},
	}
	r.Finish()
	return r, nil
}

// ClusterOLTPWorkload is the scale-out variant of the Cloud OLTP rows: a
// Zipf-skewed read/write mix driven by concurrent clients against the
// sharded, replicated cluster runtime (internal/cluster) instead of a
// single store — the paper's HBase deployment on its 14-node testbed
// rather than one region server. Clients submit fixed-size batches
// through the coordinator's bounded queues and record the batch service
// time each op rode in.
type ClusterOLTPWorkload struct {
	meta
	// Shards is the node count (default 4).
	Shards int
	// Replication is the copies per key (default 1).
	Replication int
	// Clients is the number of concurrent load generators (default 8).
	Clients int
	// BatchSize is ops per client batch (default 64; large enough to
	// amortize the per-shard fan-out when batches scatter).
	BatchSize int
	// ReadFraction is the Get share of the mix (default 0.95, the
	// read-heavy serving mix; the rest are Puts).
	ReadFraction float64
	// MemtableBytes sizes each shard's memtable (default 32 KiB —
	// roughly the memstore/region ratio of a production HBase node, so
	// the timed phase exercises flush and full-store compaction, the
	// costs sharding divides by N).
	MemtableBytes int
	// EngineChoice selects each shard's storage engine.
	EngineChoice
}

// NewClusterOLTP constructs the workload with the read-heavy defaults.
func NewClusterOLTP() *ClusterOLTPWorkload {
	m := newOLTPMeta("Cluster OLTP")
	m.stack = "HBase (sharded)"
	return &ClusterOLTPWorkload{
		meta: m, Shards: 4, Replication: 1, Clients: 8, BatchSize: 64,
		ReadFraction: 0.95, MemtableBytes: 32 << 10,
	}
}

// Run implements core.Workload.
func (w *ClusterOLTPWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := resumeCount(in)
	shards := max(w.Shards, 1)
	replication := max(w.Replication, 1)
	if replication > shards {
		replication = shards // mirror the cluster's clamp in what we report
	}
	engOpts := w.EngineChoice.options(in, w.MemtableBytes)
	// Validate without the CPU attached: the throwaway probe engine
	// would otherwise permanently allocate simulated regions into the
	// characterization address space.
	probe := engOpts
	probe.CPU = nil
	if err := engine.Validate(probe); err != nil {
		return core.Result{}, err
	}
	cl := cluster.New(cluster.Config{
		Shards:      shards,
		Replication: replication,
		Engine:      engOpts,
	})
	defer cl.Close()

	// Untimed bulk load through the batch path, with values pre-encoded so
	// the timed mix measures the serving path, not the generator.
	var m bdgs.ResumeModel
	resumes := m.Generate(in.Seed, n)
	vals := make([][]byte, n)
	batch := make([]cluster.Op, 0, 64)
	for i, re := range resumes {
		vals[i] = re.Encode()
		batch = append(batch, cluster.Op{Kind: cluster.OpPut, Key: []byte(re.Key), Value: vals[i]})
		if len(batch) == cap(batch) {
			if _, err := cl.Apply(batch); err != nil {
				return core.Result{}, err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := cl.Apply(batch); err != nil {
			return core.Result{}, err
		}
	}
	in.CPU.ResetStats()

	clients := w.Clients
	if clients < 1 {
		clients = 1
	}
	batchSize := w.BatchSize
	if batchSize < 1 {
		batchSize = 1
	}
	perClient := (n + clients - 1) / clients
	recs := make([]core.LatencyRecorder, clients)
	hits := make([]int, clients)
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(in.Seed + 707*int64(c+1)))
			z := rand.NewZipf(rng, 1.1, 4, uint64(n-1))
			ops := make([]cluster.Op, 0, batchSize)
			for done := 0; done < perClient; done += len(ops) {
				ops = ops[:0]
				for len(ops) < batchSize && done+len(ops) < perClient {
					row := int(z.Uint64())
					key := []byte(bdgs.ResumeKey(row))
					if rng.Float64() < w.ReadFraction {
						ops = append(ops, cluster.Op{Kind: cluster.OpGet, Key: key})
					} else {
						ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: vals[row]})
					}
				}
				opStart := time.Now()
				res, err := cl.Apply(ops)
				if err != nil {
					errs[c] = err
					return
				}
				d := time.Since(opStart)
				for _, r := range res {
					recs[c].Record(d)
					if r.Found {
						hits[c]++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return core.Result{}, err
		}
	}
	var lat core.LatencyRecorder
	totalHits := 0
	for c := range recs {
		lat.Merge(&recs[c])
		totalHits += hits[c]
	}
	st := cl.Stats()
	var flushes, compactions float64
	var engStats engine.Stats
	for _, ns := range st.Nodes {
		flushes += float64(ns.Store.Flushes)
		compactions += float64(ns.Store.Compactions)
		engStats.BlockCacheHits += ns.Store.BlockCacheHits
		engStats.BlockCacheMisses += ns.Store.BlockCacheMisses
	}
	totalOps := int64(lat.Count())
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: totalOps, UnitName: "ops",
		Elapsed: elapsed, Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"shards":      float64(shards),
			"replication": float64(replication),
			"clients":     float64(clients),
			"hitRate":     float64(totalHits) / float64(max(int(totalOps), 1)),
			"batches":     float64(st.Batches),
			"rejected":    float64(st.Rejected),
			"flushes":     flushes,
			"compactions": compactions,
		},
	}
	cacheExtra(r.Extra, engStats)
	lat.Attach(&r)
	r.Finish()
	return r, nil
}

// ScanWorkload is Table 4 row "Scan": short range scans from random
// start keys.
type ScanWorkload struct {
	meta
	// ScanLength is rows per scan (default 50, the YCSB-style setting).
	ScanLength int
	EngineChoice
}

// NewScan constructs the workload.
func NewScan() *ScanWorkload {
	return &ScanWorkload{meta: newOLTPMeta("Scan"), ScanLength: 50}
}

// Run implements core.Workload.
func (w *ScanWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := resumeCount(in)
	s, err := loadEngine(in, w.EngineChoice, n)
	if err != nil {
		return core.Result{}, err
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(in.Seed + 202))
	scans := n / w.ScanLength
	if scans < 1 {
		scans = 1
	}
	in.CPU.ResetStats() // bulk load is untimed warmup

	start := time.Now()
	var rows int64
	for i := 0; i < scans; i++ {
		from := rng.Intn(n)
		got := s.Scan([]byte(bdgs.ResumeKey(from)), w.ScanLength)
		rows += int64(len(got))
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: rows, UnitName: "ops",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"scans": float64(scans)},
	}
	cacheExtra(r.Extra, s.Stats())
	r.Finish()
	return r, nil
}
