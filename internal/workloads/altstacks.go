package workloads

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/mpi"
)

// This file implements the paper's stated roadmap (Section 4.3: "we plan
// to release other implementations, e.g., MPI, Spark") — alternative
// software-stack implementations of suite workloads. They enable the
// apples-to-apples stack comparisons the paper motivates (Section 6.3.2:
// "we are planning further investigation ... e.g., replacing MapReduce
// with MPI") and back the cross-stack ablation bench.

// WordCountSpark is WordCount on the dataflow (Spark) substrate.
type WordCountSpark struct{ meta }

// NewWordCountSpark constructs the workload.
func NewWordCountSpark() *WordCountSpark {
	return &WordCountSpark{meta{
		name: "WordCount-Spark", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Spark", dtype: "unstructured", dsource: "text",
		baseline: "32 GB text",
	}}
}

// Run implements core.Workload.
func (w *WordCountSpark) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	recs, bytes := textLines(in.Seed, in.Bytes(32))
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = r.Value
	}
	k := newKernel(in.CPU, "wordcount.spark.map", 5<<10, 0x5a1)
	ctx := dataflow.NewContext(in.Workers, in.CPU)
	ds := dataflow.Parallelize(ctx, lines, 0, avgLineBytes)

	start := time.Now()
	pairs := dataflow.FlatMap(ds, 16, func(line string, emit func(dataflow.Pair[string, int])) {
		k.enter(448)
		words := 0
		for _, word := range strings.Fields(line) {
			emit(dataflow.Pair[string, int]{Key: word, Val: 1})
			words++
		}
		k.cpu.IntOps(len(line) + 8*words)
		k.cpu.Branches(len(line)/2 + words)
	})
	counts := dataflow.ReduceByKey(pairs, 0, func(a, b int) int { return a + b })
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"distinctWords": float64(counts.Len())},
	}
	r.Finish()
	return r, nil
}

// GrepSpark is Grep on the dataflow (Spark) substrate.
type GrepSpark struct{ meta }

// NewGrepSpark constructs the workload.
func NewGrepSpark() *GrepSpark {
	return &GrepSpark{meta{
		name: "Grep-Spark", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Spark", dtype: "unstructured", dsource: "text",
		baseline: "32 GB text",
	}}
}

// Run implements core.Workload.
func (w *GrepSpark) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	recs, bytes := textLines(in.Seed, in.Bytes(32))
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = r.Value
	}
	pat := "the"
	k := newKernel(in.CPU, "grep.spark", 3<<10, 0x95e)
	ctx := dataflow.NewContext(in.Workers, in.CPU)
	ds := dataflow.Parallelize(ctx, lines, 0, avgLineBytes)

	start := time.Now()
	matches := dataflow.Filter(ds, func(line string) bool {
		k.enter(512)
		hit, ops := grepContains(line, pat)
		k.cpu.IntOps(ops + len(line)/4)
		k.cpu.Branches(ops / 2)
		return hit
	})
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"matches": float64(matches.Len())},
	}
	r.Finish()
	return r, nil
}

// WordCountMPI is WordCount on the MPI substrate: ranks tokenize disjoint
// shards and merge partial count tables via pairwise exchange — the
// shallow-stack counterpart to the Hadoop implementation that the paper's
// Section 6.3.2 proposes for isolating the software-stack effect on L1I.
type WordCountMPI struct {
	meta
	// Ranks is the world size (default 4).
	Ranks int
}

// NewWordCountMPI constructs the workload.
func NewWordCountMPI() *WordCountMPI {
	return &WordCountMPI{meta: meta{
		name: "WordCount-MPI", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "MPI", dtype: "unstructured", dsource: "text",
		baseline: "32 GB text",
	}, Ranks: 4}
}

// Run implements core.Workload.
func (w *WordCountMPI) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	recs, bytes := textLines(in.Seed, in.Bytes(32))
	k := newKernel(in.CPU, "wordcount.mpi", 4<<10, 0x3c9)
	input := in.CPU.Alloc("wordcount.mpi.input", uint64(bytes)+64)
	distinct := make([]int, w.Ranks)

	start := time.Now()
	err := mpi.Run(w.Ranks, in.CPU, func(c *mpi.Comm) error {
		counts := map[string]int{}
		var off uint64
		for i := c.Rank(); i < len(recs); i += c.Size() {
			line := recs[i].Value
			k.enter(448)
			k.cpu.LoadR(input, off, len(line))
			off += uint64(len(line))
			words := 0
			for _, word := range strings.Fields(line) {
				counts[word]++
				words++
			}
			k.cpu.IntOps(len(line) + 8*words)
			k.cpu.Branches(len(line)/2 + words)
		}
		// Merge: ranks send their tables to rank 0 as "word count" lines.
		if c.Rank() != 0 {
			var sb strings.Builder
			for word, n := range counts {
				sb.WriteString(word)
				sb.WriteByte(' ')
				sb.WriteString(itoa(n))
				sb.WriteByte('\n')
			}
			c.Send(0, []byte(sb.String()))
			return nil
		}
		for from := 1; from < c.Size(); from++ {
			for _, line := range strings.Split(string(c.Recv(from)), "\n") {
				word, num, ok := strings.Cut(line, " ")
				if !ok {
					continue
				}
				counts[word] += atoi(num)
			}
		}
		distinct[0] = len(counts)
		return nil
	})
	if err != nil {
		return core.Result{}, err
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"distinctWords": float64(distinct[0])},
	}
	r.Finish()
	return r, nil
}

// PageRankMPI is PageRank on the MPI substrate: each rank owns a vertex
// stripe and exchanges boundary rank contributions per iteration.
type PageRankMPI struct {
	meta
	Iterations int
	EdgeFactor int
	Ranks      int
}

// NewPageRankMPI constructs the workload.
func NewPageRankMPI() *PageRankMPI {
	return &PageRankMPI{meta: meta{
		name: "PageRank-MPI", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "MPI", dtype: "unstructured", dsource: "graph",
		baseline: "10^6 pages",
	}, Iterations: 5, EdgeFactor: 6, Ranks: 4}
}

// Run implements core.Workload.
func (w *PageRankMPI) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	g := genWebGraph(in, w.EdgeFactor)
	n := g.N
	k := newKernel(in.CPU, "pagerank.mpi", 4<<10, 0x11b)
	ranksRegion := in.CPU.Alloc("pagerank.mpi.ranks", uint64(n)*8+64)
	adjRegion := in.CPU.Alloc("pagerank.mpi.adj", uint64(g.BytesApprox())+64)

	final := make([]float64, n)
	start := time.Now()
	err := mpi.Run(w.Ranks, in.CPU, func(c *mpi.Comm) error {
		P := c.Size()
		ranks := make([]float64, n)
		for i := range ranks {
			ranks[i] = 1.0 / float64(n)
		}
		const damping = 0.85
		for it := 0; it < w.Iterations; it++ {
			// Contributions this rank's vertex stripe sends out, bucketed
			// by destination owner.
			out := make([][]int32, P) // destination vertices
			outVal := make([][]float64, P)
			for v := c.Rank(); v < n; v += P {
				adj := g.Adj[v]
				if len(adj) == 0 {
					continue
				}
				k.enter(448)
				k.cpu.LoadR(ranksRegion, uint64(v)*8, 8)
				k.cpu.LoadR(adjRegion, uint64(v)*uint64(w.EdgeFactor)*4, len(adj)*4)
				k.cpu.FPOps(1 + len(adj))
				k.cpu.IntOps(3 * len(adj))
				k.cpu.Branches(len(adj))
				share := ranks[v] / float64(len(adj))
				for _, to := range adj {
					owner := int(to) % P
					out[owner] = append(out[owner], to)
					outVal[owner] = append(outVal[owner], share)
				}
			}
			inDst := c.AlltoallInt32s(out)
			inVal := alltoallFloat64(c, outVal)
			next := make([]float64, n)
			base := (1 - damping) / float64(n)
			for v := c.Rank(); v < n; v += P {
				next[v] = base
			}
			for from := range inDst {
				for j, dst := range inDst[from] {
					next[dst] += damping * inVal[from][j]
					k.cpu.FPOps(2)
					k.cpu.StoreR(ranksRegion, uint64(dst)*8, 8)
				}
			}
			// Broadcast owned stripes so every rank sees all ranks' values
			// next iteration (dense exchange, as a 1-D BSP PageRank does).
			ownAll := make([][]float64, P)
			for p := 0; p < P; p++ {
				stripe := make([]float64, 0, n/P+1)
				for v := c.Rank(); v < n; v += P {
					stripe = append(stripe, next[v])
				}
				ownAll[p] = stripe
			}
			gathered := alltoallFloat64(c, ownAll)
			for from := range gathered {
				i := 0
				for v := from; v < n; v += P {
					ranks[v] = gathered[from][i]
					i++
				}
			}
			c.Barrier()
		}
		if c.Rank() == 0 {
			copy(final, ranks)
		}
		return nil
	})
	if err != nil {
		return core.Result{}, err
	}
	var mass float64
	for _, v := range final {
		mass += v
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(n), UnitName: "pages",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"rankMass": mass, "iterations": float64(w.Iterations)},
	}
	r.Finish()
	return r, nil
}

// alltoallFloat64 exchanges float64 vectors between all ranks by packing
// them through the byte transport.
func alltoallFloat64(c *mpi.Comm, out [][]float64) [][]float64 {
	enc := make([][]int32, len(out))
	for p, vec := range out {
		bits := make([]int32, 2*len(vec))
		for i, v := range vec {
			u := float64bits(v)
			bits[2*i] = int32(uint32(u))
			bits[2*i+1] = int32(uint32(u >> 32))
		}
		enc[p] = bits
	}
	in := c.AlltoallInt32s(enc)
	dec := make([][]float64, len(in))
	for p, bits := range in {
		vec := make([]float64, len(bits)/2)
		for i := range vec {
			u := uint64(uint32(bits[2*i])) | uint64(uint32(bits[2*i+1]))<<32
			vec[i] = float64frombits(u)
		}
		dec[p] = vec
	}
	return dec
}

// AltStacks returns the alternative-stack implementations.
func AltStacks() []core.Workload {
	return []core.Workload{
		NewWordCountSpark(),
		NewGrepSpark(),
		NewWordCountMPI(),
		NewPageRankMPI(),
	}
}
