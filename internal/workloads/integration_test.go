package workloads

import (
	"strings"
	"testing"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/sim"
)

// Cross-module consistency: the Index workload (MapReduce pipeline) must
// agree with the search package's direct index builder on the number of
// distinct terms for the same corpus.
func TestIndexWorkloadAgreesWithSearchBuild(t *testing.T) {
	in := tinyInput()
	res, err := NewIndex().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	norm := in.Normalize()
	pages := bdgs.NewTextModel(vocabSize).Pages(norm.Seed, norm.Pages(), 200)
	docs := make([]search.Document, len(pages))
	for i, p := range pages {
		// The workload indexes bodies only; match that here.
		docs[i] = search.Document{ID: p.ID, Body: p.Body}
	}
	ix := search.Build(docs, nil)
	if int(res.Extra["terms"]) != ix.Terms() {
		t.Errorf("Index workload found %.0f terms, search.Build found %d",
			res.Extra["terms"], ix.Terms())
	}
}

// Cross-module consistency: Grep's match count must equal a direct scan
// over the same generated lines.
func TestGrepAgainstReferenceScan(t *testing.T) {
	in := tinyInput().Normalize()
	res, err := NewGrep().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	pattern := bdgs.NewTextModel(vocabSize).Lines(in.Seed+77, 1, 1)
	pat := string(pattern[0])
	recs, _ := textLines(in.Seed, in.Bytes(32))
	want := 0
	for _, r := range recs {
		if strings.Contains(r.Value, pat) {
			want++
		}
	}
	if int(res.Extra["matches"]) != want {
		t.Errorf("grep found %.0f matches, reference scan found %d",
			res.Extra["matches"], want)
	}
}

// Determinism gate: characterized runs with the same seed and machine
// produce byte-identical counter snapshots (required for reproducible
// figures). Run on two representative workloads with single-worker
// substrates, where the event interleaving is fixed.
func TestCharacterizationDeterminism(t *testing.T) {
	in := tinyInput()
	in.Workers = 1
	for _, w := range []core.Workload{NewGrep(), NewSelectQuery()} {
		a, err := core.Characterize(w, in, sim.XeonE5645())
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Characterize(w, in, sim.XeonE5645())
		if err != nil {
			t.Fatal(err)
		}
		if a.Counts != b.Counts {
			t.Errorf("%s: counters differ across identical runs", w.Name())
		}
	}
}

// The workloads must honour Workers: results do not change with
// parallelism, only wall-clock time may.
func TestWorkerCountInvariance(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		in := tinyInput()
		in.Workers = workers
		res, err := NewWordCount().Run(in)
		if err != nil {
			t.Fatal(err)
		}
		want := runTiny(t, NewWordCount(), false).Extra["distinctWords"]
		if res.Extra["distinctWords"] != want {
			t.Errorf("workers=%d changed the result: %.0f vs %.0f",
				workers, res.Extra["distinctWords"], want)
		}
	}
}

// Scaling sanity: doubling Scale roughly doubles processed units for the
// byte-metered workloads.
func TestUnitsScaleWithInput(t *testing.T) {
	in := tinyInput()
	r1, err := NewSort().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Scale = 4
	r4, err := NewSort().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r4.Units) / float64(r1.Units)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4× scale processed %.2f× the bytes", ratio)
	}
}

// E5310 runs must work for every workload (Figure 5 needs both machines).
func TestSuiteRunsOnE5310(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	for _, w := range All() {
		in := tinyInput()
		res, err := core.Characterize(w, in, sim.XeonE5310())
		if err != nil {
			t.Fatalf("%s on E5310: %v", w.Name(), err)
		}
		if res.Counts.HasL3 {
			t.Fatalf("%s: E5310 run reports an L3", w.Name())
		}
		if res.Counts.Instructions() == 0 {
			t.Fatalf("%s: no instructions on E5310", w.Name())
		}
	}
}
