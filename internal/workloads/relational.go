package workloads

import (
	"fmt"
	"time"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/sqlengine"
)

// OrderSchema and ItemSchema are the Table 3 e-commerce schema DDL.
var (
	OrderSchema = []sqlengine.ColDef{
		{Name: "ORDER_ID", Type: sqlengine.Int64},
		{Name: "BUYER_ID", Type: sqlengine.Int64},
		{Name: "CREATE_DATE", Type: sqlengine.Int64},
	}
	ItemSchema = []sqlengine.ColDef{
		{Name: "ITEM_ID", Type: sqlengine.Int64},
		{Name: "ORDER_ID", Type: sqlengine.Int64},
		{Name: "GOODS_ID", Type: sqlengine.Int64},
		{Name: "GOODS_NUMBER", Type: sqlengine.Float64},
		{Name: "GOODS_PRICE", Type: sqlengine.Float64},
		{Name: "GOODS_AMOUNT", Type: sqlengine.Float64},
	}
)

// avgRowBytes approximates ORDER + items-per-order × ITEM row widths.
const avgRowBytes = bdgs.OrderBytes + 6*bdgs.ItemBytes

// buildTables generates the scaled ORDER/ORDER_ITEM tables.
func buildTables(in core.Input) (*sqlengine.Table, *sqlengine.Table, int64, error) {
	nOrders := in.Bytes(32) / avgRowBytes
	if nOrders < 32 {
		nOrders = 32
	}
	model := bdgs.NewTableModel(nOrders)
	orders, items := model.Generate(in.Seed, nOrders)
	ot := sqlengine.NewTable("ORDER", OrderSchema, in.CPU)
	for _, o := range orders {
		if err := ot.AppendRow(o.OrderID, o.BuyerID, o.CreateDate); err != nil {
			return nil, nil, 0, err
		}
	}
	it := sqlengine.NewTable("ITEM", ItemSchema, in.CPU)
	for _, x := range items {
		if err := it.AppendRow(x.ItemID, x.OrderID, x.GoodsID,
			x.GoodsNumber, x.GoodsPrice, x.GoodsAmount); err != nil {
			return nil, nil, 0, err
		}
	}
	ot.Seal()
	it.Seal()
	bytes := int64(len(orders))*bdgs.OrderBytes + int64(len(items))*bdgs.ItemBytes
	return ot, it, bytes, nil
}

func newQueryMeta(name string) meta {
	return meta{
		name: name, class: core.RealtimeAnalytics, metric: core.DPS,
		stack: "Hive", dtype: "structured", dsource: "table",
		baseline: "32 GB transactions",
	}
}

// SelectQueryWorkload is Table 4 row "Select Query": a filtered projection
// over ORDER_ITEM.
type SelectQueryWorkload struct{ meta }

// NewSelectQuery constructs the workload.
func NewSelectQuery() *SelectQueryWorkload {
	return &SelectQueryWorkload{newQueryMeta("Select Query")}
}

// Run implements core.Workload.
func (w *SelectQueryWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	_, items, bytes, err := buildTables(in)
	if err != nil {
		return core.Result{}, err
	}
	e := sqlengine.NewEngine(in.CPU)

	start := time.Now()
	res, err := e.Select(items,
		[]sqlengine.Pred{{Col: "GOODS_PRICE", Op: sqlengine.GT, Float: 40}},
		[]string{"ITEM_ID", "GOODS_ID", "GOODS_AMOUNT"})
	if err != nil {
		return core.Result{}, err
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"selected": float64(res.Rows()), "inputRows": float64(items.Rows())},
	}
	r.Finish()
	return r, nil
}

// AggregateQueryWorkload is Table 4 row "Aggregate Query": revenue per
// goods (SUM(GOODS_AMOUNT) GROUP BY GOODS_ID).
type AggregateQueryWorkload struct{ meta }

// NewAggregateQuery constructs the workload.
func NewAggregateQuery() *AggregateQueryWorkload {
	return &AggregateQueryWorkload{newQueryMeta("Aggregate Query")}
}

// Run implements core.Workload.
func (w *AggregateQueryWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	_, items, bytes, err := buildTables(in)
	if err != nil {
		return core.Result{}, err
	}
	e := sqlengine.NewEngine(in.CPU)

	start := time.Now()
	rows, err := e.Aggregate(items, nil, "GOODS_ID", "GOODS_AMOUNT", sqlengine.Sum)
	if err != nil {
		return core.Result{}, err
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"groups": float64(len(rows))},
	}
	r.Finish()
	return r, nil
}

// JoinQueryWorkload is Table 4 row "Join Query": ORDER ⋈ ORDER_ITEM on
// ORDER_ID.
type JoinQueryWorkload struct{ meta }

// NewJoinQuery constructs the workload.
func NewJoinQuery() *JoinQueryWorkload {
	return &JoinQueryWorkload{newQueryMeta("Join Query")}
}

// Run implements core.Workload.
func (w *JoinQueryWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	orders, items, bytes, err := buildTables(in)
	if err != nil {
		return core.Result{}, err
	}
	e := sqlengine.NewEngine(in.CPU)

	start := time.Now()
	res, err := e.Join(orders, items, "ORDER_ID", "ORDER_ID")
	if err != nil {
		return core.Result{}, err
	}
	if res.Rows() != items.Rows() {
		return core.Result{}, fmt.Errorf(
			"join invariant violated: %d joined rows for %d items", res.Rows(), items.Rows())
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"joinedRows": float64(res.Rows())},
	}
	r.Finish()
	return r, nil
}
