package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/search"
	"repro/internal/webserve"
)

// RubisServerWorkload is Table 4 row "Rubis Server": the auction-site
// online service (browse / view / bid / buy request mix).
type RubisServerWorkload struct {
	meta
	// Listings is the prepopulated item count (default 2000).
	Listings int
	// Categories is the category count (default 20).
	Categories int
}

// NewRubisServer constructs the workload.
func NewRubisServer() *RubisServerWorkload {
	return &RubisServerWorkload{meta: meta{
		name: "Rubis Server", class: core.OnlineService, metric: core.RPS,
		stack: "Apache+JBoss+MySQL", dtype: "structured", dsource: "table",
		baseline: "100 req/s",
	}, Listings: 2000, Categories: 20}
}

// Run implements core.Workload.
func (w *RubisServerWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	svc := webserve.NewAuctionService(w.Categories, in.CPU)
	rng := rand.New(rand.NewSource(in.Seed + 51))
	zCat := rand.NewZipf(rng, 1.3, 3, uint64(w.Categories-1))
	for i := 0; i < w.Listings; i++ {
		if _, err := svc.List(int32(rng.Intn(5000)), int32(zCat.Uint64()),
			"listing "+strconv.Itoa(i), 1+rng.Float64()*50, 100+rng.Float64()*200); err != nil {
			return core.Result{}, err
		}
	}
	zItem := rand.NewZipf(rng, 1.1, 4, uint64(w.Listings-1))
	n := in.Requests()
	in.CPU.ResetStats() // prepopulation is untimed warmup

	var lat core.LatencyRecorder
	start := time.Now()
	var served, conflicts int64
	for i := 0; i < n; i++ {
		var err error
		reqStart := time.Now()
		switch x := rng.Float64(); {
		case x < 0.50:
			_, err = svc.Browse(int32(zCat.Uint64()), 25)
		case x < 0.75:
			_, _, err = svc.View(int64(zItem.Uint64()) + 1)
		case x < 0.95:
			id := int64(zItem.Uint64()) + 1
			it, _, verr := svc.View(id)
			if verr == nil {
				err = svc.PlaceBid(id, int32(rng.Intn(5000)), it.Price*(1.01+rng.Float64()*0.2))
			}
			if err != nil {
				// Lost race / already sold: a business conflict, not a
				// server failure — count and continue.
				conflicts++
				err = nil
			}
		default:
			if err = svc.BuyNow(int64(zItem.Uint64())+1, int32(rng.Intn(5000))); err != nil {
				conflicts++
				err = nil
			}
		}
		lat.Record(time.Since(reqStart))
		if err != nil {
			return core.Result{}, fmt.Errorf("rubis request %d: %w", i, err)
		}
		served++
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: served, UnitName: "reqs",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"conflicts": float64(conflicts)},
	}
	lat.Attach(&r)
	r.Finish()
	return r, nil
}

// CFWorkload is Table 4 row "Collaborative Filtering (CF)": item-based
// co-occurrence recommendation (the Mahout-style algorithm the paper
// runs) over the Amazon-review model, on the MapReduce substrate.
type CFWorkload struct {
	meta
	// ReviewsPerUser controls interaction density (default 4).
	ReviewsPerUser int
	// MaxPairsPerUser caps the co-occurrence fan-out per user basket.
	MaxPairsPerUser int
}

// NewCF constructs the workload.
func NewCF() *CFWorkload {
	return &CFWorkload{meta: meta{
		name: "Collaborative Filtering", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Hadoop", dtype: "semi-structured", dsource: "text",
		baseline: "2^15 users",
	}, ReviewsPerUser: 4, MaxPairsPerUser: 64}
}

// Run implements core.Workload.
func (w *CFWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	users := in.Vertices()
	nReviews := users * w.ReviewsPerUser
	tm := bdgs.NewTextModel(2000)
	model := bdgs.NewReviewModel(nReviews, tm)
	reviews := model.Generate(in.Seed, nReviews, 8) // short texts; CF uses IDs
	k := newKernel(in.CPU, "cf.kernel", 5<<10, 0xcf7)
	input := in.CPU.Alloc("cf.input", uint64(nReviews)*16+64)

	// Stage 1: group item ratings by user (user baskets).
	recs := make([]mapreduce.Record, len(reviews))
	for i, rv := range reviews {
		recs[i] = mapreduce.Record{
			Key:   strconv.Itoa(int(rv.UserID)),
			Value: strconv.Itoa(int(rv.ItemID)) + ":" + strconv.Itoa(int(rv.Rating)),
		}
	}
	start := time.Now()
	baskets, err := mapreduce.Run(mapreduce.Config{
		Workers: in.Workers, CPU: in.CPU, InputRegion: input,
	}, recs,
		func(user, itemRating string, emit func(k, v string)) {
			k.enter(384)
			k.cpu.IntOps(30)
			k.cpu.Branches(8)
			emit(user, itemRating)
		},
		func(user string, items []string, emit func(k, v string)) {
			// Sort the basket so downstream pair generation is
			// deterministic regardless of shuffle arrival order.
			sort.Strings(items)
			emit(user, strings.Join(items, ","))
		})
	if err != nil {
		return core.Result{}, err
	}
	// Stage 2: item-item co-occurrence counts from each basket.
	var basketRecs []mapreduce.Record
	for _, p := range baskets.Partitions {
		for _, kv := range p {
			basketRecs = append(basketRecs, mapreduce.Record{Key: kv.Key, Value: kv.Value})
		}
	}
	cooc, err := mapreduce.Run(mapreduce.Config{
		Workers: in.Workers, CPU: in.CPU, InputRegion: input,
		Combiner: sumReducer,
	}, basketRecs,
		func(_, basket string, emit func(k, v string)) {
			items := strings.Split(basket, ",")
			k.enter(512)
			k.cpu.IntOps(16 * len(items))
			k.cpu.Branches(4 * len(items))
			pairs := 0
			for i := 0; i < len(items) && pairs < w.MaxPairsPerUser; i++ {
				a, _, _ := strings.Cut(items[i], ":")
				for j := i + 1; j < len(items) && pairs < w.MaxPairsPerUser; j++ {
					b, _, _ := strings.Cut(items[j], ":")
					if a == b {
						continue
					}
					lo, hi := a, b
					if lo > hi {
						lo, hi = hi, lo
					}
					emit(lo+"|"+hi, "1")
					pairs++
					k.cpu.IntOps(20)
					k.cpu.Branches(5)
				}
			}
		}, sumReducer)
	if err != nil {
		return core.Result{}, err
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(users), UnitName: "vertices",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"reviews":   float64(nReviews),
			"itemPairs": float64(cooc.OutputPairs),
		},
	}
	r.Finish()
	return r, nil
}

func sumReducer(key string, vs []string, emit func(k, v string)) {
	total := 0
	for _, v := range vs {
		n, _ := strconv.Atoi(v)
		total += n
	}
	emit(key, strconv.Itoa(total))
}

// BayesWorkload is Table 4 row "Naive Bayes": multinomial naive-Bayes
// sentiment classification over the Amazon-review model (train on 80%,
// classify 20%). The log-probability classification makes it the big-data
// workload with the lowest integer-to-FP ratio (~10 in Figure 4).
type BayesWorkload struct{ meta }

// NewBayes constructs the workload.
func NewBayes() *BayesWorkload {
	return &BayesWorkload{meta{
		name: "Naive Bayes", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Hadoop", dtype: "semi-structured", dsource: "text",
		baseline: "32 GB reviews",
	}}
}

// avgReviewBytes is the mean generated review size for sizing.
const avgReviewBytes = 380

// Run implements core.Workload.
func (w *BayesWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	bytes := in.Bytes(32)
	n := bytes / avgReviewBytes
	if n < 50 {
		n = 50
	}
	tm := bdgs.NewTextModel(vocabSize)
	model := bdgs.NewReviewModel(n, tm)
	reviews := model.Generate(in.Seed, n, 60)
	k := newKernel(in.CPU, "bayes.kernel", 6<<10, 0xba7e5)
	input := in.CPU.Alloc("bayes.input", uint64(bytes)+64)
	split := n * 4 / 5

	label := func(rv bdgs.Review) string {
		if rv.Rating >= 4 {
			return "pos"
		}
		return "neg"
	}

	// Train: count (label, word) occurrences with MapReduce.
	recs := make([]mapreduce.Record, split)
	var trainBytes int64
	for i, rv := range reviews[:split] {
		recs[i] = mapreduce.Record{Key: label(rv), Value: rv.Text}
		trainBytes += int64(rv.Bytes())
	}
	start := time.Now()
	counts, err := mapreduce.Run(mapreduce.Config{
		Workers: in.Workers, CPU: in.CPU, InputRegion: input, Combiner: sumReducer,
	}, recs,
		func(lbl, text string, emit func(k, v string)) {
			k.enter(512)
			words := 0
			search.Tokenize([]byte(text), func(tok []byte) {
				emit(lbl+"|"+string(tok), "1")
				words++
			})
			emit("N|"+lbl, strconv.Itoa(words))
			k.cpu.IntOps(len(text) + 6*words)
			k.cpu.Branches(len(text) / 2)
		}, sumReducer)
	if err != nil {
		return core.Result{}, err
	}
	// Materialize the model.
	wordCounts := map[string]float64{}
	classTotals := map[string]float64{"pos": 0, "neg": 0}
	vocab := map[string]bool{}
	for _, p := range counts.Partitions {
		for _, kv := range p {
			c, _ := strconv.Atoi(kv.Value)
			if lbl, ok := strings.CutPrefix(kv.Key, "N|"); ok {
				classTotals[lbl] += float64(c)
				continue
			}
			wordCounts[kv.Key] = float64(c)
			_, word, _ := strings.Cut(kv.Key, "|")
			vocab[word] = true
		}
	}
	v := float64(len(vocab)) + 1

	// Classify the held-out 20% (log-space multinomial NB).
	modelRegion := in.CPU.Alloc("bayes.model", uint64(len(wordCounts))*16+4096)
	correct, total := 0, 0
	var testBytes int64
	for _, rv := range reviews[split:] {
		k.enter(640)
		scorePos, scoreNeg := 0.0, 0.0
		words := 0
		search.Tokenize([]byte(rv.Text), func(tok []byte) {
			words++
			wp := wordCounts["pos|"+string(tok)]
			wn := wordCounts["neg|"+string(tok)]
			scorePos += math.Log((wp + 1) / (classTotals["pos"] + v))
			scoreNeg += math.Log((wn + 1) / (classTotals["neg"] + v))
		})
		// Per-word model lookups (scattered) and log-prob FP work.
		k.cpu.LoadR(modelRegion, uint64(words)*48, words*16)
		k.cpu.FPOps(10 * words)
		k.cpu.IntOps(8 * words)
		k.cpu.Branches(2 * words)
		pred := "neg"
		if scorePos >= scoreNeg {
			pred = "pos"
		}
		if pred == label(rv) {
			correct++
		}
		total++
		testBytes += int64(rv.Bytes())
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: trainBytes + testBytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"accuracy": float64(correct) / float64(max(total, 1)),
			"vocab":    float64(len(vocab)),
		},
	}
	r.Finish()
	return r, nil
}
