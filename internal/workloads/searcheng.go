package workloads

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/mapreduce"
	"repro/internal/search"
)

// NutchServerWorkload is Table 4 row "Nutch Server": the search-engine
// online service. A fixed crawl corpus is indexed once (untimed); the
// timed phase serves a Zipf-popular query log and reports RPS. Its hot,
// compact index gives it the lowest L2 and DTLB MPKI among the services
// (Figure 6: L2 ≈ 4.1, DTLB ≈ 0.2).
type NutchServerWorkload struct {
	meta
	// CorpusPages is the fixed indexed corpus size (default 2000).
	CorpusPages int
	// IndexShards > 1 serves from a sharded index (internal/cluster-style
	// scatter-gather over per-shard partitions) instead of one index.
	IndexShards int
}

// NewNutchServer constructs the workload.
func NewNutchServer() *NutchServerWorkload {
	return &NutchServerWorkload{meta: meta{
		name: "Nutch Server", class: core.OnlineService, metric: core.RPS,
		stack: "Hadoop", dtype: "unstructured", dsource: "text",
		baseline: "100 req/s",
	}, CorpusPages: 2000, IndexShards: 1}
}

// Run implements core.Workload.
func (w *NutchServerWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	tm := bdgs.NewTextModel(vocabSize)
	pages := tm.Pages(in.Seed, w.CorpusPages, 150)
	docs := make([]search.Document, len(pages))
	for i, p := range pages {
		docs[i] = search.Document{ID: p.ID, Title: p.Title, Body: p.Body}
	}
	var ix search.Querier
	var indexTerms int
	if w.IndexShards > 1 {
		six := search.BuildSharded(docs, w.IndexShards, in.CPU)
		ix, indexTerms = six, six.Terms()
	} else {
		one := search.Build(docs, in.CPU)
		ix, indexTerms = one, one.Terms()
	}
	// Query log: 1-3 Zipf-popular content words per query.
	rng := rand.New(rand.NewSource(in.Seed + 31))
	z := rand.NewZipf(rng, 1.2, 8, uint64(vocabSize-1))
	vocabLines := tm.Lines(in.Seed+63, vocabSize/10, 1)
	n := in.Requests()
	queries := make([]string, n)
	for i := range queries {
		terms := 1 + rng.Intn(3)
		var sb strings.Builder
		for t := 0; t < terms; t++ {
			if t > 0 {
				sb.WriteByte(' ')
			}
			sb.Write(vocabLines[int(z.Uint64())%len(vocabLines)])
		}
		queries[i] = sb.String()
	}
	in.CPU.ResetStats() // index construction is untimed warmup

	var lat core.LatencyRecorder
	start := time.Now()
	var hits int64
	for _, q := range queries {
		qs := time.Now()
		hits += int64(len(ix.Query(q, 10)))
		lat.Record(time.Since(qs))
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(n), UnitName: "reqs",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"hitsPerQuery": float64(hits) / float64(n),
			"indexTerms":   float64(indexTerms),
			"indexShards":  math.Max(1, float64(w.IndexShards)),
		},
	}
	lat.Attach(&r)
	r.Finish()
	return r, nil
}

// IndexWorkload is Table 4 row "Index": offline inverted-index
// construction over web pages on the MapReduce substrate.
type IndexWorkload struct{ meta }

// NewIndex constructs the workload.
func NewIndex() *IndexWorkload {
	return &IndexWorkload{meta{
		name: "Index", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Hadoop", dtype: "unstructured", dsource: "text",
		baseline: "10^6 pages",
	}}
}

// Run implements core.Workload.
func (w *IndexWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	tm := bdgs.NewTextModel(vocabSize)
	pages := tm.Pages(in.Seed, in.Pages(), 200)
	recs := make([]mapreduce.Record, len(pages))
	var bytes int64
	for i, p := range pages {
		recs[i] = mapreduce.Record{Key: p.ID, Value: string(p.Body)}
		bytes += int64(p.Bytes())
	}
	k := newKernel(in.CPU, "index.map", 6<<10, 0x1d1)
	input := in.CPU.Alloc("index.input", uint64(bytes)+64)

	start := time.Now()
	res, err := mapreduce.Run(mapreduce.Config{
		Workers: in.Workers, CPU: in.CPU, InputRegion: input,
	}, recs,
		func(docID, body string, emit func(k, v string)) {
			k.enter(512)
			tf := map[string]int{}
			search.Tokenize([]byte(body), func(tok []byte) {
				tf[string(tok)]++
			})
			k.cpu.IntOps(len(body) + 10*len(tf))
			k.cpu.Branches(len(body) / 2)
			for term, f := range tf {
				emit(term, docID+":"+strconv.Itoa(f))
			}
		},
		func(term string, postings []string, emit func(k, v string)) {
			// Postings list assembly.
			emit(term, strings.Join(postings, " "))
		})
	if err != nil {
		return core.Result{}, err
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(len(pages)), UnitName: "pages",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"terms": float64(res.OutputPairs), "bytes": float64(bytes)},
	}
	r.Finish()
	return r, nil
}

// PageRankWorkload is Table 4 row "PageRank": damped power iteration over
// a Google-web-graph-style directed graph on the dataflow (Spark) engine.
type PageRankWorkload struct {
	meta
	// Iterations of power iteration (default 5).
	Iterations int
	// EdgeFactor is out-edges per page (default 6, the web-graph seed's
	// average out-degree ≈ 5.8).
	EdgeFactor int
}

// NewPageRank constructs the workload.
func NewPageRank() *PageRankWorkload {
	return &PageRankWorkload{meta: meta{
		name: "PageRank", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Spark", dtype: "unstructured", dsource: "graph",
		baseline: "10^6 pages",
	}, Iterations: 5, EdgeFactor: 6}
}

// Run implements core.Workload.
func (w *PageRankWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	g := genWebGraph(in, w.EdgeFactor)
	n := g.N
	k := newKernel(in.CPU, "pagerank.kernel", 5<<10, 0x96a7)
	ranksRegion := in.CPU.Alloc("pagerank.ranks", uint64(n)*8+64)
	adjRegion := in.CPU.Alloc("pagerank.adj", uint64(g.BytesApprox())+64)

	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1.0 / float64(n)
	}
	ctx := dataflow.NewContext(in.Workers, in.CPU)
	vertices := make([]int32, n)
	for i := range vertices {
		vertices[i] = int32(i)
	}
	vds := dataflow.Parallelize(ctx, vertices, 0, 4)

	start := time.Now()
	const damping = 0.85
	for it := 0; it < w.Iterations; it++ {
		contribs := dataflow.FlatMap(vds, 12, func(v int32, emit func(dataflow.Pair[int32, float64])) {
			adj := g.Adj[v]
			if len(adj) == 0 {
				return
			}
			k.enter(448)
			k.cpu.LoadR(ranksRegion, uint64(v)*8, 8)
			k.cpu.LoadR(adjRegion, uint64(v)*uint64(w.EdgeFactor)*4, len(adj)*4)
			k.cpu.FPOps(1 + len(adj))
			k.cpu.IntOps(3 * len(adj))
			k.cpu.Branches(len(adj))
			share := ranks[v] / float64(len(adj))
			for _, to := range adj {
				emit(dataflow.Pair[int32, float64]{Key: to, Val: share})
			}
		})
		sums := dataflow.ReduceByKey(contribs, 0, func(a, b float64) float64 { return a + b })
		base := (1 - damping) / float64(n)
		next := make([]float64, n)
		for i := range next {
			next[i] = base
		}
		for _, kv := range sums.Collect() {
			next[kv.Key] += damping * kv.Val
			k.cpu.FPOps(2)
			k.cpu.StoreR(ranksRegion, uint64(kv.Key)*8, 8)
		}
		ranks = next
	}
	var total float64
	for _, r := range ranks {
		total += r
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(n), UnitName: "pages",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"rankMass":   total,
			"iterations": float64(w.Iterations),
		},
	}
	r.Finish()
	return r, nil
}
