// Package workloads implements the nineteen BigDataBench benchmarks
// (paper Table 4) on the repository's substrates: the Hadoop-style
// MapReduce micro benchmarks and analytics, the MPI BFS, the Cloud-OLTP
// operations on the LSM store, the relational queries on the columnar
// engine, the three online services, and the iterative analytics on the
// dataflow engine. Every workload does its real computation in Go and,
// when the input carries a characterization CPU, additionally emits the
// user-kernel side of the simulated instruction/memory stream (the
// substrates emit the framework side).
package workloads

import (
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/sim"
)

// meta carries the Table 4 taxonomy for one workload.
type meta struct {
	name     string
	class    core.Class
	metric   core.Metric
	stack    string
	dtype    string
	dsource  string
	baseline string
}

func (m meta) Name() string          { return m.name }
func (m meta) Class() core.Class     { return m.class }
func (m meta) Metric() core.Metric   { return m.metric }
func (m meta) Stack() string         { return m.stack }
func (m meta) DataType() string      { return m.dtype }
func (m meta) DataSource() string    { return m.dsource }
func (m meta) BaselineInput() string { return m.baseline }

// xrand is a race-free deterministic offset stream for kernels whose
// closures run on several substrate workers.
type xrand struct{ v atomic.Uint64 }

func newXrand(seed uint64) *xrand {
	x := &xrand{}
	x.v.Store(seed | 1)
	return x
}

func (x *xrand) next() uint64 {
	for {
		old := x.v.Load()
		v := old
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		if x.v.CompareAndSwap(old, v) {
			return v
		}
	}
}

// kernel bundles the user-code instrumentation handles of one workload:
// the (small, tight) user function code region, in contrast to the large
// framework regions the substrates register.
type kernel struct {
	cpu  *sim.CPU
	code *sim.CodeRegion
	rs   *xrand
}

func newKernel(cpu *sim.CPU, name string, codeBytes uint64, seed uint64) kernel {
	return kernel{
		cpu:  cpu,
		code: cpu.NewCodeRegion(name, codeBytes),
		rs:   newXrand(seed),
	}
}

// enter positions execution in the kernel's loop body.
func (k kernel) enter(window uint64) {
	if k.cpu == nil {
		return
	}
	k.cpu.Code(k.code, k.rs.next()%k.code.Size(), window)
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// genWebGraph generates the directed web graph sized by the input's page
// unit (shared by the Spark and MPI PageRank implementations).
func genWebGraph(in core.Input, edgeFactor int) *bdgs.Graph {
	return bdgs.GenGraph(in.Seed, log2ceil(in.Pages()), edgeFactor,
		bdgs.WebGraphParams(), true)
}

func itoa(n int) string { return strconv.Itoa(n) }

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(u uint64) float64 { return math.Float64frombits(u) }
