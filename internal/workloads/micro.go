package workloads

import (
	"strconv"
	"time"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/mapreduce"
)

// vocabSize is the text-model vocabulary shared by the text workloads.
const vocabSize = 30000

// avgLineBytes is the mean record length of the generated text-line input.
const avgLineBytes = 64

// textLines generates the record-oriented text input for the micro
// benchmarks: ~totalBytes of newline-free records.
func textLines(seed int64, totalBytes int) ([]mapreduce.Record, int64) {
	m := bdgs.NewTextModel(vocabSize)
	n := totalBytes / avgLineBytes
	if n < 1 {
		n = 1
	}
	lines := m.Lines(seed, n, 10)
	recs := make([]mapreduce.Record, len(lines))
	var bytes int64
	for i, l := range lines {
		recs[i] = mapreduce.Record{Key: strconv.Itoa(i), Value: string(l)}
		bytes += int64(len(l))
	}
	return recs, bytes
}

// SortWorkload is Table 4 row "Sort": a Hadoop-style sort of text records
// by content (the micro benchmark is I/O and shuffle bound; its speedup
// degrades at large scale, the paper's Figure 3-2 callout).
type SortWorkload struct{ meta }

// NewSort constructs the workload.
func NewSort() *SortWorkload {
	return &SortWorkload{meta{
		name: "Sort", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Hadoop", dtype: "unstructured", dsource: "text",
		baseline: "32 GB text",
	}}
}

// Run implements core.Workload.
func (w *SortWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	recs, bytes := textLines(in.Seed, in.Bytes(32))
	k := newKernel(in.CPU, "sort.map", 6<<10, 0x5021)
	input := in.CPU.Alloc("sort.input", uint64(bytes)+64)

	start := time.Now()
	res, err := mapreduce.Run(mapreduce.Config{
		Workers: in.Workers, CPU: in.CPU, InputRegion: input,
	}, recs,
		func(_, v string, emit func(k, v string)) {
			// Key extraction: compare-oriented integer work over the line.
			k.enter(384)
			k.cpu.IntOps(len(v) / 2)
			k.cpu.Branches(len(v) / 8)
			emit(v, "")
		},
		func(key string, vs []string, emit func(k, v string)) {
			for range vs {
				emit(key, "")
			}
		})
	if err != nil {
		return core.Result{}, err
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"outputPairs": float64(res.OutputPairs)},
	}
	r.Finish()
	return r, nil
}

// GrepWorkload is Table 4 row "Grep": scan text records for a pattern.
// Grep has the suite's highest integer-to-FP ratio (~179 in Figure 4) and
// its MIPS rises ~2.9× from baseline to 32× (Figure 3-1).
type GrepWorkload struct{ meta }

// NewGrep constructs the workload.
func NewGrep() *GrepWorkload {
	return &GrepWorkload{meta{
		name: "Grep", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Hadoop", dtype: "unstructured", dsource: "text",
		baseline: "32 GB text",
	}}
}

// grepContains is a naive byte-comparison substring scan, counting the
// integer compare work an optimized native grep performs.
func grepContains(s, pat string) (bool, int) {
	ops := 0
	if len(pat) == 0 || len(s) < len(pat) {
		return false, 1
	}
	for i := 0; i+len(pat) <= len(s); i++ {
		j := 0
		for j < len(pat) && s[i+j] == pat[j] {
			j++
		}
		ops += j + 1
		if j == len(pat) {
			return true, ops
		}
	}
	return false, ops
}

// Run implements core.Workload.
func (w *GrepWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	recs, bytes := textLines(in.Seed, in.Bytes(32))
	// A mid-rank vocabulary word: present but selective.
	pattern := bdgs.NewTextModel(vocabSize).Lines(in.Seed+77, 1, 1)
	pat := string(pattern[0])
	k := newKernel(in.CPU, "grep.map", 3<<10, 0x6e3a)
	input := in.CPU.Alloc("grep.input", uint64(bytes)+64)

	start := time.Now()
	matches := 0
	res, err := mapreduce.Run(mapreduce.Config{
		Workers: in.Workers, CPU: in.CPU, InputRegion: input,
	}, recs,
		func(_, v string, emit func(k, v string)) {
			k.enter(512)
			hit, ops := grepContains(v, pat)
			k.cpu.IntOps(ops + len(v)/4)
			k.cpu.Branches(ops / 2)
			if hit {
				emit(v, "1")
			}
		},
		func(key string, vs []string, emit func(k, v string)) {
			emit(key, strconv.Itoa(len(vs)))
		})
	if err != nil {
		return core.Result{}, err
	}
	matches = res.OutputPairs
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{"matches": float64(matches)},
	}
	r.Finish()
	return r, nil
}

// WordCountWorkload is Table 4 row "WordCount", with the classic map-side
// combiner.
type WordCountWorkload struct {
	meta
	// DisableCombiner supports the combiner ablation bench.
	DisableCombiner bool
}

// NewWordCount constructs the workload.
func NewWordCount() *WordCountWorkload {
	return &WordCountWorkload{meta: meta{
		name: "WordCount", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "Hadoop", dtype: "unstructured", dsource: "text",
		baseline: "32 GB text",
	}}
}

// Run implements core.Workload.
func (w *WordCountWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	recs, bytes := textLines(in.Seed, in.Bytes(32))
	k := newKernel(in.CPU, "wordcount.map", 5<<10, 0x77c1)
	input := in.CPU.Alloc("wordcount.input", uint64(bytes)+64)
	sum := func(key string, vs []string, emit func(k, v string)) {
		total := 0
		for _, v := range vs {
			n, _ := strconv.Atoi(v)
			total += n
		}
		emit(key, strconv.Itoa(total))
	}
	combiner := sum
	if w.DisableCombiner {
		combiner = nil
	}

	start := time.Now()
	res, err := mapreduce.Run(mapreduce.Config{
		Workers: in.Workers, CPU: in.CPU, InputRegion: input, Combiner: combiner,
	}, recs,
		func(_, v string, emit func(k, v string)) {
			k.enter(448)
			words := 0
			st := -1
			for i := 0; i <= len(v); i++ {
				if i < len(v) && v[i] != ' ' {
					if st < 0 {
						st = i
					}
					continue
				}
				if st >= 0 {
					emit(v[st:i], "1")
					words++
					st = -1
				}
			}
			// Tokenize + hash: a handful of integer ops per byte.
			k.cpu.IntOps(len(v) + 8*words)
			k.cpu.Branches(len(v)/2 + words)
		}, sum)
	if err != nil {
		return core.Result{}, err
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: bytes, UnitName: "bytes",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"distinctWords": float64(res.OutputPairs),
			"shuffledPairs": float64(res.CombinedPairs),
		},
	}
	r.Finish()
	return r, nil
}
