package workloads

import (
	"time"

	"repro/internal/bdgs"
	"repro/internal/core"
	"repro/internal/mpi"
)

// BFSWorkload is Table 4 row "BFS": a level-synchronous, 1-D partitioned
// parallel breadth-first search over a Graph500-style power-law graph on
// the MPI substrate. Its scattered visited-map and adjacency accesses make
// it the analytics outlier in the paper's Figure 6 (highest L2 MPKI ≈ 56
// and DTLB MPKI ≈ 14 of the suite).
type BFSWorkload struct {
	meta
	// EdgeFactor is edges per vertex (default 16, the Graph500 setting).
	EdgeFactor int
	// Ranks is the MPI world size (default 4).
	Ranks int
}

// NewBFS constructs the workload.
func NewBFS() *BFSWorkload {
	return &BFSWorkload{meta: meta{
		name: "BFS", class: core.OfflineAnalytics, metric: core.DPS,
		stack: "MPI", dtype: "unstructured", dsource: "graph",
		baseline: "2^15 vertices",
	}, EdgeFactor: 16, Ranks: 4}
}

// Run implements core.Workload.
func (w *BFSWorkload) Run(in core.Input) (core.Result, error) {
	in = in.Normalize()
	n := in.Vertices()
	g := bdgs.GenGraph(in.Seed, log2ceil(n), w.EdgeFactor, bdgs.WebGraphParams(), false)
	k := newKernel(in.CPU, "bfs.kernel", 4<<10, 0xbf5)
	adjRegion := in.CPU.Alloc("bfs.adj", uint64(g.BytesApprox())+64)
	// Per-vertex BFS state is a 64-byte record (parent, level, lock word,
	// padding), as in Graph500 reference codes: the scattered probe/update
	// of this array is what gives BFS its outlier L2 and DTLB MPKI.
	visRegion := in.CPU.Alloc("bfs.visited", uint64(n)*64+64)
	P := w.Ranks

	visitedCount := int64(0)
	start := time.Now()
	err := mpi.Run(P, in.CPU, func(c *mpi.Comm) error {
		rank := c.Rank()
		visited := make([]bool, n) // local view of owned vertices (v%P==rank)
		var frontier []int32
		root := int32(0)
		if int(root)%P == rank {
			visited[root] = true
			frontier = []int32{root}
		}
		for level := 0; ; level++ {
			// Expand: bucket neighbor vertices by owner rank.
			out := make([][]int32, P)
			for _, v := range frontier {
				adj := g.Adj[v]
				k.enter(640)
				// Sequential read of v's adjacency list.
				k.cpu.LoadR(adjRegion, uint64(v)*uint64(w.EdgeFactor)*4, len(adj)*4)
				k.cpu.IntOps(4 * len(adj))
				k.cpu.Branches(len(adj))
				k.cpu.FPOps(2) // per-vertex traversal statistics
				for _, nb := range adj {
					out[int(nb)%P] = append(out[int(nb)%P], nb)
				}
			}
			in2 := c.AlltoallInt32s(out)
			// Contract: mark newly visited owned vertices.
			frontier = frontier[:0]
			newly := int64(0)
			for _, vec := range in2 {
				for _, v := range vec {
					// Scattered probe + store into the visited state.
					k.cpu.LoadR(visRegion, uint64(v)*64, 8)
					k.cpu.IntOps(6)
					k.cpu.Branches(2)
					if !visited[v] {
						visited[v] = true
						k.cpu.StoreR(visRegion, uint64(v)*64, 16)
						frontier = append(frontier, v)
						newly++
					}
				}
			}
			total := c.AllreduceInt64(newly, func(a, b int64) int64 { return a + b })
			if rank == 0 {
				visitedCount += total
			}
			if total == 0 {
				return nil
			}
		}
	})
	if err != nil {
		return core.Result{}, err
	}
	r := core.Result{
		Workload: w.name, Scale: in.Scale, Units: int64(n), UnitName: "vertices",
		Elapsed: time.Since(start), Metric: w.metric, Counts: in.CPU.Counts(),
		Extra: map[string]float64{
			"reached": float64(visitedCount + 1), // +1 for the root
			"edges":   float64(g.Edges()),
		},
	}
	r.Finish()
	return r, nil
}
