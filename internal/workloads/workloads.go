package workloads

import "repro/internal/core"

// All returns the nineteen BigDataBench workloads in the Table 6
// experiment order (IDs 1-19).
func All() []core.Workload {
	return []core.Workload{
		NewSort(),           // 1
		NewGrep(),           // 2
		NewWordCount(),      // 3
		NewBFS(),            // 4
		NewRead(),           // 5
		NewWrite(),          // 6
		NewScan(),           // 7
		NewSelectQuery(),    // 8
		NewAggregateQuery(), // 9
		NewJoinQuery(),      // 10
		NewNutchServer(),    // 11
		NewPageRank(),       // 12
		NewIndex(),          // 13
		NewOlioServer(),     // 14
		NewKMeans(),         // 15
		NewCC(),             // 16
		NewRubisServer(),    // 17
		NewCF(),             // 18
		NewBayes(),          // 19
	}
}

// Extras returns the workloads beyond the paper's nineteen: the
// scale-out variants this repository adds on top of the suite. They are
// reachable through ByName and cmd/bdbench but excluded from All so the
// Table 4/6 roster keeps the paper's exact shape.
func Extras() []core.Workload {
	return []core.Workload{
		NewClusterOLTP(),
	}
}

// ByName returns the workload with the given Table 4 name (or an Extras
// name), or nil.
func ByName(name string) core.Workload {
	for _, w := range All() {
		if w.Name() == name {
			return w
		}
	}
	for _, w := range Extras() {
		if w.Name() == name {
			return w
		}
	}
	return nil
}

// Names returns the workload names in suite order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name()
	}
	return out
}
