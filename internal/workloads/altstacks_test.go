package workloads

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestAltStackRoster(t *testing.T) {
	alts := AltStacks()
	if len(alts) != 4 {
		t.Fatalf("alt stacks = %d", len(alts))
	}
	for _, w := range alts {
		if w.Stack() != "Spark" && w.Stack() != "MPI" {
			t.Errorf("%s: unexpected stack %s", w.Name(), w.Stack())
		}
	}
}

func TestWordCountSparkMatchesHadoop(t *testing.T) {
	in := tinyInput()
	hadoop, err := NewWordCount().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	spark, err := NewWordCountSpark().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if hadoop.Extra["distinctWords"] != spark.Extra["distinctWords"] {
		t.Errorf("stack implementations disagree: hadoop %.0f vs spark %.0f distinct words",
			hadoop.Extra["distinctWords"], spark.Extra["distinctWords"])
	}
}

func TestWordCountMPIMatchesHadoop(t *testing.T) {
	in := tinyInput()
	hadoop, err := NewWordCount().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	mpiRes, err := NewWordCountMPI().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if hadoop.Extra["distinctWords"] != mpiRes.Extra["distinctWords"] {
		t.Errorf("hadoop %.0f vs mpi %.0f distinct words",
			hadoop.Extra["distinctWords"], mpiRes.Extra["distinctWords"])
	}
}

func TestGrepSparkMatchesExpectations(t *testing.T) {
	res := runTiny(t, NewGrepSpark(), false)
	if res.Extra["matches"] <= 0 {
		t.Error("the pattern 'the' must match some lines")
	}
}

func TestPageRankMPIMassAgreesWithSpark(t *testing.T) {
	in := tinyInput()
	spark, err := NewPageRank().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	mpiRes, err := NewPageRankMPI().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	// Same graph, same damping: total rank mass must agree closely.
	if math.Abs(spark.Extra["rankMass"]-mpiRes.Extra["rankMass"]) > 0.02 {
		t.Errorf("rank mass disagrees: spark %.4f vs mpi %.4f",
			spark.Extra["rankMass"], mpiRes.Extra["rankMass"])
	}
}

// TestStackShapesL1I is the Section 6.3.2 experiment the paper proposes:
// replacing MapReduce with MPI collapses the instruction-cache pressure.
func TestStackShapesL1I(t *testing.T) {
	if testing.Short() {
		t.Skip("characterized runs")
	}
	in := tinyInput()
	in.Scale = 4
	hadoop, err := core.Characterize(NewWordCount(), in, sim.XeonE5645())
	if err != nil {
		t.Fatal(err)
	}
	mpiRes, err := core.Characterize(NewWordCountMPI(), in, sim.XeonE5645())
	if err != nil {
		t.Fatal(err)
	}
	if mpiRes.Counts.L1IMPKI() >= hadoop.Counts.L1IMPKI() {
		t.Errorf("MPI WordCount L1I MPKI %.2f should undercut Hadoop's %.2f",
			mpiRes.Counts.L1IMPKI(), hadoop.Counts.L1IMPKI())
	}
}
