package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// tinyInput is a fast test configuration: 32 "GB" baseline ≈ 512 KiB,
// small graphs, few requests.
func tinyInput() core.Input {
	return core.Input{
		Scale:         1,
		ScaleUnit:     1 << 14, // 16 KiB per paper-GB
		PagesPerMPage: 60,
		ReqsPerUnit:   60,
		VertexUnit:    1 << 10,
		Seed:          7,
		Workers:       2,
	}
}

func runTiny(t *testing.T, w core.Workload, instrument bool) core.Result {
	t.Helper()
	in := tinyInput()
	if instrument {
		in.CPU = sim.New(sim.XeonE5645())
	}
	res, err := w.Run(in)
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	if res.Units <= 0 {
		t.Fatalf("%s: no units processed", w.Name())
	}
	if res.Value <= 0 {
		t.Fatalf("%s: metric value %f", w.Name(), res.Value)
	}
	if instrument && res.Counts.Instructions() == 0 {
		t.Fatalf("%s: instrumented run recorded no instructions", w.Name())
	}
	if !instrument && res.Counts.Instructions() != 0 {
		t.Fatalf("%s: uninstrumented run recorded instructions", w.Name())
	}
	return res
}

func TestSuiteHasNineteenWorkloads(t *testing.T) {
	ws := All()
	if len(ws) != 19 {
		t.Fatalf("suite has %d workloads, want 19 (Table 4)", len(ws))
	}
	seen := map[string]bool{}
	classes := map[core.Class]int{}
	stacks := map[string]bool{}
	sources := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name()] {
			t.Errorf("duplicate workload %s", w.Name())
		}
		seen[w.Name()] = true
		classes[w.Class()]++
		stacks[w.Stack()] = true
		sources[w.DataSource()] = true
		if w.BaselineInput() == "" {
			t.Errorf("%s: missing baseline description", w.Name())
		}
	}
	// Table 4 coverage: all application types and data sources present.
	for _, c := range []core.Class{core.OfflineAnalytics, core.RealtimeAnalytics,
		core.OnlineService, core.CloudOLTP} {
		if classes[c] == 0 {
			t.Errorf("no workload of class %s", c)
		}
	}
	for _, s := range []string{"text", "graph", "table"} {
		if !sources[s] {
			t.Errorf("no workload with data source %s", s)
		}
	}
	if len(stacks) < 5 {
		t.Errorf("only %d distinct stacks; Table 4 covers more", len(stacks))
	}
}

func TestByName(t *testing.T) {
	if ByName("Sort") == nil || ByName("Nutch Server") == nil {
		t.Fatal("ByName failed for known workloads")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName returned a workload for an unknown name")
	}
}

func TestSortRuns(t *testing.T) {
	res := runTiny(t, NewSort(), false)
	if res.Extra["outputPairs"] <= 0 {
		t.Error("sort produced no output")
	}
}

func TestGrepFindsMatches(t *testing.T) {
	res := runTiny(t, NewGrep(), false)
	if res.Extra["matches"] < 0 {
		t.Error("negative match count")
	}
}

func TestGrepContains(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello world", "world", true},
		{"hello world", "word", false},
		{"aaa", "aaaa", false},
		{"abc", "", false},
		{"the needle is here", "needle", true},
	}
	for _, c := range cases {
		got, _ := grepContains(c.s, c.pat)
		if got != c.want {
			t.Errorf("grepContains(%q,%q) = %v", c.s, c.pat, got)
		}
	}
}

func TestWordCountConservation(t *testing.T) {
	res := runTiny(t, NewWordCount(), false)
	if res.Extra["distinctWords"] <= 0 {
		t.Error("no distinct words")
	}
	if res.Extra["shuffledPairs"] < res.Extra["distinctWords"] {
		t.Error("combined pairs cannot be fewer than distinct words")
	}
}

func TestWordCountCombinerAblation(t *testing.T) {
	w := NewWordCount()
	with := runTiny(t, w, false)
	w.DisableCombiner = true
	without := runTiny(t, w, false)
	if with.Extra["distinctWords"] != without.Extra["distinctWords"] {
		t.Error("combiner changed the result")
	}
	if with.Extra["shuffledPairs"] >= without.Extra["shuffledPairs"] {
		t.Error("combiner did not reduce shuffled pairs")
	}
}

func TestBFSReachesMostVertices(t *testing.T) {
	res := runTiny(t, NewBFS(), false)
	// Power-law graphs have a giant component containing vertex 0; a BFS
	// from it must reach a large fraction.
	if res.Extra["reached"] < float64(res.Units)/4 {
		t.Errorf("BFS reached only %.0f of %d vertices", res.Extra["reached"], res.Units)
	}
}

func TestOLTPWorkloads(t *testing.T) {
	read := runTiny(t, NewRead(), false)
	if read.Extra["hitRate"] < 0.99 {
		t.Errorf("read hit rate %.2f; all keys exist", read.Extra["hitRate"])
	}
	write := runTiny(t, NewWrite(), false)
	if write.Extra["flushes"] < 0 {
		t.Error("write stats missing")
	}
	scan := runTiny(t, NewScan(), false)
	if scan.Extra["scans"] <= 0 {
		t.Error("no scans executed")
	}
}

func TestClusterOLTPWorkload(t *testing.T) {
	w := NewClusterOLTP()
	w.Shards = 4
	w.Replication = 2
	w.Clients = 4
	res := runTiny(t, w, false)
	if res.Extra["hitRate"] <= 0.5 {
		t.Errorf("cluster hit rate %.2f; preloaded Zipf reads should mostly hit", res.Extra["hitRate"])
	}
	if res.Extra["latP99Us"] <= 0 {
		t.Error("no p99 latency recorded")
	}
	if res.Extra["batches"] <= 0 {
		t.Error("no batches flowed through the shard queues")
	}
	if res.Extra["shards"] != 4 || res.Extra["replication"] != 2 {
		t.Errorf("config not reported: %+v", res.Extra)
	}
	// The instrumented variant emits the framework+store event stream.
	iw := NewClusterOLTP()
	iw.Shards = 2
	iw.Clients = 2
	runTiny(t, iw, true)
}

func TestClusterOLTPInExtras(t *testing.T) {
	if ByName("Cluster OLTP") == nil {
		t.Fatal("Cluster OLTP not reachable via ByName")
	}
	if len(All()) != 19 {
		t.Fatalf("All() = %d workloads; Extras must not leak into the paper roster", len(All()))
	}
}

func TestRelationalWorkloads(t *testing.T) {
	sel := runTiny(t, NewSelectQuery(), false)
	if sel.Extra["selected"] <= 0 || sel.Extra["selected"] >= sel.Extra["inputRows"] {
		t.Errorf("select predicate not selective: %.0f of %.0f",
			sel.Extra["selected"], sel.Extra["inputRows"])
	}
	agg := runTiny(t, NewAggregateQuery(), false)
	if agg.Extra["groups"] <= 0 {
		t.Error("no aggregation groups")
	}
	runTiny(t, NewJoinQuery(), false) // join invariant checked inside Run
}

func TestNutchServer(t *testing.T) {
	res := runTiny(t, NewNutchServer(), false)
	if res.Extra["hitsPerQuery"] <= 0 {
		t.Error("queries returned no hits; query log should hit the corpus")
	}
}

func TestNutchServerSharded(t *testing.T) {
	single := runTiny(t, NewNutchServer(), false)
	w := NewNutchServer()
	w.IndexShards = 4
	sharded := runTiny(t, w, false)
	if sharded.Extra["indexShards"] != 4 {
		t.Fatalf("indexShards = %v", sharded.Extra["indexShards"])
	}
	// Scatter-gather over the same corpus answers the same query log with
	// the same hit volume.
	if sharded.Extra["hitsPerQuery"] != single.Extra["hitsPerQuery"] {
		t.Errorf("hitsPerQuery %.3f sharded vs %.3f single",
			sharded.Extra["hitsPerQuery"], single.Extra["hitsPerQuery"])
	}
}

func TestIndexBuildsPostings(t *testing.T) {
	res := runTiny(t, NewIndex(), false)
	if res.Extra["terms"] <= 0 {
		t.Error("no terms indexed")
	}
}

func TestPageRankMassConserved(t *testing.T) {
	res := runTiny(t, NewPageRank(), false)
	// With damping 0.85 and dangling pages dropped, total mass stays in
	// (0.15, 1]; it must remain a sane probability mass.
	if m := res.Extra["rankMass"]; m < 0.1 || m > 1.01 {
		t.Errorf("rank mass %.3f out of range", m)
	}
}

func TestOlioServer(t *testing.T) {
	res := runTiny(t, NewOlioServer(), false)
	if res.Units != int64(tinyInput().ReqsPerUnit) {
		t.Errorf("served %d requests, want %d", res.Units, tinyInput().ReqsPerUnit)
	}
}

func TestKMeansConverges(t *testing.T) {
	res := runTiny(t, NewKMeans(), false)
	if res.Extra["iterations"] <= 0 {
		t.Error("kmeans did not iterate")
	}
	if res.Extra["lastMove"] < 0 {
		t.Error("negative centroid movement")
	}
}

func TestCCFindsComponents(t *testing.T) {
	res := runTiny(t, NewCC(), false)
	comps := res.Extra["components"]
	if comps < 1 || comps > float64(res.Units) {
		t.Errorf("components = %.0f of %d vertices", comps, res.Units)
	}
}

func TestRubisServer(t *testing.T) {
	res := runTiny(t, NewRubisServer(), false)
	if res.Units <= 0 {
		t.Error("no requests served")
	}
}

func TestCFProducesPairs(t *testing.T) {
	res := runTiny(t, NewCF(), false)
	if res.Extra["itemPairs"] <= 0 {
		t.Error("no co-occurrence pairs")
	}
}

func TestBayesAccuracyAboveChance(t *testing.T) {
	res := runTiny(t, NewBayes(), false)
	// The generator embeds sentiment signal; NB must beat the majority
	// class somewhat... at minimum it must produce a valid accuracy.
	acc := res.Extra["accuracy"]
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %.2f invalid", acc)
	}
	if acc < 0.5 {
		t.Errorf("accuracy %.2f below chance", acc)
	}
}

func TestAllWorkloadsInstrumented(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs all 19 instrumented")
	}
	for _, w := range All() {
		res := runTiny(t, w, true)
		k := res.Counts
		if k.L1I.Accesses == 0 || k.L1D.Accesses == 0 {
			t.Errorf("%s: caches untouched", w.Name())
		}
		mix := k.Mix()
		if mix.Integer < mix.FP {
			t.Errorf("%s: FP-dominated mix (%f vs %f); big-data workloads are integer-heavy",
				w.Name(), mix.Integer, mix.FP)
		}
	}
}

func TestDeterministicResultsAcrossRuns(t *testing.T) {
	a := runTiny(t, NewWordCount(), false)
	b := runTiny(t, NewWordCount(), false)
	if a.Extra["distinctWords"] != b.Extra["distinctWords"] {
		t.Error("same seed produced different word counts")
	}
}
