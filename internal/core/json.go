package core

import (
	"encoding/json"
	"io"
	"time"
)

// ResultJSON is the stable JSON projection of a Result, for external
// plotting and archival tooling (the TSV figure series cover the paper
// artifacts; this covers ad-hoc runs).
type ResultJSON struct {
	Workload  string             `json:"workload"`
	Scale     int                `json:"scale"`
	Units     int64              `json:"units"`
	UnitName  string             `json:"unitName"`
	ElapsedMs float64            `json:"elapsedMs"`
	Value     float64            `json:"value"`
	Metric    string             `json:"metric"`
	Extra     map[string]float64 `json:"extra,omitempty"`

	// Architectural metrics, present only for characterized runs.
	Arch *ArchJSON `json:"arch,omitempty"`
}

// ArchJSON summarizes the simulated counters.
type ArchJSON struct {
	Instructions uint64  `json:"instructions"`
	L1IMPKI      float64 `json:"l1iMPKI"`
	L1DMPKI      float64 `json:"l1dMPKI"`
	L2MPKI       float64 `json:"l2MPKI"`
	L3MPKI       float64 `json:"l3MPKI"`
	ITLBMPKI     float64 `json:"itlbMPKI"`
	DTLBMPKI     float64 `json:"dtlbMPKI"`
	IntToFP      float64 `json:"intToFPRatio"`
	FPIntensity  float64 `json:"fpIntensity"`
	IntIntensity float64 `json:"intIntensity"`
	DRAMBytes    uint64  `json:"dramBytes"`
}

// ToJSON converts a result for serialization.
func (r Result) ToJSON() ResultJSON {
	out := ResultJSON{
		Workload:  r.Workload,
		Scale:     r.Scale,
		Units:     r.Units,
		UnitName:  r.UnitName,
		ElapsedMs: float64(r.Elapsed) / float64(time.Millisecond),
		Value:     r.Value,
		Metric:    r.Metric.String(),
		Extra:     r.Extra,
	}
	if k := r.Counts; k.Instructions() > 0 {
		out.Arch = &ArchJSON{
			Instructions: k.Instructions(),
			L1IMPKI:      k.L1IMPKI(),
			L1DMPKI:      k.L1DMPKI(),
			L2MPKI:       k.L2MPKI(),
			L3MPKI:       k.L3MPKI(),
			ITLBMPKI:     k.ITLBMPKI(),
			DTLBMPKI:     k.DTLBMPKI(),
			IntToFP:      k.IntToFPRatio(),
			FPIntensity:  k.FPIntensity(),
			IntIntensity: k.IntIntensity(),
			DRAMBytes:    k.DRAMBytes(),
		}
	}
	return out
}

// EncodeJSON writes v to w as indented JSON with a trailing newline —
// the one JSON shape every human-facing surface (bdbench -json, the
// bdserve /statz endpoint) emits, so outputs stay diffable and
// pipeable into jq without per-caller encoder setup.
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteJSON encodes results as a JSON array to w.
func WriteJSON(w io.Writer, results []Result) error {
	out := make([]ResultJSON, len(results))
	for i, r := range results {
		out[i] = r.ToJSON()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
