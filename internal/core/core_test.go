package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestInputNormalizeDefaults(t *testing.T) {
	in := Input{}.Normalize()
	if in.Scale != 1 || in.ScaleUnit != DefaultScaleUnit ||
		in.PagesPerMPage != DefaultPagesPerMPage ||
		in.ReqsPerUnit != DefaultReqsPerUnit ||
		in.VertexUnit != DefaultVertexUnit || in.Seed == 0 {
		t.Fatalf("bad defaults: %+v", in)
	}
}

func TestInputSizing(t *testing.T) {
	in := Input{Scale: 4, ScaleUnit: 1000, PagesPerMPage: 10,
		ReqsPerUnit: 5, VertexUnit: 8}.Normalize()
	if got := in.Bytes(32); got != 32*4*1000 {
		t.Errorf("Bytes = %d", got)
	}
	if got := in.Vertices(); got != 32 {
		t.Errorf("Vertices = %d", got)
	}
	if got := in.Pages(); got != 40 {
		t.Errorf("Pages = %d", got)
	}
	if got := in.Requests(); got != 20 {
		t.Errorf("Requests = %d", got)
	}
}

func TestResultFinish(t *testing.T) {
	r := Result{Units: 1000, Elapsed: 2 * time.Second}
	r.Finish()
	if r.Value != 500 {
		t.Fatalf("Value = %f", r.Value)
	}
	zero := Result{Units: 10}
	zero.Finish() // zero elapsed: value stays zero, no panic
	if zero.Value != 0 {
		t.Fatal("zero-elapsed result should have zero value")
	}
}

func TestExperimentsMatchTable6(t *testing.T) {
	exps := Experiments()
	if len(exps) != 19 {
		t.Fatalf("Table 6 has 19 rows, got %d", len(exps))
	}
	for i, e := range exps {
		if e.ID != i+1 {
			t.Errorf("experiment %d has ID %d", i+1, e.ID)
		}
		if e.Workload == "" || e.Stack == "" || e.InputRule == "" {
			t.Errorf("experiment %d incomplete: %+v", e.ID, e)
		}
	}
	if got := Scales(); len(got) != 5 || got[0] != 1 || got[4] != 32 {
		t.Errorf("Scales = %v, want 1,4,8,16,32", got)
	}
}

func TestClassAndMetricStrings(t *testing.T) {
	for c, want := range map[Class]string{
		OfflineAnalytics: "Offline Analytics", RealtimeAnalytics: "Realtime Analytics",
		OnlineService: "Online Service", CloudOLTP: "Cloud OLTP",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if DPS.String() != "DPS" || RPS.String() != "RPS" || OPS.String() != "OPS" {
		t.Error("metric strings wrong")
	}
}

// fakeWorkload implements Workload for runner tests.
type fakeWorkload struct {
	fail bool
}

func (f fakeWorkload) Name() string          { return "Fake" }
func (f fakeWorkload) Class() Class          { return OfflineAnalytics }
func (f fakeWorkload) Metric() Metric        { return DPS }
func (f fakeWorkload) Stack() string         { return "None" }
func (f fakeWorkload) DataType() string      { return "unstructured" }
func (f fakeWorkload) DataSource() string    { return "text" }
func (f fakeWorkload) BaselineInput() string { return "1 unit" }

func (f fakeWorkload) Run(in Input) (Result, error) {
	if f.fail {
		return Result{}, errTest
	}
	in = in.Normalize()
	if in.CPU != nil {
		r := in.CPU.NewCodeRegion("fake", 1024)
		in.CPU.Code(r, 0, 256)
		in.CPU.IntOps(1000 * in.Scale)
	}
	res := Result{
		Workload: "Fake", Scale: in.Scale,
		Units: int64(1000 * in.Scale), UnitName: "units",
		Elapsed: time.Duration(in.Scale) * time.Millisecond,
		Metric:  DPS, Counts: in.CPU.Counts(),
	}
	res.Finish()
	return res, nil
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }

func TestCharacterizeAttachesCPU(t *testing.T) {
	res, err := Characterize(fakeWorkload{}, Input{Scale: 2}, sim.XeonE5645())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.IntInstrs != 2000 {
		t.Fatalf("counts = %+v", res.Counts)
	}
}

func TestCharacterizeWrapsErrors(t *testing.T) {
	_, err := Characterize(fakeWorkload{fail: true}, Input{}, sim.XeonE5645())
	if err == nil || !strings.Contains(err.Error(), "Fake") {
		t.Fatalf("err = %v", err)
	}
}

func TestMeasureIsUninstrumented(t *testing.T) {
	res, err := Measure(fakeWorkload{}, Input{Scale: 1, CPU: sim.New(sim.XeonE5645())})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Instructions() != 0 {
		t.Fatal("Measure must strip the CPU")
	}
}

func TestSweepCoversScales(t *testing.T) {
	rs, err := Sweep(fakeWorkload{}, Input{}, sim.XeonE5645())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("sweep returned %d results", len(rs))
	}
	for i, s := range Scales() {
		if rs[i].Scale != s {
			t.Errorf("result %d scale = %d, want %d", i, rs[i].Scale, s)
		}
	}
}

func TestSpeedupSweepNormalizesToBaseline(t *testing.T) {
	sp, rs, err := SpeedupSweep(fakeWorkload{}, Input{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 5 || len(rs) != 5 {
		t.Fatalf("lengths %d/%d", len(sp), len(rs))
	}
	if sp[0] != 1.0 {
		t.Errorf("baseline speedup = %f, want 1", sp[0])
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("x", CellF(1.5))
	tab.AddRow(CellI(42), CellF(2.0))
	out := tab.Render()
	if !strings.Contains(out, "T\n=") || !strings.Contains(out, "1.5") ||
		!strings.Contains(out, "42") {
		t.Fatalf("render:\n%s", out)
	}
	tsv := tab.TSV()
	if !strings.HasPrefix(tsv, "a\tbb\n") {
		t.Fatalf("tsv:\n%s", tsv)
	}
	if CellF(2.0) != "2" || CellF(0.125) != "0.125" {
		t.Error("CellF trimming wrong")
	}
}
