package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestResultToJSON(t *testing.T) {
	r := Result{
		Workload: "Sort", Scale: 4, Units: 1000, UnitName: "bytes",
		Elapsed: 2 * time.Second, Value: 500, Metric: DPS,
		Extra: map[string]float64{"x": 1},
	}
	j := r.ToJSON()
	if j.Workload != "Sort" || j.ElapsedMs != 2000 || j.Metric != "DPS" {
		t.Fatalf("json = %+v", j)
	}
	if j.Arch != nil {
		t.Fatal("uninstrumented result must omit arch block")
	}
	r.Counts = sim.Counts{IntInstrs: 1000, L1I: sim.CacheStats{Accesses: 10, Misses: 5}}
	j = r.ToJSON()
	if j.Arch == nil || j.Arch.L1IMPKI != 5 {
		t.Fatalf("arch = %+v", j.Arch)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	err := WriteJSON(&buf, []Result{
		{Workload: "A", Metric: RPS, Units: 5},
		{Workload: "B", Metric: OPS, Units: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Workload != "A" || got[1].Metric != "OPS" {
		t.Fatalf("round trip = %+v", got)
	}
	if !strings.Contains(buf.String(), "\n") {
		t.Error("output should be indented")
	}
}
