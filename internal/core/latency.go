package core

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// LatencyRecorder collects per-request service times for the
// latency-sensitive workloads (paper Section 4.1: "an online service is
// very latency-sensitive"; Section 6.1.2: "in addition, we also care
// about latency"). It keeps every sample — request counts in this
// repository are bounded — and derives percentiles on demand.
type LatencyRecorder struct {
	samples []time.Duration
	// sorted caches the one sorted copy Percentile and Summary share;
	// any mutation invalidates it, so a p50/p95/p99 triple (or Summary)
	// over a settled recorder pays exactly one sort.
	sorted []time.Duration
}

// Record adds one request's service time.
func (l *LatencyRecorder) Record(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = nil
}

// Reserve ensures room for n more samples without reallocating, so a
// load generator that sizes its recorder up front keeps Record
// allocation-free inside the measured loop (DESIGN.md §12).
func (l *LatencyRecorder) Reserve(n int) {
	if cap(l.samples)-len(l.samples) >= n {
		return
	}
	grown := make([]time.Duration, len(l.samples), len(l.samples)+n)
	copy(grown, l.samples)
	l.samples = grown
}

// Time runs fn and records its duration.
func (l *LatencyRecorder) Time(fn func()) {
	start := time.Now()
	fn()
	l.Record(time.Since(start))
}

// Merge folds another recorder's samples into l, so per-client recorders
// collected by concurrent load generators can be summarized as one
// distribution. The argument is left unchanged.
func (l *LatencyRecorder) Merge(other *LatencyRecorder) {
	if other != nil && len(other.samples) > 0 {
		l.samples = append(l.samples, other.samples...)
		l.sorted = nil
	}
}

// Count returns the number of recorded requests.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// sortedSamples returns the cached ascending copy of the samples,
// building it on first use after a mutation.
func (l *LatencyRecorder) sortedSamples() []time.Duration {
	if l.sorted == nil && len(l.samples) > 0 {
		l.sorted = append([]time.Duration(nil), l.samples...)
		sort.Slice(l.sorted, func(i, j int) bool { return l.sorted[i] < l.sorted[j] })
	}
	return l.sorted
}

// nearestRank is the shared quantile rule: the smallest sample ≥ the
// p-quantile position of the ascending slice.
func nearestRank(sorted []time.Duration, p float64) time.Duration {
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Percentile returns the p-quantile (0 < p <= 1) service time, or 0 when
// nothing was recorded.
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	sorted := l.sortedSamples()
	if len(sorted) == 0 {
		return 0
	}
	return nearestRank(sorted, p)
}

// Mean returns the average service time.
func (l *LatencyRecorder) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range l.samples {
		total += d
	}
	return total / time.Duration(len(l.samples))
}

// LatencySummary is the standard digest of one recorded distribution —
// the per-request view the paper's latency-sensitive services report
// (nearest-rank percentiles, like Percentile). The zero value is the
// summary of an empty recorder.
type LatencySummary struct {
	Count                    int
	Mean, P50, P95, P99, Max time.Duration
}

// Summary digests the recorder with a single sort — the shared helper
// every latency-reporting surface (workload Extra maps, bdbench -net,
// the transport benchmarks) derives its p50/p95/p99/max from.
func (l *LatencyRecorder) Summary() LatencySummary {
	sorted := l.sortedSamples()
	if len(sorted) == 0 {
		return LatencySummary{}
	}
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return LatencySummary{
		Count: len(sorted),
		Mean:  total / time.Duration(len(sorted)),
		P50:   nearestRank(sorted, 0.50),
		P95:   nearestRank(sorted, 0.95),
		P99:   nearestRank(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// String renders the digest in one line for human-facing reports.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}

// Attach copies the standard latency summary into a result's Extra map
// (microsecond units: mean, p50, p95, p99, max).
func (l *LatencyRecorder) Attach(r *Result) {
	if r.Extra == nil {
		r.Extra = map[string]float64{}
	}
	s := l.Summary()
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	r.Extra["latMeanUs"] = us(s.Mean)
	r.Extra["latP50Us"] = us(s.P50)
	r.Extra["latP95Us"] = us(s.P95)
	r.Extra["latP99Us"] = us(s.P99)
	r.Extra["latMaxUs"] = us(s.Max)
}
