package core

import (
	"math"
	"sort"
	"time"
)

// LatencyRecorder collects per-request service times for the
// latency-sensitive workloads (paper Section 4.1: "an online service is
// very latency-sensitive"; Section 6.1.2: "in addition, we also care
// about latency"). It keeps every sample — request counts in this
// repository are bounded — and derives percentiles on demand.
type LatencyRecorder struct {
	samples []time.Duration
}

// Record adds one request's service time.
func (l *LatencyRecorder) Record(d time.Duration) {
	l.samples = append(l.samples, d)
}

// Time runs fn and records its duration.
func (l *LatencyRecorder) Time(fn func()) {
	start := time.Now()
	fn()
	l.Record(time.Since(start))
}

// Merge folds another recorder's samples into l, so per-client recorders
// collected by concurrent load generators can be summarized as one
// distribution. The argument is left unchanged.
func (l *LatencyRecorder) Merge(other *LatencyRecorder) {
	if other != nil {
		l.samples = append(l.samples, other.samples...)
	}
}

// Count returns the number of recorded requests.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Percentile returns the p-quantile (0 < p <= 1) service time, or 0 when
// nothing was recorded.
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Nearest-rank: the smallest sample ≥ the p-quantile position.
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the average service time.
func (l *LatencyRecorder) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range l.samples {
		total += d
	}
	return total / time.Duration(len(l.samples))
}

// Attach copies the standard latency summary into a result's Extra map
// (microsecond units: mean, p50, p95, p99).
func (l *LatencyRecorder) Attach(r *Result) {
	if r.Extra == nil {
		r.Extra = map[string]float64{}
	}
	r.Extra["latMeanUs"] = float64(l.Mean()) / float64(time.Microsecond)
	r.Extra["latP50Us"] = float64(l.Percentile(0.50)) / float64(time.Microsecond)
	r.Extra["latP95Us"] = float64(l.Percentile(0.95)) / float64(time.Microsecond)
	r.Extra["latP99Us"] = float64(l.Percentile(0.99)) / float64(time.Microsecond)
}
