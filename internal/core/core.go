// Package core defines the BigDataBench suite itself — the paper's primary
// contribution: the workload abstraction every benchmark implements, the
// input-scaling rules of Table 6, the user-perceivable metrics of Section
// 6.1.2 (DPS for analytics, OPS for Cloud OLTP, RPS for online services),
// and the characterization runner that pairs a workload with a simulated
// processor (internal/sim) to produce the architectural metrics of
// Figures 2-6.
package core

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Class is the application type of a workload (paper Section 4.1 divides
// big-data applications into three types; Cloud OLTP is called out as its
// own fundamental group in Table 4).
type Class int

// Application classes.
const (
	OfflineAnalytics Class = iota
	RealtimeAnalytics
	OnlineService
	CloudOLTP
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case OfflineAnalytics:
		return "Offline Analytics"
	case RealtimeAnalytics:
		return "Realtime Analytics"
	case OnlineService:
		return "Online Service"
	case CloudOLTP:
		return "Cloud OLTP"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Metric is the user-perceivable measuring unit for a workload.
type Metric int

// User-perceivable metrics (Section 6.1.2).
const (
	DPS Metric = iota // data processed per second (analytics)
	RPS               // requests per second (online services)
	OPS               // operations per second (Cloud OLTP)
)

// String returns the metric abbreviation.
func (m Metric) String() string {
	switch m {
	case DPS:
		return "DPS"
	case RPS:
		return "RPS"
	default:
		return "OPS"
	}
}

// Default scale substitutions (DESIGN.md §1): the paper's testbed runs
// 32 GB–1 TB inputs on 14 nodes; this repository maps the paper's units to
// laptop-scale equivalents while preserving the ×{1,4,8,16,32} sweep and
// the working-set-vs-cache-size ratios that drive the architectural
// results.
const (
	// DefaultScaleUnit is the number of bytes modeled per "paper GB".
	DefaultScaleUnit = 1 << 20
	// DefaultPagesPerMPage is generated pages per "paper 10^6 pages".
	DefaultPagesPerMPage = 1200
	// DefaultReqsPerUnit is processed requests per "paper 100 req/s".
	DefaultReqsPerUnit = 1500
	// DefaultVertexUnit is the paper's graph-workload base input (2^15
	// vertices, Table 6 rows 4, 16 and 18).
	DefaultVertexUnit = 1 << 15
)

// Input parameterizes one workload run.
type Input struct {
	// Scale is the data-volume multiplier over the baseline (Table 6 uses
	// 1, 4, 8, 16 and 32).
	Scale int
	// ScaleUnit overrides DefaultScaleUnit (bytes per paper-GB).
	ScaleUnit int64
	// PagesPerMPage overrides DefaultPagesPerMPage.
	PagesPerMPage int
	// ReqsPerUnit overrides DefaultReqsPerUnit.
	ReqsPerUnit int
	// VertexUnit overrides DefaultVertexUnit (graph baseline vertices;
	// must be a power of two).
	VertexUnit int
	// Seed makes data generation and request sampling deterministic.
	Seed int64
	// Workers is substrate parallelism (0 = substrate default).
	Workers int
	// CPU attaches the run to a simulated processor; nil runs
	// uninstrumented (for pure wall-clock measurement).
	CPU *sim.CPU
}

// Normalize fills defaults.
func (in Input) Normalize() Input {
	if in.Scale <= 0 {
		in.Scale = 1
	}
	if in.ScaleUnit <= 0 {
		in.ScaleUnit = DefaultScaleUnit
	}
	if in.PagesPerMPage <= 0 {
		in.PagesPerMPage = DefaultPagesPerMPage
	}
	if in.ReqsPerUnit <= 0 {
		in.ReqsPerUnit = DefaultReqsPerUnit
	}
	if in.VertexUnit <= 0 {
		in.VertexUnit = DefaultVertexUnit
	}
	if in.Seed == 0 {
		in.Seed = 1
	}
	return in
}

// Bytes converts a paper-GB figure (e.g. Table 6's 32×scale GB) to bytes.
func (in Input) Bytes(paperGB int) int {
	return int(int64(paperGB) * int64(in.Scale) * in.ScaleUnit)
}

// Vertices converts the paper's 2^15×scale vertex unit. The result is a
// power of two when Scale is (Table 6 uses 1,4,8,16,32).
func (in Input) Vertices() int { return in.VertexUnit * in.Scale }

// Pages converts the paper's 10^6×scale page unit.
func (in Input) Pages() int { return in.PagesPerMPage * in.Scale }

// Requests converts the paper's 100×scale req/s unit into a request count.
func (in Input) Requests() int { return in.ReqsPerUnit * in.Scale }

// Result is the outcome of one workload run.
type Result struct {
	Workload string
	Scale    int
	// Units is the number of processed units (bytes for byte-metered
	// analytics, vertices/pages for graph analytics, operations for Cloud
	// OLTP, requests for services).
	Units int64
	// UnitName names the unit ("bytes", "vertices", "pages", "ops", "reqs").
	UnitName string
	Elapsed  time.Duration
	// Value is the user-perceivable metric (units per second).
	Value  float64
	Metric Metric
	// Counts holds the simulated architectural counters when the run was
	// instrumented (zero otherwise).
	Counts sim.Counts
	// Extra carries workload-specific outputs (e.g. kmeans iterations,
	// pagerank residual) used by tests and reports.
	Extra map[string]float64
}

// Finish computes Value from Units and Elapsed.
func (r *Result) Finish() {
	if sec := r.Elapsed.Seconds(); sec > 0 {
		r.Value = float64(r.Units) / sec
	}
}

// Workload is one of the nineteen BigDataBench benchmarks.
type Workload interface {
	// Name is the Table 4 workload name (e.g. "Sort", "Nutch Server").
	Name() string
	// Class is the application type.
	Class() Class
	// Metric is the user-perceivable metric for this workload.
	Metric() Metric
	// Stack names the paper software stack the substrate substitutes
	// ("Hadoop", "Spark", "MPI", "HBase", "Hive", "Nutch",
	// "Apache+MySQL", ...).
	Stack() string
	// DataType and DataSource place the workload in Table 4's taxonomy.
	DataType() string
	DataSource() string
	// BaselineInput describes the Table 6 baseline input.
	BaselineInput() string
	// Run executes the workload at the given input scale.
	Run(in Input) (Result, error)
}
