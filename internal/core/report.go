package core

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned report table used by the figure and
// table emitters.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row, stringifying the cells with %v (floats with
// Cell/CellF for formatting control).
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// CellF formats a float cell with 3 significant-style decimals, trimming
// trailing zeros.
func CellF(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// CellI formats an integer cell.
func CellI(v int64) string { return fmt.Sprintf("%d", v) }

// Render returns the aligned ASCII rendering.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 4)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// TSV returns the tab-separated rendering (for plotting scripts).
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}
