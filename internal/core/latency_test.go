package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyRecorderPercentiles(t *testing.T) {
	var l LatencyRecorder
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if got := l.Percentile(0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := l.Percentile(0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := l.Percentile(1.0); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	if l.Count() != 100 {
		t.Errorf("count = %d", l.Count())
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	var l LatencyRecorder
	if l.Percentile(0.5) != 0 || l.Mean() != 0 || l.Count() != 0 {
		t.Fatal("empty recorder must return zeros")
	}
	var r Result
	l.Attach(&r)
	if r.Extra["latP99Us"] != 0 {
		t.Fatal("attach on empty recorder should produce zeros")
	}
}

func TestLatencyTime(t *testing.T) {
	var l LatencyRecorder
	l.Time(func() { time.Sleep(time.Millisecond) })
	if l.Count() != 1 || l.Percentile(1) < time.Millisecond {
		t.Fatalf("Time did not record a plausible duration: %v", l.Percentile(1))
	}
}

// Property: percentiles are monotonic in p and bounded by min/max samples.
func TestLatencyPercentileMonotonicProperty(t *testing.T) {
	f := func(ms []uint16) bool {
		if len(ms) == 0 {
			return true
		}
		var l LatencyRecorder
		var lo, hi time.Duration = 1 << 62, 0
		for _, m := range ms {
			d := time.Duration(m) * time.Microsecond
			l.Record(d)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		p50, p95, p99 := l.Percentile(0.5), l.Percentile(0.95), l.Percentile(0.99)
		return p50 <= p95 && p95 <= p99 && p99 <= hi && p50 >= lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLatencyAttach(t *testing.T) {
	var l LatencyRecorder
	l.Record(time.Millisecond)
	l.Record(3 * time.Millisecond)
	r := Result{}
	l.Attach(&r)
	if r.Extra["latMeanUs"] != 2000 {
		t.Errorf("latMeanUs = %f", r.Extra["latMeanUs"])
	}
	if r.Extra["latP99Us"] != 3000 {
		t.Errorf("latP99Us = %f", r.Extra["latP99Us"])
	}
	if r.Extra["latMaxUs"] != 3000 {
		t.Errorf("latMaxUs = %f", r.Extra["latMaxUs"])
	}
}

// TestLatencySummary pins the digest against the one-at-a-time
// accessors: both derivations must agree sample for sample.
func TestLatencySummary(t *testing.T) {
	var l LatencyRecorder
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	s := l.Summary()
	if s.Count != 100 || s.Mean != l.Mean() ||
		s.P50 != l.Percentile(0.50) || s.P95 != l.Percentile(0.95) ||
		s.P99 != l.Percentile(0.99) || s.Max != l.Percentile(1.0) {
		t.Fatalf("summary %+v disagrees with accessors", s)
	}
	if s.String() == "" || (LatencySummary{}).String() == "" {
		t.Fatal("String must render")
	}
	var empty LatencyRecorder
	if empty.Summary() != (LatencySummary{}) {
		t.Fatal("empty recorder must summarize to zeros")
	}
}

// TestLatencySortCacheInvalidation pins the shared single-sort path:
// repeated percentile calls reuse one sorted copy, and any mutation
// (Record or Merge) invalidates it rather than serving stale ranks.
func TestLatencySortCacheInvalidation(t *testing.T) {
	var l LatencyRecorder
	l.Record(10 * time.Millisecond)
	if got := l.Percentile(1.0); got != 10*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	l.Record(20 * time.Millisecond)
	if got := l.Percentile(1.0); got != 20*time.Millisecond {
		t.Fatalf("max after Record = %v, cache not invalidated", got)
	}
	var other LatencyRecorder
	other.Record(40 * time.Millisecond)
	l.Merge(&other)
	if got := l.Percentile(1.0); got != 40*time.Millisecond {
		t.Fatalf("max after Merge = %v, cache not invalidated", got)
	}
	if s := l.Summary(); s.Max != l.Percentile(1.0) || s.P50 != l.Percentile(0.5) {
		t.Fatalf("Summary and Percentile disagree: %+v", s)
	}
}

// TestLatencyMergeAggregation pins the coordinator's aggregation
// pattern: per-source recorders (concurrent load clients, analytics
// executors) merged into one must summarize exactly like a recorder
// that saw every sample directly, leave the sources untouched, and
// tolerate nil and empty sources.
func TestLatencyMergeAggregation(t *testing.T) {
	var want LatencyRecorder
	sources := make([]LatencyRecorder, 3)
	for s := range sources {
		for i := 1; i <= 40; i++ {
			d := time.Duration((s*37+i)%97+1) * time.Millisecond
			sources[s].Record(d)
			want.Record(d)
		}
	}
	var merged LatencyRecorder
	var empty LatencyRecorder
	merged.Merge(nil)    // nil source: no-op
	merged.Merge(&empty) // empty source: no-op
	for s := range sources {
		merged.Merge(&sources[s])
	}
	if got, wantSum := merged.Summary(), want.Summary(); got != wantSum {
		t.Fatalf("merged summary %+v, want %+v", got, wantSum)
	}
	if merged.Count() != 120 {
		t.Fatalf("merged count = %d, want 120", merged.Count())
	}
	for s := range sources {
		if sources[s].Count() != 40 {
			t.Fatalf("source %d mutated by Merge: count %d", s, sources[s].Count())
		}
	}
	// Merged percentiles must come from the union, not any single source.
	if merged.Percentile(1.0) != want.Percentile(1.0) ||
		merged.Percentile(0.5) != want.Percentile(0.5) {
		t.Fatal("merged percentiles disagree with the union distribution")
	}
}
