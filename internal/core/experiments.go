package core

import (
	"fmt"

	"repro/internal/sim"
)

// Experiment is one row of the paper's Table 6 ("Workloads in
// experiments"): the workload, its software stack, and the input-size rule.
type Experiment struct {
	ID       int
	Workload string
	Stack    string
	// InputRule is the Table 6 input column, e.g. "32 ×(1..32) GB data".
	InputRule string
}

// Experiments returns the nineteen Table 6 rows in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{1, "Sort", "Hadoop", "32 ×(1..32) GB data"},
		{2, "Grep", "Hadoop", "32 ×(1..32) GB data"},
		{3, "WordCount", "Hadoop", "32 ×(1..32) GB data"},
		{4, "BFS", "MPI", "2^15 ×(1..32) vertex"},
		{5, "Read", "HBase", "32 ×(1..32) GB data"},
		{6, "Write", "HBase", "32 ×(1..32) GB data"},
		{7, "Scan", "HBase", "32 ×(1..32) GB data"},
		{8, "Select Query", "Hive", "32 ×(1..32) GB data"},
		{9, "Aggregate Query", "Hive", "32 ×(1..32) GB data"},
		{10, "Join Query", "Hive", "32 ×(1..32) GB data"},
		{11, "Nutch Server", "Hadoop", "100 ×(1..32) req/s"},
		{12, "PageRank", "Hadoop", "10^6 ×(1..32) pages"},
		{13, "Index", "Hadoop", "10^6 ×(1..32) pages"},
		{14, "Olio Server", "MySQL", "100 ×(1..32) req/s"},
		{15, "K-means", "Hadoop", "32 GB ×(1..32) data"},
		{16, "CC", "Hadoop", "2^15 ×(1..32) vertex"},
		{17, "Rubis Server", "MySQL", "100 ×(1..32) req/s"},
		{18, "CF", "Hadoop", "2^15 ×(1..32) vertex"},
		{19, "Naive Bayes", "Hadoop", "32 ×(1..32) GB data"},
	}
}

// Scales is the Table 6 / Figure 3 data-volume sweep.
func Scales() []int { return []int{1, 4, 8, 16, 32} }

// Characterize runs one workload at one input scale on a fresh simulated
// processor and returns its result with architectural counters populated.
func Characterize(w Workload, in Input, cfg sim.MachineConfig) (Result, error) {
	in.CPU = sim.New(cfg)
	res, err := w.Run(in)
	if err != nil {
		return Result{}, fmt.Errorf("characterize %s (scale %d, %s): %w",
			w.Name(), in.Scale, cfg.Name, err)
	}
	return res, nil
}

// Measure runs one workload uninstrumented (wall-clock only).
func Measure(w Workload, in Input) (Result, error) {
	in.CPU = nil
	res, err := w.Run(in)
	if err != nil {
		return Result{}, fmt.Errorf("measure %s (scale %d): %w", w.Name(), in.Scale, err)
	}
	return res, nil
}

// Sweep characterizes a workload across the Table 6 scales on one machine.
func Sweep(w Workload, base Input, cfg sim.MachineConfig) ([]Result, error) {
	var out []Result
	for _, s := range Scales() {
		in := base
		in.Scale = s
		res, err := Characterize(w, in, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// SpeedupSweep measures wall-clock user-perceivable metrics across scales
// and normalizes each to the baseline (Figure 3-2's construction: the
// performance number for the baseline input is one).
func SpeedupSweep(w Workload, base Input) ([]float64, []Result, error) {
	var speedups []float64
	var results []Result
	var baseline float64
	for _, s := range Scales() {
		in := base
		in.Scale = s
		res, err := Measure(w, in)
		if err != nil {
			return nil, nil, err
		}
		if s == 1 {
			baseline = res.Value
		}
		if baseline > 0 {
			speedups = append(speedups, res.Value/baseline)
		} else {
			speedups = append(speedups, 0)
		}
		results = append(results, res)
	}
	return speedups, results, nil
}
