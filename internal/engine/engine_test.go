package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestRegistryAndOpen(t *testing.T) {
	if _, err := Open(Options{}); err != nil {
		t.Fatalf("default backend: %v", err)
	}
	if _, err := Open(Options{Backend: "lsm", Compaction: "leveled"}); err != nil {
		t.Fatalf("lsm leveled: %v", err)
	}
	if _, err := Open(Options{Backend: "no-such-engine"}); err == nil {
		t.Fatal("unknown backend must error")
	}
	if _, err := Open(Options{Compaction: "bogus"}); err == nil {
		t.Fatal("unknown compaction policy must error")
	}
	if err := Validate(Options{Compaction: "leveled"}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	found := false
	for _, b := range Backends() {
		if b == "lsm" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Backends() = %v, want lsm present", Backends())
	}
}

func TestBlockCacheCountersSurface(t *testing.T) {
	e, err := Open(Options{MemtableBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	key := func(i int) []byte { return []byte(fmt.Sprintf("cache-%05d", i)) }
	for i := 0; i < 500; i++ {
		e.Put(key(i), bytes.Repeat([]byte("x"), 64))
	}
	// Re-read a hot subset: the first pass misses, later passes hit.
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 50; i++ {
			e.Get(key(i))
		}
	}
	st := e.Stats()
	if st.BlockCacheMisses == 0 {
		t.Fatal("expected block-cache misses on first touch")
	}
	if st.BlockCacheHits == 0 {
		t.Fatal("expected block-cache hits on re-read")
	}
	// Disabled cache reports nothing.
	off, err := Open(Options{MemtableBytes: 1 << 10, BlockCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	for i := 0; i < 500; i++ {
		off.Put(key(i), bytes.Repeat([]byte("x"), 64))
	}
	for i := 0; i < 50; i++ {
		off.Get(key(i))
	}
	if st := off.Stats(); st.BlockCacheHits != 0 || st.BlockCacheMisses != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

// TestSynchronizedWrapper exercises the RWMutex baseline for basic
// correctness under concurrency (the race detector does the real work).
func TestSynchronizedWrapper(t *testing.T) {
	inner, err := Open(Options{MemtableBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	e := Synchronized(inner)
	defer e.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("s%d-%04d", w, i))
				e.Put(k, k)
				if v, ok := e.Get(k); !ok || !bytes.Equal(v, k) {
					t.Errorf("lost %s", k)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				e.Scan([]byte("s"), 20)
			}
		}()
	}
	wg.Wait()
	sn := e.Snapshot()
	defer sn.Release()
	if v, ok := sn.Get([]byte("s0-0000")); !ok || !bytes.Equal(v, []byte("s0-0000")) {
		t.Fatalf("snapshot through wrapper = %q, %v", v, ok)
	}
	if e.Stats().Puts == 0 {
		t.Fatal("stats not forwarded")
	}
}
