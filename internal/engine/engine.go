// Package engine defines the pluggable storage-engine layer: the
// interface cluster nodes and the Cloud-OLTP workloads program against,
// a registry of backends, and the options that select compaction policy
// and block-cache size. The default backend is the internal/kvstore LSM
// tree (the paper's HBase stand-in); any later backend — on-disk
// SSTables, a hash engine, a remote shard — plugs in by registering an
// Opener, with engine_test.go's conformance suite defining the contract.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Entry, Stats and BatchOp are shared with the LSM backend so existing
// callers keep their types.
type (
	// Entry is one key-value pair as returned by Get/Scan.
	Entry = kvstore.Entry
	// Stats counts engine activity.
	Stats = kvstore.Stats
	// BatchOp is one write inside a WriteBatch.
	BatchOp = kvstore.BatchOp
)

// Engine is a single-node storage engine. Implementations must be safe
// for concurrent use.
type Engine interface {
	// Get returns the value for key.
	Get(key []byte) ([]byte, bool)
	// Put inserts or overwrites a key.
	Put(key, value []byte)
	// Delete removes a key.
	Delete(key []byte)
	// WriteBatch applies a group of writes as one unit (group commit).
	WriteBatch(ops []BatchOp)
	// Scan returns up to limit live entries with key >= start, in key
	// order.
	Scan(start []byte, limit int) []Entry
	// AppendScan is Scan appending into dst (reusing its capacity) —
	// the allocation-free form for callers holding a scratch buffer.
	AppendScan(dst []Entry, start []byte, limit int) []Entry
	// Snapshot pins a consistent point-in-time read view.
	Snapshot() Snapshot
	// Stats snapshots the activity counters.
	Stats() Stats
	// Close releases engine resources; the engine must not be used after.
	Close()
}

// Snapshot is a consistent read-only view of an engine at one point in
// time: reads resolve exactly the writes that completed before the
// snapshot was taken.
type Snapshot interface {
	Get(key []byte) ([]byte, bool)
	Scan(start []byte, limit int) []Entry
	// AppendScan is Scan appending into dst (reusing its capacity).
	AppendScan(dst []Entry, start []byte, limit int) []Entry
	// Release drops the snapshot's pin.
	Release()
}

// Options selects and configures a backend.
type Options struct {
	// Backend names the registered engine ("" selects "lsm").
	Backend string
	// Compaction selects the LSM run-folding policy: "", "size-tiered"
	// or "leveled".
	Compaction string
	// BlockCacheBytes sizes the run-read block cache (0 = backend
	// default, negative disables).
	BlockCacheBytes int
	// MemtableBytes is the write-buffer flush threshold.
	MemtableBytes int
	// BloomBitsPerKey sizes the per-run Bloom filters.
	BloomBitsPerKey int
	// MaxRuns triggers compaction when exceeded.
	MaxRuns int
	// CPU attaches the engine to a characterization context (may be nil).
	CPU *sim.CPU
}

// Opener constructs an engine from options.
type Opener func(Options) (Engine, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Opener{}
)

// Register adds a backend under name, replacing any previous entry.
func Register(name string, open Opener) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = open
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open constructs the engine Options selects.
func Open(opts Options) (Engine, error) {
	name := opts.Backend
	if name == "" {
		name = "lsm"
	}
	regMu.RLock()
	open := registry[name]
	regMu.RUnlock()
	if open == nil {
		return nil, fmt.Errorf("engine: unknown backend %q (have %v)", name, Backends())
	}
	return open(opts)
}

// Validate reports whether Options selects a constructible engine,
// without building one.
func Validate(opts Options) error {
	e, err := Open(opts)
	if err != nil {
		return err
	}
	e.Close()
	return nil
}

func init() {
	Register("lsm", openLSM)
}

// LevelSizer is the optional capability of engines that can report
// per-level on-disk bytes (the LSM backend promotes it straight from
// *kvstore.Store). Metrics scrapes type-assert for it; engines without
// levels simply don't implement it.
type LevelSizer interface {
	LevelBytes() []uint64
}

// lsmEngine adapts *kvstore.Store to Engine (the method set matches
// except for Snapshot's concrete return type and Close).
type lsmEngine struct {
	*kvstore.Store
}

var _ LevelSizer = lsmEngine{}

func (e lsmEngine) Snapshot() Snapshot { return e.Store.Snapshot() }
func (e lsmEngine) Close()             {}

func openLSM(o Options) (Engine, error) {
	pol, ok := kvstore.ParseCompaction(o.Compaction)
	if !ok {
		return nil, fmt.Errorf("engine: unknown compaction policy %q (want size-tiered or leveled)", o.Compaction)
	}
	return lsmEngine{kvstore.Open(kvstore.Options{
		MemtableBytes:   o.MemtableBytes,
		BloomBitsPerKey: o.BloomBitsPerKey,
		MaxRuns:         o.MaxRuns,
		Compaction:      pol,
		BlockCacheBytes: o.BlockCacheBytes,
		CPU:             o.CPU,
	})}, nil
}
