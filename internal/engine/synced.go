package engine

import "sync"

// Synchronized wraps an engine so every read shares one RWMutex and
// every write takes it exclusively — the seed's store-wide locking
// discipline. It exists as the comparison baseline for the lock-free
// read path (BenchmarkReadPath) and as a safety harness for future
// backends that are not internally concurrent-safe.
func Synchronized(e Engine) Engine {
	s := &syncedEngine{inner: e}
	return s
}

type syncedEngine struct {
	mu    sync.RWMutex
	inner Engine
}

func (s *syncedEngine) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Get(key)
}

func (s *syncedEngine) Put(key, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Put(key, value)
}

func (s *syncedEngine) Delete(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Delete(key)
}

func (s *syncedEngine) WriteBatch(ops []BatchOp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.WriteBatch(ops)
}

func (s *syncedEngine) Scan(start []byte, limit int) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Scan(start, limit)
}

func (s *syncedEngine) AppendScan(dst []Entry, start []byte, limit int) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.AppendScan(dst, start, limit)
}

func (s *syncedEngine) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return &syncedSnapshot{owner: s, inner: s.inner.Snapshot()}
}

func (s *syncedEngine) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Stats()
}

func (s *syncedEngine) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Close()
}

type syncedSnapshot struct {
	owner *syncedEngine
	inner Snapshot
}

func (sn *syncedSnapshot) Get(key []byte) ([]byte, bool) {
	sn.owner.mu.RLock()
	defer sn.owner.mu.RUnlock()
	return sn.inner.Get(key)
}

func (sn *syncedSnapshot) Scan(start []byte, limit int) []Entry {
	sn.owner.mu.RLock()
	defer sn.owner.mu.RUnlock()
	return sn.inner.Scan(start, limit)
}

func (sn *syncedSnapshot) AppendScan(dst []Entry, start []byte, limit int) []Entry {
	sn.owner.mu.RLock()
	defer sn.owner.mu.RUnlock()
	return sn.inner.AppendScan(dst, start, limit)
}

func (sn *syncedSnapshot) Release() { sn.inner.Release() }
