package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// confConfigs are the engine configurations every conformance property
// must agree across: both compaction policies, cache on and off. The
// memtable is small enough that the op sequences below flush and compact
// continuously.
func confConfigs() []Options {
	return []Options{
		{Compaction: "size-tiered", MemtableBytes: 1 << 10},
		{Compaction: "size-tiered", MemtableBytes: 1 << 10, BlockCacheBytes: -1},
		{Compaction: "leveled", MemtableBytes: 1 << 10, MaxRuns: 2},
		{Compaction: "leveled", MemtableBytes: 1 << 10, MaxRuns: 2, BlockCacheBytes: -1},
	}
}

func confName(o Options) string {
	cache := "cache"
	if o.BlockCacheBytes < 0 {
		cache = "nocache"
	}
	return fmt.Sprintf("%s/%s", o.Compaction, cache)
}

// TestConformanceRandomizedOps drives an identical randomized op
// sequence (puts, overwrites, deletes, batches) through every
// configuration and a map reference, then requires identical Get results
// for every touched key and identical Scan results from random starts.
func TestConformanceRandomizedOps(t *testing.T) {
	const (
		keySpace = 400
		ops      = 6000
	)
	type step struct {
		kind int // 0 put, 1 delete, 2 batch of puts
		k    int
		v    int
		n    int
	}
	rng := rand.New(rand.NewSource(7))
	steps := make([]step, ops)
	for i := range steps {
		steps[i] = step{kind: rng.Intn(10) % 3, k: rng.Intn(keySpace), v: i, n: 1 + rng.Intn(8)}
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("conf-%06d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("v%d", i)) }

	ref := map[string]string{}
	apply := func(e Engine, withRef bool) {
		for _, st := range steps {
			switch st.kind {
			case 1:
				e.Delete(key(st.k))
				if withRef {
					delete(ref, string(key(st.k)))
				}
			case 2:
				batch := make([]BatchOp, 0, st.n)
				for j := 0; j < st.n; j++ {
					k := (st.k + j*17) % keySpace
					batch = append(batch, BatchOp{Key: key(k), Value: val(st.v + j)})
					if withRef {
						ref[string(key(k))] = string(val(st.v + j))
					}
				}
				e.WriteBatch(batch)
			default:
				e.Put(key(st.k), val(st.v))
				if withRef {
					ref[string(key(st.k))] = string(val(st.v))
				}
			}
		}
	}

	var engines []Engine
	for i, o := range confConfigs() {
		e, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		apply(e, i == 0)
		engines = append(engines, e)
	}

	for i, e := range engines {
		name := confName(confConfigs()[i])
		st := e.Stats()
		if st.Flushes == 0 || st.Compactions == 0 {
			t.Fatalf("%s: sequence did not exercise flush/compaction: %+v", name, st)
		}
		for k := 0; k < keySpace; k++ {
			got, ok := e.Get(key(k))
			want, live := ref[string(key(k))]
			if ok != live || (live && string(got) != want) {
				t.Fatalf("%s: Get(%s) = %q, %v; want %q, %v", name, key(k), got, ok, want, live)
			}
		}
	}

	// Scans: every engine returns the reference's live keys in order.
	var liveKeys []string
	for k := range ref {
		liveKeys = append(liveKeys, k)
	}
	sort.Strings(liveKeys)
	scanRng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		start := key(scanRng.Intn(keySpace))
		limit := 1 + scanRng.Intn(80)
		from := sort.SearchStrings(liveKeys, string(start))
		want := liveKeys[from:min(from+limit, len(liveKeys))]
		for i, e := range engines {
			got := e.Scan(start, limit)
			if len(got) != len(want) {
				t.Fatalf("%s: Scan(%s,%d) len = %d, want %d",
					confName(confConfigs()[i]), start, limit, len(got), len(want))
			}
			for j, entry := range got {
				if string(entry.Key) != want[j] || string(entry.Value) != ref[want[j]] {
					t.Fatalf("%s: Scan(%s,%d)[%d] = %s=%s, want %s=%s",
						confName(confConfigs()[i]), start, limit, j,
						entry.Key, entry.Value, want[j], ref[want[j]])
				}
			}
		}
	}
}

// TestConformanceSnapshotIsolation verifies that a snapshot taken
// mid-stream resolves exactly the writes sequenced before it, across
// both compaction policies and through later flushes and compactions.
func TestConformanceSnapshotIsolation(t *testing.T) {
	for _, o := range confConfigs() {
		o := o
		t.Run(confName(o), func(t *testing.T) {
			e, err := Open(o)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			key := func(i int) []byte { return []byte(fmt.Sprintf("snap-%05d", i)) }
			const n = 300
			for i := 0; i < n; i++ {
				e.Put(key(i), []byte("v1"))
			}
			e.Delete(key(5))
			sn := e.Snapshot()
			defer sn.Release()
			// Churn after the snapshot: overwrites, deletes, new keys —
			// enough volume to force flushes and compactions underneath.
			for round := 0; round < 4; round++ {
				for i := 0; i < n; i++ {
					e.Put(key(i), []byte(fmt.Sprintf("v2-%d", round)))
				}
			}
			for i := 0; i < n; i += 3 {
				e.Delete(key(i))
			}
			for i := n; i < 2*n; i++ {
				e.Put(key(i), []byte("late"))
			}

			if _, ok := sn.Get(key(5)); ok {
				t.Fatal("snapshot resurrected a pre-snapshot delete")
			}
			for i := 0; i < n; i++ {
				if i == 5 {
					continue
				}
				v, ok := sn.Get(key(i))
				if !ok || !bytes.Equal(v, []byte("v1")) {
					t.Fatalf("snapshot Get(%s) = %q, %v; want v1", key(i), v, ok)
				}
			}
			got := sn.Scan(key(0), 10*n)
			if len(got) != n-1 {
				t.Fatalf("snapshot scan len = %d, want %d", len(got), n-1)
			}
			for _, entry := range got {
				if !bytes.Equal(entry.Value, []byte("v1")) {
					t.Fatalf("snapshot scan leaked post-snapshot value %q for %s",
						entry.Value, entry.Key)
				}
			}
			// The live view moved on.
			if v, ok := e.Get(key(1)); !ok || bytes.Equal(v, []byte("v1")) {
				t.Fatalf("live Get(%s) = %q, %v; want a post-snapshot value", key(1), v, ok)
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
