package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var t0 = time.Unix(1700000000, 0)

// mkSpan builds a span offset/dur in microseconds from the base clock.
func mkSpan(trace, id, parent uint64, name, node string, offUs, durUs int64, phases ...Phase) Span {
	return Span{
		Trace: trace, ID: id, Parent: parent, Name: name, Node: node,
		Start:  t0.Add(time.Duration(offUs) * time.Microsecond),
		Dur:    time.Duration(durUs) * time.Microsecond,
		Phases: phases,
	}
}

// threeHop is the canonical client→primary→replica replicated-Put shape.
func threeHop() []Span {
	return []Span{
		mkSpan(9, 1, 0, "client/put", "bench", 0, 1000),
		mkSpan(9, 2, 1, "server/put", "primary", 100, 800,
			Phase{Name: "queue", Dur: 50 * time.Microsecond},
			Phase{Name: "exec", Dur: 750 * time.Microsecond}),
		mkSpan(9, 3, 2, "cluster/write", "primary", 150, 700,
			Phase{Name: "exec", Dur: 300 * time.Microsecond},
			Phase{Name: "replicate", Dur: 400 * time.Microsecond}),
		mkSpan(9, 4, 3, "server/put", "replica", 500, 300),
	}
}

func TestAssembleOrderIndependent(t *testing.T) {
	spans := threeHop()
	// Every rotation (and one reversal) must assemble identically:
	// collection order is ring order and differs per node.
	perms := [][]Span{}
	for r := 0; r < len(spans); r++ {
		p := append(append([]Span{}, spans[r:]...), spans[:r]...)
		perms = append(perms, p)
	}
	rev := make([]Span, len(spans))
	for i, s := range spans {
		rev[len(spans)-1-i] = s
	}
	perms = append(perms, rev)

	var want string
	for i, p := range perms {
		tr := Assemble(9, p)
		if tr == nil || tr.Spans != 4 || tr.Missing != 0 || tr.Duplicates != 0 {
			t.Fatalf("perm %d: bad assembly %+v", i, tr)
		}
		var b bytes.Buffer
		tr.Format(&b)
		if i == 0 {
			want = b.String()
		} else if b.String() != want {
			t.Fatalf("perm %d formatted differently:\n%s\nvs\n%s", i, b.String(), want)
		}
	}

	tr := Assemble(9, spans)
	if tr.Root.Span.ID != 1 {
		t.Fatalf("root = %d, want client span 1", tr.Root.Span.ID)
	}
	// Parentage chain client -> server -> cluster -> replica.
	path := tr.CriticalPath()
	if len(path) != 4 {
		t.Fatalf("critical path len %d, want 4", len(path))
	}
	for i, wantID := range []uint64{1, 2, 3, 4} {
		if path[i].Span.ID != wantID {
			t.Fatalf("path[%d] = span %d, want %d", i, path[i].Span.ID, wantID)
		}
	}
	if got, root := tr.CriticalPathDuration(), tr.Root.Span.Dur; got > root {
		t.Fatalf("critical path %v exceeds root %v", got, root)
	}
}

func TestAssembleDuplicates(t *testing.T) {
	spans := threeHop()
	// A double-fetched node contributes every span twice.
	tr := Assemble(9, append(append([]Span{}, spans...), spans...))
	if tr.Duplicates != 4 || tr.Spans != 4 {
		t.Fatalf("spans %d dup %d, want 4/4", tr.Spans, tr.Duplicates)
	}
	if len(tr.Root.Children) != 1 {
		t.Fatalf("root children %d, want 1", len(tr.Root.Children))
	}
}

func TestAssembleForeignAndUntracedIgnored(t *testing.T) {
	spans := append(threeHop(),
		mkSpan(7, 9, 0, "other/put", "x", 0, 10),
		Span{Trace: 0, Name: "untraced"},
	)
	tr := Assemble(9, spans)
	if tr.Spans != 4 {
		t.Fatalf("spans %d, want 4 (foreign trace leaked in)", tr.Spans)
	}
	if Assemble(1234, spans[:0]) != nil {
		t.Fatal("empty input should assemble to nil")
	}
}

func TestAssembleMissingMiddleHop(t *testing.T) {
	spans := threeHop()
	// The primary's ring evicted the server span (id 2): its children
	// must hang off one synthetic stand-in under... the stand-in is a
	// root fragment, grouped with the client span under a synthetic root.
	evicted := append([]Span{spans[0]}, spans[2], spans[3])
	tr := Assemble(9, evicted)
	if tr.Spans != 3 || tr.Missing != 1 {
		t.Fatalf("spans %d missing %d, want 3/1", tr.Spans, tr.Missing)
	}
	if !tr.Root.Synthetic {
		t.Fatal("expected synthetic umbrella root over disjoint fragments")
	}
	var synth *TraceNode
	for _, c := range tr.Root.Children {
		if c.Synthetic {
			synth = c
		}
	}
	if synth == nil || synth.Span.ID != 2 {
		t.Fatalf("missing-hop stand-in not found under root: %+v", tr.Root.Children)
	}
	if len(synth.Children) != 1 || synth.Children[0].Span.ID != 3 {
		t.Fatalf("orphan not grouped under stand-in: %+v", synth.Children)
	}
	if got := tr.CriticalPathDuration(); got > tr.Root.Span.Dur {
		t.Fatalf("critical path %v exceeds root %v", got, tr.Root.Span.Dur)
	}
	var b bytes.Buffer
	tr.Format(&b)
	if !strings.Contains(b.String(), "missing hop") {
		t.Fatalf("report does not flag the missing hop:\n%s", b.String())
	}
}

func TestAssembleSkewNormalization(t *testing.T) {
	// The replica's clock runs 10ms ahead: its span appears to start
	// after the primary finished and to end far outside the root.
	spans := threeHop()
	spans[3].Start = spans[3].Start.Add(10 * time.Millisecond)
	tr := Assemble(9, spans)
	var replica *TraceNode
	var walk func(n *TraceNode)
	walk = func(n *TraceNode) {
		if n.Span.ID == 4 {
			replica = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	parent := tr.Root.Children[0].Children[0] // cluster/write
	if replica.Span.Start.Before(parent.Span.Start) || replica.End().After(parent.End()) {
		t.Fatalf("skewed child not clamped into parent: child [%v +%v] parent [%v +%v]",
			replica.Span.Start, replica.Span.Dur, parent.Span.Start, parent.Span.Dur)
	}
	if replica.Span.Dur != 300*time.Microsecond {
		t.Fatalf("shift should preserve duration, got %v", replica.Span.Dur)
	}
	if got := tr.CriticalPathDuration(); got > tr.Root.Span.Dur {
		t.Fatalf("critical path %v exceeds root %v", got, tr.Root.Span.Dur)
	}

	// Opposite skew: child starts before its parent was even reached.
	spans = threeHop()
	spans[3].Start = spans[3].Start.Add(-10 * time.Millisecond)
	tr = Assemble(9, spans)
	walk(tr.Root)
	parent = tr.Root.Children[0].Children[0]
	if replica.Span.Start.Before(parent.Span.Start) {
		t.Fatal("early-clock child not shifted forward into parent envelope")
	}
}

// splitmix64 with a fixed seed: deterministic fuzz source for the
// property test without math/rand.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func TestCriticalPathPropertyRandomTraces(t *testing.T) {
	r := &rng{s: 0xbd}
	for iter := 0; iter < 500; iter++ {
		n := int(r.next()%12) + 1
		spans := make([]Span, 0, n)
		for i := 0; i < n; i++ {
			id := uint64(i + 1)
			var parent uint64
			if i > 0 {
				parent = r.next()%uint64(i) + 1 // any earlier span
				if r.next()%8 == 0 {
					parent = 1000 + r.next()%3 // sometimes a never-collected hop
				}
			}
			s := mkSpan(42, id, parent, "hop", "n",
				int64(r.next()%5000), int64(r.next()%5000))
			// Random per-node clock skew up to ±50ms.
			s.Start = s.Start.Add(time.Duration(int64(r.next()%100)-50) * time.Millisecond)
			if r.next()%4 == 0 {
				s.Phases = []Phase{{Name: "exec", Dur: s.Dur / 2}}
			}
			spans = append(spans, s)
		}
		// Random duplicates.
		for d := r.next() % 3; d > 0; d-- {
			spans = append(spans, spans[r.next()%uint64(len(spans))])
		}
		tr := Assemble(42, spans)
		if tr == nil {
			t.Fatalf("iter %d: nil trace from %d spans", iter, len(spans))
		}
		if cp, root := tr.CriticalPathDuration(), tr.Root.Span.Dur; cp > root {
			t.Fatalf("iter %d: critical path %v > root %v", iter, cp, root)
		}
		// Envelope invariant on every edge after normalization.
		var check func(n *TraceNode)
		check = func(n *TraceNode) {
			for _, c := range n.Children {
				if c.Span.Start.Before(n.Span.Start) || c.End().After(n.End()) {
					t.Fatalf("iter %d: child [%v +%v] escapes parent [%v +%v]",
						iter, c.Span.Start, c.Span.Dur, n.Span.Start, n.Span.Dur)
				}
				check(c)
			}
		}
		check(tr.Root)
	}
}

func TestPhaseAttribution(t *testing.T) {
	tr := Assemble(9, threeHop())
	attr := tr.PhaseAttribution()
	var total time.Duration
	for _, d := range attr {
		total += d
	}
	if total > tr.Root.Span.Dur {
		t.Fatalf("attributed %v exceeds root %v", total, tr.Root.Span.Dur)
	}
	// The client hop has no phases -> "other"; server hop contributes
	// queue+exec; cluster hop exec+replicate; replica "other".
	for _, k := range []string{"other", "queue", "exec", "replicate"} {
		if attr[k] <= 0 {
			t.Fatalf("phase %q missing from attribution %v", k, attr)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, threeHop()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("invalid trace-event JSON: %v\n%s", err, b.String())
	}
	pids := map[int]bool{}
	var meta, slices, phases int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			if e.Name == "queue" || e.Name == "exec" || e.Name == "replicate" {
				phases++
			} else {
				slices++
			}
			pids[e.Pid] = true
			if e.Dur < 0 {
				t.Fatalf("negative dur in %+v", e)
			}
		}
	}
	// Three distinct nodes (bench, primary, replica) -> 3 process rows.
	if meta != 3 || len(pids) != 3 {
		t.Fatalf("process rows: meta=%d pids=%d, want 3/3", meta, len(pids))
	}
	if slices != 4 || phases != 4 {
		t.Fatalf("slices=%d phases=%d, want 4 spans + 4 phase slices", slices, phases)
	}
}
