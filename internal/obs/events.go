package obs

import (
	"encoding/binary"
	"sort"
	"sync"
	"time"
)

// The structured cluster event log (DESIGN.md §15): a bounded ring of
// typed lifecycle events — the "why" channel next to the metrics
// plane's "how much". Metrics tell you the epoch is 7; the event log
// tells you it got there because 127.0.0.1:7482 was declared dead two
// sweeps after going down. Events are fetched over the wire
// (OpEventsFetch) and merged into one cross-node timeline by the
// Federator.

// EventKind is the taxonomy of cluster lifecycle events.
type EventKind uint8

const (
	EventNone           EventKind = iota
	EventViewCommit               // a view commit advanced the epoch
	EventMemberSuspect            // failure detector: first missed probes
	EventMemberDown               // failure detector: declared down
	EventMemberDead               // declared dead — Left, off the ring for good
	EventMemberAlive              // a down member answered again
	EventFailover                 // a request was served around a down primary
	EventHintReplay               // buffered hints replayed onto a recovered member
	EventHintDrop                 // a hint was dropped past the buffer bound
	EventMigrationStart           // first copy pass toward a new epoch began
	EventMigrationEnd             // this node settled the epoch (copies durable)
	EventCompaction               // a local engine ran compaction passes
)

var eventKindNames = [...]string{
	EventNone:           "none",
	EventViewCommit:     "view-commit",
	EventMemberSuspect:  "member-suspect",
	EventMemberDown:     "member-down",
	EventMemberDead:     "member-dead",
	EventMemberAlive:    "member-alive",
	EventFailover:       "failover",
	EventHintReplay:     "hint-replay",
	EventHintDrop:       "hint-drop",
	EventMigrationStart: "migration-start",
	EventMigrationEnd:   "migration-end",
	EventCompaction:     "compaction",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one recorded lifecycle transition. Node is the recording
// process, Member the subject member's address when the event is about
// a peer, Epoch the recorder's view epoch at record time, and Trace an
// optional trace id linking the event to a request's span tree.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   EventKind `json:"kind"`
	Node   string    `json:"node,omitempty"`
	Member string    `json:"member,omitempty"`
	Epoch  uint64    `json:"epoch,omitempty"`
	Trace  uint64    `json:"trace,string,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// MarshalJSON renders Kind by name so timelines read without a decoder
// ring; the rest of the struct marshals conventionally.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the name form.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 {
		name := string(b[1 : len(b)-1])
		for i, n := range eventKindNames {
			if n == name {
				*k = EventKind(i)
				return nil
			}
		}
	}
	*k = EventNone
	return nil
}

// EventLog is a bounded ring of events, evicting oldest-first like
// SpanLog. Record is mutex-and-copy cheap — safe to call under a
// caller's own locks (commitViewLocked records while holding the
// cluster mutex) because it never calls out. A nil *EventLog is a
// valid no-op recorder, so emit sites need no guards.
type EventLog struct {
	mu   sync.Mutex
	node string
	buf  []Event
	next int
	seq  uint64
}

// NewEventLog returns a ring holding the last size events (minimum 16).
func NewEventLog(size int) *EventLog {
	if size < 16 {
		size = 16
	}
	return &EventLog{buf: make([]Event, 0, size)}
}

// SetNode names the recording process; events recorded with an empty
// Node are stamped with it.
func (l *EventLog) SetNode(name string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.node = name
	l.mu.Unlock()
}

// Record appends one event, stamping Seq (per-log monotonic), Time
// (when zero) and Node (when empty), evicting the oldest when full.
func (l *EventLog) Record(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if e.Node == "" {
		e.Node = l.node
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.mu.Unlock()
}

// Total returns the number of events ever recorded (including evicted).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// MergeEvents folds per-node event sets into one timeline ordered by
// wall-clock time (ties broken by node then sequence). Cross-node
// clocks are uncoordinated, so closely-spaced events may order by
// skew — the same best-effort any log aggregator makes; within one
// node the sequence keeps order exact.
func MergeEvents(sets ...[]Event) []Event {
	n := 0
	for _, s := range sets {
		n += len(s)
	}
	out := make([]Event, 0, n)
	for _, s := range sets {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// ---- binary codec --------------------------------------------------------
//
// The payload of a RespEvents frame: u8 version, u32 count, then per
// event the fixed numerics followed by the three str16 fields.

const eventsVersion = 1

const eventFixedLen = 8 + 8 + 1 + 8 + 8 // seq, unixnano, kind, epoch, trace

// EncodedEventsLen sizes EncodeEvents' output without building it, so
// a server can shed oldest events until the rest fit a frame budget.
func EncodedEventsLen(events []Event) int {
	n := 1 + 4
	for i := range events {
		e := &events[i]
		n += eventFixedLen + 2 + len(e.Node) + 2 + len(e.Member) + 2 + len(e.Detail)
	}
	return n
}

// EncodeEvents serializes events for the wire.
func EncodeEvents(events []Event) []byte {
	out := make([]byte, 0, EncodedEventsLen(events))
	out = append(out, eventsVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(events)))
	for i := range events {
		e := &events[i]
		out = binary.BigEndian.AppendUint64(out, e.Seq)
		out = binary.BigEndian.AppendUint64(out, uint64(e.Time.UnixNano()))
		out = append(out, byte(e.Kind))
		out = binary.BigEndian.AppendUint64(out, e.Epoch)
		out = binary.BigEndian.AppendUint64(out, e.Trace)
		out = appendStr16(out, e.Node)
		out = appendStr16(out, e.Member)
		out = appendStr16(out, e.Detail)
	}
	return out
}

// DecodeEvents parses an EncodeEvents payload.
func DecodeEvents(b []byte) ([]Event, error) {
	if len(b) < 5 || b[0] != eventsVersion {
		return nil, errBadSnapshot
	}
	count := int(binary.BigEndian.Uint32(b[1:]))
	b = b[5:]
	out := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < eventFixedLen {
			return nil, errBadSnapshot
		}
		var e Event
		e.Seq = binary.BigEndian.Uint64(b)
		e.Time = time.Unix(0, int64(binary.BigEndian.Uint64(b[8:])))
		e.Kind = EventKind(b[16])
		e.Epoch = binary.BigEndian.Uint64(b[17:])
		e.Trace = binary.BigEndian.Uint64(b[25:])
		b = b[eventFixedLen:]
		var ok bool
		if e.Node, b, ok = takeStr16(b); !ok {
			return nil, errBadSnapshot
		}
		if e.Member, b, ok = takeStr16(b); !ok {
			return nil, errBadSnapshot
		}
		if e.Detail, b, ok = takeStr16(b); !ok {
			return nil, errBadSnapshot
		}
		out = append(out, e)
	}
	if len(b) != 0 {
		return nil, errBadSnapshot
	}
	return out, nil
}
