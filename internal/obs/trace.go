package obs

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// traceState seeds NewTraceID and NewSpanID. Seeded once per process
// from the wall clock mixed with process-local entropy (PID and
// hostname): two members of a fleet started in the same nanosecond —
// routine under an init system or a test harness — must still draw
// disjoint splitmix64 sequences, or their trace ids collide and the
// assembler merges unrelated requests into one tree.
var traceState atomic.Uint64

func init() {
	seed := uint64(time.Now().UnixNano())
	// splitmix64's increment doubles as a multiplier that spreads the
	// small PID across the high bits the nanosecond clock barely moves.
	seed ^= uint64(os.Getpid()) * 0x9E3779B97F4A7C15
	if host, err := os.Hostname(); err == nil {
		// FNV-1a over the hostname separates co-started processes on
		// different machines whose PIDs happen to match.
		h := uint64(14695981039346656037)
		for i := 0; i < len(host); i++ {
			h ^= uint64(host[i])
			h *= 1099511628211
		}
		seed ^= h
	}
	traceState.Store(seed)
}

// NewTraceID returns a new nonzero 64-bit trace id. Zero is reserved as
// "untraced" everywhere a trace id travels (Op.Trace, frame headers),
// so the generator never returns it. splitmix64 — the same generator
// the workload synthesizers use — keeps this dependency-free and fast
// enough to call per sampled request.
func NewTraceID() uint64 {
	for {
		x := traceState.Add(0x9E3779B97F4A7C15)
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// NewSpanID returns a new nonzero 64-bit span id, from the same
// generator as NewTraceID. Span ids only need to be unique within one
// trace, so sharing the sequence is fine and keeps both allocation-free.
func NewSpanID() uint64 { return NewTraceID() }

// Phase is one named slice of a span's duration — where the hop's time
// actually went (queue wait, exec, replication fan-out, flush, …).
// Phases are annotations, not sub-spans: they carry no timestamps and
// are assumed to run in recorded order from the span's start.
type Phase struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"durNs"`
}

// Span is one hop's record of a traced (or slow) request: which node
// role handled it, what operation, how long it took, and where inside
// the hop the time went. ID/Parent stitch per-node spans into one tree:
// every hop mints its own ID and forwards it as the next hop's Parent
// (the wire carries both the trace id and the parent span id), so a
// collector that gathers each node's spans can reassemble the request's
// path without any clock coordination (see Assemble). Spans are written
// into bounded SpanLog rings — the repo's answer to a tracing backend —
// and read back over /tracez, OpTraceFetch, or by tests asserting
// propagation.
type Span struct {
	Trace  uint64        `json:"trace,string"`
	ID     uint64        `json:"id,string,omitempty"`     // this hop's span id
	Parent uint64        `json:"parent,string,omitempty"` // the upstream hop's span id (0 = root)
	Name   string        `json:"name"`                    // e.g. "server/put", "client/batch"
	Node   string        `json:"node,omitempty"`          // recording process identity
	Peer   string        `json:"peer,omitempty"`          // remote address, when known
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"durNs"`
	Bytes  int           `json:"bytes,omitempty"` // request payload size
	Err    string        `json:"err,omitempty"`
	Phases []Phase       `json:"phases,omitempty"`
}

// End returns the span's end time.
func (s Span) End() time.Time { return s.Start.Add(s.Dur) }

// SpanLog is a bounded ring of span records. Recording takes a mutex —
// fine, because only sampled (traced) and slow requests ever reach a
// log; the untraced hot path never touches one.
type SpanLog struct {
	mu    sync.Mutex
	node  string // stamped onto recorded spans with no Node of their own
	buf   []Span
	next  int
	total uint64
}

// NewSpanLog returns a ring holding the last size spans (minimum 16).
func NewSpanLog(size int) *SpanLog {
	if size < 16 {
		size = 16
	}
	return &SpanLog{buf: make([]Span, 0, size)}
}

// SetNode names the process this ring records for. Spans recorded with
// an empty Node field are stamped with it, so one shared ring (server +
// cluster spans of one daemon) labels every span consistently without
// each recorder knowing the process identity.
func (l *SpanLog) SetNode(name string) {
	l.mu.Lock()
	l.node = name
	l.mu.Unlock()
}

// Record appends one span, evicting the oldest when full.
func (l *SpanLog) Record(s Span) {
	l.mu.Lock()
	if s.Node == "" {
		s.Node = l.node
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
	} else {
		l.buf[l.next] = s
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
	l.mu.Unlock()
}

// Total returns the number of spans ever recorded (including evicted).
func (l *SpanLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Spans returns the retained spans, oldest first.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// ByTrace returns the retained spans carrying trace, oldest first.
func (l *SpanLog) ByTrace(trace uint64) []Span {
	var out []Span
	for _, s := range l.Spans() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}
