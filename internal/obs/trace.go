package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// traceState seeds NewTraceID. Seeded from the wall clock once per
// process so two nodes started together still draw disjoint sequences
// (splitmix64 diffuses the nanosecond difference across all 64 bits).
var traceState atomic.Uint64

func init() {
	traceState.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID returns a new nonzero 64-bit trace id. Zero is reserved as
// "untraced" everywhere a trace id travels (Op.Trace, frame headers),
// so the generator never returns it. splitmix64 — the same generator
// the workload synthesizers use — keeps this dependency-free and fast
// enough to call per sampled request.
func NewTraceID() uint64 {
	for {
		x := traceState.Add(0x9E3779B97F4A7C15)
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// Span is one hop's record of a traced (or slow) request: which node
// role handled it, what operation, how long it took. Spans are written
// into bounded SpanLog rings — the repo's answer to a tracing backend —
// and read back over /tracez or by tests asserting propagation.
type Span struct {
	Trace uint64        `json:"trace,string"`
	Name  string        `json:"name"`           // e.g. "server/put", "client/batch"
	Peer  string        `json:"peer,omitempty"` // remote address, when known
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"durNs"`
	Bytes int           `json:"bytes,omitempty"` // request payload size
	Err   string        `json:"err,omitempty"`
}

// SpanLog is a bounded ring of span records. Recording takes a mutex —
// fine, because only sampled (traced) and slow requests ever reach a
// log; the untraced hot path never touches one.
type SpanLog struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewSpanLog returns a ring holding the last size spans (minimum 16).
func NewSpanLog(size int) *SpanLog {
	if size < 16 {
		size = 16
	}
	return &SpanLog{buf: make([]Span, 0, size)}
}

// Record appends one span, evicting the oldest when full.
func (l *SpanLog) Record(s Span) {
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
	} else {
		l.buf[l.next] = s
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
	l.mu.Unlock()
}

// Total returns the number of spans ever recorded (including evicted).
func (l *SpanLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Spans returns the retained spans, oldest first.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// ByTrace returns the retained spans carrying trace, oldest first.
func (l *SpanLog) ByTrace(trace uint64) []Span {
	var out []Span
	for _, s := range l.Spans() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}
