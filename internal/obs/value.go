package obs

import (
	"math"
	"strconv"
	"strings"
)

// ValueKind tags which arm of a Value is live.
type ValueKind uint8

const (
	ValueUint  ValueKind = iota // unsigned integer (counters, histogram counts)
	ValueInt                    // signed integer (direct gauges)
	ValueFloat                  // float (computed gauges, histogram sums in seconds)
)

// Value is one sampled metric value that keeps integer kinds integral.
// Registry.Snapshot used to coerce everything to float64, which silently
// rounds uint64 counters above 2^53 (wire byte counters cross that in
// days at memory-speed workloads) — a delta of two rounded counters can
// then report 0 for a busy run. Integer arms marshal as integer JSON
// literals, so bdbench -json records stay exact and jq arithmetic on
// them keeps working unchanged.
type Value struct {
	Kind ValueKind `json:"-"`
	U    uint64    `json:"-"`
	I    int64     `json:"-"`
	F    float64   `json:"-"`
}

// Uint64Value returns a Value holding an unsigned integer.
func Uint64Value(v uint64) Value { return Value{Kind: ValueUint, U: v} }

// IntValue returns a Value holding a signed integer.
func IntValue(v int64) Value { return Value{Kind: ValueInt, I: v} }

// FloatValue returns a Value holding a float.
func FloatValue(v float64) Value { return Value{Kind: ValueFloat, F: v} }

// Float returns the value as a float64 — lossy above 2^53 for integer
// kinds, which is exactly why storage stays tagged.
func (v Value) Float() float64 {
	switch v.Kind {
	case ValueUint:
		return float64(v.U)
	case ValueInt:
		return float64(v.I)
	default:
		return v.F
	}
}

// Uint returns the value as a uint64 (negative and fractional values
// truncate toward zero; negative clamps to 0).
func (v Value) Uint() uint64 {
	switch v.Kind {
	case ValueUint:
		return v.U
	case ValueInt:
		if v.I < 0 {
			return 0
		}
		return uint64(v.I)
	default:
		if v.F <= 0 || math.IsNaN(v.F) {
			return 0
		}
		return uint64(v.F)
	}
}

// String renders the value the way the Prometheus exposition does:
// integer kinds as exact integer literals, floats in shortest form.
func (v Value) String() string {
	switch v.Kind {
	case ValueUint:
		return strconv.FormatUint(v.U, 10)
	case ValueInt:
		return strconv.FormatInt(v.I, 10)
	default:
		return formatFloat(v.F)
	}
}

// MarshalJSON emits a bare JSON number: integer kinds as integer
// literals (exact at any magnitude), floats in shortest round-trip
// form. Non-finite floats (which JSON cannot carry) marshal as null.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.Kind {
	case ValueUint:
		return strconv.AppendUint(nil, v.U, 10), nil
	case ValueInt:
		return strconv.AppendInt(nil, v.I, 10), nil
	default:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return []byte("null"), nil
		}
		return strconv.AppendFloat(nil, v.F, 'g', -1, 64), nil
	}
}

// Sub returns v - o, staying in integer arithmetic whenever both sides
// are integral so counter deltas never round.
func (v Value) Sub(o Value) Value {
	if v.Kind == ValueUint && o.Kind == ValueUint {
		if v.U >= o.U {
			return Uint64Value(v.U - o.U)
		}
		// A shrinking "counter" (process restart mid-run): report the
		// signed truth rather than a wrapped uint64.
		return IntValue(-int64(o.U - v.U))
	}
	if v.Kind != ValueFloat && o.Kind != ValueFloat {
		return IntValue(v.asInt() - o.asInt())
	}
	return FloatValue(v.Float() - o.Float())
}

// Add returns v + o under the same kind-preserving rules as Sub.
func (v Value) Add(o Value) Value {
	if v.Kind == ValueUint && o.Kind == ValueUint {
		return Uint64Value(v.U + o.U)
	}
	if v.Kind != ValueFloat && o.Kind != ValueFloat {
		return IntValue(v.asInt() + o.asInt())
	}
	return FloatValue(v.Float() + o.Float())
}

func (v Value) asInt() int64 {
	if v.Kind == ValueUint {
		return int64(v.U)
	}
	return v.I
}

// Snapshot flattens every series into a name{labels} → value map — the
// form bdbench diffs before and after a run. Counters and gauges map
// directly; a histogram contributes _count and _sum entries. Integer
// kinds stay integral (see Value).
func (r *Registry) Snapshot() map[string]Value {
	out := map[string]Value{}
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				v := s.cf
				if v == nil {
					v = s.c.Value
				}
				out[f.name+s.labels] = Uint64Value(v())
			case KindGauge:
				if s.gf != nil {
					out[f.name+s.labels] = FloatValue(s.gf())
				} else {
					out[f.name+s.labels] = IntValue(s.g.Value())
				}
			case KindHistogram:
				_, count, sum := s.h.snapshot()
				out[f.name+"_count"+s.labels] = Uint64Value(count)
				out[f.name+"_sum"+s.labels] = FloatValue(float64(sum) / 1e9)
			}
		}
	}
	return out
}

// Delta diffs two snapshots: monotonic keys (suffix _total, _count,
// _sum before any label braces) report after-before; everything else
// reports the after value. Keys absent from after are dropped.
func Delta(before, after map[string]Value) map[string]Value {
	out := make(map[string]Value, len(after))
	for k, v := range after {
		name := k
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_count") ||
			strings.HasSuffix(name, "_sum") {
			out[k] = v.Sub(before[k])
		} else {
			out[k] = v
		}
	}
	return out
}
