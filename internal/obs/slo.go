package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SLO tracking layered over the latency histograms the hot paths
// already feed. An objective is "fraction of requests at or below a
// latency threshold ≥ target"; the tracker derives good/bad counts from
// the histogram's cumulative buckets (no extra hot-path work at all)
// and reports multi-window burn rates — how fast the error budget is
// being spent relative to the rate that would exactly exhaust it —
// the SRE-workbook alerting signal.

// CountAtOrBelow returns how many observations were at or below d,
// along with the total observation count and the effective threshold
// actually applied. Because buckets are power-of-two sized, d is
// rounded DOWN to the nearest bucket upper bound: an observation only
// counts as good when its whole bucket is within d, so the result
// never overstates compliance. The effective (rounded) threshold is
// returned so callers can report what was really measured.
func (h *Histogram) CountAtOrBelow(d time.Duration) (good, total uint64, effective time.Duration) {
	total = h.count.Load()
	if d < time.Microsecond {
		return 0, total, 0
	}
	for i := 0; i < HistBuckets; i++ {
		b := BucketBound(i)
		if b > d {
			break
		}
		good += h.buckets[i].Load()
		effective = b
	}
	// Bucket loads race with Observe's three separate adds; clamp so a
	// mid-update read can't report more good than total.
	if good > total {
		good = total
	}
	return good, total, effective
}

// Objective is one latency SLO: at least Target (e.g. 0.999) of the
// requests observed by Hist complete within Threshold.
type Objective struct {
	Name      string
	Hist      *Histogram
	Threshold time.Duration
	Target    float64 // in (0,1)
}

type sloSample struct {
	at    time.Time
	good  uint64
	total uint64
}

type objectiveState struct {
	Objective
	effective time.Duration
	samples   []sloSample // oldest first, pruned past the largest window
}

// SLO tracks a set of latency objectives over shared histograms. Counts
// are sampled periodically (Start, or SampleAt from tests) into small
// per-objective rings; burn rates over each window come from the delta
// between the live counters and the sample closest to the window's far
// edge. The tracker itself touches no request path — it only reads
// histogram atomics at sample/report time.
type SLO struct {
	mu      sync.Mutex
	windows []time.Duration // ascending
	objs    []*objectiveState
	stop    chan struct{}
	once    sync.Once
}

// DefaultSLOWindows are the burn-rate windows used when none are given:
// a fast window that reacts to incidents and slower ones that catch
// sustained budget bleed.
var DefaultSLOWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// NewSLO returns a tracker computing burn rates over the given windows
// (DefaultSLOWindows when empty).
func NewSLO(windows ...time.Duration) *SLO {
	if len(windows) == 0 {
		windows = append([]time.Duration(nil), DefaultSLOWindows...)
	}
	for i := 1; i < len(windows); i++ {
		for j := i; j > 0 && windows[j] < windows[j-1]; j-- {
			windows[j], windows[j-1] = windows[j-1], windows[j]
		}
	}
	return &SLO{windows: windows, stop: make(chan struct{})}
}

// AddObjective registers one objective. The histogram is shared with
// whatever hot path already feeds it; the tracker never writes to it.
func (s *SLO) AddObjective(o Objective) {
	_, _, eff := o.Hist.CountAtOrBelow(o.Threshold)
	if eff == 0 {
		// CountAtOrBelow reports effective=0 on an empty histogram too;
		// compute the rounded threshold directly so reports are stable.
		for i := 0; i < HistBuckets; i++ {
			if b := BucketBound(i); b <= o.Threshold {
				eff = b
			} else {
				break
			}
		}
	}
	s.mu.Lock()
	s.objs = append(s.objs, &objectiveState{Objective: o, effective: eff})
	s.mu.Unlock()
}

// SampleAt records one counter sample per objective, pruning history
// older than the largest window. Exposed (rather than only the Start
// ticker) so tests can drive deterministic clocks.
func (s *SLO) SampleAt(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := s.windows[len(s.windows)-1] + s.windows[0]
	for _, o := range s.objs {
		good, total, _ := o.Hist.CountAtOrBelow(o.effective)
		o.samples = append(o.samples, sloSample{at: now, good: good, total: total})
		cut := 0
		for cut < len(o.samples)-1 && now.Sub(o.samples[cut].at) > keep {
			cut++
		}
		if cut > 0 {
			o.samples = append(o.samples[:0], o.samples[cut:]...)
		}
	}
}

// Start launches a sampling goroutine at the given interval (minimum
// 1s). Stop terminates it.
func (s *SLO) Start(interval time.Duration) {
	if interval < time.Second {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				s.SampleAt(now)
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the Start goroutine. Safe to call more than once.
func (s *SLO) Stop() { s.once.Do(func() { close(s.stop) }) }

// BurnWindow is one window's burn rate within a report. Burn 1.0 means
// the error budget is being spent exactly at the rate that exhausts it
// by the end of the SLO period; >1 is over-budget. Valid is false when
// the sample history does not yet reach back a full window (the rate is
// then computed over whatever span is covered).
type BurnWindow struct {
	Window   string  `json:"window"`
	SpanNs   int64   `json:"spanNs"` // history actually covered
	Requests uint64  `json:"requests"`
	Bad      uint64  `json:"bad"`
	Burn     float64 `json:"burnRate"`
	Valid    bool    `json:"valid"`
}

// SLOReport is one objective's current standing.
type SLOReport struct {
	Name        string       `json:"name"`
	Target      float64      `json:"target"`
	ThresholdNs int64        `json:"thresholdNs"` // as requested
	EffectiveNs int64        `json:"effectiveNs"` // bucket-rounded (applied)
	Total       uint64       `json:"total"`
	Good        uint64       `json:"good"`
	Compliance  float64      `json:"compliance"` // lifetime good/total
	Windows     []BurnWindow `json:"windows,omitempty"`
}

// ReportAt builds the current standing of every objective: lifetime
// compliance from the live counters, plus a burn rate per window from
// the sampled history.
func (s *SLO) ReportAt(now time.Time) []SLOReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SLOReport, 0, len(s.objs))
	for _, o := range s.objs {
		good, total, _ := o.Hist.CountAtOrBelow(o.effective)
		r := SLOReport{
			Name:        o.Name,
			Target:      o.Target,
			ThresholdNs: int64(o.Threshold),
			EffectiveNs: int64(o.effective),
			Total:       total,
			Good:        good,
			Compliance:  1,
		}
		if total > 0 {
			r.Compliance = float64(good) / float64(total)
		}
		budget := 1 - o.Target
		for _, w := range s.windows {
			bw := BurnWindow{Window: w.String()}
			// Newest sample at least a full window old; else the oldest
			// available (partial coverage, flagged via Valid=false).
			var base *sloSample
			for i := len(o.samples) - 1; i >= 0; i-- {
				if now.Sub(o.samples[i].at) >= w {
					base = &o.samples[i]
					break
				}
			}
			if base == nil && len(o.samples) > 0 {
				base = &o.samples[0]
			}
			if base != nil {
				bw.SpanNs = int64(now.Sub(base.at))
				bw.Valid = bw.SpanNs >= int64(w)
				dTotal := total - base.total
				dGood := good - base.good
				if dGood > dTotal { // racy clamp, mirrors CountAtOrBelow
					dGood = dTotal
				}
				bw.Requests = dTotal
				bw.Bad = dTotal - dGood
				if dTotal > 0 && budget > 0 {
					bw.Burn = (float64(bw.Bad) / float64(dTotal)) / budget
				}
			}
			r.Windows = append(r.Windows, bw)
		}
		out = append(out, r)
	}
	return out
}

// Report is ReportAt(time.Now()).
func (s *SLO) Report() []SLOReport { return s.ReportAt(time.Now()) }

// Handler serves the report as JSON (mount at /sloz).
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Report())
	})
}

// FormatSLO renders reports as the one-line-per-objective summary used
// by bdbench's human output.
func FormatSLO(reports []SLOReport) string {
	var b []byte
	for _, r := range reports {
		b = append(b, fmt.Sprintf("slo %s: target %.4g%% <= %v (eff %v), compliance %.4f (%d/%d good)",
			r.Name, r.Target*100, time.Duration(r.ThresholdNs), time.Duration(r.EffectiveNs),
			r.Compliance, r.Good, r.Total)...)
		for _, w := range r.Windows {
			b = append(b, fmt.Sprintf(", burn[%s]=%.2f", w.Window, w.Burn)...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
