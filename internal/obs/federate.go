package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// The Federator is the pull side of the observability plane: it asks
// the membership layer who is alive, fetches every live node's
// registry snapshot and event tail concurrently over the data-plane
// wire, and merges them into one cluster view. Partial failure is a
// first-class result, not an error: a down member yields an entry in
// Federation.Errors and the merge proceeds with everyone else, and a
// hung member costs at most Timeout — never a hang.

// Fetcher pulls one node's observability state. transport.Client
// implements it over OpMetricsFetch/OpEventsFetch; RegistryFetcher
// implements it in-process for the node's own registry.
type Fetcher interface {
	FetchMetrics() (*RegistrySnapshot, error)
	FetchEvents() ([]Event, error)
}

// RegistryFetcher is the in-process Fetcher for the local node — the
// federating daemon includes itself without a loopback dial.
type RegistryFetcher struct {
	Node     string
	Registry *Registry
	Events   *EventLog
}

// FetchMetrics captures the local registry.
func (f RegistryFetcher) FetchMetrics() (*RegistrySnapshot, error) {
	if f.Registry == nil {
		return &RegistrySnapshot{Node: f.Node}, nil
	}
	return f.Registry.Capture(f.Node), nil
}

// FetchEvents returns the local event tail.
func (f RegistryFetcher) FetchEvents() ([]Event, error) {
	return f.Events.Events(), nil
}

// FederatorConfig wires a Federator to a cluster.
type FederatorConfig struct {
	// Self fetches the local node without a network hop. Optional.
	Self Fetcher
	// SelfAddr is the local node's advertised address; it is skipped
	// in the Members list when Self is set (so the local node is not
	// fetched twice).
	SelfAddr string
	// Members lists the live members' advertised addresses — typically
	// a closure over the gossip ClusterView. Called once per Poll, so
	// elastic membership changes are picked up between polls.
	Members func() []string
	// Dial opens a Fetcher to a member. Connections are cached across
	// polls and dropped on first error.
	Dial func(addr string) (Fetcher, error)
	// Timeout bounds each member's fetch (default 2s). A member that
	// exceeds it is reported in Federation.Errors for that poll.
	Timeout time.Duration
}

// NodeState is one member's fetched observability state.
type NodeState struct {
	Addr    string            `json:"addr"`
	Metrics *RegistrySnapshot `json:"metrics,omitempty"`
	Events  []Event           `json:"events,omitempty"`
}

// Federation is one poll's cluster-wide result: every reachable node's
// snapshot, the exact merged registry, the merged event timeline, and
// the nodes that could not be fetched this round.
type Federation struct {
	When   time.Time         `json:"when"`
	Nodes  []NodeState       `json:"nodes"`
	Merged *RegistrySnapshot `json:"merged"`
	Events []Event           `json:"events,omitempty"`
	Errors map[string]string `json:"errors,omitempty"`
}

// Federator polls a changing member set and merges the results.
type Federator struct {
	cfg FederatorConfig

	mu    sync.Mutex
	conns map[string]Fetcher
}

// NewFederator returns a Federator over cfg.
func NewFederator(cfg FederatorConfig) *Federator {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	return &Federator{cfg: cfg, conns: map[string]Fetcher{}}
}

// Close drops every cached member connection (those implementing
// io.Closer are closed).
func (f *Federator) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for addr, c := range f.conns {
		if cl, ok := c.(interface{ Close() error }); ok {
			_ = cl.Close()
		}
		delete(f.conns, addr)
	}
}

type fetchResult struct {
	state NodeState
	err   error
}

// Poll fetches every live member concurrently and merges. It returns
// after at most Timeout (all fetches run in parallel); members that
// miss the deadline or fail are named in Errors with the merge built
// from the rest.
func (f *Federator) Poll() *Federation {
	fed := &Federation{When: time.Now(), Errors: map[string]string{}}
	type pending struct {
		addr string
		ch   chan fetchResult
	}
	var fetches []pending
	if f.cfg.Self != nil {
		fetches = append(fetches, pending{addr: f.cfg.SelfAddr, ch: f.fetchAsync(f.cfg.SelfAddr, f.cfg.Self)})
	}
	seen := map[string]bool{f.cfg.SelfAddr: f.cfg.Self != nil}
	if f.cfg.Members != nil {
		for _, addr := range f.cfg.Members() {
			if addr == "" || seen[addr] {
				continue
			}
			seen[addr] = true
			fetches = append(fetches, pending{addr: addr, ch: f.fetchAsync(addr, nil)})
		}
	}
	// One shared deadline for the whole poll: the fetches run in
	// parallel, so the slowest (or hung) member bounds the poll at
	// Timeout, not Timeout×members. A closed channel (not a timer
	// receive) marks expiry so every remaining collect sees it.
	expired := make(chan struct{})
	timer := time.AfterFunc(f.cfg.Timeout, func() { close(expired) })
	defer timer.Stop()
	collect := func(p pending, res fetchResult) {
		if res.err != nil {
			fed.Errors[p.addr] = res.err.Error()
			f.dropConn(p.addr)
			return
		}
		fed.Nodes = append(fed.Nodes, res.state)
	}
	for _, p := range fetches {
		select {
		case res := <-p.ch:
			collect(p, res)
		case <-expired:
			// Deadline hit: take a result that raced in, otherwise
			// report the member missing. The fetch goroutine finishes
			// on its own (the wire client has its own timeouts) and
			// the redial on the next poll starts clean.
			select {
			case res := <-p.ch:
				collect(p, res)
			default:
				fed.Errors[p.addr] = fmt.Sprintf("no snapshot within %v", f.cfg.Timeout)
				f.dropConn(p.addr)
			}
		}
	}
	snaps := make([]*RegistrySnapshot, 0, len(fed.Nodes))
	eventSets := make([][]Event, 0, len(fed.Nodes))
	for i := range fed.Nodes {
		snaps = append(snaps, fed.Nodes[i].Metrics)
		eventSets = append(eventSets, fed.Nodes[i].Events)
	}
	fed.Merged = MergeSnapshots("cluster", snaps)
	fed.Events = MergeEvents(eventSets...)
	if len(fed.Errors) == 0 {
		fed.Errors = nil
	}
	sort.Slice(fed.Nodes, func(i, j int) bool { return fed.Nodes[i].Addr < fed.Nodes[j].Addr })
	return fed
}

// fetchAsync starts one member's fetch and returns its result channel.
func (f *Federator) fetchAsync(addr string, fixed Fetcher) chan fetchResult {
	ch := make(chan fetchResult, 1)
	go func() {
		fetcher := fixed
		if fetcher == nil {
			var err error
			fetcher, err = f.conn(addr)
			if err != nil {
				ch <- fetchResult{err: err}
				return
			}
		}
		snap, err := fetcher.FetchMetrics()
		if err != nil {
			ch <- fetchResult{err: err}
			return
		}
		if snap.Node == "" {
			snap.Node = addr
		}
		events, err := fetcher.FetchEvents()
		if err != nil {
			ch <- fetchResult{err: err}
			return
		}
		ch <- fetchResult{state: NodeState{Addr: addr, Metrics: snap, Events: events}}
	}()
	return ch
}

// conn returns the cached Fetcher for addr, dialing on first use.
func (f *Federator) conn(addr string) (Fetcher, error) {
	f.mu.Lock()
	c := f.conns[addr]
	f.mu.Unlock()
	if c != nil {
		return c, nil
	}
	if f.cfg.Dial == nil {
		return nil, fmt.Errorf("obs: no dialer for member %s", addr)
	}
	c, err := f.cfg.Dial(addr)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.conns[addr] = c
	f.mu.Unlock()
	return c, nil
}

// dropConn evicts (and closes) addr's cached connection after a fetch
// failure, so the next poll redials instead of reusing a wedged conn.
func (f *Federator) dropConn(addr string) {
	f.mu.Lock()
	c := f.conns[addr]
	delete(f.conns, addr)
	f.mu.Unlock()
	if cl, ok := c.(interface{ Close() error }); ok {
		_ = cl.Close()
	}
}
