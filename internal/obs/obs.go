package obs

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; Add/Inc are single atomic adds, safe on hot paths.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of finite histogram buckets. Every
// Histogram shares one fixed layout — bucket i holds observations in
// (2^(i-1), 2^i] microseconds, i.e. upper bounds 1µs, 2µs, 4µs, …,
// 2^23µs (≈8.4s) — plus one overflow (+Inf) bucket. A fixed layout
// means histograms recorded on different nodes merge exactly, and the
// hot path is a shift-free bits.Len64 with no configuration to load.
const HistBuckets = 24

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready; Observe is lock-free (three atomic adds) so it can sit on
// request hot paths.
type Histogram struct {
	buckets [HistBuckets + 1]atomic.Uint64 // last bucket is +Inf
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to the index of the smallest bucket whose
// upper bound it does not exceed.
func bucketIndex(d time.Duration) int {
	ns := int64(d)
	if ns <= 1000 {
		return 0 // ≤ 1µs, including zero and negative clock skew
	}
	us := (uint64(ns) + 999) / 1000 // ceil to whole microseconds
	idx := bits.Len64(us - 1)
	if idx > HistBuckets {
		idx = HistBuckets // +Inf
	}
	return idx
}

// BucketBound returns bucket i's inclusive upper bound; the last bucket
// is unbounded and reports a negative duration.
func BucketBound(i int) time.Duration {
	if i >= HistBuckets {
		return -1
	}
	return time.Duration(uint64(time.Microsecond) << uint(i))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Merge folds o's observations into h. Exact because every histogram
// shares the same bucket layout.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// snapshot copies the bucket counts (non-cumulative), count and sum.
// Under concurrent Observe the three are not a single consistent cut —
// fine for monitoring output.
func (h *Histogram) snapshot() (buckets [HistBuckets + 1]uint64, count uint64, sum int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.count.Load(), h.sum.Load()
}

// Labels attaches dimension values to one series of a metric family.
// Keep cardinality low: opcode names, level numbers, peer addresses.
type Labels map[string]string

// ---- registry ------------------------------------------------------------

// MetricKind distinguishes the three series shapes a Registry holds.
// Exported because registry snapshots (snapshot.go) cross process
// boundaries: a federating consumer switches on the kind to know
// whether a series carries a scalar or a bucket vector.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family: exactly one of the
// value sources is set.
type series struct {
	labels string // rendered `{k="v",…}` form, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() uint64  // counter callback (adopts an existing atomic)
	gf     func() float64 // gauge callback (computed at scrape time)
}

type family struct {
	name   string
	help   string
	kind   MetricKind
	series []*series
}

// Registry is a set of named metric families rendered as Prometheus
// text exposition format. Registration takes a lock; reading registered
// handles does not. Register each series once, at setup time.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// renderLabels produces the canonical sorted `{k="v",…}` form.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		v := l[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// add registers one series, creating its family on first use. Duplicate
// series and kind conflicts panic: both are wiring bugs, and silently
// merging them would render a corrupt exposition.
func (r *Registry) add(name, help string, kind MetricKind, labels Labels, s *series) {
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter creates and registers a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(name, help, KindCounter, labels, &series{c: c})
	return c
}

// Gauge creates and registers a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(name, help, KindGauge, labels, &series{g: g})
	return g
}

// Histogram creates and registers a histogram series.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	h := &Histogram{}
	r.add(name, help, KindHistogram, labels, &series{h: h})
	return h
}

// CounterFunc registers a counter series backed by a callback — the
// adopt path for counters that already exist as atomics elsewhere
// (engine stats, server served/shed). fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.add(name, help, KindCounter, labels, &series{cf: fn})
}

// GaugeFunc registers a gauge series computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, KindGauge, labels, &series{gf: fn})
}

// RegisterHistogram adopts an existing histogram (one owned by a hot
// path that predates the registry) as a series.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	r.add(name, help, KindHistogram, labels, &series{h: h})
}

// RegisterCounter adopts an existing counter as a series.
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) {
	r.add(name, help, KindCounter, labels, &series{c: c})
}

// RegisterGauge adopts an existing gauge as a series.
func (r *Registry) RegisterGauge(name, help string, labels Labels, g *Gauge) {
	r.add(name, help, KindGauge, labels, &series{g: g})
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (families and series in deterministic sorted
// order; histogram buckets cumulative, sums in seconds). It renders
// through Capture so the local /metrics page and a federated snapshot
// (snapshot.go) cannot drift in format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Capture("").WritePrometheus(w)
}

// bucketLabels splices le into a series' rendered label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Handler serves the registry at an HTTP endpoint (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
