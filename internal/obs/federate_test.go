package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubFetcher is a scripted Fetcher for federation tests.
type stubFetcher struct {
	snap   *RegistrySnapshot
	events []Event
	err    error
	delay  time.Duration
}

func (s stubFetcher) FetchMetrics() (*RegistrySnapshot, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.snap, nil
}

func (s stubFetcher) FetchEvents() ([]Event, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.events, nil
}

func nodeSnap(node string, ops uint64) *RegistrySnapshot {
	r := NewRegistry()
	c := r.Counter("bd_test_ops_total", "t", nil)
	c.Add(ops)
	h := r.Histogram("bd_test_seconds", "t", nil)
	h.Observe(time.Duration(ops) * time.Microsecond)
	return r.Capture(node)
}

func TestFederatorMergesAllMembers(t *testing.T) {
	conns := map[string]Fetcher{
		"n2": stubFetcher{snap: nodeSnap("n2", 7)},
		"n3": stubFetcher{snap: nodeSnap("n3", 5)},
	}
	f := NewFederator(FederatorConfig{
		Self:     stubFetcher{snap: nodeSnap("n1", 3)},
		SelfAddr: "n1",
		Members:  func() []string { return []string{"n1", "n2", "n3"} },
		Dial:     func(addr string) (Fetcher, error) { return conns[addr], nil },
		Timeout:  2 * time.Second,
	})
	fed := f.Poll()
	if len(fed.Nodes) != 3 || fed.Errors != nil {
		t.Fatalf("nodes=%d errors=%v, want 3 nodes and no errors", len(fed.Nodes), fed.Errors)
	}
	if v, ok := fed.Merged.Lookup("bd_test_ops_total", ""); !ok || v != Uint64Value(15) {
		t.Fatalf("merged counter = %v, want exactly 15", v)
	}
	// Histogram merge is exact: three one-observation histograms.
	if hs := fed.Merged.Family("bd_test_seconds").Get(""); hs == nil || hs.Count != 3 {
		t.Fatalf("merged histogram count wrong: %+v", fed.Merged.Family("bd_test_seconds"))
	}
}

// TestFederatorPartialFailure is the down-member contract: the failed
// node is named in Errors, and the merge is built from the survivors.
func TestFederatorPartialFailure(t *testing.T) {
	conns := map[string]Fetcher{
		"n2": stubFetcher{err: errors.New("connection refused")},
		"n3": stubFetcher{snap: nodeSnap("n3", 5)},
	}
	f := NewFederator(FederatorConfig{
		Self:     stubFetcher{snap: nodeSnap("n1", 3)},
		SelfAddr: "n1",
		Members:  func() []string { return []string{"n2", "n3"} },
		Dial:     func(addr string) (Fetcher, error) { return conns[addr], nil },
		Timeout:  2 * time.Second,
	})
	fed := f.Poll()
	if len(fed.Nodes) != 2 {
		t.Fatalf("surviving nodes = %d, want 2", len(fed.Nodes))
	}
	if msg, ok := fed.Errors["n2"]; !ok || !strings.Contains(msg, "refused") {
		t.Fatalf("down member not named: errors=%v", fed.Errors)
	}
	if v, _ := fed.Merged.Lookup("bd_test_ops_total", ""); v != Uint64Value(8) {
		t.Fatalf("merged counter = %v, want 8 (survivors only)", v)
	}
}

// TestFederatorTimeoutBounds proves a hung member costs at most the
// poll timeout, not a hang — and is reported missing.
func TestFederatorTimeoutBounds(t *testing.T) {
	conns := map[string]Fetcher{
		"hung": stubFetcher{snap: nodeSnap("hung", 1), delay: 30 * time.Second},
	}
	f := NewFederator(FederatorConfig{
		Self:     stubFetcher{snap: nodeSnap("n1", 3)},
		SelfAddr: "n1",
		Members:  func() []string { return []string{"hung"} },
		Dial:     func(addr string) (Fetcher, error) { return conns[addr], nil },
		Timeout:  200 * time.Millisecond,
	})
	start := time.Now()
	fed := f.Poll()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("poll took %v, want ~the 200ms timeout", elapsed)
	}
	if len(fed.Nodes) != 1 {
		t.Fatalf("nodes = %d, want the live one only", len(fed.Nodes))
	}
	if msg := fed.Errors["hung"]; !strings.Contains(msg, "no snapshot within") {
		t.Fatalf("hung member not reported: errors=%v", fed.Errors)
	}
}

func TestEventLogEvictionOrder(t *testing.T) {
	l := NewEventLog(0) // clamps to 16
	for i := 1; i <= 20; i++ {
		l.Record(Event{Kind: EventViewCommit, Epoch: uint64(i)})
	}
	if l.Total() != 20 {
		t.Fatalf("total = %d, want 20", l.Total())
	}
	events := l.Events()
	if len(events) != 16 {
		t.Fatalf("retained %d, want 16", len(events))
	}
	// Oldest-first with 1..4 evicted: epochs 5..20, seqs 5..20.
	for i, e := range events {
		if e.Epoch != uint64(i+5) || e.Seq != uint64(i+5) {
			t.Fatalf("slot %d: epoch=%d seq=%d, want %d", i, e.Epoch, e.Seq, i+5)
		}
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Record(Event{Kind: EventFailover}) // must not panic
	l.SetNode("x")
	if l.Events() != nil || l.Total() != 0 {
		t.Fatal("nil log should be empty")
	}
}

func TestEventsCodecRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 1, Time: time.Unix(0, 1234567890).UTC(), Kind: EventViewCommit, Node: "n1", Epoch: 3, Detail: "d"},
		{Seq: 2, Time: time.Unix(0, 1234567891).UTC(), Kind: EventHintDrop, Node: "n1", Member: "n2", Trace: 99},
	}
	enc := EncodeEvents(in)
	if len(enc) != EncodedEventsLen(in) {
		t.Fatalf("EncodedEventsLen = %d, encoded %d", EncodedEventsLen(in), len(enc))
	}
	out, err := DecodeEvents(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d events, want 2", len(out))
	}
	for i := range in {
		// Equal, not ==: decode rebuilds Time in the local zone.
		if !out[i].Time.Equal(in[i].Time) {
			t.Fatalf("event %d time drifted: %v vs %v", i, out[i].Time, in[i].Time)
		}
		a, b := out[i], in[i]
		a.Time, b.Time = time.Time{}, time.Time{}
		if a != b {
			t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", b, a)
		}
	}
	if _, err := DecodeEvents(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated payload decoded")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("bd_a_total", "help a", Labels{"op": "get"}).Add(1 << 60) // > 2^53: must stay exact
	r.Gauge("bd_b_depth", "help b", nil).Set(-7)
	r.Histogram("bd_c_seconds", "help c", nil).Observe(3 * time.Microsecond)
	snap := r.Capture("node-1")
	dec, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Node != "node-1" || len(dec.Fams) != 3 {
		t.Fatalf("decoded %+v", dec)
	}
	if v, _ := dec.Lookup("bd_a_total", `{op="get"}`); v != Uint64Value(1<<60) {
		t.Fatalf("counter = %v, want exact 2^60", v)
	}
	if v, _ := dec.Lookup("bd_b_depth", ""); v != IntValue(-7) {
		t.Fatalf("gauge = %v, want -7", v)
	}
	hs := dec.Family("bd_c_seconds").Get("")
	if hs == nil || hs.Count != 1 || hs.SumNs != 3000 || hs.Buckets[2] != 1 {
		t.Fatalf("histogram decoded wrong: %+v", hs)
	}
	if dec.Family("bd_c_seconds").Help != "help c" {
		t.Fatal("help text lost")
	}
}

// TestConcurrentObserveVsEncode races the hot recording path against
// Capture+EncodeSnapshot — the federation's read side — under -race.
func TestConcurrentObserveVsEncode(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bd_r_total", "t", nil)
	h := r.Histogram("bd_r_seconds", "t", nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(time.Duration(w*i%1000) * time.Microsecond)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		snap := r.Capture("race")
		if _, err := DecodeSnapshot(EncodeSnapshot(snap)); err != nil {
			t.Fatal(err)
		}
		// The capture must be internally consistent enough to merge.
		MergeSnapshots("m", []*RegistrySnapshot{snap, snap})
	}
	close(stop)
	wg.Wait()
}

func TestHistoryRate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bd_h_total", "t", nil)
	h := NewHistory(8)
	c.Add(100)
	h.Add(HistoryPoint{When: time.Unix(100, 0), Snap: r.Capture("n")})
	c.Add(50)
	h.Add(HistoryPoint{When: time.Unix(110, 0), Snap: r.Capture("n")})
	rate, ok := h.Rate("bd_h_total", "", 0)
	if !ok || rate != 5 {
		t.Fatalf("rate = %v ok=%v, want 5 ops/s", rate, ok)
	}
	if _, ok := h.Rate("bd_missing_total", "", 0); ok {
		t.Fatal("rate of unknown series should report !ok")
	}
}
