package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// This file is the metrics half of the cluster observability plane
// (DESIGN.md §15): a point-in-time capture of a whole Registry that
// survives a wire hop losslessly. The capture keeps exact histogram
// bucket vectors and integer counters — not float summaries — so a
// Federator that merges N nodes' snapshots produces the same numbers
// a single process would have counted (Histogram.Merge is exact, and
// uint64 counters never round through float64).

// SeriesSnapshot is one labeled series' sampled state. Scalar kinds
// carry Value; histograms carry the per-bucket (non-cumulative)
// vector plus count and nanosecond sum.
type SeriesSnapshot struct {
	Labels  string   `json:"labels,omitempty"` // rendered {k="v",…} form
	Value   Value    `json:"value"`
	Buckets []uint64 `json:"buckets,omitempty"` // len HistBuckets+1, last is +Inf
	Count   uint64   `json:"count,omitempty"`
	SumNs   int64    `json:"sumNs,omitempty"`
}

// FamilySnapshot is one metric family's sampled series, sorted by
// rendered label set.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   MetricKind       `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// RegistrySnapshot is a full registry capture: every family, sorted by
// name. Node names the producing process ("" for anonymous captures;
// a federated merge names the cluster-side aggregate).
type RegistrySnapshot struct {
	Node string           `json:"node,omitempty"`
	Fams []FamilySnapshot `json:"families"`
}

// MarshalJSON renders the kind as its Prometheus type name.
func (k MetricKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the quoted form MarshalJSON emits.
func (k *MetricKind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"counter"`:
		*k = KindCounter
	case `"gauge"`:
		*k = KindGauge
	case `"histogram"`:
		*k = KindHistogram
	default:
		return fmt.Errorf("obs: bad metric kind %s", b)
	}
	return nil
}

// Capture samples every registered series into a RegistrySnapshot.
// Safe under concurrent Observe/Add — each atomic is read once; the
// capture is not a single consistent cut across series, same as any
// scrape.
func (r *Registry) Capture(node string) *RegistrySnapshot {
	fams := r.sortedFamilies()
	out := &RegistrySnapshot{Node: node, Fams: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind,
			Series: make([]SeriesSnapshot, 0, len(f.series)),
		}
		for _, s := range f.series {
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				v := s.cf
				if v == nil {
					v = s.c.Value
				}
				ss.Value = Uint64Value(v())
			case KindGauge:
				if s.gf != nil {
					ss.Value = FloatValue(s.gf())
				} else {
					ss.Value = IntValue(s.g.Value())
				}
			case KindHistogram:
				buckets, count, sum := s.h.snapshot()
				ss.Buckets = append([]uint64(nil), buckets[:]...)
				ss.Count = count
				ss.SumNs = sum
			}
			fs.Series = append(fs.Series, ss)
		}
		sort.Slice(fs.Series, func(i, j int) bool { return fs.Series[i].Labels < fs.Series[j].Labels })
		out.Fams = append(out.Fams, fs)
	}
	return out
}

// Family returns the named family, or nil.
func (s *RegistrySnapshot) Family(name string) *FamilySnapshot {
	for i := range s.Fams {
		if s.Fams[i].Name == name {
			return &s.Fams[i]
		}
	}
	return nil
}

// Get returns the series with the rendered label set, or nil.
func (f *FamilySnapshot) Get(labels string) *SeriesSnapshot {
	if f == nil {
		return nil
	}
	for i := range f.Series {
		if f.Series[i].Labels == labels {
			return &f.Series[i]
		}
	}
	return nil
}

// Lookup returns a scalar series' value by family name and rendered
// label set ("" for unlabeled).
func (s *RegistrySnapshot) Lookup(name, labels string) (Value, bool) {
	ser := s.Family(name).Get(labels)
	if ser == nil {
		return Value{}, false
	}
	return ser.Value, true
}

// Quantile returns the inclusive upper bucket bound at or above which
// fraction q of a histogram series' observations fall — the same
// bucket-resolution percentile a Prometheus histogram_quantile yields.
// Returns false for empty or non-histogram series; observations in the
// +Inf bucket report the largest finite bound.
func (ss *SeriesSnapshot) Quantile(q float64) (time.Duration, bool) {
	if ss == nil || ss.Count == 0 || len(ss.Buckets) != HistBuckets+1 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(ss.Count)))
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	for i := 0; i < HistBuckets; i++ {
		cum += ss.Buckets[i]
		if cum >= rank {
			return BucketBound(i), true
		}
	}
	return BucketBound(HistBuckets - 1), true
}

// MergeSnapshots folds node snapshots into one cluster aggregate named
// node: counters and histogram buckets sum exactly, gauges sum across
// nodes (instantaneous cluster totals — right for additive gauges like
// in-flight requests or pending hints; per-node values like the view
// epoch stay meaningful only in the per-node snapshots, which is why a
// Federation keeps both). Families and series are the union, sorted.
func MergeSnapshots(node string, snaps []*RegistrySnapshot) *RegistrySnapshot {
	type serKey struct{ fam, labels string }
	fams := map[string]*FamilySnapshot{}
	sers := map[serKey]*SeriesSnapshot{}
	for _, snap := range snaps {
		if snap == nil {
			continue
		}
		for fi := range snap.Fams {
			f := &snap.Fams[fi]
			mf := fams[f.Name]
			if mf == nil {
				mf = &FamilySnapshot{Name: f.Name, Help: f.Help, Kind: f.Kind}
				fams[f.Name] = mf
			}
			if mf.Kind != f.Kind {
				// Kind conflict across nodes (mixed binary versions):
				// first writer wins, the conflicting family is skipped
				// rather than rendered corrupt.
				continue
			}
			if mf.Help == "" {
				mf.Help = f.Help
			}
			for si := range f.Series {
				ser := &f.Series[si]
				key := serKey{f.Name, ser.Labels}
				ms := sers[key]
				if ms == nil {
					cp := *ser
					cp.Buckets = append([]uint64(nil), ser.Buckets...)
					sers[key] = &cp
					continue
				}
				switch f.Kind {
				case KindHistogram:
					if len(ms.Buckets) == len(ser.Buckets) {
						for i := range ser.Buckets {
							ms.Buckets[i] += ser.Buckets[i]
						}
					}
					ms.Count += ser.Count
					ms.SumNs += ser.SumNs
				default:
					ms.Value = ms.Value.Add(ser.Value)
				}
			}
		}
	}
	out := &RegistrySnapshot{Node: node, Fams: make([]FamilySnapshot, 0, len(fams))}
	for _, mf := range fams {
		for key, ms := range sers {
			if key.fam == mf.Name {
				mf.Series = append(mf.Series, *ms)
			}
		}
		sort.Slice(mf.Series, func(i, j int) bool { return mf.Series[i].Labels < mf.Series[j].Labels })
		out.Fams = append(out.Fams, *mf)
	}
	sort.Slice(out.Fams, func(i, j int) bool { return out.Fams[i].Name < out.Fams[j].Name })
	return out
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format — the same renderer Registry.WritePrometheus uses, so a
// federated /clusterz page reads exactly like a node's /metrics page.
func (s *RegistrySnapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for fi := range s.Fams {
		f := &s.Fams[fi]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for si := range f.Series {
			ser := &f.Series[si]
			switch f.Kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.Name, ser.Labels, ser.Value.String())
			case KindHistogram:
				if len(ser.Buckets) != HistBuckets+1 {
					continue
				}
				cum := uint64(0)
				for i := 0; i < HistBuckets; i++ {
					cum += ser.Buckets[i]
					le := formatFloat(float64(uint64(1)<<uint(i)) / 1e6)
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name, bucketLabels(ser.Labels, le), cum)
				}
				cum += ser.Buckets[HistBuckets]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name, bucketLabels(ser.Labels, "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.Name, ser.Labels, formatFloat(float64(ser.SumNs)/1e9))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.Name, ser.Labels, ser.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ---- binary codec --------------------------------------------------------
//
// Compact big-endian layout, version-prefixed (the payload of a
// RespMetrics frame):
//
//	u8 version | str16 node | u32 nfams
//	family:  str16 name | str16 help | u8 kind | u32 nseries
//	series:  str16 labels | body
//	scalar body:    u8 value-kind | u64 bits
//	histogram body: (HistBuckets+1)×u64 buckets | u64 count | u64 sum
//
// str16 is u16 length + bytes, the same shape the span codec uses.

const snapshotVersion = 1

func appendStr16(dst []byte, s string) []byte {
	if len(s) > 65535 {
		s = s[:65535]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func takeStr16(b []byte) (string, []byte, bool) {
	if len(b) < 2 {
		return "", nil, false
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, false
	}
	return string(b[:n]), b[n:], true
}

// EncodeSnapshot serializes a snapshot for the wire.
func EncodeSnapshot(s *RegistrySnapshot) []byte {
	size := 1 + 2 + len(s.Node) + 4
	for fi := range s.Fams {
		f := &s.Fams[fi]
		size += 2 + len(f.Name) + 2 + len(f.Help) + 1 + 4
		for si := range f.Series {
			size += 2 + len(f.Series[si].Labels)
			if f.Kind == KindHistogram {
				size += (HistBuckets + 1 + 2) * 8
			} else {
				size += 1 + 8
			}
		}
	}
	out := make([]byte, 0, size)
	out = append(out, snapshotVersion)
	out = appendStr16(out, s.Node)
	out = binary.BigEndian.AppendUint32(out, uint32(len(s.Fams)))
	for fi := range s.Fams {
		f := &s.Fams[fi]
		out = appendStr16(out, f.Name)
		out = appendStr16(out, f.Help)
		out = append(out, byte(f.Kind))
		out = binary.BigEndian.AppendUint32(out, uint32(len(f.Series)))
		for si := range f.Series {
			ser := &f.Series[si]
			out = appendStr16(out, ser.Labels)
			if f.Kind == KindHistogram {
				for i := 0; i < HistBuckets+1; i++ {
					var v uint64
					if i < len(ser.Buckets) {
						v = ser.Buckets[i]
					}
					out = binary.BigEndian.AppendUint64(out, v)
				}
				out = binary.BigEndian.AppendUint64(out, ser.Count)
				out = binary.BigEndian.AppendUint64(out, uint64(ser.SumNs))
			} else {
				out = append(out, byte(ser.Value.Kind))
				out = binary.BigEndian.AppendUint64(out, ser.Value.bits())
			}
		}
	}
	return out
}

func (v Value) bits() uint64 {
	switch v.Kind {
	case ValueUint:
		return v.U
	case ValueInt:
		return uint64(v.I)
	default:
		return math.Float64bits(v.F)
	}
}

func valueFromBits(kind ValueKind, bits uint64) Value {
	switch kind {
	case ValueUint:
		return Uint64Value(bits)
	case ValueInt:
		return IntValue(int64(bits))
	default:
		return FloatValue(math.Float64frombits(bits))
	}
}

var errBadSnapshot = fmt.Errorf("obs: malformed snapshot encoding")

// DecodeSnapshot parses an EncodeSnapshot payload.
func DecodeSnapshot(b []byte) (*RegistrySnapshot, error) {
	if len(b) < 1 || b[0] != snapshotVersion {
		return nil, errBadSnapshot
	}
	b = b[1:]
	node, b, ok := takeStr16(b)
	if !ok || len(b) < 4 {
		return nil, errBadSnapshot
	}
	nfams := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	out := &RegistrySnapshot{Node: node}
	for fi := 0; fi < nfams; fi++ {
		var f FamilySnapshot
		if f.Name, b, ok = takeStr16(b); !ok {
			return nil, errBadSnapshot
		}
		if f.Help, b, ok = takeStr16(b); !ok {
			return nil, errBadSnapshot
		}
		if len(b) < 5 {
			return nil, errBadSnapshot
		}
		f.Kind = MetricKind(b[0])
		if f.Kind < KindCounter || f.Kind > KindHistogram {
			return nil, errBadSnapshot
		}
		nser := int(binary.BigEndian.Uint32(b[1:]))
		b = b[5:]
		for si := 0; si < nser; si++ {
			var ser SeriesSnapshot
			if ser.Labels, b, ok = takeStr16(b); !ok {
				return nil, errBadSnapshot
			}
			if f.Kind == KindHistogram {
				need := (HistBuckets + 1 + 2) * 8
				if len(b) < need {
					return nil, errBadSnapshot
				}
				ser.Buckets = make([]uint64, HistBuckets+1)
				for i := range ser.Buckets {
					ser.Buckets[i] = binary.BigEndian.Uint64(b[i*8:])
				}
				ser.Count = binary.BigEndian.Uint64(b[(HistBuckets+1)*8:])
				ser.SumNs = int64(binary.BigEndian.Uint64(b[(HistBuckets+2)*8:]))
				b = b[need:]
			} else {
				if len(b) < 9 {
					return nil, errBadSnapshot
				}
				vk := ValueKind(b[0])
				if vk > ValueFloat {
					return nil, errBadSnapshot
				}
				ser.Value = valueFromBits(vk, binary.BigEndian.Uint64(b[1:]))
				b = b[9:]
			}
			f.Series = append(f.Series, ser)
		}
		out.Fams = append(out.Fams, f)
	}
	if len(b) != 0 {
		return nil, errBadSnapshot
	}
	return out, nil
}
