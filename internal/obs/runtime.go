package obs

import (
	"runtime"
	"sync"
	"time"
)

// Go runtime metrics for the default daemon registry: free to collect,
// and invisible until now. ReadMemStats is not free per call (it
// briefly stops the world), so one sampler caches it behind a short
// TTL — a scrape storm costs at most one ReadMemStats per second, and
// every series reads the same consistent sample.

// runtimeSampler caches one MemStats sample and folds new GC pauses
// into a histogram as they appear.
type runtimeSampler struct {
	mu        sync.Mutex
	taken     time.Time
	ms        runtime.MemStats
	gcPause   *Histogram
	lastNumGC uint32
}

const runtimeSampleTTL = time.Second

// sample refreshes the cached MemStats when stale and returns it.
func (s *runtimeSampler) sample() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.taken) < runtimeSampleTTL {
		return &s.ms
	}
	runtime.ReadMemStats(&s.ms)
	s.taken = time.Now()
	// Fold the GC pauses since the last sample into the histogram.
	// PauseNs is a 256-entry ring indexed by cycle number; if more
	// than 256 cycles passed between samples the overflow is lost —
	// acceptable for a pause-latency distribution.
	n := s.ms.NumGC - s.lastNumGC
	if n > uint32(len(s.ms.PauseNs)) {
		n = uint32(len(s.ms.PauseNs))
	}
	for i := uint32(0); i < n; i++ {
		cycle := s.ms.NumGC - i
		pause := s.ms.PauseNs[(cycle+255)%256]
		s.gcPause.Observe(time.Duration(pause))
	}
	s.lastNumGC = s.ms.NumGC
	return &s.ms
}

// RegisterRuntimeMetrics exports the Go runtime's vitals into r under
// the bd_go_* family: live goroutines, heap bytes, GOMAXPROCS, GC
// cycle count and a GC pause-latency histogram.
func RegisterRuntimeMetrics(r *Registry) {
	s := &runtimeSampler{gcPause: &Histogram{}}
	r.RegisterHistogram("bd_go_gc_pause_seconds", "Stop-the-world GC pause latency.", nil, s.gcPause)
	r.GaugeFunc("bd_go_goroutines", "Live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("bd_go_gomaxprocs", "GOMAXPROCS — schedulable OS threads.", nil,
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("bd_go_heap_bytes", "Heap bytes in use (HeapAlloc).", nil,
		func() float64 { return float64(s.sample().HeapAlloc) })
	r.GaugeFunc("bd_go_heap_objects", "Live heap objects.", nil,
		func() float64 { return float64(s.sample().HeapObjects) })
	r.CounterFunc("bd_go_gc_cycles_total", "Completed GC cycles.", nil,
		func() uint64 { return uint64(s.sample().NumGC) })
	r.CounterFunc("bd_go_alloc_bytes_total", "Cumulative bytes allocated on the heap.", nil,
		func() uint64 { return s.sample().TotalAlloc })
}
