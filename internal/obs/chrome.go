package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export: renders a span set in the trace-event JSON
// format chrome://tracing and Perfetto load directly. Works on raw
// (unassembled) spans so one node can export its own ring at
// /tracez?format=chrome without having collected the other hops; when
// fed an assembled multi-node set, each process appears as its own
// pid row with its spans laid out on overlap-free lanes.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes spans as Chrome trace-event JSON. Each
// distinct Node (falling back to "local" when unset) becomes one
// process row, named by a metadata event; within a process, spans are
// packed onto the fewest lanes (tids) such that no lane overlaps, and a
// span's phase annotations are emitted as nested slices laid end to end
// from the span's start.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return spans[order[a]].Start.Before(spans[order[b]].Start)
	})

	pids := map[string]int{}
	lanes := map[string][]time.Time{} // per process: each lane's current end
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, i := range order {
		s := spans[i]
		node := s.Node
		if node == "" {
			node = "local"
		}
		pid, ok := pids[node]
		if !ok {
			pid = len(pids) + 1
			pids[node] = pid
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": node},
			})
		}
		// Lowest lane already free at this span's start; new lane if none.
		tid := -1
		for l, end := range lanes[node] {
			if !end.After(s.Start) {
				tid = l
				break
			}
		}
		if tid == -1 {
			tid = len(lanes[node])
			lanes[node] = append(lanes[node], time.Time{})
		}
		lanes[node][tid] = s.End()

		args := map[string]any{"trace": s.Trace}
		if s.ID != 0 {
			args["span"] = s.ID
		}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Peer != "" {
			args["peer"] = s.Peer
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		ts := float64(s.Start.UnixNano()) / 1e3
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: s.Name, Ph: "X", Ts: ts, Dur: float64(s.Dur) / 1e3,
			Pid: pid, Tid: tid, Args: args,
		})
		off := 0.0
		for _, p := range s.Phases {
			d := float64(p.Dur) / 1e3
			if d <= 0 {
				continue
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: p.Name, Ph: "X", Ts: ts + off, Dur: d, Pid: pid, Tid: tid,
			})
			off += d
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}
