// Package obs is the repo's dependency-free observability kit: atomic
// counters and gauges, fixed-bucket latency histograms with lock-free
// hot-path recording, a labeled registry that renders Prometheus text
// exposition format, and lightweight distributed request tracing (trace
// IDs, per-hop span records, slow-request logs).
//
// The package exists because the source paper is a measurement paper:
// its workload characterization is only reproducible if every tier of
// this stack — transport, cluster health, storage engine, analytics
// task plane — can be observed continuously on a live node, not just
// summarized after a benchmark run. Everything here is stdlib-only and
// cheap enough to leave on in production paths: counters and histogram
// buckets are single atomic adds, and span logs are bounded rings that
// only see sampled or slow requests.
//
// Conventions (DESIGN.md §11): metric names are
// bd_<subsystem>_<name>[_<unit>][_total], label values are low
// cardinality (opcode names, level numbers, peer addresses), and every
// histogram shares one fixed power-of-two bucket layout so histograms
// from different nodes merge exactly.
package obs
