package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCountAtOrBelowRoundsDown(t *testing.T) {
	h := &Histogram{}
	h.Observe(500 * time.Nanosecond) // bucket 0 (≤1µs)
	h.Observe(2 * time.Microsecond)  // bucket 1 (≤2µs)
	h.Observe(3 * time.Microsecond)  // bucket 2 (≤4µs)
	h.Observe(time.Second)           // way up

	good, total, eff := h.CountAtOrBelow(3 * time.Microsecond)
	if eff != 2*time.Microsecond {
		t.Fatalf("effective = %v, want rounded down to 2µs", eff)
	}
	// Conservative: the 3µs observation sits in the (2µs,4µs] bucket,
	// which is not entirely ≤ 3µs, so it must not count as good.
	if good != 2 || total != 4 {
		t.Fatalf("good/total = %d/%d, want 2/4", good, total)
	}

	good, _, eff = h.CountAtOrBelow(4 * time.Microsecond)
	if eff != 4*time.Microsecond || good != 3 {
		t.Fatalf("at 4µs: good=%d eff=%v, want 3 good at exact bound", good, eff)
	}

	good, total, eff = h.CountAtOrBelow(100 * time.Nanosecond)
	if good != 0 || eff != 0 || total != 4 {
		t.Fatalf("sub-bucket threshold: good=%d eff=%v total=%d", good, eff, total)
	}

	// +Inf bucket never counts good regardless of threshold.
	good, _, _ = h.CountAtOrBelow(time.Hour)
	if good != 4 {
		t.Fatalf("huge threshold: good=%d, want all finite-bucket obs", good)
	}
}

func TestSLOBurnRates(t *testing.T) {
	h := &Histogram{}
	s := NewSLO(time.Minute, 5*time.Minute)
	defer s.Stop()
	s.AddObjective(Objective{Name: "put-p999", Hist: h, Threshold: time.Millisecond, Target: 0.999})

	now := time.Unix(1700000000, 0)
	// Warm history: 1000 good requests, sampled.
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	s.SampleAt(now)

	// Over the next minute: 99 good + 1 bad = 1% bad against a 0.1%
	// budget -> burn 10x on the 1m window.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond)
	s.SampleAt(now.Add(30 * time.Second))

	reports := s.ReportAt(now.Add(time.Minute))
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	r := reports[0]
	if r.Total != 1100 || r.Good != 1099 {
		t.Fatalf("lifetime good/total = %d/%d", r.Good, r.Total)
	}
	// Buckets are powers of two in µs: 1ms rounds down to the 512µs bound.
	if r.EffectiveNs != int64(512*time.Microsecond) {
		t.Fatalf("effective = %v, want 512µs", time.Duration(r.EffectiveNs))
	}
	if len(r.Windows) != 2 {
		t.Fatalf("windows = %d", len(r.Windows))
	}
	w1 := r.Windows[0]
	if !w1.Valid || w1.Requests != 100 || w1.Bad != 1 {
		t.Fatalf("1m window = %+v, want valid 100 req / 1 bad", w1)
	}
	if math.Abs(w1.Burn-10.0) > 1e-9 {
		t.Fatalf("1m burn = %v, want 10.0 (1%% bad / 0.1%% budget)", w1.Burn)
	}
	// 5m window has only 1 minute of history: partial, flagged invalid,
	// burn still computed over what's covered.
	w5 := r.Windows[1]
	if w5.Valid {
		t.Fatalf("5m window valid with 1m of history: %+v", w5)
	}
	if w5.Requests != 100 {
		t.Fatalf("5m window falls back to oldest sample: %+v", w5)
	}
}

func TestSLOHandlerAndFormat(t *testing.T) {
	h := &Histogram{}
	h.Observe(time.Millisecond)
	s := NewSLO()
	defer s.Stop()
	s.AddObjective(Objective{Name: "get-p99", Hist: h, Threshold: 5 * time.Millisecond, Target: 0.99})
	s.SampleAt(time.Unix(1700000000, 0))

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/sloz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var reports []SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &reports); err != nil {
		t.Fatalf("bad /sloz JSON: %v\n%s", err, rec.Body.String())
	}
	if len(reports) != 1 || reports[0].Name != "get-p99" || reports[0].Compliance != 1 {
		t.Fatalf("bad report %+v", reports)
	}

	out := FormatSLO(reports)
	if !strings.Contains(out, "get-p99") || !strings.Contains(out, "burn[") {
		t.Fatalf("summary line missing fields: %q", out)
	}
}

func TestSLOStartStop(t *testing.T) {
	h := &Histogram{}
	s := NewSLO(time.Minute)
	s.AddObjective(Objective{Name: "x", Hist: h, Threshold: time.Millisecond, Target: 0.9})
	s.Start(time.Second) // min interval clamps; just exercise start/stop
	s.Stop()
	s.Stop() // idempotent
}
