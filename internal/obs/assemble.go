package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace assembly: merge the span sets pulled from every node's ring
// (OpTraceFetch, /tracez) into one hop tree, then explain where the
// request's time went. The input is whatever survived each node's
// bounded ring — possibly duplicated (retries, double fetches), out of
// order (rings are append-order per node, not per trace), or missing
// hops (evicted, or a node that was unreachable at collection time) —
// so assembly is defensive by construction rather than by validation.
//
// Clocks: span timestamps come from unsynchronized node clocks. The
// assembler never compares timestamps across nodes directly; instead
// each child hop is normalized into its parent hop's envelope (a child
// cannot start before the request reached the parent, nor end after
// the parent answered — the Dapper trick), which bounds skew by the
// parent's own duration without any clock protocol.

// TraceNode is one hop in an assembled trace tree.
type TraceNode struct {
	Span     Span
	Children []*TraceNode
	// Synthetic marks a node the assembler invented: a parent id that
	// was referenced but never collected (ring-evicted middle hop), or
	// the umbrella root when the real root span is absent. Its envelope
	// is the union of its children's.
	Synthetic bool
}

// End returns the node's normalized end time.
func (n *TraceNode) End() time.Time { return n.Span.Start.Add(n.Span.Dur) }

// Trace is one assembled request tree plus the assembly's accounting.
type Trace struct {
	ID   uint64
	Root *TraceNode
	// Spans counts the real (collected, non-synthetic) spans in the tree.
	Spans int
	// Duplicates counts collected spans dropped for reusing a span id.
	Duplicates int
	// Missing counts synthetic nodes standing in for referenced-but-
	// absent parent spans (the root umbrella, when synthesized, is not
	// counted — only genuine holes in the middle of the tree are).
	Missing int
}

// Assemble merges spans into the hop tree for trace id. Spans carrying
// a different (or zero) trace id are ignored, duplicates (same span id)
// keep their first occurrence, ordering is irrelevant, and hops whose
// parent span was never collected hang off a synthetic stand-in so the
// tree always contains every collected span. Returns nil when no span
// of the trace was collected at all.
func Assemble(id uint64, spans []Span) *Trace {
	t := &Trace{ID: id}
	byID := map[uint64]*TraceNode{}
	var all []*TraceNode
	for _, s := range spans {
		if s.Trace != id {
			continue
		}
		if s.ID != 0 {
			if _, dup := byID[s.ID]; dup {
				t.Duplicates++
				continue
			}
		}
		n := &TraceNode{Span: s}
		if s.ID != 0 {
			byID[s.ID] = n
		}
		all = append(all, n)
	}
	if len(all) == 0 {
		return nil
	}
	t.Spans = len(all)

	// Link children under parents; orphans (parent id never collected)
	// get one synthetic stand-in per missing id, so siblings that lost
	// the same middle hop stay grouped the way the real tree had them.
	synthetic := map[uint64]*TraceNode{}
	var roots []*TraceNode
	for _, n := range all {
		p := n.Span.Parent
		if p == 0 || p == n.Span.ID {
			roots = append(roots, n)
			continue
		}
		parent := byID[p]
		if parent == nil {
			parent = synthetic[p]
			if parent == nil {
				parent = &TraceNode{
					Span:      Span{Trace: id, ID: p, Name: "(missing hop)"},
					Synthetic: true,
				}
				synthetic[p] = parent
				t.Missing++
				roots = append(roots, parent)
			}
		}
		parent.Children = append(parent.Children, n)
	}
	for _, n := range synthetic {
		n.Span.Start, n.Span.Dur = envelope(n.Children)
	}

	// Deterministic child order: by start time, id as tiebreak (input
	// order is ring order and differs per node).
	var sortChildren func(n *TraceNode)
	sortChildren = func(n *TraceNode) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			a, b := n.Children[i].Span, n.Children[j].Span
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			return a.ID < b.ID
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}

	switch {
	case len(roots) == 1:
		t.Root = roots[0]
	default:
		// Several roots (lost root span, or disjoint fragments): hold
		// them under one synthetic umbrella spanning their union.
		start, dur := envelope(roots)
		t.Root = &TraceNode{
			Span:      Span{Trace: id, Name: "(assembled)", Start: start, Dur: dur},
			Children:  roots,
			Synthetic: true,
		}
	}
	sortChildren(t.Root)
	normalize(t.Root)
	return t
}

// envelope returns the tightest start/duration covering every node.
func envelope(nodes []*TraceNode) (time.Time, time.Duration) {
	if len(nodes) == 0 {
		return time.Time{}, 0
	}
	start, end := nodes[0].Span.Start, nodes[0].End()
	for _, n := range nodes[1:] {
		if n.Span.Start.Before(start) {
			start = n.Span.Start
		}
		if n.End().After(end) {
			end = n.End()
		}
	}
	return start, end.Sub(start)
}

// normalize clamps every child subtree into its parent's envelope. A
// child recorded on another node's clock may appear to start before its
// parent or outlive it; causally it can do neither, so the child is
// shifted (preserving its duration) to fit, and truncated to the
// parent's duration only when it is outright longer. The shift applies
// to the whole subtree — a child's children move with it — so relative
// timing within one node's spans is preserved and only the cross-node
// seam absorbs the skew. After normalize, child.Start >= parent.Start
// and child.End() <= parent.End() hold on every edge, which is what
// makes critical-path durations telescope (≤ the root's duration).
func normalize(parent *TraceNode) {
	for _, c := range parent.Children {
		if c.Span.Dur < 0 {
			c.Span.Dur = 0
		}
		if c.Span.Dur > parent.Span.Dur {
			c.Span.Dur = parent.Span.Dur
		}
		var shift time.Duration
		if c.Span.Start.Before(parent.Span.Start) {
			shift = parent.Span.Start.Sub(c.Span.Start)
		} else if over := c.End().Sub(parent.End()); over > 0 {
			shift = -over
		}
		if shift != 0 {
			shiftSubtree(c, shift)
		}
		normalize(c)
	}
}

func shiftSubtree(n *TraceNode, d time.Duration) {
	n.Span.Start = n.Span.Start.Add(d)
	for _, c := range n.Children {
		shiftSubtree(c, d)
	}
}

// CriticalPath returns the root-to-leaf chain that determined the
// request's latency: from each node, descend into the child whose end
// time is latest — the hop the parent was still waiting on when it
// finished its own work.
func (t *Trace) CriticalPath() []*TraceNode {
	var path []*TraceNode
	for n := t.Root; n != nil; {
		path = append(path, n)
		var next *TraceNode
		for _, c := range n.Children {
			if next == nil || c.End().After(next.End()) {
				next = c
			}
		}
		n = next
	}
	return path
}

// CriticalPathDuration is the time attributable to the critical path's
// own hops: each hop's duration minus the on-path child it was waiting
// on (clamped at zero). Because normalization nests children inside
// parents, the sum telescopes and never exceeds the root's duration.
func (t *Trace) CriticalPathDuration() time.Duration {
	var total time.Duration
	path := t.CriticalPath()
	for i, n := range path {
		excl := n.Span.Dur
		if i+1 < len(path) {
			excl -= path[i+1].Span.Dur
		}
		if excl > 0 {
			total += excl
		}
	}
	return total
}

// PhaseAttribution splits the critical path's time across phase names:
// each on-path hop's exclusive time (duration minus the on-path child)
// is divided across its recorded phases pro rata; hops with no phase
// annotations contribute to "other". The result explains end-to-end
// latency in the paper's vocabulary — queue wait vs exec vs replication
// fan-out — rather than per-hop totals that double-count nested time.
func (t *Trace) PhaseAttribution() map[string]time.Duration {
	out := map[string]time.Duration{}
	path := t.CriticalPath()
	for i, n := range path {
		excl := n.Span.Dur
		if i+1 < len(path) {
			excl -= path[i+1].Span.Dur
		}
		if excl <= 0 {
			continue
		}
		var phaseTotal time.Duration
		for _, p := range n.Span.Phases {
			if p.Dur > 0 {
				phaseTotal += p.Dur
			}
		}
		if phaseTotal <= 0 {
			out["other"] += excl
			continue
		}
		for _, p := range n.Span.Phases {
			if p.Dur > 0 {
				out[p.Name] += time.Duration(float64(excl) * float64(p.Dur) / float64(phaseTotal))
			}
		}
	}
	return out
}

// Format writes the assembled tree, critical path and phase attribution
// as an indented human-readable report (the bdbench -trace output).
func (t *Trace) Format(w io.Writer) {
	fmt.Fprintf(w, "trace %d: %d spans", t.ID, t.Spans)
	if t.Missing > 0 {
		fmt.Fprintf(w, ", %d missing hops", t.Missing)
	}
	if t.Duplicates > 0 {
		fmt.Fprintf(w, ", %d duplicates dropped", t.Duplicates)
	}
	fmt.Fprintln(w)
	onPath := map[*TraceNode]bool{}
	for _, n := range t.CriticalPath() {
		onPath[n] = true
	}
	var walk func(n *TraceNode, depth int)
	walk = func(n *TraceNode, depth int) {
		fmt.Fprintf(w, "%s%s", strings.Repeat("  ", depth+1), n.Span.Name)
		if n.Span.Node != "" {
			fmt.Fprintf(w, " @%s", n.Span.Node)
		} else if n.Span.Peer != "" {
			fmt.Fprintf(w, " ->%s", n.Span.Peer)
		}
		fmt.Fprintf(w, " %v", n.Span.Dur.Round(time.Microsecond))
		if len(n.Span.Phases) > 0 {
			fmt.Fprint(w, " [")
			for i, p := range n.Span.Phases {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprintf(w, "%s %v", p.Name, p.Dur.Round(time.Microsecond))
			}
			fmt.Fprint(w, "]")
		}
		if onPath[n] {
			fmt.Fprint(w, " *")
		}
		if n.Span.Err != "" {
			fmt.Fprintf(w, " err=%q", n.Span.Err)
		}
		fmt.Fprintln(w)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	names := make([]string, 0, len(t.CriticalPath()))
	for _, n := range t.CriticalPath() {
		names = append(names, n.Span.Name)
	}
	fmt.Fprintf(w, "  critical path (%v of %v root): %s\n",
		t.CriticalPathDuration().Round(time.Microsecond),
		t.Root.Span.Dur.Round(time.Microsecond), strings.Join(names, " -> "))
	attr := t.PhaseAttribution()
	keys := make([]string, 0, len(attr))
	for k := range attr {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return attr[keys[i]] > attr[keys[j]] })
	fmt.Fprint(w, "  phase attribution:")
	for _, k := range keys {
		fmt.Fprintf(w, " %s %v", k, attr[k].Round(time.Microsecond))
	}
	fmt.Fprintln(w)
}
