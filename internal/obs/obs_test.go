package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker*3 {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker*3)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // clock skew folds into the first bucket
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // exactly 1µs: bound is inclusive
		{time.Microsecond + time.Nanosecond, 1}, // 1001ns rounds up to 2µs
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + time.Nanosecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},                // 1024µs bucket: 2^10
		{8 * time.Second, HistBuckets - 1},    // 2^23µs ≈ 8.39s, still finite
		{9 * time.Second, HistBuckets},        // past the last finite bound
		{time.Duration(1) << 62, HistBuckets}, // +Inf clamps, no overflow
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestBucketBound(t *testing.T) {
	if got := BucketBound(0); got != time.Microsecond {
		t.Fatalf("BucketBound(0) = %v, want 1µs", got)
	}
	if got := BucketBound(10); got != 1024*time.Microsecond {
		t.Fatalf("BucketBound(10) = %v, want 1024µs", got)
	}
	if got := BucketBound(HistBuckets); got >= 0 {
		t.Fatalf("BucketBound(last) = %v, want negative (unbounded)", got)
	}
}

func TestHistogramObserveAndMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(500 * time.Nanosecond)
	a.Observe(3 * time.Microsecond)
	b.Observe(3 * time.Microsecond)
	b.Observe(time.Hour) // +Inf
	a.Merge(&b)
	if got := a.Count(); got != 4 {
		t.Fatalf("merged count = %d, want 4", got)
	}
	wantSum := 500*time.Nanosecond + 6*time.Microsecond + time.Hour
	if got := a.Sum(); got != wantSum {
		t.Fatalf("merged sum = %v, want %v", got, wantSum)
	}
	buckets, _, _ := a.snapshot()
	if buckets[0] != 1 || buckets[2] != 2 || buckets[HistBuckets] != 1 {
		t.Fatalf("merged buckets = %v", buckets)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	buckets, count, _ := h.snapshot()
	var total uint64
	for _, n := range buckets {
		total += n
	}
	if total != count {
		t.Fatalf("bucket total %d != count %d", total, count)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bd_test_ops_total", "Ops processed.", Labels{"op": "get"})
	c.Add(7)
	g := r.Gauge("bd_test_depth", "Queue depth.", nil)
	g.Set(3)
	h := r.Histogram("bd_test_seconds", "Service time.", nil)
	h.Observe(1500 * time.Nanosecond) // bucket le=2e-06
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := strings.Join([]string{
		"# HELP bd_test_depth Queue depth.",
		"# TYPE bd_test_depth gauge",
		"bd_test_depth 3",
		"# HELP bd_test_ops_total Ops processed.",
		"# TYPE bd_test_ops_total counter",
		`bd_test_ops_total{op="get"} 7`,
		"# HELP bd_test_seconds Service time.",
		"# TYPE bd_test_seconds histogram",
		`bd_test_seconds_bucket{le="1e-06"} 0`,
		`bd_test_seconds_bucket{le="2e-06"} 1`,
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		`bd_test_seconds_bucket{le="+Inf"} 1`,
		"bd_test_seconds_sum 1.5e-06",
		"bd_test_seconds_count 1",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, got)
		}
	}
	// Deterministic output: two renders are byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Fatal("WritePrometheus is not deterministic")
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("bd_test_total", "t", Labels{"k": "a\"b\\c\nd"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `{k="a\"b\\c\nd"}`) {
		t.Fatalf("labels not escaped:\n%s", b.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("bd_dup_total", "t", nil)
	mustPanic(t, "duplicate series", func() { r.Counter("bd_dup_total", "t", nil) })
	mustPanic(t, "kind conflict", func() { r.Gauge("bd_dup_total", "t", Labels{"a": "b"}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestSnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bd_x_total", "t", nil)
	g := r.Gauge("bd_x_depth", "t", nil)
	h := r.Histogram("bd_x_seconds", "t", nil)
	c.Add(5)
	g.Set(2)
	h.Observe(time.Millisecond)
	before := r.Snapshot()
	c.Add(3)
	g.Set(9)
	h.Observe(time.Millisecond)
	d := Delta(before, r.Snapshot())
	if d["bd_x_total"] != Uint64Value(3) {
		t.Errorf("counter delta = %v, want 3", d["bd_x_total"])
	}
	if d["bd_x_depth"] != IntValue(9) {
		t.Errorf("gauge delta takes the after value, got %v want 9", d["bd_x_depth"])
	}
	if d["bd_x_seconds_count"] != Uint64Value(1) {
		t.Errorf("histogram count delta = %v, want 1", d["bd_x_seconds_count"])
	}
	if got := d["bd_x_seconds_sum"].Float(); got < 0.0009 || got > 0.0011 {
		t.Errorf("histogram sum delta = %v, want ~0.001", got)
	}
}

func TestNewTraceID(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned the reserved zero id")
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %d within 10k draws", id)
		}
		seen[id] = true
	}
}

func TestSpanLogRing(t *testing.T) {
	l := NewSpanLog(0) // clamps to the 16 minimum
	for i := 1; i <= 20; i++ {
		l.Record(Span{Trace: uint64(i), Name: "server/get"})
	}
	if got := l.Total(); got != 20 {
		t.Fatalf("total = %d, want 20", got)
	}
	spans := l.Spans()
	if len(spans) != 16 {
		t.Fatalf("retained %d spans, want 16", len(spans))
	}
	// Oldest-first: 5..20 survive after evicting 1..4.
	if spans[0].Trace != 5 || spans[15].Trace != 20 {
		t.Fatalf("ring order wrong: first=%d last=%d", spans[0].Trace, spans[15].Trace)
	}
	if got := l.ByTrace(7); len(got) != 1 || got[0].Trace != 7 {
		t.Fatalf("ByTrace(7) = %v", got)
	}
	if got := l.ByTrace(3); len(got) != 0 {
		t.Fatalf("ByTrace(evicted) = %v, want empty", got)
	}
}
