package obs

import (
	"sync"
	"time"
)

// History is the per-node time-series retention of the observability
// plane: a bounded ring of periodic registry captures, so rates and
// derivatives (ops/s, migration bytes/s, burn-rate inputs) are
// computable from the node itself — no external TSDB. A History holds
// whole snapshots, not pre-picked series, so any counter registered
// later is retroactively rate-able over the retained window.
type History struct {
	mu   sync.Mutex
	buf  []HistoryPoint
	next int
	stop chan struct{}
	once sync.Once
}

// HistoryPoint is one retained capture.
type HistoryPoint struct {
	When time.Time         `json:"when"`
	Snap *RegistrySnapshot `json:"snap"`
}

// NewHistory returns a ring retaining the last size captures
// (minimum 2 — a rate needs two points).
func NewHistory(size int) *History {
	if size < 2 {
		size = 2
	}
	return &History{buf: make([]HistoryPoint, 0, size), stop: make(chan struct{})}
}

// Add retains one capture, evicting the oldest when full.
func (h *History) Add(p HistoryPoint) {
	h.mu.Lock()
	if len(h.buf) < cap(h.buf) {
		h.buf = append(h.buf, p)
	} else {
		h.buf[h.next] = p
		h.next = (h.next + 1) % cap(h.buf)
	}
	h.mu.Unlock()
}

// Points returns the retained captures, oldest first.
func (h *History) Points() []HistoryPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistoryPoint, 0, len(h.buf))
	out = append(out, h.buf[h.next:]...)
	out = append(out, h.buf[:h.next]...)
	return out
}

// Start samples r every interval until Stop. The first capture is
// taken immediately so a rate is available after one interval.
func (h *History) Start(r *Registry, node string, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	h.Add(HistoryPoint{When: time.Now(), Snap: r.Capture(node)})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.Add(HistoryPoint{When: time.Now(), Snap: r.Capture(node)})
			case <-h.stop:
				return
			}
		}
	}()
}

// Stop ends the sampler started by Start. Idempotent.
func (h *History) Stop() { h.once.Do(func() { close(h.stop) }) }

// Rate returns a counter series' per-second rate over the retained
// window no wider than lookback (0 = the whole ring): the newest and
// the oldest retained point inside the window are differenced. Returns
// false with fewer than two usable points or a zero time delta.
func (h *History) Rate(name, labels string, lookback time.Duration) (float64, bool) {
	pts := h.Points()
	if len(pts) < 2 {
		return 0, false
	}
	newest := pts[len(pts)-1]
	oldest := pts[0]
	if lookback > 0 {
		cut := newest.When.Add(-lookback)
		for _, p := range pts[:len(pts)-1] {
			if !p.When.Before(cut) {
				oldest = p
				break
			}
		}
	}
	dt := newest.When.Sub(oldest.When).Seconds()
	if dt <= 0 {
		return 0, false
	}
	a, okA := newest.Snap.Lookup(name, labels)
	b, okB := oldest.Snap.Lookup(name, labels)
	if !okA || !okB {
		return 0, false
	}
	return a.Sub(b).Float() / dt, true
}
