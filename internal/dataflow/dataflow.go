// Package dataflow is an in-memory, partitioned, parallel dataflow engine —
// the repository's substitute for the paper's Spark stack (DESIGN.md §1).
// Datasets are materialized in memory and partitioned across a goroutine
// worker pool; iterative workloads (PageRank, K-means) re-traverse cached
// datasets each superstep, which is the property the paper includes Spark
// to represent ("best for iterative computation; supports in-memory
// computing, letting it query data faster than disk-based engines").
//
// This engine executes inside one process; internal/analytics runs the
// iterative jobs (PageRank, k-means) as distributed supersteps across
// the networked cluster and validates its results bit-identical to this
// engine's — including the floating-point fold order of ReduceByKey,
// which the distributed reduce reproduces by folding each key's values
// in ascending input-partition order.
//
// With a characterization CPU attached, per-element executor overhead,
// element loads/stores against the datasets' simulated regions, and hash
// shuffles for the ByKey operations are emitted into the simulated stream.
package dataflow

import (
	"sync"

	"repro/internal/sim"
)

// Context owns the worker pool and the characterization handles shared by
// all datasets derived from it.
type Context struct {
	workers int
	cpu     *sim.CPU

	executor *sim.CodeRegion
	shuffle  *sim.CodeRegion
	iterMgr  *sim.CodeRegion
	rs       xorshift
	mu       sync.Mutex
}

// NewContext builds a Context with the given parallelism (0 = 4 workers).
// cpu may be nil for uninstrumented runs.
func NewContext(workers int, cpu *sim.CPU) *Context {
	if workers <= 0 {
		workers = 4
	}
	// Driver start, DAG scheduling, executor launch: pure stall.
	cpu.Stall(6e6)
	return &Context{
		workers:  workers,
		cpu:      cpu,
		executor: cpu.NewCodeRegion("dataflow.executor", 256<<10),
		shuffle:  cpu.NewCodeRegion("dataflow.shuffle", 192<<10),
		iterMgr:  cpu.NewCodeRegion("dataflow.scheduler", 128<<10),
		rs:       xorshift(0x51_7cc1b727220a95),
	}
}

// CPU returns the attached characterization context (may be nil).
func (c *Context) CPU() *sim.CPU { return c.cpu }

type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// execCode models one pass through executor code at a data-dependent
// offset. Called per element batch to bound instrumentation overhead.
func (c *Context) execCode(r *sim.CodeRegion, window uint64) {
	c.mu.Lock()
	off := c.rs.next() % r.Size()
	c.mu.Unlock()
	c.cpu.Code(r, off, window)
}

// Dataset is an immutable, partitioned, in-memory collection.
type Dataset[T any] struct {
	ctx       *Context
	parts     [][]T
	region    sim.DataRegion
	elemBytes int
}

// Parallelize distributes data into parts partitions (0 = worker count).
// elemBytes is the modeled serialized size of one element.
func Parallelize[T any](ctx *Context, data []T, parts, elemBytes int) *Dataset[T] {
	if parts <= 0 {
		parts = ctx.workers
	}
	if parts > len(data) && len(data) > 0 {
		parts = len(data)
	}
	if elemBytes <= 0 {
		elemBytes = 8
	}
	d := &Dataset[T]{ctx: ctx, elemBytes: elemBytes}
	d.parts = make([][]T, 0, parts)
	if len(data) == 0 {
		d.parts = append(d.parts, nil)
	} else {
		per := (len(data) + parts - 1) / parts
		for i := 0; i < len(data); i += per {
			end := i + per
			if end > len(data) {
				end = len(data)
			}
			d.parts = append(d.parts, data[i:end])
		}
	}
	d.region = ctx.cpu.Alloc("dataflow.dataset", uint64(len(data)*elemBytes)+64)
	return d
}

// Len returns the element count.
func (d *Dataset[T]) Len() int {
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n
}

// Partitions returns the partition count.
func (d *Dataset[T]) Partitions() int { return len(d.parts) }

// Collect concatenates all partitions in order.
func (d *Dataset[T]) Collect() []T {
	out := make([]T, 0, d.Len())
	for _, p := range d.parts {
		out = append(out, p...)
	}
	return out
}

// Region exposes the simulated backing region so user kernels can address
// their element accesses faithfully.
func (d *Dataset[T]) Region() sim.DataRegion { return d.region }

// ElemBytes returns the modeled per-element size.
func (d *Dataset[T]) ElemBytes() int { return d.elemBytes }

// forEachPart runs fn over partitions on the context's worker pool.
func forEachPart[T any](d *Dataset[T], fn func(part int, rows []T)) {
	runParallel(d.ctx.workers, len(d.parts), func(i int) { fn(i, d.parts[i]) })
}

// instrumentScan charges the framework side of scanning rows of one
// partition: executor dispatch plus element loads, batched.
func instrumentScan[T any](d *Dataset[T], part, n int) {
	if d.ctx.cpu == nil || n == 0 {
		return
	}
	const batch = 64
	base := uint64(0)
	for _, p := range d.parts[:part] {
		base += uint64(len(p) * d.elemBytes)
	}
	for i := 0; i < n; i += batch {
		b := batch
		if n-i < b {
			b = n - i
		}
		d.ctx.execCode(d.ctx.executor, 576)
		d.ctx.cpu.LoadR(d.region, base+uint64(i*d.elemBytes), b*d.elemBytes)
		d.ctx.cpu.IntOps(18 * b) // iterator advance, dispatch, bounds checks
		d.ctx.cpu.Branches(4 * b)
		d.ctx.cpu.FPOps(b / 8) // task metrics accounting
	}
}

// Map applies f to every element, producing a dataset with the same
// partitioning. elemBytes models the output element size.
func Map[T, U any](d *Dataset[T], elemBytes int, f func(T) U) *Dataset[U] {
	out := &Dataset[U]{ctx: d.ctx, elemBytes: elemBytes}
	out.parts = make([][]U, len(d.parts))
	out.region = d.ctx.cpu.Alloc("dataflow.map.out", uint64(d.Len()*elemBytes)+64)
	forEachPart(d, func(i int, rows []T) {
		instrumentScan(d, i, len(rows))
		res := make([]U, len(rows))
		for j, row := range rows {
			res[j] = f(row)
		}
		if d.ctx.cpu != nil && len(rows) > 0 {
			d.ctx.cpu.StoreR(out.region, 0, len(rows)*elemBytes)
		}
		out.parts[i] = res
	})
	return out
}

// Filter keeps the elements for which f returns true.
func Filter[T any](d *Dataset[T], f func(T) bool) *Dataset[T] {
	out := &Dataset[T]{ctx: d.ctx, elemBytes: d.elemBytes}
	out.parts = make([][]T, len(d.parts))
	out.region = d.ctx.cpu.Alloc("dataflow.filter.out", d.region.Size)
	forEachPart(d, func(i int, rows []T) {
		instrumentScan(d, i, len(rows))
		var res []T
		for _, row := range rows {
			if f(row) {
				res = append(res, row)
			}
		}
		out.parts[i] = res
	})
	return out
}

// FlatMap applies f to every element and flattens the results.
func FlatMap[T, U any](d *Dataset[T], elemBytes int, f func(T, func(U))) *Dataset[U] {
	out := &Dataset[U]{ctx: d.ctx, elemBytes: elemBytes}
	out.parts = make([][]U, len(d.parts))
	out.region = d.ctx.cpu.Alloc("dataflow.flatmap.out", uint64(d.Len()*elemBytes)*2+64)
	forEachPart(d, func(i int, rows []T) {
		instrumentScan(d, i, len(rows))
		var res []U
		emit := func(u U) { res = append(res, u) }
		for _, row := range rows {
			f(row, emit)
		}
		if d.ctx.cpu != nil && len(res) > 0 {
			d.ctx.cpu.StoreR(out.region, 0, len(res)*elemBytes)
		}
		out.parts[i] = res
	})
	return out
}

// Reduce folds all elements with the associative function f. zero is
// seeded into every partition and the final combine, so it must be f's
// identity element (0 for +, 1 for ×, -inf for max, ...).
func Reduce[T any](d *Dataset[T], zero T, f func(T, T) T) T {
	partials := make([]T, len(d.parts))
	forEachPart(d, func(i int, rows []T) {
		instrumentScan(d, i, len(rows))
		acc := zero
		for _, row := range rows {
			acc = f(acc, row)
		}
		partials[i] = acc
	})
	acc := zero
	for _, p := range partials {
		acc = f(acc, p)
	}
	return acc
}

// Pair is a keyed element for the ByKey operations.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// ReduceByKey merges all values sharing a key with f. The shuffle hashes
// keys to output partitions (numPartitions, 0 = input partitioning).
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], numPartitions int, f func(V, V) V) *Dataset[Pair[K, V]] {
	if numPartitions <= 0 {
		numPartitions = len(d.parts)
	}
	ctx := d.ctx
	// Map side: hash-partition each input partition's pairs.
	buckets := make([][][]Pair[K, V], len(d.parts))
	shufRegion := ctx.cpu.Alloc("dataflow.shuffle.buf", d.region.Size+64)
	forEachPart(d, func(i int, rows []Pair[K, V]) {
		instrumentScan(d, i, len(rows))
		bs := make([][]Pair[K, V], numPartitions)
		for _, kv := range rows {
			p := int(hashAny(kv.Key) % uint64(numPartitions))
			bs[p] = append(bs[p], kv)
		}
		if ctx.cpu != nil && len(rows) > 0 {
			ctx.execCode(ctx.shuffle, 512)
			ctx.cpu.IntOps(22 * len(rows)) // hash + partition per pair
			ctx.cpu.Branches(4 * len(rows))
			ctx.cpu.StoreR(shufRegion, 0, len(rows)*d.elemBytes)
		}
		buckets[i] = bs
	})
	// Reduce side: merge per output partition with a hash table.
	out := &Dataset[Pair[K, V]]{ctx: ctx, elemBytes: d.elemBytes}
	out.parts = make([][]Pair[K, V], numPartitions)
	out.region = ctx.cpu.Alloc("dataflow.rbk.out", d.region.Size+64)
	runParallel(ctx.workers, numPartitions, func(p int) {
		acc := make(map[K]V)
		order := []K{} // preserve first-seen order for determinism
		n := 0
		for i := range buckets {
			for _, kv := range buckets[i][p] {
				if old, ok := acc[kv.Key]; ok {
					acc[kv.Key] = f(old, kv.Val)
				} else {
					acc[kv.Key] = kv.Val
					order = append(order, kv.Key)
				}
				n++
			}
		}
		if ctx.cpu != nil && n > 0 {
			// Hash-table probes over the merge table: scattered loads.
			tbl := ctx.cpu.Alloc("dataflow.rbk.table", uint64(len(order)*d.elemBytes*2)+128)
			rnd := xorshift(uint64(p)*0x9e3779b9 + 7)
			const batch = 64
			for i := 0; i < n; i += batch {
				b := batch
				if n-i < b {
					b = n - i
				}
				ctx.execCode(ctx.shuffle, 640)
				for j := 0; j < b; j++ {
					ctx.cpu.LoadR(tbl, rnd.next()%maxU64(tbl.Size, 1), d.elemBytes)
				}
				ctx.cpu.IntOps(26 * b)
				ctx.cpu.Branches(6 * b)
			}
		}
		res := make([]Pair[K, V], 0, len(order))
		for _, k := range order {
			res = append(res, Pair[K, V]{k, acc[k]})
		}
		out.parts[p] = res
	})
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// hashAny hashes comparable keys via a specialization ladder; falls back to
// FNV over the fmt representation only for exotic key types (not used by
// the workloads, which key by int and string).
func hashAny(k any) uint64 {
	switch v := k.(type) {
	case int:
		return mix(uint64(v))
	case int32:
		return mix(uint64(uint32(v)))
	case int64:
		return mix(uint64(v))
	case uint64:
		return mix(v)
	case string:
		var h uint64 = 14695981039346656037
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= 1099511628211
		}
		return h
	default:
		panic("dataflow: unsupported key type")
	}
}

func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return v
}

func runParallel(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
