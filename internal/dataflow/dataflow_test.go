package dataflow

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeAndCollect(t *testing.T) {
	ctx := NewContext(4, nil)
	d := Parallelize(ctx, ints(100), 7, 8)
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Partitions() != 7 {
		t.Fatalf("Partitions = %d", d.Partitions())
	}
	got := d.Collect()
	for i, v := range got {
		if v != i {
			t.Fatalf("Collect()[%d] = %d", i, v)
		}
	}
}

func TestParallelizeEmpty(t *testing.T) {
	ctx := NewContext(2, nil)
	d := Parallelize(ctx, []int(nil), 0, 8)
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := Map(d, 8, func(x int) int { return x * 2 }).Len(); got != 0 {
		t.Fatalf("Map over empty = %d elements", got)
	}
}

func TestMapFilterReduce(t *testing.T) {
	ctx := NewContext(4, nil)
	d := Parallelize(ctx, ints(1000), 0, 8)
	sq := Map(d, 8, func(x int) int { return x * x })
	even := Filter(sq, func(x int) bool { return x%2 == 0 })
	sum := Reduce(even, 0, func(a, b int) int { return a + b })
	want := 0
	for i := 0; i < 1000; i++ {
		if (i*i)%2 == 0 {
			want += i * i
		}
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestFlatMap(t *testing.T) {
	ctx := NewContext(3, nil)
	d := Parallelize(ctx, []int{1, 2, 3}, 0, 8)
	out := FlatMap(d, 8, func(x int, emit func(int)) {
		for j := 0; j < x; j++ {
			emit(x)
		}
	})
	if out.Len() != 6 {
		t.Fatalf("Len = %d, want 6 (1+2+3)", out.Len())
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext(4, nil)
	var pairs []Pair[string, int]
	for i := 0; i < 300; i++ {
		pairs = append(pairs, Pair[string, int]{Key: []string{"a", "b", "c"}[i%3], Val: 1})
	}
	d := Parallelize(ctx, pairs, 5, 16)
	counts := ReduceByKey(d, 3, func(a, b int) int { return a + b }).Collect()
	if len(counts) != 3 {
		t.Fatalf("distinct keys = %d", len(counts))
	}
	for _, kv := range counts {
		if kv.Val != 100 {
			t.Errorf("count[%s] = %d, want 100", kv.Key, kv.Val)
		}
	}
}

func TestReduceByKeyIntKeys(t *testing.T) {
	ctx := NewContext(2, nil)
	var pairs []Pair[int32, float64]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair[int32, float64]{Key: int32(i % 10), Val: 0.5})
	}
	d := Parallelize(ctx, pairs, 0, 12)
	out := ReduceByKey(d, 4, func(a, b float64) float64 { return a + b }).Collect()
	if len(out) != 10 {
		t.Fatalf("distinct keys = %d", len(out))
	}
	for _, kv := range out {
		if kv.Val != 5.0 {
			t.Errorf("sum[%d] = %f", kv.Key, kv.Val)
		}
	}
}

// Property: Reduce with + equals the sequential sum for any int slice and
// any worker/partition configuration.
func TestReduceMatchesSequentialProperty(t *testing.T) {
	f := func(data []int32, workers, parts uint8) bool {
		ctx := NewContext(int(workers%6)+1, nil)
		xs := make([]int, len(data))
		want := 0
		for i, v := range data {
			xs[i] = int(v % 1000)
			want += xs[i]
		}
		d := Parallelize(ctx, xs, int(parts%8), 8)
		got := Reduce(d, 0, func(a, b int) int { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: ReduceByKey totals equal a reference map-based aggregation.
func TestReduceByKeyMatchesReferenceProperty(t *testing.T) {
	f := func(keys []uint8, parts uint8) bool {
		ctx := NewContext(3, nil)
		ref := map[int32]int{}
		pairs := make([]Pair[int32, int], len(keys))
		for i, k := range keys {
			key := int32(k % 17)
			pairs[i] = Pair[int32, int]{Key: key, Val: 1}
			ref[key]++
		}
		d := Parallelize(ctx, pairs, 4, 12)
		out := ReduceByKey(d, int(parts%5)+1, func(a, b int) int { return a + b }).Collect()
		if len(out) != len(ref) {
			return false
		}
		for _, kv := range out {
			if ref[kv.Key] != kv.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestIterativeReuseIsStable(t *testing.T) {
	// Iterating map+reduce over a cached dataset must give identical
	// results every superstep (the Spark-style iterative pattern).
	ctx := NewContext(4, nil)
	d := Parallelize(ctx, ints(500), 0, 8)
	var prev int
	for it := 0; it < 5; it++ {
		s := Reduce(Map(d, 8, func(x int) int { return x + 1 }), 0,
			func(a, b int) int { return a + b })
		if it > 0 && s != prev {
			t.Fatalf("iteration %d produced %d, want %d", it, s, prev)
		}
		prev = s
	}
}

func TestInstrumentedPipelineEmitsStream(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	ctx := NewContext(2, cpu)
	d := Parallelize(ctx, ints(5000), 0, 8)
	pairs := Map(d, 16, func(x int) Pair[int32, int] {
		return Pair[int32, int]{Key: int32(x % 50), Val: x}
	})
	_ = ReduceByKey(pairs, 4, func(a, b int) int { return a + b })
	k := cpu.Counts()
	if k.Instructions() == 0 || k.L1D.Accesses == 0 {
		t.Fatalf("no simulated activity recorded: %+v", k)
	}
	if k.LoadInstrs == 0 || k.StoreInstrs == 0 {
		t.Fatal("pipeline should emit loads and stores")
	}
}

func TestSortedCollectIsDeterministic(t *testing.T) {
	run := func(workers int) []Pair[string, int] {
		ctx := NewContext(workers, nil)
		var pairs []Pair[string, int]
		for i := 0; i < 200; i++ {
			pairs = append(pairs, Pair[string, int]{Key: string(rune('a' + i%7)), Val: i})
		}
		d := Parallelize(ctx, pairs, 6, 16)
		out := ReduceByKey(d, 3, func(a, b int) int { return a + b }).Collect()
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return out
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
