package dataflow

import "testing"

func TestFilterAll(t *testing.T) {
	ctx := NewContext(2, nil)
	d := Parallelize(ctx, ints(50), 0, 8)
	none := Filter(d, func(int) bool { return false })
	if none.Len() != 0 {
		t.Fatalf("filter-false kept %d", none.Len())
	}
	all := Filter(d, func(int) bool { return true })
	if all.Len() != 50 {
		t.Fatalf("filter-true kept %d", all.Len())
	}
}

func TestReduceEmptyDataset(t *testing.T) {
	ctx := NewContext(2, nil)
	d := Parallelize(ctx, []int(nil), 0, 8)
	if got := Reduce(d, 0, func(a, b int) int { return a + b }); got != 0 {
		t.Fatalf("empty reduce = %d, want the identity", got)
	}
	// zero must be f's identity: max with -1 sentinel over positives.
	d2 := Parallelize(ctx, []int{3, 9, 4}, 0, 8)
	got := Reduce(d2, -1, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	if got != 9 {
		t.Fatalf("max reduce = %d", got)
	}
}

func TestReduceByKeyEmpty(t *testing.T) {
	ctx := NewContext(2, nil)
	d := Parallelize(ctx, []Pair[int, int](nil), 0, 8)
	out := ReduceByKey(d, 3, func(a, b int) int { return a + b })
	if out.Len() != 0 {
		t.Fatalf("empty rbk = %d pairs", out.Len())
	}
}

func TestSinglePartition(t *testing.T) {
	ctx := NewContext(8, nil)
	d := Parallelize(ctx, ints(10), 1, 8)
	if d.Partitions() != 1 {
		t.Fatalf("partitions = %d", d.Partitions())
	}
	sum := Reduce(Map(d, 8, func(x int) int { return x }), 0,
		func(a, b int) int { return a + b })
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMorePartitionsThanElements(t *testing.T) {
	ctx := NewContext(2, nil)
	d := Parallelize(ctx, []int{1, 2, 3}, 100, 8)
	if d.Partitions() > 3 {
		t.Fatalf("partitions = %d, want ≤ elements", d.Partitions())
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestHashAnyPanicsOnExoticKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for unsupported key type")
		}
	}()
	hashAny(3.14)
}

func TestElemBytesDefaults(t *testing.T) {
	ctx := NewContext(2, nil)
	d := Parallelize(ctx, ints(4), 0, 0)
	if d.ElemBytes() != 8 {
		t.Fatalf("default elem bytes = %d", d.ElemBytes())
	}
	if d.Region().Size == 0 {
		t.Fatal("dataset must have a backing region even uninstrumented")
	}
}
