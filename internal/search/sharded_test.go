package search

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestShardedIndexPartition(t *testing.T) {
	six := BuildSharded(testDocs(), 2, nil)
	if six.Shards() != 2 {
		t.Fatalf("shards = %d", six.Shards())
	}
	if six.Docs() != 4 {
		t.Fatalf("docs = %d, want 4 across shards", six.Docs())
	}
	if six.Terms() == 0 {
		t.Fatal("no terms indexed")
	}
	// More shards than documents clamps instead of building empty shards.
	if got := BuildSharded(testDocs(), 16, nil).Shards(); got != 4 {
		t.Fatalf("clamped shards = %d, want 4", got)
	}
}

func TestShardedQueryFindsSameDocs(t *testing.T) {
	docs := testDocs()
	single := Build(docs, nil)
	for _, shards := range []int{1, 2, 3, 4} {
		six := BuildSharded(docs, shards, nil)
		for _, q := range []string{"go", "cache", "programming language", "benchmark"} {
			want := map[string]bool{}
			for _, h := range single.Query(q, 10) {
				want[h.DocID] = true
			}
			got := six.Query(q, 10)
			if len(got) != len(want) {
				t.Fatalf("shards=%d query %q: %d hits, want %d", shards, q, len(got), len(want))
			}
			for _, h := range got {
				if !want[h.DocID] {
					t.Fatalf("shards=%d query %q: unexpected doc %s", shards, q, h.DocID)
				}
			}
		}
	}
}

func TestShardedQueryDeterministicAndBounded(t *testing.T) {
	six := BuildSharded(testDocs(), 2, nil)
	a := six.Query("go cache", 1)
	b := six.Query("go cache", 1)
	if len(a) != 1 || len(b) != 1 || a[0].DocID != b[0].DocID {
		t.Fatalf("top-1 not deterministic: %+v vs %+v", a, b)
	}
	for i := 1; i < len(six.Query("go cache", 10)); i++ {
		hits := six.Query("go cache", 10)
		if hits[i-1].Score < hits[i].Score {
			t.Fatalf("hits not sorted by score: %+v", hits)
		}
	}
}

func TestShardedServerHTTP(t *testing.T) {
	srv := httptest.NewServer(NewServer(BuildSharded(testDocs(), 2, nil)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/search?q=go&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Total == 0 || len(r.Hits) != r.Total {
		t.Fatalf("response = %+v", r)
	}
}
