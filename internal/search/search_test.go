package search

import (
	"encoding/json"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testDocs() []Document {
	return []Document{
		{ID: "d0", Title: "go programming", Body: []byte("go is a programming language designed at google")},
		{ID: "d1", Title: "cache design", Body: []byte("cache hierarchies include l1 l2 and l3 caches")},
		{ID: "d2", Title: "go caches", Body: []byte("go programs can be cache friendly go go")},
		{ID: "d3", Title: "benchmarks", Body: []byte("benchmark suites measure systems and architecture")},
	}
}

func TestTokenize(t *testing.T) {
	var toks []string
	Tokenize([]byte("Hello, World! x86-64 go GO"), func(tok []byte) {
		toks = append(toks, string(tok))
	})
	want := []string{"hello", "world", "x", "go", "go"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", toks, want)
		}
	}
}

func TestBuildIndexStats(t *testing.T) {
	ix := Build(testDocs(), nil)
	if ix.Docs() != 4 {
		t.Fatalf("Docs = %d", ix.Docs())
	}
	if ix.Terms() == 0 {
		t.Fatal("no terms indexed")
	}
	pl := ix.Postings("go")
	if len(pl) != 2 {
		t.Fatalf("postings(go) = %v, want docs d0 and d2", pl)
	}
}

func TestQueryRanking(t *testing.T) {
	ix := Build(testDocs(), nil)
	hits := ix.Query("go", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	// d2 mentions "go" four times (incl. title) vs d0 twice: d2 ranks first.
	if hits[0].DocID != "d2" {
		t.Errorf("top hit = %s, want d2", hits[0].DocID)
	}
	if hits[0].Score < hits[1].Score {
		t.Error("hits not sorted by descending score")
	}
}

func TestQueryMultiTerm(t *testing.T) {
	ix := Build(testDocs(), nil)
	hits := ix.Query("cache hierarchies", 10)
	if len(hits) == 0 || hits[0].DocID != "d1" {
		t.Fatalf("hits = %+v, want d1 first", hits)
	}
}

func TestQueryUnknownTerm(t *testing.T) {
	ix := Build(testDocs(), nil)
	if hits := ix.Query("zzzq", 10); len(hits) != 0 {
		t.Fatalf("hits = %+v, want none", hits)
	}
}

func TestTopKBounded(t *testing.T) {
	docs := make([]Document, 50)
	for i := range docs {
		docs[i] = Document{ID: "d" + strings.Repeat("x", i%3), Title: "common", Body: []byte("common term body")}
	}
	ix := Build(docs, nil)
	hits := ix.Query("common", 7)
	if len(hits) != 7 {
		t.Fatalf("topK = %d, want 7", len(hits))
	}
	if !sort.SliceIsSorted(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score }) {
		t.Fatal("hits not sorted")
	}
}

// Property: for a single-term query, the hit set equals the set of
// documents containing the term.
func TestSingleTermHitSetProperty(t *testing.T) {
	f := func(mask uint8) bool {
		var docs []Document
		want := 0
		for i := 0; i < 8; i++ {
			body := "filler words only"
			if mask&(1<<i) != 0 {
				body = "needle in the body"
				want++
			}
			docs = append(docs, Document{ID: string(rune('a' + i)), Body: []byte(body)})
		}
		ix := Build(docs, nil)
		return len(ix.Query("needle", 20)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestHTTPServer(t *testing.T) {
	srv := NewServer(Build(testDocs(), nil))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=go&k=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 2 || resp.Query != "go" {
		t.Fatalf("resp = %+v", resp)
	}
	// Error paths.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/search", nil))
	if rec.Code != 400 {
		t.Fatalf("missing q: status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/other", nil))
	if rec.Code != 404 {
		t.Fatalf("bad path: status = %d", rec.Code)
	}
}

func TestInstrumentedQuery(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	ix := Build(testDocs(), cpu)
	before := cpu.Counts()
	ix.Query("go cache", 5)
	k := cpu.Counts().Sub(before)
	if k.Instructions() == 0 || k.LoadInstrs == 0 {
		t.Fatalf("query emitted no stream: %+v", k)
	}
	if k.FPInstrs == 0 {
		t.Error("TF-IDF scoring should emit FP instructions")
	}
}
