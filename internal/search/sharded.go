package search

import (
	"sort"
	"sync"

	"repro/internal/sim"
)

// ShardedIndex partitions a corpus across independent Index shards and
// serves queries by scatter-gather: every shard ranks its own partition
// and the coordinator merges the partial top-K lists — the paper's
// multi-node Nutch deployment in place of the single-index server.
type ShardedIndex struct {
	shards []*Index
}

// BuildSharded constructs shards indexes over a round-robin document
// partition (round-robin keeps the shards balanced for any corpus
// ordering). shards <= 1 builds a single shard. cpu may be nil.
func BuildSharded(docs []Document, shards int, cpu *sim.CPU) *ShardedIndex {
	if shards < 1 {
		shards = 1
	}
	if shards > len(docs) && len(docs) > 0 {
		shards = len(docs)
	}
	parts := make([][]Document, shards)
	for i, d := range docs {
		parts[i%shards] = append(parts[i%shards], d)
	}
	s := &ShardedIndex{shards: make([]*Index, shards)}
	for i, p := range parts {
		s.shards[i] = Build(p, cpu)
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedIndex) Shards() int { return len(s.shards) }

// Docs returns the corpus size across shards.
func (s *ShardedIndex) Docs() int {
	n := 0
	for _, ix := range s.shards {
		n += ix.Docs()
	}
	return n
}

// Terms returns the total distinct-term slots across shards (a term
// appearing in several shards counts once per shard, matching the
// per-segment dictionaries a sharded deployment keeps).
func (s *ShardedIndex) Terms() int {
	n := 0
	for _, ix := range s.shards {
		n += ix.Terms()
	}
	return n
}

// Query scatters the query to every shard and merges the partial top-K
// lists into a global top-K, ordered by descending score with document id
// as the deterministic tie-break.
func (s *ShardedIndex) Query(q string, topK int) []Hit {
	if topK <= 0 {
		topK = 10
	}
	if len(s.shards) == 1 {
		return s.shards[0].Query(q, topK)
	}
	parts := make([][]Hit, len(s.shards))
	var wg sync.WaitGroup
	for i, ix := range s.shards {
		wg.Add(1)
		go func(i int, ix *Index) {
			defer wg.Done()
			parts[i] = ix.Query(q, topK)
		}(i, ix)
	}
	wg.Wait()
	var all []Hit
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].DocID < all[j].DocID
	})
	if len(all) > topK {
		all = all[:topK]
	}
	return all
}
