package search

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Server exposes an Index over HTTP, mirroring the Nutch search front-end:
// GET /search?q=<terms>&k=<topK> returns ranked hits as JSON.
type Server struct {
	ix *Index
}

// NewServer wraps an index.
func NewServer(ix *Index) *Server { return &Server{ix: ix} }

// Response is the JSON payload of one search request.
type Response struct {
	Query string `json:"query"`
	Total int    `json:"total"`
	Hits  []Hit  `json:"hits"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/search" {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	hits := s.ix.Query(q, k)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(Response{Query: q, Total: len(hits), Hits: hits})
}
