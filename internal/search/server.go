package search

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Querier is the retrieval interface the HTTP front-end serves: the
// single-node Index and the scatter-gather ShardedIndex both implement
// it.
type Querier interface {
	Query(q string, topK int) []Hit
}

// Server exposes a Querier over HTTP, mirroring the Nutch search
// front-end: GET /search?q=<terms>&k=<topK> returns ranked hits as JSON.
type Server struct {
	ix Querier
}

// NewServer wraps any retrieval backend — a single-node *Index or a
// scatter-gather *ShardedIndex; the serving path is identical.
func NewServer(ix Querier) *Server { return &Server{ix: ix} }

// Response is the JSON payload of one search request.
type Response struct {
	Query string `json:"query"`
	Total int    `json:"total"`
	Hits  []Hit  `json:"hits"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/search" {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	hits := s.ix.Query(q, k)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(Response{Query: q, Total: len(hits), Hits: hits})
}
