package search

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Querier is the retrieval interface the HTTP front-end serves: the
// single-node Index and the scatter-gather ShardedIndex both implement
// it.
type Querier interface {
	Query(q string, topK int) []Hit
}

// MaxTopK caps the per-request result count: a hostile or buggy k
// cannot make one query heapify the whole corpus.
const MaxTopK = 100

// Server exposes a Querier over HTTP, mirroring the Nutch search
// front-end: GET /search?q=<terms>&k=<topK> returns ranked hits as
// JSON, and GET /healthz answers load-balancer probes.
type Server struct {
	ix Querier
}

// NewServer wraps any retrieval backend — a single-node *Index or a
// scatter-gather *ShardedIndex; the serving path is identical.
func NewServer(ix Querier) *Server { return &Server{ix: ix} }

// Response is the JSON payload of one search request.
type Response struct {
	Query string `json:"query"`
	Total int    `json:"total"`
	Hits  []Hit  `json:"hits"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz", "/search":
	default:
		http.NotFound(w, r)
		return
	}
	// The serving surface is read-only: anything but GET is refused with
	// the allowed method advertised.
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Path == "/healthz" {
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	if k > MaxTopK {
		k = MaxTopK
	}
	hits := s.ix.Query(q, k)
	_ = json.NewEncoder(w).Encode(Response{Query: q, Total: len(hits), Hits: hits})
}
