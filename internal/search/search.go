// Package search is an inverted-index search engine — the repository's
// substitute for the paper's Nutch 1.1 stack (DESIGN.md §1). It provides
// the tokenizer, a positional-free inverted index with term and document
// statistics, TF-IDF ranked retrieval with a top-K heap, and an HTTP query
// server; the Nutch Server online-service workload drives the server with
// a Zipf-popular query log and measures RPS.
package search

import (
	"container/heap"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

// Document is one unit of indexable content.
type Document struct {
	ID    string
	Title string
	Body  []byte
}

// Tokenize splits text into lowercase alphabetic terms, invoking emit for
// each. It is allocation-free per token (terms are sub-slices copied only
// by the caller when retained).
func Tokenize(text []byte, emit func(term []byte)) {
	start := -1
	for i := 0; i <= len(text); i++ {
		var c byte
		if i < len(text) {
			c = text[i]
		}
		isAlpha := c >= 'a' && c <= 'z'
		if c >= 'A' && c <= 'Z' {
			// Normalize in place copy-free by emitting lowercased below;
			// treat as alphabetic here.
			isAlpha = true
		}
		if isAlpha {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			emit(lower(text[start:i]))
			start = -1
		}
	}
}

// lower lowercases ASCII in place when needed (tokens from the generators
// are already lowercase, so this is usually a no-op).
func lower(tok []byte) []byte {
	for i, c := range tok {
		if c >= 'A' && c <= 'Z' {
			tok[i] = c + 32
		}
	}
	return tok
}

// Posting is one (document, term-frequency) pair.
type Posting struct {
	Doc int32
	TF  uint16
}

// Index is the inverted index over a corpus.
type Index struct {
	postings map[string][]Posting
	docLen   []float64 // sqrt-normalized lengths
	docs     []Document
	terms    int // total term occurrences

	cpu       *sim.CPU
	queryCode *sim.CodeRegion
	scoreCode *sim.CodeRegion
	region    sim.DataRegion
	termOff   map[string]uint64
	rs        atomic.Uint64
}

// Build constructs the index over docs. cpu may be nil.
func Build(docs []Document, cpu *sim.CPU) *Index {
	ix := &Index{
		postings:  make(map[string][]Posting),
		docLen:    make([]float64, len(docs)),
		docs:      docs,
		cpu:       cpu,
		queryCode: cpu.NewCodeRegion("search.query", 288<<10),
		scoreCode: cpu.NewCodeRegion("search.score", 160<<10),
	}
	ix.rs.Store(0x853c49e6748fea9b)
	for d, doc := range docs {
		tf := map[string]int{}
		n := 0
		count := func(tok []byte) {
			tf[string(tok)]++
			n++
		}
		Tokenize([]byte(doc.Title), count)
		Tokenize(doc.Body, count)
		for term, f := range tf {
			if f > math.MaxUint16 {
				f = math.MaxUint16
			}
			ix.postings[term] = append(ix.postings[term], Posting{Doc: int32(d), TF: uint16(f)})
		}
		ix.docLen[d] = math.Sqrt(float64(n))
		ix.terms += n
	}
	// Lay postings out contiguously in the simulated index region, term by
	// term in sorted order (the on-disk segment layout).
	var bytes uint64
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	ix.termOff = make(map[string]uint64, len(terms))
	for _, t := range terms {
		ix.termOff[t] = bytes
		bytes += uint64(len(ix.postings[t]))*6 + uint64(len(t)) + 16
	}
	ix.region = cpu.Alloc("search.index", bytes+4096)
	return ix
}

// Docs returns the corpus size.
func (ix *Index) Docs() int { return len(ix.docs) }

// Terms returns the distinct term count.
func (ix *Index) Terms() int { return len(ix.postings) }

// Postings returns the postings list for a term (nil if absent).
func (ix *Index) Postings(term string) []Posting { return ix.postings[term] }

// Hit is one ranked search result.
type Hit struct {
	DocID string
	Title string
	Score float64
}

// resultHeap is a min-heap of hits keeping the top-K.
type resultHeap []Hit

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Hit)) }
func (h *resultHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Query runs TF-IDF ranked retrieval and returns up to topK hits by
// descending score.
func (ix *Index) Query(q string, topK int) []Hit {
	if topK <= 0 {
		topK = 10
	}
	// Request path: HTTP parse, query rewrite, dispatch, result render.
	for hop := 0; hop < 3; hop++ {
		ix.cpu.Code(ix.queryCode, ix.nextOff(ix.queryCode.Size()), 768)
		ix.cpu.IntOps(450)
		ix.cpu.Branches(100)
	}
	ix.cpu.FPOps(3)

	scores := make(map[int32]float64)
	var terms [][]byte
	Tokenize([]byte(q), func(tok []byte) {
		terms = append(terms, append([]byte(nil), tok...))
	})
	n := float64(len(ix.docs))
	for _, tok := range terms {
		pl := ix.postings[string(tok)]
		if len(pl) == 0 {
			continue
		}
		idf := math.Log1p(n / float64(len(pl)))
		// Stream the postings list from the index segment.
		off := ix.termOff[string(tok)]
		ix.cpu.Code(ix.scoreCode, ix.nextOff(ix.scoreCode.Size()), 640)
		ix.cpu.LoadR(ix.region, off, len(pl)*6)
		ix.cpu.IntOps(16 * len(pl)) // posting decode, doc-id map, accumulate
		ix.cpu.FPOps(len(pl) / 2)   // scoring arithmetic (partially strength-reduced)
		ix.cpu.Branches(4 * len(pl))
		for _, p := range pl {
			scores[p.Doc] += float64(p.TF) * idf / ix.docLen[p.Doc]
		}
	}
	h := make(resultHeap, 0, topK+1)
	heap.Init(&h)
	for doc, s := range scores {
		if len(h) < topK {
			heap.Push(&h, Hit{DocID: ix.docs[doc].ID, Title: ix.docs[doc].Title, Score: s})
		} else if s > h[0].Score {
			h[0] = Hit{DocID: ix.docs[doc].ID, Title: ix.docs[doc].Title, Score: s}
			heap.Fix(&h, 0)
		}
	}
	out := make([]Hit, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Hit)
	}
	return out
}

func (ix *Index) nextOff(mod uint64) uint64 {
	if mod == 0 {
		return 0
	}
	for {
		old := ix.rs.Load()
		v := old
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		if ix.rs.CompareAndSwap(old, v) {
			return v % mod
		}
	}
}
