package search

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// recordingQuerier captures the topK the handler actually asks for.
type recordingQuerier struct {
	lastK int
}

func (r *recordingQuerier) Query(q string, topK int) []Hit {
	r.lastK = topK
	return []Hit{{DocID: "d0", Score: 1}}
}

func TestServerRejectsNonGET(t *testing.T) {
	srv := NewServer(Build(testDocs(), nil))
	for _, method := range []string{"POST", "PUT", "DELETE", "HEAD"} {
		for _, path := range []string{"/search?q=go", "/healthz"} {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != 405 {
				t.Errorf("%s %s = %d, want 405", method, path, rec.Code)
			}
			if rec.Header().Get("Allow") != "GET" {
				t.Errorf("%s %s: Allow = %q, want GET", method, path, rec.Header().Get("Allow"))
			}
		}
	}
}

func TestServerHealthz(t *testing.T) {
	srv := NewServer(Build(testDocs(), nil))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz Content-Type = %q", ct)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Status != "ok" {
		t.Fatalf("healthz body = %q (%v)", rec.Body.String(), err)
	}
}

func TestServerContentType(t *testing.T) {
	srv := NewServer(Build(testDocs(), nil))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=go", nil))
	if rec.Code != 200 {
		t.Fatalf("search = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("search Content-Type = %q", ct)
	}
}

// TestServerCapsTopK pins the k ceiling: an absurd k reaches the
// retrieval backend clamped to MaxTopK.
func TestServerCapsTopK(t *testing.T) {
	q := &recordingQuerier{}
	srv := NewServer(q)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=go&k=100000", nil))
	if rec.Code != 200 {
		t.Fatalf("search = %d", rec.Code)
	}
	if q.lastK != MaxTopK {
		t.Fatalf("backend saw k=%d, want %d", q.lastK, MaxTopK)
	}
	srv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/search?q=go&k=7", nil))
	if q.lastK != 7 {
		t.Fatalf("backend saw k=%d, want 7", q.lastK)
	}
}
