// Package bdgs is the Big Data Generator Suite (paper Section 5): synthetic
// data generators that scale six seed data-set models to arbitrary volume
// while preserving the characteristics of the originals — Zipfian word
// frequencies for text, power-law degree distributions for graphs, and
// skewed column-value distributions for tables ("4V": volume via scaling,
// variety via the three data types and three sources, velocity via
// streaming generation, veracity via distribution preservation).
//
// The original BDGS fits models on the raw corpora (Wikipedia, Amazon movie
// reviews, the Google and Facebook SNAP graphs, a proprietary e-commerce
// dump, and ProfSearch resumés). Those corpora cannot be redistributed, so
// this package ships the fitted models themselves: a Zipf-distributed
// vocabulary with bigram structure for text, R-MAT parameters matching the
// published node/edge counts for the graphs, and column samplers matching
// the published schemas (DESIGN.md §1).
package bdgs

import "math/rand"

// DataSetInfo describes one seed data set (paper Table 2).
type DataSetInfo struct {
	No        int
	Name      string
	DataType  string // structured | semi-structured | unstructured
	Source    string // text | graph | table
	Size      string // the real data set's published size
	UsedBy    []string
	Generator string // which generator in this package scales it
}

// DataSets returns the Table 2 catalog of seed data sets.
func DataSets() []DataSetInfo {
	return []DataSetInfo{
		{1, "Wikipedia Entries", "unstructured", "text",
			"4,300,000 English articles",
			[]string{"Sort", "Grep", "WordCount", "Index"}, "TextModel"},
		{2, "Amazon Movie Reviews", "semi-structured", "text",
			"7,911,684 reviews",
			[]string{"NaiveBayes", "CF"}, "ReviewModel"},
		{3, "Google Web Graph", "unstructured", "graph",
			"875,713 nodes, 5,105,039 edges",
			[]string{"PageRank"}, "GraphModel(web)"},
		{4, "Facebook Social Network", "unstructured", "graph",
			"4,039 nodes, 88,234 edges",
			[]string{"CC"}, "GraphModel(social)"},
		{5, "E-commerce Transaction Data", "structured", "table",
			"ORDER: 4 cols × 38,658 rows; ITEM: 6 cols × 242,735 rows",
			[]string{"SelectQuery", "AggregateQuery", "JoinQuery"}, "TableModel"},
		{6, "ProfSearch Person Resumés", "semi-structured", "table",
			"278,956 resumés",
			[]string{"Read", "Write", "Scan"}, "ResumeModel"},
	}
}

// rng returns a deterministic PRNG for a generator stream.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
