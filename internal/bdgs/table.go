package bdgs

import (
	"math"
	"math/rand"
)

// The e-commerce transaction schema (paper Table 3).
//
//	ORDER:      ORDER_ID INT, BUYER_ID INT, CREATE_DATE DATE
//	ORDER_ITEM: ITEM_ID INT, ORDER_ID INT, GOODS_ID INT,
//	            GOODS_NUMBER NUMBER(10,2), GOODS_PRICE NUMBER(10,2),
//	            GOODS_AMOUNT NUMBER(14,6)

// Order is one ORDER row.
type Order struct {
	OrderID    int64
	BuyerID    int64
	CreateDate int64 // days since epoch; DATE in the paper schema
}

// OrderItem is one ORDER_ITEM row.
type OrderItem struct {
	ItemID      int64
	OrderID     int64
	GoodsID     int64
	GoodsNumber float64
	GoodsPrice  float64
	GoodsAmount float64
}

// OrderBytes and ItemBytes are the modeled row widths (packed binary).
const (
	OrderBytes = 24
	ItemBytes  = 48
)

// TableModel generates ORDER/ORDER_ITEM pairs preserving the seed's
// characteristics: Zipfian buyer activity and goods popularity (a few
// power buyers and bestsellers dominate), a fixed items-per-order
// distribution matching the seed ratio (242,735/38,658 ≈ 6.3 items/order),
// and log-normal-ish prices.
type TableModel struct {
	Buyers int
	Goods  int
}

// NewTableModel sizes the buyer and goods populations relative to the
// order count, matching the seed's cardinality ratios.
func NewTableModel(orders int) *TableModel {
	buyers := orders / 4
	if buyers < 16 {
		buyers = 16
	}
	goods := orders / 8
	if goods < 16 {
		goods = 16
	}
	return &TableModel{Buyers: buyers, Goods: goods}
}

// Generate produces n orders and their items, deterministic in seed.
func (m *TableModel) Generate(seed int64, n int) ([]Order, []OrderItem) {
	r := rng(seed)
	zBuyer := rand.NewZipf(r, 1.2, 4, uint64(m.Buyers-1))
	zGoods := rand.NewZipf(r, 1.1, 4, uint64(m.Goods-1))
	orders := make([]Order, n)
	items := make([]OrderItem, 0, n*6)
	itemID := int64(1)
	for i := range orders {
		orders[i] = Order{
			OrderID:    int64(i + 1),
			BuyerID:    int64(zBuyer.Uint64()) + 1,
			CreateDate: 15000 + int64(r.Intn(1500)), // ~2011-2015 in days
		}
		k := 1 + int(zipfSmall(r)) // items per order, mean ≈ 6.3, skewed
		for j := 0; j < k; j++ {
			price := priceSample(r)
			num := float64(1 + r.Intn(5))
			items = append(items, OrderItem{
				ItemID:      itemID,
				OrderID:     orders[i].OrderID,
				GoodsID:     int64(zGoods.Uint64()) + 1,
				GoodsNumber: num,
				GoodsPrice:  price,
				GoodsAmount: price * num,
			})
			itemID++
		}
	}
	return orders, items
}

// zipfSmall draws a skewed small count with mean ≈ 5.3 (so 1+draw ≈ 6.3).
func zipfSmall(r *rand.Rand) int {
	// Geometric-ish mixture: most orders small, a tail of large baskets.
	x := r.Float64()
	switch {
	case x < 0.35:
		return r.Intn(3) // 0..2
	case x < 0.80:
		return 3 + r.Intn(5) // 3..7
	default:
		return 8 + r.Intn(20) // 8..27
	}
}

func priceSample(r *rand.Rand) float64 {
	// Log-normal: cheap goods dominate, long price tail.
	p := math.Exp(r.NormFloat64()*0.9 + 3.0)
	if p < 0.5 {
		p = 0.5
	}
	return float64(int(p*100)) / 100
}
