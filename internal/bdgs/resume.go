package bdgs

import (
	"strconv"
	"strings"
)

// Resume is one semi-structured ProfSearch record, the value type the
// Cloud-OLTP (Read/Write/Scan) workloads store in the NoSQL substrate.
type Resume struct {
	Key          string // row key: zero-padded person ID
	Name         string
	Institution  string
	Title        string
	Field        string
	Degrees      []string
	Publications int
}

var (
	institutions = []string{
		"Tsinghua University", "Peking University", "ICT CAS", "MIT",
		"Stanford University", "UC Berkeley", "ETH Zurich", "CMU",
		"University of Tokyo", "EPFL", "Oxford University", "NUS",
	}
	titles = []string{
		"Professor", "Associate Professor", "Assistant Professor",
		"Research Scientist", "Postdoctoral Fellow", "Lecturer",
	}
	fields = []string{
		"computer architecture", "databases", "operating systems",
		"machine learning", "networking", "compilers", "distributed systems",
		"computational biology", "hci", "security",
	}
	degrees = []string{"BSc", "MSc", "PhD"}
)

// ResumeModel generates resumés; field popularity is skewed (a few hot
// fields dominate) as in the seed's crawl of ~200 institutions.
type ResumeModel struct{}

// Generate produces n resumés, deterministic in seed. Keys are zero-padded
// so lexicographic key order matches numeric order (HBase-style row keys).
func (ResumeModel) Generate(seed int64, n int) []Resume {
	r := rng(seed)
	out := make([]Resume, n)
	for i := range out {
		nd := 1 + r.Intn(3)
		ds := make([]string, nd)
		for j := 0; j < nd; j++ {
			ds[j] = degrees[j%len(degrees)] + " " + institutions[r.Intn(len(institutions))]
		}
		out[i] = Resume{
			Key:          ResumeKey(i),
			Name:         "person-" + strconv.Itoa(r.Intn(10*n)+1),
			Institution:  institutions[skewIndex(r.Float64(), len(institutions))],
			Title:        titles[skewIndex(r.Float64(), len(titles))],
			Field:        fields[skewIndex(r.Float64(), len(fields))],
			Degrees:      ds,
			Publications: r.Intn(200),
		}
	}
	return out
}

// ResumeKey formats row key i in the store's zero-padded keyspace.
func ResumeKey(i int) string {
	s := strconv.Itoa(i)
	return "res" + strings.Repeat("0", 10-len(s)) + s
}

// skewIndex maps a uniform draw to a skewed index (earlier entries more
// popular), preserving the seed's hot-field concentration.
func skewIndex(x float64, n int) int {
	i := int(x * x * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// Encode serializes the resume as the semi-structured "field: value" text
// blob stored as the NoSQL row value.
func (re Resume) Encode() []byte {
	var b strings.Builder
	b.WriteString("name: ")
	b.WriteString(re.Name)
	b.WriteString("\ninstitution: ")
	b.WriteString(re.Institution)
	b.WriteString("\ntitle: ")
	b.WriteString(re.Title)
	b.WriteString("\nfield: ")
	b.WriteString(re.Field)
	b.WriteString("\ndegrees: ")
	b.WriteString(strings.Join(re.Degrees, "; "))
	b.WriteString("\npublications: ")
	b.WriteString(strconv.Itoa(re.Publications))
	b.WriteByte('\n')
	return []byte(b.String())
}

// DecodeResume parses an encoded resume blob back into a Resume (minus the
// key), for scan-side verification.
func DecodeResume(blob []byte) Resume {
	var re Resume
	for _, line := range strings.Split(string(blob), "\n") {
		k, v, ok := strings.Cut(line, ": ")
		if !ok {
			continue
		}
		switch k {
		case "name":
			re.Name = v
		case "institution":
			re.Institution = v
		case "title":
			re.Title = v
		case "field":
			re.Field = v
		case "degrees":
			if v != "" {
				re.Degrees = strings.Split(v, "; ")
			}
		case "publications":
			re.Publications, _ = strconv.Atoi(v)
		}
	}
	return re
}
