package bdgs

import (
	"bytes"
	"sync"
	"testing"
)

// TestStableLinesPartitionInvariant: the text an index yields must not
// depend on how the index space is partitioned — the property the
// distributed analytics engine needs to regenerate each node's input
// slice independently.
func TestStableLinesPartitionInvariant(t *testing.T) {
	m := NewTextModel(2000)
	const n = 500
	whole := m.LinesAt(7, 0, n, 10)
	if len(whole) != n {
		t.Fatalf("LinesAt(0,%d) returned %d lines", n, len(whole))
	}
	for _, parts := range []int{2, 3, 7, n} {
		var got [][]byte
		for p := 0; p < parts; p++ {
			lo, hi := n*p/parts, n*(p+1)/parts
			got = append(got, m.LinesAt(7, lo, hi, 10)...)
		}
		if len(got) != n {
			t.Fatalf("parts=%d: %d lines, want %d", parts, len(got), n)
		}
		for i := range got {
			if !bytes.Equal(got[i], whole[i]) {
				t.Fatalf("parts=%d: line %d = %q, want %q", parts, i, got[i], whole[i])
			}
		}
	}
}

// TestStableLinesParallelInvariant: concurrent generation of disjoint
// ranges yields the same data as a single sweep (no hidden shared state).
func TestStableLinesParallelInvariant(t *testing.T) {
	m := NewTextModel(2000)
	const n, parts = 400, 8
	whole := m.LinesAt(3, 0, n, 8)
	got := make([][][]byte, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			got[p] = m.LinesAt(3, n*p/parts, n*(p+1)/parts, 8)
		}(p)
	}
	wg.Wait()
	i := 0
	for p := 0; p < parts; p++ {
		for _, line := range got[p] {
			if !bytes.Equal(line, whole[i]) {
				t.Fatalf("parallel line %d = %q, want %q", i, line, whole[i])
			}
			i++
		}
	}
	if i != n {
		t.Fatalf("parallel generation produced %d lines, want %d", i, n)
	}
}

// TestStableEdgesPartitionInvariant: chunked edge sweeps concatenate to
// the whole sweep, and the graph built from them matches StableGraph.
func TestStableEdgesPartitionInvariant(t *testing.T) {
	const scale, ef = 8, 6
	p := WebGraphParams()
	attempts := (1 << scale) * ef
	whole := StableEdges(11, scale, ef, p, 0, attempts)
	for _, parts := range []int{2, 5, 16} {
		var got [][2]int32
		for c := 0; c < parts; c++ {
			lo, hi := attempts*c/parts, attempts*(c+1)/parts
			got = append(got, StableEdges(11, scale, ef, p, lo, hi)...)
		}
		if len(got) != len(whole) {
			t.Fatalf("parts=%d: %d edges, want %d", parts, len(got), len(whole))
		}
		for i := range got {
			if got[i] != whole[i] {
				t.Fatalf("parts=%d: edge %d = %v, want %v", parts, i, got[i], whole[i])
			}
		}
	}
	g := StableGraph(11, scale, ef, p, true)
	if g.Edges() != len(whole) {
		t.Fatalf("StableGraph edges = %d, want %d", g.Edges(), len(whole))
	}
	rebuilt := make([][]int32, g.N)
	for _, e := range whole {
		rebuilt[e[0]] = append(rebuilt[e[0]], e[1])
	}
	for v := range rebuilt {
		if len(rebuilt[v]) != len(g.Adj[v]) {
			t.Fatalf("vertex %d degree %d, want %d", v, len(g.Adj[v]), len(rebuilt[v]))
		}
		for j := range rebuilt[v] {
			if rebuilt[v][j] != g.Adj[v][j] {
				t.Fatalf("vertex %d adj[%d] = %d, want %d", v, j, g.Adj[v][j], rebuilt[v][j])
			}
		}
	}
	// Degree skew sanity: the stable generator must still be R-MAT-shaped.
	max := 0
	for _, a := range g.Adj {
		if len(a) > max {
			max = len(a)
		}
	}
	if max < 4*ef {
		t.Fatalf("max out-degree %d suggests the power-law skew is gone", max)
	}
}

// TestStableVectorsPartitionInvariant: vectors and their latent cluster
// structure must be partition-independent.
func TestStableVectorsPartitionInvariant(t *testing.T) {
	const n, dim, k = 300, 8, 4
	whole := StableVectors(5, 0, n, dim, k)
	for _, parts := range []int{2, 3, 10} {
		i := 0
		for c := 0; c < parts; c++ {
			lo, hi := n*c/parts, n*(c+1)/parts
			for _, v := range StableVectors(5, lo, hi, dim, k) {
				for d := range v {
					if v[d] != whole[i][d] {
						t.Fatalf("parts=%d: vec %d dim %d = %v, want %v",
							parts, i, d, v[d], whole[i][d])
					}
				}
				i++
			}
		}
		if i != n {
			t.Fatalf("parts=%d produced %d vectors, want %d", parts, i, n)
		}
	}
}

// TestStableResumesPartitionInvariant: table rows must be identical
// however the row space is cut.
func TestStableResumesPartitionInvariant(t *testing.T) {
	var m ResumeModel
	const n = 250
	whole := m.StableResumes(9, 0, n, n)
	for _, parts := range []int{2, 4, 9} {
		i := 0
		for c := 0; c < parts; c++ {
			lo, hi := n*c/parts, n*(c+1)/parts
			for _, re := range m.StableResumes(9, lo, hi, n) {
				if !bytes.Equal(re.Encode(), whole[i].Encode()) {
					t.Fatalf("parts=%d: row %d = %+v, want %+v", parts, i, re, whole[i])
				}
				i++
			}
		}
		if i != n {
			t.Fatalf("parts=%d produced %d rows, want %d", parts, i, n)
		}
	}
}

// TestStableSeedSensitivity: different seeds must change the data (a
// regression guard against the per-item seed derivation collapsing).
func TestStableSeedSensitivity(t *testing.T) {
	m := NewTextModel(2000)
	a := m.LinesAt(1, 0, 50, 10)
	b := m.LinesAt(2, 0, 50, 10)
	same := 0
	for i := range a {
		if bytes.Equal(a[i], b[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 1 and 2 generated identical lines")
	}
	if itemSeed(1, streamLines, 0) == itemSeed(1, streamEdges, 0) {
		t.Fatal("stream tags do not separate item spaces")
	}
}
