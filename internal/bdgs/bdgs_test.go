package bdgs

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDataSetCatalogMatchesTable2(t *testing.T) {
	ds := DataSets()
	if len(ds) != 6 {
		t.Fatalf("Table 2 lists 6 data sets, got %d", len(ds))
	}
	types := map[string]int{}
	sources := map[string]int{}
	for i, d := range ds {
		if d.No != i+1 {
			t.Errorf("data set %d numbered %d", i+1, d.No)
		}
		types[d.DataType]++
		sources[d.Source]++
	}
	// The suite covers the whole spectrum of data types and sources.
	for _, want := range []string{"structured", "semi-structured", "unstructured"} {
		if types[want] == 0 {
			t.Errorf("missing data type %q", want)
		}
	}
	for _, want := range []string{"text", "graph", "table"} {
		if sources[want] == 0 {
			t.Errorf("missing data source %q", want)
		}
	}
}

func TestCorpusDeterministicAndSized(t *testing.T) {
	m := NewTextModel(2000)
	a := m.Corpus(42, 100_000)
	b := m.Corpus(42, 100_000)
	if !bytes.Equal(a, b) {
		t.Fatal("Corpus is not deterministic for a fixed seed")
	}
	if len(a) != 100_000 {
		t.Fatalf("Corpus size = %d, want 100000", len(a))
	}
	c := m.Corpus(43, 100_000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds must produce different corpora")
	}
}

// Veracity: word frequencies follow a Zipf-like rank-frequency curve —
// top-ranked word much more frequent than rank ~50, heavy tail present.
func TestCorpusZipfShape(t *testing.T) {
	m := NewTextModel(5000)
	corpus := m.Corpus(7, 400_000)
	freq := map[string]int{}
	for _, w := range bytes.Fields(corpus) {
		freq[string(w)]++
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if len(counts) < 200 {
		t.Fatalf("vocabulary too small in sample: %d distinct words", len(counts))
	}
	r1, r20, r200 := float64(counts[0]), float64(counts[19]), float64(counts[199])
	if r1/r20 < 3 {
		t.Errorf("rank1/rank20 = %.2f, want Zipf-like skew (>3)", r1/r20)
	}
	if r20/r200 < 2 {
		t.Errorf("rank20/rank200 = %.2f, want heavy tail (>2)", r20/r200)
	}
}

// Veracity: scaling the volume preserves the distribution shape: the top-50
// mass fraction at 100 KB and at 800 KB should agree within a few percent.
func TestCorpusScalingPreservesDistribution(t *testing.T) {
	m := NewTextModel(5000)
	frac := func(size int) float64 {
		corpus := m.Corpus(11, size)
		freq := map[string]int{}
		total := 0
		for _, w := range bytes.Fields(corpus) {
			freq[string(w)]++
			total++
		}
		counts := make([]int, 0, len(freq))
		for _, c := range freq {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for i := 0; i < 50 && i < len(counts); i++ {
			top += counts[i]
		}
		return float64(top) / float64(total)
	}
	small, large := frac(100_000), frac(800_000)
	if math.Abs(small-large) > 0.05 {
		t.Errorf("top-50 mass fraction drifts with scale: %.3f vs %.3f", small, large)
	}
}

func TestLinesAndPages(t *testing.T) {
	m := NewTextModel(1000)
	lines := m.Lines(3, 500, 8)
	if len(lines) != 500 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) == 0 {
			t.Fatal("empty line generated")
		}
	}
	pages := m.Pages(3, 50, 120)
	if len(pages) != 50 {
		t.Fatalf("got %d pages", len(pages))
	}
	seen := map[string]bool{}
	for _, p := range pages {
		if seen[p.ID] {
			t.Fatalf("duplicate page ID %s", p.ID)
		}
		seen[p.ID] = true
		if p.Bytes() <= 0 || p.Title == "" {
			t.Fatal("degenerate page")
		}
	}
}

func TestGraphShapeWeb(t *testing.T) {
	g := GenGraph(5, 12, 6, WebGraphParams(), true)
	if g.N != 4096 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() < 4096*5 {
		t.Fatalf("edges = %d, want ≈ 6/vertex", g.Edges())
	}
	// Power law: max degree far above average degree.
	maxDeg := 0
	for v := range g.Adj {
		if d := g.Degree(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(g.Edges()) / float64(g.N)
	if float64(maxDeg) < 10*avg {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", maxDeg, avg)
	}
}

func TestGraphUndirectedSymmetric(t *testing.T) {
	g := GenGraph(9, 10, 16, SocialGraphParams(), false)
	// Every edge must appear in both adjacency lists, deduplicated.
	for u, a := range g.Adj {
		for i := 1; i < len(a); i++ {
			if a[i] == a[i-1] {
				t.Fatalf("duplicate neighbor %d in list of %d", a[i], u)
			}
		}
		for _, v := range a {
			if !contains(g.Adj[v], int32(u)) {
				t.Fatalf("edge (%d,%d) missing reverse direction", u, v)
			}
		}
	}
}

func contains(a []int32, x int32) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

func TestGraphDeterminism(t *testing.T) {
	a := GenGraph(1, 10, 8, WebGraphParams(), true)
	b := GenGraph(1, 10, 8, WebGraphParams(), true)
	if a.Edges() != b.Edges() {
		t.Fatal("graph generation not deterministic")
	}
	for v := range a.Adj {
		if len(a.Adj[v]) != len(b.Adj[v]) {
			t.Fatal("adjacency mismatch for same seed")
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := GenGraph(2, 8, 4, WebGraphParams(), true)
	el := g.EdgeList()
	if len(el) != g.Edges() {
		t.Fatalf("edge list has %d entries, graph has %d edges", len(el), g.Edges())
	}
}

func TestTableGeneration(t *testing.T) {
	m := NewTableModel(2000)
	orders, items := m.Generate(5, 2000)
	if len(orders) != 2000 {
		t.Fatalf("orders = %d", len(orders))
	}
	ratio := float64(len(items)) / float64(len(orders))
	if ratio < 4 || ratio > 9 {
		t.Errorf("items/order = %.2f, want ≈ 6.3 (seed ratio)", ratio)
	}
	// Referential integrity: every item references an existing order.
	for _, it := range items {
		if it.OrderID < 1 || it.OrderID > int64(len(orders)) {
			t.Fatalf("dangling OrderID %d", it.OrderID)
		}
		if math.Abs(it.GoodsAmount-it.GoodsNumber*it.GoodsPrice) > 1e-9 {
			t.Fatalf("AMOUNT != NUMBER*PRICE for item %d", it.ItemID)
		}
	}
	// Buyer skew: top buyer has far more than the mean order count.
	byBuyer := map[int64]int{}
	for _, o := range orders {
		byBuyer[o.BuyerID]++
	}
	max := 0
	for _, c := range byBuyer {
		if c > max {
			max = c
		}
	}
	if max < 5*len(orders)/len(byBuyer) {
		t.Errorf("buyer distribution not skewed: max %d, buyers %d", max, len(byBuyer))
	}
}

func TestReviewModel(t *testing.T) {
	tm := NewTextModel(2000)
	m := NewReviewModel(5000, tm)
	rs := m.Generate(9, 5000, 40)
	if len(rs) != 5000 {
		t.Fatalf("reviews = %d", len(rs))
	}
	var pos, neg int
	posSet := map[string]bool{}
	for _, w := range positiveWords {
		posSet[w] = true
	}
	for _, r := range rs {
		if r.Rating < 1 || r.Rating > 5 {
			t.Fatalf("rating %d out of range", r.Rating)
		}
		if r.Rating >= 4 {
			pos++
		} else if r.Rating <= 2 {
			neg++
		}
		if len(r.Text) == 0 {
			t.Fatal("empty review text")
		}
	}
	// Positive skew of the Amazon seed: roughly 70-85% of reviews are 4-5★.
	frac := float64(pos) / float64(len(rs))
	if frac < 0.65 || frac > 0.9 {
		t.Errorf("positive fraction = %.2f, want ≈ 0.78", frac)
	}
	if neg == 0 {
		t.Error("no negative reviews generated")
	}
	// Sentiment signal: positive reviews contain positive words more often.
	countPos := func(text string, want bool) int {
		n := 0
		for _, w := range bytes.Fields([]byte(text)) {
			if posSet[string(w)] == want {
				n++
			}
		}
		return n
	}
	posHits, negHits := 0, 0
	for _, r := range rs {
		if r.Rating == 5 {
			posHits += countPos(r.Text, true)
		}
		if r.Rating == 1 {
			negHits += countPos(r.Text, true)
		}
	}
	if posHits == 0 {
		t.Error("5-star reviews carry no positive sentiment words")
	}
}

func TestResumeModelAndCodec(t *testing.T) {
	var m ResumeModel
	rs := m.Generate(4, 300)
	if len(rs) != 300 {
		t.Fatalf("resumes = %d", len(rs))
	}
	keys := make([]string, len(rs))
	for i, r := range rs {
		keys[i] = r.Key
		got := DecodeResume(r.Encode())
		if got.Name != r.Name || got.Institution != r.Institution ||
			got.Field != r.Field || got.Publications != r.Publications ||
			len(got.Degrees) != len(r.Degrees) {
			t.Fatalf("encode/decode mismatch: %+v vs %+v", got, r)
		}
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("zero-padded resume keys must sort lexicographically")
	}
}

// Property: resume encode/decode round-trips for arbitrary publication
// counts and degree lists.
func TestResumeRoundTripProperty(t *testing.T) {
	f := func(pubs uint16, nDeg uint8) bool {
		re := Resume{
			Key: ResumeKey(1), Name: "n", Institution: "i", Title: "t",
			Field: "f", Publications: int(pubs),
		}
		for j := 0; j < int(nDeg%4); j++ {
			re.Degrees = append(re.Degrees, "PhD X")
		}
		got := DecodeResume(re.Encode())
		return got.Publications == re.Publications && len(got.Degrees) == len(re.Degrees)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorsClustered(t *testing.T) {
	vs := Vectors(3, 2000, 8, 5)
	if len(vs) != 2000 || len(vs[0]) != 8 {
		t.Fatalf("shape = %dx%d", len(vs), len(vs[0]))
	}
	// Clustered data has much lower within-cluster spread than global
	// spread; cheap proxy: distances to nearest of 5 sampled points are
	// bimodal. Just check values vary and are finite.
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatal("non-finite feature")
			}
			min, max = math.Min(min, x), math.Max(max, x)
		}
	}
	if max-min < 20 {
		t.Errorf("feature range %.1f too narrow for clustered data", max-min)
	}
}
