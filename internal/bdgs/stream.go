package bdgs

import (
	"bufio"
	"io"
	"math/rand"
)

// Streaming generation covers the "velocity" V of the paper's 4V
// requirements (Section 2): producing data continuously at arbitrary
// volume without materializing it, bounded only by storage and generator
// throughput ("in theory, the data size limit can only be bounded by the
// storage size ... and its running time", Section 5).

// StreamCorpus writes approximately totalBytes of article text to w in
// chunks, returning the bytes written. Unlike Corpus it never holds more
// than one document in memory, so it scales to any volume.
func (m *TextModel) StreamCorpus(w io.Writer, seed int64, totalBytes int64) (int64, error) {
	s := m.newSampler(seed)
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	var doc []byte
	for written < totalBytes {
		doc = m.document(s, 0, doc[:0])
		n := int64(len(doc))
		if written+n > totalBytes {
			n = totalBytes - written
		}
		if _, err := bw.Write(doc[:n]); err != nil {
			return written, err
		}
		written += n
	}
	return written, bw.Flush()
}

// StreamEdges writes the graph's edge list as "src\tdst" lines without
// materializing the flattened list.
func (g *Graph) StreamEdges(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var edges int64
	var buf [32]byte
	for u, a := range g.Adj {
		for _, v := range a {
			if !g.Directed && int32(u) > v {
				continue
			}
			line := appendEdge(buf[:0], int32(u), v)
			if _, err := bw.Write(line); err != nil {
				return edges, err
			}
			edges++
		}
	}
	return edges, bw.Flush()
}

func appendEdge(b []byte, u, v int32) []byte {
	b = appendInt(b, u)
	b = append(b, '\t')
	b = appendInt(b, v)
	return append(b, '\n')
}

func appendInt(b []byte, v int32) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [12]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// ReviewStream produces reviews one at a time, for velocity-style
// consumers (e.g. a classifier fed from a live firehose). It draws from
// the same distributions as ReviewModel.Generate.
type ReviewStream struct {
	model          *ReviewModel
	s              sampler
	ctl            *rand.Rand
	zUser, zItem   *rand.Zipf
	wordsPerReview int
}

// Stream returns a deterministic unbounded review source.
func (m *ReviewModel) Stream(seed int64, wordsPerReview int) *ReviewStream {
	if wordsPerReview <= 0 {
		wordsPerReview = 60
	}
	ctl := rng(seed)
	return &ReviewStream{
		model:          m,
		s:              m.text.newSampler(seed ^ 0x7ef1),
		ctl:            ctl,
		zUser:          rand.NewZipf(ctl, 1.3, 4, uint64(m.Users-1)),
		zItem:          rand.NewZipf(ctl, 1.15, 4, uint64(m.Items-1)),
		wordsPerReview: wordsPerReview,
	}
}

// Next generates the next review.
func (rs *ReviewStream) Next() Review {
	rating := sampleRating(rs.ctl)
	return Review{
		UserID: int32(rs.zUser.Uint64()),
		ItemID: int32(rs.zItem.Uint64()),
		Rating: rating,
		Text:   rs.model.reviewText(rs.s, rating, rs.wordsPerReview),
	}
}
