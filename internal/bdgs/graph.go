package bdgs

import (
	"math/rand"
	"sort"
)

// RMATParams are the recursive-matrix edge-placement probabilities. They
// must sum to 1. Skewed parameters yield power-law degree distributions,
// the defining characteristic of both graph seeds.
type RMATParams struct {
	A, B, C, D float64
}

// WebGraphParams matches the Google web graph seed: sparse (average
// out-degree ≈ 5.8) and strongly skewed, Graph500-style.
func WebGraphParams() RMATParams { return RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05} }

// SocialGraphParams matches the Facebook social graph seed: denser
// (average degree ≈ 44) with more symmetric structure.
func SocialGraphParams() RMATParams { return RMATParams{A: 0.45, B: 0.22, C: 0.22, D: 0.11} }

// Graph is a compact adjacency-list graph with int32 vertex IDs.
// For undirected graphs each edge appears in both endpoint lists.
type Graph struct {
	N        int
	Adj      [][]int32
	Directed bool
	edges    int
}

// Edges returns the number of stored edge endpoints' logical edges.
func (g *Graph) Edges() int { return g.edges }

// Degree returns the (out-)degree of vertex v.
func (g *Graph) Degree(v int32) int { return len(g.Adj[v]) }

// BytesApprox estimates the in-memory/serialized footprint (8 bytes per
// stored endpoint, matching an edge-list file of two int32 per edge).
func (g *Graph) BytesApprox() int {
	total := 0
	for _, a := range g.Adj {
		total += len(a) * 4
	}
	return total + g.N*4
}

// GenGraph generates a graph with 2^scale vertices and edgeFactor edges per
// vertex using R-MAT recursive quadrant sampling (the BDGS graph
// generator's method). Self-loops are dropped; duplicate edges are kept for
// directed graphs (multi-links exist in web graphs) and deduplicated for
// undirected ones.
func GenGraph(seed int64, scale, edgeFactor int, p RMATParams, directed bool) *Graph {
	n := 1 << uint(scale)
	m := n * edgeFactor
	r := rng(seed)
	g := &Graph{N: n, Adj: make([][]int32, n), Directed: directed}
	for e := 0; e < m; e++ {
		u, v := rmatEdge(r, scale, p)
		if u == v {
			continue
		}
		g.Adj[u] = append(g.Adj[u], int32(v))
		if !directed {
			g.Adj[v] = append(g.Adj[v], int32(u))
		}
		g.edges++
	}
	if !directed {
		for v := range g.Adj {
			a := g.Adj[v]
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			g.Adj[v] = dedup(a)
		}
	}
	return g
}

func rmatEdge(r *rand.Rand, scale int, p RMATParams) (int, int) {
	u, v := 0, 0
	for bit := 0; bit < scale; bit++ {
		x := r.Float64()
		switch {
		case x < p.A:
			// quadrant (0,0)
		case x < p.A+p.B:
			v |= 1 << uint(bit)
		case x < p.A+p.B+p.C:
			u |= 1 << uint(bit)
		default:
			u |= 1 << uint(bit)
			v |= 1 << uint(bit)
		}
	}
	return u, v
}

func dedup(a []int32) []int32 {
	if len(a) < 2 {
		return a
	}
	out := a[:1]
	for _, x := range a[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// EdgeList flattens the graph to (src,dst) pairs, the on-disk format the
// BDGS conversion tools feed to the graph workloads. For undirected graphs
// each edge is emitted once (src < dst).
func (g *Graph) EdgeList() [][2]int32 {
	var out [][2]int32
	for u, a := range g.Adj {
		for _, v := range a {
			if !g.Directed && int32(u) > v {
				continue
			}
			out = append(out, [2]int32{int32(u), v})
		}
	}
	return out
}

// DegreeHistogram returns counts of vertices by degree, used by the
// veracity tests to check the power-law shape.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, a := range g.Adj {
		h[len(a)]++
	}
	return h
}
