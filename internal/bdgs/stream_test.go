package bdgs

import (
	"bytes"
	"strings"
	"testing"
)

func TestStreamCorpusMatchesVolume(t *testing.T) {
	m := NewTextModel(2000)
	var buf bytes.Buffer
	n, err := m.StreamCorpus(&buf, 9, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 250_000 || buf.Len() != 250_000 {
		t.Fatalf("streamed %d bytes, buffer %d", n, buf.Len())
	}
}

func TestStreamCorpusDeterministic(t *testing.T) {
	m := NewTextModel(2000)
	var a, b bytes.Buffer
	if _, err := m.StreamCorpus(&a, 4, 50_000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StreamCorpus(&b, 4, 50_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("stream not deterministic")
	}
}

func TestStreamEdgesMatchesEdgeList(t *testing.T) {
	g := GenGraph(3, 9, 4, WebGraphParams(), true)
	var buf bytes.Buffer
	n, err := g.StreamEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(g.EdgeList()) {
		t.Fatalf("streamed %d edges, EdgeList has %d", n, len(g.EdgeList()))
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != int(n) {
		t.Fatalf("wrote %d lines for %d edges", len(lines), n)
	}
	for _, l := range lines {
		if !strings.Contains(l, "\t") {
			t.Fatalf("malformed edge line %q", l)
		}
	}
}

func TestStreamEdgesUndirectedEmitsOncePerEdge(t *testing.T) {
	g := GenGraph(7, 8, 6, SocialGraphParams(), false)
	var buf bytes.Buffer
	n, err := g.StreamEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(g.EdgeList()) {
		t.Fatalf("undirected stream emitted %d, want %d", n, len(g.EdgeList()))
	}
}

func TestReviewStream(t *testing.T) {
	tm := NewTextModel(1000)
	m := NewReviewModel(1000, tm)
	s := m.Stream(5, 30)
	seenRatings := map[int8]bool{}
	for i := 0; i < 500; i++ {
		rv := s.Next()
		if rv.Rating < 1 || rv.Rating > 5 {
			t.Fatalf("rating %d", rv.Rating)
		}
		if rv.Text == "" {
			t.Fatal("empty streamed review")
		}
		seenRatings[rv.Rating] = true
	}
	if len(seenRatings) < 3 {
		t.Errorf("stream rating diversity too low: %v", seenRatings)
	}
	// Determinism.
	a, b := m.Stream(5, 30), m.Stream(5, 30)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("review stream not deterministic")
		}
	}
}

func TestAppendInt(t *testing.T) {
	cases := map[int32]string{0: "0", 7: "7", -12: "-12", 2147483647: "2147483647"}
	for v, want := range cases {
		if got := string(appendInt(nil, v)); got != want {
			t.Errorf("appendInt(%d) = %q", v, got)
		}
	}
}
