package bdgs

import (
	"bytes"
	"math/rand"
	"strconv"
)

// TextModel generates unstructured English-like text whose word-frequency
// distribution follows Zipf's law, the dominant characteristic of the
// Wikipedia seed corpus. Word lengths follow the empirical English mix
// (common words short, tail words longer), so byte-level characteristics
// (average token length ~5, whitespace density) also match.
type TextModel struct {
	vocab  []string
	zipfS  float64
	zipfV  float64
	stop   []string // top-rank function words
	docLen int      // mean words per document
}

// Standard English function words occupy the top Zipf ranks, as in the
// Wikipedia corpus; content words are synthesized below them.
var stopWords = []string{
	"the", "of", "and", "in", "to", "a", "is", "was", "for", "as", "on",
	"with", "by", "that", "it", "from", "at", "his", "an", "are", "were",
	"which", "this", "be", "he", "also", "or", "has", "had", "its", "but",
	"not", "have", "one", "new", "first", "their", "after", "who", "they",
	"two", "her", "she", "been", "other", "when", "time", "during", "into",
	"school", "city", "world", "state", "year", "national", "university",
	"war", "between", "used", "may", "american", "most", "all", "where",
}

var syllables = []string{
	"ta", "ren", "lo", "mi", "con", "ver", "sta", "pel", "dor", "ing",
	"ra", "bel", "tion", "ner", "ka", "sol", "ment", "gra", "fin", "dus",
	"ter", "val", "nor", "eli", "pra", "shu", "mon", "zet", "qui", "lan",
	"ber", "tol", "san", "del", "cor", "vis", "har", "nel", "pol", "gar",
}

// NewTextModel builds the Wikipedia-seeded text model with the given
// vocabulary size (the seed uses 50k; tests may shrink it).
func NewTextModel(vocabSize int) *TextModel {
	if vocabSize < len(stopWords)+10 {
		vocabSize = len(stopWords) + 10
	}
	m := &TextModel{zipfS: 1.07, zipfV: 2.7, stop: stopWords, docLen: 400}
	m.vocab = make([]string, vocabSize)
	copy(m.vocab, stopWords)
	// Deterministic synthetic content words: syllable compositions.
	r := rng(0x5eed7e47)
	for i := len(stopWords); i < vocabSize; i++ {
		n := 2 + r.Intn(3)
		var b []byte
		for j := 0; j < n; j++ {
			b = append(b, syllables[r.Intn(len(syllables))]...)
		}
		m.vocab[i] = string(b)
	}
	return m
}

// VocabSize returns the vocabulary size of the model.
func (m *TextModel) VocabSize() int { return len(m.vocab) }

// Word returns the word at Zipf rank position drawn from z.
func (m *TextModel) word(z *rand.Zipf) string {
	i := z.Uint64()
	if int(i) >= len(m.vocab) {
		i = uint64(len(m.vocab) - 1)
	}
	return m.vocab[i]
}

// sampler pairs a PRNG with its Zipf source for one generation stream.
type sampler struct {
	r *rand.Rand
	z *rand.Zipf
}

func (m *TextModel) newSampler(seed int64) sampler {
	r := rng(seed)
	return sampler{r: r, z: rand.NewZipf(r, m.zipfS, m.zipfV, uint64(len(m.vocab)-1))}
}

// Document synthesizes one article of roughly meanWords words (if
// meanWords<=0 the model default is used) and appends it to dst.
func (m *TextModel) document(s sampler, meanWords int, dst []byte) []byte {
	if meanWords <= 0 {
		meanWords = m.docLen
	}
	n := meanWords/2 + s.r.Intn(meanWords) // uniform around the mean
	col := 0
	for i := 0; i < n; i++ {
		w := m.word(s.z)
		dst = append(dst, w...)
		col += len(w) + 1
		if col > 72 {
			dst = append(dst, '\n')
			col = 0
		} else {
			dst = append(dst, ' ')
		}
	}
	dst = append(dst, '\n')
	return dst
}

// Corpus generates approximately totalBytes of article text, returning the
// concatenated documents. Generation is deterministic in (seed, totalBytes).
func (m *TextModel) Corpus(seed int64, totalBytes int) []byte {
	s := m.newSampler(seed)
	out := make([]byte, 0, totalBytes+4096)
	for len(out) < totalBytes {
		out = m.document(s, 0, out)
	}
	return out[:totalBytes]
}

// Lines generates n newline-terminated text records of roughly wordsPerLine
// words each — the record-oriented input (e.g. for Sort and Grep) that the
// BDGS format-conversion tools produce for Hadoop text inputs.
func (m *TextModel) Lines(seed int64, n, wordsPerLine int) [][]byte {
	s := m.newSampler(seed)
	lines := make([][]byte, n)
	for i := range lines {
		var b []byte
		k := 1 + s.r.Intn(wordsPerLine*2)
		for j := 0; j < k; j++ {
			if j > 0 {
				b = append(b, ' ')
			}
			b = append(b, m.word(s.z)...)
		}
		lines[i] = b
	}
	return lines
}

// Pages generates n synthetic web pages (for Index and the Nutch server's
// crawl corpus): each has a numeric page ID line, a title, and a body.
func (m *TextModel) Pages(seed int64, n, bodyWords int) []Page {
	s := m.newSampler(seed)
	pages := make([]Page, n)
	for i := range pages {
		var title bytes.Buffer
		for j := 0; j < 2+s.r.Intn(4); j++ {
			if j > 0 {
				title.WriteByte(' ')
			}
			title.WriteString(m.word(s.z))
		}
		pages[i] = Page{
			ID:    "page-" + strconv.Itoa(i),
			Title: title.String(),
			Body:  m.document(s, bodyWords, nil),
		}
	}
	return pages
}

// Page is one synthetic web page.
type Page struct {
	ID    string
	Title string
	Body  []byte
}

// Bytes returns the serialized size of the page.
func (p Page) Bytes() int { return len(p.ID) + len(p.Title) + len(p.Body) }
