package bdgs

import "math/rand"

// Review is one semi-structured Amazon-movie-review-like record: a
// (user, item) interaction with a star rating and a short text whose word
// choice is tinted by the rating's sentiment — the structure Naive Bayes
// (sentiment classification) and Collaborative Filtering consume.
type Review struct {
	UserID int32
	ItemID int32
	Rating int8 // 1..5 stars
	Text   string
}

// Bytes returns the modeled serialized size of the review.
func (v Review) Bytes() int { return 12 + len(v.Text) }

// Positive reviews (4-5 stars) dominate the Amazon seed (~78%); the
// generated rating distribution preserves that skew.
var ratingCDF = [5]float64{0.06, 0.13, 0.22, 0.45, 1.00}

var positiveWords = []string{
	"great", "excellent", "wonderful", "best", "loved", "perfect",
	"amazing", "brilliant", "beautiful", "superb", "favorite", "classic",
}
var negativeWords = []string{
	"terrible", "awful", "worst", "boring", "waste", "disappointing",
	"bad", "poor", "dull", "horrible", "weak", "mess",
}

// ReviewModel generates reviews with Zipfian user and item activity
// (few prolific reviewers and blockbuster movies dominate).
type ReviewModel struct {
	Users int
	Items int
	text  *TextModel
}

// NewReviewModel sizes the populations from the review count using the
// seed's ratios (7.9 M reviews, 253 k users, 889 k movies).
func NewReviewModel(reviews int, text *TextModel) *ReviewModel {
	users := reviews / 31
	if users < 16 {
		users = 16
	}
	items := reviews / 9
	if items < 16 {
		items = 16
	}
	return &ReviewModel{Users: users, Items: items, text: text}
}

// Generate produces n reviews, deterministic in seed.
func (m *ReviewModel) Generate(seed int64, n int, wordsPerReview int) []Review {
	r := rng(seed)
	zUser := rand.NewZipf(r, 1.3, 4, uint64(m.Users-1))
	zItem := rand.NewZipf(r, 1.15, 4, uint64(m.Items-1))
	s := m.text.newSampler(seed ^ 0x7ef1)
	if wordsPerReview <= 0 {
		wordsPerReview = 60
	}
	out := make([]Review, n)
	for i := range out {
		rating := sampleRating(r)
		out[i] = Review{
			UserID: int32(zUser.Uint64()),
			ItemID: int32(zItem.Uint64()),
			Rating: rating,
			Text:   m.reviewText(s, rating, wordsPerReview),
		}
	}
	return out
}

func sampleRating(r *rand.Rand) int8 {
	x := r.Float64()
	for i, c := range ratingCDF {
		if x < c {
			return int8(i + 1)
		}
	}
	return 5
}

// reviewText mixes base vocabulary with sentiment words at a rate that
// rises with distance from the neutral rating, so a classifier has signal.
func (m *ReviewModel) reviewText(s sampler, rating int8, meanWords int) string {
	n := meanWords/2 + s.r.Intn(meanWords)
	var b []byte
	sentFrac := 0.06 * float64(abs8(rating-3))
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ' ')
		}
		if s.r.Float64() < sentFrac {
			if rating >= 4 {
				b = append(b, positiveWords[s.r.Intn(len(positiveWords))]...)
			} else {
				b = append(b, negativeWords[s.r.Intn(len(negativeWords))]...)
			}
			continue
		}
		b = append(b, m.text.word(s.z)...)
	}
	return string(b)
}

func abs8(x int8) int8 {
	if x < 0 {
		return -x
	}
	return x
}
