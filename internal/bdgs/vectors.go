package bdgs

// Vectors generates n feature vectors of dimension dim drawn from k latent
// Gaussian clusters — the K-means input. Real BigDataBench derives such
// vectors from the social-network text via feature extraction; generating
// them from a latent mixture preserves what matters to the workload:
// cluster structure with noise, so Lloyd's algorithm converges in a
// realistic number of iterations rather than degenerating.
func Vectors(seed int64, n, dim, k int) [][]float64 {
	r := rng(seed)
	centers := make([][]float64, k)
	for i := range centers {
		c := make([]float64, dim)
		for d := range c {
			c[d] = r.Float64() * 100
		}
		centers[i] = c
	}
	out := make([][]float64, n)
	for i := range out {
		c := centers[r.Intn(k)]
		v := make([]float64, dim)
		for d := range v {
			v[d] = c[d] + r.NormFloat64()*6
		}
		out[i] = v
	}
	return out
}
