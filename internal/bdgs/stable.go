package bdgs

import "strconv"

// Partition-stable generation.
//
// The sequential generators (TextModel.Lines, GenGraph, Vectors,
// ResumeModel.Generate) draw every item from one PRNG stream, so the data
// an item gets depends on how many items were generated before it — fine
// for one process, wrong for a distributed engine where each node
// generates only its slice of the input. The Stable* variants derive an
// independent PRNG per item from (seed, item index), so generating items
// [lo,hi) yields byte-identical data no matter how the index space is cut
// into partitions or which workers generate which cut. This is the
// property internal/analytics relies on for distributed-vs-local result
// equality: every node regenerates exactly the records it owns.

// itemSeed derives the per-item PRNG seed for item i of stream. The
// stream constant separates item spaces (lines, edges, vectors, rows) so
// the same (seed, i) never aliases across generators.
func itemSeed(seed int64, stream uint64, i int) int64 {
	v := uint64(seed) ^ stream ^ (uint64(i) * 0x9e3779b97f4a7c15)
	// splitmix64 finalizer: adjacent indices land far apart.
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int64(v >> 1) // non-negative
}

// Generator stream tags for itemSeed.
const (
	streamLines   = 0x11e5a11e5
	streamEdges   = 0xed6e5ed6e
	streamVectors = 0x7ec707ec7
	streamResumes = 0x2e50e2e50
)

// LinesAt generates text lines [lo,hi) of the record-oriented input
// (compare Lines): each line is drawn from its own (seed, index)-derived
// sampler, so the line at index i is identical whether the index space is
// generated whole or in partitions of any size or order.
func (m *TextModel) LinesAt(seed int64, lo, hi, wordsPerLine int) [][]byte {
	if hi < lo {
		hi = lo
	}
	lines := make([][]byte, 0, hi-lo)
	for i := lo; i < hi; i++ {
		s := m.newSampler(itemSeed(seed, streamLines, i))
		var b []byte
		k := 1 + s.r.Intn(wordsPerLine*2)
		for j := 0; j < k; j++ {
			if j > 0 {
				b = append(b, ' ')
			}
			b = append(b, m.word(s.z)...)
		}
		lines = append(lines, b)
	}
	return lines
}

// StableEdges generates directed R-MAT edges [lo,hi) of the scale-2^scale
// graph's edgeFactor·2^scale edge attempts. Each attempt is drawn from
// its own derived PRNG; attempts that land on a self-loop are dropped (as
// GenGraph drops them), and the drop decision depends only on (seed,
// index), so the union of any partitioning of [0, attempts) is always the
// same edge multiset in the same index order.
func StableEdges(seed int64, scale, edgeFactor int, p RMATParams, lo, hi int) [][2]int32 {
	if hi < lo {
		hi = lo
	}
	out := make([][2]int32, 0, hi-lo)
	for e := lo; e < hi; e++ {
		r := rng(itemSeed(seed, streamEdges, e))
		u, v := rmatEdge(r, scale, p)
		if u == v {
			continue
		}
		out = append(out, [2]int32{int32(u), int32(v)})
	}
	return out
}

// StableGraph builds the full graph from StableEdges, so any node can
// regenerate exactly the adjacency a partitioned sweep would have
// produced. Adjacency lists append in edge-index order (and are
// sort+deduped for undirected graphs), matching GenGraph's construction.
func StableGraph(seed int64, scale, edgeFactor int, p RMATParams, directed bool) *Graph {
	n := 1 << uint(scale)
	g := &Graph{N: n, Adj: make([][]int32, n), Directed: directed}
	for _, e := range StableEdges(seed, scale, edgeFactor, p, 0, n*edgeFactor) {
		g.Adj[e[0]] = append(g.Adj[e[0]], e[1])
		if !directed {
			g.Adj[e[1]] = append(g.Adj[e[1]], e[0])
		}
		g.edges++
	}
	if !directed {
		for v := range g.Adj {
			a := g.Adj[v]
			sortInt32(a)
			g.Adj[v] = dedup(a)
		}
	}
	return g
}

// StableVectors generates feature vectors [lo,hi) of the n-vector K-means
// input (compare Vectors). The k latent cluster centers depend only on
// seed; each vector then draws its cluster choice and noise from its own
// derived PRNG.
func StableVectors(seed int64, lo, hi, dim, k int) [][]float64 {
	if hi < lo {
		hi = lo
	}
	centers := StableCenters(seed, dim, k)
	out := make([][]float64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, StableVectorAt(centers, seed, i))
	}
	return out
}

// StableCenters derives the latent mixture centers from seed alone.
// Callers generating many vectors one index at a time (the distributed
// k-means reduce) compute them once and reuse them via StableVectorAt.
func StableCenters(seed int64, dim, k int) [][]float64 {
	r := rng(seed)
	centers := make([][]float64, k)
	for i := range centers {
		c := make([]float64, dim)
		for d := range c {
			c[d] = r.Float64() * 100
		}
		centers[i] = c
	}
	return centers
}

// StableVectorAt generates vector i against precomputed centers.
func StableVectorAt(centers [][]float64, seed int64, i int) []float64 {
	r := rng(itemSeed(seed, streamVectors, i))
	c := centers[r.Intn(len(centers))]
	v := make([]float64, len(c))
	for d := range v {
		v[d] = c[d] + r.NormFloat64()*6
	}
	return v
}

// StableResumes generates resumé rows [lo,hi) (compare
// ResumeModel.Generate), each from its own derived PRNG. total is the
// full row count — it sizes the name space exactly as the sequential
// generator does, so a row's content depends on (seed, index, total) but
// never on the partitioning.
func (ResumeModel) StableResumes(seed int64, lo, hi, total int) []Resume {
	if hi < lo {
		hi = lo
	}
	out := make([]Resume, 0, hi-lo)
	for i := lo; i < hi; i++ {
		r := rng(itemSeed(seed, streamResumes, i))
		nd := 1 + r.Intn(3)
		ds := make([]string, nd)
		for j := 0; j < nd; j++ {
			ds[j] = degrees[j%len(degrees)] + " " + institutions[r.Intn(len(institutions))]
		}
		out = append(out, Resume{
			Key:          ResumeKey(i),
			Name:         "person-" + strconv.Itoa(r.Intn(10*total)+1),
			Institution:  institutions[skewIndex(r.Float64(), len(institutions))],
			Title:        titles[skewIndex(r.Float64(), len(titles))],
			Field:        fields[skewIndex(r.Float64(), len(fields))],
			Degrees:      ds,
			Publications: r.Intn(200),
		})
	}
	return out
}

// sortInt32 sorts ascending (insertion sort: adjacency lists are short).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
