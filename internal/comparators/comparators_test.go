package comparators

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestAllKernelsRunAndInstrument(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every comparator kernel instrumented; ~2s")
	}
	for _, k := range All() {
		cpu := sim.New(sim.XeonE5645())
		sum := k.Run(cpu)
		if math.IsNaN(sum) || math.IsInf(sum, 0) {
			t.Errorf("%s/%s: non-finite checksum", k.Suite, k.Name)
		}
		c := cpu.Counts()
		if c.Instructions() == 0 {
			t.Errorf("%s/%s: no instructions recorded", k.Suite, k.Name)
		}
	}
}

func TestSuiteRoster(t *testing.T) {
	if got := len(BySuite("HPCC")); got != 7 {
		t.Errorf("HPCC has %d kernels, want 7 (HPL, STREAM, PTRANS, RandomAccess, DGEMM, FFT, COMM)", got)
	}
	if got := len(BySuite("PARSEC")); got < 4 {
		t.Errorf("PARSEC has %d kernels, want ≥4", got)
	}
	if len(BySuite("SPECFP")) == 0 || len(BySuite("SPECINT")) == 0 {
		t.Error("SPEC groups empty")
	}
	if len(Suites()) != 4 {
		t.Error("Suites() should list the four comparator groups")
	}
}

func TestKernelsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kernel twice; ~0.7s")
	}
	for _, k := range All() {
		a := k.Run(nil)
		b := k.Run(nil)
		if a != b {
			t.Errorf("%s/%s: nondeterministic checksum %v vs %v", k.Suite, k.Name, a, b)
		}
	}
}

func TestTraditionalSuitesAreFPRichExceptSPECINT(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes four full suites; ~2s")
	}
	cfg := sim.XeonE5645()
	hpcc := SuiteCounts("HPCC", cfg)
	if ratio := hpcc.IntToFPRatio(); ratio > 5 {
		t.Errorf("HPCC int/FP ratio %.1f; should be near 1 (paper: 1.0)", ratio)
	}
	specint := SuiteCounts("SPECINT", cfg)
	if specint.FPInstrs*100 > specint.IntInstrs {
		t.Errorf("SPECINT should be virtually FP-free (paper ratio ≈ 409): %d FP vs %d int",
			specint.FPInstrs, specint.IntInstrs)
	}
	specfp := SuiteCounts("SPECFP", cfg)
	if specfp.FPInstrs < specfp.IntInstrs {
		t.Errorf("SPECFP should be FP-dominated (paper ratio ≈ 0.67)")
	}
}

func TestTraditionalSuitesHaveLowL1IMPKI(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes every suite; ~2s")
	}
	cfg := sim.XeonE5645()
	for _, suite := range Suites() {
		c := SuiteCounts(suite, cfg)
		if mpki := c.L1IMPKI(); mpki > 6 {
			t.Errorf("%s L1I MPKI = %.2f; traditional suites are ≤ 5.4 in Figure 6", suite, mpki)
		}
	}
}

func TestHPCCHasHighFPIntensity(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes the HPCC suite; ~0.5s")
	}
	cfg := sim.XeonE5645()
	c := SuiteCounts("HPCC", cfg)
	if fi := c.FPIntensity(); fi < 0.1 {
		t.Errorf("HPCC FP intensity %.4f; paper reports O(1) on E5645", fi)
	}
}
