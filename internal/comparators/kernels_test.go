package comparators

import (
	"testing"

	"repro/internal/sim"
)

// Per-kernel mix sanity: the FP-oriented kernels must be FP-dominated and
// the integer kernels FP-free in their compute (small statistical FP
// allowances aside).
func TestKernelMixCharacter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kernel instrumented; ~2s")
	}
	fpKernels := map[string]bool{
		"HPL": true, "DGEMM": true, "STREAM": true, "FFT": true,
		"blackscholes": true, "swaptions": true, "streamcluster": true,
		"jacobi": true, "nbody": true,
	}
	intKernels := map[string]bool{
		"RandomAccess": true, "dedup": true, "canneal": true,
		"compress": true, "btree": true, "parse": true,
	}
	for _, k := range All() {
		cpu := sim.New(sim.XeonE5645())
		k.Run(cpu)
		c := cpu.Counts()
		switch {
		case fpKernels[k.Name]:
			if c.FPInstrs < c.IntInstrs {
				t.Errorf("%s: expected FP-dominated, got %d FP vs %d int",
					k.Name, c.FPInstrs, c.IntInstrs)
			}
		case intKernels[k.Name]:
			if c.IntInstrs < 10*c.FPInstrs {
				t.Errorf("%s: expected integer-dominated, got %d int vs %d FP",
					k.Name, c.IntInstrs, c.FPInstrs)
			}
		}
	}
}

// STREAM and RandomAccess are the memory-system antagonists: their DRAM
// traffic per instruction must far exceed the compute kernels'.
func TestMemoryAntagonists(t *testing.T) {
	perInstrTraffic := func(name string) float64 {
		for _, k := range All() {
			if k.Name != name {
				continue
			}
			cpu := sim.New(sim.XeonE5645())
			k.Run(cpu)
			c := cpu.Counts()
			return float64(c.DRAMBytes()) / float64(c.Instructions())
		}
		t.Fatalf("kernel %s not found", name)
		return 0
	}
	stream := perInstrTraffic("STREAM")
	gups := perInstrTraffic("RandomAccess")
	hpl := perInstrTraffic("HPL")
	if stream < 4*hpl {
		t.Errorf("STREAM traffic/instr %.3f should dwarf HPL %.3f", stream, hpl)
	}
	if gups < 4*hpl {
		t.Errorf("RandomAccess traffic/instr %.3f should dwarf HPL %.3f", gups, hpl)
	}
}

// GUPS must miss the DTLB far more than the sequential kernels.
func TestGUPSTLBHostility(t *testing.T) {
	get := func(name string) sim.Counts {
		for _, k := range All() {
			if k.Name == name {
				cpu := sim.New(sim.XeonE5645())
				k.Run(cpu)
				return cpu.Counts()
			}
		}
		t.Fatalf("kernel %s not found", name)
		return sim.Counts{}
	}
	gups := get("RandomAccess")
	stream := get("STREAM")
	if gups.DTLBMPKI() < 5*stream.DTLBMPKI() {
		t.Errorf("GUPS DTLB %.2f should dwarf STREAM %.2f",
			gups.DTLBMPKI(), stream.DTLBMPKI())
	}
}

func TestKernelsRunWithNilCPU(t *testing.T) {
	// Every kernel must be usable as a plain computation.
	for _, k := range All() {
		if got := k.Run(nil); got != got { // NaN check
			t.Errorf("%s: NaN checksum with nil CPU", k.Name)
		}
	}
}
