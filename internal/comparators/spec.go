package comparators

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// SPECFP returns SPECFP-like kernels: a Jacobi stencil (the 433.milc /
// 437.leslie3d pattern) and an n-body step (447.dealII-style dense FP).
func SPECFP() []Kernel {
	return []Kernel{
		{Name: "jacobi", Suite: "SPECFP", Run: runJacobi},
		{Name: "nbody", Suite: "SPECFP", Run: runNBody},
	}
}

// SPECINT returns SPECINT-like kernels: an LZ-style compressor (401.bzip2
// pattern), a B-tree searcher (429.mcf-ish pointer work), and a
// state-machine parser (400.perlbench-ish).
func SPECINT() []Kernel {
	return []Kernel{
		{Name: "compress", Suite: "SPECINT", Run: runCompress},
		{Name: "btree", Suite: "SPECINT", Run: runBTree},
		{Name: "parse", Suite: "SPECINT", Run: runParse},
	}
}

func runJacobi(cpu *sim.CPU) float64 {
	const n = 768
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i % 97)
	}
	code := cpu.NewCodeRegion("jacobi.kernel", 1<<10)
	ra := cpu.Alloc("jacobi.a", n*n*8)
	rb := cpu.Alloc("jacobi.b", n*n*8)
	cpu.Code(code, 0, 256)
	const sweeps = 6
	for s := 0; s < sweeps; s++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				b[i*n+j] = 0.25 * (a[(i-1)*n+j] + a[(i+1)*n+j] + a[i*n+j-1] + a[i*n+j+1])
			}
			cpu.LoadR(ra, uint64((i-1)*n)*8, 3*n*8)
			cpu.StoreR(rb, uint64(i*n)*8, n*8)
			cpu.FPOps(4 * n)
			cpu.IntOps(n)
			cpu.Branches(n / 8)
		}
		a, b = b, a
		ra, rb = rb, ra
	}
	return a[n*n/2]
}

func runNBody(cpu *sim.CPU) float64 {
	const n = 1536
	pos := make([][3]float64, n)
	vel := make([][3]float64, n)
	for i := range pos {
		pos[i] = [3]float64{float64(i % 13), float64(i % 7), float64(i % 5)}
	}
	code := cpu.NewCodeRegion("nbody.kernel", 1<<10)
	rp := cpu.Alloc("nbody.pos", n*24)
	cpu.Code(code, 0, 320)
	for i := 0; i < n; i++ {
		var f [3]float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := pos[j][0] - pos[i][0]
			dy := pos[j][1] - pos[i][1]
			dz := pos[j][2] - pos[i][2]
			inv := 1.0 / math.Sqrt(dx*dx+dy*dy+dz*dz+1e-9)
			inv3 := inv * inv * inv
			f[0] += dx * inv3
			f[1] += dy * inv3
			f[2] += dz * inv3
		}
		vel[i][0] += f[0] * 1e-3
		vel[i][1] += f[1] * 1e-3
		vel[i][2] += f[2] * 1e-3
		cpu.LoadR(rp, 0, n*24) // whole position set streams per body
		cpu.FPOps(18 * n)
		cpu.IntOps(2 * n)
		cpu.Branches(n / 4)
	}
	return vel[1][0] + vel[n-1][2]
}

func runCompress(cpu *sim.CPU) float64 {
	const sz = 4 << 20
	data := make([]byte, sz)
	v := uint64(13)
	for i := range data {
		v = v*6364136223846793005 + 1442695040888963407
		data[i] = byte(v >> 58) // ~64 symbols: compressible
	}
	code := cpu.NewCodeRegion("compress.kernel", 4<<10)
	rd := cpu.Alloc("compress.data", sz)
	rw := cpu.Alloc("compress.window", 1<<16)
	cpu.Code(code, 0, 640)
	// LZ77-style greedy matcher with a 64 KiB window hash chain.
	head := make([]int32, 1<<15)
	for i := range head {
		head[i] = -1
	}
	outBytes := 0
	i := 0
	for i+3 < sz {
		h := (uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16) * 2654435761 >> 17
		cand := head[h]
		head[h] = int32(i)
		matched := 0
		if cand >= 0 && i-int(cand) < 1<<16 {
			for matched < 255 && i+matched < sz && data[int(cand)+matched] == data[i+matched] {
				matched++
			}
		}
		cpu.LoadR(rd, uint64(i), 4)
		cpu.LoadR(rw, uint64(h)%(1<<16), 8)
		cpu.IntOps(18 + matched)
		cpu.Branches(6 + matched/2)
		if i%16 == 0 {
			cpu.FPOps(1) // ratio/statistics FP retained by real int codes
		}
		if matched >= 4 {
			outBytes += 3
			i += matched
		} else {
			outBytes++
			i++
		}
	}
	return float64(outBytes) / float64(sz)
}

func runBTree(cpu *sim.CPU) float64 {
	const n = 1 << 20
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 7
	}
	code := cpu.NewCodeRegion("btree.kernel", 2<<10)
	rk := cpu.Alloc("btree.keys", n*8)
	cpu.Code(code, 0, 320)
	v := uint64(3)
	found := 0
	const lookups = 1 << 16
	for l := 0; l < lookups; l++ {
		v = v*6364136223846793005 + 1442695040888963407
		target := int64(v%(n*7)) &^ 1
		idx := sort.Search(n, func(i int) bool { return keys[i] >= target })
		if idx < n && keys[idx] == target {
			found++
		}
		// The upper tree levels stay hot; only the last levels touch
		// cold leaves.
		probe := uint64(target) % n
		for d := 0; d < 3; d++ {
			cpu.LoadR(rk, uint64(d)*4096, 8) // hot top levels
			cpu.LoadR(rk, (probe^uint64(d*31013))%n*8, 8)
		}
		cpu.IntOps(150)
		cpu.Branches(36)
		if l%2 == 0 {
			cpu.FPOps(1) // the occasional FP op real SPECINT codes retain
		}
	}
	return float64(found)
}

func runParse(cpu *sim.CPU) float64 {
	const sz = 2 << 20
	data := make([]byte, sz)
	v := uint64(21)
	for i := range data {
		v = v*6364136223846793005 + 1442695040888963407
		data[i] = " \tabcdefghij(){};=+"[v%19]
	}
	code := cpu.NewCodeRegion("parse.kernel", 6<<10)
	rd := cpu.Alloc("parse.input", sz)
	cpu.Code(code, 0, 768)
	state := 0
	tokens := 0
	depth := 0
	for i, b := range data {
		switch {
		case b == ' ' || b == '\t':
			if state == 1 {
				tokens++
			}
			state = 0
		case b == '(' || b == '{':
			depth++
			state = 0
		case b == ')' || b == '}':
			depth--
			state = 0
		case b == ';' || b == '=':
			tokens++
			state = 0
		default:
			state = 1
		}
		if i%4096 == 0 {
			cpu.LoadR(rd, uint64(i), 4096)
			cpu.IntOps(4 * 4096)
			cpu.Branches(2 * 4096)
		}
	}
	return float64(tokens + depth + state)
}
