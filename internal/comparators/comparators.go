// Package comparators implements representative kernels of the three
// traditional benchmark suites the paper compares BigDataBench against in
// Figures 4-6: HPCC 1.4 (HPL, DGEMM, STREAM, PTRANS, RandomAccess, FFT,
// COMM), PARSEC 3.0 (blackscholes, streamcluster, swaptions, dedup,
// canneal), and SPEC CPU2006 split into SPECFP-like and SPECINT-like
// kernels (Section 6.1.3). Each kernel performs its real computation in Go
// and emits its instruction/memory stream into the simulated processor,
// exactly like the workloads — but with the tight loops and small code
// footprints that characterize the traditional suites, which is what
// produces the contrast the paper reports (high FP intensity, near-zero
// L1I MPKI).
package comparators

import (
	"repro/internal/sim"
)

// Kernel is one traditional-benchmark program.
type Kernel struct {
	// Name is the program name (e.g. "HPL", "blackscholes").
	Name string
	// Suite is "HPCC", "PARSEC", "SPECFP" or "SPECINT".
	Suite string
	// Run executes the kernel against the (possibly nil) simulated CPU and
	// returns a checksum for correctness tests.
	Run func(cpu *sim.CPU) float64
}

// All returns every comparator kernel grouped by suite order.
func All() []Kernel {
	var out []Kernel
	out = append(out, HPCC()...)
	out = append(out, PARSEC()...)
	out = append(out, SPECFP()...)
	out = append(out, SPECINT()...)
	return out
}

// Suites lists the comparator suite names in figure order.
func Suites() []string { return []string{"HPCC", "PARSEC", "SPECFP", "SPECINT"} }

// BySuite returns the kernels of one suite.
func BySuite(suite string) []Kernel {
	var out []Kernel
	for _, k := range All() {
		if k.Suite == suite {
			out = append(out, k)
		}
	}
	return out
}

// SuiteCounts measures every kernel of a suite on a fresh CPU per kernel
// and returns the summed counters — the per-suite averages plotted as
// Avg_HPCC / Avg_Parsec / SPECFP / SPECINT in Figures 4-6.
func SuiteCounts(suite string, cfg sim.MachineConfig) sim.Counts {
	var total sim.Counts
	for _, k := range BySuite(suite) {
		cpu := sim.New(cfg)
		k.Run(cpu)
		c := cpu.Counts()
		total.LoadInstrs += c.LoadInstrs
		total.StoreInstrs += c.StoreInstrs
		total.IntInstrs += c.IntInstrs
		total.FPInstrs += c.FPInstrs
		total.BranchInstrs += c.BranchInstrs
		total.L1I.Accesses += c.L1I.Accesses
		total.L1I.Misses += c.L1I.Misses
		total.L1D.Accesses += c.L1D.Accesses
		total.L1D.Misses += c.L1D.Misses
		total.L2.Accesses += c.L2.Accesses
		total.L2.Misses += c.L2.Misses
		total.L3.Accesses += c.L3.Accesses
		total.L3.Misses += c.L3.Misses
		total.HasL3 = c.HasL3
		total.ITLB.Accesses += c.ITLB.Accesses
		total.ITLB.Misses += c.ITLB.Misses
		total.DTLB.Accesses += c.DTLB.Accesses
		total.DTLB.Misses += c.DTLB.Misses
		total.DRAMReadBytes += c.DRAMReadBytes
		total.DRAMWriteBytes += c.DRAMWriteBytes
	}
	return total
}
