package comparators

import (
	"math"

	"repro/internal/sim"
)

// PARSEC returns representative PARSEC 3.0 kernels: two FP-heavy
// (blackscholes, swaptions), one distance-compute (streamcluster), and two
// integer-dominated (dedup, canneal), matching the suite's published mix.
func PARSEC() []Kernel {
	return []Kernel{
		{Name: "blackscholes", Suite: "PARSEC", Run: runBlackScholes},
		{Name: "streamcluster", Suite: "PARSEC", Run: runStreamcluster},
		{Name: "swaptions", Suite: "PARSEC", Run: runSwaptions},
		{Name: "dedup", Suite: "PARSEC", Run: runDedup},
		{Name: "canneal", Suite: "PARSEC", Run: runCanneal},
	}
}

// cnd is the cumulative normal distribution (Abramowitz-Stegun), the hot
// function of blackscholes.
func cnd(x float64) float64 {
	l := math.Abs(x)
	k := 1.0 / (1.0 + 0.2316419*l)
	w := 1.0 - 1.0/math.Sqrt(2*math.Pi)*math.Exp(-l*l/2)*
		(0.31938153*k-0.356563782*k*k+1.781477937*k*k*k-
			1.821255978*k*k*k*k+1.330274429*k*k*k*k*k)
	if x < 0 {
		return 1.0 - w
	}
	return w
}

func runBlackScholes(cpu *sim.CPU) float64 {
	const n = 1 << 17
	code := cpu.NewCodeRegion("blackscholes.kernel", 2<<10)
	opts := cpu.Alloc("blackscholes.options", n*40)
	cpu.Code(code, 0, 448)
	sum := 0.0
	v := 17.0
	for i := 0; i < n; i++ {
		v = math.Mod(v*1103515245+12345, 1<<31)
		s := 50 + v/(1<<31)*50
		x := 40 + v/(1<<31)*60
		t := 0.25 + v/(1<<31)*1.5
		const r = 0.02
		const vol = 0.3
		d1 := (math.Log(s/x) + (r+vol*vol/2)*t) / (vol * math.Sqrt(t))
		d2 := d1 - vol*math.Sqrt(t)
		price := s*cnd(d1) - x*math.Exp(-r*t)*cnd(d2)
		sum += price
		cpu.LoadR(opts, uint64(i)*40, 40)
		cpu.FPOps(60)
		cpu.IntOps(12)
		cpu.Branches(4)
	}
	return sum / n
}

func runStreamcluster(cpu *sim.CPU) float64 {
	const n, dim, k = 4096, 32, 12
	pts := make([]float64, n*dim)
	v := 29.0
	for i := range pts {
		v = math.Mod(v*1103515245+12345, 1<<31)
		pts[i] = v / (1 << 31)
	}
	code := cpu.NewCodeRegion("streamcluster.kernel", 2<<10)
	rp := cpu.Alloc("streamcluster.points", n*dim*8)
	cpu.Code(code, 0, 384)
	cost := 0.0
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		for c := 0; c < k; c++ {
			d := 0.0
			for j := 0; j < dim; j++ {
				diff := pts[i*dim+j] - pts[c*dim+j]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		cost += best
		cpu.LoadR(rp, uint64(i*dim)*8, dim*8)
		cpu.LoadR(rp, 0, k*dim*8/8) // centers stay hot
		cpu.FPOps(3 * k * dim)
		cpu.IntOps(2 * k * dim)
		cpu.Branches(k)
	}
	return cost
}

func runSwaptions(cpu *sim.CPU) float64 {
	const paths = 1 << 15
	code := cpu.NewCodeRegion("swaptions.kernel", 2<<10)
	buf := cpu.Alloc("swaptions.paths", paths*16)
	cpu.Code(code, 0, 320)
	v := uint64(99)
	sum := 0.0
	for p := 0; p < paths; p++ {
		// One HJM-style path step: a few dozen FP ops on LCG normals.
		v = v*6364136223846793005 + 1442695040888963407
		u1 := float64(v>>11) / (1 << 53)
		v = v*6364136223846793005 + 1442695040888963407
		u2 := float64(v>>11) / (1 << 53)
		z := math.Sqrt(-2*math.Log(u1+1e-12)) * math.Cos(2*math.Pi*u2)
		rate := 0.03 + 0.01*z
		df := math.Exp(-rate * 5)
		payoff := math.Max(0, 100*df-95)
		sum += payoff
		cpu.StoreR(buf, uint64(p)*16, 16)
		cpu.FPOps(40)
		cpu.IntOps(14)
		cpu.Branches(3)
	}
	return sum / paths
}

// runDedup chunks a buffer with a rolling hash and counts duplicate
// chunks — the integer pipeline pattern of PARSEC's dedup.
func runDedup(cpu *sim.CPU) float64 {
	const sz = 2 << 20
	data := make([]byte, sz)
	v := uint64(7)
	for i := range data {
		v = v*6364136223846793005 + 1442695040888963407
		data[i] = byte(v >> 56 & 0x3f) // low entropy → real duplicates
	}
	code := cpu.NewCodeRegion("dedup.kernel", 3<<10)
	rd := cpu.Alloc("dedup.data", sz)
	rh := cpu.Alloc("dedup.hashtable", 1<<20)
	cpu.Code(code, 0, 512)
	seen := map[uint64]int{}
	var h uint64 = 14695981039346656037
	chunkStart := 0
	dups := 0
	for i, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
		if h&0xfff == 0 || i-chunkStart >= 8192 { // content-defined boundary
			if _, ok := seen[h]; ok {
				dups++
			}
			seen[h] = chunkStart
			cpu.LoadR(rd, uint64(chunkStart), i-chunkStart)
			cpu.LoadR(rh, h%(1<<20), 16)
			cpu.StoreR(rh, h%(1<<20), 16)
			cpu.IntOps(3*(i-chunkStart) + 30)
			cpu.Branches((i - chunkStart) / 2)
			chunkStart = i
			h = 14695981039346656037
		}
	}
	return float64(dups + len(seen))
}

// runCanneal does random element swaps with cost evaluation over a large
// netlist array — pointer-chasing integer work.
func runCanneal(cpu *sim.CPU) float64 {
	const n = 1 << 16
	nets := make([]int32, n)
	for i := range nets {
		nets[i] = int32(i)
	}
	code := cpu.NewCodeRegion("canneal.kernel", 2<<10)
	rn := cpu.Alloc("canneal.netlist", n*4)
	cpu.Code(code, 0, 384)
	v := uint64(31)
	accepted := 0
	const swaps = 1 << 16
	for s := 0; s < swaps; s++ {
		v = v*6364136223846793005 + 1442695040888963407
		i := int(v % n)
		v = v*6364136223846793005 + 1442695040888963407
		j := int(v % n)
		cost := int(nets[i]-nets[j]) ^ (i - j)
		if cost&1 == 0 {
			nets[i], nets[j] = nets[j], nets[i]
			accepted++
			cpu.StoreR(rn, uint64(i)*4, 4)
			cpu.StoreR(rn, uint64(j)*4, 4)
		}
		cpu.LoadR(rn, uint64(i)*4, 4)
		cpu.LoadR(rn, uint64(j)*4, 4)
		cpu.IntOps(16)
		cpu.Branches(3)
	}
	return float64(accepted)
}
