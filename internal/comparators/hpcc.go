package comparators

import (
	"math"

	"repro/internal/sim"
)

// HPCC returns the seven HPCC 1.4 kernels (Section 6.1.3 runs all seven).
func HPCC() []Kernel {
	return []Kernel{
		{Name: "HPL", Suite: "HPCC", Run: runHPL},
		{Name: "DGEMM", Suite: "HPCC", Run: runDGEMM},
		{Name: "STREAM", Suite: "HPCC", Run: runSTREAM},
		{Name: "PTRANS", Suite: "HPCC", Run: runPTRANS},
		{Name: "RandomAccess", Suite: "HPCC", Run: runRandomAccess},
		{Name: "FFT", Suite: "HPCC", Run: runFFT},
		{Name: "COMM", Suite: "HPCC", Run: runCOMM},
	}
}

// fillMatrix deterministically initializes an n×n matrix.
func fillMatrix(n int, seed float64) []float64 {
	m := make([]float64, n*n)
	v := seed
	for i := range m {
		v = math.Mod(v*1103515245+12345, 1<<31)
		m[i] = v/(1<<31) + 0.5
	}
	return m
}

// runHPL performs an unpivoted LU decomposition (the compute pattern of
// Linpack's DGETRF panel factorization): O(n³) FP over O(n²) data.
func runHPL(cpu *sim.CPU) float64 {
	const n = 256
	a := fillMatrix(n, 3)
	for i := range a {
		if i%(n+1) == 0 {
			a[i] += float64(n) // diagonal dominance, no pivoting needed
		}
	}
	code := cpu.NewCodeRegion("hpl.kernel", 3<<10)
	region := cpu.Alloc("hpl.matrix", n*n*8)
	cpu.Code(code, 0, 512)
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
			l := a[i*n+k]
			row := a[i*n+k+1 : i*n+n]
			pivot := a[k*n+k+1 : k*n+n]
			for j := range row {
				row[j] -= l * pivot[j]
			}
			m := len(row)
			cpu.LoadR(region, uint64(i*n+k)*8, (m+1)*8)
			cpu.LoadR(region, uint64(k*n+k)*8, m*8)
			cpu.StoreR(region, uint64(i*n+k)*8, m*8)
			cpu.FPOps(2*m + 1)
			cpu.IntOps(m / 4)
			cpu.Branches(m / 8)
		}
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a[i*n+i]
	}
	return sum
}

// runDGEMM multiplies two n×n matrices (blocked row-major walk).
func runDGEMM(cpu *sim.CPU) float64 {
	const n = 256
	a := fillMatrix(n, 5)
	b := fillMatrix(n, 7)
	c := make([]float64, n*n)
	code := cpu.NewCodeRegion("dgemm.kernel", 2<<10)
	ra := cpu.Alloc("dgemm.a", n*n*8)
	rb := cpu.Alloc("dgemm.b", n*n*8)
	rc := cpu.Alloc("dgemm.c", n*n*8)
	cpu.Code(code, 0, 384)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
		// Charge per output row: a-row reused (sequential), b walked by
		// column (strided), c written once.
		cpu.LoadR(ra, uint64(i*n)*8, n*8)
		for j := 0; j < n; j += 8 {
			cpu.LoadR(rb, uint64(j*n)*8, 64)
		}
		cpu.StoreR(rc, uint64(i*n)*8, n*8)
		cpu.FPOps(2 * n * n)
		cpu.IntOps(n * n / 2)
		cpu.Branches(n * n / 8)
	}
	return c[0] + c[n*n-1]
}

// runSTREAM is the triad: a[i] = b[i] + q*c[i] over arrays far larger than
// any cache — peak-bandwidth, low operation intensity.
func runSTREAM(cpu *sim.CPU) float64 {
	const n = 1 << 20 // 3 × 8 MiB arrays: stream past every cache level
	b := make([]float64, n)
	c := make([]float64, n)
	a := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
		c[i] = float64(n - i)
	}
	code := cpu.NewCodeRegion("stream.kernel", 1<<10)
	ra := cpu.Alloc("stream.a", n*8)
	rb := cpu.Alloc("stream.b", n*8)
	rc := cpu.Alloc("stream.c", n*8)
	cpu.Code(code, 0, 256)
	const q = 3.0
	const batch = 4096
	for s := 0; s < n; s += batch {
		e := s + batch
		for i := s; i < e; i++ {
			a[i] = b[i] + q*c[i]
		}
		cpu.LoadR(rb, uint64(s)*8, batch*8)
		cpu.LoadR(rc, uint64(s)*8, batch*8)
		cpu.StoreR(ra, uint64(s)*8, batch*8)
		cpu.FPOps(2 * batch)
		cpu.IntOps(batch / 2)
		cpu.Branches(batch / 16)
	}
	return a[n/2]
}

// runPTRANS transposes a matrix (strided reads, sequential writes).
func runPTRANS(cpu *sim.CPU) float64 {
	const n = 384
	a := fillMatrix(n, 11)
	b := make([]float64, n*n)
	code := cpu.NewCodeRegion("ptrans.kernel", 1<<10)
	ra := cpu.Alloc("ptrans.a", n*n*8)
	rb := cpu.Alloc("ptrans.b", n*n*8)
	cpu.Code(code, 0, 256)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[j*n+i] = a[i*n+j]
		}
		cpu.LoadR(ra, uint64(i*n)*8, n*8)
		for j := 0; j < n; j += 8 {
			cpu.StoreR(rb, uint64(j*n+i)*8, 64)
		}
		cpu.FPOps(n / 8) // PTRANS adds A^T + beta*B in full HPCC; token FP
		cpu.IntOps(2 * n)
		cpu.Branches(n / 4)
	}
	return b[1] + b[n*n-2]
}

// runRandomAccess is GUPS: xor-updates at random 8-byte locations of a
// large table — the TLB/cache antagonist of the suite.
func runRandomAccess(cpu *sim.CPU) float64 {
	const bits = 20
	const n = 1 << bits // 8 MiB table
	table := make([]uint64, n)
	for i := range table {
		table[i] = uint64(i)
	}
	code := cpu.NewCodeRegion("gups.kernel", 1<<10)
	rt := cpu.Alloc("gups.table", n*8)
	cpu.Code(code, 0, 192)
	v := uint64(1)
	const updates = 1 << 17
	for u := 0; u < updates; u++ {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		idx := v & (n - 1)
		table[idx] ^= v
		cpu.LoadR(rt, idx*8, 8)
		cpu.StoreR(rt, idx*8, 8)
		cpu.IntOps(7)
		cpu.Branches(1)
	}
	return float64(table[42] & 0xffff)
}

// runFFT is an iterative radix-2 complex FFT (bit-reversal plus butterfly
// passes: strided FP with log n sweeps).
func runFFT(cpu *sim.CPU) float64 {
	const logn = 17
	const n = 1 << logn
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Sin(float64(i) * 0.001)
	}
	code := cpu.NewCodeRegion("fft.kernel", 2<<10)
	rr := cpu.Alloc("fft.re", n*8)
	ri := cpu.Alloc("fft.im", n*8)
	cpu.Code(code, 0, 384)
	// Bit reversal.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		m := n >> 1
		for ; j&m != 0; m >>= 1 {
			j ^= m
		}
		j |= m
	}
	cpu.LoadR(rr, 0, n*8)
	cpu.StoreR(rr, 0, n*8)
	cpu.IntOps(4 * n)
	cpu.Branches(2 * n)
	// Butterfly passes.
	for s := 1; s <= logn; s++ {
		m := 1 << s
		ang := -2 * math.Pi / float64(m)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for k := 0; k < n; k += m {
			cr, ci := 1.0, 0.0
			for j := 0; j < m/2; j++ {
				tr := cr*re[k+j+m/2] - ci*im[k+j+m/2]
				ti := cr*im[k+j+m/2] + ci*re[k+j+m/2]
				re[k+j+m/2] = re[k+j] - tr
				im[k+j+m/2] = im[k+j] - ti
				re[k+j] += tr
				im[k+j] += ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
		cpu.LoadR(rr, 0, n*8)
		cpu.LoadR(ri, 0, n*8)
		cpu.StoreR(rr, 0, n*8)
		cpu.StoreR(ri, 0, n*8)
		cpu.FPOps(10 * n)
		cpu.IntOps(2 * n)
		cpu.Branches(n / 2)
	}
	return re[7] + im[7]
}

// runCOMM models the b_eff ping-pong: repeated buffer copies between two
// staging areas (the shared-memory transport of a node-local MPI).
func runCOMM(cpu *sim.CPU) float64 {
	const sz = 1 << 18
	src := make([]byte, sz)
	dst := make([]byte, sz)
	for i := range src {
		src[i] = byte(i)
	}
	code := cpu.NewCodeRegion("comm.kernel", 1<<10)
	rs := cpu.Alloc("comm.src", sz)
	rd := cpu.Alloc("comm.dst", sz)
	cpu.Code(code, 0, 192)
	const rounds = 6
	for r := 0; r < rounds; r++ {
		copy(dst, src)
		cpu.LoadR(rs, 0, sz)
		cpu.StoreR(rd, 0, sz)
		cpu.IntOps(sz / 16)
		cpu.Branches(sz / 256)
		src, dst = dst, src
		rs, rd = rd, rs
	}
	return float64(dst[123]) + float64(src[456])
}
