// Package webserve implements the two online-service applications of the
// suite: a social-network service (the paper's Apache+MySQL Olio) and an
// auction/e-commerce service (the paper's Apache+JBoss+MySQL Rubis), both
// exposed over net/http (DESIGN.md §1). Requests execute a deep
// parse → dispatch → business logic → storage path; the services' large
// code footprint and scattered per-request heap accesses are what give the
// online-service workloads their characteristic L1I and L2 behaviour in
// the paper's Figure 6.
package webserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Event is one social-network activity entry.
type Event struct {
	ID   int64  `json:"id"`
	User int32  `json:"user"`
	Text string `json:"text"`
	Time int64  `json:"time"`
}

// SocialService is the Olio-like social-events application: users, a
// friendship graph, and per-user event streams with a fan-in home timeline.
type SocialService struct {
	mu      sync.RWMutex
	friends [][]int32 // adjacency: friends[u] = friend user IDs
	events  [][]Event // events[u] = that user's events, newest last
	nextID  int64
	clock   int64

	cpu       *sim.CPU
	httpCode  *sim.CodeRegion
	logicCode *sim.CodeRegion
	storeCode *sim.CodeRegion
	heap      sim.DataRegion
	rs        xrand
}

// xrand is a lock-free deterministic offset source shared by the services'
// instrumentation (concurrent requests need race-free offsets).
type xrand struct{ v atomic.Uint64 }

func (x *xrand) seed(s uint64) { x.v.Store(s) }

func (x *xrand) next() uint64 {
	for {
		old := x.v.Load()
		v := old
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		if x.v.CompareAndSwap(old, v) {
			return v
		}
	}
}

// NewSocialService builds the service over a friendship graph (adjacency
// lists; vertex u's friends are friends[u]). cpu may be nil.
func NewSocialService(friends [][]int32, cpu *sim.CPU) *SocialService {
	s := &SocialService{
		friends:   friends,
		events:    make([][]Event, len(friends)),
		cpu:       cpu,
		httpCode:  cpu.NewCodeRegion("olio.http", 320<<10),
		logicCode: cpu.NewCodeRegion("olio.logic", 256<<10),
		storeCode: cpu.NewCodeRegion("olio.store", 224<<10),
		heap:      cpu.Alloc("olio.heap", uint64(len(friends))*512+1<<20),
	}
	s.rs.seed(0xd1342543de82ef95)
	return s
}

func (s *SocialService) off(r *sim.CodeRegion) uint64 { return s.rs.next() % r.Size() }

// requestOverhead charges the HTTP-stack part of one request: parse,
// routing, session lookup, template setup — several hops through a large
// code footprint, the signature of the paper's online services.
func (s *SocialService) requestOverhead() {
	for hop := 0; hop < 3; hop++ {
		s.cpu.Code(s.httpCode, s.off(s.httpCode), 832)
		s.cpu.IntOps(420)
		s.cpu.Branches(105)
	}
	s.cpu.FPOps(4)
	// Session object, user row, template fragments: scattered heap reads.
	for i := 0; i < 12; i++ {
		s.cpu.LoadR(s.heap, s.rs.next()%s.heap.Size, 48)
	}
}

// Users returns the user population size.
func (s *SocialService) Users() int { return len(s.friends) }

// AddEvent posts an event for user u and returns its ID.
func (s *SocialService) AddEvent(u int32, text string, now int64) (int64, error) {
	if int(u) >= len(s.events) || u < 0 {
		return 0, fmt.Errorf("webserve: no such user %d", u)
	}
	s.requestOverhead()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.clock++
	ev := Event{ID: s.nextID, User: u, Text: text, Time: now}
	s.events[u] = append(s.events[u], ev)
	s.cpu.Code(s.storeCode, s.off(s.storeCode), 640)
	s.cpu.StoreR(s.heap, uint64(u)*512, len(text)+32)
	s.cpu.IntOps(120)
	s.cpu.Branches(30)
	return s.nextID, nil
}

// Home returns the most recent limit events among user u's friends —
// the service's hot, fan-in read path.
func (s *SocialService) Home(u int32, limit int) ([]Event, error) {
	if int(u) >= len(s.friends) || u < 0 {
		return nil, fmt.Errorf("webserve: no such user %d", u)
	}
	if limit <= 0 {
		limit = 20
	}
	s.requestOverhead()
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.cpu.Code(s.logicCode, s.off(s.logicCode), 768)
	var out []Event
	for _, f := range s.friends[u] {
		evs := s.events[f]
		// Scattered read of each friend's recent events.
		s.cpu.LoadR(s.heap, uint64(f)*512, 64)
		s.cpu.IntOps(52)
		s.cpu.Branches(12)
		s.cpu.FPOps(1) // timestamp ordering math
		for i := len(evs) - 1; i >= 0 && i >= len(evs)-3; i-- {
			out = append(out, evs[i])
		}
	}
	// Newest first, bounded.
	sortEventsByTimeDesc(out)
	if len(out) > limit {
		out = out[:limit]
	}
	s.cpu.IntOps(10 * len(out))
	return out, nil
}

// Profile returns a user's friend count and event count.
func (s *SocialService) Profile(u int32) (friends, events int, err error) {
	if int(u) >= len(s.friends) || u < 0 {
		return 0, 0, fmt.Errorf("webserve: no such user %d", u)
	}
	s.requestOverhead()
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.cpu.LoadR(s.heap, uint64(u)*512, 128)
	s.cpu.IntOps(60)
	return len(s.friends[u]), len(s.events[u]), nil
}

func sortEventsByTimeDesc(evs []Event) {
	// Insertion sort: result sets are small (bounded by 3×friends fan-in
	// before truncation) and mostly ordered.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Time > evs[j-1].Time; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// ServeHTTP exposes /home?u=&k=, /profile?u=, /event?u=&text= (POST).
func (s *SocialService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/home":
		u, err := strconv.Atoi(r.URL.Query().Get("u"))
		if err != nil {
			http.Error(w, "bad u", http.StatusBadRequest)
			return
		}
		k, _ := strconv.Atoi(r.URL.Query().Get("k"))
		evs, err := s.Home(int32(u), k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, evs)
	case "/profile":
		u, err := strconv.Atoi(r.URL.Query().Get("u"))
		if err != nil {
			http.Error(w, "bad u", http.StatusBadRequest)
			return
		}
		nf, ne, err := s.Profile(int32(u))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]int{"friends": nf, "events": ne})
	case "/event":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		u, err := strconv.Atoi(r.URL.Query().Get("u"))
		if err != nil {
			http.Error(w, "bad u", http.StatusBadRequest)
			return
		}
		id, err := s.AddEvent(int32(u), r.URL.Query().Get("text"), 0)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]int64{"id": id})
	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
