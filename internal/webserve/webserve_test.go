package webserve

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func smallGraph() [][]int32 {
	// 0-1, 0-2, 1-2, 3 isolated
	return [][]int32{{1, 2}, {0, 2}, {0, 1}, {}}
}

func TestSocialAddEventAndHome(t *testing.T) {
	s := NewSocialService(smallGraph(), nil)
	if _, err := s.AddEvent(1, "hello from 1", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEvent(2, "hello from 2", 20); err != nil {
		t.Fatal(err)
	}
	evs, err := s.Home(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("home(0) = %d events, want 2 (friends 1 and 2)", len(evs))
	}
	if evs[0].Time < evs[1].Time {
		t.Error("home timeline not newest-first")
	}
	// User 3 has no friends: empty timeline.
	evs, err = s.Home(3, 10)
	if err != nil || len(evs) != 0 {
		t.Fatalf("home(3) = %v, %v", evs, err)
	}
}

func TestSocialProfileAndErrors(t *testing.T) {
	s := NewSocialService(smallGraph(), nil)
	_, _ = s.AddEvent(0, "x", 1)
	nf, ne, err := s.Profile(0)
	if err != nil || nf != 2 || ne != 1 {
		t.Fatalf("profile(0) = %d friends %d events, err %v", nf, ne, err)
	}
	if _, err := s.AddEvent(99, "x", 1); err == nil {
		t.Fatal("want error for unknown user")
	}
	if _, err := s.Home(-1, 5); err == nil {
		t.Fatal("want error for negative user")
	}
}

func TestSocialHomeLimit(t *testing.T) {
	s := NewSocialService(smallGraph(), nil)
	for i := 0; i < 10; i++ {
		_, _ = s.AddEvent(1, "e", int64(i))
		_, _ = s.AddEvent(2, "e", int64(i))
	}
	evs, _ := s.Home(0, 4)
	if len(evs) != 4 {
		t.Fatalf("limit not applied: %d", len(evs))
	}
}

func TestSocialHTTP(t *testing.T) {
	s := NewSocialService(smallGraph(), nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/event?u=1&text=hi", nil))
	if rec.Code != 200 {
		t.Fatalf("event status = %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/home?u=0", nil))
	if rec.Code != 200 {
		t.Fatalf("home status = %d", rec.Code)
	}
	var evs []Event
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].User != 1 {
		t.Fatalf("home = %+v", evs)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/event?u=1&text=hi", nil))
	if rec.Code != 405 {
		t.Fatalf("GET /event status = %d, want 405", rec.Code)
	}
}

func TestAuctionLifecycle(t *testing.T) {
	a := NewAuctionService(5, nil)
	id, err := a.List(1, 2, "vintage cpu", 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PlaceBid(id, 7, 15); err != nil {
		t.Fatal(err)
	}
	if err := a.PlaceBid(id, 8, 12); err == nil {
		t.Fatal("bid below current price must fail")
	}
	it, bids, err := a.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if it.Price != 15 || it.Bids != 1 || len(bids) != 1 {
		t.Fatalf("item = %+v bids = %+v", it, bids)
	}
	if err := a.BuyNow(id, 9); err != nil {
		t.Fatal(err)
	}
	if err := a.PlaceBid(id, 10, 500); err == nil {
		t.Fatal("bid on sold item must fail")
	}
	it, _, _ = a.View(id)
	if !it.Sold || it.Price != 100 {
		t.Fatalf("after buy-now: %+v", it)
	}
}

func TestAuctionBrowse(t *testing.T) {
	a := NewAuctionService(3, nil)
	for i := 0; i < 30; i++ {
		if _, err := a.List(int32(i), int32(i%3), "item", 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	items, err := a.Browse(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("browse = %d items", len(items))
	}
	for _, it := range items {
		if it.Category != 1 {
			t.Fatalf("browse leaked category %d", it.Category)
		}
	}
	if _, err := a.Browse(99, 5); err == nil {
		t.Fatal("want error for bad category")
	}
}

func TestAuctionHTTP(t *testing.T) {
	a := NewAuctionService(4, nil)
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest("POST", "/list?u=1&cat=2&title=x&start=5&buynow=50", nil))
	if rec.Code != 200 {
		t.Fatalf("list status = %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest("POST", "/bid?id=1&u=3&amount=7.5", nil))
	if rec.Code != 200 {
		t.Fatalf("bid status = %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest("POST", "/bid?id=1&u=4&amount=6", nil))
	if rec.Code != 409 {
		t.Fatalf("low bid status = %d, want 409", rec.Code)
	}
	rec = httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest("GET", "/item?id=1", nil))
	if rec.Code != 200 {
		t.Fatalf("item status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest("POST", "/buy?id=1&u=5", nil))
	if rec.Code != 200 {
		t.Fatalf("buy status = %d: %s", rec.Code, rec.Body)
	}
}

// Property: the recorded highest price equals the max of accepted bids, and
// accepted bids are strictly increasing.
func TestBidMonotonicityProperty(t *testing.T) {
	f := func(amounts []uint16) bool {
		a := NewAuctionService(2, nil)
		id, _ := a.List(0, 0, "p", 1, 0)
		best := 1.0
		for _, amt := range amounts {
			v := float64(amt)
			err := a.PlaceBid(id, 1, v)
			if (err == nil) != (v > best) {
				return false
			}
			if err == nil {
				best = v
			}
		}
		it, _, _ := a.View(id)
		return it.Price == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentRequests(t *testing.T) {
	s := NewSocialService(smallGraph(), nil)
	a := NewAuctionService(4, nil)
	id, _ := a.List(0, 1, "c", 1, 1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _ = s.AddEvent(int32(g%3), "e", int64(i))
				_, _ = s.Home(0, 5)
				_ = a.PlaceBid(id, int32(g), float64(g*1000+i))
				_, _ = a.Browse(1, 5)
			}
		}(g)
	}
	wg.Wait()
	it, bids, _ := a.View(id)
	for i := 1; i < len(bids); i++ {
		if bids[i].Amount <= bids[i-1].Amount {
			t.Fatal("accepted bids not strictly increasing under concurrency")
		}
	}
	if len(bids) == 0 || it.Price != bids[len(bids)-1].Amount {
		t.Fatal("price does not match last accepted bid")
	}
}

func TestInstrumentedServices(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	s := NewSocialService(smallGraph(), cpu)
	_, _ = s.AddEvent(1, "x", 1)
	_, _ = s.Home(0, 5)
	a := NewAuctionService(3, cpu)
	id, _ := a.List(0, 0, "y", 1, 10)
	_ = a.PlaceBid(id, 1, 5)
	k := cpu.Counts()
	if k.Instructions() == 0 {
		t.Fatal("no instrumentation stream")
	}
	if k.IntInstrs < k.FPInstrs*10 {
		t.Error("services should be overwhelmingly integer code")
	}
}
