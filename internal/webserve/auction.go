package webserve

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/sim"
)

// Item is one auction listing.
type Item struct {
	ID       int64   `json:"id"`
	Seller   int32   `json:"seller"`
	Category int32   `json:"category"`
	Title    string  `json:"title"`
	Price    float64 `json:"price"` // current price (highest bid or start)
	BuyNow   float64 `json:"buyNow"`
	Sold     bool    `json:"sold"`
	Bids     int     `json:"bids"`
}

// Bid is one bid on an item.
type Bid struct {
	Item   int64   `json:"item"`
	Bidder int32   `json:"bidder"`
	Amount float64 `json:"amount"`
}

// AuctionService is the Rubis-like auction application: categorized items,
// bid placement with price checks, browse and buy-now paths.
type AuctionService struct {
	mu         sync.RWMutex
	items      []Item
	bids       map[int64][]Bid
	byCategory map[int32][]int64
	categories int

	cpu       *sim.CPU
	httpCode  *sim.CodeRegion
	logicCode *sim.CodeRegion
	dbCode    *sim.CodeRegion
	heap      sim.DataRegion
	rs        xrand
}

// NewAuctionService creates the service with the given category count.
func NewAuctionService(categories int, cpu *sim.CPU) *AuctionService {
	if categories <= 0 {
		categories = 20
	}
	a := &AuctionService{
		bids:       make(map[int64][]Bid),
		byCategory: make(map[int32][]int64),
		categories: categories,
		cpu:        cpu,
		httpCode:   cpu.NewCodeRegion("rubis.http", 320<<10),
		logicCode:  cpu.NewCodeRegion("rubis.logic", 256<<10),
		dbCode:     cpu.NewCodeRegion("rubis.db", 288<<10),
		heap:       cpu.Alloc("rubis.heap", 32<<20),
	}
	a.rs.seed(0xaf251af3b0f025b5)
	return a
}

func (a *AuctionService) off(r *sim.CodeRegion) uint64 { return a.rs.next() % r.Size() }

func (a *AuctionService) requestOverhead() {
	// Servlet container + EJB dispatch + JDBC layers per request.
	for hop := 0; hop < 3; hop++ {
		a.cpu.Code(a.httpCode, a.off(a.httpCode), 832)
		a.cpu.IntOps(420)
		a.cpu.Branches(105)
	}
	a.cpu.FPOps(4)
	// Session, account row, category tree, template fragments.
	for i := 0; i < 12; i++ {
		a.cpu.LoadR(a.heap, a.rs.next()%a.heap.Size, 48)
	}
}

// Categories returns the category count.
func (a *AuctionService) Categories() int { return a.categories }

// Items returns the listing count.
func (a *AuctionService) Items() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.items)
}

// List registers a new item and returns its ID.
func (a *AuctionService) List(seller int32, category int32, title string, start, buyNow float64) (int64, error) {
	if category < 0 || int(category) >= a.categories {
		return 0, fmt.Errorf("webserve: bad category %d", category)
	}
	a.requestOverhead()
	a.mu.Lock()
	defer a.mu.Unlock()
	id := int64(len(a.items) + 1)
	a.items = append(a.items, Item{
		ID: id, Seller: seller, Category: category, Title: title,
		Price: start, BuyNow: buyNow,
	})
	a.byCategory[category] = append(a.byCategory[category], id)
	a.cpu.Code(a.dbCode, a.off(a.dbCode), 704)
	a.cpu.StoreR(a.heap, uint64(id)*128%a.heap.Size, len(title)+64)
	a.cpu.IntOps(140)
	a.cpu.Branches(30)
	return id, nil
}

// Browse returns up to limit items in a category (most recent first).
func (a *AuctionService) Browse(category int32, limit int) ([]Item, error) {
	if category < 0 || int(category) >= a.categories {
		return nil, fmt.Errorf("webserve: bad category %d", category)
	}
	if limit <= 0 {
		limit = 25
	}
	a.requestOverhead()
	a.mu.RLock()
	defer a.mu.RUnlock()
	a.cpu.Code(a.logicCode, a.off(a.logicCode), 768)
	ids := a.byCategory[category]
	var out []Item
	for i := len(ids) - 1; i >= 0 && len(out) < limit; i-- {
		it := a.items[ids[i]-1]
		a.cpu.LoadR(a.heap, uint64(ids[i])*128%a.heap.Size, 96)
		a.cpu.IntOps(48)
		a.cpu.Branches(11)
		a.cpu.FPOps(2) // price formatting
		out = append(out, it)
	}
	return out, nil
}

// View returns one item and its bid history.
func (a *AuctionService) View(id int64) (Item, []Bid, error) {
	a.requestOverhead()
	a.mu.RLock()
	defer a.mu.RUnlock()
	if id < 1 || int(id) > len(a.items) {
		return Item{}, nil, fmt.Errorf("webserve: no item %d", id)
	}
	a.cpu.Code(a.dbCode, a.off(a.dbCode), 704)
	a.cpu.LoadR(a.heap, uint64(id)*128%a.heap.Size, 96)
	bs := a.bids[id]
	a.cpu.LoadR(a.heap, (uint64(id)*128+1<<20)%a.heap.Size, len(bs)*24+16)
	a.cpu.IntOps(80 + 8*len(bs))
	a.cpu.Branches(12)
	return a.items[id-1], bs, nil
}

// PlaceBid places a bid; it must exceed the current price.
func (a *AuctionService) PlaceBid(id int64, bidder int32, amount float64) error {
	a.requestOverhead()
	a.mu.Lock()
	defer a.mu.Unlock()
	if id < 1 || int(id) > len(a.items) {
		return fmt.Errorf("webserve: no item %d", id)
	}
	it := &a.items[id-1]
	a.cpu.Code(a.logicCode, a.off(a.logicCode), 768)
	a.cpu.LoadR(a.heap, uint64(id)*128%a.heap.Size, 96)
	a.cpu.FPOps(4) // price comparison and increment math
	a.cpu.IntOps(90)
	a.cpu.Branches(20)
	if it.Sold {
		return fmt.Errorf("webserve: item %d already sold", id)
	}
	if amount <= it.Price {
		return fmt.Errorf("webserve: bid %.2f not above current price %.2f", amount, it.Price)
	}
	it.Price = amount
	it.Bids++
	a.bids[id] = append(a.bids[id], Bid{Item: id, Bidder: bidder, Amount: amount})
	a.cpu.Code(a.dbCode, a.off(a.dbCode), 640)
	a.cpu.StoreR(a.heap, (uint64(id)*128+1<<20)%a.heap.Size, 24)
	return nil
}

// BuyNow purchases the item at its buy-now price.
func (a *AuctionService) BuyNow(id int64, buyer int32) error {
	a.requestOverhead()
	a.mu.Lock()
	defer a.mu.Unlock()
	if id < 1 || int(id) > len(a.items) {
		return fmt.Errorf("webserve: no item %d", id)
	}
	it := &a.items[id-1]
	a.cpu.Code(a.logicCode, a.off(a.logicCode), 640)
	a.cpu.IntOps(70)
	a.cpu.Branches(14)
	if it.Sold {
		return fmt.Errorf("webserve: item %d already sold", id)
	}
	if it.BuyNow <= 0 {
		return fmt.Errorf("webserve: item %d has no buy-now price", id)
	}
	it.Sold = true
	it.Price = it.BuyNow
	a.cpu.StoreR(a.heap, uint64(id)*128%a.heap.Size, 96)
	return nil
}

// ServeHTTP exposes /browse?cat=&k=, /item?id=, /bid?id=&u=&amount= (POST),
// /buy?id=&u= (POST), /list?u=&cat=&title=&start=&buynow= (POST).
func (a *AuctionService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch r.URL.Path {
	case "/browse":
		cat, err := strconv.Atoi(q.Get("cat"))
		if err != nil {
			http.Error(w, "bad cat", http.StatusBadRequest)
			return
		}
		k, _ := strconv.Atoi(q.Get("k"))
		items, err := a.Browse(int32(cat), k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, items)
	case "/item":
		id, err := strconv.ParseInt(q.Get("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		it, bids, err := a.View(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"item": it, "bids": bids})
	case "/bid":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		id, err1 := strconv.ParseInt(q.Get("id"), 10, 64)
		u, err2 := strconv.Atoi(q.Get("u"))
		amt, err3 := strconv.ParseFloat(q.Get("amount"), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			http.Error(w, "bad parameters", http.StatusBadRequest)
			return
		}
		if err := a.PlaceBid(id, int32(u), amt); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]string{"status": "ok"})
	case "/buy":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		id, err1 := strconv.ParseInt(q.Get("id"), 10, 64)
		u, err2 := strconv.Atoi(q.Get("u"))
		if err1 != nil || err2 != nil {
			http.Error(w, "bad parameters", http.StatusBadRequest)
			return
		}
		if err := a.BuyNow(id, int32(u)); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]string{"status": "sold"})
	case "/list":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		u, err1 := strconv.Atoi(q.Get("u"))
		cat, err2 := strconv.Atoi(q.Get("cat"))
		start, err3 := strconv.ParseFloat(q.Get("start"), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			http.Error(w, "bad parameters", http.StatusBadRequest)
			return
		}
		buynow, _ := strconv.ParseFloat(q.Get("buynow"), 64)
		id, err := a.List(int32(u), int32(cat), q.Get("title"), start, buynow)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]int64{"id": id})
	default:
		http.NotFound(w, r)
	}
}
