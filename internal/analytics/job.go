package analytics

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// JobKind names one of the distributed offline-analytics jobs — the
// paper's Table 4 micro and application benchmarks that run on
// distributed engines.
type JobKind string

// The supported jobs.
const (
	WordCount JobKind = "wordcount"
	Grep      JobKind = "grep"
	Sort      JobKind = "sort"
	PageRank  JobKind = "pagerank"
	KMeans    JobKind = "kmeans"
)

// Input sources for the record-oriented jobs.
const (
	// InputBDGS regenerates each map task's input slice from the
	// partition-stable BDGS generators (bdgs.LinesAt): no input ever
	// crosses the wire, exactly how the original BDGS deploys — the
	// generator runs on every node.
	InputBDGS = "bdgs"
	// InputEngine scans the executor's local storage engine: the
	// analytics job runs where the serving data already lives. Each
	// executor contributes the rows its own shards hold, so the job
	// wants replication 1 — with R > 1 the same row would be counted on
	// every owner.
	InputEngine = "engine"
)

// JobSpec describes one job. The coordinator normalizes it, plans it
// into tasks, and the same normalized spec drives the in-process
// reference (RunLocal) — both sides must see identical parameters for
// the distributed-equals-local guarantee to be checkable.
type JobSpec struct {
	Kind JobKind
	Seed int64

	// Trace is the job's wire-level trace id (DESIGN.md §11). The
	// coordinator assigns one per job when it is zero; it rides inside
	// every TaskSpec (the spec embeds the job) and stamps the frames of
	// every task submit and shuffle fetch, so one id follows the job
	// across coordinator, executors and peer fetches. It never changes
	// what the job computes.
	Trace uint64

	// Input selects the map input source for the record-oriented jobs:
	// InputBDGS (default) or InputEngine.
	Input string

	// Text-input sizing (wordcount, grep, sort with InputBDGS).
	Lines        int    // records (default 20000)
	WordsPerLine int    // mean words per record (default 10)
	Vocab        int    // text-model vocabulary (default 30000)
	Pattern      string // grep substring (default: a seed-derived word)

	// Graph sizing (pagerank).
	GraphBits  int // 2^GraphBits vertices (default 11)
	EdgeFactor int // out-edges per vertex (default 6)

	// Vector sizing (kmeans).
	Vectors int // vector count (default 4096)
	Dim     int // dimensionality (default 16)
	K       int // cluster count (default 8)

	// Iterations bounds the supersteps (pagerank, kmeans; default 5).
	Iterations int

	// MapTasks and Reducers size the task graph (defaults scale with
	// the executor count). Results are partitioning-independent — these
	// only trade scheduling granularity against overhead.
	MapTasks int
	Reducers int
}

// normalize fills defaults. execs is the live executor count (>= 1).
func (j JobSpec) normalize(execs int) (JobSpec, error) {
	switch j.Kind {
	case WordCount, Grep, Sort, PageRank, KMeans:
	default:
		return j, fmt.Errorf("analytics: unknown job kind %q", j.Kind)
	}
	if j.Input == "" {
		j.Input = InputBDGS
	}
	if j.Input != InputBDGS && j.Input != InputEngine {
		return j, fmt.Errorf("analytics: unknown input source %q", j.Input)
	}
	if j.Input == InputEngine && j.Kind != WordCount && j.Kind != Grep {
		return j, fmt.Errorf("analytics: input %q supports wordcount and grep, not %q", InputEngine, j.Kind)
	}
	if j.Lines <= 0 {
		j.Lines = 20000
	}
	if j.WordsPerLine <= 0 {
		j.WordsPerLine = 10
	}
	if j.Vocab <= 0 {
		j.Vocab = 30000
	}
	if j.GraphBits <= 0 {
		j.GraphBits = 11
	}
	if j.EdgeFactor <= 0 {
		j.EdgeFactor = 6
	}
	if j.Vectors <= 0 {
		j.Vectors = 4096
	}
	if j.Dim <= 0 {
		j.Dim = 16
	}
	if j.K <= 0 {
		j.K = 8
	}
	if j.Iterations <= 0 {
		j.Iterations = 5
	}
	if execs < 1 {
		execs = 1
	}
	if j.MapTasks <= 0 {
		j.MapTasks = 2 * execs
	}
	if j.Reducers <= 0 {
		j.Reducers = execs
	}
	if j.Kind == KMeans && j.K > j.Vectors {
		// The references seed centroids from the first K real vectors;
		// with K > Vectors the distributed engine would seed phantom
		// vectors and silently diverge — reject instead.
		return j, fmt.Errorf("analytics: kmeans needs Vectors >= K (%d < %d)", j.Vectors, j.K)
	}
	if j.Kind == Grep && j.Pattern == "" {
		j.Pattern = defaultPattern(j)
	}
	return j, nil
}

// validate rejects task specs the executor cannot safely run. The wire
// is a process boundary: a malformed or unnormalized spec must come
// back as an error frame, never take down the hosting daemon.
func (ts TaskSpec) validate() error {
	switch ts.Kind {
	case TaskRelease:
		return nil
	case TaskMap, TaskReduce:
	default:
		return fmt.Errorf("analytics: unknown task kind %q", ts.Kind)
	}
	j := ts.Job
	switch j.Kind {
	case WordCount, Grep, Sort, PageRank, KMeans:
	default:
		return fmt.Errorf("analytics: unknown job kind %q", j.Kind)
	}
	if j.MapTasks < 1 || j.Reducers < 1 {
		return fmt.Errorf("analytics: unnormalized job spec (%d map tasks, %d reducers)",
			j.MapTasks, j.Reducers)
	}
	if j.Kind == KMeans && (j.Dim < 1 || j.K < 1) {
		return fmt.Errorf("analytics: unnormalized kmeans spec (dim %d, k %d)", j.Dim, j.K)
	}
	switch ts.Kind {
	case TaskMap:
		if ts.Lo < 0 || ts.Hi < ts.Lo {
			return fmt.Errorf("analytics: map range [%d,%d) is invalid", ts.Lo, ts.Hi)
		}
		if j.Input != InputEngine && ts.Hi > j.Items() {
			return fmt.Errorf("analytics: map range [%d,%d) exceeds the %d-item input",
				ts.Lo, ts.Hi, j.Items())
		}
	case TaskReduce:
		if ts.Part < 0 || ts.Part >= j.Reducers {
			return fmt.Errorf("analytics: reduce partition %d out of %d", ts.Part, j.Reducers)
		}
	}
	return nil
}

// Items returns the size of the job's input index space — the record,
// vertex or vector count map tasks partition.
func (j JobSpec) Items() int {
	switch j.Kind {
	case PageRank:
		return 1 << uint(j.GraphBits)
	case KMeans:
		return j.Vectors
	default:
		return j.Lines
	}
}

// TaskKind separates the two task shapes.
type TaskKind string

// Task kinds.
const (
	// TaskMap reads an input slice (generator range or local engine
	// scan), applies the job's map function, and buckets the output
	// rows into Reducers shuffle partitions served to peers.
	TaskMap TaskKind = "map"
	// TaskReduce fetches one shuffle partition from every map task and
	// folds it into that partition's output rows.
	TaskReduce TaskKind = "reduce"
	// TaskRelease frees completed tasks' retained results and shuffle
	// output (TaskSpec.Release lists the ids). The coordinator sends one
	// per executor once a round's outputs are collected, so executor
	// memory holds one round's working set, not TaskTTL's worth; the TTL
	// prune stays as the backstop for releases lost with a connection.
	TaskRelease TaskKind = "release"
)

// FetchRef names one map task's shuffle output: where it lives and the
// executor-local id to fetch it by.
type FetchRef struct {
	Addr string
	Task uint64
}

// TaskSpec is one schedulable unit. It travels as the opaque spec bytes
// of transport.OpTaskSubmit (JSON — task specs are small; the bulk data
// moves through the binary shuffle rows).
type TaskSpec struct {
	Job  JobSpec
	Kind TaskKind

	// Map-task fields.
	MapID  int // index of this map task within the job
	Lo, Hi int // input index range [Lo,Hi)
	// Ranks carries the pagerank superstep state for [Lo,Hi); Cents the
	// kmeans centroids (full — they are K×Dim small).
	Ranks []float64
	Cents [][]float64

	// Reduce-task fields.
	Part  int        // shuffle partition this reduce owns
	Fetch []FetchRef // every map task's output, in MapID order

	// Release lists the task ids a TaskRelease frees.
	Release []uint64
}

// EncodeTaskSpec serializes a spec for the wire.
func EncodeTaskSpec(ts TaskSpec) []byte {
	b, err := json.Marshal(ts)
	if err != nil {
		// TaskSpec contains only marshalable fields; this is unreachable
		// short of a programmer error.
		panic(fmt.Sprintf("analytics: encode task spec: %v", err))
	}
	return b
}

// DecodeTaskSpec parses wire bytes back into a spec.
func DecodeTaskSpec(b []byte) (TaskSpec, error) {
	var ts TaskSpec
	if err := json.Unmarshal(b, &ts); err != nil {
		return ts, fmt.Errorf("analytics: decode task spec: %w", err)
	}
	return ts, nil
}

// TaskResult is the small completion record a finished task exposes
// (fetched through the result pseudo-partition). Bulk output rides in
// Rows as encoded shuffle rows.
type TaskResult struct {
	MapID        int
	Part         int
	InputRows    int
	OutputRows   int
	ShuffleBytes int64 // bytes a reduce task pulled across the shuffle
	DurationNs   int64
	// Addr is the executor's advertised shuffle address (its configured
	// Self). The coordinator builds reduce fetch plans from it — not
	// from its own dial address, which peers may not be able to reach
	// (bdserve -advertise exists exactly for that split).
	Addr string
	Rows []byte // reduce output rows (empty for map tasks)
}

// ResultPart is the reserved ShuffleFetch partition index that returns a
// completed task's encoded TaskResult instead of shuffle data, so large
// reduce outputs ride the same chunked fetch path as shuffle partitions.
const ResultPart = ^uint32(0)

// EncodeTaskResult serializes a result.
func EncodeTaskResult(tr TaskResult) []byte {
	b, err := json.Marshal(tr)
	if err != nil {
		panic(fmt.Sprintf("analytics: encode task result: %v", err))
	}
	return b
}

// DecodeTaskResult parses a result.
func DecodeTaskResult(b []byte) (TaskResult, error) {
	var tr TaskResult
	if err := json.Unmarshal(b, &tr); err != nil {
		return tr, fmt.Errorf("analytics: decode task result: %w", err)
	}
	return tr, nil
}

// ---- shuffle row codec ---------------------------------------------------
//
// A shuffle partition is a flat byte stream of rows, each a length-
// prefixed key and value. Keys and values are opaque: text jobs store
// strings, the numeric jobs pack binary (the packers in kernels.go).
// The encoding is deliberately the transport's u32-length-field idiom.

// ErrRowCorrupt reports a shuffle row stream that does not parse.
var ErrRowCorrupt = errors.New("analytics: corrupt shuffle rows")

// AppendRow appends one key/value row to dst.
func AppendRow(dst, key, val []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(val)))
	return append(dst, val...)
}

// WalkRows calls fn for every row in b, in order. The slices alias b.
func WalkRows(b []byte, fn func(key, val []byte) error) error {
	for len(b) > 0 {
		if len(b) < 4 {
			return ErrRowCorrupt
		}
		kl := binary.BigEndian.Uint32(b)
		if uint64(len(b)) < 4+uint64(kl)+4 {
			return ErrRowCorrupt
		}
		key := b[4 : 4+kl]
		b = b[4+kl:]
		vl := binary.BigEndian.Uint32(b)
		if uint64(len(b)) < 4+uint64(vl) {
			return ErrRowCorrupt
		}
		val := b[4 : 4+vl]
		b = b[4+vl:]
		if err := fn(key, val); err != nil {
			return err
		}
	}
	return nil
}
