package analytics

import (
	"testing"

	"repro/internal/obs"
)

// TestJobTracePropagatesToExecutors runs one distributed job and asserts
// the coordinator-assigned trace id is observable in every executor
// server's span log — the analytics counterpart of the transport
// package's KV propagation test, crossing two process-shaped boundaries
// (coordinator → executor submit, executor → peer shuffle fetch).
func TestJobTracePropagatesToExecutors(t *testing.T) {
	nodes := startNodes(t, 2)
	coord := newTestCoordinator(t, nodes)

	coordReg := obs.NewRegistry()
	coord.RegisterMetrics(coordReg)
	// In production each executor lives in its own process with its own
	// registry (bdserve); mirror that here.
	execRegs := make([]*obs.Registry, len(nodes))
	for i, n := range nodes {
		execRegs[i] = obs.NewRegistry()
		n.ex.RegisterMetrics(execRegs[i])
	}

	res, err := coord.Run(smallText(WordCount))
	if err != nil {
		t.Fatal(err)
	}
	if res.Job.Trace == 0 {
		t.Fatal("coordinator did not assign a job trace id")
	}
	for i, n := range nodes {
		spans := n.srv.Spans().ByTrace(res.Job.Trace)
		if len(spans) == 0 {
			t.Fatalf("node %d saw no spans for job trace %d", i, res.Job.Trace)
		}
		sawSubmit := false
		for _, s := range spans {
			if s.Name == "server/task-submit" {
				sawSubmit = true
			}
		}
		if !sawSubmit {
			t.Fatalf("node %d spans lack a task-submit hop: %+v", i, spans)
		}
	}

	snap := coordReg.Snapshot()
	if snap["bd_analytics_jobs_total"].Float() != 1 {
		t.Errorf("jobs counter = %v, want 1", snap["bd_analytics_jobs_total"])
	}
	if snap["bd_analytics_shuffle_bytes_total"].Float() <= 0 {
		t.Errorf("shuffle bytes counter = %v, want > 0", snap["bd_analytics_shuffle_bytes_total"])
	}
	var maps, reduces float64
	for _, er := range execRegs {
		s := er.Snapshot()
		maps += s[`bd_analytics_tasks_total{kind="map"}`].Float()
		reduces += s[`bd_analytics_tasks_total{kind="reduce"}`].Float()
	}
	if int(maps) != res.MapTasks || int(reduces) != res.ReduceTasks {
		t.Errorf("executor task counters = %v maps / %v reduces, result says %d / %d",
			maps, reduces, res.MapTasks, res.ReduceTasks)
	}
}

// TestTracedJobTasksCarryJobTrace asserts every task spec inherits the
// job's trace through the JSON codec unchanged (the trace rides the
// spec, not a side channel).
func TestTracedJobTasksCarryJobTrace(t *testing.T) {
	job := smallText(Grep)
	job.Trace = 77
	spec := TaskSpec{Job: job, Kind: TaskMap, MapID: 0, Lo: 0, Hi: 10}
	decoded, err := DecodeTaskSpec(EncodeTaskSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Job.Trace != 77 {
		t.Fatalf("trace lost in the spec codec: %d", decoded.Job.Trace)
	}
}
