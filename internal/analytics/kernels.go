package analytics

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/bdgs"
)

// The job kernels shared by the distributed executor and the in-process
// references. Distributed-equals-local holds because both sides run
// exactly these functions over exactly the partition-stable inputs; the
// only thing that differs is where the work happens.

// textModels caches TextModel construction per vocabulary size — every
// map task regenerates its input slice, and the model (vocabulary
// synthesis) is the expensive part, not the lines.
var textModels sync.Map // int -> *bdgs.TextModel

func textModel(vocab int) *bdgs.TextModel {
	if m, ok := textModels.Load(vocab); ok {
		return m.(*bdgs.TextModel)
	}
	m := bdgs.NewTextModel(vocab)
	actual, _ := textModels.LoadOrStore(vocab, m)
	return actual.(*bdgs.TextModel)
}

// genLines regenerates input records [lo,hi) for the text jobs.
func genLines(j JobSpec, lo, hi int) [][]byte {
	return textModel(j.Vocab).LinesAt(j.Seed, lo, hi, j.WordsPerLine)
}

// defaultPattern derives the grep pattern the way the Grep workload
// does: a seed-dependent vocabulary word — present but selective.
func defaultPattern(j JobSpec) string {
	lines := textModel(j.Vocab).LinesAt(j.Seed+77, 0, 1, 1)
	return string(lines[0])
}

// graphs caches the stable web graph per (seed, bits, edgeFactor): every
// pagerank map task needs the adjacency of its vertex range, and the
// graph is deterministic, so executors build it once and share it.
var graphs sync.Map // [3]int64 -> *bdgs.Graph

func webGraph(j JobSpec) *bdgs.Graph {
	key := [3]int64{j.Seed, int64(j.GraphBits), int64(j.EdgeFactor)}
	if g, ok := graphs.Load(key); ok {
		return g.(*bdgs.Graph)
	}
	g := bdgs.StableGraph(j.Seed, j.GraphBits, j.EdgeFactor, bdgs.WebGraphParams(), true)
	actual, _ := graphs.LoadOrStore(key, g)
	return actual.(*bdgs.Graph)
}

// tokenize splits a record on single spaces, exactly as the WordCount
// workload's mapper does, so distributed and local word boundaries agree.
func tokenize(v []byte, emit func(word []byte)) {
	st := -1
	for i := 0; i <= len(v); i++ {
		if i < len(v) && v[i] != ' ' {
			if st < 0 {
				st = i
			}
			continue
		}
		if st >= 0 {
			emit(v[st:i])
			st = -1
		}
	}
}

// grepMatch reports whether the record contains the pattern.
func grepMatch(v []byte, pattern string) bool {
	return bytes.Contains(v, []byte(pattern))
}

// partitionText hashes a text key to its shuffle partition with the same
// FNV-32a rule the in-process mapreduce engine uses.
func partitionText(key []byte, n int) int {
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// partitionU32 spreads numeric keys (vertices, cluster ids) across
// partitions with a mixed hash, so skewed id spaces still balance.
func partitionU32(key uint32, n int) int {
	v := uint64(key)
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return int(v % uint64(n))
}

// ---- numeric row packing -------------------------------------------------

func u32Bytes(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

func u32From(b []byte) (uint32, bool) {
	if len(b) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(b), true
}

// contribBytes packs one pagerank contribution: source vertex + share.
func contribBytes(src uint32, share float64) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[:4], src)
	binary.BigEndian.PutUint64(b[4:], math.Float64bits(share))
	return b[:]
}

func contribFrom(b []byte) (src uint32, share float64, ok bool) {
	if len(b) != 12 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(b[:4]),
		math.Float64frombits(binary.BigEndian.Uint64(b[4:])), true
}

// sumBytes packs one pagerank reduce output: the folded rank mass.
func sumBytes(sum float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(sum))
	return b[:]
}

func sumFrom(b []byte) (float64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), true
}

// accBytes packs one kmeans reduce output: member count + summed vector.
func accBytes(n int64, sum []float64) []byte {
	b := make([]byte, 8+8*len(sum))
	binary.BigEndian.PutUint64(b, uint64(n))
	for i, x := range sum {
		binary.BigEndian.PutUint64(b[8+8*i:], math.Float64bits(x))
	}
	return b
}

func accFrom(b []byte) (n int64, sum []float64, ok bool) {
	if len(b) < 8 || (len(b)-8)%8 != 0 {
		return 0, nil, false
	}
	n = int64(binary.BigEndian.Uint64(b))
	sum = make([]float64, (len(b)-8)/8)
	for i := range sum {
		sum[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8+8*i:]))
	}
	return n, sum, true
}

// kmCenters caches the latent mixture centers per (seed, dim, k): the
// distributed reduce regenerates member vectors one index at a time,
// and rebuilding the centers per vector would dominate it.
var kmCenters sync.Map // [3]int64 -> [][]float64

func kmeansCenters(j JobSpec) [][]float64 {
	key := [3]int64{j.Seed, int64(j.Dim), int64(j.K)}
	if c, ok := kmCenters.Load(key); ok {
		return c.([][]float64)
	}
	c := bdgs.StableCenters(j.Seed, j.Dim, j.K)
	actual, _ := kmCenters.LoadOrStore(key, c)
	return actual.([][]float64)
}

// kmeansVectors regenerates vectors [lo,hi) from the partition-stable
// generator.
func kmeansVectors(j JobSpec, lo, hi int) [][]float64 {
	centers := kmeansCenters(j)
	out := make([][]float64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, bdgs.StableVectorAt(centers, j.Seed, i))
	}
	return out
}

// kmeansVectorAt regenerates one vector against the cached centers.
func kmeansVectorAt(j JobSpec, i int) []float64 {
	return bdgs.StableVectorAt(kmeansCenters(j), j.Seed, i)
}

// nearestCentroid is the assignment step, iterating clusters in
// ascending order with a strict < so ties break to the lowest id —
// byte-identical to the KMeans workload's loop.
func nearestCentroid(v []float64, cents [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c := range cents {
		d := 0.0
		for j, x := range v {
			diff := x - cents[c][j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
