package analytics

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Coordinator errors.
var (
	// ErrNoExecutors reports a job with every executor down.
	ErrNoExecutors = errors.New("analytics: no live executors")
	// ErrJobFailed reports a job that exhausted its retry budget.
	ErrJobFailed = errors.New("analytics: job failed")
)

// CoordinatorOptions tunes a Coordinator. The zero value uses defaults.
type CoordinatorOptions struct {
	// Client configures the per-executor control connections.
	Client transport.ClientOptions
	// PollInterval is the task-status poll period (default 1ms).
	PollInterval time.Duration
	// TaskAttempts is how many executors one task is tried on before
	// the job fails (default 3).
	TaskAttempts int
	// Rounds bounds whole map-phase re-runs after shuffle data is lost
	// with a dead executor (default 3).
	Rounds int
}

func (o *CoordinatorOptions) normalize() {
	if o.PollInterval <= 0 {
		o.PollInterval = time.Millisecond
	}
	if o.TaskAttempts <= 0 {
		o.TaskAttempts = 3
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
}

// executorRef is the coordinator's handle on one executor server.
type executorRef struct {
	addr string
	c    *transport.Client
	down atomic.Bool
}

// Coordinator plans jobs over a set of executor servers, drives their
// tasks, reschedules work that lands on dead members, and folds the
// reduce outputs into the job result. It is the analytics counterpart
// of the KV coordinator: executors are ring members that compute.
type Coordinator struct {
	opts  CoordinatorOptions
	execs []*executorRef
	next  atomic.Uint64

	mu       sync.Mutex
	lats     map[string]*core.LatencyRecorder // per-executor task durations
	retries  int
	shuffle  int64
	recovery int // lost-shuffle map re-run rounds this job

	// Cumulative counters across the coordinator's lifetime (the mu
	// fields above reset per job). Surfaced by RegisterMetrics.
	metrics coordMetrics
}

// coordMetrics is the coordinator's always-on counter block
// (bd_analytics_* families, DESIGN.md §11).
type coordMetrics struct {
	jobs         obs.Counter // jobs started
	retries      obs.Counter // task attempts past the first
	shuffleBytes obs.Counter // bytes pulled across shuffle fetches
	recoveries   obs.Counter // lost-shuffle map re-run rounds
}

// RegisterMetrics exports the coordinator's job counters into r under
// the bd_analytics_* family.
func (c *Coordinator) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("bd_analytics_jobs_total", "Analytics jobs started.", nil,
		&c.metrics.jobs)
	r.RegisterCounter("bd_analytics_task_retries_total", "Task attempts beyond the first, after executor or task failures.", nil,
		&c.metrics.retries)
	r.RegisterCounter("bd_analytics_shuffle_bytes_total", "Bytes pulled across shuffle fetches, as reported by reduce tasks.", nil,
		&c.metrics.shuffleBytes)
	r.RegisterCounter("bd_analytics_recovery_rounds_total", "Map-phase re-run rounds after shuffle output died with an executor.", nil,
		&c.metrics.recoveries)
	r.GaugeFunc("bd_analytics_executors", "Configured executor count.", nil,
		func() float64 { return float64(len(c.execs)) })
	r.GaugeFunc("bd_analytics_executors_down", "Executors currently marked down.", nil,
		func() float64 { return float64(len(c.execs) - len(c.live())) })
}

// NewCoordinator dials every executor address. All must answer the dial;
// failures after that are the failure handler's business.
func NewCoordinator(addrs []string, opts CoordinatorOptions) (*Coordinator, error) {
	opts.normalize()
	if len(addrs) == 0 {
		return nil, ErrNoExecutors
	}
	c := &Coordinator{opts: opts, lats: map[string]*core.LatencyRecorder{}}
	for _, addr := range addrs {
		cl, err := transport.Dial(addr, opts.Client)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("analytics: dial executor %s: %w", addr, err)
		}
		c.execs = append(c.execs, &executorRef{addr: addr, c: cl})
	}
	return c, nil
}

// Close drops the executor connections (the executors keep running).
func (c *Coordinator) Close() {
	for _, e := range c.execs {
		e.c.Close()
	}
}

// Executors returns the configured executor count.
func (c *Coordinator) Executors() int { return len(c.execs) }

// live returns the executors not currently marked down.
func (c *Coordinator) live() []*executorRef {
	var out []*executorRef
	for _, e := range c.execs {
		if !e.down.Load() {
			out = append(out, e)
		}
	}
	return out
}

// pick selects the next live executor round-robin.
func (c *Coordinator) pick() (*executorRef, error) {
	for range c.execs {
		e := c.execs[int(c.next.Add(1))%len(c.execs)]
		if !e.down.Load() {
			return e, nil
		}
	}
	return nil, ErrNoExecutors
}

// suspect pings an executor after a failure and marks it down if the
// probe misses. A member that still answers keeps serving (the failure
// was the task's, or transient).
func (c *Coordinator) suspect(e *executorRef) {
	if err := e.c.Ping(); err != nil {
		e.down.Store(true)
	}
}

// recordTask folds one finished task's executor-measured duration into
// the per-executor latency digests.
func (c *Coordinator) recordTask(addr string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.lats[addr]
	if r == nil {
		r = &core.LatencyRecorder{}
		c.lats[addr] = r
	}
	r.Record(d)
}

// taskOutcome is one successfully completed task.
type taskOutcome struct {
	exec   *executorRef
	taskID uint64
	result TaskResult
}

// runTask drives one task to completion: submit, poll, fetch result —
// retrying on other live executors when the assigned one fails or the
// task errors. pinned pins the task to one executor (engine-input map
// tasks read that member's local data; running them elsewhere would
// read the wrong shards, so a dead pinned member fails the task).
func (c *Coordinator) runTask(spec TaskSpec, pinned *executorRef) (taskOutcome, error) {
	var lastErr error
	for attempt := 0; attempt < c.opts.TaskAttempts; attempt++ {
		e := pinned
		if e == nil {
			var err error
			if e, err = c.pick(); err != nil {
				return taskOutcome{}, err
			}
		} else if e.down.Load() {
			return taskOutcome{}, fmt.Errorf("analytics: executor %s holding the task's data is down: %w",
				e.addr, ErrJobFailed)
		}
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			c.metrics.retries.Inc()
		}
		out, err := c.tryTask(e, spec)
		if err == nil {
			return out, nil
		}
		lastErr = err
		c.suspect(e)
	}
	return taskOutcome{}, fmt.Errorf("analytics: task exhausted %d attempts: %w",
		c.opts.TaskAttempts, lastErr)
}

// tryTask runs one task attempt on one executor. The submit and the
// result fetch carry the job's trace id, so the executor-side server
// spans line up under the same trace as the coordinator's client spans;
// the status polls stay untraced — they are cadence, not dataflow.
func (c *Coordinator) tryTask(e *executorRef, spec TaskSpec) (taskOutcome, error) {
	trace := spec.Job.Trace
	id, err := e.c.SubmitTaskTraced(trace, EncodeTaskSpec(spec))
	if err != nil {
		return taskOutcome{}, err
	}
	for {
		done, taskErr, err := e.c.TaskStatus(id)
		if err != nil {
			return taskOutcome{}, err
		}
		if taskErr != nil {
			return taskOutcome{}, taskErr
		}
		if done {
			break
		}
		time.Sleep(c.opts.PollInterval)
	}
	raw, err := e.c.ShuffleFetchTraced(trace, id, ResultPart)
	if err != nil {
		return taskOutcome{}, err
	}
	res, err := DecodeTaskResult(raw)
	if err != nil {
		return taskOutcome{}, err
	}
	c.recordTask(e.addr, time.Duration(res.DurationNs))
	c.mu.Lock()
	c.shuffle += res.ShuffleBytes
	c.mu.Unlock()
	c.metrics.shuffleBytes.Add(uint64(res.ShuffleBytes))
	return taskOutcome{exec: e, taskID: id, result: res}, nil
}

// runPhase drives a set of tasks concurrently. pinned maps task index to
// a required executor (nil entries float).
func (c *Coordinator) runPhase(specs []TaskSpec, pinned []*executorRef) ([]taskOutcome, error) {
	outs := make([]taskOutcome, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pin *executorRef
			if pinned != nil {
				pin = pinned[i]
			}
			outs[i], errs[i] = c.runTask(specs[i], pin)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return outs, err
		}
	}
	return outs, nil
}

// mapReduceRound runs one full map phase + reduce phase, re-running map
// tasks whose shuffle output died with an executor between the phases.
// makeMap builds map task i over input slice [lo,hi); makeReduce builds
// the reduce task for partition part given every map task's output ref.
// prev (may be nil — job-level callers always start fresh) seeds map
// outcomes that already exist, exposing the recovery window the tests
// drive deterministically: outcomes whose executor has since been
// marked down are re-run, and deterministic regeneration makes that
// re-execution safe.
func (c *Coordinator) mapReduceRound(job JobSpec, prev []taskOutcome,
	makeMap func(mapID, lo, hi int) TaskSpec,
	makeReduce func(part int, fetch []FetchRef) TaskSpec,
) (mapOuts []taskOutcome, reduceOuts []taskOutcome, err error) {
	items := job.Items()
	if len(prev) == job.MapTasks {
		mapOuts = append([]taskOutcome(nil), prev...)
	}
	var lastErr error
	for round := 0; round < c.opts.Rounds; round++ {
		if round > 0 {
			// A reduce phase already failed and we are re-running map
			// tasks whose shuffle output died: that is one recovery round.
			c.mu.Lock()
			c.recovery++
			c.mu.Unlock()
			c.metrics.recoveries.Inc()
		}
		// (Re-)run every map task that has no surviving outcome.
		var specs []TaskSpec
		var missing []int
		for m := 0; m < job.MapTasks; m++ {
			if mapOuts != nil && mapOuts[m].exec != nil && !mapOuts[m].exec.down.Load() {
				continue
			}
			lo, hi := items*m/job.MapTasks, items*(m+1)/job.MapTasks
			specs = append(specs, makeMap(m, lo, hi))
			missing = append(missing, m)
		}
		if mapOuts == nil {
			mapOuts = make([]taskOutcome, job.MapTasks)
		}
		if len(specs) > 0 {
			outs, err := c.runPhase(specs, nil)
			if err != nil {
				return nil, nil, err
			}
			for i, m := range missing {
				mapOuts[m] = outs[i]
			}
		}
		fetch := make([]FetchRef, job.MapTasks)
		for m, out := range mapOuts {
			fetch[m] = FetchRef{Addr: fetchAddr(out), Task: out.taskID}
		}
		reduceSpecs := make([]TaskSpec, job.Reducers)
		for p := 0; p < job.Reducers; p++ {
			reduceSpecs[p] = makeReduce(p, fetch)
		}
		reduceOuts, err = c.runPhase(reduceSpecs, nil)
		if err == nil {
			return mapOuts, reduceOuts, nil
		}
		lastErr = err
		// A reduce failed terminally — most likely its shuffle sources
		// died. Probe everything; the next round re-runs the map tasks
		// whose hosts are gone and rebuilds the fetch plan.
		for _, e := range c.execs {
			if !e.down.Load() {
				c.suspect(e)
			}
		}
	}
	return nil, nil, fmt.Errorf("analytics: %d map/reduce rounds failed: %w (last: %v)",
		c.opts.Rounds, ErrJobFailed, lastErr)
}

// fetchAddr is the address peers fetch a map task's shuffle output
// from: the executor's own advertised address (reported in its task
// results — bdserve -advertise), falling back to the coordinator's dial
// address for executors that advertise nothing.
func fetchAddr(out taskOutcome) string {
	if out.result.Addr != "" {
		return out.result.Addr
	}
	return out.exec.addr
}

// release frees a finished round's retained task state on its
// executors: one fire-and-forget TaskRelease per executor, so memory
// holds one round's working set instead of TaskTTL's worth. A release
// lost with a broken connection is covered by the executor's TTL prune.
func (c *Coordinator) release(groups ...[]taskOutcome) {
	byExec := map[*executorRef][]uint64{}
	for _, g := range groups {
		for _, out := range g {
			if out.exec != nil && out.taskID != 0 {
				byExec[out.exec] = append(byExec[out.exec], out.taskID)
			}
		}
	}
	for e, ids := range byExec {
		spec := TaskSpec{Kind: TaskRelease, Release: ids}
		go func(e *executorRef, spec TaskSpec) {
			_, _ = e.c.SubmitTask(EncodeTaskSpec(spec))
		}(e, spec)
	}
}

// JobResult is one job's output and accounting.
type JobResult struct {
	Job JobSpec // the normalized spec that actually ran

	// Pairs is the record-job output (wordcount, grep, sort), globally
	// sorted by key then value — the same canonical order
	// mapreduce.Result.Sorted returns.
	Pairs []mapreduce.KV
	// Ranks is the pagerank output, indexed by vertex.
	Ranks []float64
	// Centroids and ClusterSizes are the kmeans output, indexed by
	// cluster id.
	Centroids    [][]float64
	ClusterSizes []int64

	// InputRecords is the record count map tasks actually read — for
	// engine-input jobs the scanned row count (Items() sizes generated
	// inputs only).
	InputRecords int

	MapTasks    int
	ReduceTasks int
	Retries     int
	// RecoveryRounds counts map-phase re-runs after shuffle output died
	// with an executor (0 on a healthy run). The job's trace id is
	// Job.Trace — grep it in the executors' /tracez span logs.
	RecoveryRounds int
	// ShuffleBytes counts bytes pulled across shuffle fetches.
	ShuffleBytes int64
	Elapsed      time.Duration

	// TaskLatency digests every task's executor-measured runtime;
	// PerExecutor splits it by executor address. The coordinator builds
	// TaskLatency by merging the per-executor recorders
	// (core.LatencyRecorder.Merge).
	TaskLatency core.LatencySummary
	PerExecutor map[string]core.LatencySummary
}

// Digest folds the job output into one comparable fingerprint (FNV-64a
// over the canonical output order), so two runs — distributed vs local,
// 2 nodes vs 4 — can be diffed with a single line.
func (r *JobResult) Digest() uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, kv := range r.Pairs {
		h.Write([]byte(kv.Key))
		h.Write([]byte{0})
		h.Write([]byte(kv.Value))
		h.Write([]byte{1})
	}
	for _, rank := range r.Ranks {
		putU64(b[:], math.Float64bits(rank))
		h.Write(b[:])
	}
	for i, cent := range r.Centroids {
		for _, x := range cent {
			putU64(b[:], math.Float64bits(x))
			h.Write(b[:])
		}
		if i < len(r.ClusterSizes) {
			putU64(b[:], uint64(r.ClusterSizes[i]))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

func putU64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// finish stamps the accounting fields shared by every job kind.
func (c *Coordinator) finish(r *JobResult, start time.Time) {
	r.Elapsed = time.Since(start)
	c.mu.Lock()
	defer c.mu.Unlock()
	r.Retries = c.retries
	r.RecoveryRounds = c.recovery
	r.ShuffleBytes = c.shuffle
	r.PerExecutor = map[string]core.LatencySummary{}
	var all core.LatencyRecorder
	addrs := make([]string, 0, len(c.lats))
	for addr := range c.lats {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		r.PerExecutor[addr] = c.lats[addr].Summary()
		all.Merge(c.lats[addr])
	}
	r.TaskLatency = all.Summary()
	// Reset the per-job accounting so a reused coordinator starts clean.
	c.lats = map[string]*core.LatencyRecorder{}
	c.retries = 0
	c.shuffle = 0
	c.recovery = 0
}

// Run executes one job across the executors.
func (c *Coordinator) Run(job JobSpec) (*JobResult, error) {
	// A down verdict is not forever: re-probe down members at job
	// start, so a server that restarted (or a transient ping miss) is
	// back in the fleet for the next job instead of excluded for the
	// coordinator's lifetime.
	for _, e := range c.execs {
		if e.down.Load() && e.c.Ping() == nil {
			e.down.Store(false)
		}
	}
	job, err := job.normalize(len(c.live()))
	if err != nil {
		return nil, err
	}
	if job.Trace == 0 {
		job.Trace = obs.NewTraceID()
	}
	c.metrics.jobs.Inc()
	switch job.Kind {
	case WordCount, Grep, Sort:
		return c.runRecords(job)
	case PageRank:
		return c.runPageRank(job)
	case KMeans:
		return c.runKMeans(job)
	}
	return nil, fmt.Errorf("analytics: unknown job kind %q", job.Kind)
}

// runRecords runs the one-pass record jobs.
func (c *Coordinator) runRecords(job JobSpec) (*JobResult, error) {
	start := time.Now()
	res := &JobResult{Job: job}
	if job.Input == InputEngine {
		return c.runEngineRecords(job, start)
	}
	makeMap := func(mapID, lo, hi int) TaskSpec {
		return TaskSpec{Job: job, Kind: TaskMap, MapID: mapID, Lo: lo, Hi: hi}
	}
	makeReduce := func(part int, fetch []FetchRef) TaskSpec {
		return TaskSpec{Job: job, Kind: TaskReduce, Part: part, Fetch: fetch}
	}
	mapOuts, reduceOuts, err := c.mapReduceRound(job, nil, makeMap, makeReduce)
	if err != nil {
		return nil, err
	}
	if err := collectPairs(res, reduceOuts); err != nil {
		return nil, err
	}
	c.release(mapOuts, reduceOuts)
	res.MapTasks, res.ReduceTasks = job.MapTasks, job.Reducers
	c.finish(res, start)
	return res, nil
}

// runEngineRecords runs wordcount/grep over the executors' local engine
// data: one pinned map task per executor — the task must run where the
// shards live.
func (c *Coordinator) runEngineRecords(job JobSpec, start time.Time) (*JobResult, error) {
	live := c.live()
	if len(live) == 0 {
		return nil, ErrNoExecutors
	}
	job.MapTasks = len(live)
	specs := make([]TaskSpec, len(live))
	for i := range live {
		specs[i] = TaskSpec{Job: job, Kind: TaskMap, MapID: i}
	}
	mapOuts, err := c.runPhase(specs, live)
	if err != nil {
		return nil, err
	}
	fetch := make([]FetchRef, len(mapOuts))
	for i, out := range mapOuts {
		fetch[i] = FetchRef{Addr: fetchAddr(out), Task: out.taskID}
	}
	reduceSpecs := make([]TaskSpec, job.Reducers)
	for p := 0; p < job.Reducers; p++ {
		reduceSpecs[p] = TaskSpec{Job: job, Kind: TaskReduce, Part: p, Fetch: fetch}
	}
	reduceOuts, err := c.runPhase(reduceSpecs, nil)
	if err != nil {
		return nil, err
	}
	res := &JobResult{Job: job}
	if err := collectPairs(res, reduceOuts); err != nil {
		return nil, err
	}
	for _, out := range mapOuts {
		res.InputRecords += out.result.InputRows
	}
	c.release(mapOuts, reduceOuts)
	res.MapTasks, res.ReduceTasks = job.MapTasks, job.Reducers
	c.finish(res, start)
	return res, nil
}

// collectPairs folds reduce outputs into the canonical sorted pair list.
func collectPairs(res *JobResult, reduceOuts []taskOutcome) error {
	for _, out := range reduceOuts {
		if err := WalkRows(out.result.Rows, func(k, v []byte) error {
			res.Pairs = append(res.Pairs, mapreduce.KV{Key: string(k), Value: string(v)})
			return nil
		}); err != nil {
			return err
		}
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].Key != res.Pairs[j].Key {
			return res.Pairs[i].Key < res.Pairs[j].Key
		}
		return res.Pairs[i].Value < res.Pairs[j].Value
	})
	return nil
}

// runPageRank drives the damped power iteration: each superstep is one
// distributed map/reduce round, with the rank vector carried by the
// coordinator and its slices shipped inside the map task specs.
func (c *Coordinator) runPageRank(job JobSpec) (*JobResult, error) {
	start := time.Now()
	n := job.Items()
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1.0 / float64(n)
	}
	const damping = 0.85
	reduces := 0
	for it := 0; it < job.Iterations; it++ {
		makeMap := func(mapID, lo, hi int) TaskSpec {
			return TaskSpec{Job: job, Kind: TaskMap, MapID: mapID, Lo: lo, Hi: hi,
				Ranks: ranks[lo:hi]}
		}
		makeReduce := func(part int, fetch []FetchRef) TaskSpec {
			return TaskSpec{Job: job, Kind: TaskReduce, Part: part, Fetch: fetch}
		}
		mapOuts, reduceOuts, err := c.mapReduceRound(job, nil, makeMap, makeReduce)
		if err != nil {
			return nil, fmt.Errorf("analytics: pagerank superstep %d: %w", it, err)
		}
		reduces += job.Reducers
		base := (1 - damping) / float64(n)
		next := make([]float64, n)
		for i := range next {
			next[i] = base
		}
		for _, out := range reduceOuts {
			if err := WalkRows(out.result.Rows, func(k, v []byte) error {
				dest, ok := u32From(k)
				if !ok {
					return ErrRowCorrupt
				}
				sum, ok2 := sumFrom(v)
				if !ok2 {
					return ErrRowCorrupt
				}
				next[dest] += damping * sum
				return nil
			}); err != nil {
				return nil, err
			}
		}
		c.release(mapOuts, reduceOuts) // superstep consumed: free its outputs
		ranks = next
	}
	res := &JobResult{Job: job, Ranks: ranks,
		MapTasks: job.MapTasks * job.Iterations, ReduceTasks: reduces}
	c.finish(res, start)
	return res, nil
}

// runKMeans drives Lloyd's algorithm: centroids live at the coordinator
// and travel whole inside each map task spec; the update step folds the
// per-cluster sums the reduces return.
func (c *Coordinator) runKMeans(job JobSpec) (*JobResult, error) {
	start := time.Now()
	// Initial centroids: the first K vectors, as the KMeans workload.
	cents := kmeansVectors(job, 0, job.K)
	sizes := make([]int64, job.K)
	reduces, maps := 0, 0
	for it := 0; it < job.Iterations; it++ {
		makeMap := func(mapID, lo, hi int) TaskSpec {
			return TaskSpec{Job: job, Kind: TaskMap, MapID: mapID, Lo: lo, Hi: hi,
				Cents: cents}
		}
		makeReduce := func(part int, fetch []FetchRef) TaskSpec {
			return TaskSpec{Job: job, Kind: TaskReduce, Part: part, Fetch: fetch}
		}
		mapOuts, reduceOuts, err := c.mapReduceRound(job, nil, makeMap, makeReduce)
		if err != nil {
			return nil, fmt.Errorf("analytics: kmeans iteration %d: %w", it, err)
		}
		maps += job.MapTasks
		reduces += job.Reducers
		moved := 0.0
		for i := range sizes {
			sizes[i] = 0
		}
		// Apply updates in ascending cluster order so `moved` — the
		// convergence check — is deterministic.
		type upd struct {
			n   int64
			sum []float64
		}
		upds := map[uint32]upd{}
		var order []uint32
		for _, out := range reduceOuts {
			if err := WalkRows(out.result.Rows, func(k, v []byte) error {
				cid, ok := u32From(k)
				if !ok {
					return ErrRowCorrupt
				}
				n, sum, ok2 := accFrom(v)
				if !ok2 {
					return ErrRowCorrupt
				}
				upds[cid] = upd{n: n, sum: sum}
				order = append(order, cid)
				return nil
			}); err != nil {
				return nil, err
			}
		}
		sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
		for _, cid := range order {
			u := upds[cid]
			for j := range cents[cid] {
				nv := u.sum[j] / float64(u.n)
				moved += math.Abs(nv - cents[cid][j])
				cents[cid][j] = nv
			}
			sizes[cid] = u.n
		}
		c.release(mapOuts, reduceOuts) // iteration consumed: free its outputs
		if moved < 1e-9 {
			break
		}
	}
	res := &JobResult{Job: job, Centroids: cents, ClusterSizes: sizes,
		MapTasks: maps, ReduceTasks: reduces}
	c.finish(res, start)
	return res, nil
}
