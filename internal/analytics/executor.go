package analytics

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/transport"
)

// LocalScanner is the executor's window onto the storage its server
// hosts, for InputEngine jobs: analytics tasks scan the shards that
// already live on the node instead of shipping data to compute.
// *cluster.Cluster satisfies it.
type LocalScanner interface {
	Scan(start []byte, limit int) ([]engine.Entry, error)
}

// ExecutorConfig sizes one per-node task executor.
type ExecutorConfig struct {
	// Self is the address peers fetch this executor's shuffle output
	// from — the hosting server's advertised listen address. Fetches a
	// task addresses to Self short-circuit to local memory.
	Self string
	// Local serves InputEngine map tasks (nil rejects them).
	Local LocalScanner
	// MaxConcurrent bounds simultaneously executing tasks (default 2 —
	// the per-node task slots of a MapReduce node manager; the
	// coordinator's scale-out comes from adding nodes, not from one node
	// oversubscribing itself).
	MaxConcurrent int
	// Client configures connections to peer executors for shuffle
	// fetches.
	Client transport.ClientOptions
	// TaskTTL bounds how long a completed task's result and shuffle
	// output stay fetchable (default 5m). Expired tasks are pruned on
	// the next submit; a coordinator that comes back later sees an
	// unknown-task error and reschedules.
	TaskTTL time.Duration
}

func (c *ExecutorConfig) normalize() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.TaskTTL <= 0 {
		c.TaskTTL = 5 * time.Minute
	}
}

// ErrUnknownTask reports a status or fetch for a task this executor does
// not hold (never submitted, expired, or lost to a restart).
var ErrUnknownTask = errors.New("analytics: unknown task")

// Executor runs analytics tasks on one node and serves their shuffle
// output to peers. It implements transport.TaskHost, so a transport
// server exposes it on the wire next to the KV data plane.
type Executor struct {
	cfg ExecutorConfig

	mu     sync.Mutex
	nextID uint64
	tasks  map[uint64]*execTask
	peers  map[string]*transport.Client
	closed bool

	sem chan struct{} // task-slot permits

	metrics execMetrics
}

// execMetrics is the executor's always-on counter block
// (bd_analytics_* families, DESIGN.md §11).
type execMetrics struct {
	mapTasks    obs.Counter   // map tasks executed
	reduceTasks obs.Counter   // reduce tasks executed
	failures    obs.Counter   // tasks that finished with an error
	fetchBytes  obs.Counter   // shuffle bytes pulled from remote peers
	taskSec     obs.Histogram // task execution time
}

// RegisterMetrics exports the executor's task counters into r under the
// bd_analytics_* family.
func (e *Executor) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("bd_analytics_tasks_total", "Tasks executed, by kind.",
		obs.Labels{"kind": "map"}, &e.metrics.mapTasks)
	r.RegisterCounter("bd_analytics_tasks_total", "Tasks executed, by kind.",
		obs.Labels{"kind": "reduce"}, &e.metrics.reduceTasks)
	r.RegisterCounter("bd_analytics_task_failures_total", "Tasks that finished with an error.", nil,
		&e.metrics.failures)
	r.RegisterCounter("bd_analytics_shuffle_fetch_bytes_total", "Shuffle bytes pulled from remote peers (local short-circuits excluded).", nil,
		&e.metrics.fetchBytes)
	r.RegisterHistogram("bd_analytics_task_seconds", "Task execution time.", nil,
		&e.metrics.taskSec)
	r.GaugeFunc("bd_analytics_tasks_held", "Task records currently retained (running or fetchable).", nil,
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(len(e.tasks))
		})
}

// execTask is one task's lifecycle record.
type execTask struct {
	spec     TaskSpec
	finished bool
	doneAt   time.Time
	err      error
	result   []byte   // encoded TaskResult
	shuffle  [][]byte // map output, one blob per reduce partition
}

// NewExecutor builds an executor.
func NewExecutor(cfg ExecutorConfig) *Executor {
	cfg.normalize()
	return &Executor{
		cfg:   cfg,
		tasks: map[uint64]*execTask{},
		peers: map[string]*transport.Client{},
		sem:   make(chan struct{}, cfg.MaxConcurrent),
	}
}

// SubmitTask implements transport.TaskHost: register the task and start
// it on a task slot. The call returns as soon as the task is registered
// — execution progress is observed through TaskStatus.
func (e *Executor) SubmitTask(spec []byte) (uint64, error) {
	ts, err := DecodeTaskSpec(spec)
	if err != nil {
		return 0, err
	}
	if err := ts.validate(); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, cluster.ErrClosed
	}
	e.pruneLocked()
	// Releases are bookkeeping, not work: handle them inline rather
	// than spending a task slot and leaving yet another task record to
	// prune. Id 0 is never assigned to a real task, so the ack cannot
	// collide with anything a caller would poll.
	if ts.Kind == TaskRelease {
		for _, id := range ts.Release {
			delete(e.tasks, id)
		}
		return 0, nil
	}
	e.nextID++
	id := e.nextID
	t := &execTask{spec: ts}
	e.tasks[id] = t
	go e.run(t)
	return id, nil
}

// pruneLocked drops completed tasks past their TTL.
func (e *Executor) pruneLocked() {
	cutoff := time.Now().Add(-e.cfg.TaskTTL)
	for id, t := range e.tasks {
		if t.finished && t.doneAt.Before(cutoff) {
			delete(e.tasks, id)
		}
	}
}

// run executes one task under a slot permit.
func (e *Executor) run(t *execTask) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	start := time.Now()
	res, shuffle, err := e.execute(t.spec)
	e.metrics.taskSec.Observe(time.Since(start))
	switch t.spec.Kind {
	case TaskMap:
		e.metrics.mapTasks.Inc()
	case TaskReduce:
		e.metrics.reduceTasks.Inc()
	}
	if err != nil {
		e.metrics.failures.Inc()
	}
	var encoded []byte
	if err == nil {
		res.DurationNs = time.Since(start).Nanoseconds()
		res.Addr = e.cfg.Self
		encoded = EncodeTaskResult(*res)
	}
	e.mu.Lock()
	t.finished = true
	t.doneAt = time.Now()
	t.err = err
	t.result = encoded
	t.shuffle = shuffle
	e.mu.Unlock()
}

// execute dispatches one task body. A panic — validate() catches the
// malformed specs we know about, this catches the ones we don't — is
// converted into a task error: the hosting daemon serves a KV data
// plane too, and a bad analytics task must never take it down.
func (e *Executor) execute(ts TaskSpec) (res *TaskResult, shuffle [][]byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, shuffle = nil, nil
			err = fmt.Errorf("analytics: %s task panicked: %v", ts.Kind, r)
		}
	}()
	switch ts.Kind {
	case TaskMap:
		return e.runMap(ts)
	case TaskReduce:
		res, err = e.runReduce(ts)
		return res, nil, err
	default:
		return nil, nil, fmt.Errorf("analytics: unknown task kind %q", ts.Kind)
	}
}

// TaskStatus implements transport.TaskHost.
func (e *Executor) TaskStatus(id uint64) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tasks[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownTask, id)
	}
	if !t.finished {
		return false, nil
	}
	return true, t.err
}

// ShuffleFetch implements transport.TaskHost. ResultPart returns the
// completed task's encoded TaskResult; other parts return the map
// task's shuffle partitions.
func (e *Executor) ShuffleFetch(id uint64, part uint32) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tasks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTask, id)
	}
	if !t.finished {
		return nil, fmt.Errorf("analytics: task %d still running", id)
	}
	if t.err != nil {
		return nil, fmt.Errorf("analytics: task %d failed: %s", id, t.err)
	}
	if part == ResultPart {
		return t.result, nil
	}
	if int(part) >= len(t.shuffle) {
		return nil, fmt.Errorf("analytics: task %d has no partition %d", id, part)
	}
	return t.shuffle[part], nil
}

// Close drops every task and peer connection. Running tasks finish into
// the void (their coordinator will see unknown-task and reschedule).
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.tasks = map[uint64]*execTask{}
	peers := e.peers
	e.peers = map[string]*transport.Client{}
	e.mu.Unlock()
	for _, c := range peers {
		c.Close()
	}
}

// peer returns (dialing if needed) the shuffle-fetch client for addr.
func (e *Executor) peer(addr string) (*transport.Client, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, cluster.ErrClosed
	}
	if c, ok := e.peers[addr]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()
	c, err := transport.Dial(addr, e.cfg.Client)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		c.Close()
		return nil, cluster.ErrClosed
	}
	if prev, ok := e.peers[addr]; ok {
		c.Close()
		return prev, nil
	}
	e.peers[addr] = c
	return c, nil
}

// fetchPartition pulls partition part of one map task's shuffle output,
// short-circuiting to local memory when the task lives on this
// executor. Remote fetches carry the reduce task's job trace, so the
// peer-to-peer shuffle hop lands in the source executor's span log
// under the same trace as the rest of the job.
func (e *Executor) fetchPartition(trace uint64, ref FetchRef, part int) ([]byte, error) {
	if ref.Addr == e.cfg.Self && e.cfg.Self != "" {
		return e.ShuffleFetch(ref.Task, uint32(part))
	}
	c, err := e.peer(ref.Addr)
	if err != nil {
		return nil, fmt.Errorf("analytics: shuffle fetch %s: %w", ref.Addr, err)
	}
	b, err := c.ShuffleFetchTraced(trace, ref.Task, uint32(part))
	if err != nil {
		return nil, fmt.Errorf("analytics: shuffle fetch %s: %w", ref.Addr, err)
	}
	e.metrics.fetchBytes.Add(uint64(len(b)))
	return b, nil
}

// ---- map tasks -----------------------------------------------------------

// runMap executes one map task: read the input slice, apply the job's
// map function, bucket the emitted rows into Reducers partitions.
func (e *Executor) runMap(ts TaskSpec) (*TaskResult, [][]byte, error) {
	j := ts.Job
	buckets := make([][]byte, j.Reducers)
	emitText := func(key, val []byte) {
		p := partitionText(key, j.Reducers)
		buckets[p] = AppendRow(buckets[p], key, val)
	}
	emitU32 := func(key uint32, val []byte) {
		p := partitionU32(key, j.Reducers)
		buckets[p] = AppendRow(buckets[p], u32Bytes(key), val)
	}
	inputRows, outputRows := 0, 0
	switch j.Kind {
	case WordCount:
		lines, err := e.mapInput(ts)
		if err != nil {
			return nil, nil, err
		}
		inputRows = len(lines)
		// Map-side combine within the task: per-word partial counts.
		// Counts are integers, so combining is order-free and the reduce
		// side's totals match the uncombined in-process engine exactly.
		counts := map[string]int{}
		for _, line := range lines {
			tokenize(line, func(w []byte) { counts[string(w)]++ })
		}
		for w, n := range counts {
			emitText([]byte(w), []byte(strconv.Itoa(n)))
			outputRows++
		}
	case Grep:
		lines, err := e.mapInput(ts)
		if err != nil {
			return nil, nil, err
		}
		inputRows = len(lines)
		for _, line := range lines {
			if grepMatch(line, j.Pattern) {
				emitText(line, []byte("1"))
				outputRows++
			}
		}
	case Sort:
		lines, err := e.mapInput(ts)
		if err != nil {
			return nil, nil, err
		}
		inputRows = len(lines)
		for _, line := range lines {
			emitText(line, nil)
			outputRows++
		}
	case PageRank:
		g := webGraph(j)
		if len(ts.Ranks) != ts.Hi-ts.Lo {
			return nil, nil, fmt.Errorf("analytics: pagerank map got %d ranks for range [%d,%d)",
				len(ts.Ranks), ts.Lo, ts.Hi)
		}
		inputRows = ts.Hi - ts.Lo
		for v := ts.Lo; v < ts.Hi; v++ {
			adj := g.Adj[v]
			if len(adj) == 0 {
				continue
			}
			share := ts.Ranks[v-ts.Lo] / float64(len(adj))
			for _, to := range adj {
				emitU32(uint32(to), contribBytes(uint32(v), share))
				outputRows++
			}
		}
	case KMeans:
		if len(ts.Cents) == 0 {
			return nil, nil, errors.New("analytics: kmeans map got no centroids")
		}
		vecs := kmeansVectors(j, ts.Lo, ts.Hi)
		inputRows = len(vecs)
		for i, v := range vecs {
			c := nearestCentroid(v, ts.Cents)
			emitU32(uint32(c), u32Bytes(uint32(ts.Lo+i)))
			outputRows++
		}
	default:
		return nil, nil, fmt.Errorf("analytics: map task for unknown kind %q", j.Kind)
	}
	return &TaskResult{MapID: ts.MapID, InputRows: inputRows, OutputRows: outputRows},
		buckets, nil
}

// mapInput reads the map task's record slice: regenerated from the
// stable generators, or scanned from the node's local engine.
func (e *Executor) mapInput(ts TaskSpec) ([][]byte, error) {
	if ts.Job.Input == InputEngine {
		if e.cfg.Local == nil {
			return nil, errors.New("analytics: executor hosts no local store for engine-input jobs")
		}
		entries, err := e.cfg.Local.Scan(nil, 1<<30)
		if err != nil {
			return nil, fmt.Errorf("analytics: local scan: %w", err)
		}
		lines := make([][]byte, len(entries))
		for i, ent := range entries {
			lines[i] = ent.Value
		}
		return lines, nil
	}
	return genLines(ts.Job, ts.Lo, ts.Hi), nil
}

// ---- reduce tasks --------------------------------------------------------

// runReduce executes one reduce task: fetch its partition from every map
// task in MapID order and fold. Fetch order matters for the float jobs —
// map tasks cover ascending contiguous input ranges, so MapID-ordered
// concatenation folds contributions in ascending input-index order, the
// same order the in-process dataflow engine folds in.
func (e *Executor) runReduce(ts TaskSpec) (*TaskResult, error) {
	j := ts.Job
	var all []byte
	for _, ref := range ts.Fetch {
		b, err := e.fetchPartition(ts.Job.Trace, ref, ts.Part)
		if err != nil {
			return nil, err
		}
		all = append(all, b...)
	}
	res := &TaskResult{Part: ts.Part, ShuffleBytes: int64(len(all))}
	switch j.Kind {
	case WordCount, Grep, Sort:
		type kvPair struct{ k, v string }
		var pairs []kvPair
		if err := WalkRows(all, func(k, v []byte) error {
			pairs = append(pairs, kvPair{string(k), string(v)})
			return nil
		}); err != nil {
			return nil, err
		}
		res.InputRows = len(pairs)
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
		var out []byte
		i := 0
		for i < len(pairs) {
			k := pairs[i].k
			jj := i
			for jj < len(pairs) && pairs[jj].k == k {
				jj++
			}
			switch j.Kind {
			case Sort:
				// One output row per input occurrence, like the sort
				// reference's reducer emitting the key once per value.
				for n := i; n < jj; n++ {
					out = AppendRow(out, []byte(k), nil)
					res.OutputRows++
				}
			default:
				total := 0
				for n := i; n < jj; n++ {
					c, _ := strconv.Atoi(pairs[n].v)
					total += c
				}
				out = AppendRow(out, []byte(k), []byte(strconv.Itoa(total)))
				res.OutputRows++
			}
			i = jj
		}
		res.Rows = out
	case PageRank:
		// Fold each destination's contributions in arrival order
		// (ascending source vertex — see above), matching the dataflow
		// engine's ReduceByKey left fold bit for bit.
		sums := map[uint32]float64{}
		seen := map[uint32]bool{}
		var order []uint32
		if err := WalkRows(all, func(k, v []byte) error {
			dest, ok := u32From(k)
			if !ok {
				return ErrRowCorrupt
			}
			_, share, ok := contribFrom(v)
			if !ok {
				return ErrRowCorrupt
			}
			if !seen[dest] {
				seen[dest] = true
				order = append(order, dest)
				sums[dest] = share
			} else {
				sums[dest] += share
			}
			res.InputRows++
			return nil
		}); err != nil {
			return nil, err
		}
		sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
		var out []byte
		for _, dest := range order {
			out = AppendRow(out, u32Bytes(dest), sumBytes(sums[dest]))
			res.OutputRows++
		}
		res.Rows = out
	case KMeans:
		// Regenerate each member vector and fold the cluster sums in
		// arrival order (ascending vector index), matching the dataflow
		// centAccum left fold.
		type acc struct {
			sum []float64
			n   int64
		}
		accs := map[uint32]*acc{}
		var order []uint32
		if err := WalkRows(all, func(k, v []byte) error {
			c, ok := u32From(k)
			if !ok {
				return ErrRowCorrupt
			}
			idx, ok := u32From(v)
			if !ok {
				return ErrRowCorrupt
			}
			vec := kmeansVectorAt(j, int(idx))
			a := accs[c]
			if a == nil {
				accs[c] = &acc{sum: append([]float64(nil), vec...), n: 1}
				order = append(order, c)
			} else {
				for d, x := range vec {
					a.sum[d] += x
				}
				a.n++
			}
			res.InputRows++
			return nil
		}); err != nil {
			return nil, err
		}
		sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
		var out []byte
		for _, c := range order {
			out = AppendRow(out, u32Bytes(c), accBytes(accs[c].n, accs[c].sum))
			res.OutputRows++
		}
		res.Rows = out
	default:
		return nil, fmt.Errorf("analytics: reduce task for unknown kind %q", j.Kind)
	}
	return res, nil
}
