package analytics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/dataflow"
	"repro/internal/mapreduce"
)

// The in-process references: the same jobs executed on the repository's
// single-process engines (internal/mapreduce for the record jobs,
// internal/dataflow for the iterative ones) over the same
// partition-stable inputs. The distributed engine's contract is that its
// results are byte-identical to these — the validation tests, the bench
// comparisons and the transport smoke test all diff against them.

// RunLocal executes job on the in-process engines with the given
// parallelism and returns the result in the same canonical shape the
// distributed coordinator produces.
func RunLocal(job JobSpec, workers int) (*JobResult, error) {
	job, err := job.normalize(1)
	if err != nil {
		return nil, err
	}
	if job.Input == InputEngine {
		return nil, fmt.Errorf("analytics: RunLocal cannot scan engines; use RunLocalRecords")
	}
	switch job.Kind {
	case WordCount, Grep, Sort:
		recs := recordsFromLines(genLines(job, 0, job.Lines))
		return RunLocalRecords(job, workers, recs)
	case PageRank:
		return localPageRank(job, workers)
	case KMeans:
		return localKMeans(job, workers)
	}
	return nil, fmt.Errorf("analytics: unknown job kind %q", job.Kind)
}

// recordsFromLines adapts generated lines to mapreduce records.
func recordsFromLines(lines [][]byte) []mapreduce.Record {
	recs := make([]mapreduce.Record, len(lines))
	for i, l := range lines {
		recs[i] = mapreduce.Record{Key: strconv.Itoa(i), Value: string(l)}
	}
	return recs
}

// RunLocalRecords executes a record job (wordcount, grep, sort) on the
// in-process MapReduce engine over explicit records — the reference for
// engine-input jobs, whose records come from a storage scan rather than
// a generator.
func RunLocalRecords(job JobSpec, workers int, recs []mapreduce.Record) (*JobResult, error) {
	job, err := job.normalize(1)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var m mapreduce.Mapper
	var r mapreduce.Reducer
	var combiner mapreduce.Reducer
	sum := func(key string, vs []string, emit func(k, v string)) {
		total := 0
		for _, v := range vs {
			n, _ := strconv.Atoi(v)
			total += n
		}
		emit(key, strconv.Itoa(total))
	}
	switch job.Kind {
	case WordCount:
		m = func(_, v string, emit func(k, v string)) {
			tokenize([]byte(v), func(w []byte) { emit(string(w), "1") })
		}
		r, combiner = sum, sum
	case Grep:
		m = func(_, v string, emit func(k, v string)) {
			if grepMatch([]byte(v), job.Pattern) {
				emit(v, "1")
			}
		}
		r = func(key string, vs []string, emit func(k, v string)) {
			emit(key, strconv.Itoa(len(vs)))
		}
	case Sort:
		m = func(_, v string, emit func(k, v string)) { emit(v, "") }
		r = func(key string, vs []string, emit func(k, v string)) {
			for range vs {
				emit(key, "")
			}
		}
	default:
		return nil, fmt.Errorf("analytics: %q is not a record job", job.Kind)
	}
	mres, err := mapreduce.Run(mapreduce.Config{
		Workers: workers, Reducers: job.Reducers, Combiner: combiner,
	}, recs, m, r)
	if err != nil {
		return nil, err
	}
	res := &JobResult{Job: job, Pairs: mres.Sorted(),
		MapTasks: job.MapTasks, ReduceTasks: job.Reducers,
		ShuffleBytes: int64(mres.ShuffleBytes), Elapsed: time.Since(start)}
	return res, nil
}

// localPageRank is the dataflow (Spark-substitute) reference, the same
// damped power iteration the PageRank workload runs, over the stable
// web graph.
func localPageRank(job JobSpec, workers int) (*JobResult, error) {
	start := time.Now()
	g := webGraph(job)
	n := job.Items()
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1.0 / float64(n)
	}
	ctx := dataflow.NewContext(workers, nil)
	vertices := make([]int32, n)
	for i := range vertices {
		vertices[i] = int32(i)
	}
	vds := dataflow.Parallelize(ctx, vertices, 0, 4)
	const damping = 0.85
	for it := 0; it < job.Iterations; it++ {
		rs := ranks
		contribs := dataflow.FlatMap(vds, 12, func(v int32, emit func(dataflow.Pair[int32, float64])) {
			adj := g.Adj[v]
			if len(adj) == 0 {
				return
			}
			share := rs[v] / float64(len(adj))
			for _, to := range adj {
				emit(dataflow.Pair[int32, float64]{Key: to, Val: share})
			}
		})
		sums := dataflow.ReduceByKey(contribs, 0, func(a, b float64) float64 { return a + b })
		base := (1 - damping) / float64(n)
		next := make([]float64, n)
		for i := range next {
			next[i] = base
		}
		for _, kv := range sums.Collect() {
			next[kv.Key] += damping * kv.Val
		}
		ranks = next
	}
	return &JobResult{Job: job, Ranks: ranks,
		MapTasks:    job.MapTasks * job.Iterations,
		ReduceTasks: job.Reducers * job.Iterations,
		Elapsed:     time.Since(start)}, nil
}

// localKMeans is the dataflow reference: Lloyd's algorithm exactly as
// the KMeans workload runs it, over the stable vectors.
func localKMeans(job JobSpec, workers int) (*JobResult, error) {
	start := time.Now()
	vecs := kmeansVectors(job, 0, job.Vectors)
	cents := make([][]float64, job.K)
	for i := range cents {
		cents[i] = append([]float64(nil), vecs[i%len(vecs)]...)
	}
	sizes := make([]int64, job.K)
	ctx := dataflow.NewContext(workers, nil)
	ids := make([]int32, len(vecs))
	for i := range ids {
		ids[i] = int32(i)
	}
	ds := dataflow.Parallelize(ctx, ids, 0, job.Dim*8)
	type centAccum struct {
		sum []float64
		n   int64
	}
	for it := 0; it < job.Iterations; it++ {
		assigned := dataflow.Map(ds, 16, func(i int32) dataflow.Pair[int, int32] {
			return dataflow.Pair[int, int32]{Key: nearestCentroid(vecs[i], cents), Val: i}
		})
		sums := dataflow.ReduceByKey(
			dataflow.Map(assigned, job.Dim*8+16, func(p dataflow.Pair[int, int32]) dataflow.Pair[int, centAccum] {
				return dataflow.Pair[int, centAccum]{Key: p.Key,
					Val: centAccum{sum: append([]float64(nil), vecs[p.Val]...), n: 1}}
			}), 0,
			func(a, b centAccum) centAccum {
				out := centAccum{sum: append([]float64(nil), a.sum...), n: a.n + b.n}
				for j, x := range b.sum {
					out.sum[j] += x
				}
				return out
			})
		moved := 0.0
		for i := range sizes {
			sizes[i] = 0
		}
		// Ascending cluster order, mirroring the distributed
		// coordinator's update step, so the convergence check agrees.
		collected := sums.Collect()
		sort.Slice(collected, func(a, b int) bool { return collected[a].Key < collected[b].Key })
		for _, kv := range collected {
			c := kv.Key
			for j := range cents[c] {
				nv := kv.Val.sum[j] / float64(kv.Val.n)
				moved += math.Abs(nv - cents[c][j])
				cents[c][j] = nv
			}
			sizes[c] = kv.Val.n
		}
		if moved < 1e-9 {
			break
		}
	}
	return &JobResult{Job: job, Centroids: cents, ClusterSizes: sizes,
		MapTasks:    job.MapTasks * job.Iterations,
		ReduceTasks: job.Reducers * job.Iterations,
		Elapsed:     time.Since(start)}, nil
}
