// Package analytics is the distributed offline-analytics engine: the
// paper's Hadoop/Spark job classes (wordcount, grep, sort, PageRank,
// k-means) executed across the networked cluster instead of inside one
// process. It is the bridge between the two halves the repository grew
// separately — the in-process engines (internal/mapreduce,
// internal/dataflow) that run the paper's offline-analytics workloads,
// and the PR 1–4 cluster/transport stack that serves KV traffic across
// processes.
//
// # Architecture
//
// A Coordinator plans a JobSpec into map and reduce tasks and drives
// them over executor servers (one Executor per bdserve process, exposed
// through transport's task plane: OpTaskSubmit / OpTaskStatus /
// OpShuffleFetch). Map tasks read their input either by regenerating
// their slice from the partition-stable BDGS generators (no input bytes
// cross the wire — the generator runs on every node, as the original
// BDGS deploys) or by scanning the storage engine shards already hosted
// on the node (InputEngine). Map output is bucketed into shuffle
// partitions held by the executor; reduce tasks fetch their partition
// from every map task node-to-node over the wire and fold it. The
// iterative jobs (PageRank, k-means) run one map/reduce round per
// superstep, with the small global state (rank vector, centroids)
// carried by the coordinator inside the task specs.
//
// # Determinism
//
// Distributed results are byte-identical to the in-process references
// (RunLocal): inputs are partition-stable (bdgs Stable* generators),
// integer folds are order-free, and the floating-point folds are
// ordered — map tasks cover ascending contiguous input ranges, reduces
// fetch in map-task order, and each key's contributions fold in
// arrival order, which reproduces the dataflow engine's left fold bit
// for bit. The validation tests assert exact equality; JobResult.Digest
// turns any run into one comparable fingerprint.
//
// # Failure handling
//
// Executors are probed with the same transport Ping the KV health layer
// uses. A task whose executor dies (or whose execution fails) is
// rescheduled on another live member; a reduce whose shuffle sources
// died triggers a re-run of the lost map tasks before the reduce is
// retried. Deterministic regeneration is what makes re-execution safe:
// a map task re-run elsewhere produces the same bytes the dead node
// held.
package analytics
