package analytics

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mapreduce"
	"repro/internal/transport"
)

// testNode is one in-process executor server: a hosted cluster (for
// engine-input jobs), an executor, and the transport server exposing
// both planes on a real socket.
type testNode struct {
	cl   *cluster.Cluster
	ex   *Executor
	srv  *transport.Server
	addr string
}

func (n *testNode) kill() {
	n.srv.Close()
	n.ex.Close()
}

// clientOpts keeps test-time failure handling fast: dead servers must
// cost milliseconds, not default dial patience.
func clientOpts() transport.ClientOptions {
	return transport.ClientOptions{
		Timeout:     5 * time.Second,
		DialTimeout: 200 * time.Millisecond,
		PingTimeout: 100 * time.Millisecond,
	}
}

func startNodes(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.New(cluster.Config{Shards: 1})
		ex := NewExecutor(ExecutorConfig{
			Self:   ln.Addr().String(),
			Local:  cl,
			Client: clientOpts(),
		})
		srv := transport.Serve(ln, cl, transport.ServerOptions{Tasks: ex})
		nodes[i] = &testNode{cl: cl, ex: ex, srv: srv, addr: ln.Addr().String()}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.srv.Close()
			n.ex.Close()
			n.cl.Close()
		}
	})
	return nodes
}

func newTestCoordinator(t *testing.T, nodes []*testNode) *Coordinator {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	c, err := NewCoordinator(addrs, CoordinatorOptions{Client: clientOpts()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// smallText shrinks the text jobs to test size.
func smallText(kind JobKind) JobSpec {
	return JobSpec{Kind: kind, Seed: 42, Lines: 1500, Vocab: 3000}
}

func pairsEqual(t *testing.T, kind JobKind, got, want []mapreduce.KV) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d output pairs, want %d", kind, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", kind, i, got[i], want[i])
		}
	}
}

// TestDistributedRecordJobsMatchLocal: wordcount, grep and sort over a
// 2-node cluster must be byte-identical to the in-process MapReduce
// reference.
func TestDistributedRecordJobsMatchLocal(t *testing.T) {
	nodes := startNodes(t, 2)
	c := newTestCoordinator(t, nodes)
	for _, kind := range []JobKind{WordCount, Grep, Sort} {
		job := smallText(kind)
		want, err := RunLocal(job, 4)
		if err != nil {
			t.Fatalf("%s local: %v", kind, err)
		}
		got, err := c.Run(job)
		if err != nil {
			t.Fatalf("%s distributed: %v", kind, err)
		}
		pairsEqual(t, kind, got.Pairs, want.Pairs)
		if got.Digest() != want.Digest() {
			t.Fatalf("%s digests differ: %x vs %x", kind, got.Digest(), want.Digest())
		}
		if len(got.Pairs) == 0 {
			t.Fatalf("%s produced no output", kind)
		}
	}
}

// TestDistributedPageRankMatchesLocal: rank vectors must match the
// dataflow reference bit for bit — the floating-point fold order is part
// of the engine's contract.
func TestDistributedPageRankMatchesLocal(t *testing.T) {
	nodes := startNodes(t, 2)
	c := newTestCoordinator(t, nodes)
	job := JobSpec{Kind: PageRank, Seed: 7, GraphBits: 8, EdgeFactor: 6, Iterations: 3}
	want, err := RunLocal(job, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ranks) != len(want.Ranks) {
		t.Fatalf("rank vector length %d, want %d", len(got.Ranks), len(want.Ranks))
	}
	for i := range got.Ranks {
		if math.Float64bits(got.Ranks[i]) != math.Float64bits(want.Ranks[i]) {
			t.Fatalf("rank[%d] = %.17g, want %.17g (bit-exact)", i, got.Ranks[i], want.Ranks[i])
		}
	}
	var mass float64
	for _, r := range got.Ranks {
		mass += r
	}
	if mass < 0.5 || mass > 1.5 {
		t.Fatalf("rank mass %v is not near 1", mass)
	}
}

// TestDistributedKMeansMatchesLocal: centroids and cluster sizes must
// match the dataflow reference bit for bit.
func TestDistributedKMeansMatchesLocal(t *testing.T) {
	nodes := startNodes(t, 2)
	c := newTestCoordinator(t, nodes)
	job := JobSpec{Kind: KMeans, Seed: 9, Vectors: 600, Dim: 4, K: 3, Iterations: 3}
	want, err := RunLocal(job, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Centroids) != len(want.Centroids) {
		t.Fatalf("%d centroids, want %d", len(got.Centroids), len(want.Centroids))
	}
	for ci := range got.Centroids {
		if got.ClusterSizes[ci] != want.ClusterSizes[ci] {
			t.Fatalf("cluster %d size %d, want %d", ci, got.ClusterSizes[ci], want.ClusterSizes[ci])
		}
		for d := range got.Centroids[ci] {
			if math.Float64bits(got.Centroids[ci][d]) != math.Float64bits(want.Centroids[ci][d]) {
				t.Fatalf("centroid[%d][%d] = %.17g, want %.17g",
					ci, d, got.Centroids[ci][d], want.Centroids[ci][d])
			}
		}
	}
}

// TestPartitioningInvariance: the task-graph shape (map tasks, reducers,
// node count) must not change any job's output.
func TestPartitioningInvariance(t *testing.T) {
	nodes := startNodes(t, 3)
	c := newTestCoordinator(t, nodes)
	base := smallText(WordCount)
	ref, err := RunLocal(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range []struct{ maps, reds int }{{2, 1}, {5, 3}, {9, 4}} {
		job := base
		job.MapTasks, job.Reducers = shape.maps, shape.reds
		got, err := c.Run(job)
		if err != nil {
			t.Fatalf("maps=%d reducers=%d: %v", shape.maps, shape.reds, err)
		}
		if got.Digest() != ref.Digest() {
			t.Fatalf("maps=%d reducers=%d: digest %x, want %x",
				shape.maps, shape.reds, got.Digest(), ref.Digest())
		}
	}
	// PageRank too: float folds are the fragile case.
	prBase := JobSpec{Kind: PageRank, Seed: 3, GraphBits: 7, Iterations: 2}
	prRef, err := RunLocal(prBase, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range []struct{ maps, reds int }{{1, 1}, {4, 2}, {7, 5}} {
		job := prBase
		job.MapTasks, job.Reducers = shape.maps, shape.reds
		got, err := c.Run(job)
		if err != nil {
			t.Fatalf("pagerank maps=%d reducers=%d: %v", shape.maps, shape.reds, err)
		}
		if got.Digest() != prRef.Digest() {
			t.Fatalf("pagerank maps=%d reducers=%d: digest %x, want %x",
				shape.maps, shape.reds, got.Digest(), prRef.Digest())
		}
	}
}

// TestEngineInputWordCount: the job scans the rows already sharded
// across the nodes' storage engines, and the result matches an
// in-process wordcount over a coordinator-side global scan.
func TestEngineInputWordCount(t *testing.T) {
	nodes := startNodes(t, 2)

	// Load rows through a KV coordinator, R=1: every row lives on
	// exactly one node.
	kv := cluster.NewEmpty(cluster.Config{Replication: 1})
	defer kv.Close()
	for _, n := range nodes {
		rn, err := transport.Connect(n.addr, clientOpts())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := kv.AddRemote(rn); err != nil {
			t.Fatal(err)
		}
	}
	rows := []string{
		"the quick brown fox", "jumps over the lazy dog",
		"the dog barks", "a fox runs", "lazy summer days",
		"quick quick slow", "dog and fox and dog",
	}
	for i, row := range rows {
		if err := kv.Put([]byte(string(rune('a'+i))+"-key"), []byte(row)); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: in-process wordcount over the global scan.
	entries, err := kv.Scan(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(rows) {
		t.Fatalf("global scan returned %d rows, want %d", len(entries), len(rows))
	}
	recs := make([]mapreduce.Record, len(entries))
	for i, e := range entries {
		recs[i] = mapreduce.Record{Key: string(e.Key), Value: string(e.Value)}
	}
	job := JobSpec{Kind: WordCount, Seed: 1, Input: InputEngine}
	want, err := RunLocalRecords(job, 2, recs)
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCoordinator(t, nodes)
	got, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	pairsEqual(t, WordCount, got.Pairs, want.Pairs)
	// Sanity: both nodes actually contributed a map task.
	if got.MapTasks != 2 {
		t.Fatalf("engine-input job ran %d map tasks, want 2", got.MapTasks)
	}
}

// TestReschedulesAroundDeadExecutor: a job planned over three nodes must
// survive one being gone (its tasks reschedule onto live members via
// the ping-based health check) and still produce the reference result.
func TestReschedulesAroundDeadExecutor(t *testing.T) {
	nodes := startNodes(t, 3)
	c := newTestCoordinator(t, nodes)
	nodes[1].kill() // dies after the coordinator dialed it

	job := smallText(WordCount)
	want, err := RunLocal(job, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(job)
	if err != nil {
		t.Fatalf("job did not survive a dead executor: %v", err)
	}
	pairsEqual(t, WordCount, got.Pairs, want.Pairs)
	if got.Retries == 0 {
		t.Fatal("no retries recorded — the dead executor was never assigned work?")
	}
	if len(c.live()) != 2 {
		t.Fatalf("%d live executors after the job, want 2", len(c.live()))
	}
}

// TestRecoversLostShuffleOutput exercises the between-phases loss: maps
// complete, then an executor dies taking its shuffle partitions with it.
// The round logic must detect the dead member, re-run its map tasks on
// survivors, and complete the reduces.
func TestRecoversLostShuffleOutput(t *testing.T) {
	nodes := startNodes(t, 3)
	c := newTestCoordinator(t, nodes)
	job, err := smallText(WordCount).normalize(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunLocal(job, 4)
	if err != nil {
		t.Fatal(err)
	}

	makeMap := func(mapID, lo, hi int) TaskSpec {
		return TaskSpec{Job: job, Kind: TaskMap, MapID: mapID, Lo: lo, Hi: hi}
	}
	makeReduce := func(part int, fetch []FetchRef) TaskSpec {
		return TaskSpec{Job: job, Kind: TaskReduce, Part: part, Fetch: fetch}
	}
	// Phase 1 by hand: run all maps while everyone is alive.
	items := job.Items()
	specs := make([]TaskSpec, job.MapTasks)
	for m := range specs {
		specs[m] = makeMap(m, items*m/job.MapTasks, items*(m+1)/job.MapTasks)
	}
	mapOuts, err := c.runPhase(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the executor hosting map task 0's shuffle output.
	victim := mapOuts[0].exec.addr
	killed := false
	for _, n := range nodes {
		if n.addr == victim {
			n.kill()
			killed = true
		}
	}
	if !killed {
		t.Fatalf("no test node matches victim %s", victim)
	}
	// The round logic gets the stale outcomes: reduces must fail on the
	// lost partitions, the victim must be probed down, its map tasks
	// re-run elsewhere, and the job must still match the reference.
	_, reduceOuts, err := c.mapReduceRound(job, mapOuts, makeMap, makeReduce)
	if err != nil {
		t.Fatalf("round did not recover from lost shuffle output: %v", err)
	}
	res := &JobResult{Job: job}
	if err := collectPairs(res, reduceOuts); err != nil {
		t.Fatal(err)
	}
	pairsEqual(t, WordCount, res.Pairs, want.Pairs)
}

// TestJobFailsWithoutExecutors: every member down is a loud error, not a
// hang or an empty result.
func TestJobFailsWithoutExecutors(t *testing.T) {
	nodes := startNodes(t, 2)
	c := newTestCoordinator(t, nodes)
	for _, n := range nodes {
		n.kill()
	}
	job := smallText(WordCount)
	job.Lines = 50
	if _, err := c.Run(job); err == nil {
		t.Fatal("job with every executor dead succeeded")
	}
}

// TestLatencyAggregation: the coordinator merges per-executor digests
// (core.LatencyRecorder.Merge) into one job-wide summary.
func TestLatencyAggregation(t *testing.T) {
	nodes := startNodes(t, 2)
	c := newTestCoordinator(t, nodes)
	job := smallText(WordCount)
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	tasks := res.Job.MapTasks + res.Job.Reducers
	if res.TaskLatency.Count != tasks {
		t.Fatalf("TaskLatency.Count = %d, want %d", res.TaskLatency.Count, tasks)
	}
	perExec := 0
	for addr, s := range res.PerExecutor {
		if !strings.Contains(addr, ":") {
			t.Fatalf("PerExecutor key %q is not an address", addr)
		}
		perExec += s.Count
	}
	if perExec != tasks {
		t.Fatalf("per-executor counts sum to %d, want %d", perExec, tasks)
	}
	if res.TaskLatency.Max <= 0 {
		t.Fatal("merged summary has no max latency")
	}
}

// TestReleaseFreesExecutorState: once a job's outputs are collected,
// the coordinator's release pass frees the retained task state on every
// executor — memory is bounded by one round's working set, with the
// TTL prune only as the backstop.
func TestReleaseFreesExecutorState(t *testing.T) {
	nodes := startNodes(t, 2)
	c := newTestCoordinator(t, nodes)
	job := smallText(WordCount)
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		held := 0
		for _, n := range nodes {
			n.ex.mu.Lock()
			for _, tk := range n.ex.tasks {
				if tk.spec.Kind != TaskRelease {
					held++
				}
			}
			n.ex.mu.Unlock()
		}
		if held == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d map/reduce tasks still retained after the job's release pass", held)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobSpecValidation: malformed specs fail before any task ships.
func TestJobSpecValidation(t *testing.T) {
	nodes := startNodes(t, 1)
	c := newTestCoordinator(t, nodes)
	if _, err := c.Run(JobSpec{Kind: "tsp"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := c.Run(JobSpec{Kind: WordCount, Input: "punchcards"}); err == nil {
		t.Fatal("unknown input accepted")
	}
	if _, err := c.Run(JobSpec{Kind: Sort, Input: InputEngine}); err == nil {
		t.Fatal("engine-input sort accepted")
	}
	if _, err := c.Run(JobSpec{Kind: KMeans, Vectors: 4, K: 8}); err == nil {
		t.Fatal("kmeans with K > Vectors accepted (references cannot seed phantom centroids)")
	}
}

// TestExecutorSurvivesMalformedSpecs: the wire is a process boundary —
// garbage and unnormalized task specs must come back as error frames,
// and the daemon must keep serving afterwards.
func TestExecutorSurvivesMalformedSpecs(t *testing.T) {
	nodes := startNodes(t, 1)
	cl, err := transport.Dial(nodes[0].addr, clientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.SubmitTask([]byte("{")); err == nil {
		t.Fatal("garbage spec accepted")
	}
	// Unnormalized job (Reducers 0): would divide by zero in the
	// partitioner if it ever ran.
	bad := TaskSpec{Kind: TaskMap, Job: JobSpec{Kind: WordCount, Lines: 10, Vocab: 100}}
	if _, err := cl.SubmitTask(EncodeTaskSpec(bad)); err == nil {
		t.Fatal("unnormalized spec accepted")
	}
	// Out-of-range map slice and reduce partition.
	over := TaskSpec{Kind: TaskMap, Lo: 0, Hi: 1 << 20,
		Job: JobSpec{Kind: PageRank, GraphBits: 4, EdgeFactor: 2, MapTasks: 1, Reducers: 1}}
	if _, err := cl.SubmitTask(EncodeTaskSpec(over)); err == nil {
		t.Fatal("out-of-range map slice accepted")
	}
	part := TaskSpec{Kind: TaskReduce, Part: 5,
		Job: JobSpec{Kind: WordCount, Lines: 10, Vocab: 100, MapTasks: 1, Reducers: 2}}
	if _, err := cl.SubmitTask(EncodeTaskSpec(part)); err == nil {
		t.Fatal("out-of-range reduce partition accepted")
	}
	// The daemon is unharmed: a real job still runs.
	c := newTestCoordinator(t, nodes)
	job := smallText(WordCount)
	job.Lines = 100
	if _, err := c.Run(job); err != nil {
		t.Fatalf("executor unhealthy after malformed specs: %v", err)
	}
}
