// Package mapreduce is an in-process MapReduce engine, the repository's
// substitute for the paper's Hadoop 1.0.2 software stack (DESIGN.md §1).
// It implements the full Hadoop dataflow — input splits, map tasks, an
// optional combiner, hash partitioning, a sort-merge shuffle, and reduce
// tasks — over a worker pool of goroutines.
//
// This engine executes inside one process; internal/analytics runs the
// same job classes across the networked cluster (map tasks and shuffle
// partitions on remote executors) and validates its results
// byte-identical to this engine's.
//
// When a characterization CPU is attached (Config.CPU), the engine emits
// the framework side of the simulated instruction/memory stream: record
// reads from the input region, spill stores to shuffle regions, shuffle
// sort compares, and instruction fetch across the framework's code
// regions. The framework's large instruction footprint is what produces
// the high L1I MPKI the paper attributes to "deep software stacks".
package mapreduce

import (
	"errors"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/sim"
)

// KV is one key-value pair flowing through the job.
type KV struct {
	Key   string
	Value string
}

// Record is one input record (a line, a row, a page...).
type Record struct {
	Key   string
	Value string
}

// Mapper transforms one record into zero or more intermediate pairs.
type Mapper func(key, value string, emit func(k, v string))

// Reducer folds all values of one key into zero or more output pairs.
// The engine also uses it as the combiner when Config.Combiner is set.
type Reducer func(key string, values []string, emit func(k, v string))

// Config controls one job.
type Config struct {
	Workers  int     // map/reduce task parallelism; 0 = 4
	Reducers int     // reduce partition count; 0 = Workers
	Combiner Reducer // optional map-side combiner

	// CPU, when non-nil, attaches the job to a characterization context.
	CPU *sim.CPU
	// InputRegion is the simulated address range of the input data; the
	// zero value makes the engine allocate one sized from the input.
	InputRegion sim.DataRegion
}

func (c *Config) normalize(inputBytes uint64) {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Reducers <= 0 {
		c.Reducers = c.Workers
	}
	if c.InputRegion.Size == 0 {
		c.InputRegion = c.CPU.Alloc("mapreduce.input", inputBytes+1)
	}
}

// framework models the Hadoop-side code footprint. Region sizes reflect
// the relative weight of each stage's code (record reader + serde,
// collector/spill, shuffle merge, reduce driver); together they far exceed
// the 32 KiB L1I, which is the mechanism behind the paper's L1I finding.
type framework struct {
	cpu     *sim.CPU
	reader  *sim.CodeRegion
	collect *sim.CodeRegion
	shuffle *sim.CodeRegion
	reduce  *sim.CodeRegion
	serde   *sim.CodeRegion
}

func newFramework(cpu *sim.CPU) *framework {
	return &framework{
		cpu:     cpu,
		reader:  cpu.NewCodeRegion("mapreduce.reader", 384<<10),
		collect: cpu.NewCodeRegion("mapreduce.collect", 256<<10),
		shuffle: cpu.NewCodeRegion("mapreduce.shuffle", 256<<10),
		reduce:  cpu.NewCodeRegion("mapreduce.reduce", 320<<10),
		serde:   cpu.NewCodeRegion("mapreduce.serde", 192<<10),
	}
}

// startup charges the job-submission fixed cost: class loading, split
// computation, and task setup walk a large cold code footprint and
// scattered JVM metadata. At baseline inputs this cost is a visible
// fraction of the run and depresses MIPS; at 32× it has amortized away —
// the mechanism behind Figure 3-1's rising MIPS curves.
func (f *framework) startup() {
	if f.cpu == nil {
		return
	}
	meta := f.cpu.Alloc("mapreduce.jobmeta", 24<<20)
	rs := xorshift(0x243f6a8885a308d3)
	regions := []*sim.CodeRegion{f.reader, f.collect, f.shuffle, f.reduce, f.serde}
	for i := 0; i < 150; i++ {
		r := regions[i%len(regions)]
		f.cpu.Code(r, rs.next()%r.Size(), 640)
		f.cpu.IntOps(1600)
		f.cpu.Branches(350)
		f.cpu.LoadR(meta, rs.next()%(24<<20), 128)
	}
	f.cpu.FPOps(500)
	// JVM start, JIT warmup, task scheduling latency: pure stall.
	f.cpu.Stall(9e6)
}

// xorshift is a tiny deterministic generator for spreading instruction
// fetch across a region, modeling data-dependent paths through framework
// code (virtual dispatch, branchy deserialization).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// off picks the next instruction-fetch locus in region r. Half the visits
// take the region's hot path (the same basic blocks every record: steady
// branch outcomes, warm lines); half take record-dependent cold paths.
// This reuse split is what keeps the L1I MPKI at the paper's ~20-30 rather
// than the all-miss ceiling.
func (f *framework) off(x *xorshift, r *sim.CodeRegion) uint64 {
	v := x.next()
	if v&1 == 0 {
		return 0 // hot path
	}
	return v % r.Size()
}

// Result is the output of a job: per-partition key-sorted pairs.
type Result struct {
	Partitions [][]KV
	// Counters
	InputRecords   int
	MapOutputPairs int
	CombinedPairs  int // pairs after map-side combine
	OutputPairs    int
	ShuffleBytes   int
}

// Sorted flattens all partitions into one globally key-sorted slice.
func (r *Result) Sorted() []KV {
	var out []KV
	for _, p := range r.Partitions {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Run executes a MapReduce job over the input records.
func Run(cfg Config, input []Record, m Mapper, r Reducer) (*Result, error) {
	if m == nil || r == nil {
		return nil, errors.New("mapreduce: mapper and reducer are required")
	}
	var inputBytes uint64
	for _, rec := range input {
		inputBytes += uint64(len(rec.Key) + len(rec.Value))
	}
	cfg.normalize(inputBytes)
	fw := newFramework(cfg.CPU)
	fw.startup()

	// ---- Map phase --------------------------------------------------
	splits := splitInput(input, cfg.Workers*2)
	// Each split owns a disjoint range of the input and spill regions, so
	// the simulated addresses cover the full data volume.
	splitBase := make([]uint64, len(splits)+1)
	for i, sp := range splits {
		var b uint64
		for _, rec := range sp {
			b += uint64(len(rec.Key) + len(rec.Value))
		}
		splitBase[i+1] = splitBase[i] + b
	}
	// mapOut[task][partition] holds that task's pairs for that partition.
	mapOut := make([][][]KV, len(splits))
	spillRegion := cfg.CPU.Alloc("mapreduce.spill", inputBytes+4096)
	var mapPairs, combinedPairs int64
	var mu sync.Mutex

	runParallel(cfg.Workers, len(splits), func(task int) {
		rs := xorshift(0x9e3779b97f4a7c15 ^ uint64(task+1))
		parts := make([][]KV, cfg.Reducers)
		inOff, spillOff := splitBase[task], splitBase[task]
		pairs, combined := 0, 0
		emit := func(k, v string) {
			p := partition(k, cfg.Reducers)
			parts[p] = append(parts[p], KV{k, v})
			pairs++
			// Collector: serialize pair into the spill buffer.
			fw.cpu.Code(fw.collect, fw.off(&rs, fw.collect), 512)
			fw.cpu.IntOps(44) // partition hash, serialization, bounds checks
			fw.cpu.Branches(10)
			fw.cpu.FPOps(1) // output-size/spill-threshold accounting
			fw.cpu.StoreR(spillRegion, spillOff, len(k)+len(v)+8)
			spillOff += uint64(len(k)+len(v)) + 8
		}
		for _, rec := range splits[task] {
			// Record reader: fetch and deserialize the record.
			fw.cpu.Code(fw.reader, fw.off(&rs, fw.reader), 640)
			fw.cpu.LoadR(cfg.InputRegion, inOff, len(rec.Key)+len(rec.Value))
			inOff += uint64(len(rec.Key) + len(rec.Value))
			fw.cpu.Code(fw.serde, fw.off(&rs, fw.serde), 384)
			fw.cpu.IntOps(95)
			fw.cpu.Branches(22)
			fw.cpu.FPOps(1) // progress/metrics accounting
			m(rec.Key, rec.Value, emit)
		}
		if cfg.Combiner != nil {
			for p := range parts {
				parts[p] = combine(fw, &rs, parts[p], cfg.Combiner)
				combined += len(parts[p])
			}
		} else {
			combined = pairs
		}
		mu.Lock()
		mapOut[task] = parts
		mapPairs += int64(pairs)
		combinedPairs += int64(combined)
		mu.Unlock()
	})

	// ---- Shuffle + reduce phase -------------------------------------
	res := &Result{
		Partitions:     make([][]KV, cfg.Reducers),
		InputRecords:   len(input),
		MapOutputPairs: int(mapPairs),
		CombinedPairs:  int(combinedPairs),
	}
	shufRegion := cfg.CPU.Alloc("mapreduce.shufflebuf", inputBytes+4096)
	var outPairs, shufBytes int64

	runParallel(cfg.Workers, cfg.Reducers, func(p int) {
		rs := xorshift(0xc2b2ae3d27d4eb4f ^ uint64(p+1))
		var pairs []KV
		// Each reduce partition owns a disjoint range of the merge buffer.
		partBase := uint64(p) * (shufRegion.Size / uint64(cfg.Reducers))
		off := partBase
		for task := range mapOut {
			for _, kv := range mapOut[task][p] {
				// Fetch from the map task's spill over the (simulated)
				// network into the reduce-side merge buffer.
				fw.cpu.Code(fw.shuffle, fw.off(&rs, fw.shuffle), 448)
				fw.cpu.LoadR(spillRegion, off, len(kv.Key)+len(kv.Value)+8)
				fw.cpu.StoreR(shufRegion, off, len(kv.Key)+len(kv.Value)+8)
				off += uint64(len(kv.Key)+len(kv.Value)) + 8
				pairs = append(pairs, kv)
			}
		}
		sortPairs(fw, &rs, shufRegion, pairs, partBase, off-partBase)
		var out []KV
		emit := func(k, v string) {
			out = append(out, KV{k, v})
			fw.cpu.Code(fw.reduce, fw.off(&rs, fw.reduce), 384)
			fw.cpu.StoreR(shufRegion, uint64(len(out))*24, len(k)+len(v))
		}
		foreachGroup(pairs, func(key string, values []string) {
			fw.cpu.Code(fw.reduce, fw.off(&rs, fw.reduce), 512)
			fw.cpu.IntOps(60 + 6*len(values))
			fw.cpu.Branches(14 + len(values))
			fw.cpu.FPOps(1)
			r(key, values, emit)
		})
		mu.Lock()
		res.Partitions[p] = out
		outPairs += int64(len(out))
		shufBytes += int64(off)
		mu.Unlock()
	})
	res.OutputPairs = int(outPairs)
	res.ShuffleBytes = int(shufBytes)
	return res, nil
}

// combine sorts and locally reduces one map task's partition output.
func combine(fw *framework, rs *xorshift, pairs []KV, c Reducer) []KV {
	if len(pairs) == 0 {
		return pairs
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	fw.cpu.Code(fw.collect, fw.off(rs, fw.collect), 512)
	fw.cpu.IntOps(8 * len(pairs))
	fw.cpu.Branches(2 * len(pairs))
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	foreachGroup(pairs, func(key string, values []string) { c(key, values, emit) })
	return out
}

// sortPairs sorts the reduce-side merge buffer, charging the compare work
// of an external merge sort. Hadoop's merge reads its sorted spill
// segments sequentially, so the memory traffic is streaming passes over
// the partition's buffer, not random access.
func sortPairs(fw *framework, rs *xorshift, region sim.DataRegion, pairs []KV, base, bytes uint64) {
	n := len(pairs)
	if n == 0 {
		return
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	logn := 0
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	fw.cpu.Code(fw.shuffle, fw.off(rs, fw.shuffle), 768)
	// Two streaming passes (read the segments, write the merged run)...
	if bytes > 0 {
		fw.cpu.LoadR(region, base, int(bytes))
		fw.cpu.StoreR(region, base, int(bytes))
	}
	// ...and n·log2(n) compares of CPU work, charged in batches.
	per := 1 << 12
	total := n * logn
	for done := 0; done < total; done += per {
		b := per
		if total-done < b {
			b = total - done
		}
		fw.cpu.IntOps(b * 5) // comparator dispatch + copy per compare
		fw.cpu.Branches(b * 2)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// foreachGroup walks key-sorted pairs and invokes fn once per distinct key.
func foreachGroup(pairs []KV, fn func(key string, values []string)) {
	i := 0
	for i < len(pairs) {
		j := i + 1
		for j < len(pairs) && pairs[j].Key == pairs[i].Key {
			j++
		}
		values := make([]string, 0, j-i)
		for _, kv := range pairs[i:j] {
			values = append(values, kv.Value)
		}
		fn(pairs[i].Key, values)
		i = j
	}
}

func splitInput(input []Record, n int) [][]Record {
	if n <= 0 {
		n = 1
	}
	if n > len(input) {
		n = len(input)
	}
	if n == 0 {
		return nil
	}
	splits := make([][]Record, 0, n)
	per := (len(input) + n - 1) / n
	for i := 0; i < len(input); i += per {
		end := i + per
		if end > len(input) {
			end = len(input)
		}
		splits = append(splits, input[i:end])
	}
	return splits
}

func partition(key string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// runParallel executes fn(0..n-1) on up to workers goroutines.
func runParallel(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
