package mapreduce

import (
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func wordCountJob(t *testing.T, cfg Config, lines []string) map[string]int {
	t.Helper()
	input := make([]Record, len(lines))
	for i, l := range lines {
		input[i] = Record{Key: strconv.Itoa(i), Value: l}
	}
	res, err := Run(cfg, input,
		func(_, v string, emit func(k, v string)) {
			for _, w := range strings.Fields(v) {
				emit(w, "1")
			}
		},
		func(k string, vs []string, emit func(k, v string)) {
			total := 0
			for _, v := range vs {
				n, err := strconv.Atoi(v)
				if err != nil {
					t.Fatalf("bad count %q", v)
				}
				total += n
			}
			emit(k, strconv.Itoa(total))
		})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, kv := range res.Sorted() {
		n, _ := strconv.Atoi(kv.Value)
		out[kv.Key] = n
	}
	return out
}

func TestWordCountCorrect(t *testing.T) {
	got := wordCountJob(t, Config{Workers: 3, Reducers: 4},
		[]string{"a b a", "b c", "a"})
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
}

func TestCombinerPreservesResultAndShrinksShuffle(t *testing.T) {
	lines := []string{}
	for i := 0; i < 200; i++ {
		lines = append(lines, "x y x z x")
	}
	input := make([]Record, len(lines))
	for i, l := range lines {
		input[i] = Record{Key: strconv.Itoa(i), Value: l}
	}
	mapper := func(_, v string, emit func(k, v string)) {
		for _, w := range strings.Fields(v) {
			emit(w, "1")
		}
	}
	sum := func(k string, vs []string, emit func(k, v string)) {
		total := 0
		for _, v := range vs {
			n, _ := strconv.Atoi(v)
			total += n
		}
		emit(k, strconv.Itoa(total))
	}
	plain, err := Run(Config{Workers: 4}, input, mapper, sum)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := Run(Config{Workers: 4, Combiner: sum}, input, mapper, sum)
	if err != nil {
		t.Fatal(err)
	}
	if comb.CombinedPairs >= plain.CombinedPairs {
		t.Errorf("combiner did not shrink shuffle: %d vs %d",
			comb.CombinedPairs, plain.CombinedPairs)
	}
	a, b := plain.Sorted(), comb.Sorted()
	if len(a) != len(b) {
		t.Fatalf("output size differs with combiner: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPartitionsAreKeySorted(t *testing.T) {
	input := []Record{}
	for i := 0; i < 500; i++ {
		input = append(input, Record{Key: strconv.Itoa(i), Value: strconv.Itoa(i % 17)})
	}
	res, err := Run(Config{Workers: 4, Reducers: 3}, input,
		func(k, v string, emit func(k, v string)) { emit(v, k) },
		func(k string, vs []string, emit func(k, v string)) {
			emit(k, strconv.Itoa(len(vs)))
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions) != 3 {
		t.Fatalf("partitions = %d", len(res.Partitions))
	}
	for _, p := range res.Partitions {
		if !sort.SliceIsSorted(p, func(i, j int) bool { return p[i].Key < p[j].Key }) {
			t.Fatal("partition not key-sorted")
		}
	}
}

func TestIdentityJobPreservesPairs(t *testing.T) {
	input := []Record{{"k1", "v1"}, {"k2", "v2"}, {"k1", "v3"}}
	res, err := Run(Config{Workers: 2}, input,
		func(k, v string, emit func(k, v string)) { emit(k, v) },
		func(k string, vs []string, emit func(k, v string)) {
			for _, v := range vs {
				emit(k, v)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Sorted()
	want := []KV{{"k1", "v1"}, {"k1", "v3"}, {"k2", "v2"}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(Config{}, nil,
		func(k, v string, emit func(k, v string)) { emit(k, v) },
		func(k string, vs []string, emit func(k, v string)) {})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputPairs != 0 || res.InputRecords != 0 {
		t.Fatalf("unexpected output for empty input: %+v", res)
	}
}

func TestMissingFuncsRejected(t *testing.T) {
	if _, err := Run(Config{}, nil, nil, nil); err == nil {
		t.Fatal("want error for nil mapper/reducer")
	}
}

// Property: word counts from the engine equal a sequential reference count,
// for arbitrary small documents.
func TestWordCountMatchesReferenceProperty(t *testing.T) {
	f := func(words []uint8, workers uint8) bool {
		vocab := []string{"alpha", "beta", "gamma", "delta"}
		var sb strings.Builder
		ref := map[string]int{}
		for _, w := range words {
			word := vocab[int(w)%len(vocab)]
			sb.WriteString(word)
			sb.WriteByte(' ')
			ref[word]++
		}
		got := wordCountJob(nil2t(t), Config{Workers: int(workers%4) + 1}, []string{sb.String()})
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// nil2t adapts the helper's *testing.T requirement inside quick.Check.
func nil2t(t *testing.T) *testing.T { return t }

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	lines := []string{"p q r", "q r q", "r r r", "p"}
	a := wordCountJob(t, Config{Workers: 1}, lines)
	b := wordCountJob(t, Config{Workers: 8, Reducers: 5}, lines)
	if len(a) != len(b) {
		t.Fatalf("%v vs %v", a, b)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Errorf("count[%s]: %d vs %d", k, a[k], b[k])
		}
	}
}

func TestInstrumentedRunProducesFrameworkStream(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	lines := make([]string, 300)
	for i := range lines {
		lines[i] = "the quick brown fox jumps over the lazy dog again and again"
	}
	input := make([]Record, len(lines))
	for i, l := range lines {
		input[i] = Record{Key: strconv.Itoa(i), Value: l}
	}
	_, err := Run(Config{Workers: 2, CPU: cpu}, input,
		func(_, v string, emit func(k, v string)) {
			for _, w := range strings.Fields(v) {
				emit(w, "1")
			}
		},
		func(k string, vs []string, emit func(k, v string)) {
			emit(k, strconv.Itoa(len(vs)))
		})
	if err != nil {
		t.Fatal(err)
	}
	k := cpu.Counts()
	if k.Instructions() == 0 {
		t.Fatal("instrumented run recorded no instructions")
	}
	if k.L1I.Accesses == 0 || k.L1D.Accesses == 0 {
		t.Fatal("instrumented run did not touch the caches")
	}
	if k.L1IMPKI() < 1 {
		t.Errorf("deep framework stack should produce L1I misses, MPKI = %.2f", k.L1IMPKI())
	}
	if k.FPInstrs == 0 {
		t.Error("framework should carry a small FP component (progress metrics)")
	}
	if ratio := k.IntToFPRatio(); ratio < 20 {
		t.Errorf("framework int/FP ratio = %.1f; must stay integer-dominated", ratio)
	}
}
