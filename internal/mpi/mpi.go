// Package mpi is a rank-based message-passing runtime over goroutines and
// channels — the repository's substitute for the paper's MPICH2 stack
// (DESIGN.md §1). It provides the primitives the BFS workload (and the
// HPCC COMM comparator) need: point-to-point Send/Recv, Barrier, and the
// Allreduce/Alltoall collectives, with per-message pack/unpack
// instrumentation when a characterization CPU is attached. The MPI
// framework's code footprint is deliberately small next to the
// Hadoop-style stacks: that contrast is part of the paper's story about
// software stacks shaping the microarchitectural profile.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// World is one MPI job: size ranks executing the same function.
type World struct {
	size    int
	mail    [][]chan []byte // mail[from][to]
	barrier *barrier

	cpu       *sim.CPU
	transport *sim.CodeRegion
	sendBuf   sim.DataRegion
	recvBuf   sim.DataRegion

	mu         sync.Mutex
	rs         uint64
	sent       uint64
	sentMsg    uint64
	reduceVals []int64
}

// Run executes fn on size ranks (goroutines) and waits for all of them.
// The first non-nil error aborts the return value (all ranks still run to
// completion — collectives would otherwise deadlock). cpu may be nil.
func Run(size int, cpu *sim.CPU, fn func(c *Comm) error) error {
	if size <= 0 {
		return fmt.Errorf("mpi: world size %d must be positive", size)
	}
	w := &World{
		size:      size,
		barrier:   newBarrier(size),
		cpu:       cpu,
		transport: cpu.NewCodeRegion("mpi.transport", 40<<10),
		sendBuf:   cpu.Alloc("mpi.sendbuf", 4<<20),
		recvBuf:   cpu.Alloc("mpi.recvbuf", 4<<20),
		rs:        0x2545f4914f6cdd1d,
	}
	// Launcher/communicator setup latency: pure stall.
	cpu.Stall(3e6)
	w.mail = make([][]chan []byte, size)
	for i := range w.mail {
		w.mail[i] = make([]chan []byte, size)
		for j := range w.mail[i] {
			w.mail[i][j] = make(chan []byte, 64)
		}
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats reports total payload bytes and message count sent in the world.
func (w *World) stats() (bytes, msgs uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sent, w.sentMsg
}

// Comm is one rank's communicator.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// BytesSent reports (totalPayloadBytes, messageCount) for the whole world.
func (c *Comm) BytesSent() (uint64, uint64) { return c.world.stats() }

func (w *World) chargeMsg(n int) {
	if w.cpu == nil {
		return
	}
	w.mu.Lock()
	w.rs ^= w.rs << 13
	w.rs ^= w.rs >> 7
	w.rs ^= w.rs << 17
	off := w.rs % w.transport.Size()
	w.sent += uint64(n)
	w.sentMsg++
	w.mu.Unlock()
	// Pack on the sender, unpack on the receiver: a copy each way plus
	// protocol bookkeeping.
	w.cpu.Code(w.transport, off, 512)
	w.cpu.IntOps(80)
	w.cpu.Branches(16)
	w.cpu.FPOps(1)
	w.cpu.LoadR(w.sendBuf, uint64(n), n)
	w.cpu.StoreR(w.recvBuf, uint64(n), n)
}

// Send delivers data to rank to. The payload is transferred by reference;
// senders must not mutate it afterwards (as with MPI buffer ownership).
func (c *Comm) Send(to int, data []byte) {
	c.world.chargeMsg(len(data))
	c.world.mail[c.rank][to] <- data
}

// Recv blocks until a message from rank from arrives.
func (c *Comm) Recv(from int) []byte {
	return <-c.world.mail[from][c.rank]
}

// SendInt32s sends an int32 vector (BFS frontier exchange format).
func (c *Comm) SendInt32s(to int, data []int32) {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		u := uint32(v)
		buf[4*i] = byte(u)
		buf[4*i+1] = byte(u >> 8)
		buf[4*i+2] = byte(u >> 16)
		buf[4*i+3] = byte(u >> 24)
	}
	c.Send(to, buf)
}

// RecvInt32s receives an int32 vector from rank from.
func (c *Comm) RecvInt32s(from int) []int32 {
	buf := c.Recv(from)
	out := make([]int32, len(buf)/4)
	for i := range out {
		out[i] = int32(uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 |
			uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24)
	}
	return out
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.world.barrier.await() }

// AllreduceInt64 combines each rank's value with op (must be associative
// and commutative) and returns the global result on every rank.
func (c *Comm) AllreduceInt64(v int64, op func(a, b int64) int64) int64 {
	w := c.world
	w.mu.Lock()
	if w.reduceVals == nil {
		w.reduceVals = make([]int64, w.size)
	}
	w.reduceVals[c.rank] = v
	w.mu.Unlock()
	c.Barrier()
	acc := w.reduceVals[0]
	for _, x := range w.reduceVals[1:] {
		acc = op(acc, x)
	}
	w.chargeMsg(8 * w.size)
	c.Barrier() // everyone has read before any next-round write
	return acc
}

// AlltoallInt32s sends out[r] to each rank r and returns the vectors
// received from every rank (in[r] came from rank r). len(out) must equal
// the world size.
func (c *Comm) AlltoallInt32s(out [][]int32) [][]int32 {
	w := c.world
	if len(out) != w.size {
		panic("mpi: AlltoallInt32s requires one vector per rank")
	}
	for to := 0; to < w.size; to++ {
		c.SendInt32s(to, out[to])
	}
	in := make([][]int32, w.size)
	for from := 0; from < w.size; from++ {
		in[from] = c.RecvInt32s(from)
	}
	return in
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
