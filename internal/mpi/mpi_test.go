package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPingPong(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, []byte("ping"))
			if got := string(c.Recv(1)); got != "pong" {
				return errors.New("rank0 got " + got)
			}
		} else {
			if got := string(c.Recv(0)); got != "ping" {
				return errors.New("rank1 got " + got)
			}
			c.Send(0, []byte("pong"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInt32RoundTrip(t *testing.T) {
	want := []int32{0, 1, -1, 1 << 30, -(1 << 30), 42}
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendInt32s(1, want)
			return nil
		}
		got := c.RecvInt32s(0)
		if len(got) != len(want) {
			return errors.New("length mismatch")
		}
		for i := range want {
			if got[i] != want[i] {
				return errors.New("value mismatch")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	const n = 8
	var phase1 atomic.Int32
	err := Run(n, nil, func(c *Comm) error {
		phase1.Add(1)
		c.Barrier()
		if got := phase1.Load(); got != n {
			return errors.New("barrier released before all ranks arrived")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	const n = 6
	err := Run(n, nil, func(c *Comm) error {
		got := c.AllreduceInt64(int64(c.Rank()+1), func(a, b int64) int64 { return a + b })
		if got != n*(n+1)/2 {
			return errors.New("bad allreduce sum")
		}
		// Second round must not see stale values.
		got = c.AllreduceInt64(1, func(a, b int64) int64 { return a + b })
		if got != n {
			return errors.New("bad second allreduce")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const n = 4
	err := Run(n, nil, func(c *Comm) error {
		out := make([][]int32, n)
		for to := range out {
			out[to] = []int32{int32(c.Rank()*100 + to)}
		}
		in := c.AlltoallInt32s(out)
		for from := range in {
			if len(in[from]) != 1 || in[from][0] != int32(from*100+c.Rank()) {
				return errors.New("alltoall mismatch")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := Run(3, nil, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, nil, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("want error for size 0")
	}
}

// Property: allreduce(max) over arbitrary per-rank values equals the true max.
func TestAllreduceMaxProperty(t *testing.T) {
	f := func(vals [5]int16) bool {
		want := int64(vals[0])
		for _, v := range vals[1:] {
			if int64(v) > want {
				want = int64(v)
			}
		}
		ok := true
		err := Run(5, nil, func(c *Comm) error {
			got := c.AllreduceInt64(int64(vals[c.Rank()]), func(a, b int64) int64 {
				if a > b {
					return a
				}
				return b
			})
			if got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInstrumentedTrafficAccounting(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	err := Run(2, cpu, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, make([]byte, 1000))
			return nil
		}
		c.Recv(0)
		bytes, msgs := c.BytesSent()
		if bytes != 1000 || msgs != 1 {
			return errors.New("traffic accounting wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Counts().Instructions() == 0 {
		t.Fatal("instrumented send recorded no instructions")
	}
}
