package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testCache(t *testing.T, size, assoc int) *Cache {
	t.Helper()
	return NewCache(CacheConfig{Name: "t", Size: size, Assoc: assoc, LineSize: 64})
}

func TestCacheHitAfterFill(t *testing.T) {
	c := testCache(t, 4096, 4)
	if hit, _ := c.Access(10, false); hit {
		t.Fatal("cold access must miss")
	}
	if hit, _ := c.Access(10, false); !hit {
		t.Fatal("second access to same line must hit")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 accesses, 1 miss", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets: lines 0,2,4 map to set 0 (stride = numSets).
	c := NewCache(CacheConfig{Name: "t", Size: 256, Assoc: 2, LineSize: 64})
	if n := c.Config().NumSets(); n != 2 {
		t.Fatalf("NumSets = %d, want 2", n)
	}
	c.Access(0, false) // set 0
	c.Access(2, false) // set 0
	c.Access(0, false) // refresh 0 → LRU victim is 2
	c.Access(4, false) // evicts 2
	if hit, _ := c.Access(0, false); !hit {
		t.Error("line 0 should survive (was MRU)")
	}
	if hit, _ := c.Access(2, false); hit {
		t.Error("line 2 should have been evicted as LRU")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", Size: 128, Assoc: 1, LineSize: 64})
	c.Access(0, true)           // dirty line in set 0
	_, wb := c.Access(2, false) // conflicts in set 0, evicts dirty
	if !wb {
		t.Error("evicting a dirty line must report a writeback")
	}
	if c.Stats().DirtyEvicts != 1 {
		t.Errorf("DirtyEvicts = %d, want 1", c.Stats().DirtyEvicts)
	}
	_, wb = c.Access(0, false) // evicts clean line 2
	if wb {
		t.Error("evicting a clean line must not report a writeback")
	}
}

func TestCacheWorkingSetFitsNoSteadyStateMisses(t *testing.T) {
	c := testCache(t, 32<<10, 8) // 512 lines
	for pass := 0; pass < 3; pass++ {
		for line := uint64(0); line < 512; line++ {
			c.Access(line, false)
		}
	}
	s := c.Stats()
	if s.Misses != 512 {
		t.Errorf("misses = %d, want exactly the 512 cold misses", s.Misses)
	}
}

func TestCacheThrashingWorkingSet(t *testing.T) {
	c := testCache(t, 32<<10, 8) // 512 lines capacity
	// Cyclic walk over 1024 lines with LRU: every access misses after warmup.
	var missesAfterWarm uint64
	for pass := 0; pass < 4; pass++ {
		if pass == 1 {
			c.ResetStats()
		}
		for line := uint64(0); line < 1024; line++ {
			c.Access(line, false)
		}
		if pass >= 1 {
			missesAfterWarm = c.Stats().Misses
		}
	}
	if rate := float64(missesAfterWarm) / float64(c.Stats().Accesses); rate < 0.99 {
		t.Errorf("cyclic over-capacity walk should thrash: miss rate %.3f", rate)
	}
}

func TestCacheResetClearsContents(t *testing.T) {
	c := testCache(t, 4096, 4)
	c.Access(1, true)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Fatalf("Reset did not clear stats: %+v", s)
	}
	if hit, _ := c.Access(1, false); hit {
		t.Fatal("Reset did not clear contents")
	}
}

// Property: miss count never exceeds access count, and hits+misses == accesses.
func TestCacheCountsConsistencyProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := testCache(t, 2048, 2)
		var hits uint64
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			if hit, _ := c.Access(uint64(a), w); hit {
				hits++
			}
		}
		s := c.Stats()
		return s.Accesses == uint64(len(addrs)) && hits+s.Misses == s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a direct-repeat of any access sequence entirely contained in a
// large-enough cache yields zero misses the second time.
func TestCacheContainmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := testCache(t, 64<<10, 16) // 1024 lines
		seq := make([]uint64, 300)
		for i := range seq {
			seq[i] = uint64(rng.Intn(900)) // < capacity
		}
		for _, a := range seq {
			c.Access(a, false)
		}
		c.ResetStats()
		for _, a := range seq {
			c.Access(a, false)
		}
		return c.Stats().Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTLBBasics(t *testing.T) {
	tl := NewTLB(TLBConfig{Name: "t", Entries: 64, Assoc: 4})
	if tl.Access(5) {
		t.Fatal("cold TLB access must miss")
	}
	if !tl.Access(5) {
		t.Fatal("repeat TLB access must hit")
	}
	s := tl.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	tl.Reset()
	if tl.Access(5) {
		t.Fatal("Reset must clear TLB contents")
	}
}

func TestTLBCapacity(t *testing.T) {
	tl := NewTLB(TLBConfig{Name: "t", Entries: 64, Assoc: 4})
	for page := uint64(0); page < 64; page++ {
		tl.Access(page)
	}
	tl.ResetStats()
	for page := uint64(0); page < 64; page++ {
		if !tl.Access(page) {
			t.Fatalf("page %d should be resident (reach = 64 pages)", page)
		}
	}
}

func TestNewCacheRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for geometry with zero sets")
		}
	}()
	NewCache(CacheConfig{Name: "bad", Size: 64, Assoc: 4, LineSize: 64})
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// The E5645 L3 geometry: 12 MiB, 16-way, 64 B lines → 12288 sets.
	c := NewCache(CacheConfig{Name: "L3", Size: 12 << 20, Assoc: 16, LineSize: 64})
	for line := uint64(0); line < 20000; line++ {
		c.Access(line, false)
	}
	c.ResetStats()
	for line := uint64(0); line < 20000; line++ {
		c.Access(line, line%7 == 0)
	}
	s := c.Stats()
	if s.Accesses != 20000 {
		t.Fatalf("accesses = %d", s.Accesses)
	}
	if s.Misses > 2000 {
		t.Errorf("20000 lines in a 196608-line cache should mostly hit, misses = %d", s.Misses)
	}
}
