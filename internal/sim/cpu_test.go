package sim

import (
	"math"
	"sync"
	"testing"
)

func TestNilCPUIsSafe(t *testing.T) {
	var c *CPU
	r := c.NewCodeRegion("x", 4096)
	d := c.Alloc("d", 100)
	c.Code(r, 0, 0)
	c.Load(d.Addr(0), 8)
	c.Store(d.Addr(8), 8)
	c.IntOps(10)
	c.FPOps(3)
	c.Branches(2)
	c.ResetStats()
	if got := c.Counts().Instructions(); got != 0 {
		t.Fatalf("nil CPU recorded %d instructions", got)
	}
}

func TestInstructionAccounting(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("kernel", 4096)
	d := c.Alloc("data", 1<<20)
	c.Code(r, 0, 512)
	c.Load(d.Addr(0), 64)  // 8 load instrs
	c.Store(d.Addr(64), 8) // 1 store instr
	c.IntOps(100)
	c.FPOps(10)
	c.Branches(20)
	k := c.Counts()
	if k.LoadInstrs != 8 || k.StoreInstrs != 1 || k.IntInstrs != 100 ||
		k.FPInstrs != 10 || k.BranchInstrs != 20 {
		t.Fatalf("counts = %+v", k)
	}
	if k.Instructions() != 139 {
		t.Fatalf("Instructions() = %d, want 139", k.Instructions())
	}
	mix := k.Mix()
	sum := mix.Load + mix.Store + mix.Branch + mix.Integer + mix.FP
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mix fractions sum to %f", sum)
	}
}

func TestSequentialScanMissesOncePerLine(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("kernel", 1024)
	d := c.Alloc("data", 1<<20)
	c.Code(r, 0, 256)
	const total = 1 << 16 // 64 KiB: 1024 lines, larger than L1D
	for off := uint64(0); off < total; off += 8 {
		c.Load(d.Addr(off), 8)
	}
	k := c.Counts()
	wantLines := uint64(total / 64)
	if k.L1D.Misses != wantLines {
		t.Errorf("L1D misses = %d, want one per line = %d", k.L1D.Misses, wantLines)
	}
	// Streaming through a cold region should also miss L2 and L3 once per
	// data line, plus the handful of cold instruction-fetch lines of the
	// 256-byte loop body (4 lines).
	codeLines := uint64(4)
	if k.L2.Misses != wantLines+codeLines || k.L3.Misses != wantLines+codeLines {
		t.Errorf("L2/L3 misses = %d/%d, want %d each", k.L2.Misses, k.L3.Misses, wantLines+codeLines)
	}
	if k.DRAMReadBytes != (wantLines+codeLines)*64 {
		t.Errorf("DRAM read bytes = %d, want %d", k.DRAMReadBytes, (wantLines+codeLines)*64)
	}
}

func TestTightLoopHasNoL1IMissesAfterWarmup(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("hotloop", 64<<10)
	c.Code(r, 0, 512) // 512-byte loop body
	c.IntOps(10000)
	c.ResetStats()
	c.IntOps(100000)
	if m := c.Counts().L1I.Misses; m != 0 {
		t.Errorf("hot loop should not miss L1I in steady state, got %d misses", m)
	}
}

func TestLargeCodeFootprintMissesL1I(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("framework", 512<<10) // 16x the 32 KiB L1I
	// Touch widely spread windows, as a deep branchy stack does.
	rng := uint64(1)
	for i := 0; i < 3000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		off := (rng >> 20) % (500 << 10)
		c.Code(r, off, 256)
		c.IntOps(64)
	}
	k := c.Counts()
	if mpki := k.L1IMPKI(); mpki < 10 {
		t.Errorf("large-footprint code should produce high L1I MPKI, got %.2f", mpki)
	}
	if k.ITLB.Misses == 0 {
		t.Error("spread code should also miss the ITLB")
	}
}

func TestL3AbsorbsL2MissesForMediumWorkingSet(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("kernel", 1024)
	c.Code(r, 0, 256)
	d := c.Alloc("table", 4<<20) // 4 MiB: > 256 KiB L2, < 12 MiB L3
	// Two passes: first warms L3, second should hit L3 on L2 misses.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.ResetStats()
		}
		for off := uint64(0); off < 4<<20; off += 64 {
			c.Load(d.Addr(off), 8)
		}
	}
	k := c.Counts()
	if k.L2.Misses == 0 {
		t.Fatal("4 MiB working set must miss the 256 KiB L2")
	}
	if k.L3.Misses != 0 {
		t.Errorf("4 MiB working set should be L3-resident, got %d L3 misses", k.L3.Misses)
	}
}

func TestNoL3MachineRoutesMissesToDRAM(t *testing.T) {
	c := New(XeonE5310())
	r := c.NewCodeRegion("kernel", 1024)
	c.Code(r, 0, 256)
	d := c.Alloc("big", 16<<20)
	for off := uint64(0); off < 8<<20; off += 64 {
		c.Load(d.Addr(off), 8)
	}
	k := c.Counts()
	if k.HasL3 {
		t.Fatal("E5310 must not report an L3")
	}
	if k.DRAMReadBytes == 0 {
		t.Fatal("L2 misses must reach DRAM on a two-level machine")
	}
	if k.L3MPKI() != k.L2MPKI() {
		t.Error("on a two-level machine L3MPKI must alias the last level (L2)")
	}
}

func TestOperationIntensityMachineContrast(t *testing.T) {
	// The same kernel stream must show higher intensity on the E5645 than
	// the E5310 when the working set fits in L3 but not in either L2
	// (Figure 5's key contrast: L3 filters DRAM traffic).
	run := func(cfg MachineConfig) Counts {
		c := New(cfg)
		r := c.NewCodeRegion("kernel", 1024)
		c.Code(r, 0, 256)
		d := c.Alloc("ws", 8<<20)
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				c.ResetStats()
			}
			for off := uint64(0); off < 8<<20; off += 64 {
				c.Load(d.Addr(off), 8)
				c.FPOps(4)
			}
		}
		return c.Counts()
	}
	k5645 := run(XeonE5645())
	k5310 := run(XeonE5310())
	if k5645.FPIntensity() <= k5310.FPIntensity() {
		t.Errorf("FP intensity E5645 (%.4f) should exceed E5310 (%.4f)",
			k5645.FPIntensity(), k5310.FPIntensity())
	}
}

func TestResetStatsKeepsCacheContents(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("k", 1024)
	c.Code(r, 0, 256)
	d := c.Alloc("d", 1<<16)
	for off := uint64(0); off < 1<<15; off += 8 {
		c.Load(d.Addr(off), 8)
	}
	c.ResetStats()
	for off := uint64(0); off < 1<<15; off += 8 {
		c.Load(d.Addr(off), 8)
	}
	k := c.Counts()
	if k.L1D.Misses != 0 {
		t.Errorf("after warmup, resident 32 KiB set should not miss, got %d", k.L1D.Misses)
	}
}

func TestConcurrentEventsDoNotRace(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("k", 8192)
	d := c.Alloc("d", 1<<20)
	c.Code(r, 0, 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Load(d.Addr(uint64(g*4096+i*8)), 8)
				c.IntOps(3)
				c.Branches(1)
			}
		}(g)
	}
	wg.Wait()
	k := c.Counts()
	if k.LoadInstrs != 8000 || k.IntInstrs != 24000 || k.BranchInstrs != 8000 {
		t.Fatalf("lost updates under concurrency: %+v", k)
	}
}

func TestTimingModelMonotonicInMisses(t *testing.T) {
	cfg := XeonE5645()
	base := Counts{IntInstrs: 1_000_000}
	missy := base
	missy.L1D = CacheStats{Accesses: 100000, Misses: 50000}
	missy.L2 = CacheStats{Accesses: 50000, Misses: 40000}
	missy.L3 = CacheStats{Accesses: 40000, Misses: 30000}
	missy.HasL3 = true
	if base.Cycles(cfg.Timing) >= missy.Cycles(cfg.Timing) {
		t.Error("more misses must cost more cycles")
	}
	if base.MIPS(cfg.Timing) <= missy.MIPS(cfg.Timing) {
		t.Error("more misses must lower MIPS")
	}
}

func TestAllocSeparatesRegions(t *testing.T) {
	c := New(XeonE5645())
	a := c.Alloc("a", 1<<20)
	b := c.Alloc("b", 1<<20)
	if a.Base+a.Size > b.Base {
		t.Fatalf("regions overlap: a=[%x,+%x] b=%x", a.Base, a.Size, b.Base)
	}
	ra := c.NewCodeRegion("ra", 1<<16)
	rb := c.NewCodeRegion("rb", 1<<16)
	if ra.base+ra.size > rb.base {
		t.Fatalf("code regions overlap")
	}
}

func TestCountsSubWindow(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("k", 1024)
	c.Code(r, 0, 256)
	c.IntOps(1000)
	before := c.Counts()
	c.IntOps(500)
	win := c.Counts().Sub(before)
	if win.IntInstrs != 500 {
		t.Fatalf("windowed IntInstrs = %d, want 500", win.IntInstrs)
	}
}
