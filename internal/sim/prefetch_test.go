package sim

import "testing"

func TestNextLinePrefetchCutsSequentialMisses(t *testing.T) {
	run := func(pf bool) Counts {
		cfg := XeonE5645()
		cfg.NextLinePrefetch = pf
		c := New(cfg)
		r := c.NewCodeRegion("k", 1024)
		c.Code(r, 0, 256)
		d := c.Alloc("stream", 8<<20)
		for off := uint64(0); off < 8<<20; off += 8 {
			c.Load(d.Addr(off), 8)
		}
		return c.Counts()
	}
	plain := run(false)
	pf := run(true)
	if pf.Prefetches == 0 {
		t.Fatal("prefetcher issued nothing")
	}
	if pf.L1D.Misses >= plain.L1D.Misses {
		t.Errorf("sequential stream: prefetch should cut L1D misses (%d vs %d)",
			pf.L1D.Misses, plain.L1D.Misses)
	}
	// Roughly every other line should now be a prefetch hit.
	if ratio := float64(pf.L1D.Misses) / float64(plain.L1D.Misses); ratio > 0.6 {
		t.Errorf("prefetch miss ratio %.2f, want ≈0.5 for a pure stream", ratio)
	}
}

func TestNextLinePrefetchNeutralOnRandomAccess(t *testing.T) {
	run := func(pf bool) Counts {
		cfg := XeonE5645()
		cfg.NextLinePrefetch = pf
		c := New(cfg)
		r := c.NewCodeRegion("k", 1024)
		c.Code(r, 0, 256)
		d := c.Alloc("table", 32<<20)
		v := uint64(1)
		for i := 0; i < 200000; i++ {
			v ^= v << 13
			v ^= v >> 7
			v ^= v << 17
			c.Load(d.Addr(v%(32<<20)), 8)
		}
		return c.Counts()
	}
	plain := run(false)
	pf := run(true)
	// Random access gains almost nothing; misses must stay within a few
	// percent (the prefetcher may even pollute slightly).
	lo := float64(plain.L1D.Misses) * 0.9
	hi := float64(plain.L1D.Misses) * 1.1
	if got := float64(pf.L1D.Misses); got < lo || got > hi {
		t.Errorf("random access: prefetch changed misses too much (%d vs %d)",
			pf.L1D.Misses, plain.L1D.Misses)
	}
}

func TestWithPrefetchHelper(t *testing.T) {
	cfg := WithPrefetch(XeonE5645())
	if !cfg.NextLinePrefetch {
		t.Fatal("WithPrefetch did not enable the prefetcher")
	}
	if cfg.Name != "E5645+pf" {
		t.Errorf("name = %s", cfg.Name)
	}
	base := NoL3(XeonE5645())
	if base.L3 != nil || base.Name != "E5645-noL3" {
		t.Errorf("NoL3 helper wrong: %+v", base.Name)
	}
}

func TestFillDoesNotTouchDemandStats(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", Size: 4096, Assoc: 4, LineSize: 64})
	c.Fill(7)
	s := c.Stats()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Fatalf("Fill must not count demand accesses: %+v", s)
	}
	if hit, _ := c.Access(7, false); !hit {
		t.Fatal("filled line should hit on the next demand access")
	}
}
