package sim

import "math"

// Counts is a raw snapshot of every simulated counter; the analogue of one
// Perf read-out in the paper's methodology (Section 6.1.1).
type Counts struct {
	LoadInstrs   uint64
	StoreInstrs  uint64
	IntInstrs    uint64
	FPInstrs     uint64
	BranchInstrs uint64

	L1I   CacheStats
	L1D   CacheStats
	L2    CacheStats
	L3    CacheStats
	HasL3 bool

	ITLB TLBStats
	DTLB TLBStats

	DRAMReadBytes  uint64
	DRAMWriteBytes uint64

	// StallCycles are explicit no-retire cycles (startup, GC, I/O waits)
	// charged via CPU.Stall; they enter the timing model only.
	StallCycles float64
	// Prefetches counts next-line prefetch fills issued.
	Prefetches uint64
}

// Instructions is the total retired instruction count.
func (k Counts) Instructions() uint64 {
	return k.LoadInstrs + k.StoreInstrs + k.IntInstrs + k.FPInstrs + k.BranchInstrs
}

// Sub returns k - base, for windowed measurements.
func (k Counts) Sub(base Counts) Counts {
	k.LoadInstrs -= base.LoadInstrs
	k.StoreInstrs -= base.StoreInstrs
	k.IntInstrs -= base.IntInstrs
	k.FPInstrs -= base.FPInstrs
	k.BranchInstrs -= base.BranchInstrs
	k.L1I = subCache(k.L1I, base.L1I)
	k.L1D = subCache(k.L1D, base.L1D)
	k.L2 = subCache(k.L2, base.L2)
	k.L3 = subCache(k.L3, base.L3)
	k.ITLB = TLBStats{k.ITLB.Accesses - base.ITLB.Accesses, k.ITLB.Misses - base.ITLB.Misses}
	k.DTLB = TLBStats{k.DTLB.Accesses - base.DTLB.Accesses, k.DTLB.Misses - base.DTLB.Misses}
	k.DRAMReadBytes -= base.DRAMReadBytes
	k.DRAMWriteBytes -= base.DRAMWriteBytes
	k.StallCycles -= base.StallCycles
	return k
}

func subCache(a, b CacheStats) CacheStats {
	return CacheStats{a.Accesses - b.Accesses, a.Misses - b.Misses, a.DirtyEvicts - b.DirtyEvicts}
}

// InstrMix is the Figure-4 instruction breakdown, as fractions summing to 1.
type InstrMix struct {
	Load, Store, Branch, Integer, FP float64
}

// Mix computes the instruction breakdown.
func (k Counts) Mix() InstrMix {
	total := float64(k.Instructions())
	if total == 0 {
		return InstrMix{}
	}
	return InstrMix{
		Load:    float64(k.LoadInstrs) / total,
		Store:   float64(k.StoreInstrs) / total,
		Branch:  float64(k.BranchInstrs) / total,
		Integer: float64(k.IntInstrs) / total,
		FP:      float64(k.FPInstrs) / total,
	}
}

// perKilo returns events per 1000 instructions.
func (k Counts) perKilo(events uint64) float64 {
	in := k.Instructions()
	if in == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(in)
}

// L1IMPKI is L1 instruction-cache misses per kilo-instruction.
func (k Counts) L1IMPKI() float64 { return k.perKilo(k.L1I.Misses) }

// L1DMPKI is L1 data-cache misses per kilo-instruction.
func (k Counts) L1DMPKI() float64 { return k.perKilo(k.L1D.Misses) }

// L2MPKI is unified L2 misses per kilo-instruction.
func (k Counts) L2MPKI() float64 { return k.perKilo(k.L2.Misses) }

// L3MPKI is last-level (L3) misses per kilo-instruction; on a machine with
// no L3 it reports L2 misses, i.e. misses of the actual last level.
func (k Counts) L3MPKI() float64 {
	if !k.HasL3 {
		return k.L2MPKI()
	}
	return k.perKilo(k.L3.Misses)
}

// ITLBMPKI is instruction-TLB misses per kilo-instruction.
func (k Counts) ITLBMPKI() float64 { return k.perKilo(k.ITLB.Misses) }

// DTLBMPKI is data-TLB misses per kilo-instruction.
func (k Counts) DTLBMPKI() float64 { return k.perKilo(k.DTLB.Misses) }

// DRAMBytes is total off-chip traffic: demand fills plus writebacks.
func (k Counts) DRAMBytes() uint64 { return k.DRAMReadBytes + k.DRAMWriteBytes }

// FPIntensity is the paper's floating-point operation intensity: FP
// instructions divided by bytes of memory access (off-chip traffic), per
// Williams et al.'s roofline convention as used in Section 6.3.1.
// A workload that generated no off-chip traffic has infinite intensity.
func (k Counts) FPIntensity() float64 { return intensity(k.FPInstrs, k.DRAMBytes()) }

// IntIntensity is the integer operation intensity.
func (k Counts) IntIntensity() float64 { return intensity(k.IntInstrs, k.DRAMBytes()) }

func intensity(ops, bytes uint64) float64 {
	if bytes == 0 {
		if ops == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(ops) / float64(bytes)
}

// IntToFPRatio is the ratio of integer to floating-point instructions
// (reported as ~75 on average for BigDataBench in Section 6.3.1).
func (k Counts) IntToFPRatio() float64 {
	if k.FPInstrs == 0 {
		return float64(k.IntInstrs)
	}
	return float64(k.IntInstrs) / float64(k.FPInstrs)
}

// Cycles evaluates the timing model over the counters.
func (k Counts) Cycles(t TimingConfig) float64 {
	instr := float64(k.Instructions())
	stall := float64(k.L1I.Misses)*t.L2Latency +
		float64(k.L1D.Misses)*t.L2Latency
	if k.HasL3 {
		stall += float64(k.L2.Misses)*t.L3Latency + float64(k.L3.Misses)*t.MemLatency
	} else {
		stall += float64(k.L2.Misses) * t.MemLatency
	}
	stall += float64(k.ITLB.Misses+k.DTLB.Misses) * t.TLBWalk
	return instr*t.BaseCPI + stall*t.Overlap + k.StallCycles
}

// MIPS is million instructions per second under the machine's timing model,
// scaled by the configured testbed parallelism (the paper plots node-level
// MIPS on the 14-node cluster).
func (k Counts) MIPS(t TimingConfig) float64 {
	cy := k.Cycles(t)
	if cy == 0 {
		return 0
	}
	sec := cy / t.FreqHz
	return float64(k.Instructions()) / sec / 1e6 * t.Parallelism
}

// CPI is cycles per instruction under the timing model.
func (k Counts) CPI(t TimingConfig) float64 {
	in := k.Instructions()
	if in == 0 {
		return 0
	}
	return k.Cycles(t) / float64(in)
}
