package sim

// TLBConfig describes a translation lookaside buffer. Pages are fixed at
// 4 KiB, matching the paper-era testbed (Linux 2.6.34 without hugepages for
// the profiled workloads).
type TLBConfig struct {
	Name    string
	Entries int
	Assoc   int
}

// PageBits is log2 of the modeled page size (4 KiB pages).
const PageBits = 12

// TLB is a set-associative TLB with LRU replacement, addressed by page
// number (byte address >> PageBits).
type TLB struct {
	cfg      TLBConfig
	numSets  uint64
	assoc    int
	lines    []cacheLine
	clock    uint64
	accesses uint64
	misses   uint64
}

// NewTLB builds a TLB; the geometry must imply at least one set.
func NewTLB(cfg TLBConfig) *TLB {
	sets := cfg.Entries / cfg.Assoc
	if sets <= 0 {
		panic("sim: tlb " + cfg.Name + " has no sets")
	}
	return &TLB{
		cfg:     cfg,
		numSets: uint64(sets),
		assoc:   cfg.Assoc,
		lines:   make([]cacheLine, sets*cfg.Assoc),
	}
}

// Config returns the TLB geometry.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Access translates the given page number, reporting whether it hit.
func (t *TLB) Access(page uint64) (hit bool) {
	t.accesses++
	t.clock++
	set := int(page%t.numSets) * t.assoc
	ways := t.lines[set : set+t.assoc]
	victim := 0
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == page {
			w.stamp = t.clock
			return true
		}
		if !w.valid {
			victim = i
		} else if ways[victim].valid && w.stamp < ways[victim].stamp {
			victim = i
		}
	}
	t.misses++
	ways[victim] = cacheLine{tag: page, stamp: t.clock, valid: true}
	return false
}

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	for i := range t.lines {
		t.lines[i] = cacheLine{}
	}
	t.accesses, t.misses, t.clock = 0, 0, 0
}

// ResetStats clears statistics but keeps contents.
func (t *TLB) ResetStats() { t.accesses, t.misses = 0, 0 }

// TLBStats is a snapshot of TLB counters.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// Stats snapshots the counters.
func (t *TLB) Stats() TLBStats { return TLBStats{Accesses: t.accesses, Misses: t.misses} }
