package sim

// TimingConfig parameterizes the simple in-order-with-overlap timing model
// used to derive MIPS from the event stream. Latencies are in core cycles.
type TimingConfig struct {
	BaseCPI    float64 // cycles per instruction with a perfect memory system
	L2Latency  float64 // L1 miss serviced by L2
	L3Latency  float64 // L2 miss serviced by L3 (ignored when no L3)
	MemLatency float64 // last-level miss serviced by DRAM
	TLBWalk    float64 // page-walk cycles per TLB miss
	// Overlap is the fraction of miss latency exposed to the pipeline after
	// out-of-order/MLP overlap (1 = fully exposed, 0 = fully hidden).
	Overlap float64
	FreqHz  float64
	// Parallelism scales reported MIPS to the testbed scale the paper plots
	// (cluster aggregate across active cores), without affecting per-core
	// metrics such as MPKI and operation intensity.
	Parallelism float64
}

// MachineConfig describes one processor model under test.
type MachineConfig struct {
	Name   string
	CPU    string // marketing name, e.g. "Intel Xeon E5645"
	Cores  int    // physical cores per socket (documentation only)
	L1I    CacheConfig
	L1D    CacheConfig
	L2     CacheConfig
	L3     *CacheConfig // nil when the part has no L3 (Xeon E5310)
	ITLB   TLBConfig
	DTLB   TLBConfig
	Timing TimingConfig
	// NextLinePrefetch enables the L1D next-line prefetcher model: each
	// demand miss also fills line+1 into L1D and L2 without touching the
	// demand counters. The default machine models keep it off — the
	// calibration target is the paper's demand-miss MPKI — and the
	// prefetch ablation bench switches it on to measure its effect.
	NextLinePrefetch bool
}

// WithPrefetch returns a copy of cfg with the next-line prefetcher on.
func WithPrefetch(cfg MachineConfig) MachineConfig {
	cfg.Name += "+pf"
	cfg.NextLinePrefetch = true
	return cfg
}

// XeonE5645 models the paper's primary testbed processor (Table 5):
// 6 cores @ 2.40 GHz, 32 KB L1I + 32 KB L1D per core, 256 KB private L2 per
// core, and a 12 MB shared L3. The characterization stream is single-core,
// so per-core structures are modeled at per-core size and the shared L3 at
// full size (the paper's per-workload MPKI is likewise normalized per
// instruction, not per core).
func XeonE5645() MachineConfig {
	l3 := CacheConfig{Name: "L3", Size: 12 << 20, Assoc: 16, LineSize: 64}
	return MachineConfig{
		Name:  "E5645",
		CPU:   "Intel Xeon E5645",
		Cores: 6,
		L1I:   CacheConfig{Name: "L1I", Size: 32 << 10, Assoc: 4, LineSize: 64},
		L1D:   CacheConfig{Name: "L1D", Size: 32 << 10, Assoc: 8, LineSize: 64},
		L2:    CacheConfig{Name: "L2", Size: 256 << 10, Assoc: 8, LineSize: 64},
		L3:    &l3,
		ITLB:  TLBConfig{Name: "ITLB", Entries: 64, Assoc: 4},
		DTLB:  TLBConfig{Name: "DTLB", Entries: 64, Assoc: 4},
		Timing: TimingConfig{
			BaseCPI:     0.45,
			L2Latency:   10,
			L3Latency:   34,
			MemLatency:  190,
			TLBWalk:     30,
			Overlap:     0.35,
			FreqHz:      2.40e9,
			Parallelism: 8,
		},
	}
}

// XeonE5310 models the secondary testbed processor (Table 7): 4 cores @
// 1.60 GHz with two cache levels only (32 KB L1s and a 4 MB L2 shared per
// core pair; modeled as the 4 MB last level visible to one stream).
func XeonE5310() MachineConfig {
	return MachineConfig{
		Name:  "E5310",
		CPU:   "Intel Xeon E5310",
		Cores: 4,
		L1I:   CacheConfig{Name: "L1I", Size: 32 << 10, Assoc: 4, LineSize: 64},
		L1D:   CacheConfig{Name: "L1D", Size: 32 << 10, Assoc: 8, LineSize: 64},
		L2:    CacheConfig{Name: "L2", Size: 4 << 20, Assoc: 16, LineSize: 64},
		L3:    nil,
		ITLB:  TLBConfig{Name: "ITLB", Entries: 64, Assoc: 4},
		DTLB:  TLBConfig{Name: "DTLB", Entries: 64, Assoc: 4},
		Timing: TimingConfig{
			BaseCPI:     0.55,
			L2Latency:   14,
			L3Latency:   0,
			MemLatency:  210,
			TLBWalk:     35,
			Overlap:     0.40,
			FreqHz:      1.60e9,
			Parallelism: 6,
		},
	}
}

// NoL3 returns a copy of cfg with the L3 removed, re-pointing last-level
// misses at DRAM. Used by the cache-effectiveness ablation.
func NoL3(cfg MachineConfig) MachineConfig {
	cfg.Name += "-noL3"
	cfg.L3 = nil
	return cfg
}
