package sim

// cacheLine is one way of one set. A zero line is invalid.
type cacheLine struct {
	tag   uint64
	stamp uint64 // LRU clock value of the most recent touch
	valid bool
	dirty bool
}

// CacheConfig describes the geometry of one cache level.
type CacheConfig struct {
	Name     string // e.g. "L1D"
	Size     int    // total capacity in bytes
	Assoc    int    // ways per set
	LineSize int    // bytes per line (64 on both modeled Xeons)
}

// NumSets returns the number of sets implied by the geometry.
func (c CacheConfig) NumSets() int { return c.Size / (c.Assoc * c.LineSize) }

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement. It is addressed by line index (byte address >> log2(LineSize)).
// Cache is not safe for concurrent use; the owning CPU serializes access.
type Cache struct {
	cfg     CacheConfig
	numSets uint64
	assoc   int
	lines   []cacheLine // numSets * assoc, flattened
	clock   uint64

	// Statistics, exported through CacheStats.
	accesses    uint64
	misses      uint64
	dirtyEvicts uint64
}

// NewCache builds a cache from a config. It panics if the geometry implies
// no sets, which would indicate a typo in a machine model. Set counts need
// not be powers of two (the modeled Xeon E5645 L3 has 12288 sets).
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.NumSets()
	if sets <= 0 {
		panic("sim: cache " + cfg.Name + " has no sets")
	}
	return &Cache{
		cfg:     cfg,
		numSets: uint64(sets),
		assoc:   cfg.Assoc,
		lines:   make([]cacheLine, sets*cfg.Assoc),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up the line with the given line-granularity address,
// allocating it on a miss. write marks the line dirty. It reports whether the
// access hit, and whether the allocation evicted a dirty victim (writeback).
func (c *Cache) Access(lineAddr uint64, write bool) (hit, writeback bool) {
	c.accesses++
	c.clock++
	set := int(lineAddr%c.numSets) * c.assoc
	ways := c.lines[set : set+c.assoc]
	victim := 0
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == lineAddr {
			w.stamp = c.clock
			if write {
				w.dirty = true
			}
			return true, false
		}
		if !w.valid {
			victim = i
		} else if ways[victim].valid && w.stamp < ways[victim].stamp {
			victim = i
		}
	}
	c.misses++
	v := &ways[victim]
	writeback = v.valid && v.dirty
	if writeback {
		c.dirtyEvicts++
	}
	*v = cacheLine{tag: lineAddr, stamp: c.clock, valid: true, dirty: write}
	return false, writeback
}

// Fill inserts a line without touching the demand-access statistics (used
// by the prefetcher model). It reports whether a dirty victim was evicted.
// A line that is already present is refreshed.
func (c *Cache) Fill(lineAddr uint64) (writeback bool) {
	c.clock++
	set := int(lineAddr%c.numSets) * c.assoc
	ways := c.lines[set : set+c.assoc]
	victim := 0
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == lineAddr {
			w.stamp = c.clock
			return false
		}
		if !w.valid {
			victim = i
		} else if ways[victim].valid && w.stamp < ways[victim].stamp {
			victim = i
		}
	}
	v := &ways[victim]
	writeback = v.valid && v.dirty
	if writeback {
		c.dirtyEvicts++
	}
	*v = cacheLine{tag: lineAddr, stamp: c.clock, valid: true}
	return writeback
}

// Reset clears contents and statistics (used between warmup and measurement).
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.accesses, c.misses, c.dirtyEvicts, c.clock = 0, 0, 0, 0
}

// ResetStats clears statistics but keeps cache contents (end of warmup).
func (c *Cache) ResetStats() { c.accesses, c.misses, c.dirtyEvicts = 0, 0, 0 }

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	Accesses    uint64
	Misses      uint64
	DirtyEvicts uint64
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Accesses: c.accesses, Misses: c.misses, DirtyEvicts: c.dirtyEvicts}
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}
