// Package sim is an execution-driven processor and memory-hierarchy model.
// Instrumented workload kernels perform their real computation in Go and, on
// the side, emit the dynamic instruction/memory event stream of the
// equivalent native execution: loads and stores with simulated virtual
// addresses, integer/floating-point/branch operation counts, and the
// movement of the program counter across per-software-layer code regions.
// The model runs that stream through set-associative caches and TLBs with
// the geometry of the paper's testbed processors (Intel Xeon E5645 and
// E5310) and derives the architectural metrics the paper reports: cache and
// TLB MPKI, instruction breakdown, operation intensity, and MIPS.
//
// sim stands in for the hardware performance counters (Linux Perf) used in
// the paper, which are unavailable in this environment; see DESIGN.md §1.
package sim

import "sync"

// CPU is one characterization context: a machine configuration, its cache
// and TLB state, the event counters, and the simulated address space.
// A nil *CPU is valid and makes every method a cheap no-op, so substrates
// can be instrumented unconditionally.
//
// CPU methods are safe for concurrent use; parallel substrate workers
// interleave into a single stream, mirroring how the paper profiles a whole
// node rather than a single thread.
type CPU struct {
	mu  sync.Mutex
	cfg MachineConfig

	l1i, l1d, l2 *Cache
	l3           *Cache // nil on two-level machines
	itlb, dtlb   *TLB

	// Retired-instruction counters by class.
	loadInstrs, storeInstrs, intInstrs, fpInstrs, branchInstrs uint64

	dramReadBytes, dramWriteBytes uint64
	stallCycles                   float64
	prefetches                    uint64

	// Execution locus: instructions are fetched from a window of the
	// current code region, wrapping within the window (a loop body).
	curRegion *CodeRegion
	pcOff     uint64 // current offset within the region
	winStart  uint64
	winLen    uint64

	// Address-space allocators.
	nextCode uint64
	nextData uint64
}

// New builds a CPU for the given machine configuration.
func New(cfg MachineConfig) *CPU {
	c := &CPU{
		cfg:      cfg,
		l1i:      NewCache(cfg.L1I),
		l1d:      NewCache(cfg.L1D),
		l2:       NewCache(cfg.L2),
		itlb:     NewTLB(cfg.ITLB),
		dtlb:     NewTLB(cfg.DTLB),
		nextCode: codeSpaceBase,
		nextData: dataSpaceBase,
	}
	if cfg.L3 != nil {
		c.l3 = NewCache(*cfg.L3)
	}
	return c
}

// Config returns the machine configuration (zero value for a nil CPU).
func (c *CPU) Config() MachineConfig {
	if c == nil {
		return MachineConfig{}
	}
	return c.cfg
}

// NewCodeRegion registers a software layer with the given instruction-byte
// footprint. On a nil CPU it returns a usable dummy region.
func (c *CPU) NewCodeRegion(name string, size uint64) *CodeRegion {
	if size == 0 {
		size = regionAlign
	}
	size = alignUp(size)
	if c == nil {
		return &CodeRegion{Name: name, base: codeSpaceBase, size: size}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &CodeRegion{Name: name, base: c.nextCode, size: size}
	c.nextCode += size + regionAlign // guard page between layers
	return r
}

// Alloc reserves a span of simulated data address space for one logical data
// structure. On a nil CPU it returns a region usable for address arithmetic.
func (c *CPU) Alloc(name string, size uint64) DataRegion {
	if size == 0 {
		size = 8
	}
	if c == nil {
		return DataRegion{Name: name, Base: dataSpaceBase, Size: size}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := DataRegion{Name: name, Base: c.nextData, Size: size}
	c.nextData += alignUp(size) + regionAlign
	return r
}

// Code sets the execution locus: subsequent operations fetch their
// instruction bytes from a window of length window starting at offset off in
// region r, wrapping within the window. A window models a loop body or a
// basic-block cluster; calling Code again models a call/branch to another
// part of the stack. window==0 selects a default 1 KiB body.
func (c *CPU) Code(r *CodeRegion, off, window uint64) {
	if c == nil || r == nil {
		return
	}
	if window == 0 {
		window = 1 << 10
	}
	if window > r.size {
		window = r.size
	}
	if off+window > r.size {
		off = r.size - window
	}
	c.mu.Lock()
	c.curRegion = r
	c.winStart = off
	c.winLen = window
	c.pcOff = off
	c.mu.Unlock()
}

// fetch runs n instructions' worth of bytes (4 B/instruction) through the
// ITLB and L1I from the current locus. Caller holds c.mu.
func (c *CPU) fetch(n uint64) {
	if c.curRegion == nil || n == 0 {
		return
	}
	bytes := n * 4
	base := c.curRegion.base
	pc := c.pcOff
	// Touch each 64-byte line in [pc, pc+bytes), wrapping in the window.
	for bytes > 0 {
		lineEnd := (base + pc | 63) + 1 - base // next line boundary (offset)
		step := lineEnd - pc
		if step > bytes {
			step = bytes
		}
		addr := base + pc
		// A TLB miss costs a page walk in the timing model only; walk
		// traffic is not injected into the demand-miss counters.
		c.itlb.Access(addr >> PageBits)
		if hit, _ := c.l1i.Access(addr>>6, false); !hit {
			c.missBelowL1Locked(addr>>6, false)
		}
		pc += step
		if pc >= c.winStart+c.winLen {
			pc = c.winStart
		}
		bytes -= step
	}
	c.pcOff = pc
}

// missBelowL1 services an L1 (I or D) miss from L2 → L3 → DRAM.
// Caller holds c.mu.
func (c *CPU) missBelowL1Locked(lineAddr uint64, write bool) {
	hit, wb := c.l2.Access(lineAddr, write)
	if hit {
		return
	}
	if c.l3 != nil {
		h3, wb3 := c.l3.Access(lineAddr, write || wb)
		if h3 {
			return
		}
		c.dramReadBytes += 64
		if wb3 {
			c.dramWriteBytes += 64
		}
		return
	}
	c.dramReadBytes += 64
	if wb {
		c.dramWriteBytes += 64
	}
}

// touchData walks [addr, addr+bytes) through DTLB and the data hierarchy.
// Caller holds c.mu.
func (c *CPU) touchData(addr uint64, bytes uint64, write bool) {
	if bytes == 0 {
		return
	}
	first := addr >> 6
	last := (addr + bytes - 1) >> 6
	page := ^uint64(0)
	for line := first; line <= last; line++ {
		if p := line >> (PageBits - 6); p != page {
			page = p
			c.dtlb.Access(p)
		}
		if hit, _ := c.l1d.Access(line, write); !hit {
			c.missBelowL1Locked(line, write)
			if c.cfg.NextLinePrefetch {
				c.prefetches++
				c.l1d.Fill(line + 1)
				c.l2.Fill(line + 1)
			}
		}
	}
}

func memInstrs(bytes int) uint64 {
	if bytes <= 0 {
		return 0
	}
	return uint64(bytes+7) / 8
}

// Load records a read of bytes bytes at simulated address addr. It counts
// ceil(bytes/8) load instructions (8-byte operations) and fetches their
// instruction bytes from the current locus.
func (c *CPU) Load(addr uint64, bytes int) {
	if c == nil {
		return
	}
	n := memInstrs(bytes)
	c.mu.Lock()
	c.loadInstrs += n
	c.fetch(n)
	c.touchData(addr, uint64(bytes), false)
	c.mu.Unlock()
}

// Store records a write of bytes bytes at simulated address addr.
func (c *CPU) Store(addr uint64, bytes int) {
	if c == nil {
		return
	}
	n := memInstrs(bytes)
	c.mu.Lock()
	c.storeInstrs += n
	c.fetch(n)
	c.touchData(addr, uint64(bytes), true)
	c.mu.Unlock()
}

// LoadR is Load addressed relative to a data region.
func (c *CPU) LoadR(r DataRegion, off uint64, bytes int) { c.Load(r.Addr(off), bytes) }

// StoreR is Store addressed relative to a data region.
func (c *CPU) StoreR(r DataRegion, off uint64, bytes int) { c.Store(r.Addr(off), bytes) }

// IntOps records n retired integer ALU instructions.
func (c *CPU) IntOps(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.mu.Lock()
	c.intInstrs += uint64(n)
	c.fetch(uint64(n))
	c.mu.Unlock()
}

// FPOps records n retired floating-point instructions.
func (c *CPU) FPOps(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.mu.Lock()
	c.fpInstrs += uint64(n)
	c.fetch(uint64(n))
	c.mu.Unlock()
}

// Stall charges cycles during which the core retires nothing: JVM/JIT
// warmup, GC pauses, I/O waits. Stalls depress MIPS without touching the
// cache counters; fixed per-job stalls are the mechanism behind the
// paper's rising MIPS-vs-data-volume curves (Figure 3-1), which amortize
// startup over more input.
func (c *CPU) Stall(cycles float64) {
	if c == nil || cycles <= 0 {
		return
	}
	c.mu.Lock()
	c.stallCycles += cycles
	c.mu.Unlock()
}

// Branches records n retired branch instructions.
func (c *CPU) Branches(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.mu.Lock()
	c.branchInstrs += uint64(n)
	c.fetch(uint64(n))
	c.mu.Unlock()
}

// ResetStats zeroes all counters while preserving cache/TLB contents.
// Call at the end of a warmup window so reported metrics are steady-state.
func (c *CPU) ResetStats() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loadInstrs, c.storeInstrs, c.intInstrs, c.fpInstrs, c.branchInstrs = 0, 0, 0, 0, 0
	c.dramReadBytes, c.dramWriteBytes = 0, 0
	c.stallCycles = 0
	c.prefetches = 0
	c.l1i.ResetStats()
	c.l1d.ResetStats()
	c.l2.ResetStats()
	if c.l3 != nil {
		c.l3.ResetStats()
	}
	c.itlb.ResetStats()
	c.dtlb.ResetStats()
}

// Counts snapshots every raw counter.
func (c *CPU) Counts() Counts {
	if c == nil {
		return Counts{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := Counts{
		LoadInstrs:     c.loadInstrs,
		StoreInstrs:    c.storeInstrs,
		IntInstrs:      c.intInstrs,
		FPInstrs:       c.fpInstrs,
		BranchInstrs:   c.branchInstrs,
		L1I:            c.l1i.Stats(),
		L1D:            c.l1d.Stats(),
		L2:             c.l2.Stats(),
		ITLB:           c.itlb.Stats(),
		DTLB:           c.dtlb.Stats(),
		DRAMReadBytes:  c.dramReadBytes,
		DRAMWriteBytes: c.dramWriteBytes,
		StallCycles:    c.stallCycles,
		Prefetches:     c.prefetches,
	}
	if c.l3 != nil {
		k.HasL3 = true
		k.L3 = c.l3.Stats()
	}
	return k
}
