package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixEmptyCounts(t *testing.T) {
	var k Counts
	if m := k.Mix(); m != (InstrMix{}) {
		t.Fatalf("empty mix = %+v", m)
	}
	if k.L1IMPKI() != 0 || k.CPI(XeonE5645().Timing) != 0 {
		t.Fatal("zero counts must yield zero derived metrics")
	}
}

func TestIntensityEdgeCases(t *testing.T) {
	k := Counts{FPInstrs: 100}
	if !math.IsInf(k.FPIntensity(), 1) {
		t.Error("FP ops with zero traffic → +Inf intensity")
	}
	k2 := Counts{}
	if k2.FPIntensity() != 0 {
		t.Error("no ops, no traffic → zero intensity")
	}
	k3 := Counts{IntInstrs: 640, DRAMReadBytes: 64}
	if k3.IntIntensity() != 10 {
		t.Errorf("IntIntensity = %f, want 10", k3.IntIntensity())
	}
}

func TestIntToFPRatioEdgeCases(t *testing.T) {
	k := Counts{IntInstrs: 500}
	if k.IntToFPRatio() != 500 {
		t.Errorf("ratio with zero FP = %f", k.IntToFPRatio())
	}
	k.FPInstrs = 100
	if k.IntToFPRatio() != 5 {
		t.Errorf("ratio = %f", k.IntToFPRatio())
	}
}

func TestStallCyclesLowerMIPS(t *testing.T) {
	cfg := XeonE5645()
	base := Counts{IntInstrs: 1_000_000}
	stalled := base
	stalled.StallCycles = 1e7
	if stalled.MIPS(cfg.Timing) >= base.MIPS(cfg.Timing) {
		t.Error("stall cycles must depress MIPS")
	}
	if stalled.L3MPKI() != base.L3MPKI() {
		t.Error("stall cycles must not move cache metrics")
	}
}

func TestStallAPI(t *testing.T) {
	c := New(XeonE5645())
	c.Stall(123)
	c.Stall(-5) // ignored
	if got := c.Counts().StallCycles; got != 123 {
		t.Fatalf("StallCycles = %f", got)
	}
	var nilC *CPU
	nilC.Stall(100) // must not panic
}

// Property: MPKI values scale inversely with added integer instructions.
func TestMPKIDilutionProperty(t *testing.T) {
	f := func(extra uint32) bool {
		k := Counts{IntInstrs: 1000, L2: CacheStats{Accesses: 100, Misses: 50}}
		before := k.L2MPKI()
		k.IntInstrs += uint64(extra % 1_000_000)
		return k.L2MPKI() <= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub is the inverse of accumulation for instruction counters.
func TestCountsSubProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		base := Counts{IntInstrs: uint64(a)}
		total := Counts{IntInstrs: uint64(a) + uint64(b)}
		return total.Sub(base).IntInstrs == uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataRegionAddrWraps(t *testing.T) {
	r := DataRegion{Base: 1000, Size: 100}
	if r.Addr(0) != 1000 || r.Addr(99) != 1099 {
		t.Fatal("in-range offsets must map directly")
	}
	if r.Addr(100) != 1000 || r.Addr(250) != 1050 {
		t.Fatal("out-of-range offsets must wrap")
	}
	var zero DataRegion
	if zero.Addr(42) != 0 {
		t.Fatal("zero region maps everything to base")
	}
}

func TestCodeWindowClamping(t *testing.T) {
	c := New(XeonE5645())
	r := c.NewCodeRegion("small", 4096)
	// Window larger than region: clamps instead of overflowing.
	c.Code(r, 0, 1<<20)
	c.IntOps(10000)
	// Offset beyond region with window: shifts back in range.
	c.Code(r, 1<<20, 512)
	c.IntOps(100)
	k := c.Counts()
	if k.IntInstrs != 10100 {
		t.Fatalf("IntInstrs = %d", k.IntInstrs)
	}
}
