package sim

// DataRegion is a span of simulated virtual address space backing one
// logical data structure (an input file, a hash table, a shuffle buffer...).
// Kernels derive event addresses as Base + offset from the real indices they
// touch, so the simulated trace follows the actual access pattern.
type DataRegion struct {
	Name string
	Base uint64
	Size uint64
}

// Addr returns the address of byte offset off, wrapping inside the region so
// that modeled footprints stay faithful even if a kernel overshoots.
func (r DataRegion) Addr(off uint64) uint64 {
	if r.Size == 0 {
		return r.Base
	}
	return r.Base + off%r.Size
}

// CodeRegion is a span of simulated instruction address space representing
// one software layer (a framework stage, a library, a user function). The
// paper attributes the high L1I MPKI of big-data workloads to "huge code
// size and deep software stack"; code regions are how that stack is modeled.
type CodeRegion struct {
	Name string
	base uint64
	size uint64
}

// Size returns the byte footprint of the region.
func (r *CodeRegion) Size() uint64 { return r.size }

const (
	codeSpaceBase = 1 << 28 // 256 MiB: simulated text segment start
	dataSpaceBase = 1 << 34 // 16 GiB: simulated heap start
	regionAlign   = 1 << PageBits
)

func alignUp(v uint64) uint64 {
	return (v + regionAlign - 1) &^ uint64(regionAlign-1)
}
