package transport

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFetchMetricsOverWire round-trips a full registry snapshot through
// OpMetricsFetch: the decoded snapshot must carry the server's exact
// counter values and histogram buckets, not float approximations.
func TestFetchMetricsOverWire(t *testing.T) {
	reg := obs.NewRegistry()
	big := reg.Counter("bd_big_total", "t", nil)
	big.Add(1<<60 + 3) // above 2^53: float64 coercion would corrupt it
	reg.Histogram("bd_big_seconds", "t", nil).Observe(5 * time.Microsecond)

	srv := startServer(t, newShard(t, 1), ServerOptions{Metrics: reg})
	cl, err := Connect(srv.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	snap, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Node != srv.Addr() {
		t.Fatalf("snapshot node = %q, want the server address %q", snap.Node, srv.Addr())
	}
	if v, ok := snap.Lookup("bd_big_total", ""); !ok || v != obs.Uint64Value(1<<60+3) {
		t.Fatalf("counter over the wire = %v, want exact 2^60+3", v)
	}
	hs := snap.Family("bd_big_seconds").Get("")
	if hs == nil || hs.Count != 1 || hs.Buckets[3] != 1 {
		t.Fatalf("histogram buckets lost in transit: %+v", hs)
	}
	// The server's own instrumentation rides in the same registry once
	// registered — do a second fetch and expect to see the first.
	nreg := obs.NewRegistry()
	srv.RegisterMetrics(nreg)
	srv2 := startServer(t, newShard(t, 1), ServerOptions{Metrics: nreg})
	cl2, err := Connect(srv2.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	snap2, err := cl2.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap2.Lookup("bd_transport_requests_total", `{op="metrics-fetch"}`); !ok || v.Uint() < 1 {
		t.Fatalf("first server's fetch counter not visible via second: %v ok=%v", v, ok)
	}
}

// TestFetchEventsOverWire round-trips the event ring, and checks the
// nil-log server serves an empty timeline rather than an error.
func TestFetchEventsOverWire(t *testing.T) {
	log := obs.NewEventLog(32)
	log.SetNode("srv-a")
	log.Record(obs.Event{Kind: obs.EventViewCommit, Epoch: 2, Detail: "joined"})
	log.Record(obs.Event{Kind: obs.EventMemberDown, Member: "peer-b"})

	srv := startServer(t, newShard(t, 1), ServerOptions{Events: log})
	cl, err := Connect(srv.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	events, err := cl.FetchEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("fetched %d events, want 2", len(events))
	}
	if events[0].Kind != obs.EventViewCommit || events[0].Node != "srv-a" || events[0].Epoch != 2 {
		t.Fatalf("event 0 mangled: %+v", events[0])
	}
	if events[1].Kind != obs.EventMemberDown || events[1].Member != "peer-b" {
		t.Fatalf("event 1 mangled: %+v", events[1])
	}

	bare := startServer(t, newShard(t, 1), ServerOptions{})
	cl2, err := Connect(bare.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if events, err := cl2.FetchEvents(); err != nil || len(events) != 0 {
		t.Fatalf("eventless server: got %d events, err=%v; want empty and nil", len(events), err)
	}
	// Metrics on a registry-less server: an empty snapshot, not an error.
	if snap, err := cl2.FetchMetrics(); err != nil || len(snap.Fams) != 0 {
		t.Fatalf("registry-less server: snap=%+v err=%v", snap, err)
	}
}

// TestClientImplementsFetcher pins the interface the Federator dials.
func TestClientImplementsFetcher(t *testing.T) {
	var _ obs.Fetcher = (*Client)(nil)
	for _, op := range []Opcode{OpMetricsFetch, OpEventsFetch} {
		if name := opName(op); strings.HasPrefix(name, "op(") {
			t.Fatalf("opcode %#x has no name", byte(op))
		}
	}
}
