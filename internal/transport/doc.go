// Package transport turns the in-process cluster into a networked
// service: a compact length-prefixed binary wire protocol, a TCP server
// that hosts cluster nodes behind a listener, and a pooled pipelining
// client whose RemoteNode proxy satisfies the coordinator's member
// contract (cluster.Remote).
//
// The paper measures its Cloud-OLTP and search workloads on a real
// 14-node testbed serving network clients; this package supplies the
// missing wire so shard nodes can live in separate processes and the
// coordinator routes over TCP:
//
//	client procs                 server procs
//	┌───────────────┐   frames   ┌──────────────────────┐
//	│ Cluster (ring)│ ─────────► │ Server ─ Cluster ─ LSM│
//	│  ├ Node (local)│           └──────────────────────┘
//	│  └ RemoteNode ─┼─────────► ┌──────────────────────┐
//	└───────────────┘            │ Server ─ Cluster ─ LSM│
//	                             └──────────────────────┘
//
// Request pipelining: every frame carries a request id, connections are
// never blocked on one outstanding request, and responses return in
// completion order. The server bounds concurrently executing requests
// (ServerOptions.MaxInFlight) and sheds the excess with an overload
// frame that surfaces as cluster.ErrOverload at the client — the same
// admission-control signal the in-process queues use — while the client
// retries shed blocking ops with doubling backoff.
//
// Shutdown is a graceful drain: Server.Close stops accepting, unblocks
// the read loops, lets every admitted request finish and flush its
// response, then closes the connections.
//
// Consistency note: replicated writes whose primary is remote are
// serialized through the primary's proxy (one coordinator process), so
// while the replica set is healthy, replicas stay byte-identical to
// the primary exactly as in-process. Failover promotion weakens this:
// a false-positive down verdict moves the write lead (and its
// serializing lock) to another member, so concurrent writes of one key
// straddling the flip can apply in different orders on different
// copies — ops carry no versions, so nothing fences the stale order
// (see DESIGN.md §9 for the limits of the failure model).
// If a batch RPC fails partway, its replica mirroring is skipped — the
// proxy cannot know which ops the remote applied. The coordinator's
// health layer buffers the skipped mirrors as hinted handoff and
// replays them when the member answers probes again, so a transport
// failure degrades the R-copy invariant to "eventually R copies"
// rather than silently shedding one.
//
// Liveness: OpPing is answered straight from the server's read loop
// without an admission permit (an overloaded server is alive), and
// Client.Ping fails fast — redials are bounded by PingTimeout, not the
// patient DialTimeout — so a prober sweeping dead members never stalls.
package transport
