//go:build !race

// Allocation-regression guards for the hot path (DESIGN.md §12). These
// are hard ceilings, not benchmarks: plain `go test` fails when a codec
// or the end-to-end dispatch path regresses to per-op allocation. The
// file is excluded under the race detector because its instrumentation
// inflates malloc counts; the race job still compiles and runs every
// other test in the package.
package transport

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// requireAllocs runs fn under testing.AllocsPerRun and fails the test
// when the average exceeds max.
func requireAllocs(t *testing.T, name string, max float64, fn func()) {
	t.Helper()
	got := testing.AllocsPerRun(200, fn)
	if got > max {
		t.Errorf("%s: %.1f allocs/op, want <= %.0f", name, got, max)
	}
}

// TestEncodeFrameAllocFree pins the request-side encoders at zero
// steady-state allocations when the destination buffer is reused.
func TestEncodeFrameAllocFree(t *testing.T) {
	payload := []byte("key=value payload bytes")
	buf := make([]byte, 0, 256)
	requireAllocs(t, "AppendFrame", 0, func() {
		buf = AppendFrame(buf[:0], 7, OpPut, payload)
	})
	requireAllocs(t, "AppendTracedFrame", 0, func() {
		buf = AppendTracedFrame(buf[:0], 7, OpPut, 0xfeed, 0xbead, payload)
	})
	// The in-place builders the client and server actually use: header
	// template, payload append, length stamp — all into one buffer.
	requireAllocs(t, "beginRequest/finishFrame", 0, func() {
		b := beginRequest(buf[:0], OpGet, 0xbeef, 0xfade)
		b = append(b, payload...)
		buf = finishFrame(b)
		patchFrameID(buf, 42)
	})
	requireAllocs(t, "beginResponse/finishFrame", 0, func() {
		b := beginResponse(buf[:0], 42, RespValue)
		b = appendBytes32(b, payload)
		buf = finishFrame(b)
	})
}

// TestDecodeFrameAllocFree pins frame and payload decoding at zero
// allocations: every decoded field aliases the input buffer.
func TestDecodeFrameAllocFree(t *testing.T) {
	frame := AppendFrame(nil, 9, OpPut, EncodePut(nil, []byte("alpha"), []byte("beta")))
	requireAllocs(t, "DecodeFrame", 0, func() {
		_, _, payload, _, err := DecodeFrame(frame, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodePut(payload); err != nil {
			t.Fatal(err)
		}
	})

	ops := make([]cluster.Op, 0, 8)
	for i := 0; i < 8; i++ {
		ops = append(ops, cluster.Op{
			Kind:  cluster.OpPut,
			Key:   fmt.Appendf(nil, "key-%d", i),
			Value: fmt.Appendf(nil, "value-%d", i),
		})
	}
	batch := EncodeBatch(nil, ops, false)
	dst := make([]cluster.Op, 0, len(ops))
	requireAllocs(t, "DecodeBatchAppend", 0, func() {
		out, _, err := DecodeBatchAppend(dst[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(ops) {
			t.Fatalf("decoded %d ops, want %d", len(out), len(ops))
		}
		dst = out
	})
}

// TestServerDispatchAllocBudget pins the end-to-end request path — a
// real listener, the pipelined client, frame pools, dispatch, and the
// engine — to a hard per-round-trip allocation budget. The ceilings
// leave headroom over the measured steady state (single-digit to low
// double-digit allocs) while still failing loudly on a return to the
// pre-§12 world of fresh buffers per frame (~200 allocs per batch).
func TestServerDispatchAllocBudget(t *testing.T) {
	backend := newShard(t, 2)
	t.Cleanup(func() { backend.Close() })
	srv := startServer(t, backend, ServerOptions{})
	cl := dialT(t, srv.Addr(), ClientOptions{Conns: 1})

	key, value := []byte("alloc-key"), []byte("alloc-value")
	ops := make([]cluster.Op, 8)
	for i := range ops {
		ops[i] = cluster.Op{
			Kind:  cluster.OpPut,
			Key:   fmt.Appendf(nil, "alloc-batch-%d", i),
			Value: value,
		}
	}
	// Warm the size-class pools, the connection, and the engine so the
	// measurement sees steady state, not first-touch growth.
	for i := 0; i < 64; i++ {
		if err := cl.Put(key, value); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Get(key); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}

	requireAllocs(t, "Put round trip", 20, func() {
		if err := cl.Put(key, value); err != nil {
			t.Fatal(err)
		}
	})
	requireAllocs(t, "Get round trip", 20, func() {
		if _, found, err := cl.Get(key); err != nil || !found {
			t.Fatalf("get: found=%v err=%v", found, err)
		}
	})
	requireAllocs(t, "Apply 8-op batch round trip", 40, func() {
		if _, err := cl.Apply(ops); err != nil {
			t.Fatal(err)
		}
	})
}
