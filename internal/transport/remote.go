package transport

import "repro/internal/cluster"

// RemoteNode is the coordinator-side proxy for a shard hosted by a
// transport.Server in another process. It is a connected Client and
// therefore satisfies cluster.Remote, so cluster.AddRemote splices it
// into the ring next to in-process nodes: the coordinator routes point
// ops, fans out replicated writes, scatter-gathers scans and migrates
// rebalance traffic through it without knowing the shard is remote —
// the paper's testbed topology (one coordinator, N region servers on
// separate machines) expressed in the cluster's own vocabulary.
type RemoteNode struct {
	*Client
	addr string
}

// Connect dials a shard server and returns its proxy.
func Connect(addr string, opts ClientOptions) (*RemoteNode, error) {
	cl, err := Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &RemoteNode{Client: cl, addr: addr}, nil
}

// Addr returns the server address this proxy is connected to.
func (rn *RemoteNode) Addr() string { return rn.addr }

// compile-time conformance: a RemoteNode is a cluster member transport.
var _ cluster.Remote = (*RemoteNode)(nil)
var _ Backend = (*cluster.Cluster)(nil)
