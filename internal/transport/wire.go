package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Wire format. Every message — request or response — is one frame:
//
//	+-----------+-----------+----------+------------------+
//	| length u32| id u64    | opcode u8| payload           |
//	+-----------+-----------+----------+------------------+
//
// All integers are big-endian. The length prefix counts everything after
// itself (id + opcode + payload), so a frame occupies 4+length bytes on
// the wire. The id echoes from request to response, which is what lets a
// connection carry many requests concurrently (pipelining): responses
// return in completion order and the client matches them back by id.
//
// Decoding is zero-copy-friendly: decoded keys, values and entries alias
// the payload buffer. Callers that retain them beyond the buffer's
// lifetime must copy (the LSM engine copies on Put, so the server's
// dispatch path needs no extra copies).

// Opcode identifies a frame's message type. Requests have the high bit
// clear, responses set.
type Opcode uint8

// Request opcodes.
const (
	OpGet    Opcode = 0x01 // payload: key
	OpPut    Opcode = 0x02 // payload: klen u32 | key | value
	OpDelete Opcode = 0x03 // payload: key
	OpScan   Opcode = 0x04 // payload: limit u32 | start key
	OpBatch  Opcode = 0x05 // payload: flags u8 | count u32 | ops
	OpStats  Opcode = 0x06 // payload: empty
	// OpPing is the liveness probe. The server answers RespOK straight
	// from the connection's read loop, without taking an admission
	// permit: an overloaded server is alive, and health checks that shed
	// under load would turn every overload into a false death.
	OpPing Opcode = 0x07 // payload: empty

	// The task plane (internal/analytics). Task specs and results are
	// opaque bytes to the transport — the analytics engine owns their
	// encoding — so the wire layer stays workload-agnostic. Error frames
	// reuse the same code mapping as the data plane, so ErrOverload /
	// ErrClosed keep surviving errors.Is across the wire.
	OpTaskSubmit   Opcode = 0x08 // payload: opaque task spec
	OpTaskStatus   Opcode = 0x09 // payload: task id u64
	OpShuffleFetch Opcode = 0x0A // payload: task id u64 | part u32 | offset u32

	// OpTraceFetch asks a node for every span it retains under one trace
	// id, so a collector can assemble a cross-process trace over the data
	// plane instead of scraping each node's /tracez endpoint. Spans come
	// back in a RespSpans frame; a node with no spans for the trace (or
	// no span ring at all) answers an empty set, not an error — missing
	// hops are the assembler's problem, not the transport's.
	OpTraceFetch Opcode = 0x0B // payload: trace id u64

	// OpGossip is the membership anti-entropy exchange: the payload is an
	// encoded cluster view (opaque to the transport; internal/cluster owns
	// the codec). The receiver merges it into its own view and answers
	// RespView — empty when the sender is already in sync, the merged
	// view otherwise. Gossip rides the prober's sweep, so one round trip
	// doubles as both the liveness probe and the state exchange.
	OpGossip Opcode = 0x0C // payload: encoded cluster view

	// OpMirror is a local-only write: apply to this node's engine, do NOT
	// re-replicate. Replica mirrors and migration copies travel on it —
	// routed OpPut at an elastic member would fan out again server-side
	// (view.R > 1), turning every mirror into a replication storm.
	OpMirror Opcode = 0x0D // payload: flags u8 | kind u8 | klen u32 | key | value

	// OpGetLocal is the read twin of OpMirror: answer from this member's
	// own store, do NOT route by ring. Member-to-member reads (replica
	// fallbacks, reads chasing data that a migration has not landed yet)
	// travel on it because the sender has already decided which member
	// should hold the bytes. A routed OpGet would re-resolve ownership at
	// the receiver — and during a membership change the two ring views can
	// disagree, so each side forwards to the other in an unbounded cycle
	// that eats both servers' admission permits until every data call rides
	// a timeout.
	OpGetLocal Opcode = 0x0E // payload: key

	// OpMetricsFetch asks a node for a full snapshot of its metrics
	// registry — exact histogram bucket vectors and integer counters,
	// not float summaries (see obs.EncodeSnapshot for the layout). The
	// metrics federation pulls these over the data plane from whoever
	// the gossip view says is alive and merges them exactly, the same
	// collect-over-the-wire pattern OpTraceFetch set for spans. A node
	// serving without a registry answers an empty snapshot, not an
	// error: a fleet mixing instrumented and bare nodes still federates.
	OpMetricsFetch Opcode = 0x0F // payload: empty

	// OpEventsFetch asks a node for the tail of its structured cluster
	// event log (view commits, member suspect/down/dead, failovers,
	// hint replay/drop, migration, compaction — obs.EncodeEvents owns
	// the layout). Oldest events are shed under MaxFrame like spans.
	OpEventsFetch Opcode = 0x10 // payload: empty
)

// Response opcodes.
const (
	RespValue   Opcode = 0x81 // payload: found u8 | value
	RespOK      Opcode = 0x82 // payload: empty
	RespEntries Opcode = 0x83 // payload: more u8 | count u32 | (klen u32|key|vlen u32|value)*
	RespResults Opcode = 0x84 // payload: errcode u8 | msglen u32 | msg | count u32 | (found u8|vlen u32|value)*
	RespStats   Opcode = 0x85 // payload: node count u32 | node stats*
	// RespTask acks a task submission with the executor-local task id.
	RespTask Opcode = 0x86 // payload: task id u64
	// RespTaskStatus reports a task's completion state; a failed task's
	// error rides along through the shared error-code mapping.
	RespTaskStatus Opcode = 0x87 // payload: done u8 | errcode u8 | message
	// RespChunk carries one page of a shuffle partition (or result blob);
	// more marks a page cut short of the full payload for frame-size
	// reasons — the client advances its offset and fetches again.
	RespChunk Opcode = 0x88 // payload: more u8 | bytes
	// RespSpans carries a node's retained spans for one trace id (see
	// EncodeSpans for the layout).
	RespSpans Opcode = 0x89 // payload: count u32 | span*
	// RespView carries an encoded cluster view. It answers OpGossip
	// (empty payload = sender already in sync), and it answers any
	// epoch-stamped data-plane request whose epoch disagrees with the
	// server's: instead of serving against a routing table one of the two
	// sides has outgrown, the server hands back the fresh view and the
	// client re-routes. The client surfaces that as cluster.ErrWrongEpoch
	// after delivering the view to its OnView callback.
	RespView Opcode = 0x8A // payload: empty | encoded cluster view
	// RespMetrics carries one node's encoded registry snapshot
	// (obs.EncodeSnapshot), answering OpMetricsFetch.
	RespMetrics Opcode = 0x8B // payload: encoded registry snapshot
	// RespEvents carries a node's retained cluster events
	// (obs.EncodeEvents), answering OpEventsFetch.
	RespEvents Opcode = 0x8C // payload: encoded event list
	RespError  Opcode = 0xFF // payload: errcode u8 | message
)

// batchFlagTry marks an OpBatch for admission control (TryApply) rather
// than backpressure (Apply).
const batchFlagTry = 0x01

// opFlagTraced marks a request frame that carries trace context: the
// opcode byte has bit 0x40 set and a 16-byte big-endian extension —
// trace id u64 | parent span id u64 — sits between the frame header
// and the payload. The parent span id is the sender's own span for the
// call, which becomes the Parent of the span the receiver records;
// that per-hop id chain is what lets the assembler rebuild the request
// tree from independently collected rings. The flag is only valid on
// request opcodes (high bit clear) — responses are matched back to
// their request by frame id, so echoing the trace would be redundant,
// and reserving the bit to requests keeps RespError (0xFF) unambiguous.
// Untraced traffic is bit-identical to the pre-trace protocol; an old
// peer sent a traced frame rejects it as an unknown opcode (errCodeBad)
// rather than misreading the trace extension as payload.
const opFlagTraced Opcode = 0x40

// tracedExtLen is the byte length of the trace extension.
const tracedExtLen = 16

// opFlagEpoch marks a request frame that carries the sender's view
// epoch: bit 0x20 set on the opcode and an 8-byte big-endian epoch
// extension after the trace extension (when both flags are set the
// trace bytes come first). Edge clients stamp it on data-plane requests
// so a stale router is told — via RespView — rather than silently
// misrouted; frames without the flag (server-to-server internals, old
// peers) bypass the epoch check entirely.
const opFlagEpoch Opcode = 0x20

// epochExtLen is the byte length of the epoch extension.
const epochExtLen = 8

// AppendTracedFrame appends one request frame carrying trace context.
// A zero trace appends a plain frame — zero means "untraced" end to
// end; parent is the sender's span id for this call (0 = root).
func AppendTracedFrame(dst []byte, id uint64, op Opcode, trace, parent uint64, payload []byte) []byte {
	if trace == 0 {
		return AppendFrame(dst, id, op, payload)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameOverhead+tracedExtLen+len(payload)))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, byte(op|opFlagTraced))
	dst = binary.BigEndian.AppendUint64(dst, trace)
	dst = binary.BigEndian.AppendUint64(dst, parent)
	return append(dst, payload...)
}

// splitTrace strips the trace extension from a decoded request,
// returning the bare opcode, the trace and parent span ids (zero when
// untraced) and the true payload (aliasing p). Response opcodes pass
// through untouched.
func splitTrace(op Opcode, p []byte) (Opcode, uint64, uint64, []byte, error) {
	op, trace, parent, _, payload, err := splitExt(op, p)
	return op, trace, parent, payload, err
}

// splitExt strips every request extension — trace context and view
// epoch — returning the bare opcode, the extension values (zero when
// absent) and the true payload (aliasing p). Response opcodes pass
// through untouched.
func splitExt(op Opcode, p []byte) (Opcode, uint64, uint64, uint64, []byte, error) {
	if op&0x80 != 0 || op&(opFlagTraced|opFlagEpoch) == 0 {
		return op, 0, 0, 0, p, nil
	}
	var trace, parent, epoch uint64
	if op&opFlagTraced != 0 {
		if len(p) < tracedExtLen {
			return op, 0, 0, 0, nil, ErrMalformed
		}
		trace = binary.BigEndian.Uint64(p)
		parent = binary.BigEndian.Uint64(p[8:])
		p = p[tracedExtLen:]
	}
	if op&opFlagEpoch != 0 {
		if len(p) < epochExtLen {
			return op, 0, 0, 0, nil, ErrMalformed
		}
		epoch = binary.BigEndian.Uint64(p)
		p = p[epochExtLen:]
	}
	return op &^ (opFlagTraced | opFlagEpoch), trace, parent, epoch, p, nil
}

// Error codes carried by RespError and RespResults frames.
const (
	errCodeNone       = 0x00
	errCodeOverload   = 0x01 // maps to cluster.ErrOverload
	errCodeClosed     = 0x02 // maps to cluster.ErrClosed
	errCodeBad        = 0x03 // malformed frame or payload
	errCodeInternal   = 0x04 // anything else; message carries detail
	errCodeWrongEpoch = 0x05 // maps to cluster.ErrWrongEpoch
)

// MirrorFlagMigration marks an OpMirror write as a migration copy (a
// rebalance moving a settled key) rather than a live replica mirror.
// The receiver's dirty-key guard drops migration copies for keys a
// fresher live write already touched — the copy is stale by definition —
// while live mirrors always apply and mark the key dirty.
const MirrorFlagMigration = 0x01

// EncodeMirror appends an OpMirror payload. kind is the cluster op kind
// (put or delete); value is ignored for deletes. Migration copies carry
// the epoch they were planned under: the receiver rejects copies from an
// epoch it has not adopted (its guard is not armed yet — the copy would
// be dropped on the floor) or has already left behind, with
// cluster.ErrWrongEpoch telling the sender to retry after gossip
// converges.
func EncodeMirror(dst []byte, op cluster.Op, migration bool, epoch uint64) []byte {
	flags := byte(0)
	if migration {
		flags = MirrorFlagMigration
	}
	dst = append(dst, flags, byte(op.Kind))
	if migration {
		dst = binary.BigEndian.AppendUint64(dst, epoch)
	}
	return append(appendBytes32(dst, op.Key), op.Value...)
}

// DecodeMirror splits an OpMirror payload (key and value alias p).
func DecodeMirror(p []byte) (op cluster.Op, migration bool, epoch uint64, err error) {
	if len(p) < 2 {
		return cluster.Op{}, false, 0, ErrMalformed
	}
	migration = p[0]&MirrorFlagMigration != 0
	op.Kind = cluster.OpKind(p[1])
	if op.Kind != cluster.OpPut && op.Kind != cluster.OpDelete {
		return cluster.Op{}, false, 0, ErrMalformed
	}
	p = p[2:]
	if migration {
		if len(p) < 8 {
			return cluster.Op{}, false, 0, ErrMalformed
		}
		epoch = binary.BigEndian.Uint64(p)
		p = p[8:]
	}
	op.Key, op.Value, err = takeBytes32(p)
	return op, migration, epoch, err
}

// encodedMirrorLen is the OpMirror payload size for op.
func encodedMirrorLen(op cluster.Op, migration bool) int {
	n := 2 + 4 + len(op.Key) + len(op.Value)
	if migration {
		n += 8
	}
	return n
}

const (
	// frameOverhead is the id + opcode bytes counted by the length prefix.
	frameOverhead = 9
	// DefaultMaxFrame bounds a frame's declared length: a corrupt or
	// hostile prefix cannot make a peer allocate unbounded memory.
	DefaultMaxFrame = 16 << 20
)

// Codec errors.
var (
	// ErrFrameTooLarge reports a length prefix beyond the configured cap.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrMalformed reports a structurally invalid frame or payload.
	ErrMalformed = errors.New("transport: malformed frame")
)

// AppendFrame appends one complete frame to dst and returns the extended
// slice.
func AppendFrame(dst []byte, id uint64, op Opcode, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameOverhead+len(payload)))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, byte(op))
	return append(dst, payload...)
}

// DecodeFrame parses the first frame in b. The returned payload aliases
// b. n is the total bytes consumed; io.ErrShortBuffer (with n = 0)
// reports that b does not yet hold a complete frame.
func DecodeFrame(b []byte, maxFrame int) (id uint64, op Opcode, payload []byte, n int, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(b) < 4 {
		return 0, 0, nil, 0, io.ErrShortBuffer
	}
	length := binary.BigEndian.Uint32(b)
	if length < frameOverhead {
		return 0, 0, nil, 0, ErrMalformed
	}
	if int64(length) > int64(maxFrame) {
		return 0, 0, nil, 0, ErrFrameTooLarge
	}
	if len(b) < 4+int(length) {
		return 0, 0, nil, 0, io.ErrShortBuffer
	}
	id = binary.BigEndian.Uint64(b[4:])
	op = Opcode(b[12])
	payload = b[13 : 4+length]
	return id, op, payload, 4 + int(length), nil
}

// readPooledFrame reads one frame from r into a pooled payload buffer.
// The returned frame is owned by the caller (release with putFrame once
// nothing aliases its bytes). On a size-limit or framing error the id
// and opcode are still returned when the stream yielded them, so a
// server can address its diagnostic error frame to the offending
// request.
func readPooledFrame(r io.Reader, maxFrame int) (id uint64, op Opcode, f *frame, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length >= frameOverhead {
		if _, err := io.ReadFull(r, hdr[4:]); err != nil {
			return 0, 0, nil, err
		}
		id = binary.BigEndian.Uint64(hdr[4:12])
		op = Opcode(hdr[12])
	}
	if length < frameOverhead {
		return 0, 0, nil, ErrMalformed
	}
	if int64(length) > int64(maxFrame) {
		return id, op, nil, ErrFrameTooLarge
	}
	f = getFrame(int(length) - frameOverhead)
	if _, err := io.ReadFull(r, f.b); err != nil {
		putFrame(f)
		return 0, 0, nil, err
	}
	return id, op, f, nil
}

// readFrame reads one frame from r, returning the payload in a fresh
// allocation the caller owns outright — the non-pooled convenience form
// of readPooledFrame for tests and cold paths.
func readFrame(r io.Reader, maxFrame int) (id uint64, op Opcode, payload []byte, err error) {
	id, op, f, err := readPooledFrame(r, maxFrame)
	if err != nil {
		return id, op, nil, err
	}
	payload = append([]byte(nil), f.b...)
	putFrame(f)
	return id, op, payload, nil
}

// ---- in-place frame builders ---------------------------------------------
//
// The hot path builds frames directly inside a pooled buffer instead of
// encoding a payload and copying it through AppendFrame: begin the
// header, append the payload codec output, finish the length prefix.

// respHeader holds a precomputed 13-byte header template per response
// opcode (length and id left zero), so beginning a response frame is one
// bulk copy plus an id store.
var respHeader [256][frameOverhead + 4]byte

func init() {
	for _, op := range []Opcode{
		RespValue, RespOK, RespEntries, RespResults, RespStats,
		RespTask, RespTaskStatus, RespChunk, RespSpans, RespView,
		RespMetrics, RespEvents, RespError,
	} {
		respHeader[op][12] = byte(op)
	}
}

// beginResponse appends a response frame header (zero length prefix,
// to be stamped by finishFrame) from the precomputed per-opcode
// template.
func beginResponse(b []byte, id uint64, op Opcode) []byte {
	b = append(b, respHeader[op][:]...)
	binary.BigEndian.PutUint64(b[len(b)-frameOverhead:], id)
	return b
}

// beginRequest appends a request frame header with a placeholder id
// (stamped later by patchFrameID, once the connection assigns one) and
// the optional trace extension.
func beginRequest(b []byte, op Opcode, trace, parent uint64) []byte {
	return beginRequestExt(b, op, trace, parent, 0)
}

// beginRequestExt is beginRequest carrying an optional view epoch
// (zero = unstamped): the trace extension first, then the epoch.
func beginRequestExt(b []byte, op Opcode, trace, parent, epoch uint64) []byte {
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	if trace == 0 && epoch == 0 {
		return append(b, byte(op))
	}
	flags := Opcode(0)
	if trace != 0 {
		flags |= opFlagTraced
	}
	if epoch != 0 {
		flags |= opFlagEpoch
	}
	b = append(b, byte(op|flags))
	if trace != 0 {
		b = binary.BigEndian.AppendUint64(b, trace)
		b = binary.BigEndian.AppendUint64(b, parent)
	}
	if epoch != 0 {
		b = binary.BigEndian.AppendUint64(b, epoch)
	}
	return b
}

// finishFrame stamps the length prefix of a frame begun with
// beginResponse or beginRequest. b must hold exactly one frame.
func finishFrame(b []byte) []byte {
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	return b
}

// patchFrameID stamps the frame id of a completed frame.
func patchFrameID(b []byte, id uint64) {
	binary.BigEndian.PutUint64(b[4:12], id)
}

// ---- payload codecs ------------------------------------------------------

// u32 field helpers: every variable-length field is a u32 length followed
// by that many bytes.

func appendBytes32(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func takeBytes32(p []byte) (field, rest []byte, err error) {
	if len(p) < 4 {
		return nil, nil, ErrMalformed
	}
	n := binary.BigEndian.Uint32(p)
	if uint64(n) > uint64(len(p)-4) {
		return nil, nil, ErrMalformed
	}
	return p[4 : 4+n], p[4+n:], nil
}

// EncodePut appends an OpPut payload.
func EncodePut(dst, key, value []byte) []byte {
	return append(appendBytes32(dst, key), value...)
}

// DecodePut splits an OpPut payload into key and value (aliasing p).
func DecodePut(p []byte) (key, value []byte, err error) {
	key, value, err = takeBytes32(p)
	return key, value, err
}

// EncodeScan appends an OpScan payload. A negative limit travels as 0
// (the local Scan's "return nothing") rather than wrapping into a
// near-2^32 full-keyspace request.
func EncodeScan(dst []byte, start []byte, limit int) []byte {
	if limit < 0 {
		limit = 0
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(limit))
	return append(dst, start...)
}

// DecodeScan splits an OpScan payload (start aliases p).
func DecodeScan(p []byte) (start []byte, limit int, err error) {
	if len(p) < 4 {
		return nil, 0, ErrMalformed
	}
	return p[4:], int(binary.BigEndian.Uint32(p)), nil
}

// EncodeBatch appends an OpBatch payload: the batched ops plus the
// admission flag (try selects TryApply on the server).
func EncodeBatch(dst []byte, ops []cluster.Op, try bool) []byte {
	var flags byte
	if try {
		flags |= batchFlagTry
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ops)))
	for _, op := range ops {
		dst = append(dst, byte(op.Kind))
		dst = appendBytes32(dst, op.Key)
		if op.Kind == cluster.OpPut {
			dst = appendBytes32(dst, op.Value)
		}
	}
	return dst
}

// DecodeBatch parses an OpBatch payload; keys and values alias p.
func DecodeBatch(p []byte) (ops []cluster.Op, try bool, err error) {
	return DecodeBatchAppend(nil, p)
}

// DecodeBatchAppend parses an OpBatch payload, appending the decoded ops
// to dst (reusing its capacity) — the allocation-free form of
// DecodeBatch for callers that hold a pooled op slice. Keys and values
// alias p.
func DecodeBatchAppend(dst []cluster.Op, p []byte) (ops []cluster.Op, try bool, err error) {
	if len(p) < 5 {
		return nil, false, ErrMalformed
	}
	try = p[0]&batchFlagTry != 0
	count := binary.BigEndian.Uint32(p[1:])
	p = p[5:]
	// Each op is at least 5 bytes (kind + key length), so a count that
	// exceeds the remaining bytes is malformed — reject before
	// allocating for it.
	if uint64(count)*5 > uint64(len(p)) {
		return nil, false, ErrMalformed
	}
	ops = dst
	if cap(ops) == 0 {
		ops = make([]cluster.Op, 0, count)
	}
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return nil, false, ErrMalformed
		}
		kind := cluster.OpKind(p[0])
		if kind != cluster.OpGet && kind != cluster.OpPut && kind != cluster.OpDelete {
			return nil, false, ErrMalformed
		}
		var key, value []byte
		key, p, err = takeBytes32(p[1:])
		if err != nil {
			return nil, false, err
		}
		if kind == cluster.OpPut {
			value, p, err = takeBytes32(p)
			if err != nil {
				return nil, false, err
			}
		}
		ops = append(ops, cluster.Op{Kind: kind, Key: key, Value: value})
	}
	if len(p) != 0 {
		return nil, false, ErrMalformed
	}
	return ops, try, nil
}

// EncodeValue appends a RespValue payload.
func EncodeValue(dst, value []byte, found bool) []byte {
	if found {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return append(dst, value...)
}

// DecodeValue splits a RespValue payload (value aliases p).
func DecodeValue(p []byte) (value []byte, found bool, err error) {
	if len(p) < 1 {
		return nil, false, ErrMalformed
	}
	if p[0] == 0 {
		return nil, false, nil
	}
	return p[1:], true, nil
}

// EncodeEntries appends a RespEntries payload. more marks a page the
// server cut short of the requested limit for frame-size reasons: the
// range continues past the last entry and the client must paginate, or
// a k-way merge over partial ranges would see holes.
func EncodeEntries(dst []byte, entries []engine.Entry, more bool) []byte {
	if more {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = appendBytes32(dst, e.Key)
		dst = appendBytes32(dst, e.Value)
	}
	return dst
}

// DecodeEntries parses a RespEntries payload; keys and values alias p.
func DecodeEntries(p []byte) ([]engine.Entry, bool, error) {
	if len(p) < 5 {
		return nil, false, ErrMalformed
	}
	more := p[0] != 0
	count := binary.BigEndian.Uint32(p[1:])
	p = p[5:]
	if uint64(count)*8 > uint64(len(p)) {
		return nil, false, ErrMalformed
	}
	entries := make([]engine.Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		var key, value []byte
		var err error
		key, p, err = takeBytes32(p)
		if err != nil {
			return nil, false, err
		}
		value, p, err = takeBytes32(p)
		if err != nil {
			return nil, false, err
		}
		entries = append(entries, engine.Entry{Key: key, Value: value})
	}
	if len(p) != 0 {
		return nil, false, ErrMalformed
	}
	return entries, more, nil
}

// EncodeResults appends a RespResults payload. A non-nil err rides along
// as its code and message so partial results (TryApply under overload)
// and the failure detail both survive the trip.
func EncodeResults(dst []byte, res []cluster.OpResult, err error) []byte {
	code, msg := errorCode(err)
	dst = append(dst, code)
	dst = appendBytes32(dst, []byte(msg))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(res)))
	for _, r := range res {
		if r.Found {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes32(dst, r.Value)
	}
	return dst
}

// DecodeResults parses a RespResults payload; values alias p. The
// returned error is the remote execution error (e.g. ErrOverload), not a
// decode failure — decode failures come back in decodeErr.
func DecodeResults(p []byte) (res []cluster.OpResult, err, decodeErr error) {
	if len(p) < 1 {
		return nil, nil, ErrMalformed
	}
	code := p[0]
	msg, p, decodeErr := takeBytes32(p[1:])
	if decodeErr != nil {
		return nil, nil, decodeErr
	}
	err = codeError(code, string(msg))
	if len(p) < 4 {
		return nil, nil, ErrMalformed
	}
	count := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint64(count)*5 > uint64(len(p)) {
		return nil, nil, ErrMalformed
	}
	res = make([]cluster.OpResult, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return nil, nil, ErrMalformed
		}
		found := p[0] != 0
		var value []byte
		value, p, decodeErr = takeBytes32(p[1:])
		if decodeErr != nil {
			return nil, nil, decodeErr
		}
		if !found {
			value = nil
		}
		res = append(res, cluster.OpResult{Value: value, Found: found})
	}
	if len(p) != 0 {
		return nil, nil, ErrMalformed
	}
	return res, err, nil
}

// statsFieldCount is the number of u64 counters in one encoded NodeStats:
// 6 node counters (id, accepted, rejected, batches, ops, transportErrs)
// + 4 health fields (down flag, hints pending/replayed/dropped)
// + 12 engine counters.
const statsFieldCount = 22

// EncodeStats appends a RespStats payload: the per-node counters only —
// the aggregate fields are recomputed on decode, exactly as
// cluster.Stats derives them.
func EncodeStats(dst []byte, st cluster.Stats) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(st.Nodes)))
	for _, ns := range st.Nodes {
		for _, v := range nodeStatsFields(ns) {
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
	}
	return dst
}

// DecodeStats parses a RespStats payload.
func DecodeStats(p []byte) (cluster.Stats, error) {
	var st cluster.Stats
	if len(p) < 4 {
		return st, ErrMalformed
	}
	count := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint64(len(p)) != uint64(count)*statsFieldCount*8 {
		return st, ErrMalformed
	}
	for i := uint32(0); i < count; i++ {
		var f [statsFieldCount]uint64
		for j := range f {
			f[j] = binary.BigEndian.Uint64(p)
			p = p[8:]
		}
		ns := nodeStatsFromFields(f)
		st.Nodes = append(st.Nodes, ns)
		st.Accepted += ns.Accepted
		st.Rejected += ns.Rejected
		st.Batches += ns.Batches
		st.Ops += ns.Ops
		if ns.Down {
			st.Down++
		}
	}
	return st, nil
}

// nodeStatsFields flattens one NodeStats into its wire order.
func nodeStatsFields(ns cluster.NodeStats) [statsFieldCount]uint64 {
	s := ns.Store
	var down uint64
	if ns.Down {
		down = 1
	}
	return [statsFieldCount]uint64{
		uint64(int64(ns.ID)), ns.Accepted, ns.Rejected, ns.Batches, ns.Ops,
		ns.TransportErrs,
		down, ns.HintsPending, ns.HintsReplayed, ns.HintsDropped,
		s.Puts, s.Gets, s.Deletes, s.Scans, s.ScannedEntries,
		s.Flushes, s.Compactions, s.BloomNegative, s.RunsProbed,
		s.WALBytes, s.BlockCacheHits, s.BlockCacheMisses,
	}
}

// nodeStatsFromFields is the inverse of nodeStatsFields.
func nodeStatsFromFields(f [statsFieldCount]uint64) cluster.NodeStats {
	return cluster.NodeStats{
		ID: int(int64(f[0])), Accepted: f[1], Rejected: f[2], Batches: f[3], Ops: f[4],
		TransportErrs: f[5],
		Down:          f[6] != 0,
		HintsPending:  f[7],
		HintsReplayed: f[8],
		HintsDropped:  f[9],
		Store: engine.Stats{
			Puts: f[10], Gets: f[11], Deletes: f[12], Scans: f[13], ScannedEntries: f[14],
			Flushes: f[15], Compactions: f[16], BloomNegative: f[17], RunsProbed: f[18],
			WALBytes: f[19], BlockCacheHits: f[20], BlockCacheMisses: f[21],
		},
	}
}

// EncodeError appends a RespError payload for err.
func EncodeError(dst []byte, err error) []byte {
	code, msg := errorCode(err)
	dst = append(dst, code)
	return append(dst, msg...)
}

// DecodeError parses a RespError payload into the error it carries.
func DecodeError(p []byte) (error, error) {
	if len(p) < 1 {
		return nil, ErrMalformed
	}
	return codeError(p[0], string(p[1:])), nil
}

// EncodeTaskID appends an 8-byte id (the OpTaskStatus, RespTask and
// OpTraceFetch payloads share the shape).
func EncodeTaskID(dst []byte, id uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, id)
}

// DecodeTaskID parses an 8-byte id payload.
func DecodeTaskID(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, ErrMalformed
	}
	return binary.BigEndian.Uint64(p), nil
}

// ---- span codec (RespSpans) ----------------------------------------------
//
// One span:
//
//	trace u64 | id u64 | parent u64 | start unixnano i64 | dur i64 |
//	bytes u32 | name u16+b | node u16+b | peer u16+b | err u16+b |
//	phase count u8 | (name u8+b | dur i64)*
//
// Trace collection is a cold path — allocations here don't matter, and
// decoded spans own their strings outright.

func appendBytes16(dst []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func takeBytes16(p []byte) (field string, rest []byte, err error) {
	if len(p) < 2 {
		return "", nil, ErrMalformed
	}
	n := binary.BigEndian.Uint16(p)
	if int(n) > len(p)-2 {
		return "", nil, ErrMalformed
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// EncodeSpans appends a RespSpans payload.
func EncodeSpans(dst []byte, spans []obs.Span) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(spans)))
	for _, s := range spans {
		dst = binary.BigEndian.AppendUint64(dst, s.Trace)
		dst = binary.BigEndian.AppendUint64(dst, s.ID)
		dst = binary.BigEndian.AppendUint64(dst, s.Parent)
		dst = binary.BigEndian.AppendUint64(dst, uint64(s.Start.UnixNano()))
		dst = binary.BigEndian.AppendUint64(dst, uint64(s.Dur))
		dst = binary.BigEndian.AppendUint32(dst, uint32(s.Bytes))
		dst = appendBytes16(dst, s.Name)
		dst = appendBytes16(dst, s.Node)
		dst = appendBytes16(dst, s.Peer)
		dst = appendBytes16(dst, s.Err)
		phases := s.Phases
		if len(phases) > 0xFF {
			phases = phases[:0xFF]
		}
		dst = append(dst, byte(len(phases)))
		for _, ph := range phases {
			name := ph.Name
			if len(name) > 0xFF {
				name = name[:0xFF]
			}
			dst = append(dst, byte(len(name)))
			dst = append(dst, name...)
			dst = binary.BigEndian.AppendUint64(dst, uint64(ph.Dur))
		}
	}
	return dst
}

// spanFixedLen is the fixed (pre-string) portion of one encoded span.
const spanFixedLen = 8*5 + 4

// DecodeSpans parses a RespSpans payload. The returned spans own their
// memory (nothing aliases p).
func DecodeSpans(p []byte) ([]obs.Span, error) {
	if len(p) < 4 {
		return nil, ErrMalformed
	}
	count := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint64(count)*(spanFixedLen+9) > uint64(len(p)) {
		return nil, ErrMalformed
	}
	spans := make([]obs.Span, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < spanFixedLen {
			return nil, ErrMalformed
		}
		var s obs.Span
		s.Trace = binary.BigEndian.Uint64(p)
		s.ID = binary.BigEndian.Uint64(p[8:])
		s.Parent = binary.BigEndian.Uint64(p[16:])
		s.Start = time.Unix(0, int64(binary.BigEndian.Uint64(p[24:])))
		s.Dur = time.Duration(binary.BigEndian.Uint64(p[32:]))
		s.Bytes = int(binary.BigEndian.Uint32(p[40:]))
		p = p[spanFixedLen:]
		var err error
		if s.Name, p, err = takeBytes16(p); err != nil {
			return nil, err
		}
		if s.Node, p, err = takeBytes16(p); err != nil {
			return nil, err
		}
		if s.Peer, p, err = takeBytes16(p); err != nil {
			return nil, err
		}
		if s.Err, p, err = takeBytes16(p); err != nil {
			return nil, err
		}
		if len(p) < 1 {
			return nil, ErrMalformed
		}
		nphase := int(p[0])
		p = p[1:]
		if nphase > 0 {
			s.Phases = make([]obs.Phase, 0, nphase)
			for j := 0; j < nphase; j++ {
				if len(p) < 1 {
					return nil, ErrMalformed
				}
				nameLen := int(p[0])
				if len(p) < 1+nameLen+8 {
					return nil, ErrMalformed
				}
				s.Phases = append(s.Phases, obs.Phase{
					Name: string(p[1 : 1+nameLen]),
					Dur:  time.Duration(binary.BigEndian.Uint64(p[1+nameLen:])),
				})
				p = p[1+nameLen+8:]
			}
		}
		spans = append(spans, s)
	}
	if len(p) != 0 {
		return nil, ErrMalformed
	}
	return spans, nil
}

// encodedSpansLen is the payload size EncodeSpans will produce.
func encodedSpansLen(spans []obs.Span) int {
	n := 4
	for i := range spans {
		s := &spans[i]
		n += spanFixedLen + 8 +
			min16(len(s.Name)) + min16(len(s.Node)) + min16(len(s.Peer)) + min16(len(s.Err)) + 1
		phases := s.Phases
		if len(phases) > 0xFF {
			phases = phases[:0xFF]
		}
		for _, ph := range phases {
			l := len(ph.Name)
			if l > 0xFF {
				l = 0xFF
			}
			n += 1 + l + 8
		}
	}
	return n
}

func min16(n int) int {
	if n > 0xFFFF {
		return 0xFFFF
	}
	return n
}

// EncodeShuffleFetch appends an OpShuffleFetch payload.
func EncodeShuffleFetch(dst []byte, task uint64, part, offset uint32) []byte {
	dst = binary.BigEndian.AppendUint64(dst, task)
	dst = binary.BigEndian.AppendUint32(dst, part)
	return binary.BigEndian.AppendUint32(dst, offset)
}

// DecodeShuffleFetch parses an OpShuffleFetch payload.
func DecodeShuffleFetch(p []byte) (task uint64, part, offset uint32, err error) {
	if len(p) != 16 {
		return 0, 0, 0, ErrMalformed
	}
	return binary.BigEndian.Uint64(p), binary.BigEndian.Uint32(p[8:]),
		binary.BigEndian.Uint32(p[12:]), nil
}

// EncodeTaskStatus appends a RespTaskStatus payload. A failed task's
// error travels through the shared code mapping, so the cluster
// sentinels survive errors.Is and everything else keeps its message.
func EncodeTaskStatus(dst []byte, done bool, taskErr error) []byte {
	if done {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	code, msg := errorCode(taskErr)
	dst = append(dst, code)
	return append(dst, msg...)
}

// DecodeTaskStatus parses a RespTaskStatus payload. taskErr is the
// remote task's execution error, not a decode failure.
func DecodeTaskStatus(p []byte) (done bool, taskErr, decodeErr error) {
	if len(p) < 2 {
		return false, nil, ErrMalformed
	}
	return p[0] != 0, codeError(p[1], string(p[2:])), nil
}

// EncodeChunk appends a RespChunk payload.
func EncodeChunk(dst []byte, data []byte, more bool) []byte {
	if more {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return append(dst, data...)
}

// DecodeChunk splits a RespChunk payload (data aliases p).
func DecodeChunk(p []byte) (data []byte, more bool, err error) {
	if len(p) < 1 {
		return nil, false, ErrMalformed
	}
	return p[1:], p[0] != 0, nil
}

// ---- encoded-size helpers ------------------------------------------------
//
// Exact payload sizes, so pooled frame buffers are requested at the
// size class they will actually fill — over-requesting strands small
// frames in big classes, under-requesting re-allocates mid-append.

// encodedBatchLen is the payload size EncodeBatch will produce for ops.
func encodedBatchLen(ops []cluster.Op) int {
	n := 5
	for i := range ops {
		n += 5 + len(ops[i].Key)
		if ops[i].Kind == cluster.OpPut {
			n += 4 + len(ops[i].Value)
		}
	}
	return n
}

// encodedResultsLen is the payload size EncodeResults will produce.
// msg is the error message EncodeResults will embed (errorCode's msg for
// the same error value).
func encodedResultsLen(res []cluster.OpResult, msg string) int {
	n := 1 + 4 + len(msg) + 4
	for i := range res {
		n += 5 + len(res[i].Value)
	}
	return n
}

// encodedEntriesLen is the payload size EncodeEntries will produce.
func encodedEntriesLen(entries []engine.Entry) int {
	n := 5
	for i := range entries {
		n += 8 + len(entries[i].Key) + len(entries[i].Value)
	}
	return n
}

// errorCode maps an error to its wire code. The two cluster sentinels
// travel as codes so errors.Is works across the process boundary;
// everything else is errCodeInternal with the message as detail.
func errorCode(err error) (byte, string) {
	switch {
	case err == nil:
		return errCodeNone, ""
	case errors.Is(err, cluster.ErrOverload):
		return errCodeOverload, ""
	case errors.Is(err, cluster.ErrClosed):
		return errCodeClosed, ""
	case errors.Is(err, cluster.ErrWrongEpoch):
		return errCodeWrongEpoch, ""
	case errors.Is(err, ErrMalformed), errors.Is(err, ErrFrameTooLarge):
		return errCodeBad, err.Error()
	default:
		return errCodeInternal, err.Error()
	}
}

// codeError is the inverse of errorCode.
func codeError(code byte, msg string) error {
	switch code {
	case errCodeNone:
		return nil
	case errCodeOverload:
		return cluster.ErrOverload
	case errCodeClosed:
		return cluster.ErrClosed
	case errCodeWrongEpoch:
		return cluster.ErrWrongEpoch
	case errCodeBad:
		if msg == "" {
			return ErrMalformed
		}
		return fmt.Errorf("%w: %s", ErrMalformed, msg)
	default:
		if msg == "" {
			msg = "internal error"
		}
		return fmt.Errorf("transport: remote: %s", msg)
	}
}
