package transport

import (
	"os"
	"os/signal"
	"syscall"
)

// ServeUntilSignal hosts backend on addr until the process receives
// SIGINT or SIGTERM, then drains the server gracefully (Server.Close)
// and returns it so the caller can report final counters. onReady runs
// once the listener is bound — the place for a startup banner. This is
// the one serve-and-drain flow shared by cmd/bdserve and bdbench
// -listen, so drain behavior cannot drift between them.
func ServeUntilSignal(addr string, b Backend, opts ServerOptions, onReady func(*Server)) (*Server, error) {
	srv, err := Listen(addr, b, opts)
	if err != nil {
		return nil, err
	}
	if onReady != nil {
		onReady(srv)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	err = srv.Close()
	return srv, err
}
