package transport

import (
	"net"
	"os"
	"os/signal"
	"syscall"
)

// ServeUntilSignal hosts backend on addr until the process receives
// SIGINT or SIGTERM, then drains the server gracefully (Server.Close)
// and returns it so the caller can report final counters. onReady runs
// once the listener is bound — the place for a startup banner. This is
// the one serve-and-drain flow shared by cmd/bdserve and bdbench
// -listen, so drain behavior cannot drift between them.
func ServeUntilSignal(addr string, b Backend, opts ServerOptions, onReady func(*Server)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListenerUntilSignal(ln, b, opts, onReady)
}

// ServeListenerUntilSignal is ServeUntilSignal over a listener the
// caller already bound — for daemons that need the resolved listen
// address before the server starts (e.g. bdserve building its analytics
// executor, whose advertised shuffle address is the listen address).
func ServeListenerUntilSignal(ln net.Listener, b Backend, opts ServerOptions, onReady func(*Server)) (*Server, error) {
	return ServeListenerUntilSignalHook(ln, b, opts, onReady, nil)
}

// ServeListenerUntilSignalHook is ServeListenerUntilSignal with a hook
// that runs after the stop signal arrives but before the server drains.
// Elastic daemons use it to leave the cluster gracefully — migrating
// their keyranges out — while this server still answers the peers'
// gossip exchanges and read fallbacks.
func ServeListenerUntilSignalHook(ln net.Listener, b Backend, opts ServerOptions, onReady func(*Server), onSignal func()) (*Server, error) {
	srv := Serve(ln, b, opts)
	if onReady != nil {
		onReady(srv)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	if onSignal != nil {
		onSignal()
	}
	err := srv.Close()
	return srv, err
}
