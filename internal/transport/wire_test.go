package transport

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/engine"
)

// TestFrameRoundTrip checks AppendFrame/DecodeFrame over random ids,
// opcodes and payloads, including frames glued back to back.
func TestFrameRoundTrip(t *testing.T) {
	f := func(id uint64, op uint8, payload []byte, trailer []byte) bool {
		buf := AppendFrame(nil, id, Opcode(op), payload)
		buf = append(buf, trailer...)
		gotID, gotOp, gotPayload, n, err := DecodeFrame(buf, 0)
		return err == nil &&
			gotID == id && gotOp == Opcode(op) &&
			bytes.Equal(gotPayload, payload) &&
			n == 13+len(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameReadWrite round-trips frames through the streaming reader.
func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	type frame struct {
		id      uint64
		op      Opcode
		payload []byte
	}
	rng := rand.New(rand.NewSource(7))
	var want []frame
	for i := 0; i < 50; i++ {
		p := make([]byte, rng.Intn(200))
		rng.Read(p)
		f := frame{id: rng.Uint64(), op: Opcode(rng.Intn(256)), payload: p}
		want = append(want, f)
		buf.Write(AppendFrame(nil, f.id, f.op, f.payload))
	}
	for i, f := range want {
		id, op, payload, err := readFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if id != f.id || op != f.op || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, _, _, err := readFrame(&buf, 0); err != io.EOF {
		t.Fatalf("tail read = %v, want EOF", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := AppendFrame(nil, 1, OpGet, make([]byte, 1024))
	if _, _, _, _, err := DecodeFrame(big, 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame over limit = %v, want ErrFrameTooLarge", err)
	}
	if _, _, _, err := readFrame(bytes.NewReader(big), 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("readFrame over limit = %v, want ErrFrameTooLarge", err)
	}
}

// randOps builds a random batch covering all three op kinds.
func randOps(rng *rand.Rand) []cluster.Op {
	ops := make([]cluster.Op, rng.Intn(20))
	for i := range ops {
		key := make([]byte, rng.Intn(32))
		rng.Read(key)
		switch rng.Intn(3) {
		case 0:
			ops[i] = cluster.Op{Kind: cluster.OpGet, Key: key}
		case 1:
			val := make([]byte, rng.Intn(64))
			rng.Read(val)
			ops[i] = cluster.Op{Kind: cluster.OpPut, Key: key, Value: val}
		default:
			ops[i] = cluster.Op{Kind: cluster.OpDelete, Key: key}
		}
	}
	return ops
}

// TestBatchRoundTrip property-tests the batch codec over random op
// mixes and both admission flags.
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		ops := randOps(rng)
		try := rng.Intn(2) == 0
		got, gotTry, err := DecodeBatch(EncodeBatch(nil, ops, try))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if gotTry != try || len(got) != len(ops) {
			t.Fatalf("iter %d: try=%v len=%d, want %v/%d", iter, gotTry, len(got), try, len(ops))
		}
		for i := range ops {
			if got[i].Kind != ops[i].Kind || !bytes.Equal(got[i].Key, ops[i].Key) {
				t.Fatalf("iter %d op %d mismatch", iter, i)
			}
			if ops[i].Kind == cluster.OpPut && !bytes.Equal(got[i].Value, ops[i].Value) {
				t.Fatalf("iter %d op %d value mismatch", iter, i)
			}
		}
	}
}

func TestPutScanValueRoundTrip(t *testing.T) {
	f := func(key, value, start []byte, limit int32, found bool) bool {
		k, v, err := DecodePut(EncodePut(nil, key, value))
		if err != nil || !bytes.Equal(k, key) || !bytes.Equal(v, value) {
			return false
		}
		s, l, err := DecodeScan(EncodeScan(nil, start, int(uint32(limit))))
		if err != nil || !bytes.Equal(s, start) || l != int(uint32(limit)) {
			return false
		}
		val, ok, err := DecodeValue(EncodeValue(nil, value, found))
		if err != nil || ok != found {
			return false
		}
		return !found || bytes.Equal(val, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesResultsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		entries := make([]engine.Entry, rng.Intn(10))
		for i := range entries {
			entries[i].Key = []byte{byte(i), byte(iter)}
			entries[i].Value = make([]byte, rng.Intn(16))
			rng.Read(entries[i].Value)
		}
		more := rng.Intn(2) == 0
		got, gotMore, err := DecodeEntries(EncodeEntries(nil, entries, more))
		if err != nil || len(got) != len(entries) || gotMore != more {
			t.Fatalf("entries iter %d: %v (len %d want %d, more %v want %v)",
				iter, err, len(got), len(entries), gotMore, more)
		}
		for i := range entries {
			if !bytes.Equal(got[i].Key, entries[i].Key) || !bytes.Equal(got[i].Value, entries[i].Value) {
				t.Fatalf("entries iter %d idx %d mismatch", iter, i)
			}
		}

		res := make([]cluster.OpResult, rng.Intn(10))
		for i := range res {
			if rng.Intn(2) == 0 {
				res[i] = cluster.OpResult{Found: true, Value: []byte{byte(i)}}
			}
		}
		var execErr error
		if rng.Intn(2) == 0 {
			execErr = cluster.ErrOverload
		}
		gotRes, gotErr, decodeErr := DecodeResults(EncodeResults(nil, res, execErr))
		if decodeErr != nil {
			t.Fatalf("results iter %d: %v", iter, decodeErr)
		}
		if !errors.Is(gotErr, execErr) && !(gotErr == nil && execErr == nil) {
			t.Fatalf("results iter %d err = %v, want %v", iter, gotErr, execErr)
		}
		for i := range res {
			if gotRes[i].Found != res[i].Found || !bytes.Equal(gotRes[i].Value, res[i].Value) {
				t.Fatalf("results iter %d idx %d mismatch", iter, i)
			}
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	st := cluster.Stats{
		Nodes: []cluster.NodeStats{
			{ID: 0, Accepted: 10, Rejected: 1, Batches: 4, Ops: 40, TransportErrs: 2,
				Store: engine.Stats{Puts: 7, Gets: 30, Flushes: 2, WALBytes: 9999, BlockCacheHits: 5}},
			{ID: 3, Accepted: 2, Ops: 2, Down: true,
				HintsPending: 17, HintsReplayed: 256, HintsDropped: 3,
				Store: engine.Stats{Deletes: 1, Scans: 8, ScannedEntries: 64}},
		},
	}
	for _, ns := range st.Nodes {
		st.Accepted += ns.Accepted
		st.Rejected += ns.Rejected
		st.Batches += ns.Batches
		st.Ops += ns.Ops
		if ns.Down {
			st.Down++
		}
	}
	got, err := DecodeStats(EncodeStats(nil, st))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 2 || got.Accepted != st.Accepted || got.Ops != st.Ops || got.Down != st.Down {
		t.Fatalf("stats = %+v, want %+v", got, st)
	}
	for i := range st.Nodes {
		if got.Nodes[i] != st.Nodes[i] {
			t.Fatalf("node %d = %+v, want %+v", i, got.Nodes[i], st.Nodes[i])
		}
	}
}

// TestResultsCarryErrorDetail pins that a non-sentinel execution error
// keeps its message through a RespResults frame, like RespError does.
func TestResultsCarryErrorDetail(t *testing.T) {
	res := []cluster.OpResult{{Found: true, Value: []byte("v")}}
	got, execErr, decodeErr := DecodeResults(EncodeResults(nil, res, errors.New("engine exploded")))
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if len(got) != 1 || !got[0].Found {
		t.Fatalf("results = %+v", got)
	}
	if execErr == nil || !strings.Contains(execErr.Error(), "engine exploded") {
		t.Fatalf("execErr = %v, want the original detail preserved", execErr)
	}
}

// TestErrorRoundTrip pins the sentinel mapping: the cluster's admission
// and lifecycle errors must survive the wire as errors.Is-able values.
func TestErrorRoundTrip(t *testing.T) {
	for _, err := range []error{cluster.ErrOverload, cluster.ErrClosed, ErrMalformed, errors.New("boom")} {
		got, decodeErr := DecodeError(EncodeError(nil, err))
		if decodeErr != nil {
			t.Fatal(decodeErr)
		}
		switch {
		case errors.Is(err, cluster.ErrOverload) && got != cluster.ErrOverload:
			t.Fatalf("overload decoded as %v", got)
		case errors.Is(err, cluster.ErrClosed) && got != cluster.ErrClosed:
			t.Fatalf("closed decoded as %v", got)
		case got == nil:
			t.Fatalf("error %v decoded as nil", err)
		}
	}
	if got, err := DecodeError(EncodeError(nil, nil)); err != nil || got != nil {
		t.Fatalf("nil error round trip = %v, %v", got, err)
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the frame parser and every
// payload decoder: none may panic, whatever the input.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, 1, OpGet, []byte("key")))
	f.Add(AppendFrame(nil, 2, OpBatch, EncodeBatch(nil, []cluster.Op{
		{Kind: cluster.OpPut, Key: []byte("k"), Value: []byte("v")},
		{Kind: cluster.OpGet, Key: []byte("k")},
	}, true)))
	f.Add(AppendFrame(nil, 3, RespResults, EncodeResults(nil,
		[]cluster.OpResult{{Found: true, Value: []byte("v")}}, cluster.ErrOverload)))
	f.Add(AppendFrame(nil, 4, RespStats, EncodeStats(nil, cluster.Stats{
		Nodes: []cluster.NodeStats{{ID: 1, Ops: 9}}})))
	f.Add([]byte{0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, op, payload, _, err := DecodeFrame(data, 1<<20)
		if err != nil {
			return
		}
		// A structurally valid frame: its payload decoders must also be
		// panic-free on whatever the payload holds.
		switch op {
		case OpPut:
			DecodePut(payload)
		case OpScan:
			DecodeScan(payload)
		case OpBatch:
			DecodeBatch(payload)
		case RespValue:
			DecodeValue(payload)
		case RespEntries:
			DecodeEntries(payload)
		case RespResults:
			DecodeResults(payload)
		case RespStats:
			DecodeStats(payload)
		case RespError:
			DecodeError(payload)
		}
		// And the streaming reader must agree with the buffer parser.
		if _, rop, _, rerr := readFrame(bytes.NewReader(data), 1<<20); rerr == nil && rop != op {
			t.Fatalf("readFrame op %v != DecodeFrame op %v", rop, op)
		}
	})
}
