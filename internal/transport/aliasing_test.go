// Aliasing-safety coverage for the pooled hot path (DESIGN.md §12).
// Pooled frames are recycled the moment their owner releases them, so
// any result that secretly aliased a frame would be scribbled over by
// the next request. These tests hammer exactly those hand-off points:
// concurrent pipelined clients sharing one pool, the PR-4 hinted-handoff
// path where a write outlives the frame that carried it, and a fuzz
// property pinning pooled decode to fresh-buffer semantics. The stress
// test is most valuable under `go test -race`, which the CI race job
// runs.
package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
)

// stressValue derives the one value a key may ever hold, so any
// cross-request buffer reuse shows up as a key paired with some other
// key's value.
func stressValue(key []byte) []byte {
	return fmt.Appendf(nil, "val:%s:val", key)
}

// TestPipelinedClientAliasing drives many goroutines through one pooled
// client against a real server and checks every Get, Apply, and Scan
// result for cross-talk between concurrently in-flight frames.
func TestPipelinedClientAliasing(t *testing.T) {
	backend := newShard(t, 2)
	t.Cleanup(func() { backend.Close() })
	srv := startServer(t, backend, ServerOptions{})
	cl := dialT(t, srv.Addr(), ClientOptions{Conns: 2})

	const (
		workers = 8
		iters   = 150
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ops := make([]cluster.Op, 0, 4)
			res := make([]cluster.OpResult, 4)
			for i := 0; i < iters; i++ {
				key := fmt.Appendf(nil, "stress-%02d-%03d", w, i%32)
				want := stressValue(key)
				if err := cl.Put(key, want); err != nil {
					errc <- fmt.Errorf("worker %d put: %w", w, err)
					return
				}
				got, found, err := cl.Get(key)
				if err != nil || !found {
					errc <- fmt.Errorf("worker %d get %s: found=%v err=%v", w, key, found, err)
					return
				}
				if !bytes.Equal(got, want) {
					errc <- fmt.Errorf("worker %d key %s: got %q, want %q", w, key, got, want)
					return
				}
				// A small pipelined batch: a write plus reads of keys other
				// workers are rewriting right now.
				ops = ops[:0]
				ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: want})
				for p := 1; p < 4; p++ {
					peer := fmt.Appendf(nil, "stress-%02d-%03d", (w+p)%workers, i%32)
					ops = append(ops, cluster.Op{Kind: cluster.OpGet, Key: peer})
				}
				out, err := cl.Apply(ops)
				if err != nil {
					errc <- fmt.Errorf("worker %d apply: %w", w, err)
					return
				}
				copy(res, out)
				for j := 1; j < len(ops); j++ {
					if res[j].Found && !bytes.Equal(res[j].Value, stressValue(ops[j].Key)) {
						errc <- fmt.Errorf("worker %d batch read %s: got %q", w, ops[j].Key, res[j].Value)
						return
					}
				}
				if i%16 == 0 {
					entries, err := cl.Scan([]byte("stress-"), 64)
					if err != nil {
						errc <- fmt.Errorf("worker %d scan: %w", w, err)
						return
					}
					for _, e := range entries {
						if !bytes.Equal(e.Value, stressValue(e.Key)) {
							errc <- fmt.Errorf("worker %d scan entry %s: got %q", w, e.Key, e.Value)
							return
						}
					}
				}
			}
			errc <- nil
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestHintedHandoffOutlivesFrame exercises the PR-4 failover path over
// the real transport: the server dies, writes fail over to the replica
// and are buffered as hints — long after the pooled frames that carried
// them have been recycled — then the server restarts on the same
// address and the replayed hints must land byte-exact.
func TestHintedHandoffOutlivesFrame(t *testing.T) {
	remoteStore := newShard(t, 1)
	t.Cleanup(func() { remoteStore.Close() })
	srv, err := Listen("127.0.0.1:0", remoteStore, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cl := dialT(t, addr, ClientOptions{Conns: 1})

	coord := cluster.New(cluster.Config{
		Shards:        1,
		Replication:   2,
		ProbeInterval: -1, // manual probes keep the test deterministic
		ProbeFailures: 1,
		Engine:        engine.Options{MemtableBytes: 32 << 10},
	})
	t.Cleanup(func() { coord.Close() })
	id, _, err := coord.AddRemote(cl)
	if err != nil {
		t.Fatal(err)
	}

	const n = 48
	key := func(i int) []byte { return fmt.Appendf(nil, "hint-%03d", i) }
	val := func(i, gen int) []byte { return fmt.Appendf(nil, "gen%d-value-%03d", gen, i) }
	for i := 0; i < n; i++ {
		if err := coord.Put(key(i), val(i, 1)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the server and let the failure detector flip the member.
	srv.Close()
	coord.Probe()
	if !coord.MemberDown(id) {
		t.Fatal("remote member not marked down after failed probe")
	}

	// Gen-2 writes: with R=2 over two members every key has the remote
	// in its owner set, so each write either fails over from the dead
	// primary or loses its replica mirror — both buffer a hint. The
	// transport frames that carried the failed RPCs are back in the pool
	// well before replay; the hints must hold their own copies.
	for i := 0; i < n; i++ {
		if err := coord.Put(key(i), val(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	pending := uint64(0)
	for _, ns := range coord.Stats().Nodes {
		pending += ns.HintsPending
	}
	if pending == 0 {
		t.Fatal("no hints buffered while remote was down")
	}

	// Restart on the same address; probes redial, detect recovery, and
	// replay the backlog.
	srv2, err := Listen(addr, remoteStore, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })

	deadline := time.Now().Add(5 * time.Second)
	for coord.MemberDown(id) {
		if time.Now().After(deadline) {
			t.Fatal("remote member did not recover after restart")
		}
		coord.Probe()
		time.Sleep(10 * time.Millisecond)
	}

	replayed := uint64(0)
	for _, ns := range coord.Stats().Nodes {
		replayed += ns.HintsReplayed
	}
	if replayed == 0 {
		t.Fatal("no hints replayed after recovery")
	}
	// The replayed writes must be byte-exact on the remote's own store —
	// not just through the coordinator, which could mask a corrupt
	// replica by serving the healthy one.
	for i := 0; i < n; i++ {
		got, ok := remoteStore.Get(key(i))
		if !ok {
			t.Fatalf("key %s missing from remote store after replay", key(i))
		}
		if want := val(i, 2); !bytes.Equal(got, want) {
			t.Fatalf("key %s: remote has %q, want %q", key(i), got, want)
		}
	}
}

// FuzzDecodeBatchAppend pins pooled decode to fresh-buffer semantics:
// decoding any payload into a recycled destination slice must yield
// exactly what a fresh decode yields — same ops, same error — no matter
// what the previous occupant left behind.
func FuzzDecodeBatchAppend(f *testing.F) {
	seed := []cluster.Op{
		{Kind: cluster.OpPut, Key: []byte("alpha"), Value: []byte("one")},
		{Kind: cluster.OpGet, Key: []byte("beta")},
		{Kind: cluster.OpDelete, Key: []byte("gamma")},
	}
	f.Add(EncodeBatch(nil, seed, false))
	f.Add(EncodeBatch(nil, seed[:1], true))
	f.Add(EncodeBatch(nil, nil, false))
	f.Add([]byte{0, 0, 0, 3}) // count with no ops behind it
	f.Add([]byte{})

	dirty := make([]cluster.Op, 0, 8)
	for i := 0; i < 8; i++ {
		dirty = append(dirty, cluster.Op{
			Kind:  cluster.OpPut,
			Key:   fmt.Appendf(nil, "stale-key-%d", i),
			Value: fmt.Appendf(nil, "stale-value-%d", i),
		})
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		fresh, freshTry, freshErr := DecodeBatch(p)
		reused, reusedTry, reusedErr := DecodeBatchAppend(dirty[:0], p)
		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("error mismatch: fresh=%v reused=%v", freshErr, reusedErr)
		}
		if freshErr != nil {
			return
		}
		if freshTry != reusedTry || len(fresh) != len(reused) {
			t.Fatalf("shape mismatch: fresh try=%v n=%d, reused try=%v n=%d",
				freshTry, len(fresh), reusedTry, len(reused))
		}
		for i := range fresh {
			if fresh[i].Kind != reused[i].Kind ||
				!bytes.Equal(fresh[i].Key, reused[i].Key) ||
				!bytes.Equal(fresh[i].Value, reused[i].Value) {
				t.Fatalf("op %d mismatch: fresh=%+v reused=%+v", i, fresh[i], reused[i])
			}
		}
	})
}
