package transport

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
)

// pollSpans fetches trace spans from fetch until want spans arrive or
// the deadline passes — server-side span recording (observe) runs after
// the response is flushed, so the client can outrun the span log.
func pollSpans(t *testing.T, want int, fetch func() ([]obs.Span, error)) []obs.Span {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans, err := fetch()
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) >= want || time.Now().After(deadline) {
			return spans
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceFetchAssembleReplicatedPut drives one traced Put through the
// full replication topology — client, primary server, its cluster
// coordinator, and a second server process joined as a replica — then
// pulls every process's spans over the wire (OpTraceFetch) and asserts
// the assembled trace is the canonical four-hop chain with the phase
// breakdown each layer promises.
func TestTraceFetchAssembleReplicatedPut(t *testing.T) {
	// Replica process: a plain single-shard server with its own ring.
	srvB := startServer(t, newShard(t, 1), ServerOptions{})

	// Primary process: server and cluster coordinator share one span
	// ring, like bdserve wires it, so OpTraceFetch serves both layers.
	ringA := obs.NewSpanLog(256)
	ringA.SetNode("primary")
	backendA := cluster.New(cluster.Config{
		Shards:      1,
		Replication: 2,
		Engine:      engine.Options{MemtableBytes: 32 << 10},
		Spans:       ringA,
	})
	t.Cleanup(backendA.Close)
	rn, err := Connect(srvB.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rn.Close() })
	if _, _, err := backendA.AddRemote(rn); err != nil {
		t.Fatal(err)
	}
	srvA := startServer(t, backendA, ServerOptions{Spans: ringA})

	clientSpans := obs.NewSpanLog(64)
	clientSpans.SetNode("bench")
	clA := dialT(t, srvA.Addr(), ClientOptions{Spans: clientSpans})
	clB := dialT(t, srvB.Addr(), ClientOptions{})

	trace := obs.NewTraceID()
	if err := clA.PutTraced(trace, 0, []byte("replicated-key"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Collect: the client's own root span plus both processes' rings,
	// fetched over the wire like a real collector.
	spans := clientSpans.ByTrace(trace)
	spans = append(spans, pollSpans(t, 2, func() ([]obs.Span, error) { return clA.FetchSpans(trace) })...)
	spans = append(spans, pollSpans(t, 1, func() ([]obs.Span, error) { return clB.FetchSpans(trace) })...)

	tr := obs.Assemble(trace, spans)
	if tr == nil {
		t.Fatalf("no spans assembled for trace %d (collected %d)", trace, len(spans))
	}
	if tr.Missing != 0 || tr.Root.Synthetic {
		t.Fatalf("fragmented trace: missing=%d syntheticRoot=%v spans=%d", tr.Missing, tr.Root.Synthetic, tr.Spans)
	}
	path := tr.CriticalPath()
	if len(path) < 4 {
		t.Fatalf("critical path %d hops, want the 4-hop client→primary→cluster→replica chain", len(path))
	}
	// Exact parentage down the chain.
	wantNames := []string{"client/put", "server/put", "cluster/write"}
	for i, want := range wantNames {
		if path[i].Span.Name != want {
			t.Fatalf("path[%d] = %q, want %q (path %v)", i, path[i].Span.Name, want, names(path))
		}
	}
	if !strings.HasPrefix(path[3].Span.Name, "server/") {
		t.Fatalf("replica hop = %q, want a server/ span (path %v)", path[3].Span.Name, names(path))
	}
	for i := 1; i < 4; i++ {
		if path[i].Span.Parent != path[i-1].Span.ID {
			t.Fatalf("hop %d (%s) parent %d, want %d (%s)",
				i, path[i].Span.Name, path[i].Span.Parent, path[i-1].Span.ID, path[i-1].Span.Name)
		}
	}
	// Phase breakdown: the primary's server span splits queue/exec, the
	// cluster hop splits exec/replicate, and replicate is nonzero — the
	// replica RPC happened inside it.
	phases := map[string]time.Duration{}
	for _, n := range path {
		for _, p := range n.Span.Phases {
			phases[p.Name] += p.Dur
		}
	}
	for _, name := range []string{"queue", "exec", "replicate"} {
		if phases[name] <= 0 {
			t.Fatalf("phase %q absent or zero along the critical path: %v", name, phases)
		}
	}
	if cp, root := tr.CriticalPathDuration(), tr.Root.Span.Dur; cp > root {
		t.Fatalf("critical path %v exceeds root %v", cp, root)
	}
	if attr := tr.PhaseAttribution(); attr["replicate"] <= 0 {
		t.Fatalf("attribution lost the replicate phase: %v", attr)
	}
}

func names(path []*obs.TraceNode) []string {
	out := make([]string, len(path))
	for i, n := range path {
		out[i] = n.Span.Name
	}
	return out
}

// TestTraceMidRequestFailover downs one of two replicated members and
// asserts a traced write batch leaves the degraded-path annotations in
// the trace: cluster/failover where a key's primary was routed around,
// cluster/hint where a replica leg was deferred to hinted handoff — and
// that the collection still assembles.
func TestTraceMidRequestFailover(t *testing.T) {
	srvA := startServer(t, newShard(t, 1), ServerOptions{})
	srvB := startServer(t, newShard(t, 1), ServerOptions{})

	coordSpans := obs.NewSpanLog(256)
	coordSpans.SetNode("coord")
	coord := cluster.NewEmpty(cluster.Config{
		Replication:   2,
		ProbeInterval: -1, // detection driven by the test
		ProbeFailures: 1,
		Spans:         coordSpans,
	})
	defer coord.Close()
	for _, addr := range []string{srvA.Addr(), srvB.Addr()} {
		rn, err := Connect(addr, ClientOptions{Timeout: 2 * time.Second, DialTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rn.Close() })
		if _, _, err := coord.AddRemote(rn); err != nil {
			t.Fatal(err)
		}
	}

	// Down the second member and let the detector notice.
	srvB.Close()
	coord.Probe()
	if len(coord.DownMembers()) != 1 {
		t.Fatalf("down members = %v, want exactly one", coord.DownMembers())
	}

	trace := obs.NewTraceID()
	ops := make([]cluster.Op, 32)
	for i := range ops {
		ops[i] = cluster.Op{
			Kind: cluster.OpPut, Trace: trace, Parent: 77,
			Key:   []byte{'f', 'o', byte(i)},
			Value: []byte("v"),
		}
	}
	if _, err := coord.Apply(ops); err != nil {
		t.Fatal(err)
	}

	spans := coordSpans.ByTrace(trace)
	var failovers, hints, writes int
	for _, s := range spans {
		switch s.Name {
		case "cluster/failover":
			failovers++
			if s.Parent != 77 {
				t.Fatalf("failover span parent %d, want the caller's 77", s.Parent)
			}
		case "cluster/hint":
			hints++
			if len(s.Phases) != 1 || s.Phases[0].Name != "hinted-handoff" {
				t.Fatalf("hint span lacks the hinted-handoff phase: %+v", s)
			}
		case "cluster/write":
			writes++
		}
	}
	// Every key's replica leg to the down member defers to hints; with 32
	// uniformly hashed keys at least one key's primary was the down
	// member, so at least one write was rerouted.
	if failovers == 0 || hints == 0 || writes == 0 {
		t.Fatalf("degraded-path spans missing: failover=%d hint=%d write=%d (of %d spans)",
			failovers, hints, writes, len(spans))
	}

	// The degraded collection still assembles: fragments hang under a
	// synthetic root, and the critical-path bound holds.
	tr := obs.Assemble(trace, spans)
	if tr == nil {
		t.Fatal("degraded trace did not assemble")
	}
	if cp, root := tr.CriticalPathDuration(), tr.Root.Span.Dur; cp > root {
		t.Fatalf("critical path %v exceeds root %v", cp, root)
	}
}
