package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
)

// fakeHost is a scripted TaskHost for exercising the task plane without
// the analytics engine.
type fakeHost struct {
	mu     sync.Mutex
	nextID uint64
	specs  map[uint64][]byte
	errs   map[uint64]error
}

func newFakeHost() *fakeHost {
	return &fakeHost{specs: map[uint64][]byte{}, errs: map[uint64]error{}}
}

func (h *fakeHost) SubmitTask(spec []byte) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if bytes.Equal(spec, []byte("shed")) {
		return 0, cluster.ErrOverload
	}
	h.nextID++
	h.specs[h.nextID] = append([]byte(nil), spec...)
	return h.nextID, nil
}

func (h *fakeHost) TaskStatus(id uint64) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.specs[id]; !ok {
		return false, fmt.Errorf("no task %d", id)
	}
	return true, h.errs[id]
}

func (h *fakeHost) ShuffleFetch(id uint64, part uint32) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	spec, ok := h.specs[id]
	if !ok {
		return nil, fmt.Errorf("no task %d", id)
	}
	// Partition p is the spec repeated p+1 times — big enough parts
	// exercise the chunked fetch path.
	return bytes.Repeat(spec, int(part)+1), nil
}

// TestTaskPlaneRoundTrip drives submit/status/fetch over a real socket.
func TestTaskPlaneRoundTrip(t *testing.T) {
	host := newFakeHost()
	cl := cluster.New(cluster.Config{Shards: 1})
	defer cl.Close()
	srv, err := Listen("127.0.0.1:0", cl, ServerOptions{Tasks: host})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.SubmitTask([]byte("task-spec"))
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	done, taskErr, err := c.TaskStatus(id)
	if err != nil || taskErr != nil || !done {
		t.Fatalf("TaskStatus = (%v,%v,%v), want (true,nil,nil)", done, taskErr, err)
	}
	data, err := c.ShuffleFetch(id, 2)
	if err != nil {
		t.Fatalf("ShuffleFetch: %v", err)
	}
	if want := bytes.Repeat([]byte("task-spec"), 3); !bytes.Equal(data, want) {
		t.Fatalf("ShuffleFetch = %q, want %q", data, want)
	}
}

// TestTaskPlaneChunkedFetch forces a partition across multiple frames.
func TestTaskPlaneChunkedFetch(t *testing.T) {
	host := newFakeHost()
	cl := cluster.New(cluster.Config{Shards: 1})
	defer cl.Close()
	// A tiny frame cap makes even small partitions page.
	srv, err := Listen("127.0.0.1:0", cl, ServerOptions{Tasks: host, MaxFrame: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), ClientOptions{MaxFrame: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := bytes.Repeat([]byte("0123456789abcdef"), 8) // 128 B
	id, err := c.SubmitTask(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.ShuffleFetch(id, 9) // 1280 B over ~190 B pages
	if err != nil {
		t.Fatalf("chunked ShuffleFetch: %v", err)
	}
	if want := bytes.Repeat(spec, 10); !bytes.Equal(data, want) {
		t.Fatalf("chunked fetch reassembled %d bytes, want %d", len(data), len(want))
	}
}

// TestTaskPlaneErrors: sentinel errors survive the wire via the shared
// code mapping; task-plane calls on a host-less server fail loudly.
func TestTaskPlaneErrors(t *testing.T) {
	host := newFakeHost()
	cl := cluster.New(cluster.Config{Shards: 1})
	defer cl.Close()
	srv, err := Listen("127.0.0.1:0", cl, ServerOptions{Tasks: host})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), ClientOptions{RetryOverload: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.SubmitTask([]byte("shed")); !errors.Is(err, cluster.ErrOverload) {
		t.Fatalf("shed submit error = %v, want ErrOverload via errors.Is", err)
	}
	// A failed task's execution error comes back in the status, intact.
	id, err := c.SubmitTask([]byte("will-fail"))
	if err != nil {
		t.Fatal(err)
	}
	host.mu.Lock()
	host.errs[id] = errors.New("superstep 3 diverged")
	host.mu.Unlock()
	done, taskErr, err := c.TaskStatus(id)
	if err != nil || !done {
		t.Fatalf("TaskStatus = (%v,_,%v)", done, err)
	}
	if taskErr == nil || taskErr.Error() != "transport: remote: superstep 3 diverged" {
		t.Fatalf("task error = %v, want remote-wrapped message", taskErr)
	}
	// Unknown task ids surface a terminal task error rather than hang.
	if _, taskErr, err := c.TaskStatus(9999); err != nil || taskErr == nil {
		t.Fatalf("TaskStatus on unknown id = (_,%v,%v), want a task error", taskErr, err)
	}
	if _, err := c.ShuffleFetch(9999, 0); err == nil {
		t.Fatal("ShuffleFetch on unknown id succeeded")
	}

	// No task host configured: every task-plane opcode fails loudly.
	bare, err := Listen("127.0.0.1:0", cl, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	c2, err := Dial(bare.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.SubmitTask([]byte("x")); err == nil {
		t.Fatal("SubmitTask on host-less server succeeded")
	}
}

// TestTaskCodecs round-trips the task-plane payload codecs.
func TestTaskCodecs(t *testing.T) {
	if id, err := DecodeTaskID(EncodeTaskID(nil, 0xdeadbeefcafe)); err != nil || id != 0xdeadbeefcafe {
		t.Fatalf("task id round trip = (%x,%v)", id, err)
	}
	if _, err := DecodeTaskID([]byte{1, 2}); err == nil {
		t.Fatal("short task id decoded")
	}
	task, part, off, err := DecodeShuffleFetch(EncodeShuffleFetch(nil, 7, 3, 4096))
	if err != nil || task != 7 || part != 3 || off != 4096 {
		t.Fatalf("shuffle fetch round trip = (%d,%d,%d,%v)", task, part, off, err)
	}
	done, taskErr, err := DecodeTaskStatus(EncodeTaskStatus(nil, true, cluster.ErrOverload))
	if err != nil || !done || !errors.Is(taskErr, cluster.ErrOverload) {
		t.Fatalf("task status round trip = (%v,%v,%v)", done, taskErr, err)
	}
	if done, taskErr, err = DecodeTaskStatus(EncodeTaskStatus(nil, false, nil)); err != nil || done || taskErr != nil {
		t.Fatalf("running status round trip = (%v,%v,%v)", done, taskErr, err)
	}
	data, more, err := DecodeChunk(EncodeChunk(nil, []byte("abc"), true))
	if err != nil || !more || !bytes.Equal(data, []byte("abc")) {
		t.Fatalf("chunk round trip = (%q,%v,%v)", data, more, err)
	}
}
