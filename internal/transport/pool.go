package transport

import (
	"math/bits"
	"sync"

	"repro/internal/obs"
)

// Frame buffer pooling (DESIGN.md §12). Every frame on the hot path —
// request payloads read off a socket, response frames built by server
// dispatch, request frames built by the client — lives in a pooled,
// size-classed buffer instead of a fresh allocation. The protocol is
// strict ownership hand-off:
//
//   - getFrame(n) returns a *frame whose .b has length n and capacity of
//     the smallest size class that fits. The caller owns it exclusively.
//   - Ownership moves with the frame: the server's read loop hands the
//     request frame to the dispatch goroutine; dispatch hands the
//     response frame to the writer goroutine; the client's read loop
//     hands response frames to the waiting caller.
//   - Exactly one owner calls putFrame, and only once nothing aliases
//     the buffer anymore. Decoded keys/values/entries alias frames, so
//     anything retained past the release (engine memtables, hinted
//     handoff, values returned to callers) must be copied first — the
//     engine copies on Put, the hint buffer copies on enqueue, and the
//     client copies response values out before releasing.
//
// Size classes are powers of two from 256 B to 1 MiB. Buffers that grew
// past their class (an append outran the estimate) are re-bucketed by
// capacity on release; anything beyond the largest class is left to the
// garbage collector rather than pinned in a pool.

const (
	framePoolMinBits = 8  // 256 B
	framePoolMaxBits = 20 // 1 MiB
	framePoolClasses = framePoolMaxBits - framePoolMinBits + 1
	framePoolMax     = 1 << framePoolMaxBits
)

// frame is one pooled wire buffer. The slice is the sole state: length
// is whatever the current owner set, capacity is the size class (or
// larger, if an append grew it).
type frame struct {
	b []byte
}

var framePools [framePoolClasses]sync.Pool

// Pool efficacy counters, exported by RegisterPoolMetrics. A hit is a
// getFrame served from the pool; a miss allocated a fresh class-sized
// buffer; an oversize request bypassed the pool entirely.
var (
	framePoolHits     obs.Counter
	framePoolMisses   obs.Counter
	framePoolOversize obs.Counter
)

// frameClass maps a requested size to its pool index (smallest class
// that fits). n must be <= framePoolMax.
func frameClass(n int) int {
	if n <= 1<<framePoolMinBits {
		return 0
	}
	return bits.Len(uint(n-1)) - framePoolMinBits
}

// getFrame returns a frame with len(f.b) == n and cap(f.b) >= n. The
// caller owns it until it calls putFrame or hands it off.
func getFrame(n int) *frame {
	if n > framePoolMax {
		framePoolOversize.Inc()
		return &frame{b: make([]byte, n)}
	}
	cls := frameClass(n)
	if v := framePools[cls].Get(); v != nil {
		framePoolHits.Inc()
		f := v.(*frame)
		f.b = f.b[:n]
		return f
	}
	framePoolMisses.Inc()
	return &frame{b: make([]byte, n, 1<<(framePoolMinBits+cls))}
}

// putFrame releases a frame back to its pool, re-bucketed by capacity so
// a buffer an append grew lands in the class it can actually serve.
// Buffers beyond the largest class are dropped to the GC: pools must not
// pin megabyte scan pages forever. Callers must not touch the frame (or
// anything aliasing its bytes) after the put.
func putFrame(f *frame) {
	if f == nil {
		return
	}
	c := cap(f.b)
	if c < 1<<framePoolMinBits || c > framePoolMax {
		return
	}
	// Largest class whose size is <= cap: the pool invariant is that a
	// frame in class i has capacity >= 1<<(minBits+i).
	cls := bits.Len(uint(c)) - 1 - framePoolMinBits
	if cls < 0 {
		return
	}
	if cls >= framePoolClasses {
		cls = framePoolClasses - 1
	}
	f.b = f.b[:0]
	framePools[cls].Put(f)
}

// RegisterPoolMetrics exports the frame-pool efficacy counters into r
// under bd_transport_framepool_*. The pool is process-global (every
// server and client in the process shares it), so call this once per
// registry — not once per server.
func RegisterPoolMetrics(r *obs.Registry) {
	r.CounterFunc("bd_transport_framepool_total", "Frame buffer pool requests, by outcome.",
		obs.Labels{"outcome": "hit"}, framePoolHits.Value)
	r.CounterFunc("bd_transport_framepool_total", "Frame buffer pool requests, by outcome.",
		obs.Labels{"outcome": "miss"}, framePoolMisses.Value)
	r.CounterFunc("bd_transport_framepool_total", "Frame buffer pool requests, by outcome.",
		obs.Labels{"outcome": "oversize"}, framePoolOversize.Value)
}
