package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
)

func newShard(t testing.TB, shards int) *cluster.Cluster {
	t.Helper()
	return cluster.New(cluster.Config{
		Shards: shards,
		Engine: engine.Options{MemtableBytes: 32 << 10},
	})
}

// startServer hosts a backend on a loopback port and tears it down with
// the test.
func startServer(t testing.TB, b Backend, opts ServerOptions) *Server {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", b, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dialT(t testing.TB, addr string, opts ClientOptions) *Client {
	t.Helper()
	cl, err := Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// hookBackend wraps a Backend with test hooks, settable mid-test from
// the test goroutine while server goroutines read them.
type hookBackend struct {
	Backend
	mu       sync.Mutex
	onGet    func()       // runs inside Get, before delegation
	tryApply func() error // non-nil result overrides TryApply
	apply    func() error // non-nil result overrides Apply
}

func (h *hookBackend) setTryApply(fn func() error) {
	h.mu.Lock()
	h.tryApply = fn
	h.mu.Unlock()
}

func (h *hookBackend) setApply(fn func() error) {
	h.mu.Lock()
	h.apply = fn
	h.mu.Unlock()
}

func (h *hookBackend) Apply(ops []cluster.Op) ([]cluster.OpResult, error) {
	h.mu.Lock()
	hook := h.apply
	h.mu.Unlock()
	if hook != nil {
		if err := hook(); err != nil {
			return nil, err
		}
	}
	return h.Backend.Apply(ops)
}

func (h *hookBackend) setOnGet(fn func()) {
	h.mu.Lock()
	h.onGet = fn
	h.mu.Unlock()
}

func (h *hookBackend) Get(key []byte) ([]byte, bool) {
	h.mu.Lock()
	hook := h.onGet
	h.mu.Unlock()
	if hook != nil {
		hook()
	}
	return h.Backend.Get(key)
}

func (h *hookBackend) TryApply(ops []cluster.Op) ([]cluster.OpResult, error) {
	h.mu.Lock()
	hook := h.tryApply
	h.mu.Unlock()
	if hook != nil {
		if err := hook(); err != nil {
			return nil, err
		}
	}
	return h.Backend.TryApply(ops)
}

// TestClientServerOps drives every opcode end to end over a real socket.
func TestClientServerOps(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	srv := startServer(t, backend, ServerOptions{})
	cl := dialT(t, srv.Addr(), ClientOptions{})

	if err := cl.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get([]byte("alpha")); err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, err := cl.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get(missing) = %v, %v", ok, err)
	}
	if err := cl.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get([]byte("alpha")); ok {
		t.Fatal("deleted key still readable")
	}

	var ops []cluster.Op
	for i := 0; i < 100; i++ {
		ops = append(ops, cluster.Op{Kind: cluster.OpPut,
			Key: []byte(fmt.Sprintf("b-%03d", i)), Value: []byte{byte(i)}})
	}
	if _, err := cl.Apply(ops); err != nil {
		t.Fatal(err)
	}
	reads := make([]cluster.Op, 100)
	for i := range reads {
		reads[i] = cluster.Op{Kind: cluster.OpGet, Key: []byte(fmt.Sprintf("b-%03d", i))}
	}
	res, err := cl.TryApply(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Found || !bytes.Equal(r.Value, []byte{byte(i)}) {
			t.Fatalf("batched read %d = %+v", i, r)
		}
	}

	entries, err := cl.Scan([]byte("b-"), 10)
	if err != nil || len(entries) != 10 {
		t.Fatalf("Scan = %d entries, %v", len(entries), err)
	}
	for i, e := range entries {
		if string(e.Key) != fmt.Sprintf("b-%03d", i) {
			t.Fatalf("scan entry %d = %q", i, e.Key)
		}
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 1 || st.Nodes[0].Store.Puts == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if srv.Served() == 0 {
		t.Fatal("server counted no requests")
	}
}

// TestPipelining issues many concurrent requests over one connection and
// checks every response resolves to its own request's key — the id
// matching that makes pipelined frames safe.
func TestPipelining(t *testing.T) {
	backend := newShard(t, 2)
	defer backend.Close()
	for i := 0; i < 512; i++ {
		backend.Put([]byte(fmt.Sprintf("p-%04d", i)), []byte(fmt.Sprintf("v-%04d", i)))
	}
	srv := startServer(t, backend, ServerOptions{})
	cl := dialT(t, srv.Addr(), ClientOptions{Conns: 1})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w*50 + i) % 512
				v, ok, err := cl.Get([]byte(fmt.Sprintf("p-%04d", k)))
				if err != nil || !ok || string(v) != fmt.Sprintf("v-%04d", k) {
					errs <- fmt.Errorf("worker %d: Get(%d) = %q, %v, %v", w, k, v, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRemoteNodeConformance is the acceptance scenario: a coordinator
// whose two shards are served by separate transport.Server instances
// must pass the cluster conformance behaviors through RemoteNode —
// read-your-writes, positional batches, scatter-gather scans, and
// ErrOverload propagation.
func TestRemoteNodeConformance(t *testing.T) {
	shard1, shard2 := newShard(t, 1), newShard(t, 1)
	defer shard1.Close()
	defer shard2.Close()
	hooked := &hookBackend{Backend: shard2}
	srv1 := startServer(t, shard1, ServerOptions{})
	srv2 := startServer(t, hooked, ServerOptions{})

	coord := cluster.NewEmpty(cluster.Config{})
	defer coord.Close()
	for _, srv := range []*Server{srv1, srv2} {
		rn, err := Connect(srv.Addr(), ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := coord.AddRemote(rn); err != nil {
			t.Fatal(err)
		}
	}
	if coord.Nodes() != 2 {
		t.Fatalf("members = %d, want 2", coord.Nodes())
	}

	// Read-your-writes through the sockets.
	ref, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("net-%04d", i))
		val := []byte(fmt.Sprintf("v%d", i))
		coord.Put(key, val)
		ref.Put(key, val)
		if got, ok := coord.Get(key); !ok || !bytes.Equal(got, val) {
			t.Fatalf("read-your-writes violated for %q: %q, %v", key, got, ok)
		}
	}
	// Both remote shards hold a share.
	for _, ns := range coord.Stats().Nodes {
		if ns.Store.Puts == 0 {
			t.Fatalf("member %d received no writes", ns.ID)
		}
	}

	// Positional batches through the queues and the wire.
	reads := make([]cluster.Op, 128)
	for i := range reads {
		reads[i] = cluster.Op{Kind: cluster.OpGet, Key: []byte(fmt.Sprintf("net-%04d", i))}
	}
	res, err := coord.Apply(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Found || !bytes.Equal(r.Value, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("batched read %d = %+v", i, r)
		}
	}

	// Scatter-gather scans merge the two remote partials in key order.
	for _, start := range []string{"", "net-0300", "zzz"} {
		got, err := coord.Scan([]byte(start), 64)
		if err != nil {
			t.Fatalf("scan(%q): %v", start, err)
		}
		want := ref.Scan([]byte(start), 64)
		if len(got) != len(want) {
			t.Fatalf("scan(%q) len = %d, want %d", start, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("scan(%q)[%d] = %q, want %q", start, i, got[i].Key, want[i].Key)
			}
		}
	}

	// A remote shard shedding under admission control surfaces as
	// ErrOverload at the coordinator, across the wire. Find a key the
	// hooked shard (srv2) owns: write through the coordinator, then ask
	// the shard directly whether it landed there.
	probe := dialT(t, srv2.Addr(), ClientOptions{})
	var shedKey []byte
	for i := 0; i <= 200; i++ {
		k := []byte(fmt.Sprintf("shed-%04d", i))
		coord.Put(k, []byte("v"))
		if _, ok, err := probe.Get(k); err == nil && ok {
			shedKey = k
			break
		}
	}
	if shedKey == nil {
		t.Fatal("no key routed to the hooked shard")
	}
	hooked.setTryApply(func() error { return cluster.ErrOverload })
	if _, err := coord.TryApply([]cluster.Op{{Kind: cluster.OpPut, Key: shedKey, Value: []byte("v")}}); !errors.Is(err, cluster.ErrOverload) {
		t.Fatalf("TryApply = %v, want ErrOverload", err)
	}
	hooked.setTryApply(nil)
	if _, err := coord.TryApply([]cluster.Op{{Kind: cluster.OpPut, Key: shedKey, Value: []byte("v2")}}); err != nil {
		t.Fatalf("TryApply after shed cleared: %v", err)
	}
}

// TestServerAdmissionControl pins the bounded in-flight behavior: with
// MaxInFlight=1 and a request parked in the backend, the next request is
// shed with cluster.ErrOverload instead of queueing.
func TestServerAdmissionControl(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	hooked := &hookBackend{Backend: backend, onGet: func() {
		entered <- struct{}{}
		<-gate
	}}
	srv := startServer(t, hooked, ServerOptions{MaxInFlight: 1})
	cl := dialT(t, srv.Addr(), ClientOptions{RetryOverload: -1}) // no retries: observe the shed

	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Get([]byte("slow"))
		done <- err
	}()
	<-entered // the slow request holds the only in-flight token
	if _, _, err := cl.Get([]byte("fast")); !errors.Is(err, cluster.ErrOverload) {
		t.Fatalf("Get under full admission = %v, want ErrOverload", err)
	}
	if srv.Shed() == 0 {
		t.Fatal("shed counter not incremented")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
	hooked.setOnGet(nil)

	// With retries enabled a shed request eventually lands once the
	// token frees: park one request briefly, race a second against it.
	gate2 := make(chan struct{})
	var once sync.Once
	hooked.setOnGet(func() {
		once.Do(func() {
			go func() {
				time.Sleep(5 * time.Millisecond)
				close(gate2)
			}()
		})
		<-gate2
	})
	cl2 := dialT(t, srv.Addr(), ClientOptions{RetryOverload: 50, RetryBackoff: time.Millisecond})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, key := range []string{"slow", "retry"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			if _, _, err := cl2.Get([]byte(key)); err != nil {
				errs <- fmt.Errorf("Get(%s): %w", key, err)
			}
		}(key)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("retry path: %v", err)
	}
}

// TestGracefulDrain verifies Close lets an admitted request finish and
// flush before the connection dies, and refuses new work afterwards.
func TestGracefulDrain(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	backend.Put([]byte("k"), []byte("v"))
	entered := make(chan struct{})
	gate := make(chan struct{})
	hooked := &hookBackend{Backend: backend, onGet: func() {
		close(entered)
		<-gate
	}}
	srv := startServer(t, hooked, ServerOptions{})
	cl := dialT(t, srv.Addr(), ClientOptions{})

	done := make(chan error, 1)
	go func() {
		v, ok, err := cl.Get([]byte("k"))
		if err == nil && (!ok || string(v) != "v") {
			err = fmt.Errorf("drained response corrupted: %q, %v", v, ok)
		}
		done <- err
	}()
	<-entered
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Close must block on the in-flight request; give it a moment to
	// reach the drain, then release the backend.
	time.Sleep(10 * time.Millisecond)
	select {
	case <-closed:
		t.Fatal("Close returned while a request was in flight")
	default:
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The drained server refuses new connections.
	if _, err := Dial(srv.Addr(), ClientOptions{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial after Close succeeded")
	}
}

// TestClientTimeout pins the per-request deadline.
func TestClientTimeout(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	gate := make(chan struct{})
	defer close(gate)
	hooked := &hookBackend{Backend: backend, onGet: func() { <-gate }}
	srv := startServer(t, hooked, ServerOptions{})
	cl := dialT(t, srv.Addr(), ClientOptions{Timeout: 30 * time.Millisecond, RetryOverload: -1})
	if _, _, err := cl.Get([]byte("k")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Get = %v, want ErrTimeout", err)
	}
}

// TestClientRedial pins that a dead connection does not poison the
// pool: after the server restarts on the same address, the next request
// revives the slot and succeeds.
func TestClientRedial(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	backend.Put([]byte("k"), []byte("v"))
	srv1, err := Listen("127.0.0.1:0", backend, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()
	cl := dialT(t, addr, ClientOptions{Timeout: 2 * time.Second})
	if _, ok, err := cl.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("Get before restart = %v, %v", ok, err)
	}
	srv1.Close()
	srv2, err := Listen(addr, backend, ServerOptions{})
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	// The first call may observe the dying connection; the client must
	// recover on its own within a couple of attempts.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		v, ok, err := cl.Get([]byte("k"))
		if err == nil && ok && string(v) == "v" {
			return
		}
		lastErr = err
	}
	t.Fatalf("client never recovered after server restart: %v", lastErr)
}

// TestApplyBackpressureNotShed pins that a full server sheds TryApply
// but never Apply: the blocking batch waits for a permit, exactly like
// the in-process queues.
func TestApplyBackpressureNotShed(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	hooked := &hookBackend{Backend: backend, onGet: func() {
		entered <- struct{}{}
		<-gate
	}}
	srv := startServer(t, hooked, ServerOptions{MaxInFlight: 1})
	// Two connections: the parked Get must not head-of-line-block the
	// Apply's own read loop.
	clPark := dialT(t, srv.Addr(), ClientOptions{RetryOverload: -1})
	clApply := dialT(t, srv.Addr(), ClientOptions{RetryOverload: -1})

	parked := make(chan struct{})
	go func() {
		defer close(parked)
		clPark.Get([]byte("slow"))
	}()
	<-entered // the Get holds the only permit

	ops := []cluster.Op{{Kind: cluster.OpPut, Key: []byte("bp"), Value: []byte("v")}}
	if _, err := clApply.TryApply(ops); !errors.Is(err, cluster.ErrOverload) {
		t.Fatalf("TryApply under full admission = %v, want ErrOverload", err)
	}
	applied := make(chan error, 1)
	go func() {
		_, err := clApply.Apply(ops)
		applied <- err
	}()
	select {
	case err := <-applied:
		t.Fatalf("Apply returned (%v) while the server was full; want it to block", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(gate)
	if err := <-applied; err != nil {
		t.Fatalf("Apply after permit freed: %v", err)
	}
	<-parked
}

// TestScanBoundsAndTruncation pins the scan safety rails: a negative
// limit returns nothing (not a full-keyspace wrap), and a result set
// far larger than the server's frame cap still comes back complete —
// the server cuts pages to fit the frame limit and flags them `more`,
// and the client paginates transparently. A short result therefore
// always means the range is exhausted (no holes in k-way merges).
func TestScanBoundsAndTruncation(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	val := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 64; i++ {
		backend.Put([]byte(fmt.Sprintf("big-%02d", i)), val)
	}
	srv := startServer(t, backend, ServerOptions{MaxFrame: 8 << 10})
	cl := dialT(t, srv.Addr(), ClientOptions{MaxFrame: DefaultMaxFrame})

	if entries, err := cl.Scan(nil, -5); err != nil || len(entries) != 0 {
		t.Fatalf("Scan(limit=-5) = %d entries, %v; want 0, nil", len(entries), err)
	}
	// 64 × 1KiB ≫ the 8KiB frame cap: forced through many `more` pages.
	entries, err := cl.Scan(nil, 100)
	if err != nil {
		t.Fatalf("oversized scan: %v", err)
	}
	if len(entries) != 64 {
		t.Fatalf("scan returned %d entries, want all 64 via pagination", len(entries))
	}
	for i, e := range entries {
		if !bytes.Equal(e.Key, []byte(fmt.Sprintf("big-%02d", i))) {
			t.Fatalf("entry %d = %q, pagination skipped or reordered keys", i, e.Key)
		}
	}
	// The limit is still honored across pages.
	if short, err := cl.Scan(nil, 10); err != nil || len(short) != 10 {
		t.Fatalf("Scan(limit=10) = %d entries, %v", len(short), err)
	}
}

// TestMalformedFrameRejected sends garbage and expects the server to
// answer with an error frame and hang up without crashing.
func TestMalformedFrameRejected(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	srv := startServer(t, backend, ServerOptions{MaxFrame: 1 << 16})
	cl := dialT(t, srv.Addr(), ClientOptions{Timeout: time.Second})
	// An oversized frame kills the stream; the in-flight request must
	// resolve with a connection error, not hang.
	huge := make([]byte, 1<<17)
	if err := cl.Put([]byte("k"), huge); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// The server survives and serves fresh connections.
	cl2 := dialT(t, srv.Addr(), ClientOptions{})
	if err := cl2.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("server did not survive malformed input: %v", err)
	}
}

// TestPingLiveness drives the health opcode end to end: a live server
// answers, a drained one does not, and a restart on the same address
// heals the probe — the round trip cluster probing is built on.
func TestPingLiveness(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	srv1, err := Listen("127.0.0.1:0", backend, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()
	cl := dialT(t, addr, ClientOptions{PingTimeout: 200 * time.Millisecond})
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping against live server: %v", err)
	}
	if !cl.Healthy() {
		t.Fatal("Healthy() = false with an established connection")
	}
	srv1.Close()
	// A dead server must fail the probe fast (bounded by PingTimeout,
	// not DialTimeout).
	start := time.Now()
	var pingErr error
	for attempt := 0; attempt < 3; attempt++ {
		if pingErr = cl.Ping(); pingErr != nil {
			break
		}
	}
	if pingErr == nil {
		t.Fatal("ping against closed server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead-server ping took %v, want fast failure", elapsed)
	}
	srv2, err := Listen(addr, backend, ServerOptions{})
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := cl.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ping never recovered after server restart")
		}
	}
}

// TestPingBypassesAdmission pins that liveness is answered even when
// every in-flight permit is held: an overloaded server is alive, and a
// prober that can be shed would see phantom deaths under load.
func TestPingBypassesAdmission(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	hooked := &hookBackend{Backend: backend, onGet: func() {
		entered <- struct{}{}
		<-gate
	}}
	srv := startServer(t, hooked, ServerOptions{MaxInFlight: 1})
	cl := dialT(t, srv.Addr(), ClientOptions{RetryOverload: -1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cl.Get([]byte("slow"))
	}()
	<-entered // the Get holds the only permit
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping under full admission = %v, want success", err)
	}
	close(gate)
	<-done
}

// TestRetryBackoffBounded pins the backoff-cap satellite: a client
// retrying a persistently overloaded server must bound each sleep by
// RetryBackoffMax and the total sleep by Timeout, instead of doubling
// without limit.
func TestRetryBackoffBounded(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	hooked := &hookBackend{Backend: backend}
	hooked.setApply(func() error { return cluster.ErrOverload })
	srv := startServer(t, hooked, ServerOptions{})
	// 64 attempts of unbounded doubling from 4ms would sleep for
	// centuries; with the cap and the Timeout budget the whole call must
	// resolve in roughly Timeout.
	cl := dialT(t, srv.Addr(), ClientOptions{
		Timeout:         100 * time.Millisecond,
		RetryOverload:   64,
		RetryBackoff:    4 * time.Millisecond,
		RetryBackoffMax: 16 * time.Millisecond,
	})
	start := time.Now()
	_, err := cl.Apply([]cluster.Op{{Kind: cluster.OpPut, Key: []byte("k"), Value: []byte("v")}})
	elapsed := time.Since(start)
	if !errors.Is(err, cluster.ErrOverload) {
		t.Fatalf("Apply against permanently overloaded server = %v, want ErrOverload", err)
	}
	if elapsed > time.Second {
		t.Fatalf("retry loop ran %v, want it bounded near the 100ms timeout budget", elapsed)
	}
}
