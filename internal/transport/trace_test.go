package transport

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func TestTracedFrameWireForm(t *testing.T) {
	payload := []byte("hello")
	// Zero trace is bit-identical to the untraced encoding — the old
	// protocol, so untraced traffic interoperates with old peers.
	if got, want := AppendTracedFrame(nil, 7, OpGet, 0, 0, payload), AppendFrame(nil, 7, OpGet, payload); string(got) != string(want) {
		t.Fatalf("zero-trace frame differs from plain frame:\n%x\n%x", got, want)
	}
	frame := AppendTracedFrame(nil, 7, OpGet, 42, 17, payload)
	if frame[12]&byte(opFlagTraced) == 0 {
		t.Fatal("traced frame missing the trace flag bit")
	}
	op, trace, parent, rest, err := splitTrace(Opcode(frame[12]), frame[13:])
	if err != nil || op != OpGet || trace != 42 || parent != 17 || string(rest) != "hello" {
		t.Fatalf("splitTrace = (%v, %d, %d, %q, %v)", op, trace, parent, rest, err)
	}
	// A traced frame with a truncated extension is malformed, not a crash.
	if _, _, _, _, err := splitTrace(OpGet|opFlagTraced, []byte{1, 2, 3}); err == nil {
		t.Fatal("short traced payload accepted")
	}
	if _, _, _, _, err := splitTrace(OpGet|opFlagTraced, frame[13:25]); err == nil {
		t.Fatal("trace-only (parentless) extension accepted")
	}
	// Responses never carry the flag: 0x40 overlaps RespError's bit
	// pattern, so splitTrace must pass responses through untouched.
	op, trace, parent, _, err = splitTrace(RespError, []byte{9})
	if err != nil || op != RespError || trace != 0 || parent != 0 {
		t.Fatalf("response opcode mangled: (%v, %d, %d, %v)", op, trace, parent, err)
	}
}

// TestTracePropagationAcrossNodes drives one traced replicated write and
// one traced read through a coordinator fanning out to two server
// processes, then asserts the same trace id shows up in the span logs of
// every hop: client-side roundtrips, the primary's server, and the
// replica's server (reached only via coordinator-internal mirroring).
func TestTracePropagationAcrossNodes(t *testing.T) {
	srvA := startServer(t, newShard(t, 1), ServerOptions{})
	srvB := startServer(t, newShard(t, 1), ServerOptions{})

	clientSpans := obs.NewSpanLog(64)
	coord := cluster.NewEmpty(cluster.Config{Replication: 2})
	defer coord.Close()
	for _, addr := range []string{srvA.Addr(), srvB.Addr()} {
		rn, err := Connect(addr, ClientOptions{Spans: clientSpans})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rn.Close() })
		if _, _, err := coord.AddRemote(rn); err != nil {
			t.Fatal(err)
		}
	}

	trace := obs.NewTraceID()
	ops := []cluster.Op{
		{Kind: cluster.OpPut, Key: []byte("traced-key"), Value: []byte("v"), Trace: trace},
		{Kind: cluster.OpGet, Key: []byte("traced-key"), Trace: trace},
	}
	res, err := coord.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	if string(res[1].Value) != "v" {
		t.Fatalf("traced get returned %q", res[1].Value)
	}

	for name, srv := range map[string]*Server{"primary-or-replica A": srvA, "primary-or-replica B": srvB} {
		spans := srv.Spans().ByTrace(trace)
		if len(spans) == 0 {
			t.Fatalf("%s recorded no spans for trace %d (log: %v)", name, trace, srv.Spans().Spans())
		}
		for _, s := range spans {
			if !strings.HasPrefix(s.Name, "server/") {
				t.Fatalf("%s span name %q lacks the server/ prefix", name, s.Name)
			}
		}
	}
	if got := clientSpans.ByTrace(trace); len(got) == 0 {
		t.Fatalf("client recorded no spans for trace %d", trace)
	}
	// An untraced request must not land in any span log.
	if err := coord.Put([]byte("untraced"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, srv := range []*Server{srvA, srvB} {
		for _, s := range srv.Spans().Spans() {
			if s.Trace == 0 {
				t.Fatalf("untraced request leaked into the span log: %+v", s)
			}
		}
	}
}

func TestSlowRequestLog(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	srv := startServer(t, backend, ServerOptions{SlowRequest: time.Nanosecond})
	cl := dialT(t, srv.Addr(), ClientOptions{})
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.SlowLog().Total() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	spans := srv.SlowLog().Spans()
	if len(spans) == 0 {
		t.Fatal("1ns threshold recorded no slow requests")
	}
	if spans[0].Trace != 0 {
		t.Fatalf("untraced slow request carries trace %d", spans[0].Trace)
	}
	if spans[0].Name != "server/put" {
		t.Fatalf("slow span name = %q, want server/put", spans[0].Name)
	}
}

func TestServerClientMetricsExposition(t *testing.T) {
	backend := newShard(t, 1)
	defer backend.Close()
	srv := startServer(t, backend, ServerOptions{})
	cl := dialT(t, srv.Addr(), ClientOptions{})

	if err := cl.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.GetTraced(obs.NewTraceID(), 0, []byte("a")); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)
	cl.RegisterMetrics(reg, obs.Labels{"peer": srv.Addr()})
	// Responses may still be in flight when the client returns; poll the
	// snapshot until the server's observe side caught up.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := reg.Snapshot(); s[`bd_transport_requests_total{op="get"}`].Uint() >= 1 &&
			s[`bd_transport_requests_total{op="put"}`].Uint() >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	snap := reg.Snapshot()
	for _, key := range []string{
		`bd_transport_requests_total{op="get"}`,
		`bd_transport_requests_total{op="put"}`,
		`bd_transport_bytes_total{dir="in"}`,
		`bd_transport_bytes_total{dir="out"}`,
		"bd_transport_traced_requests_total",
		"bd_transport_request_seconds_count",
	} {
		if snap[key].Uint() < 1 {
			t.Errorf("%s = %v, want >= 1 (snapshot %v)", key, snap[key], snap)
		}
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"# TYPE bd_transport_requests_total counter",
		"# TYPE bd_transport_request_seconds histogram",
		"bd_transport_client_retries_total{peer=",
	} {
		if !strings.Contains(b.String(), frag) {
			t.Errorf("exposition missing %q:\n%s", frag, b.String())
		}
	}
}
